"""Tests for the Shasha–Snir delay-set tier (repro.analysis.delayset):
litmus classification, the exhaustive-enumeration soundness gate, module
elision with cycle-freeness certificates, and the audit path."""

from repro.analysis import check_module
from repro.analysis.delayset import (
    analyze_module_fences,
    audit_module,
    check_litmus_elision,
    elide_litmus_fences,
    elide_redundant_fences,
    graph_from_litmus,
)
from repro.lir import (
    ConstantInt,
    Fence,
    Function,
    FunctionType,
    GlobalVariable,
    I64,
    IRBuilder,
    Module,
)
from repro.lir.clone import clone_module
from repro.memmodel.axioms import outcomes
from repro.memmodel.litmus import MP, SB, X86_SOURCE_CORPUS
from repro.memmodel.mappings import map_x86_to_ir


class TestLitmusClassification:
    def test_sb_fences_are_redundant(self):
        # SB's po edges are W -> R, which x86-TSO itself leaves unordered:
        # no Frm/Fww covers a delay edge, so Fig. 8a's fences all go.
        result = elide_litmus_fences(map_x86_to_ir(SB))
        assert result.required_count == 0
        assert result.elided_count > 0
        assert all(d.verdict in ("redundant", "kept")
                   for d in result.decisions)

    def test_mp_fences_are_required(self):
        # MP's W->W (data, flag) and R->R (flag, data) edges lie on the
        # classic critical cycle: the covering Fww and Frm must stay.
        result = elide_litmus_fences(map_x86_to_ir(MP))
        assert result.required_count >= 2
        kinds = {d.kind for d in result.decisions if d.verdict == "required"}
        assert kinds == {"ww", "rm"}
        # The elided program still forbids the MP weak outcome.
        allowed = outcomes(MP, "x86")
        assert outcomes(result.elided, "limm") <= allowed

    def test_mfence_image_never_elided(self):
        from repro.memmodel.litmus import ALL_LITMUS

        fenced = next(p for p in ALL_LITMUS if p.name == "SB+mfences")
        result = elide_litmus_fences(map_x86_to_ir(fenced))
        sc_decisions = [d for d in result.decisions if d.kind == "sc"]
        assert sc_decisions
        assert all(d.verdict == "kept" for d in sc_decisions)

    def test_graph_shape(self):
        graph = graph_from_litmus(map_x86_to_ir(SB))
        assert graph.nthreads == 2
        # Every access conflicts with the other thread's same-location pair.
        assert all(graph.conflicts[a.uid] for a in graph.accesses.values())


class TestEnumerationGate:
    def test_every_elision_is_sound(self):
        """The acceptance gate: exhaustive LIMM enumeration proves every
        delay-set elision on the x86-source corpus admits no execution
        the TSO source forbids."""
        total_elided = 0
        total_required = 0
        for program in X86_SOURCE_CORPUS:
            sound, result = check_litmus_elision(program)
            assert sound, f"{program.name}: delay-set elision is UNSOUND"
            total_elided += result.elided_count
            total_required += result.required_count
        assert total_elided > 0
        assert total_required > 0


def _two_thread_module(mp_shape: bool):
    """Two thread roots over globals: MP (requires fences) or SB (all
    fences redundant), pre-fenced in the Fig. 8a placement shape."""
    m = Module("t")
    gx = GlobalVariable("x", I64)
    gy = GlobalVariable("y", I64)
    m.add_global(gx)
    m.add_global(gy)
    t0 = Function("t0", FunctionType(I64, ()), [])
    t1 = Function("t1", FunctionType(I64, ()), [])
    m.add_function(t0)
    m.add_function(t1)
    b0 = IRBuilder(t0.new_block("entry"))
    b1 = IRBuilder(t1.new_block("entry"))
    if mp_shape:
        b0.store(ConstantInt(I64, 1), gx)   # data
        b0.store(ConstantInt(I64, 1), gy)   # flag
        r0 = b1.load(gy, name="flag")
        r1 = b1.load(gx, name="data")
        b1.ret(b1.add(r0, r1, "s"))
        b0.ret(ConstantInt(I64, 0))
    else:
        b0.store(ConstantInt(I64, 1), gx)
        r0 = b0.load(gy, name="r0")
        b0.ret(r0)
        b1.store(ConstantInt(I64, 1), gy)
        r1 = b1.load(gx, name="r1")
        b1.ret(r1)
    from repro.fences import place_fences

    place_fences(m)
    return m


def _fences(m):
    return [i for f in m.functions.values() if not f.is_declaration
            for i in f.instructions() if isinstance(i, Fence)]


class TestModuleElision:
    def test_sb_module_elides_everything(self):
        m = _two_thread_module(mp_shape=False)
        before = len(_fences(m))
        assert before == 4
        stats = elide_redundant_fences(m)
        assert stats.elided == 4
        assert stats.required == 0
        assert not _fences(m)
        # Decision log covers every fence with a reason.
        assert len(stats.decisions) == 4
        assert all(d.reason for d in stats.decisions)

    def test_mp_module_keeps_critical_fences(self):
        m = _two_thread_module(mp_shape=True)
        stats = elide_redundant_fences(m)
        assert stats.required == 2
        assert stats.elided == 2
        kinds = sorted(f.kind for f in _fences(m))
        assert kinds == ["rm", "ww"]
        witnesses = [d for d in stats.decisions if d.verdict == "required"]
        assert all("delay edge" in d.reason for d in witnesses)

    def test_elision_stamps_certificates(self):
        m = _two_thread_module(mp_shape=False)
        elide_redundant_fences(m)
        certs = {}
        for func in m.functions.values():
            for inst in func.instructions():
                cert = getattr(inst, "delayset_cert", None)
                if cert:
                    certs[type(inst).__name__] = cert
        assert certs.get("Load") == frozenset({"rm"})
        assert certs.get("Store") == frozenset({"ww"})

    def test_certificates_survive_cloning(self):
        m = _two_thread_module(mp_shape=False)
        elide_redundant_fences(m)
        snap = clone_module(m)
        stamped = [inst for func in snap.functions.values()
                   for inst in func.instructions()
                   if getattr(inst, "delayset_cert", None)]
        assert len(stamped) == 4

    def test_fencecheck_honours_certificates(self):
        m = _two_thread_module(mp_shape=False)
        assert check_module(m) == []          # fully fenced: clean
        elide_redundant_fences(m)
        # Without the certificates these would all be missing-fence
        # violations; the delayset_cert stamps discharge them.
        assert check_module(m) == []

    def test_uncertified_removal_still_caught(self):
        m = _two_thread_module(mp_shape=False)
        for fence in _fences(m):
            fence.erase_from_parent()          # no certificates stamped
        assert len(check_module(m)) == 4

    def test_audit_accepts_certified_module(self):
        m = _two_thread_module(mp_shape=False)
        elide_redundant_fences(m)
        assert audit_module(m) == []

    def test_audit_flags_missing_required_fence(self):
        m = _two_thread_module(mp_shape=True)
        elide_redundant_fences(m)
        for fence in _fences(m):               # strip the REQUIRED fences
            fence.erase_from_parent()
        violations = audit_module(m)
        assert violations
        assert any("uncovered delay edge" in v for v in violations)

    def test_analyze_module_fences_witnesses(self):
        m = _two_thread_module(mp_shape=True)
        result = analyze_module_fences(m)
        assert result.required_insts
        assert result.witnesses
        assert len(result.threads) == 2

    def test_thread_local_accesses_not_in_graph(self):
        m = Module("t")
        f = Function("main", FunctionType(I64, ()), [])
        m.add_function(f)
        b = IRBuilder(f.new_block("entry"))
        a = b.alloca(I64, "a")
        b.store(ConstantInt(I64, 1), a)
        v = b.load(a, name="v")
        b.ret(v)
        result = analyze_module_fences(m)
        assert not result.graph.accesses
