"""Property-based fuzzing of the LIR→Arm backend.

Random DAG-shaped LIR functions (long chains referencing early values keep
many values live simultaneously, forcing spills; interleaved calls stress
the callee-saved discipline; float chains stress the d-register pool).
Results must match the reference interpreter.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arm import ArmEmulator
from repro.codegen import compile_lir_to_arm
from repro.lir import (
    ConstantFloat,
    ConstantInt,
    F64,
    Function,
    FunctionType,
    I64,
    Interpreter,
    IRBuilder,
    Module,
    verify_module,
)

INT_OPS = ["add", "sub", "mul", "and", "or", "xor"]


@st.composite
def dag_module(draw):
    m = Module("fuzz")
    helper = Function("helper", FunctionType(I64, (I64, I64)), ["a", "b"])
    m.add_function(helper)
    hb = IRBuilder(helper.new_block("entry"))
    hv = hb.binop(
        draw(st.sampled_from(INT_OPS)), helper.arguments[0],
        helper.arguments[1],
    )
    hb.ret(hv)

    f = Function("main", FunctionType(I64, (I64, I64)), ["x", "y"])
    m.add_function(f)
    b = IRBuilder(f.new_block("entry"))
    values = [f.arguments[0], f.arguments[1],
              ConstantInt(I64, draw(st.integers(-50, 50)))]
    n_ops = draw(st.integers(8, 24))
    for i in range(n_ops):
        choice = draw(st.integers(0, 5))
        if choice == 5:
            a = values[draw(st.integers(0, len(values) - 1))]
            c = values[draw(st.integers(0, len(values) - 1))]
            values.append(b.call(helper, [a, c]))
            continue
        op = draw(st.sampled_from(INT_OPS))
        a = values[draw(st.integers(0, len(values) - 1))]
        c = values[draw(st.integers(0, len(values) - 1))]
        values.append(b.binop(op, a, c))
    # Fold everything so every value is live until its use.
    acc = values[0]
    for v in values[1:]:
        acc = b.binop("xor", acc, v)
    b.ret(acc)
    return m


@st.composite
def float_dag_module(draw):
    m = Module("ffuzz")
    f = Function("main", FunctionType(I64, (F64, F64)), ["x", "y"])
    m.add_function(f)
    b = IRBuilder(f.new_block("entry"))
    values = [f.arguments[0], f.arguments[1],
              ConstantFloat(F64, draw(st.integers(-8, 8)) / 2.0)]
    for _ in range(draw(st.integers(6, 16))):
        op = draw(st.sampled_from(["fadd", "fsub", "fmul"]))
        a = values[draw(st.integers(0, len(values) - 1))]
        c = values[draw(st.integers(0, len(values) - 1))]
        values.append(b.binop(op, a, c))
    acc = values[0]
    for v in values[1:]:
        acc = b.binop("fadd", acc, v)
    # Map into a bounded integer so float rounding can't flake equality:
    # both sides compute bit-identically (IEEE double ops in each).
    bits = b.bitcast(acc, I64)
    b.ret(bits)
    return m


@given(dag_module(), st.integers(-1000, 1000), st.integers(-1000, 1000))
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
def test_int_dag_backend_matches_interpreter(m, x, y):
    verify_module(m)
    expected = Interpreter(m).run("main", [x & (2**64 - 1), y & (2**64 - 1)])
    prog = compile_lir_to_arm(m)
    emu = ArmEmulator(prog)
    got = emu.run("main", [x & (2**64 - 1), y & (2**64 - 1)])
    assert got == expected


@given(float_dag_module(), st.integers(-16, 16), st.integers(-16, 16))
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
def test_float_dag_backend_matches_interpreter(m, xi, yi):
    verify_module(m)
    x, y = xi / 2.0, yi / 2.0
    expected = Interpreter(m).run("main", [x, y])
    prog = compile_lir_to_arm(m)
    emu = ArmEmulator(prog)
    thread = emu._make_thread(emu.symbols["main"])
    thread.d["d0"], thread.d["d1"] = x, y
    while not thread.done:
        emu._schedule()
    got = thread.x["x0"]
    assert got == expected & (2**64 - 1)
