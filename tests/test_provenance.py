"""Tests for instruction provenance: Origin model, propagation through
the pipeline, the LIR→Arm source map, and the ``repro explain`` CLI."""

import json

import pytest

from repro.cli import main
from repro.core import Lasagne
from repro.lir import (
    ConstantInt,
    Function,
    FunctionType,
    I64,
    IRBuilder,
    Module,
    clone_module,
    ptr,
)
from repro.lir.clone import clone_instruction
from repro.minicc import compile_to_x86
from repro.provenance import (
    Origin,
    SourceMap,
    format_origins,
    merge_origins,
    synthetic_origin,
)
from repro.provenance.explain import build_explanation

DEMO = """
int g = 0;
int worker(int t) { atomic_add(&g, t + 1); return 0; }
int main() {
  int a = spawn(worker, 1);
  int b = spawn(worker, 2);
  join(a); join(b);
  g = g + 1;
  return g;
}
"""

TRANSLATED_CONFIGS = ("lifted", "opt", "popt", "ppopt")


@pytest.fixture()
def demo_file(tmp_path):
    path = tmp_path / "demo.c"
    path.write_text(DEMO)
    return str(path)


def _ppopt(source=DEMO):
    return Lasagne().build(source, "ppopt")


# ---- Origin model -----------------------------------------------------------


class TestOriginModel:
    def test_format_and_synthetic(self):
        o = Origin(addr=0x400010, mnemonic="mov", size=3, function="f")
        assert o.format() == "0x400010(mov)"
        assert not o.is_synthetic
        s = synthetic_origin("entry", 0x400000, "f")
        assert s.is_synthetic
        assert "entry" in s.format()

    def test_merge_origins_is_order_preserving_union(self):
        a = Origin(addr=1, mnemonic="mov", size=1, function="f")
        b = Origin(addr=2, mnemonic="add", size=1, function="f")
        assert merge_origins((a,), (b, a)) == (a, b)
        assert merge_origins((), (a,)) == (a,)

    def test_format_origins_empty(self):
        assert format_origins(()) == "<no provenance>"


class TestRauwMergesOrigins:
    def test_replacement_inherits_replaced_origins(self):
        m = Module("t")
        f = Function("f", FunctionType(I64, (I64,)), ["x"])
        m.add_function(f)
        b = IRBuilder(f.new_block("entry"))
        o1 = Origin(addr=0x10, mnemonic="mov", size=2, function="f")
        o2 = Origin(addr=0x20, mnemonic="add", size=2, function="f")
        b.set_origin(o1)
        first = b.add(f.arguments[0], ConstantInt(I64, 1))
        b.set_origin(o2)
        second = b.add(f.arguments[0], ConstantInt(I64, 1))
        b.ret(second)
        # GVN-style fold: second is replaced by first; first must now
        # blame both x86 sources.
        second.replace_all_uses_with(first)
        assert set(first.origins) == {o1, o2}


# ---- clone / snapshot preservation -----------------------------------------


class TestClonePreservesOrigins:
    def _one_inst_func(self):
        m = Module("t")
        f = Function("f", FunctionType(I64, (ptr(I64),)), ["p"])
        m.add_function(f)
        b = IRBuilder(f.new_block("entry"))
        b.set_origin(Origin(addr=0x30, mnemonic="mov", size=2, function="f"))
        ld = b.load(f.arguments[0])
        b.ret(ld)
        return m, f, ld

    def test_clone_instruction_copies_origins_and_placement(self):
        _, _, ld = self._one_inst_func()
        ld.placement = ("placed: test",)
        cloned = clone_instruction(ld, lambda v: v)
        assert cloned.origins == ld.origins
        assert cloned.placement == ("placed: test",)

    def test_clone_module_preserves_origins(self):
        m, f, ld = self._one_inst_func()
        f.x86_addr = 0x400000
        copy = clone_module(m)
        cf = copy.functions["f"]
        assert cf.x86_addr == 0x400000
        copied = [i for bb in cf.blocks for i in bb.instructions]
        originals = [i for bb in f.blocks for i in bb.instructions]
        assert len(copied) == len(originals)
        for orig, new in zip(originals, copied):
            assert new is not orig
            assert new.origins == orig.origins

    def test_snapshot_module_retains_lifted_origins(self):
        obj = compile_to_x86(DEMO)
        built = Lasagne(capture_stages=True).translate(obj, "ppopt")
        lift_stage = built.stages["lift"]
        stamped = sum(
            1
            for func in lift_stage.functions.values()
            for bb in func.blocks
            for inst in bb.instructions
            if inst.origins
        )
        assert stamped > 0
        total = lift_stage.instruction_count()
        assert stamped == total  # every lifted instruction has provenance


# ---- pipeline-wide properties ----------------------------------------------


class TestPipelineCoverage:
    def test_every_ppopt_memory_access_resolves(self):
        built = _ppopt()
        sm = SourceMap.from_program(built.program)
        unresolved = [e for e in sm.memory_accesses() if not e.resolved]
        assert unresolved == []

    def test_fence_provenance_complete_all_translated_configs(self):
        for config in TRANSLATED_CONFIGS:
            built = Lasagne().build(DEMO, config)
            sm = SourceMap.from_program(built.program)
            cov = sm.coverage()
            assert cov.fence_pct == 100.0, config
            assert cov.memory_pct >= 95.0, config

    def test_phoenix_suite_meets_acceptance_bar(self):
        from repro.phoenix import SIZE_TINY, all_programs

        for program in all_programs(SIZE_TINY):
            built = Lasagne(verify=False).build(program.source, "ppopt")
            cov = SourceMap.from_program(built.program).coverage()
            assert cov.fence_pct == 100.0, program.name
            assert cov.memory_pct >= 95.0, program.name

    def test_fences_blame_real_x86_instructions(self):
        built = _ppopt()
        sm = SourceMap.from_program(built.program)
        fences = sm.fences()
        assert fences
        for entry in fences:
            assert entry.origins, str(entry.instr)
            assert any(not o.is_synthetic for o in entry.origins)


# ---- explain ----------------------------------------------------------------


class TestExplain:
    def test_fence_blame_names_address_mnemonic_and_rule(self):
        expl = build_explanation(DEMO, "ppopt")
        assert expl.fences
        for blame in expl.fences:
            assert blame.resolved
            text = format_origins(blame.origins)
            assert "0x" in text and "(" in text  # addr(mnemonic)
            assert "Fig. 8a" in blame.rule() or "section 7" in blame.rule()

    def test_merge_decisions_recorded(self):
        expl = build_explanation(DEMO, "ppopt")
        events = [e for b in expl.fences for e in b.events]
        assert any(e.startswith("placed:") for e in events)
        assert any(e.startswith("merged:") for e in events)

    def test_elisions_reported_with_x86_location(self):
        expl = build_explanation(DEMO, "ppopt")
        assert expl.elisions  # stack traffic is proven thread-local
        assert any(r.args.get("x86") for r in expl.elisions)

    def test_coverage_matches_source_map(self):
        expl = build_explanation(DEMO, "ppopt")
        assert expl.coverage.fence_pct == 100.0
        assert expl.coverage.memory_pct >= 95.0


class TestExplainCli:
    def test_fences_view(self, demo_file, capsys):
        rc = main(["explain", demo_file, "--fences"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fence blame" in out
        assert "protects: 0x" in out
        assert "Fig. 8a" in out

    def test_map_view(self, demo_file, capsys):
        rc = main(["explain", demo_file, "--map"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "provenance map" in out
        assert "lir |" in out and "arm |" in out

    def test_coverage_thresholds_pass_and_fail(self, demo_file, capsys):
        rc = main(["explain", demo_file, "--coverage",
                   "--min-fence-coverage", "100",
                   "--min-mem-coverage", "95"])
        assert rc == 0
        capsys.readouterr()
        # An impossible bar must flip the exit code.
        rc = main(["explain", demo_file, "--coverage",
                   "--min-mem-coverage", "100.1"])
        assert rc == 1
        assert "below the required" in capsys.readouterr().err

    def test_json_output(self, demo_file, capsys):
        rc = main(["explain", demo_file, "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["config"] == "ppopt"
        assert data["coverage"]["fences"]["pct"] == 100.0
        assert all(f["origins"] for f in data["fences"])

    def test_native_config_has_no_lineage(self, demo_file, capsys):
        rc = main(["explain", demo_file, "--config", "native", "--map"])
        assert rc == 0
        assert "no x86 input" in capsys.readouterr().out


class TestAnalyzeJson:
    def test_analyze_json_reports(self, demo_file, capsys):
        rc = main(["analyze", demo_file, "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["config"] == "ppopt"
        assert "escape" in data and "accesses" in data
        assert data["fencecheck"]["violations"] == 0

    def test_analyze_json_single_mode(self, demo_file, capsys):
        rc = main(["analyze", demo_file, "--json", "--fencecheck"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert "fencecheck" in data and "escape" not in data


# ---- consumers --------------------------------------------------------------


class TestFencecheckLocations:
    def test_diags_prefer_x86_locations(self):
        from repro.analysis import check_function

        built = Lasagne().build(DEMO, "ppopt")
        func = built.module.functions["main"]
        # Delete every fence so the checker has something to report.
        for bb in func.blocks:
            for inst in list(bb.instructions):
                if inst.opcode == "fence":
                    inst.erase_from_parent()
        diags = check_function(func, module=built.module)
        assert diags
        assert any("0x" in d.location for d in diags)
        for d in diags:
            if d.x86:
                assert d.location == f"{d.function} @ {d.x86}"


class TestShrinkerPreservesProvenance:
    def test_shrunk_program_keeps_full_fence_provenance(self):
        from repro.validate import shrink

        def still_has_global_store(source: str) -> bool:
            try:
                built = Lasagne(verify=False).build(source, "ppopt")
            except Exception:  # noqa: BLE001
                return False
            return built.fences > 0

        reduced = shrink(DEMO, still_has_global_store)
        assert still_has_global_store(reduced)
        cov = SourceMap.from_program(
            Lasagne().build(reduced, "ppopt").program).coverage()
        assert cov.fence_pct == 100.0


class TestBenchTrajectory:
    def test_write_bench_appends_trajectory(self, tmp_path):
        from repro.telemetry.bench import BENCH_VERSION, write_bench

        report = {"version": BENCH_VERSION, "size": "tiny",
                  "summary": {"ppopt": {"fences_total": 5}}}
        out = tmp_path / "bench.json"
        write_bench(report, str(out))
        # v6: re-running at the same (sha, size, dirty) replaces the
        # previous entry rather than growing the trajectory...
        write_bench(report, str(out))
        data = json.loads(out.read_text())
        assert data["version"] == BENCH_VERSION
        assert len(data["trajectory"]) == 1
        # ...while a different size appends alongside it.
        write_bench(dict(report, size="small"), str(out))
        data = json.loads(out.read_text())
        assert len(data["trajectory"]) == 2
        assert {e["size"] for e in data["trajectory"]} == {"tiny", "small"}
        for entry in data["trajectory"]:
            assert entry["sha"]
            assert entry["timestamp"]
            assert entry["summary"] == report["summary"]

    def test_run_bench_records_provenance(self):
        from repro.telemetry.bench import run_bench

        report = run_bench(size="tiny", configs=["native", "ppopt"],
                           repeats=1)
        ppopt = report["summary"]["ppopt"]
        assert ppopt["provenance_fence_pct_min"] == 100.0
        assert ppopt["provenance_memory_pct_min"] >= 95.0
        assert "provenance" not in next(
            iter(report["programs"].values()))["native"]
