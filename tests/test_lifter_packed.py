"""Packed SSE lifting tests (§4.2.2): hand-assembled x86 with movaps /
addpd / paddq, lifted to vector-typed LIR and checked differentially
against the x86 emulator."""

import struct

import pytest

from repro.lifter import LiftError, lift_program
from repro.lir import Interpreter, VectorType, F64, verify_module
from repro.x86 import Assembler, AsmFunction, Instr, Label, Mem, Reg, X86Emulator


def _packed_image(arith="addpd"):
    """main: c = a <op> b elementwise on <2 x double> (or <2 x i64>),
    returns the integer truncation of c[0] + c[1] via scalar loads."""
    asm = Assembler()
    a_init = struct.pack("<dd", 1.5, 2.5)
    b_init = struct.pack("<dd", 10.0, 20.0)
    asm.add_global("va", 16, a_init)
    asm.add_global("vb", 16, b_init)
    asm.add_global("vc", 16, b"")

    f = AsmFunction("main")
    f.emit(Instr("movabs", [Reg("rcx"), Label("va")]))
    f.emit(Instr("movaps", [Reg("xmm1"), Mem(base="rcx", width=128)]))
    f.emit(Instr("movabs", [Reg("rcx"), Label("vb")]))
    f.emit(Instr("movaps", [Reg("xmm2"), Mem(base="rcx", width=128)]))
    f.emit(Instr(arith, [Reg("xmm1"), Reg("xmm2")]))
    f.emit(Instr("movabs", [Reg("rcx"), Label("vc")]))
    f.emit(Instr("movaps", [Mem(base="rcx", width=128), Reg("xmm1")]))
    # Sum the two lanes with scalar loads through a *different* register.
    f.emit(Instr("movsd", [Reg("xmm0"), Mem(base="rcx", width=64)]))
    f.emit(Instr("movsd", [Reg("xmm3"), Mem(base="rcx", disp=8, width=64)]))
    f.emit(Instr("addsd", [Reg("xmm0"), Reg("xmm3")]))
    f.emit(Instr("cvttsd2si", [Reg("rax"), Reg("xmm0")]))
    f.emit(Instr("ret"))
    asm.add_function(f)
    return asm.link("main")


class TestPackedLifting:
    def test_addpd_differential(self):
        obj = _packed_image("addpd")
        expected = X86Emulator(obj).run()
        assert expected == int((1.5 + 10.0) + (2.5 + 20.0))
        module = lift_program(obj)
        verify_module(module)
        assert Interpreter(module).run("main") == expected

    def test_subpd_and_mulpd(self):
        for arith, expect in (("subpd", int((1.5 - 10) + (2.5 - 20))),
                              ("mulpd", int(1.5 * 10 + 2.5 * 20))):
            obj = _packed_image(arith)
            assert X86Emulator(obj).run() == expect
            module = lift_program(obj)
            verify_module(module)
            assert Interpreter(module).run("main") == expect, arith

    def test_packed_registers_get_vector_slots(self):
        obj = _packed_image("addpd")
        module = lift_program(obj)
        main = module.get_function("main")
        from repro.lir import Alloca

        slot_types = {
            i.name: i.allocated_type
            for i in main.instructions()
            if isinstance(i, Alloca)
        }
        assert slot_types["xmm1_slot"] == VectorType(F64, 2)
        assert slot_types["xmm2_slot"] == VectorType(F64, 2)
        assert slot_types["xmm0_slot"] == F64  # scalar use stays scalar

    def test_paddq_integer_lanes(self):
        asm = Assembler()
        asm.add_global("va", 16, struct.pack("<QQ", 100, 200))
        asm.add_global("vb", 16, struct.pack("<QQ", 7, 8))
        asm.add_global("vc", 16, b"")
        f = AsmFunction("main")
        f.emit(Instr("movabs", [Reg("rcx"), Label("va")]))
        f.emit(Instr("movaps", [Reg("xmm1"), Mem(base="rcx", width=128)]))
        f.emit(Instr("movabs", [Reg("rcx"), Label("vb")]))
        f.emit(Instr("movaps", [Reg("xmm2"), Mem(base="rcx", width=128)]))
        f.emit(Instr("paddq", [Reg("xmm1"), Reg("xmm2")]))
        f.emit(Instr("movabs", [Reg("rcx"), Label("vc")]))
        f.emit(Instr("movaps", [Mem(base="rcx", width=128), Reg("xmm1")]))
        f.emit(Instr("mov", [Reg("rax"), Mem(base="rcx", width=64)]))
        f.emit(Instr("mov", [Reg("rcx"), Mem(base="rcx", disp=8, width=64)]))
        f.emit(Instr("add", [Reg("rax"), Reg("rcx")]))
        f.emit(Instr("ret"))
        asm.add_function(f)
        obj = asm.link("main")
        expected = X86Emulator(obj).run()
        assert expected == 107 + 208
        module = lift_program(obj)
        verify_module(module)
        assert Interpreter(module).run("main") == expected

    def test_mixed_scalar_packed_register_rejected(self):
        asm = Assembler()
        asm.add_global("va", 16, b"\0" * 16)
        f = AsmFunction("main")
        f.emit(Instr("movabs", [Reg("rcx"), Label("va")]))
        f.emit(Instr("movaps", [Reg("xmm1"), Mem(base="rcx", width=128)]))
        f.emit(Instr("addsd", [Reg("xmm1"), Reg("xmm1")]))  # scalar use!
        f.emit(Instr("xor", [Reg("rax"), Reg("rax")]))
        f.emit(Instr("ret"))
        asm.add_function(f)
        obj = asm.link("main")
        with pytest.raises(LiftError):
            lift_program(obj)
