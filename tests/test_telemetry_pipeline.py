"""Integration tests: telemetry emitted by the translator itself —
pipeline stage spans, pass iteration records, fence/refine remarks,
emulator metrics, validate-runner timing aggregation, bench emitter."""

import json

import pytest

from repro import telemetry
from repro.core import Lasagne
from repro.fences import place_fences
from repro.lir import (
    ConstantInt,
    Function,
    FunctionType,
    I64,
    IRBuilder,
    Module,
    ptr,
)
from repro.opt import PassRecord, optimize_module
from repro.refine.ptrpromote import run_pointer_promotion

SRC = """
int g = 0;
int h = 0;
int worker(int t) { atomic_add(&g, t + 1); return 0; }
int main() {
  int a = spawn(worker, 1);
  int b = spawn(worker, 2);
  join(a); join(b);
  h = g;
  g = h + 1;
  return g;
}
"""


@pytest.fixture()
def built_with_telemetry():
    with telemetry.session() as tel:
        built = Lasagne().build(SRC, "ppopt")
        run = Lasagne.run(built)
    return tel, built, run


class TestPipelineTrace:
    def test_stage_spans_present(self, built_with_telemetry):
        tel, built, _ = built_with_telemetry
        assert built.trace is not None
        assert built.trace.name == "pipeline"
        assert built.trace.attrs["config"] == "ppopt"
        stages = built.stage_seconds()
        for stage in ("lift", "refine", "place", "opt", "merge", "codegen"):
            assert stage in stages and stages[stage] >= 0.0

    def test_pass_spans_nested_under_opt(self, built_with_telemetry):
        tel, _, _ = built_with_telemetry
        pass_spans = tel.tracer.find(category="pass")
        assert {"gvn", "instcombine", "dce"} <= {s.name for s in pass_spans}

    def test_metrics_snapshot_attached(self, built_with_telemetry):
        _, built, _ = built_with_telemetry
        assert built.metrics is not None
        counters = built.metrics["counters"]
        assert counters.get("fences.inserted{kind=rm}", 0) > 0
        assert counters.get("fences.merged_away", 0) > 0

    def test_chrome_export_has_stage_and_pass_events(self,
                                                     built_with_telemetry):
        tel, _, _ = built_with_telemetry
        doc = telemetry.to_chrome_trace(tel.tracer)
        json.loads(json.dumps(doc))
        cats = {e["cat"] for e in doc["traceEvents"]}
        assert {"pipeline", "stage", "pass"} <= cats

    def test_no_session_means_no_trace(self):
        built = Lasagne().build(SRC, "ppopt")
        assert built.trace is None
        assert built.metrics is None
        assert built.stage_seconds() == {}

    def test_emulator_metrics(self, built_with_telemetry):
        tel, _, run = built_with_telemetry
        assert tel.metrics.counter("emu.arm.cycles") == run.cycles
        assert tel.metrics.counter("emu.arm.instret") == \
            run.instructions_retired
        assert tel.metrics.counter("emu.arm.threads") == 3


class TestPassStatsIterations:
    def test_records_carry_iteration_and_changed(self):
        m = Module("t")
        f = Function("f", FunctionType(I64, (I64,)), ["x"])
        m.add_function(f)
        b = IRBuilder(f.new_block("entry"))
        slot = b.alloca(I64)
        b.store(f.arguments[0], slot)
        v = b.load(slot)
        b.ret(b.add(v, ConstantInt(I64, 0)))
        stats = optimize_module(m)
        assert stats.iterations >= 1
        assert all(isinstance(rec, PassRecord) for rec in stats.records)
        assert {rec.iteration for rec in stats.records} == \
            set(range(stats.iterations))
        assert any(rec.changed for rec in stats.records)
        # The last iteration is the fixpoint check: nothing changes there.
        assert not any(
            rec.changed for rec in stats.records
            if rec.iteration == stats.iterations - 1)
        by_iter = stats.reduction_by_iteration()
        assert sum(by_iter.values()) == \
            sum(r.before - r.after for r in stats.records)
        assert by_iter[stats.iterations - 1] == 0
        assert set(stats.by_iteration()) == set(range(stats.iterations))
        assert "mem2reg" in stats.changed_passes(iteration=0)

    def test_pass_change_remarks(self):
        m = Module("t")
        f = Function("f", FunctionType(I64, (I64,)), ["x"])
        m.add_function(f)
        b = IRBuilder(f.new_block("entry"))
        slot = b.alloca(I64)
        b.store(f.arguments[0], slot)
        b.ret(b.load(slot))
        with telemetry.session() as tel:
            optimize_module(m)
        changed = [r for r in tel.remarks.remarks if r.kind == "changed"]
        assert any(r.origin == "opt.mem2reg" for r in changed)
        assert all("iteration" in r.args for r in changed)


def _module_with_global_accesses():
    """store/load a global (fenced) and a stack slot (skipped)."""
    from repro.lir import GlobalVariable

    m = Module("t")
    g = GlobalVariable("g", I64, ConstantInt(I64, 0))
    m.add_global(g)
    f = Function("main", FunctionType(I64, ()), [])
    m.add_function(f)
    b = IRBuilder(f.new_block("entry"))
    local = b.alloca(I64, "local")
    b.store(ConstantInt(I64, 1), local)          # stack-local: skipped
    b.store(ConstantInt(I64, 2), g)              # global: Fww
    v = b.load(g)                                # global: Frm
    b.ret(v)
    return m


class TestFenceRemarks:
    def test_placement_remarks_with_locations(self):
        with telemetry.session() as tel:
            place_fences(_module_with_global_accesses())
        inserted = tel.remarks.select("place-fences", "fence-inserted")
        skipped = tel.remarks.select("place-fences", "fence-skipped")
        assert len(inserted) == 2 and len(skipped) == 1
        for r in inserted + skipped:
            assert r.function == "main"
            assert r.block == "entry"
            assert r.instruction and ("load" in r.instruction
                                      or "store" in r.instruction)
        assert tel.metrics.counter("fences.inserted", kind="rm") == 1
        assert tel.metrics.counter("fences.inserted", kind="ww") == 1
        assert tel.metrics.counter("fences.skipped_stack") == 1

    def test_merge_remarks(self):
        # The tiny module above never places two adjacent fences, so use a
        # real popt build, where DSE/GVN create adjacent fence runs.
        with telemetry.session() as tel:
            built = Lasagne().build(SRC, "popt")
        merged = tel.remarks.select("merge-fences", "fence-merged")
        assert merged, "popt build must merge at least one fence run"
        for r in merged:
            assert r.function and r.block
            assert r.args["run_length"] >= 2
        assert tel.metrics.counter("fences.merged_away") >= len(merged)
        assert built.fences < built.fences_naive


class TestRefinementRemarks:
    def test_peephole_rule_remarks_from_full_build(self):
        with telemetry.session() as tel:
            Lasagne().build(SRC, "ppopt")
        rules = {r.kind for r in tel.remarks.remarks
                 if r.origin == "refine-peephole"}
        assert rules and rules <= {"rule1-pointer-cast",
                                   "rule2-address-offset",
                                   "rule3-parameter-offset"}
        assert tel.metrics.total("refine.peephole_rewrites") > 0

    def test_pointer_promotion_remark(self):
        m = Module("t")
        callee = Function("callee", FunctionType(I64, (I64,)), ["p"])
        m.add_function(callee)
        b = IRBuilder(callee.new_block("entry"))
        p = b.inttoptr(callee.arguments[0], ptr(I64))
        b.ret(b.load(p))
        caller = Function("caller", FunctionType(I64, (I64,)), ["x"])
        m.add_function(caller)
        bc = IRBuilder(caller.new_block("entry"))
        bc.ret(bc.call(callee, [caller.arguments[0]]))
        with telemetry.session() as tel:
            assert run_pointer_promotion(m)
        remarks = tel.remarks.select("refine-ptrpromote",
                                     "parameter-promoted")
        # The promotion propagates: callee's %p, then caller's %x which
        # flows into the now-pointer-typed parameter.
        assert {r.function for r in remarks} == {"callee", "caller"}
        assert tel.metrics.counter("refine.params_promoted") == len(remarks)


class TestValidateTiming:
    def test_report_aggregates_wall_time_and_stages(self, tmp_path):
        from repro.validate import RunnerOptions, run_corpus

        trace_file = tmp_path / "trace.json"
        opts = RunnerOptions(
            seed=3, count=3, corpus_dir=str(tmp_path / "corpus"),
            trace_file=str(trace_file), collect_remarks=True)
        report = run_corpus(opts)
        timing = report["timing"]
        assert timing["min_seconds"] <= timing["median_seconds"] \
            <= timing["p95_seconds"] <= timing["max_seconds"]
        assert 1 <= len(timing["slowest"]) <= 5
        assert timing["slowest"][0]["elapsed_seconds"] == \
            timing["max_seconds"]
        assert "lift" in timing["stages"]
        stage = timing["stages"]["lift"]
        assert stage["p50_seconds"] <= stage["p95_seconds"]
        assert stage["total_seconds"] > 0
        # Merged chrome trace from every oracle run.
        doc = json.loads(trace_file.read_text())
        assert doc["traceEvents"]
        assert any(e["cat"] == "stage" for e in doc["traceEvents"])
        # Remark histogram survived the report merge.
        assert any(key.startswith("place-fences")
                   for key in report["remark_histogram"])


class TestBenchEmitter:
    def test_bench_schema(self, tmp_path):
        from repro.telemetry.bench import run_bench, write_bench

        report = run_bench(size="tiny", configs=["ppopt"], repeats=1)
        assert report["version"] == 9
        assert report["configs"] == ["ppopt"]
        assert "demo" in report["programs"]
        for name, per_config in report["programs"].items():
            row = per_config["ppopt"]
            assert row["translate_seconds"] > 0
            assert row["arm_instructions"] > 0
            assert row["lir_instructions"] > 0
            assert row["fences"] <= row["fences_naive"]
            assert row["fences_elided"] >= 0
            assert row["fences_elided_interproc"] >= 0
            assert row["fences_elided_delayset"] >= 0
            assert row["fences_elided_sync"] >= 0
            assert row["racecheck"]["racy"] >= 0
            assert row["racecheck"]["lock_protected"] >= 0
            assert row["fencecheck_violations"] == 0
            assert row["provenance"]["fence_pct"] == 100.0
        # The interprocedural and delay-set tiers must each prove real
        # elisions on at least one Phoenix kernel and on examples/demo.c.
        phoenix = [per_config["ppopt"]
                   for name, per_config in report["programs"].items()
                   if name != "demo"]
        assert any(r["fences_elided_interproc"] > 0 for r in phoenix)
        assert any(r["fences_elided_delayset"] > 0 for r in phoenix)
        demo = report["programs"]["demo"]["ppopt"]
        assert demo["fences_elided_interproc"] > 0
        assert demo["fences_elided_delayset"] > 0
        summary = report["summary"]["ppopt"]
        assert summary["translate_seconds_total"] > 0
        assert summary["fences_elided_interproc_total"] > 0
        assert summary["fences_elided_delayset_total"] > 0
        # v7: the sync tier proves real elisions on the locked example,
        # and racecheck sees its lock-protected accesses.
        locked = report["programs"]["locked"]["ppopt"]
        assert locked["fences_elided_sync"] > 0
        assert locked["racecheck"]["lock_protected"] > 0
        assert summary["fences_elided_sync_total"] > 0
        # v8: every row carries the attribution matrix behind its totals.
        assert demo["work_cells"]
        assert all(len(cell) == 4 for cell in demo["work_cells"])
        assert summary["racecheck_lock_protected_total"] > 0
        # v9: the companion tv build proves every pass invocation (or
        # leaves it unknown) — a refutation anywhere is a miscompile.
        for name, per_config in report["programs"].items():
            row = per_config["ppopt"]
            assert row["tv_refuted"] == 0, name
            assert row["tv_proved"] + row["tv_unknown"] > 0, name
        assert any(c.startswith("tv.") for c in demo["work"])
        assert summary["tv_refuted_total"] == 0
        assert summary["tv_proved_total"] > summary["tv_unknown_total"]
        # v5: the ELF-loader trajectory over examples/elf fixtures.
        for name, row in report["loader"].items():
            assert row["ok"], name
            assert row["ingest_seconds"] > 0
            assert row["functions_discovered"] >= 1
            assert row["externals_resolved"] >= 1
        if report["loader"]:
            loader = report["summary"]["loader"]
            assert loader["externals_opaque"] == 0
            assert loader["functions_discovered"] >= len(report["loader"])
        out = write_bench(report, str(tmp_path / "BENCH_translate.json"))
        data = json.loads(out.read_text())
        assert len(data["trajectory"]) == 1
