"""Theorem 7.5 checks: the Figure 11 reordering/elimination tables.

Every ✓ cell of Figure 11a is validated in standard litmus contexts (the
reordered program admits no new outcomes); every ✗ cell we rely on has a
witness context where the reordering *does* add an outcome.  Figure 11b's
eliminations are checked the same way.
"""


import pytest

from repro.memmodel import (
    Fence,
    KINDS,
    Ld,
    Program,
    REORDER_TABLE,
    Rmw,
    St,
    can_reorder,
    check_elimination,
    check_reordering_in_context,
    eliminate_rar,
    eliminate_raw,
    eliminate_waw,
    merge_adjacent_fences,
    outcomes,
)

# Concrete op templates for each Fig. 11a kind (locations X and Y; the
# observer thread uses Z-free MP/SB-style contexts).


def make_op(kind: str, loc: str, reg: str):
    if kind == "Rna":
        return [Ld(loc, reg)]
    if kind == "Wna":
        return [St(loc, 1)]
    if kind == "Rsc":
        return [Rmw(loc, 7, 9, reg=reg)]  # fails: location never holds 7
    if kind == "RscWsc":
        return [Rmw(loc, 0, 9, reg=reg)]
    if kind == "Frm":
        return [Fence("rm")]
    if kind == "Fww":
        return [Fence("ww")]
    if kind == "Fsc":
        return [Fence("sc")]
    raise ValueError(kind)


# Observer contexts sensitive to every ordering direction.  The candidate
# pair sits between optional prefix/suffix accesses (so fences in the pair
# have events to order) and runs against several partner threads.
_WRAPPERS = [
    ([], []),
    ([], [Ld("Y", "rs")]),
    ([], [St("Y", 3)]),
    ([Ld("Y", "rp")], []),
    ([St("Y", 2)], []),
    ([Ld("X", "rp")], []),
    ([St("X", 2)], []),
    ([], [Ld("X", "rs")]),
    ([], [St("X", 3)]),
]
_PARTNERS = [
    [Ld("Y", "c1"), Fence("rm"), Ld("X", "c2")],
    [St("Y", 1), Fence("ww"), St("X", 1)],
    [Ld("X", "c1"), Fence("rm"), Ld("Y", "c2")],
    [St("X", 1), Fence("ww"), St("Y", 1)],
]


def contexts(a_kind: str, b_kind: str):
    """Yield (program, pair_index) context instantiations."""
    a_ops = make_op(a_kind, "X", "ra")
    b_ops = make_op(b_kind, "Y", "rb")
    out = []
    for prefix, suffix in _WRAPPERS:
        thread0 = list(prefix) + a_ops + b_ops + list(suffix)
        for partner in _PARTNERS:
            out.append(
                (
                    Program(
                        [thread0, list(partner)],
                        name=f"{a_kind}.{b_kind}",
                    ),
                    len(prefix),
                )
            )
    return out


ACCESS_KINDS = ["Rna", "Wna", "Rsc", "RscWsc"]
FENCE_KINDS = ["Frm", "Fww", "Fsc"]


class TestTableSafety:
    """Every ✓ cell: reordering adds no outcomes in any of our contexts."""

    @pytest.mark.parametrize(
        "a_kind,b_kind",
        [
            (a, b)
            for a in KINDS
            for b in KINDS
            if REORDER_TABLE[a][b] and not (a == b and a in FENCE_KINDS)
        ],
        ids=lambda v: v,
    )
    def test_safe_cells(self, a_kind, b_kind):
        for program, index in contexts(a_kind, b_kind):
            assert check_reordering_in_context(program, 0, index), (
                a_kind, b_kind, program.name,
            )


class TestTableUnsafety:
    """Key ✗ cells have witness contexts: reordering changes behaviour."""

    def _some_context_breaks(self, a_kind, b_kind) -> bool:
        for program, index in contexts(a_kind, b_kind):
            if not check_reordering_in_context(program, 0, index):
                return True
        return False

    @pytest.mark.parametrize(
        "a_kind,b_kind",
        [
            ("Rna", "Frm"), ("Frm", "Rna"), ("Wna", "Fww"), ("Fww", "Wna"),
            ("Rna", "Fsc"), ("Fsc", "Rna"), ("Wna", "Fsc"), ("Fsc", "Wna"),
            ("Rna", "RscWsc"), ("RscWsc", "Rna"),
            ("Wna", "RscWsc"), ("RscWsc", "Wna"),
        ],
        ids=lambda v: v,
    )
    def test_unsafe_cells_witnessed(self, a_kind, b_kind):
        assert not REORDER_TABLE[a_kind][b_kind]
        assert self._some_context_breaks(a_kind, b_kind), (a_kind, b_kind)


class TestTableContents:
    """The table itself matches Figure 11a rows the paper prints."""

    def test_nonatomics_reorder_freely(self):
        assert can_reorder("Rna", "Wna")
        assert can_reorder("Wna", "Rna")
        assert can_reorder("Rna", "Rna")
        assert can_reorder("Wna", "Wna")

    def test_nonatomics_never_cross_rmw(self):
        for a in ("Rna", "Wna"):
            assert not can_reorder(a, "RscWsc")
            assert not can_reorder("RscWsc", a)

    def test_store_reorders_with_successor_frm(self):
        assert can_reorder("Wna", "Frm")

    def test_load_reorders_with_fww_both_ways(self):
        assert can_reorder("Rna", "Fww")
        assert can_reorder("Fww", "Rna")

    def test_fences_reorder_with_fences(self):
        for a in FENCE_KINDS:
            for b in FENCE_KINDS:
                assert can_reorder(a, b)

    def test_load_never_crosses_its_frm(self):
        assert not can_reorder("Rna", "Frm")
        assert not can_reorder("Frm", "Rna")

    def test_store_never_crosses_its_fww(self):
        assert not can_reorder("Wna", "Fww")
        assert not can_reorder("Fww", "Wna")


class TestEliminations:
    def test_rar(self):
        src = Program(
            [[Ld("X", "a"), Ld("X", "b")], [St("X", 1)]], name="rar"
        )
        tgt = eliminate_rar(src, 0, 0, 1)
        assert check_elimination(src, tgt)

    def test_f_rar_across_frm_and_fww(self):
        for kind in ("rm", "ww"):
            src = Program(
                [[Ld("X", "a"), Fence(kind), Ld("X", "b")], [St("X", 1)]],
                name="frar",
            )
            tgt = eliminate_rar(src, 0, 0, 2)
            assert check_elimination(src, tgt), kind

    def test_raw(self):
        src = Program(
            [[St("X", 4), Ld("X", "a")], [St("X", 1)]], name="raw"
        )
        tgt = eliminate_raw(src, 0, 0, 1)
        assert check_elimination(src, tgt)

    def test_f_raw_across_fsc_and_fww(self):
        for kind in ("sc", "ww"):
            src = Program(
                [[St("X", 4), Fence(kind), Ld("X", "a")], [St("X", 1)]],
                name="fraw",
            )
            tgt = eliminate_raw(src, 0, 0, 2)
            assert check_elimination(src, tgt), kind

    def test_waw(self):
        src = Program(
            [[St("X", 1), St("X", 2)], [Ld("X", "a")]], name="waw"
        )
        tgt = eliminate_waw(src, 0, 0)
        assert check_elimination(src, tgt)

    def test_f_waw_across_frm_and_fww(self):
        for kind in ("rm", "ww"):
            src = Program(
                [[St("X", 1), Fence(kind), St("X", 2)], [Ld("X", "a")]],
                name="fwaw",
            )
            tgt = eliminate_waw(src, 0, 0)
            assert check_elimination(src, tgt), kind


class TestFenceMerging:
    def test_frm_fww_to_fsc_sound(self):
        src = Program(
            [
                [Ld("X", "a"), Fence("rm"), Fence("ww"), St("Y", 1)],
                [Ld("Y", "b"), Fence("rm"), Ld("X", "c")],
            ],
            name="merge",
        )
        tgt = merge_adjacent_fences(src, 0, 1)
        assert check_elimination(src, tgt, compare_registers=True)
        kinds = [op.kind for op in tgt.threads[0] if isinstance(op, Fence)]
        assert kinds == ["sc"]

    def test_like_pair_collapses(self):
        src = Program([[St("X", 1), Fence("ww"), Fence("ww"), St("Y", 1)]])
        tgt = merge_adjacent_fences(src, 0, 1)
        kinds = [op.kind for op in tgt.threads[0] if isinstance(op, Fence)]
        assert kinds == ["ww"]
        assert check_elimination(src, tgt, compare_registers=True)

    def test_strengthening_is_sound_not_weakening(self):
        """Replacing Frm by Fsc keeps behaviours; Fsc by Frm may not."""
        src = Program(
            [
                [St("X", 1), Fence("sc"), Ld("Y", "a")],
                [St("Y", 1), Fence("sc"), Ld("X", "b")],
            ]
        )
        from repro.memmodel import weaken_fences

        weak = weaken_fences(src, {"sc": "rm"})
        src_o = outcomes(src, "limm")
        weak_o = outcomes(weak, "limm")
        assert not weak_o <= src_o  # weakening added the a=b=0 outcome


class TestSpeculativeLoadIntroduction:
    """§7.2: hoisting a load out of a conditional is safe on LIMM."""

    def test_safe_in_mp_context(self):
        from repro.memmodel import check_speculative_load

        prog = Program(
            [
                [St("X", 1), Fence("ww"), St("Y", 1)],
                [Ld("Y", "a"), Fence("rm"), Ld("X", "b")],
            ],
            name="mp-ir",
        )
        for tid in (0, 1):
            for index in range(len(prog.threads[tid]) + 1):
                for loc in ("X", "Y", "Z"):
                    assert check_speculative_load(prog, tid, index, loc), (
                        tid, index, loc,
                    )

    def test_safe_before_rmw(self):
        from repro.memmodel import check_speculative_load

        prog = Program(
            [[Rmw("X", 0, 2, reg="r")], [St("X", 1)]], name="rmw"
        )
        assert check_speculative_load(prog, 0, 0, "X")
        assert check_speculative_load(prog, 1, 0, "X")

    def test_speculative_store_would_be_wrong(self):
        """The dual — introducing a store — is NOT safe (sanity check that
        the checker can fail)."""
        from repro.memmodel import outcomes as outc

        prog = Program([[Ld("X", "a")]], name="p")
        target = Program([[St("X", 9), Ld("X", "a")]], name="p+store")
        src = outc(prog, "limm")
        tgt = outc(target, "limm")
        assert not tgt <= src
