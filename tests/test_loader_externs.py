"""Tests for the EFACT-style external-function catalog."""

import pytest

from repro.loader import (
    CATALOG,
    catalog_summary,
    format_printf,
    normalize_name,
    resolve_names,
)
from repro.loader.externs import ExternEnv, _cstr_cmp


class TestNameNormalization:
    @pytest.mark.parametrize("raw,want", [
        ("malloc", "malloc"),
        ("__libc_malloc", "malloc"),
        ("__GI_memcpy", "memcpy"),
        ("__new_memcpy_ifunc", "memcpy"),
        ("__memcpy_avx2_unaligned", "memcpy"),
        ("_IO_puts", "puts"),
        ("_IO_printf", "printf"),
        ("__printf", "printf"),
        ("strlen_ifunc", "strlen"),
        ("__strlen_sse2", "strlen"),
        ("__pthread_create_2_1", "pthread_create"),
        ("_exit", "exit"),
        ("cfree", "free"),
    ])
    def test_glibc_decoration_stripped(self, raw, want):
        assert normalize_name(raw) == want

    def test_unknown_names_pass_through(self):
        # qsort is not catalogued; decoration comes off, name survives.
        assert normalize_name("qsort") == "qsort"
        assert resolve_names(["qsort", "nonsense"]) is None

    def test_resolve_first_hit_wins(self):
        entry = resolve_names(["not_a_thing", "__libc_calloc"])
        assert entry is not None and entry.name == "calloc"


class TestCatalogEntries:
    def test_sigs_in_external_sigs_shape(self):
        assert CATALOG["malloc"].sig == (1, 0, "i64")
        assert CATALOG["memcpy"].sig == (3, 0, "i64")
        assert CATALOG["free"].sig == (1, 0, "void")
        assert CATALOG["pthread_create"].sig == (4, 0, "i64")

    def test_noreturn_flags(self):
        assert CATALOG["exit"].noreturn and CATALOG["abort"].noreturn
        assert not CATALOG["printf"].noreturn


class TestCatalogSummaries:
    def test_minicc_owned_names_are_excluded(self):
        # malloc/abort belong to minicc's EXTERNAL_SIGS; the catalog must
        # not change their (conservative) analysis treatment.
        assert catalog_summary("malloc") is None
        assert catalog_summary("abort") is None

    def test_memcpy_modref_and_provenance_flow(self):
        from repro.analysis.pointsto import MOD, REF

        s = catalog_summary("memcpy")
        assert s is not None and s.nparams == 3
        assert s.param_modref == (MOD, REF, 0)
        # *dst receives *src's contents: pointer provenance must flow.
        assert ("contents", 1) in s.stores_into[0]
        assert s.returns == frozenset({("param", 0)})
        assert s.param_escapes == (False, False, False)

    def test_pthread_create_escapes_its_argument(self):
        # Both the start routine and its argument escape: the spawned
        # thread calls one with the other.
        s = catalog_summary("pthread_create")
        assert s.param_escapes == (False, False, True, True)

    def test_pure_reader_and_void_writer(self):
        from repro.analysis.pointsto import MOD, REF

        strlen = catalog_summary("strlen")
        assert strlen.param_modref == (REF,)
        assert strlen.returns == frozenset({("unknown",)})
        memset = catalog_summary("memset")
        assert memset.param_modref == (MOD, 0, 0)

    def test_unknown_name_has_no_summary(self):
        assert catalog_summary("qsort") is None


class _MemEnv(ExternEnv):
    """Just enough environment for format_printf's %s: a flat byte map
    read one byte at a time by ``read_cstr``."""

    def __init__(self, strings: dict[int, bytes]):
        self.mem: dict[int, int] = {}
        for base, blob in strings.items():
            for i, byte in enumerate(blob + b"\x00"):
                self.mem[base + i] = byte

    def read(self, addr: int, size: int) -> bytes:
        return bytes(self.mem.get(addr + i, 0) for i in range(size))


class TestPrintfSubset:
    def setup_method(self):
        self.env = _MemEnv({0x100: b"world"})

    def fmt(self, fmt: str, *args) -> str:
        return format_printf(fmt.encode(), list(args), self.env)

    def test_integers_signed_and_unsigned(self):
        assert self.fmt("%d", 2**64 - 1) == "-1"       # 32-bit signed
        assert self.fmt("%ld", 2**64 - 1) == "-1"      # 64-bit signed
        assert self.fmt("%d", 2**32 - 5) == "-5"
        assert self.fmt("%u", 2**32 - 5) == str(2**32 - 5)
        assert self.fmt("%lu", 2**64 - 5) == str(2**64 - 5)
        assert self.fmt("%zu", 7) == "7"

    def test_hex_char_str_pointer_percent(self):
        assert self.fmt("%x", 0xDEAD) == "dead"
        assert self.fmt("%lx", 1 << 40) == format(1 << 40, "x")
        assert self.fmt("%c", ord("A")) == "A"
        assert self.fmt("hello %s", 0x100) == "hello world"
        assert self.fmt("%p", 0x401000) == "0x401000"
        assert self.fmt("100%%") == "100%"

    def test_unknown_directive_passes_through(self):
        assert self.fmt("%q!", 3) == "%q!"

    def test_missing_arguments_read_as_zero(self):
        assert self.fmt("%d %d %d", 1) == "1 0 0"


class TestCstrCmp:
    def test_ordering_matches_strcmp(self):
        assert _cstr_cmp(b"abc", b"abc") == 0
        assert _cstr_cmp(b"abc", b"abd") == -1
        assert _cstr_cmp(b"abd", b"abc") == 1
        assert _cstr_cmp(b"ab", b"abc") == -1   # prefix sorts first
        assert _cstr_cmp(b"abc", b"ab") == 1
