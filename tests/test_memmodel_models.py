"""Tests of the axiomatic models: the paper's Figures 1, 2, 9 and 10."""


from repro.memmodel import (
    CoRR,
    CoWW,
    FIG10_LEFT_IR,
    FIG10_RIGHT_IR,
    Fence,
    LB,
    LB_DATA,
    Ld,
    MP,
    MP_MAPPED_ARM,
    MP_MAPPED_IR,
    Program,
    Rmw,
    SB,
    SB_FENCED_ARM,
    SB_FENCED_LIMM,
    SB_FENCED_X86,
    St,
    behaviours,
    has_outcome,
    outcomes,
)


class TestEnumeration:
    def test_single_store_has_one_behaviour(self):
        p = Program([[St("X", 1)]])
        assert behaviours(p, "x86") == {frozenset({("X", 1)})}

    def test_read_can_see_init_or_store(self):
        p = Program([[St("X", 1)], [Ld("X", "a")]])
        o = outcomes(p, "x86")
        assert has_outcome(o, t2_a=0)
        assert has_outcome(o, t2_a=1)

    def test_failed_rmw_generates_single_read(self):
        p = Program([[Rmw("X", 5, 9, reg="r")]])
        # X starts at 0 ≠ 5: the CAS must fail, memory stays 0.
        assert behaviours(p, "x86") == {frozenset({("X", 0)})}
        o = outcomes(p, "x86")
        assert has_outcome(o, t1_r=0)

    def test_successful_rmw_writes(self):
        p = Program([[Rmw("X", 0, 9, reg="r")]])
        assert behaviours(p, "x86") == {frozenset({("X", 9)})}

    def test_rmw_success_consistent_with_rf(self):
        # CAS expecting 1 after a store of 1 can succeed or run first & fail.
        p = Program([[St("X", 1)], [Rmw("X", 1, 7, reg="r")]])
        b = behaviours(p, "x86")
        assert frozenset({("X", 7)}) in b
        assert frozenset({("X", 1)}) in b

    def test_data_dependency_values_flow(self):
        p = Program([[St("X", 5)], [Ld("X", "a"), St("Y", __import__(
            "repro.memmodel", fromlist=["Reg"]).Reg("a"))]])
        b = behaviours(p, "x86")
        assert frozenset({("X", 5), ("Y", 5)}) in b
        assert frozenset({("X", 5), ("Y", 0)}) in b


class TestSCPerLocation:
    def test_corr_forbidden_everywhere(self):
        for model in ("x86", "arm", "limm"):
            o = outcomes(CoRR, model)
            assert not has_outcome(o, t2_a=1, t2_b=0), model

    def test_coww_final_value(self):
        for model in ("x86", "arm", "limm"):
            assert behaviours(CoWW, model) == {frozenset({("X", 2)})}, model


class TestFigure1:
    def test_sb_allowed_in_all_models(self):
        for model in ("x86", "arm", "limm"):
            assert has_outcome(outcomes(SB, model), t1_a=0, t2_b=0), model

    def test_mp_distinguishes_x86_from_arm(self):
        assert not has_outcome(outcomes(MP, "x86"), t2_a=1, t2_b=0)
        assert has_outcome(outcomes(MP, "arm"), t2_a=1, t2_b=0)

    def test_mp_allowed_in_limm(self):
        """LIMM non-atomics are weaker than x86 (motivates Fig. 2)."""
        assert has_outcome(outcomes(MP, "limm"), t2_a=1, t2_b=0)


class TestLoadBuffering:
    def test_lb_forbidden_on_x86(self):
        assert not has_outcome(outcomes(LB, "x86"), t1_a=1, t2_b=1)

    def test_lb_allowed_on_arm_and_limm(self):
        assert has_outcome(outcomes(LB, "arm"), t1_a=1, t2_b=1)
        assert has_outcome(outcomes(LB, "limm"), t1_a=1, t2_b=1)

    def test_lb_with_data_deps_forbidden_on_arm(self):
        """dob includes data dependencies: no thin-air on Arm."""
        o = outcomes(LB_DATA, "arm")
        assert not has_outcome(o, t1_a=1, t2_b=1)


class TestFences:
    def test_fenced_sb_forbidden(self):
        assert not has_outcome(outcomes(SB_FENCED_X86, "x86"), t1_a=0, t2_b=0)
        assert not has_outcome(outcomes(SB_FENCED_ARM, "arm"), t1_a=0, t2_b=0)
        assert not has_outcome(outcomes(SB_FENCED_LIMM, "limm"), t1_a=0, t2_b=0)

    def test_dmbst_only_orders_stores(self):
        """DMBST between a store and a load does NOT forbid SB."""
        p = Program(
            [
                [St("X", 1), Fence("st"), Ld("Y", "a")],
                [St("Y", 1), Fence("st"), Ld("X", "b")],
            ]
        )
        assert has_outcome(outcomes(p, "arm"), t1_a=0, t2_b=0)

    def test_dmbld_does_not_order_store_load(self):
        p = Program(
            [
                [St("X", 1), Fence("ld"), Ld("Y", "a")],
                [St("Y", 1), Fence("ld"), Ld("X", "b")],
            ]
        )
        assert has_outcome(outcomes(p, "arm"), t1_a=0, t2_b=0)

    def test_fww_orders_write_write_in_limm(self):
        """MP with Fww+Frm is exactly Figure 9b: outcome forbidden."""
        assert not has_outcome(outcomes(MP_MAPPED_IR, "limm"), t2_a=1, t2_b=0)

    def test_mapped_arm_mp_forbidden(self):
        assert not has_outcome(outcomes(MP_MAPPED_ARM, "arm"), t2_a=1, t2_b=0)

    def test_frm_alone_insufficient_for_mp(self):
        p = Program(
            [
                [St("X", 1), St("Y", 1)],           # no Fww
                [Ld("Y", "a"), Fence("rm"), Ld("X", "b")],
            ]
        )
        assert has_outcome(outcomes(p, "limm"), t2_a=1, t2_b=0)

    def test_fww_alone_insufficient_for_mp(self):
        p = Program(
            [
                [St("X", 1), Fence("ww"), St("Y", 1)],
                [Ld("Y", "a"), Ld("X", "b")],       # no Frm
            ]
        )
        assert has_outcome(outcomes(p, "limm"), t2_a=1, t2_b=0)


class TestRMWOrdering:
    def test_fig10_left_limm_forbids_double_success(self):
        o = outcomes(FIG10_LEFT_IR, "limm")
        assert not has_outcome(o, t1_r=0, t2_r=0)

    def test_fig10_right_limm_forbids_sb_outcome(self):
        o = outcomes(FIG10_RIGHT_IR, "limm")
        assert not has_outcome(o, t1_a=0, t2_b=0)

    def test_rmw_acts_as_fence_in_x86(self):
        """SB with an interposed successful RMW is forbidden on x86."""
        p = Program(
            [
                [St("X", 1), Rmw("Z", 0, 1), Ld("Y", "a")],
                [St("Y", 1), Rmw("W", 0, 1), Ld("X", "b")],
            ]
        )
        assert not has_outcome(outcomes(p, "x86"), t1_a=0, t2_b=0)

    def test_atomicity_axiom(self):
        """Both CAS(X,0,_) cannot succeed: one must observe the other."""
        p = Program(
            [
                [Rmw("X", 0, 1, reg="r")],
                [Rmw("X", 0, 2, reg="r")],
            ]
        )
        for model in ("x86", "arm", "limm"):
            o = outcomes(p, model)
            assert not has_outcome(o, t1_r=0, t2_r=0), model
