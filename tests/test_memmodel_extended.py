"""Extended memory-model tests: Appendix A (release/acquire), Appendix B
(the reverse Arm→x86 mapping), and the wider litmus battery."""

import pytest

from repro.memmodel import (
    CoRR,
    CoWW,
    IRIW,
    IRIW_FENCED_ARM,
    LB,
    Ld,
    MP,
    MP_RELACQ,
    Program,
    R_TEST,
    S_TEST,
    SB,
    SB_FENCED_ARM,
    St,
    TWO_PLUS_TWO_W,
    WRC,
    WRC_UNFENCED,
    check_arm_to_ir,
    check_arm_to_x86,
    check_ir_to_x86,
    has_outcome,
    map_arm_to_ir,
    outcomes,
)

ARM_BATTERY = [SB, MP, LB, CoRR, CoWW, SB_FENCED_ARM]


class TestReleaseAcquire:
    def test_mp_relacq_forbidden_on_arm(self):
        """Appendix A: rel-store/acq-load pairs restore MP ordering."""
        assert not has_outcome(outcomes(MP_RELACQ, "arm"), t2_a=1, t2_b=0)

    def test_release_alone_insufficient(self):
        p = Program(
            [
                [St("X", 1), St("Y", 1, ordering="rel")],
                [Ld("Y", "a"), Ld("X", "b")],  # no acquire
            ]
        )
        assert has_outcome(outcomes(p, "arm"), t2_a=1, t2_b=0)

    def test_acquire_alone_insufficient(self):
        p = Program(
            [
                [St("X", 1), St("Y", 1)],  # no release
                [Ld("Y", "a", ordering="acq"), Ld("X", "b")],
            ]
        )
        assert has_outcome(outcomes(p, "arm"), t2_a=1, t2_b=0)

    def test_acquire_does_not_order_earlier_accesses(self):
        """[A];po orders later events only; SB stays allowed."""
        p = Program(
            [
                [St("X", 1), Ld("Y", "a", ordering="acq")],
                [St("Y", 1), Ld("X", "b", ordering="acq")],
            ]
        )
        assert has_outcome(outcomes(p, "arm"), t1_a=0, t2_b=0)


class TestExtendedBattery:
    def test_wrc_with_fences_is_causal(self):
        o = outcomes(WRC, "arm")
        assert not has_outcome(o, t2_a=1, t3_b=1, t3_c=0)

    def test_wrc_unfenced_allows_non_causal(self):
        o = outcomes(WRC_UNFENCED, "arm")
        assert has_outcome(o, t2_a=1, t3_b=1, t3_c=0)

    def test_wrc_forbidden_on_x86_even_unfenced(self):
        o = outcomes(WRC_UNFENCED, "x86")
        assert not has_outcome(o, t2_a=1, t3_b=1, t3_c=0)

    def test_iriw_split_reads_allowed_on_plain_arm(self):
        o = outcomes(IRIW, "arm")
        assert has_outcome(o, t3_a=1, t3_b=0, t4_c=1, t4_d=0)

    def test_iriw_forbidden_with_full_fences(self):
        """Arm is multi-copy atomic: DMBFF restores IRIW."""
        o = outcomes(IRIW_FENCED_ARM, "arm")
        assert not has_outcome(o, t3_a=1, t3_b=0, t4_c=1, t4_d=0)

    def test_iriw_forbidden_on_x86(self):
        o = outcomes(IRIW, "x86")
        assert not has_outcome(o, t3_a=1, t3_b=0, t4_c=1, t4_d=0)

    def test_s_shape(self):
        # a=1 (read the other thread's Y) with X finally 2 means T2's write
        # to X was overwritten even though it po-followed the read: allowed
        # on Arm, forbidden on x86.
        bad = dict(t2_a=1)

        def final_x2(outcome):
            return ("X", 2) in outcome and ("t2:a", 1) in outcome

        arm = any(final_x2(o) for o in outcomes(S_TEST, "arm"))
        x86 = any(final_x2(o) for o in outcomes(S_TEST, "x86"))
        assert arm and not x86

    def test_r_shape(self):
        # T1: X=1;Y=1  T2: Y=2;a=X.  The SC-violating witness is final Y=2
        # with a=0.  Plain TSO *allows* it (the W→R pair in T2 may relax);
        # an MFENCE in T2 forbids it on x86, while Arm still allows the
        # unfenced version.
        def witness(outcome):
            return ("Y", 2) in outcome and ("t2:a", 0) in outcome

        assert any(witness(o) for o in outcomes(R_TEST, "arm"))
        assert any(witness(o) for o in outcomes(R_TEST, "x86"))

        from repro.memmodel import Fence

        fenced = Program(
            [
                [St("X", 1), St("Y", 1)],
                [St("Y", 2), Fence("mfence"), Ld("X", "a")],
            ]
        )
        assert not any(witness(o) for o in outcomes(fenced, "x86"))

    def test_2plus2w(self):
        # Final X=1 ∧ Y=1 requires both second writes to lose: needs W-W
        # reordering, so x86 forbids it while Arm allows it.
        target = frozenset({("X", 1), ("Y", 1)})
        from repro.memmodel import behaviours

        assert target in behaviours(TWO_PLUS_TWO_W, "arm")
        assert target not in behaviours(TWO_PLUS_TWO_W, "x86")


class TestReverseMapping:
    """Appendix B: weak→strong translation, Arm → IR → x86."""

    @pytest.mark.parametrize("program", ARM_BATTERY, ids=lambda p: p.name)
    def test_arm_to_ir(self, program):
        assert check_arm_to_ir(program, compare="outcome")

    @pytest.mark.parametrize("program", ARM_BATTERY, ids=lambda p: p.name)
    def test_ir_to_x86(self, program):
        assert check_ir_to_x86(map_arm_to_ir(program), compare="outcome")

    @pytest.mark.parametrize("program", ARM_BATTERY, ids=lambda p: p.name)
    def test_arm_to_x86_composition(self, program):
        assert check_arm_to_x86(program, compare="outcome")

    def test_frm_needed_for_dependency_preservation(self):
        """Without the trailing Frm, Arm→IR would be wrong: LIMM has no
        dependency ordering (§6.3), so an Arm-forbidden LB+data outcome
        becomes reachable.  The witness is LB with a data dependency on one
        side and a DMBFF on the other:

            T1: a = X; Y = a          T2: b = Y; DMBFF; X = 1

        a=b=1 is forbidden on Arm (dob + bob cycle) but allowed on LIMM if
        the dependency edge is simply dropped.
        """
        from repro.memmodel import Fence, Reg, check_mapping

        src = Program(
            [
                [Ld("X", "a"), St("Y", Reg("a"))],
                [Ld("Y", "b"), Fence("ff"), St("X", 1)],
            ],
            name="LB+data+dmb",
        )
        assert not has_outcome(outcomes(src, "arm"), t1_a=1, t2_b=1)

        # Naive translation: same accesses, LIMM fences for the DMB only.
        naive = Program(
            [
                [Ld("X", "a"), St("Y", Reg("a"))],
                [Ld("Y", "b"), Fence("sc"), St("X", 1)],
            ],
            name="naive",
        )
        assert has_outcome(outcomes(naive, "limm"), t1_a=1, t2_b=1)
        holds, _, _ = check_mapping(src, "arm", naive, "limm",
                                    compare="outcome")
        assert not holds  # the naive scheme is incorrect...

        proper = map_arm_to_ir(src)
        holds, _, _ = check_mapping(src, "arm", proper, "limm",
                                    compare="outcome")
        assert holds  # ...and the ld→ldna;Frm scheme repairs it

    def test_ir_fences_free_on_x86(self):
        """Frm/Fww vanish in the x86 target (x86's ppo subsumes them)."""
        from repro.memmodel import Fence, map_ir_to_x86

        src = Program([[Ld("X", "a"), Fence("rm"), Fence("ww"), St("Y", 1)]])
        tgt = map_ir_to_x86(src)
        assert all(not isinstance(op, Fence) for op in tgt.threads[0])

    def test_rel_acq_rejected_by_reverse_mapping(self):
        with pytest.raises(ValueError):
            map_arm_to_ir(MP_RELACQ)


class TestControlDependencies:
    """Arm's dob includes ctrl;[W] (Fig. 6); LIMM drops it (§6.3)."""

    def test_lb_ctrl_forbidden_on_arm(self):
        from repro.memmodel import CtrlDep

        p = Program(
            [
                [Ld("X", "a"), CtrlDep("a"), St("Y", 1)],
                [Ld("Y", "b"), CtrlDep("b"), St("X", 1)],
            ],
            name="LB+ctrls",
        )
        assert not has_outcome(outcomes(p, "arm"), t1_a=1, t2_b=1)

    def test_ctrl_does_not_order_loads(self):
        """The classic result: a branch orders dependent *writes* only, so
        MP with a control dependency on the reader side stays weak."""
        from repro.memmodel import CtrlDep, Fence

        p = Program(
            [
                [St("X", 1), Fence("st"), St("Y", 1)],
                [Ld("Y", "a"), CtrlDep("a"), Ld("X", "b")],
            ],
            name="MP+ctrl",
        )
        assert has_outcome(outcomes(p, "arm"), t2_a=1, t2_b=0)

    def test_limm_ignores_control_dependencies(self):
        """LIMM must allow the ctrl-ordered outcome (it has no dependency
        ordering), which is exactly why a dependency-preserving Arm→IR
        mapping needs the Frm (§6.3)."""
        from repro.memmodel import CtrlDep

        p = Program(
            [
                [Ld("X", "a"), CtrlDep("a"), St("Y", 1)],
                [Ld("Y", "b"), CtrlDep("b"), St("X", 1)],
            ],
            name="LB+ctrls",
        )
        assert has_outcome(outcomes(p, "limm"), t1_a=1, t2_b=1)

    def test_ctrl_on_undefined_register_rejected(self):
        from repro.memmodel import CtrlDep

        p = Program([[CtrlDep("nope"), St("X", 1)]], name="bad")
        assert outcomes(p, "limm") == set()
