"""Tests for the per-pass refinement checker (repro.analysis.tv.checker)."""

from repro.analysis.tv import TVChecker
from repro.analysis.tv.terms import TermBuilder
from repro.core import Lasagne
from repro.lir import (
    ConstantInt,
    Function,
    FunctionType,
    I64,
    IRBuilder,
    Module,
    clone_module,
)
from repro.opt import optimize_module

SRC = """
int g = 0;

int sel(int c) {
  int x = c + 7;
  int y = c - 3;
  int r;
  if (c > 0) { r = x; } else { r = y; }
  return r;
}

int main() {
  g = 1;
  g = g + sel(g) + sel(0 - 2);
  return g;
}
"""


def _module(body):
    m = Module("t")
    f = Function("f", FunctionType(I64, (I64,)), ["a"])
    m.add_function(f)
    body(f)
    return m


def _ret_const(value):
    def body(f):
        IRBuilder(f.new_block("entry")).ret(ConstantInt(I64, value))
    return body


class TestVerdicts:
    def test_unchanged_is_proved(self):
        m = _module(_ret_const(1))
        verdicts = TVChecker().check_pass(clone_module(m), m, "dce")
        assert [v.verdict for v in verdicts] == ["proved"]
        assert verdicts[0].reason == "unchanged"

    def test_equivalent_rewrite_is_proved(self):
        def before(f):
            b = IRBuilder(f.new_block("entry"))
            t = b.add(f.arguments[0], ConstantInt(I64, 1), "t")
            b.ret(b.add(t, ConstantInt(I64, 1), "u"))

        def after(f):
            b = IRBuilder(f.new_block("entry"))
            b.ret(b.add(f.arguments[0], ConstantInt(I64, 2), "u"))

        verdicts = TVChecker().check_pass(
            _module(before), _module(after), "instcombine")
        assert [v.verdict for v in verdicts] == ["proved"]
        assert verdicts[0].reason == "checked"

    def test_wrong_rewrite_is_refuted(self):
        def before(f):
            b = IRBuilder(f.new_block("entry"))
            b.ret(b.add(f.arguments[0], ConstantInt(I64, 1), "t"))

        def after(f):
            b = IRBuilder(f.new_block("entry"))
            b.ret(b.add(f.arguments[0], ConstantInt(I64, 2), "t"))

        verdicts = TVChecker().check_pass(
            _module(before), _module(after), "instcombine")
        assert [v.verdict for v in verdicts] == ["refuted"]
        assert "return value" in verdicts[0].reason

    def test_removed_function_is_unknown(self):
        before = _module(_ret_const(1))
        after = Module("t")
        verdicts = TVChecker().check_pass(before, after, "dce")
        assert [(v.verdict, v.reason) for v in verdicts] == [
            ("unknown", "function-removed")]

    def test_module_pass_change_is_unknown(self):
        verdicts = TVChecker().check_pass(
            _module(_ret_const(1)), _module(_ret_const(2)), "inline")
        assert [(v.verdict, v.reason) for v in verdicts] == [
            ("unknown", "module-pass")]

    def test_undef_mismatch_is_unknown_not_refuted(self):
        """Before returns a load of uninitialized local (undef); after
        returns 0 — a legal refinement, must never be refuted."""
        def before(f):
            b = IRBuilder(f.new_block("entry"))
            p = b.alloca(I64, "p")
            b.ret(b.load(p, name="v"))

        verdicts = TVChecker().check_pass(
            _module(before), _module(_ret_const(0)), "mem2reg")
        assert verdicts[0].verdict in ("proved", "unknown")


class TestRefinesOrder:
    def test_before_undef_is_wildcard(self):
        tb = TermBuilder()
        u = tb.undef(64)
        c = tb.const(64, 7)
        assert TVChecker._refines(u, c, {})
        # ... but only at matching sorts.
        assert not TVChecker._refines(tb.undef(32), c, {})

    def test_after_undef_does_not_refine(self):
        """Introducing fresh undef on the after side must NOT verify —
        refinement is asymmetric."""
        tb = TermBuilder()
        assert not TVChecker._refines(tb.const(64, 7), tb.undef(64), {})


class TestPipelineIntegration:
    def test_full_pipeline_on_real_program(self):
        """The whole standard pipeline over a lifted module: zero
        refutations and a healthy proved rate (the ISSUE acceptance
        floor is 60%)."""
        built = Lasagne(tv=True).build(SRC, "opt")
        report = built.tv_report
        assert report.refuted == 0
        assert len(report.verdicts) > 0
        assert report.proved / len(report.verdicts) >= 0.6

    def test_tv_report_serializes(self):
        built = Lasagne(tv=True).build(SRC, "opt")
        doc = built.tv_report.to_dict()
        assert set(doc["summary"]) == {"proved", "unknown", "refuted"}
        assert all("pass" in v and "function" in v and "verdict" in v
                   for v in doc["verdicts"])

    def test_checker_with_optimize_module(self):
        checker = TVChecker()
        built = Lasagne().build(SRC, "lifted")
        optimize_module(built.module, verify=True, tv=checker)
        assert checker.report.refuted == 0
        assert checker.report.proved > 0
