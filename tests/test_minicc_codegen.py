"""Differential tests of the three mini-C backends.

Every program is executed on (a) the x86 emulator via ``compile_to_x86``,
(b) the Arm emulator via the direct ``compile_to_arm`` backend and (c) the
LIR interpreter via ``compile_to_lir`` — all three must agree on the result
and printed output.
"""


from repro.arm import ArmEmulator
from repro.lir import Interpreter, verify_module
from repro.minicc import compile_to_arm, compile_to_x86
from repro.minicc.frontend_lir import compile_to_lir
from repro.x86 import X86Emulator


def run_all(source: str):
    obj = compile_to_x86(source)
    x86 = X86Emulator(obj)
    rx = x86.run()

    arm = ArmEmulator(compile_to_arm(source))
    ra = arm.run()

    lir = compile_to_lir(source)
    verify_module(lir)
    interp = Interpreter(lir)
    rl = interp.run("main")

    assert rx == ra == rl, (rx, ra, rl)
    assert x86.output == arm.output == interp.output
    return rx, x86.output


class TestScalars:
    def test_arithmetic(self):
        r, _ = run_all("int main() { return (7 + 3) * 2 - 5; }")
        assert r == 15

    def test_division_and_modulo(self):
        r, _ = run_all("int main() { return 17 / 5 * 100 + 17 % 5; }")
        assert r == 302

    def test_negative_numbers(self):
        r, _ = run_all("int main() { return -7 / 2; }")
        assert r == -3

    def test_bitwise(self):
        r, _ = run_all("int main() { return (12 & 10) | (1 ^ 3); }")
        assert r == (12 & 10) | (1 ^ 3)

    def test_shifts(self):
        r, _ = run_all("int main() { return (1 << 10) >> 3; }")
        assert r == 128

    def test_comparisons_produce_bool(self):
        r, _ = run_all("int main() { return (3 < 5) + (5 <= 5) + (7 > 9); }")
        assert r == 2

    def test_logical_short_circuit(self):
        src = """
        int g = 0;
        int bump() { g = g + 1; return 1; }
        int main() {
          int a = 0 && bump();
          int b = 1 || bump();
          return g * 10 + a + b;
        }
        """
        r, _ = run_all(src)
        assert r == 1  # bump never ran

    def test_unary_not_and_complement(self):
        r, _ = run_all("int main() { return !0 * 10 + !5 + (~0 == -1); }")
        assert r == 11


class TestDoubles:
    def test_double_arithmetic(self):
        r, out = run_all(
            "int main() { double d = 1.5 * 4.0 + 1.0; print_f(d); "
            "return (int)d; }"
        )
        assert r == 7
        assert out == ["7.000000"]

    def test_double_comparisons(self):
        r, _ = run_all(
            "int main() { double a = 1.5; double b = 2.5; "
            "return (a < b) * 100 + (a >= b) * 10 + (a == a); }"
        )
        assert r == 101

    def test_int_double_conversions(self):
        r, _ = run_all(
            "int main() { int i = 7; double d = (double)i / 2.0; "
            "return (int)(d * 10.0); }"
        )
        assert r == 35

    def test_sqrt_builtin(self):
        r, _ = run_all("int main() { return (int)sqrt(144.0); }")
        assert r == 12

    def test_double_params_and_return(self):
        src = """
        double mix(double a, int k, double b) { return a * (double)k + b; }
        int main() { return (int)mix(1.5, 4, 0.5); }
        """
        r, _ = run_all(src)
        assert r == 6

    def test_negative_double(self):
        r, _ = run_all("int main() { double d = -2.5; return (int)(d * -4.0); }")
        assert r == 10


class TestMemory:
    def test_global_arrays(self):
        src = """
        int a[8];
        int main() {
          for (int i = 0; i < 8; i = i + 1) { a[i] = i * i; }
          int s = 0;
          for (int i = 0; i < 8; i = i + 1) { s = s + a[i]; }
          return s;
        }
        """
        r, _ = run_all(src)
        assert r == sum(i * i for i in range(8))

    def test_pointers_and_address_of(self):
        src = """
        int g = 5;
        int main() {
          int *p = &g;
          *p = *p + 37;
          return g;
        }
        """
        r, _ = run_all(src)
        assert r == 42

    def test_pointer_indexing_params(self):
        src = """
        int a[4];
        int get(int *p, int i) { return p[i]; }
        int main() { a[2] = 99; return get(a, 2); }
        """
        r, _ = run_all(src)
        assert r == 99

    def test_char_arrays_and_strings(self):
        src = """
        char buf[8];
        int main() {
          char *s = "hi!";
          for (int i = 0; i < 3; i = i + 1) { buf[i] = s[i]; }
          return buf[0] + buf[1] + buf[2];
        }
        """
        r, _ = run_all(src)
        assert r == ord("h") + ord("i") + ord("!")

    def test_malloc(self):
        src = """
        int main() {
          int *p = (int*)malloc(32);
          p[0] = 11; p[3] = 31;
          return p[0] + p[3];
        }
        """
        r, _ = run_all(src)
        assert r == 42

    def test_double_arrays(self):
        src = """
        double d[4];
        int main() {
          d[0] = 0.5; d[1] = 1.5; d[2] = 2.5; d[3] = 3.5;
          double s = 0.0;
          for (int i = 0; i < 4; i = i + 1) { s = s + d[i]; }
          return (int)s;
        }
        """
        r, _ = run_all(src)
        assert r == 8

    def test_pointer_difference(self):
        src = """
        int a[8];
        int main() { int *p = &a[6]; int *q = &a[2]; return p - q; }
        """
        r, _ = run_all(src)
        assert r == 4


class TestControlFlow:
    def test_while_break_continue(self):
        src = """
        int main() {
          int s = 0;
          int i = 0;
          while (1) {
            i = i + 1;
            if (i > 10) { break; }
            if (i % 2 == 0) { continue; }
            s = s + i;
          }
          return s;
        }
        """
        r, _ = run_all(src)
        assert r == 25

    def test_nested_loops(self):
        src = """
        int main() {
          int s = 0;
          for (int i = 0; i < 5; i = i + 1) {
            for (int j = 0; j < i; j = j + 1) { s = s + 1; }
          }
          return s;
        }
        """
        r, _ = run_all(src)
        assert r == 10

    def test_recursion(self):
        src = """
        int fib(int n) {
          if (n < 2) { return n; }
          return fib(n - 1) + fib(n - 2);
        }
        int main() { return fib(12); }
        """
        r, _ = run_all(src)
        assert r == 144

    def test_many_params(self):
        src = """
        int six(int a, int b, int c, int d, int e, int f) {
          return a + 10*b + 100*c + 1000*d + 10000*e + 100000*f;
        }
        int main() { return six(1, 2, 3, 4, 5, 6); }
        """
        r, _ = run_all(src)
        assert r == 654321


class TestConcurrency:
    def test_spawn_join(self):
        src = """
        int worker(int t) { return t * 10; }
        int main() {
          int t1 = spawn(worker, 1);
          int t2 = spawn(worker, 2);
          return join(t1) + join(t2);
        }
        """
        r, _ = run_all(src)
        assert r == 30

    def test_atomic_add(self):
        src = """
        int ctr = 0;
        int worker(int t) {
          for (int i = 0; i < 25; i = i + 1) { atomic_add(&ctr, 1); }
          return 0;
        }
        int main() {
          int t1 = spawn(worker, 0);
          int t2 = spawn(worker, 0);
          join(t1); join(t2);
          return ctr;
        }
        """
        r, _ = run_all(src)
        assert r == 50

    def test_atomic_cas_and_xchg(self):
        src = """
        int lockvar = 0;
        int main() {
          int old = atomic_cas(&lockvar, 0, 1);
          int old2 = atomic_cas(&lockvar, 0, 2);
          int old3 = atomic_xchg(&lockvar, 9);
          return old * 100 + old2 * 10 + old3;
        }
        """
        r, _ = run_all(src)
        assert r == 0 * 100 + 1 * 10 + 1

    def test_fence_is_emitted(self):
        obj = compile_to_x86("int main() { fence(); return 0; }")
        from repro.lifter import disassemble_function

        body = disassemble_function(obj, "main")
        assert any(i.mnemonic == "mfence" for i in body)


class TestRegisterAllocation:
    def test_register_locals_survive_calls(self):
        src = """
        int id(int x) { return x; }
        int main() {
          int acc = 0;
          for (int i = 0; i < 5; i = i + 1) { acc = acc + id(i); }
          return acc;
        }
        """
        r, _ = run_all(src)
        assert r == 10

    def test_addressed_locals_stay_in_memory(self):
        src = """
        int addone(int *p) { *p = *p + 1; return 0; }
        int main() {
          int x = 41;
          addone(&x);
          return x;
        }
        """
        r, _ = run_all(src)
        assert r == 42

    def test_leaf_function_double_registers(self):
        src = """
        double hypot2(double a, double b) {
          double aa = a * a;
          double bb = b * b;
          return aa + bb;
        }
        int main() { return (int)hypot2(3.0, 4.0); }
        """
        r, _ = run_all(src)
        assert r == 25


class TestSyntaxSugar:
    """Compound assignment and ++/-- desugar to plain assignments."""

    def test_compound_assignment(self):
        src = """
        int main() {
          int x = 10;
          x += 5; x -= 2; x *= 3; x /= 2; x %= 11;
          x <<= 2; x >>= 1; x &= 30; x |= 1; x ^= 6;
          return x;
        }
        """
        expected = 10
        expected += 5; expected -= 2; expected *= 3
        expected //= 2; expected %= 11
        expected <<= 2; expected >>= 1
        expected &= 30; expected |= 1; expected ^= 6
        r, _ = run_all(src)
        assert r == expected

    def test_increment_decrement(self):
        src = """
        int main() {
          int x = 5;
          x++;
          ++x;
          x--;
          return x;
        }
        """
        r, _ = run_all(src)
        assert r == 6

    def test_increment_in_for_loop(self):
        src = """
        int main() {
          int s = 0;
          for (int i = 0; i < 10; i++) { s += i; }
          return s;
        }
        """
        r, _ = run_all(src)
        assert r == 45

    def test_compound_on_array_element(self):
        src = """
        int a[4];
        int main() {
          a[2] = 7;
          a[2] += 35;
          a[2]++;
          return a[2];
        }
        """
        r, _ = run_all(src)
        assert r == 43

    def test_compound_through_pointer(self):
        src = """
        int g = 40;
        int main() {
          int *p = &g;
          *p += 2;
          return g;
        }
        """
        r, _ = run_all(src)
        assert r == 42

    def test_compound_on_double(self):
        src = """
        int main() {
          double d = 1.5;
          d *= 4.0;
          d += 1.0;
          return (int)d;
        }
        """
        r, _ = run_all(src)
        assert r == 7
