"""Static shape checks on the *real* pipeline's output: the translated Arm
binaries carry the fences the Fig. 8 mappings demand, in the right places.

(The Arm emulator executes sequentially-consistently, so the ordering
guarantees themselves are validated axiomatically in test_memmodel_*; here
we verify the pipeline emits the barriers those proofs assume.)
"""

import pytest

from repro.arm import fence_kind, is_fence
from repro.core import Lasagne

MP_SOURCE = """
int X = 0;
int Y = 0;
int out_a = 0;
int out_b = 0;
int writer(int unused) {
  X = 1;
  Y = 1;
  return 0;
}
int reader(int unused) {
  out_a = Y;
  out_b = X;
  return 0;
}
int main() {
  int w = spawn(writer, 0);
  int r = spawn(reader, 0);
  join(w); join(r);
  return out_a * 2 + out_b;
}
"""


def _mnemonics(program, name):
    return [i.mnemonic for i in program.functions[name].instructions()]


@pytest.fixture(scope="module")
def mp_ppopt():
    return Lasagne(verify=True).build(MP_SOURCE, "ppopt")


class TestMPShapes:
    def test_writer_has_store_store_barrier(self, mp_ppopt):
        """st → Fww;st: a DMBST (or a merged stronger DMBFF, §7 fence
        merging) must separate the two global stores."""
        mnems = _mnemonics(mp_ppopt.program, "writer")
        stores = [i for i, m in enumerate(mnems) if m == "str"]
        assert len(stores) >= 2
        first, last = stores[0], stores[-1]
        assert any(
            m in ("dmb ishst", "dmb ish") for m in mnems[first + 1 : last]
        ), "no store-ordering barrier between the writer's stores"

    def test_reader_has_load_barrier(self, mp_ppopt):
        """ld → ld;Frm: a DMBLD (or a merged stronger DMBFF) must separate
        the two global loads."""
        mnems = _mnemonics(mp_ppopt.program, "reader")
        loads = [i for i, m in enumerate(mnems) if m == "ldr"]
        assert len(loads) >= 2
        first, last = loads[0], loads[-1]
        assert any(
            m in ("dmb ishld", "dmb ish") for m in mnems[first + 1 : last]
        ), "no load-ordering barrier between the reader's loads"

    def test_unmerged_builds_use_the_precise_fences(self):
        """Without merging (the plain Opt config) the exact Fig. 8 fences
        appear: DMBST between stores, DMBLD after loads."""
        built = Lasagne(verify=True).build(MP_SOURCE, "opt")
        writer = _mnemonics(built.program, "writer")
        reader = _mnemonics(built.program, "reader")
        assert "dmb ishst" in writer
        assert "dmb ishld" in reader

    def test_translated_binary_still_correct(self, mp_ppopt):
        run = Lasagne.run(mp_ppopt)
        # SC execution of MP: a=1 implies b=1 (never the forbidden a=1,b=0).
        a, b = run.result >> 1, run.result & 1
        assert not (a == 1 and b == 0)

    def test_native_build_has_no_barriers_here(self):
        built = Lasagne(verify=True).build(MP_SOURCE, "native")
        for fn in built.program.functions.values():
            assert not any(is_fence(i) for i in fn.instructions())


class TestAtomicShapes:
    def test_rmw_translates_to_fenced_ll_sc(self):
        src = """
        int ctr = 0;
        int main() { return atomic_add(&ctr, 1); }
        """
        built = Lasagne(verify=True).build(src, "ppopt")
        mnems = _mnemonics(built.program, "main")
        i_ldxr = mnems.index("ldxr")
        i_stxr = mnems.index("stxr")
        assert "dmb ish" in mnems[:i_ldxr]
        assert "dmb ish" in mnems[i_stxr:]

    def test_mfence_translates_to_dmbff(self):
        src = "int g = 0; int main() { g = 1; fence(); return g; }"
        built = Lasagne(verify=True).build(src, "ppopt")
        kinds = [
            fence_kind(i)
            for i in built.program.functions["main"].instructions()
            if is_fence(i)
        ]
        assert "ff" in kinds

    def test_stack_only_function_needs_no_fences(self):
        src = """
        int main() {
          int a = 1;
          int b = 2;
          int c = a + b;
          return c * 2;
        }
        """
        built = Lasagne(verify=True).build(src, "ppopt")
        assert built.fences == 0
