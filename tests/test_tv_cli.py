"""Tests for the translation-validation CLI surfaces.

``repro tv`` (standalone report, JSON, SARIF, exit codes) and
``repro translate --tv`` (inline verdict gate).
"""

import json

import pytest

from repro.cli import main

SRC = """
int g = 0;

int sel(int c) {
  int x = c + 7;
  int y = c - 3;
  int r;
  if (c > 0) { r = x; } else { r = y; }
  return r;
}

int main() {
  g = 1;
  g = g + sel(g) + sel(0 - 2);
  return g;
}
"""


@pytest.fixture()
def src_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(SRC)
    return str(path)


class TestTvCommand:
    def test_clean_program_exits_zero(self, src_file, capsys):
        rc = main(["tv", src_file, "--config", "opt"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "0 refuted" in out

    def test_json_report(self, src_file, capsys):
        rc = main(["tv", src_file, "--config", "opt", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["config"] == "opt"
        assert doc["summary"]["refuted"] == 0
        assert doc["summary"]["proved"] > 0
        assert all(v["verdict"] in ("proved", "unknown", "refuted")
                   for v in doc["verdicts"])

    def test_sarif_report(self, src_file, tmp_path, capsys):
        sarif_path = tmp_path / "tv.sarif"
        rc = main(["tv", src_file, "--config", "opt",
                   "--sarif", str(sarif_path)])
        assert rc == 0
        doc = json.loads(sarif_path.read_text())
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        rules = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert rules <= {"tv/refuted", "tv/unknown"}
        assert all(r["ruleId"].startswith("tv/") for r in run["results"])

    def test_lifted_config_is_rejected(self, src_file, capsys):
        # lifted runs no passes, so the parser does not offer it at all.
        with pytest.raises(SystemExit):
            main(["tv", src_file, "--config", "lifted"])
        assert "invalid choice: 'lifted'" in capsys.readouterr().err

    def test_refuted_mutation_exits_one(self, src_file, capsys):
        from repro.analysis.tv.mutations import inject

        with inject("dse", "drop-store"):
            rc = main(["tv", src_file, "--config", "opt"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "refuted" in out

    def test_missing_file(self, capsys):
        rc = main(["tv", "/nonexistent/prog.c"])
        assert rc == 2


class TestTranslateTvFlag:
    def test_translate_tv_prints_counts(self, src_file, capsys):
        rc = main(["translate", src_file, "--config", "opt", "--tv"])
        assert rc == 0
        err = capsys.readouterr().err
        assert "tv:" in err and "0 refuted" in err

    def test_translate_tv_gates_on_refutation(self, src_file, capsys):
        from repro.analysis.tv.mutations import inject

        with inject("dse", "drop-store"):
            rc = main(["translate", src_file, "--config", "opt", "--tv"])
        assert rc == 1
        assert "tv REFUTED" in capsys.readouterr().err

    def test_translate_tv_lifted_reports_no_passes(self, src_file, capsys):
        rc = main(["translate", src_file, "--config", "lifted", "--tv"])
        assert rc == 0
        assert "no passes ran" in capsys.readouterr().err
