"""Direct tests for the clone utility, object-file helpers and misc APIs."""

import pytest

from repro.lir import (
    Br,
    ConstantInt,
    Function,
    FunctionType,
    I64,
    IRBuilder,
    Module,
    Phi,
    Ret,
    ptr,
)
from repro.lir.clone import CloneError, clone_instruction
from repro.minicc import compile_to_x86
from repro.x86.objfile import DATA_BASE, STUB_BASE, TEXT_BASE


class TestCloneInstruction:
    def _setup(self):
        m = Module("t")
        f = Function("f", FunctionType(I64, (I64, ptr(I64))), ["x", "p"])
        m.add_function(f)
        return m, f, IRBuilder(f.new_block("entry"))

    def test_clone_remaps_operands(self):
        m, f, b = self._setup()
        x = f.arguments[0]
        a = b.add(x, ConstantInt(I64, 1))
        replacement = ConstantInt(I64, 100)
        cloned = clone_instruction(
            a, lambda v: replacement if v is x else v
        )
        assert cloned is not a
        assert cloned.operands[0] is replacement
        assert cloned.op == "add"

    def test_clone_covers_memory_ops(self):
        m, f, b = self._setup()
        p = f.arguments[1]
        insts = [
            b.load(p),
            b.store(ConstantInt(I64, 1), p),
            b.atomicrmw("add", p, ConstantInt(I64, 2)),
            b.cmpxchg(p, ConstantInt(I64, 0), ConstantInt(I64, 1)),
            b.fence("sc"),
            b.gep(I64, p, [ConstantInt(I64, 3)]),
            b.icmp("eq", f.arguments[0], ConstantInt(I64, 0)),
            b.ptrtoint(p, I64),
        ]
        for inst in insts:
            cloned = clone_instruction(inst, lambda v: v)
            assert type(cloned) is type(inst)
            assert len(cloned.operands) == len(inst.operands)

    def test_clone_phi_is_empty(self):
        m, f, b = self._setup()
        phi = Phi(I64)
        f.entry.instructions.insert(0, phi)
        phi.parent = f.entry
        cloned = clone_instruction(phi, lambda v: v)
        assert isinstance(cloned, Phi)
        assert not cloned.incoming()

    def test_clone_branch_needs_block_map(self):
        m, f, b = self._setup()
        other = f.new_block("other")
        br = Br(None, other)
        with pytest.raises(CloneError):
            clone_instruction(br, lambda v: v)
        new_target = f.new_block("new")
        cloned = clone_instruction(
            br, lambda v: v, {id(other): new_target}
        )
        assert cloned.targets[0] is new_target

    def test_clone_ret_rejected(self):
        with pytest.raises(CloneError):
            clone_instruction(Ret(ConstantInt(I64, 0)), lambda v: v)


class TestObjectFile:
    @pytest.fixture()
    def obj(self):
        return compile_to_x86(
            "int g = 1; int helper() { return g; } "
            "int main() { return helper(); }"
        )

    def test_layout_regions(self, obj):
        assert obj.text_base == TEXT_BASE
        for sym in obj.data_symbols.values():
            assert sym.address >= DATA_BASE
        for addr in obj.externals.values():
            assert STUB_BASE <= addr < TEXT_BASE

    def test_function_at(self, obj):
        main = obj.functions["main"]
        assert obj.function_at(main.address).name == "main"
        assert obj.function_at(main.address + main.size - 1).name == "main"
        assert obj.function_at(0x100) is None

    def test_symbol_for_data_address(self, obj):
        g = obj.data_symbols["g"]
        assert obj.symbol_for_data_address(g.address).name == "g"
        assert obj.symbol_for_data_address(g.address + g.size + 64) is None

    def test_function_body_slicing(self, obj):
        body = obj.function_body("helper")
        assert len(body) == obj.functions["helper"].size
        assert body in obj.text


class TestParserPropertyRoundTrip:
    def test_random_modules_roundtrip(self):
        """Random DAG modules print → parse → print identically and run
        identically."""
        from hypothesis import given, settings, HealthCheck
        from tests.test_codegen_fuzz import dag_module  # reuse the strategy
        from repro.lir import Interpreter, format_module, parse_module

        @given(dag_module())
        @settings(max_examples=20, deadline=None,
                  suppress_health_check=[HealthCheck.too_slow])
        def inner(m):
            expected = Interpreter(m).run("main", [3, 4])
            text = format_module(m)
            parsed = parse_module(text)
            assert format_module(parsed) == text
            assert Interpreter(parsed).run("main", [3, 4]) == expected

        inner()
