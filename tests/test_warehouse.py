"""Tests for repro.warehouse: schema migration, idempotent ingest,
ranked diffs with the digest noise oracle, and the deterministic
dashboard renderer."""

import json
import sqlite3

import pytest

from repro.warehouse import (
    SCHEMA_VERSION,
    Warehouse,
    anomalies,
    build_dashboard,
    diff_runs,
    ingest_bench,
    ingest_ledger,
    ingest_profile,
    migrate,
    render_markdown,
    render_text,
    to_dict,
    to_json,
)
from repro.warehouse.schema import MIGRATIONS, schema_version


# ---- fixtures ---------------------------------------------------------------

def _summary(scale=1.0, digest="d0"):
    return {
        "ppopt": {
            "translate_seconds_total": 0.5 * scale,
            "arm_instructions_total": 100,
            "fences_total": 10,
            "fences_elided_total": 40,
            "fences_elided_beyond_walk_total": 8,
            "fences_elided_interproc_total": 6,
            "fences_elided_delayset_total": 4,
            "fences_elided_sync_total": 2,
            "fencecheck_violations_total": 0,
            "tv_proved_total": int(80 * scale),
            "tv_unknown_total": 5,
            "tv_refuted_total": 0,
            "work": {"opt.visits": int(1000 * scale),
                     "pointsto.transfers": int(500 * scale)},
            "work_digest": digest,
            "peak_rss_bytes": 1000,
        },
    }


def _bench_file(tmp_path, name="BENCH_translate.json"):
    """Two-entry trajectory (older clean, newer clean) plus a programs
    snapshot with v8 work_cells on the newest run."""
    data = {
        "version": 8,
        "size": "tiny",
        "trajectory": [
            {"sha": "aaa1111", "timestamp": "2026-08-01T00:00:00+00:00",
             "size": "tiny", "dirty": False, "version": 8,
             "summary": _summary(1.0, "d0")},
            {"sha": "bbb2222", "timestamp": "2026-08-02T00:00:00+00:00",
             "size": "tiny", "dirty": False, "version": 8,
             "summary": _summary(2.0, "d1")},
        ],
        "programs": {
            "demo": {
                "ppopt": {
                    "translate_seconds": 0.25,
                    "arm_instructions": 50,
                    "fences": 5,
                    "racecheck": {"racy": 3, "lock_protected": 1},
                    "provenance": {"instruction_pct": 100.0},
                    "work": {"opt.visits": 2000},
                    "work_cells": [
                        ["gvn", "opt.visits", "@main", 1200],
                        ["dce", "opt.visits", "@main", 800],
                    ],
                    "work_digest": "pd",
                },
            },
        },
        "loader": {
            "sum": {"ingest_seconds": 0.01, "functions_discovered": 2,
                    "ok": True, "work": {"triage.bytes": 100}},
        },
    }
    path = tmp_path / name
    path.write_text(json.dumps(data))
    return path


def _profile_artifact(tmp_path, name, sha, visits, stacks):
    data = {
        "source": "demo.c",
        "config": "ppopt",
        "builds": 2,
        "sha": sha,
        "dirty": False,
        "profile": {"total": 100, "duration": 1.0, "hz": 100.0},
        # the real artifact format: flamegraph.pl collapsed-stack text
        "collapsed": "".join(f"{stack} {n}\n"
                             for stack, n in sorted(stacks.items())),
        "work": {
            "counters": {"opt.visits": visits},
            "cells": [["gvn", "opt.visits", "@main", visits]],
            "digest": f"digest-{visits}",
        },
    }
    path = tmp_path / name
    path.write_text(json.dumps(data))
    return path


# ---- schema -----------------------------------------------------------------

class TestSchema:
    def test_fresh_database_migrates_to_current(self):
        with Warehouse() as store:
            assert store.schema_version == SCHEMA_VERSION
            assert store.migrations_applied == SCHEMA_VERSION

    def test_migrate_is_idempotent(self):
        with Warehouse() as store:
            assert migrate(store.conn) == 0

    def test_v1_database_upgrades_in_place(self):
        conn = sqlite3.connect(":memory:")
        conn.executescript(MIGRATIONS[0])
        conn.execute("PRAGMA user_version = 1")
        assert schema_version(conn) == 1
        assert migrate(conn) == SCHEMA_VERSION - 1
        assert schema_version(conn) == SCHEMA_VERSION
        # the v2 table exists and is usable
        conn.execute("INSERT INTO stacks VALUES (1, 'a;b', 3)")

    def test_newer_database_is_refused(self):
        conn = sqlite3.connect(":memory:")
        conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 1}")
        with pytest.raises(RuntimeError, match="newer"):
            migrate(conn)

    def test_on_disk_database_reopens(self, tmp_path):
        db = tmp_path / "w.sqlite"
        with Warehouse(db) as store:
            run = store.upsert_run("bench", "abc", False, "t1")
            store.put_summary_metric(run, "ppopt", "m", 1.0)
            store.commit()
        with Warehouse(db) as store:
            assert store.migrations_applied == 0
            assert store.summary(1) == {"ppopt": {"m": 1.0}}


# ---- store ------------------------------------------------------------------

class TestStore:
    def test_upsert_run_is_idempotent(self):
        with Warehouse() as store:
            a = store.upsert_run("bench", "abc", False, "t1", "tiny")
            b = store.upsert_run("bench", "abc", False, "t1", "tiny")
            assert a == b
            assert len(store.runs()) == 1

    def test_resolve_selectors(self):
        with Warehouse() as store:
            store.upsert_run("bench", "aaa", False, "t1")
            store.upsert_run("bench", "bbb", True, "t2")
            store.upsert_run("bench", "ccc", False, "t3")
            assert store.resolve("latest").sha == "ccc"
            assert store.resolve("prev").sha == "bbb"
            assert store.resolve("latest-clean").sha == "ccc"
            assert store.resolve("prev-clean").sha == "aaa"
            assert store.resolve("@2").sha == "aaa"
            assert store.resolve("bb").sha == "bbb"
            assert store.resolve("zzz") is None
            assert store.resolve("@9") is None
            assert store.resolve("@x") is None

    def test_resolve_empty_store(self):
        with Warehouse() as store:
            assert store.resolve("latest") is None


# ---- ingest -----------------------------------------------------------------

class TestIngest:
    def test_bench_ingest_maps_trajectory_to_runs(self, tmp_path):
        path = _bench_file(tmp_path)
        with Warehouse() as store:
            ingest_bench(store, path)
            runs = store.runs("bench")
            assert [r.sha for r in runs] == ["aaa1111", "bbb2222"]
            assert store.digests(runs[0].id) == {"ppopt": "d0"}
            summary = store.summary(runs[1].id)
            assert summary["ppopt"]["work.opt.visits"] == 2000.0

    def test_snapshot_attaches_to_newest_run(self, tmp_path):
        path = _bench_file(tmp_path)
        with Warehouse() as store:
            ingest_bench(store, path)
            older, newest = store.runs("bench")
            assert store.program_metrics(older.id) == {}
            metrics = store.program_metrics(newest.id)
            row = metrics[("ppopt", "demo")]
            assert row["racecheck.racy"] == 3.0
            assert row["provenance.instruction_pct"] == 100.0
            assert metrics[("loader", "sum")]["functions_discovered"] == 2.0
            cells = store.work_cells(newest.id)
            assert cells[("ppopt", "demo", "gvn", "opt.visits",
                          "@main")] == 1200

    def test_double_ingest_is_idempotent(self, tmp_path):
        path = _bench_file(tmp_path)
        with Warehouse() as store:
            ingest_bench(store, path)
            first = store.counts()
            ingest_bench(store, path)
            assert store.counts() == first

    def test_pre_v8_rows_fall_back_to_total_cells(self, tmp_path):
        data = json.loads(_bench_file(tmp_path).read_text())
        del data["programs"]["demo"]["ppopt"]["work_cells"]
        path = tmp_path / "old.json"
        path.write_text(json.dumps(data))
        with Warehouse() as store:
            ingest_bench(store, path)
            newest = store.runs("bench")[-1]
            cells = store.work_cells(newest.id)
            assert cells[("ppopt", "demo", "", "opt.visits", "")] == 2000

    def test_profile_ingest(self, tmp_path):
        path = _profile_artifact(tmp_path, "p.profile.json", "abc",
                                 100, {"main;gvn": 10, "main;dce": 5})
        with Warehouse() as store:
            counts = ingest_profile(store, path)
            assert counts == {"runs": 1, "work_cells": 1, "stacks": 2}
            run = store.runs("profile")[0]
            assert store.stacks(run.id) == {"main;gvn": 10, "main;dce": 5}
            assert store.digests(run.id) == {"ppopt": "digest-100"}
            ingest_profile(store, path)
            assert len(store.runs("profile")) == 1

    def test_ledger_ingest_is_idempotent(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_LEDGER", raising=False)
        from repro.profiler.ledger import append_entry

        append_entry("translate", {"rc": 0}, root=tmp_path)
        append_entry("bench", {"rc": 3}, root=tmp_path)
        with Warehouse() as store:
            assert ingest_ledger(store, tmp_path) == {"ledger_entries": 2}
            first = store.counts()
            ingest_ledger(store, tmp_path)
            assert store.counts() == first
            commands = sorted(e["command"]
                              for e in store.ledger_entries())
            assert commands == ["bench", "translate"]


# ---- diff -------------------------------------------------------------------

class TestDiff:
    def _two_runs(self, store, digest_b="d1"):
        a = store.upsert_run("bench", "aaa", False, "t1")
        b = store.upsert_run("bench", "bbb", False, "t2")
        for run, scale, digest in ((a, 1.0, "d0"), (b, 2.0, digest_b)):
            row = _summary(scale, digest)["ppopt"]
            for key, value in row.items():
                if key == "work":
                    for counter, n in value.items():
                        store.put_summary_metric(
                            run, "ppopt", f"work.{counter}", n)
                elif key == "work_digest":
                    store.put_digest(run, "ppopt", value)
                else:
                    store.put_summary_metric(run, "ppopt", key, value)
        return store.run(a), store.run(b)

    def test_digest_verdict_separates_noise_from_work(self):
        with Warehouse() as store:
            run_a, run_b = self._two_runs(store, digest_b="d1")
            report = diff_runs(store, run_a, run_b)
            assert report.times["ppopt"]["verdict"] == "work-change"
        with Warehouse() as store:
            run_a, run_b = self._two_runs(store, digest_b="d0")
            report = diff_runs(store, run_a, run_b)
            assert report.times["ppopt"]["verdict"] == "noise"

    def test_counter_deltas_are_ranked(self):
        with Warehouse() as store:
            run_a, run_b = self._two_runs(store)
            report = diff_runs(store, run_a, run_b)
            deltas = [(c, d) for _, c, _, _, d in report.counters]
            assert deltas == [("opt.visits", 1000.0),
                              ("pointsto.transfers", 500.0)]

    def test_fence_tiers_include_derived_walk(self):
        with Warehouse() as store:
            run_a, run_b = self._two_runs(store)
            tiers = diff_runs(store, run_a, run_b).fences["ppopt"]
            # walk = total(40) - escape(8) - interproc(6)
            #        - delayset(4) - sync(2) = 20, unchanged here
            assert tiers["walk"] == {"a": 20.0, "b": 20.0, "delta": 0.0}
            assert tiers["escape"]["a"] == 8.0
            assert tiers["total"]["a"] == 40.0

    def test_cell_deltas_rank_stage_by_function(self):
        with Warehouse() as store:
            a = store.upsert_run("profile", "aaa", False, "t1")
            b = store.upsert_run("profile", "bbb", False, "t2")
            store.put_work_cell(a, "ppopt", "demo", "gvn", "opt.visits",
                                "@main", 100)
            store.put_work_cell(b, "ppopt", "demo", "gvn", "opt.visits",
                                "@main", 700)
            store.put_work_cell(a, "ppopt", "demo", "dce", "opt.visits",
                                "@f", 50)
            store.put_work_cell(b, "ppopt", "demo", "dce", "opt.visits",
                                "@f", 60)
            report = diff_runs(store, store.run(a), store.run(b))
            assert report.cells[0][:5] == ("ppopt", "demo", "gvn",
                                           "opt.visits", "@main")
            assert report.cells[0][7] == 600
            # pass effectiveness groups opt.* work by stage
            assert ("gvn", 100, 700, 600) in report.passes

    def test_cell_deltas_suppressed_when_one_side_empty(self):
        with Warehouse() as store:
            a = store.upsert_run("bench", "aaa", False, "t1")
            b = store.upsert_run("bench", "bbb", False, "t2")
            store.put_work_cell(b, "ppopt", "demo", "gvn", "opt.visits",
                                "@main", 700)
            report = diff_runs(store, store.run(a), store.run(b))
            assert report.cells == []

    def test_flamegraph_frame_share_deltas(self):
        with Warehouse() as store:
            a = store.upsert_run("profile", "aaa", False, "t1")
            b = store.upsert_run("profile", "bbb", False, "t2")
            store.put_stack(a, "main;gvn", 50)
            store.put_stack(a, "main;dce", 50)
            store.put_stack(b, "main;gvn", 90)
            store.put_stack(b, "main;dce", 10)
            report = diff_runs(store, store.run(a), store.run(b))
            frames = dict((f, share) for f, _, _, share in report.frames)
            assert frames["gvn"] == pytest.approx(0.4)
            assert frames["dce"] == pytest.approx(-0.4)

    def test_renderers_cover_every_section(self):
        with Warehouse() as store:
            run_a, run_b = self._two_runs(store)
            report = diff_runs(store, run_a, run_b)
            text = render_text(report)
            assert "wall time" in text and "fence elisions" in text
            assert "translation-validation" in text
            markdown = render_markdown(report)
            assert "### Wall time" in markdown
            assert "### Translation-validation verdicts" in markdown
            assert "| ppopt |" in markdown
            data = to_dict(report)
            assert set(data) == {"run_a", "run_b", "times", "counters",
                                 "cells", "fences", "tv", "passes",
                                 "frames"}

    def test_tv_verdict_section(self):
        with Warehouse() as store:
            run_a, run_b = self._two_runs(store)
            report = diff_runs(store, run_a, run_b)
            verdicts = report.tv["ppopt"]
            assert verdicts["proved"] == {"a": 80.0, "b": 160.0,
                                          "delta": 80.0}
            assert verdicts["refuted"]["delta"] == 0.0
            assert "REFUTED" not in render_text(report)

    def test_tv_refutation_is_flagged_loudly(self):
        with Warehouse() as store:
            a = store.upsert_run("bench", "aaa", False, "t1")
            b = store.upsert_run("bench", "bbb", False, "t2")
            store.put_summary_metric(a, "ppopt", "tv_refuted_total", 0)
            store.put_summary_metric(b, "ppopt", "tv_refuted_total", 2)
            report = diff_runs(store, store.run(a), store.run(b))
            assert report.tv["ppopt"]["refuted"]["b"] == 2.0
            assert "!! REFUTED" in render_text(report)

    def test_diff_json_is_deterministic(self, tmp_path):
        path = _bench_file(tmp_path)
        outputs = []
        for _ in range(2):
            with Warehouse() as store:
                ingest_bench(store, path)
                run_a = store.resolve("prev")
                run_b = store.resolve("latest")
                outputs.append(to_json(diff_runs(store, run_a, run_b)))
        assert outputs[0] == outputs[1]
        json.loads(outputs[0])  # and it is valid JSON


# ---- dashboard --------------------------------------------------------------

class TestDashboard:
    def test_html_is_byte_identical_for_equal_inputs(self, tmp_path):
        path = _bench_file(tmp_path)
        pages = []
        for _ in range(2):
            with Warehouse() as store:
                ingest_bench(store, path)
                pages.append(build_dashboard(store))
        assert pages[0] == pages[1]

    def test_html_is_self_contained(self, tmp_path):
        path = _bench_file(tmp_path)
        with Warehouse() as store:
            ingest_bench(store, path)
            html = build_dashboard(store)
        assert html.startswith("<!doctype html>")
        assert "<svg" in html and "<style>" in html
        for external in ("http://", "https://", "<script", "<link",
                         "@import"):
            assert external not in html
        # drill-down table for the newest snapshot
        assert "Per-program drill-down" in html
        assert "demo" in html

    def test_empty_warehouse_renders_placeholder(self):
        with Warehouse() as store:
            html = build_dashboard(store)
        assert "No bench runs ingested yet" in html

    def test_anomaly_flags_use_icon_and_label(self, tmp_path):
        data = json.loads(_bench_file(tmp_path).read_text())
        entries = []
        for i in range(6):
            spike = 100.0 if i == 5 else 1.0
            entry = {"sha": f"sha{i}", "size": "tiny", "dirty": False,
                     "timestamp": f"2026-08-0{i + 1}T00:00:00+00:00",
                     "version": 8, "summary": _summary(spike, f"d{i}")}
            entries.append(entry)
        data["trajectory"] = entries
        path = tmp_path / "spiky.json"
        path.write_text(json.dumps(data))
        with Warehouse() as store:
            ingest_bench(store, path)
            html = build_dashboard(store)
        # never color alone: the flag is the icon + the word
        assert "&#9650; anomaly" in html

    def test_anomalies_flags_outliers_not_baseline(self):
        values = [1.0, 1.01, 0.99, 1.0, 8.0]
        flags = anomalies(values, [True] * 5)
        assert flags == [False, False, False, False, True]

    def test_anomalies_needs_history(self):
        assert anomalies([1.0, 99.0], [True, True]) == [False, False]

    def test_dirty_runs_excluded_from_baseline(self):
        # the dirty spike is charted but does not poison the median
        values = [1.0, 1.0, 1.0, 50.0, 1.02]
        clean = [True, True, True, False, True]
        flags = anomalies(values, clean)
        assert flags[3] is True and flags[4] is False
