"""A minimal pure-python ELF64 writer for loader tests.

Builds just enough of a linked x86-64 executable — header, PT_LOAD
program headers, sections, ``.symtab``/``.dynsym`` + string tables,
``.rela.*`` relocations — for ``repro.loader`` to ingest, so round-trip
tests need no compiler toolchain at runtime.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

SHT_PROGBITS, SHT_SYMTAB, SHT_STRTAB, SHT_RELA, SHT_NOBITS = 1, 2, 3, 4, 8
SHT_DYNSYM = 11
SHF_WRITE, SHF_ALLOC, SHF_EXECINSTR = 0x1, 0x2, 0x4
PT_LOAD = 1
STT_NOTYPE, STT_OBJECT, STT_FUNC, STT_GNU_IFUNC = 0, 1, 2, 10
STB_LOCAL, STB_GLOBAL = 0, 1
R_JUMP_SLOT, R_IRELATIVE = 7, 37

EHDR_SIZE, PHDR_SIZE, SHDR_SIZE, SYM_SIZE, RELA_SIZE = 64, 56, 64, 24, 24


@dataclass
class _Sec:
    name: str
    sh_type: int
    flags: int
    addr: int
    data: bytes
    size: int            # == len(data) except for SHT_NOBITS
    link: int = 0
    info: int = 0
    entsize: int = 0
    offset: int = 0      # assigned at build time


@dataclass
class _Sym:
    name: str
    value: int
    size: int
    stype: int
    bind: int
    table: str           # "symtab" | "dynsym"
    shndx: int | None    # None: resolve to the section containing value


@dataclass
class _Rela:
    offset: int
    rtype: int
    sym: int
    addend: int
    section: str         # emitted .rela section name


def call_rel32(src: int, dst: int) -> bytes:
    """``call rel32`` encoding for a call at address ``src``."""
    return b"\xe8" + struct.pack("<i", dst - (src + 5))


def plt_entry(entry_addr: int, got_addr: int) -> bytes:
    """``jmp *disp32(%rip)`` — one 6-byte PLT entry."""
    return b"\xff\x25" + struct.pack("<i", got_addr - (entry_addr + 6))


class ElfWriter:
    """Accumulates sections/symbols/relocations; ``build()`` emits bytes."""

    def __init__(self, entry: int = 0x401000, e_type: int = 2,
                 machine: int = 62, ei_class: int = 2, ei_data: int = 1,
                 strip_sections: bool = False, load_pad: int = 0) -> None:
        self.entry = entry
        self.e_type = e_type
        self.machine = machine
        self.ei_class = ei_class
        self.ei_data = ei_data
        self.strip_sections = strip_sections
        self.load_pad = load_pad   # extra p_memsz beyond file bytes
        self._secs: list[_Sec] = []
        self._syms: list[_Sym] = []
        self._relas: list[_Rela] = []

    # ---- content -------------------------------------------------------
    def add_progbits(self, name: str, addr: int, data: bytes,
                     flags: int = SHF_ALLOC) -> None:
        self._secs.append(_Sec(name, SHT_PROGBITS, flags, addr,
                               data, len(data)))

    def add_nobits(self, name: str, addr: int, size: int,
                   flags: int = SHF_ALLOC | SHF_WRITE) -> None:
        self._secs.append(_Sec(name, SHT_NOBITS, flags, addr, b"", size))

    def add_symbol(self, name: str, value: int, size: int = 0,
                   stype: int = STT_FUNC, bind: int = STB_GLOBAL,
                   table: str = "symtab", shndx: int | None = None) -> int:
        """Returns the symbol's index within its table (null entry is 0)."""
        self._syms.append(_Sym(name, value, size, stype, bind, table, shndx))
        return sum(1 for s in self._syms if s.table == table)

    def add_rela(self, offset: int, rtype: int, sym: int = 0,
                 addend: int = 0, section: str = ".rela.plt") -> None:
        self._relas.append(_Rela(offset, rtype, sym, addend, section))

    # ---- emission ------------------------------------------------------
    def _strtab(self, names: list[str]) -> tuple[bytes, dict[str, int]]:
        blob, offs = bytearray(b"\x00"), {}
        for n in names:
            if n and n not in offs:
                offs[n] = len(blob)
                blob += n.encode() + b"\x00"
        return bytes(blob), offs

    def _symtab_bytes(self, syms: list[_Sym], offs: dict[str, int],
                      shndx_of) -> bytes:
        blob = bytearray(b"\x00" * SYM_SIZE)  # null symbol, index 0
        for s in syms:
            shndx = s.shndx if s.shndx is not None else shndx_of(s.value)
            blob += struct.pack("<IBBHQQ", offs.get(s.name, 0),
                                (s.bind << 4) | s.stype, 0, shndx,
                                s.value, s.size)
        return bytes(blob)

    def build(self) -> bytes:
        secs = list(self._secs)
        user_end = len(secs)

        def shndx_of(value: int) -> int:
            for i, s in enumerate(secs[:user_end]):
                if s.flags & SHF_ALLOC and s.addr <= value < s.addr + s.size:
                    return i + 1  # +1 for the null section
            return 1

        dynsyms = [s for s in self._syms if s.table == "dynsym"]
        symtabs = [s for s in self._syms if s.table == "symtab"]
        dynsym_idx = 0
        if dynsyms:
            blob, offs = self._strtab([s.name for s in dynsyms])
            secs.append(_Sec(".dynstr", SHT_STRTAB, 0, 0, blob, len(blob)))
            table = self._symtab_bytes(dynsyms, offs, shndx_of)
            secs.append(_Sec(".dynsym", SHT_DYNSYM, 0, 0, table, len(table),
                             link=len(secs), entsize=SYM_SIZE))
            dynsym_idx = len(secs)
        for rname in sorted({r.section for r in self._relas}):
            blob = b"".join(
                struct.pack("<QQq", r.offset, (r.sym << 32) | r.rtype,
                            r.addend)
                for r in self._relas if r.section == rname)
            secs.append(_Sec(rname, SHT_RELA, 0, 0, blob, len(blob),
                             link=dynsym_idx, entsize=RELA_SIZE))
        if symtabs:
            blob, offs = self._strtab([s.name for s in symtabs])
            secs.append(_Sec(".strtab", SHT_STRTAB, 0, 0, blob, len(blob)))
            table = self._symtab_bytes(symtabs, offs, shndx_of)
            secs.append(_Sec(".symtab", SHT_SYMTAB, 0, 0, table, len(table),
                             link=len(secs), entsize=SYM_SIZE))
        shblob, shoffs = self._strtab([s.name for s in secs] + [".shstrtab"])
        secs.append(_Sec(".shstrtab", SHT_STRTAB, 0, 0, shblob, len(shblob)))

        loads = [s for s in self._secs if s.flags & SHF_ALLOC]
        phoff = EHDR_SIZE
        off = phoff + len(loads) * PHDR_SIZE
        for s in secs:
            s.offset = off
            off += len(s.data)
        shnum = 0 if self.strip_sections else len(secs) + 1
        shoff = 0 if self.strip_sections else off
        shstrndx = 0 if self.strip_sections else len(secs)

        out = bytearray()
        ident = b"\x7fELF" + bytes([self.ei_class, self.ei_data, 1]) \
            + b"\x00" * 9
        out += ident
        out += struct.pack("<HHIQQQIHHHHHH", self.e_type, self.machine, 1,
                           self.entry, phoff, shoff, 0, EHDR_SIZE,
                           PHDR_SIZE, len(loads), SHDR_SIZE, shnum, shstrndx)
        for i, s in enumerate(loads):
            filesz = len(s.data)
            memsz = s.size + (self.load_pad if i == len(loads) - 1 else 0)
            flags = 0x5 if s.flags & SHF_EXECINSTR else 0x6
            out += struct.pack("<IIQQQQQQ", PT_LOAD, flags, s.offset,
                               s.addr, s.addr, filesz, memsz, 0x1000)
        for s in secs:
            assert len(out) == s.offset or not s.data, s.name
            out += s.data
        if not self.strip_sections:
            out += b"\x00" * SHDR_SIZE  # null section header
            for s in secs:
                out += struct.pack("<IIQQQQIIQQ", shoffs.get(s.name, 0),
                                   s.sh_type, s.flags, s.addr, s.offset,
                                   s.size, s.link, s.info, 0, s.entsize)
        return bytes(out)
