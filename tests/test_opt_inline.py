"""Tests for the function-inlining pass."""


from repro.lir import Call, Function, Interpreter, verify_module
from repro.minicc.frontend_lir import compile_to_lir
from repro.opt import optimize_module, run_inline


def direct_calls(func):
    return [
        i for i in func.instructions()
        if isinstance(i, Call) and isinstance(i.callee, Function)
    ]


class TestInlining:
    def test_simple_call_inlined(self):
        m = compile_to_lir(
            "int sq(int x) { return x * x; } int main() { return sq(7); }"
        )
        assert run_inline(m)
        verify_module(m)
        assert not direct_calls(m.get_function("main"))
        assert Interpreter(m).run("main") == 49

    def test_multi_return_callee_builds_phi(self):
        m = compile_to_lir(
            "int clamp(int x) { if (x > 10) { return 10; } return x; } "
            "int main() { return clamp(42) + clamp(3); }"
        )
        assert run_inline(m)
        verify_module(m)
        assert Interpreter(m).run("main") == 13

    def test_void_like_callee(self):
        m = compile_to_lir(
            "int g = 0; int bump(int k) { g = g + k; return 0; } "
            "int main() { bump(5); bump(2); return g; }"
        )
        run_inline(m)
        verify_module(m)
        assert Interpreter(m).run("main") == 7

    def test_callee_with_locals_in_loop(self):
        """Inlined allocas hoist to the entry: no frame growth per iteration."""
        m = compile_to_lir(
            """
            int addup(int n) { int acc = 0; acc = acc + n; return acc; }
            int main() {
              int s = 0;
              for (int i = 0; i < 2000; i++) { s = s + addup(1); }
              return s;
            }
            """
        )
        run_inline(m)
        verify_module(m)
        assert Interpreter(m).run("main") == 2000

    def test_recursion_not_inlined(self):
        m = compile_to_lir(
            "int fact(int n) { if (n < 2) { return 1; } "
            "return n * fact(n - 1); } "
            "int main() { return fact(5); }"
        )
        run_inline(m)
        verify_module(m)
        assert direct_calls(m.get_function("main"))  # fact stays a call
        assert Interpreter(m).run("main") == 120

    def test_mutual_recursion_not_inlined(self):
        m = compile_to_lir(
            """
            int is_odd(int n);
            int is_even(int n) { if (n == 0) { return 1; } return is_odd(n - 1); }
            int is_odd(int n) { if (n == 0) { return 0; } return is_even(n - 1); }
            int main() { return is_even(10); }
            """.replace("int is_odd(int n);", "")
        )
        run_inline(m)
        verify_module(m)
        assert Interpreter(m).run("main") == 1

    def test_threshold_respected(self):
        m = compile_to_lir(
            "int sq(int x) { return x * x; } int main() { return sq(7); }"
        )
        assert not run_inline(m, threshold=1)
        assert direct_calls(m.get_function("main"))

    def test_inline_then_optimize_constant_folds(self):
        m = compile_to_lir(
            "int sq(int x) { return x * x; } int main() { return sq(6) + 6; }"
        )
        run_inline(m)
        optimize_module(m, verify=True)
        main = m.get_function("main")
        # After inlining + sccp the function is a constant return.
        assert main.instruction_count() <= 2
        assert Interpreter(m).run("main") == 42

    def test_transitive_inlining(self):
        m = compile_to_lir(
            "int a(int x) { return x + 1; } "
            "int b(int x) { return a(x) * 2; } "
            "int main() { return b(20); }"
        )
        run_inline(m)
        verify_module(m)
        assert not direct_calls(m.get_function("main"))
        assert Interpreter(m).run("main") == 42

    def test_spawned_function_body_survives(self):
        """Inlining must not break functions whose address is taken."""
        m = compile_to_lir(
            """
            int worker(int t) { return t + 1; }
            int main() {
              int tid = spawn(worker, 4);
              return join(tid);
            }
            """
        )
        run_inline(m)
        verify_module(m)
        assert "worker" in m.functions
        assert Interpreter(m).run("main") == 5

    def test_full_pipeline_with_inline_differential(self):
        src = """
        int g = 0;
        int helper(int x) { if (x % 2 == 0) { return x / 2; } return 3 * x + 1; }
        int main() {
          int v = 27;
          int steps = 0;
          while (v != 1) { v = helper(v); steps++; }
          g = steps;
          return steps;
        }
        """
        m = compile_to_lir(src)
        expected = Interpreter(m).run("main")
        run_inline(m)
        optimize_module(m, verify=True)
        assert Interpreter(m).run("main") == expected == 111
