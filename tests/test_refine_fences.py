"""Tests for IR refinement (§5) and fence placement/merging (§8)."""


from repro.fences import (
    count_fences,
    is_stack_address,
    merge_fences,
    place_fences,
)
from repro.lir import (
    GEP,
    ArrayType,
    Cast,
    ConstantInt,
    Fence,
    Function,
    FunctionType,
    GlobalVariable,
    I8,
    I64,
    Interpreter,
    IRBuilder,
    Module,
    ptr,
    verify_function,
    verify_module,
)
from repro.lifter import lift_program
from repro.minicc import compile_to_x86
from repro.refine import (
    count_pointer_casts,
    module_pointer_casts,
    run_peephole,
    run_refinement,
)
from repro.refine.ptrpromote import run_pointer_promotion
from repro.x86 import X86Emulator


def new_func(params=(I64,), name="f"):
    m = Module("t")
    f = Function(name, FunctionType(I64, tuple(params)), ["x", "y"])
    m.add_function(f)
    return m, f, IRBuilder(f.new_block("entry"))


class TestPeepholeRules:
    def test_rule1_pointer_casting(self):
        """ptrtoint + inttoptr (zero offset) → bitcast (Fig. 5 rule 1)."""
        m, f, b = new_func(params=())
        stack = b.alloca(ArrayType(I8, 16), "stacktop")
        s8 = b.bitcast(stack, ptr(I8))
        raw = b.ptrtoint(s8, I64)
        p = b.inttoptr(raw, ptr(I64))
        b.store(ConstantInt(I64, 7), p)
        b.ret(b.load(p))
        run_peephole(f)
        verify_function(f)
        assert count_pointer_casts(f) == 0
        assert Interpreter(m).run("f") == 7

    def test_rule2_stack_offset(self):
        """add of constant to ptrtoint(stack) → gep i8 (Fig. 5 rule 2)."""
        m, f, b = new_func(params=())
        stack = b.alloca(ArrayType(I8, 32), "stacktop")
        s8 = b.bitcast(stack, ptr(I8))
        raw = b.ptrtoint(s8, I64)
        addr = b.add(raw, ConstantInt(I64, 16))
        p = b.inttoptr(addr, ptr(I64))
        b.store(ConstantInt(I64, 9), p)
        b.ret(b.load(p))
        run_peephole(f)
        verify_function(f)
        geps = [i for i in f.instructions() if isinstance(i, GEP)]
        assert geps and count_pointer_casts(f) == 0
        assert Interpreter(m).run("f") == 9

    def test_rule3_parameter_offset(self):
        """inttoptr(arg + 8) → inttoptr(arg) ; gep 8 (Fig. 5 rule 3)."""
        m, f, b = new_func(params=(I64,))
        addr = b.add(f.arguments[0], ConstantInt(I64, 8))
        p = b.inttoptr(addr, ptr(I64))
        b.ret(b.load(p))
        run_peephole(f)
        verify_function(f)
        casts = [i for i in f.instructions() if isinstance(i, Cast)]
        # one inttoptr of the raw argument remains (promotion removes it)
        assert [c.op for c in casts if c.op == "inttoptr"] == ["inttoptr"]
        assert any(isinstance(i, GEP) for i in f.instructions())

    def test_subtraction_chains(self):
        m, f, b = new_func(params=())
        stack = b.alloca(ArrayType(I8, 64), "stacktop")
        s8 = b.bitcast(stack, ptr(I8))
        raw = b.ptrtoint(s8, I64)
        top = b.add(raw, ConstantInt(I64, 48))
        down = b.sub(top, ConstantInt(I64, 8))
        p = b.inttoptr(down, ptr(I64))
        b.store(ConstantInt(I64, 5), p)
        b.ret(b.load(p))
        run_peephole(f)
        assert count_pointer_casts(f) == 0
        assert Interpreter(m).run("f") == 5

    def test_dynamic_index_terms(self):
        m, f, b = new_func(params=(I64,))
        g = GlobalVariable("arr", ArrayType(I8, 64), None)
        m.add_global(g)
        g8 = b.bitcast(g, ptr(I8))
        raw = b.ptrtoint(g8, I64)
        scaled = b.binop("shl", f.arguments[0], ConstantInt(I64, 3))
        addr = b.add(raw, scaled)
        p = b.inttoptr(addr, ptr(I64))
        b.store(ConstantInt(I64, 3), p)
        b.ret(b.load(p))
        run_peephole(f)
        verify_function(f)
        assert count_pointer_casts(f) == 0
        assert Interpreter(m).run("f", [2]) == 3

    def test_opaque_root_untouched(self):
        """An address loaded from memory stays an inttoptr (§9.3 case ii)."""
        m, f, b = new_func(params=(ptr(I64),))
        raw = b.load(f.arguments[0])
        p = b.inttoptr(raw, ptr(I64))
        b.ret(b.load(p))
        before = count_pointer_casts(f)
        run_peephole(f)
        assert count_pointer_casts(f) == before


class TestPointerPromotion:
    def test_promotes_single_type(self):
        m, f, b = new_func(params=(I64,))
        p = b.inttoptr(f.arguments[0], ptr(I64))
        b.ret(b.load(p))
        # caller passing a ptrtoint
        main = Function("main", FunctionType(I64, ()))
        m.add_function(main)
        mb = IRBuilder(main.new_block("entry"))
        g = m.add_global(GlobalVariable("g", I64, ConstantInt(I64, 77)))
        raw = mb.ptrtoint(g, I64)
        mb.ret(mb.call(f, [raw]))
        run_pointer_promotion(m)
        verify_module(m)
        assert f.arguments[0].type == ptr(I64)
        assert f.ftype.params[0] == ptr(I64)
        assert Interpreter(m).run("main") == 77

    def test_mixed_types_promote_to_i8ptr(self):
        m, f, b = new_func(params=(I64,))
        p1 = b.inttoptr(f.arguments[0], ptr(I64))
        p2 = b.inttoptr(f.arguments[0], ptr(I8))
        v = b.load(p1)
        c = b.zext(b.load(p2), I64)
        b.ret(b.add(v, c))
        run_pointer_promotion(m)
        verify_module(m)
        assert f.arguments[0].type == ptr(I8)

    def test_non_pointer_use_blocks_promotion(self):
        m, f, b = new_func(params=(I64,))
        p = b.inttoptr(f.arguments[0], ptr(I64))
        v = b.add(f.arguments[0], ConstantInt(I64, 1))  # arithmetic use
        b.ret(b.add(b.load(p), v))
        run_pointer_promotion(m)
        assert f.arguments[0].type == I64

    def test_address_taken_function_skipped(self):
        m, f, b = new_func(params=(I64,))
        p = b.inttoptr(f.arguments[0], ptr(I64))
        b.ret(b.load(p))
        main = Function("main", FunctionType(I64, ()))
        m.add_function(main)
        mb = IRBuilder(main.new_block("entry"))
        mb.ret(mb.ptrtoint(f, I64))  # address taken (spawn-style)
        run_pointer_promotion(m)
        assert f.arguments[0].type == I64


class TestStackAnalysis:
    def test_direct_alloca_is_stack(self):
        m, f, b = new_func()
        a = b.alloca(I64)
        assert is_stack_address(a)

    def test_through_bitcast_and_gep(self):
        m, f, b = new_func()
        a = b.alloca(ArrayType(I8, 16))
        p = b.bitcast(a, ptr(I8))
        g = b.gep(I8, p, [ConstantInt(I64, 4)])
        q = b.bitcast(g, ptr(I64))
        assert is_stack_address(q)

    def test_inttoptr_hides_stack(self):
        m, f, b = new_func()
        a = b.alloca(ArrayType(I8, 16))
        p = b.bitcast(a, ptr(I8))
        raw = b.ptrtoint(p, I64)
        q = b.inttoptr(raw, ptr(I64))
        assert not is_stack_address(q)

    def test_global_is_not_stack(self):
        m, f, b = new_func()
        g = m.add_global(GlobalVariable("g", I64))
        assert not is_stack_address(g)


class TestPlacement:
    def test_mapping_fig8a(self):
        """ld gets trailing Frm, st gets leading Fww (shared accesses)."""
        m, f, b = new_func(params=(ptr(I64),))
        p = f.arguments[0]
        b.store(ConstantInt(I64, 1), p)
        v = b.load(p)
        b.ret(v)
        place_fences(m)
        ops = [
            (i.opcode, getattr(i, "kind", None))
            for i in f.entry.instructions
        ]
        assert ops == [
            ("fence", "ww"), ("store", None), ("load", None),
            ("fence", "rm"), ("ret", None),
        ]

    def test_stack_accesses_skipped(self):
        m, f, b = new_func(params=())
        slot = b.alloca(I64)
        b.store(ConstantInt(I64, 1), slot)
        b.ret(b.load(slot))
        stats = place_fences(m)
        assert stats.total_inserted == 0
        assert stats.skipped_stack == 2

    def test_atomics_not_double_fenced(self):
        m, f, b = new_func(params=(ptr(I64),))
        b.atomicrmw("add", f.arguments[0], ConstantInt(I64, 1))
        b.ret(ConstantInt(I64, 0))
        place_fences(m)
        assert count_fences(m) == 0  # RMWsc orders itself (ord3/ord4)

    def test_lifted_program_state_fences_only_nonstack(self):
        src = """
        int g = 0;
        int main() { int local = 1; g = g + local; return g; }
        """
        obj = compile_to_x86(src)
        module = lift_program(obj)
        stats = place_fences(module)
        assert stats.skipped_stack > 0       # register slots are allocas
        assert stats.total_inserted > 0      # global + hidden stack traffic


class TestMerging:
    def test_frm_fww_merge_to_fsc(self):
        m, f, b = new_func(params=(ptr(I64), ptr(I64)))
        p, q = f.arguments
        v = b.load(p)
        b.fence("rm")
        b.fence("ww")
        b.store(v, q)
        b.ret(ConstantInt(I64, 0))
        removed = merge_fences(m)
        assert removed == 1
        kinds = [i.kind for i in f.instructions() if isinstance(i, Fence)]
        assert kinds == ["sc"]

    def test_like_fences_collapse(self):
        m, f, b = new_func(params=())
        b.fence("rm")
        b.fence("rm")
        b.fence("rm")
        b.ret(ConstantInt(I64, 0))
        merge_fences(m)
        kinds = [i.kind for i in f.instructions() if isinstance(i, Fence)]
        assert kinds == ["rm"]

    def test_memory_access_blocks_merge(self):
        m, f, b = new_func(params=(ptr(I64),))
        b.fence("rm")
        b.load(f.arguments[0])
        b.fence("ww")
        b.ret(ConstantInt(I64, 0))
        removed = merge_fences(m)
        assert removed == 0

    def test_pure_instructions_are_transparent(self):
        m, f, b = new_func(params=(I64,))
        b.fence("rm")
        b.add(f.arguments[0], ConstantInt(I64, 1))
        b.fence("ww")
        b.ret(ConstantInt(I64, 0))
        removed = merge_fences(m)
        assert removed == 1

    def test_sc_absorbs_neighbours(self):
        m, f, b = new_func(params=())
        b.fence("ww")
        b.fence("sc")
        b.fence("rm")
        b.ret(ConstantInt(I64, 0))
        merge_fences(m)
        kinds = [i.kind for i in f.instructions() if isinstance(i, Fence)]
        assert kinds == ["sc"]


class TestRefinementEndToEnd:
    def test_cast_reduction_on_lifted_code(self):
        src = """
        int a[8];
        int sum(int *p, int n) {
          int s = 0;
          for (int i = 0; i < n; i = i + 1) { s = s + p[i]; }
          return s;
        }
        int main() {
          for (int i = 0; i < 8; i = i + 1) { a[i] = i; }
          return sum(a, 8);
        }
        """
        obj = compile_to_x86(src)
        module = lift_program(obj)
        before = module_pointer_casts(module)
        run_refinement(module)
        verify_module(module)
        after = module_pointer_casts(module)
        assert after < before / 2  # Fig. 13 ballpark: ≥50% removed

        expected = X86Emulator(obj).run()
        assert Interpreter(module).run("main") == expected

    def test_fence_reduction_after_refinement(self):
        src = """
        int g = 0;
        int main() {
          int acc = 0;
          for (int i = 0; i < 4; i = i + 1) { acc = acc + i; g = acc; }
          return g;
        }
        """
        obj = compile_to_x86(src)
        naive = lift_program(obj)
        place_fences(naive)
        naive_count = count_fences(naive)

        refined = lift_program(obj)
        run_refinement(refined)
        place_fences(refined)
        refined_count = count_fences(refined)
        assert refined_count < naive_count


class TestCrossBlockMerging:
    def _two_blocks(self):
        m, f, b = new_func(params=(ptr(I64), ptr(I64)))
        nxt = f.new_block("next")
        return m, f, b, nxt

    def test_unlike_kinds_merge_to_fsc_across_edge(self):
        m, f, b, nxt = self._two_blocks()
        p, q = f.arguments
        b.load(p)
        b.fence("rm")          # trails the entry block
        b.br(nxt)
        b2 = IRBuilder(nxt)
        b2.fence("ww")         # leads the successor
        b2.store(ConstantInt(I64, 1), q)
        b2.ret(ConstantInt(I64, 0))
        removed = merge_fences(m)
        assert removed == 1
        fences = [i for i in f.instructions() if isinstance(i, Fence)]
        assert [i.kind for i in fences] == ["sc"]
        assert fences[0].parent is nxt
        # Decision log records the cross-block merge for provenance.
        assert any("cross-block" in line for line in fences[0].placement)

    def test_like_kinds_keep_kind(self):
        m, f, b, nxt = self._two_blocks()
        b.fence("rm")
        b.br(nxt)
        b2 = IRBuilder(nxt)
        b2.fence("rm")
        b2.ret(ConstantInt(I64, 0))
        assert merge_fences(m) == 1
        kinds = [i.kind for i in f.instructions() if isinstance(i, Fence)]
        assert kinds == ["rm"]

    def test_branchy_edge_does_not_merge(self):
        # Entry has two successors: the trailing fence orders paths the
        # leading fence of only one arm would not cover.
        m, f, b = new_func(params=(I64,))
        then = f.new_block("then")
        els = f.new_block("else")
        b.fence("rm")
        cond = b.icmp("eq", f.arguments[0], ConstantInt(I64, 0), "c")
        b.cond_br(cond, then, els)
        bt = IRBuilder(then)
        bt.fence("ww")
        bt.ret(ConstantInt(I64, 0))
        be = IRBuilder(els)
        be.ret(ConstantInt(I64, 1))
        assert merge_fences(m) == 0

    def test_intervening_access_blocks_cross_merge(self):
        m, f, b, nxt = self._two_blocks()
        p, q = f.arguments
        b.fence("rm")
        b.load(p)              # access after the fence: not trailing
        b.br(nxt)
        b2 = IRBuilder(nxt)
        b2.fence("ww")
        b2.store(ConstantInt(I64, 1), q)
        b2.ret(ConstantInt(I64, 0))
        assert merge_fences(m) == 0

    def test_chain_of_edges_converges(self):
        # a -> b -> c, one fence trailing each: all collapse onto c's head.
        m, f, b = new_func(params=())
        bb2 = f.new_block("b2")
        bb3 = f.new_block("b3")
        b.fence("rm")
        b.br(bb2)
        i2 = IRBuilder(bb2)
        i2.fence("rm")
        i2.br(bb3)
        i3 = IRBuilder(bb3)
        i3.fence("rm")
        i3.ret(ConstantInt(I64, 0))
        assert merge_fences(m) == 2
        kinds = [i.kind for i in f.instructions() if isinstance(i, Fence)]
        assert kinds == ["rm"]
