"""Tests for the TV symbolic evaluator (repro.analysis.tv.symexec)."""

import pytest

from repro.analysis.tv.symexec import (
    FunctionEvaluator,
    SymUnknown,
    observable_memory,
)
from repro.analysis.tv.terms import TermBuilder
from repro.lir import (
    ConstantInt,
    Function,
    FunctionType,
    I64,
    IRBuilder,
    Module,
)


def _func(name="f", nargs=1):
    m = Module("t")
    f = Function(name, FunctionType(I64, (I64,) * nargs),
                 [f"a{i}" for i in range(nargs)])
    m.add_function(f)
    return m, f


def _run(f, builder=None, module=None):
    builder = builder or TermBuilder()
    return FunctionEvaluator(f, builder, module).run(), builder


class TestStraightLine:
    def test_add_constant(self):
        m, f = _func()
        b = IRBuilder(f.new_block("entry"))
        v = b.add(f.arguments[0], ConstantInt(I64, 5), "v")
        b.ret(v)
        summary, tb = _run(f, module=m)
        assert summary.ret is tb.binop("add", tb.var("arg0", 64),
                                       tb.const(64, 5))
        assert summary.eff is tb.eff0

    def test_equivalent_functions_intern_identically(self):
        """x+1+1 and x+2 produce the SAME ret node in a shared builder —
        the core mechanism the refinement check relies on."""
        m1, f1 = _func("f1")
        b1 = IRBuilder(f1.new_block("entry"))
        t = b1.add(f1.arguments[0], ConstantInt(I64, 1), "t")
        b1.ret(b1.add(t, ConstantInt(I64, 1), "u"))

        m2, f2 = _func("f2")
        b2 = IRBuilder(f2.new_block("entry"))
        b2.ret(b2.add(f2.arguments[0], ConstantInt(I64, 2), "u"))

        tb = TermBuilder()
        s1, _ = _run(f1, tb, m1)
        s2, _ = _run(f2, tb, m2)
        assert s1.ret is s2.ret

    def test_store_load_forwarding(self):
        m, f = _func()
        b = IRBuilder(f.new_block("entry"))
        p = b.alloca(I64, "p")
        b.store(f.arguments[0], p)
        v = b.load(p, name="v")
        b.ret(v)
        summary, tb = _run(f, module=m)
        assert summary.ret is tb.var("arg0", 64)

    def test_uninitialized_local_load_is_undef(self):
        """A load from a never-stored thread-local slot is undef — the
        wildcard that lets mem2reg materialize any value for it."""
        m, f = _func()
        b = IRBuilder(f.new_block("entry"))
        p = b.alloca(I64, "p")
        v = b.load(p, name="v")
        b.ret(v)
        summary, _ = _run(f, module=m)
        assert summary.ret.op == "undef"


class TestControlFlow:
    def _diamond(self):
        m, f = _func()
        entry = f.new_block("entry")
        then = f.new_block("then")
        els = f.new_block("else")
        join = f.new_block("join")
        b = IRBuilder(entry)
        cond = b.icmp("eq", f.arguments[0], ConstantInt(I64, 0), "c")
        b.cond_br(cond, then, els)
        bt = IRBuilder(then)
        tv = bt.add(f.arguments[0], ConstantInt(I64, 1), "tv")
        bt.br(join)
        be = IRBuilder(els)
        ev = be.add(f.arguments[0], ConstantInt(I64, 2), "ev")
        be.br(join)
        bj = IRBuilder(join)
        phi = bj.phi(I64, "r")
        phi.add_incoming(tv, then)
        phi.add_incoming(ev, els)
        bj.ret(phi)
        return m, f

    def test_diamond_becomes_ite(self):
        m, f = self._diamond()
        summary, tb = _run(f, module=m)
        arg = tb.var("arg0", 64)
        cond = tb.icmp("eq", arg, tb.const(64, 0))
        expected = tb.ite(cond, tb.binop("add", arg, tb.const(64, 1)),
                          tb.binop("add", arg, tb.const(64, 2)))
        assert summary.ret is expected

    def test_loops_are_unknown(self):
        m, f = _func()
        entry = f.new_block("entry")
        loop = f.new_block("loop")
        out = f.new_block("out")
        IRBuilder(entry).br(loop)
        b = IRBuilder(loop)
        cond = b.icmp("eq", f.arguments[0], ConstantInt(I64, 0), "c")
        b.cond_br(cond, out, loop)
        IRBuilder(out).ret(ConstantInt(I64, 0))
        with pytest.raises(SymUnknown) as exc:
            _run(f, module=m)
        assert exc.value.reason == "loops"


class TestEffects:
    def test_fences_are_ordered_effects(self):
        m, f = _func()
        b = IRBuilder(f.new_block("entry"))
        b.fence("rm")
        b.fence("ww")
        b.ret(ConstantInt(I64, 0))
        summary, tb = _run(f, module=m)
        expected = tb.effect(tb.effect(tb.eff0, "fence:rm"), "fence:ww")
        assert summary.eff is expected

    def test_fence_reorder_is_visible(self):
        """Swapping two fences changes the effect chain — a LIMM
        reordering is NOT provable away."""
        def build(first, second):
            m, f = _func()
            b = IRBuilder(f.new_block("entry"))
            b.fence(first)
            b.fence(second)
            b.ret(ConstantInt(I64, 0))
            return m, f

        tb = TermBuilder()
        m1, f1 = build("rm", "ww")
        m2, f2 = build("ww", "rm")
        s1, _ = _run(f1, tb, m1)
        s2, _ = _run(f2, tb, m2)
        assert s1.eff is not s2.eff


class TestObservableMemory:
    def test_local_stores_projected_away(self):
        m, f = _func()
        b = IRBuilder(f.new_block("entry"))
        p = b.alloca(I64, "p")
        b.store(f.arguments[0], p)
        b.ret(f.arguments[0])
        summary, tb = _run(f, module=m)
        obs = observable_memory(summary.mem, tb, lambda a: True)
        assert obs is tb.mem0

    def test_shared_stores_survive(self):
        m, f = _func()
        b = IRBuilder(f.new_block("entry"))
        p = b.alloca(I64, "p")
        b.store(f.arguments[0], p)
        b.ret(f.arguments[0])
        summary, tb = _run(f, module=m)
        obs = observable_memory(summary.mem, tb, lambda a: False)
        assert obs.op == "store"

    def test_shadowed_store_dropped_within_segment(self):
        """Two same-slot stores with no barrier between: only the
        younger one is observable."""
        m, f = _func(nargs=2)
        b = IRBuilder(f.new_block("entry"))
        p = b.alloca(I64, "p")
        b.store(f.arguments[0], p)
        b.store(f.arguments[1], p)
        b.ret(f.arguments[0])
        summary, tb = _run(f, module=m)
        obs = observable_memory(summary.mem, tb, lambda a: False)
        assert obs.op == "store"
        assert obs.args[0] is tb.mem0  # the older store is shadowed

    def test_barrier_resets_shadowing(self):
        """A fence between two same-slot stores keeps both — another
        thread may observe the first value at the fence."""
        m, f = _func(nargs=2)
        b = IRBuilder(f.new_block("entry"))
        p = b.alloca(I64, "p")
        b.store(f.arguments[0], p)
        b.fence("ww")
        b.store(f.arguments[1], p)
        b.ret(f.arguments[0])
        summary, tb = _run(f, module=m)
        obs = observable_memory(summary.mem, tb, lambda a: False)
        assert obs.op == "store"
        assert obs.args[0].op == "barrier"
        assert obs.args[0].args[0].op == "store"
