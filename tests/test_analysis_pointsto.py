"""Tests for the points-to/escape analysis (repro.analysis.pointsto)."""

from repro.analysis import MOD, MOD_REF, NO_MODREF, REF, analyze_function
from repro.lir import (
    ArrayType,
    ConstantInt,
    ExternalFunction,
    Function,
    FunctionType,
    GlobalVariable,
    I8,
    I64,
    IRBuilder,
    Module,
    VOID,
    ptr,
)


def new_func(params=(), name="f"):
    m = Module("t")
    f = Function(name, FunctionType(I64, tuple(params)),
                 [f"a{i}" for i in range(len(params))])
    m.add_function(f)
    return m, f, IRBuilder(f.new_block("entry"))


def add_sink(m, param_type=ptr(I64)):
    sink = ExternalFunction("sink", FunctionType(VOID, [param_type]))
    m.externals["sink"] = sink
    return sink


class TestProvenance:
    def test_direct_alloca_is_thread_local(self):
        m, f, b = new_func()
        a = b.alloca(I64, "a")
        b.ret(ConstantInt(I64, 0))
        ai = analyze_function(f, m)
        assert ai.is_thread_local(a)
        assert len(ai.points_to(a)) == 1

    def test_gep_bitcast_chain(self):
        m, f, b = new_func()
        arr = b.alloca(ArrayType(I8, 64), "arr")
        a8 = b.bitcast(arr, ptr(I8))
        g = b.gep(I8, a8, [ConstantInt(I64, 8)], "p")
        b.ret(ConstantInt(I64, 0))
        ai = analyze_function(f, m)
        assert ai.is_thread_local(g)
        assert ai.points_to(g) == ai.points_to(arr)

    def test_phi_merges_provenance(self):
        m = Module("t")
        f = Function("f", FunctionType(I64, (I64,)), ["x"])
        m.add_function(f)
        entry = f.new_block("entry")
        then = f.new_block("then")
        els = f.new_block("else")
        join = f.new_block("join")
        b = IRBuilder(entry)
        a1 = b.alloca(I64, "a1")
        a2 = b.alloca(I64, "a2")
        cond = b.icmp("eq", f.arguments[0], ConstantInt(I64, 0), "c")
        b.cond_br(cond, then, els)
        IRBuilder(then).br(join)
        IRBuilder(els).br(join)
        bj = IRBuilder(join)
        p = bj.phi(ptr(I64), "p")
        p.add_incoming(a1, then)
        p.add_incoming(a2, els)
        bj.ret(ConstantInt(I64, 0))
        ai = analyze_function(f, m)
        assert ai.is_thread_local(p)
        assert ai.points_to(p) == ai.points_to(a1) | ai.points_to(a2)

    def test_select_merges_provenance(self):
        m, f, b = new_func(params=(I64,))
        a1 = b.alloca(I64, "a1")
        a2 = b.alloca(I64, "a2")
        cond = b.icmp("eq", f.arguments[0], ConstantInt(I64, 0), "c")
        sel = b.select(cond, a1, a2, "sel")
        b.ret(ConstantInt(I64, 0))
        ai = analyze_function(f, m)
        assert ai.is_thread_local(sel)

    def test_integer_round_trip_keeps_provenance(self):
        """ptrtoint → add → inttoptr is how lifted code addresses the
        stack; the object must survive the trip through integers."""
        m, f, b = new_func()
        st = b.alloca(ArrayType(I8, 64), "stacktop")
        s8 = b.bitcast(st, ptr(I8))
        tos = b.ptrtoint(s8, I64, "tos")
        sp = b.add(tos, ConstantInt(I64, 32), "sp")
        addr = b.inttoptr(sp, ptr(I64), "addr")
        b.ret(ConstantInt(I64, 0))
        ai = analyze_function(f, m)
        assert ai.is_thread_local(addr)
        assert ai.points_to(addr) == ai.points_to(st)

    def test_load_propagates_contents(self):
        """A pointer stored to a slot and loaded back keeps its object."""
        m, f, b = new_func()
        a = b.alloca(I64, "a")
        slot = b.alloca(ptr(I64), "slot")
        b.store(a, slot)
        back = b.load(slot, name="back")
        b.ret(ConstantInt(I64, 0))
        ai = analyze_function(f, m)
        assert ai.is_thread_local(back)
        assert ai.points_to(back) == ai.points_to(a)


class TestEscape:
    def test_call_escapes_argument(self):
        m, f, b = new_func()
        sink = add_sink(m)
        a = b.alloca(I64, "a")
        b.call(sink, [a])
        b.ret(ConstantInt(I64, 0))
        ai = analyze_function(f, m)
        assert not ai.is_thread_local(a)
        assert any(o.escaped for o in ai.points_to(a))

    def test_return_escapes(self):
        m = Module("t")
        f = Function("f", FunctionType(ptr(I64), ()), [])
        m.add_function(f)
        b = IRBuilder(f.new_block("entry"))
        a = b.alloca(I64, "a")
        b.ret(a)
        ai = analyze_function(f, m)
        assert not ai.is_thread_local(a)

    def test_store_into_escaped_object_escapes(self):
        """Storing a pointer into a global leaks the pointee."""
        m, f, b = new_func()
        g = GlobalVariable("g", ptr(I64))
        m.globals["g"] = g
        a = b.alloca(I64, "a")
        b.store(a, g)
        b.ret(ConstantInt(I64, 0))
        ai = analyze_function(f, m)
        assert not ai.is_thread_local(a)

    def test_transitive_escape_through_contents(self):
        """Escaping a holder escapes everything stored inside it."""
        m, f, b = new_func()
        sink = add_sink(m, ptr(ptr(I64)))
        inner = b.alloca(I64, "inner")
        holder = b.alloca(ptr(I64), "holder")
        b.store(inner, holder)
        b.call(sink, [holder])
        b.ret(ConstantInt(I64, 0))
        ai = analyze_function(f, m)
        assert not ai.is_thread_local(holder)
        assert not ai.is_thread_local(inner)

    def test_readnone_call_does_not_escape(self):
        m, f, b = new_func()
        clock = ExternalFunction("clock", FunctionType(I64, []))
        m.externals["clock"] = clock
        a = b.alloca(I64, "a")
        b.call(clock, [])
        b.ret(ConstantInt(I64, 0))
        ai = analyze_function(f, m)
        assert ai.is_thread_local(a)

    def test_globals_are_born_escaped(self):
        m, f, b = new_func()
        g = GlobalVariable("g", I64)
        m.globals["g"] = g
        b.ret(ConstantInt(I64, 0))
        ai = analyze_function(f, m)
        assert not ai.is_thread_local(g)

    def test_arguments_are_unknown(self):
        m, f, b = new_func(params=(ptr(I64),))
        b.ret(ConstantInt(I64, 0))
        ai = analyze_function(f, m)
        assert not ai.is_thread_local(f.arguments[0])


class TestAliasQueries:
    def test_distinct_allocas_do_not_alias(self):
        m, f, b = new_func()
        a1 = b.alloca(I64, "a1")
        a2 = b.alloca(I64, "a2")
        b.ret(ConstantInt(I64, 0))
        ai = analyze_function(f, m)
        assert not ai.may_alias(a1, a2)
        assert ai.alias(a1, a2) == "no"
        assert ai.alias(a1, a1) == "must"

    def test_unknown_does_not_alias_private_alloca(self):
        """The provenance assumption: lost-provenance pointers still can't
        point at an alloca that never escaped."""
        m, f, b = new_func(params=(ptr(I64),))
        a = b.alloca(I64, "a")
        b.ret(ConstantInt(I64, 0))
        ai = analyze_function(f, m)
        assert not ai.may_alias(f.arguments[0], a)

    def test_unknown_aliases_escaped_alloca(self):
        m, f, b = new_func(params=(ptr(I64),))
        sink = add_sink(m)
        a = b.alloca(I64, "a")
        b.call(sink, [a])
        b.ret(ConstantInt(I64, 0))
        ai = analyze_function(f, m)
        assert ai.may_alias(f.arguments[0], a)

    def test_unknown_aliases_global(self):
        m, f, b = new_func(params=(ptr(I64),))
        g = GlobalVariable("g", I64)
        m.globals["g"] = g
        b.ret(ConstantInt(I64, 0))
        ai = analyze_function(f, m)
        assert ai.may_alias(f.arguments[0], g)

    def test_mod_ref(self):
        m, f, b = new_func()
        sink = add_sink(m)
        g = GlobalVariable("g", I64)
        m.globals["g"] = g
        a = b.alloca(I64, "a")
        ld = b.load(a, name="v")
        st = b.store(ConstantInt(I64, 1), g)
        call = b.call(sink, [])
        b.ret(ld)
        ai = analyze_function(f, m)
        assert ai.mod_ref(ld, a) == REF
        assert ai.mod_ref(ld, g) == NO_MODREF
        assert ai.mod_ref(st, g) == MOD
        assert ai.mod_ref(st, a) == NO_MODREF
        # The call reaches escaped memory (the global), not the alloca.
        assert ai.mod_ref(call, g) == MOD_REF
        assert ai.mod_ref(call, a) == NO_MODREF

    def test_post_solve_instruction_defaults_to_unknown(self):
        """Values created after the analysis ran must be treated as
        worst-case, not as no-provenance."""
        m, f, b = new_func()
        a = b.alloca(I64, "a")
        sink = add_sink(m)
        b.call(sink, [a])
        b.ret(ConstantInt(I64, 0))
        ai = analyze_function(f, m)
        late = b.alloca(I64, "late")   # inserted after solve
        assert not ai.is_thread_local(late)
        assert ai.may_alias(late, a)   # a escaped; unknown may reach it
