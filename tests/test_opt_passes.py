"""Unit tests for individual optimizer passes."""


from repro.lir import (
    I1,
    I64,
    Alloca,
    ArrayType,
    BinOp,
    ConstantInt,
    Function,
    FunctionType,
    ICmp,
    Interpreter,
    IRBuilder,
    Load,
    Module,
    Phi,
    Select,
    Store,
    ptr,
    verify_function,
)
from repro.opt import (
    run_adce,
    run_dce,
    run_dse,
    run_gvn,
    run_instcombine,
    run_licm,
    run_mem2reg,
    run_reassociate,
    run_sccp,
    run_simplifycfg,
    run_sroa,
)


def new_func(params=(I64,), ret=I64, name="f"):
    m = Module("t")
    f = Function(name, FunctionType(ret, tuple(params)), ["x", "y"])
    m.add_function(f)
    bb = f.new_block("entry")
    return m, f, IRBuilder(bb)


def count_op(f, cls):
    return sum(1 for i in f.instructions() if isinstance(i, cls))


class TestMem2Reg:
    def test_promotes_scalar_slot(self):
        m, f, b = new_func()
        slot = b.alloca(I64)
        b.store(f.arguments[0], slot)
        b.ret(b.load(slot))
        run_mem2reg(f)
        verify_function(f)
        assert count_op(f, Alloca) == 0
        assert count_op(f, Load) == 0

    def test_inserts_phi_at_join(self):
        m = Module("t")
        f = Function("f", FunctionType(I64, (I64,)), ["x"])
        m.add_function(f)
        entry = f.new_block("entry")
        then = f.new_block("then")
        els = f.new_block("els")
        join = f.new_block("join")
        b = IRBuilder(entry)
        slot = b.alloca(I64)
        cond = b.icmp("sgt", f.arguments[0], ConstantInt(I64, 0))
        b.cond_br(cond, then, els)
        tb = IRBuilder(then)
        tb.store(ConstantInt(I64, 1), slot)
        tb.br(join)
        eb = IRBuilder(els)
        eb.store(ConstantInt(I64, 2), slot)
        eb.br(join)
        jb = IRBuilder(join)
        jb.ret(jb.load(slot))
        run_mem2reg(f)
        verify_function(f)
        assert count_op(f, Phi) == 1
        it = Interpreter(m)
        assert it.run("f", [5]) == 1
        assert it.run("f", [0]) == 2

    def test_loop_carried_value(self):
        # Sum 0..n-1 through a memory slot; must become a phi cycle.
        m = Module("t")
        f = Function("f", FunctionType(I64, (I64,)), ["n"])
        m.add_function(f)
        entry = f.new_block("entry")
        head = f.new_block("head")
        body = f.new_block("body")
        done = f.new_block("done")
        b = IRBuilder(entry)
        i_slot = b.alloca(I64)
        s_slot = b.alloca(I64)
        b.store(ConstantInt(I64, 0), i_slot)
        b.store(ConstantInt(I64, 0), s_slot)
        b.br(head)
        hb = IRBuilder(head)
        hb.cond_br(
            hb.icmp("slt", hb.load(i_slot), f.arguments[0]), body, done
        )
        bb2 = IRBuilder(body)
        i = bb2.load(i_slot)
        bb2.store(bb2.add(bb2.load(s_slot), i), s_slot)
        bb2.store(bb2.add(i, ConstantInt(I64, 1)), i_slot)
        bb2.br(head)
        db = IRBuilder(done)
        db.ret(db.load(s_slot))
        run_mem2reg(f)
        verify_function(f)
        assert count_op(f, Alloca) == 0
        assert Interpreter(m).run("f", [10]) == 45

    def test_escaping_alloca_not_promoted(self):
        m, f, b = new_func()
        slot = b.alloca(I64)
        b.ptrtoint(slot, I64)  # escape
        b.store(f.arguments[0], slot)
        b.ret(b.load(slot))
        run_mem2reg(f)
        assert count_op(f, Alloca) == 1

    def test_atomic_slot_not_promoted(self):
        m, f, b = new_func()
        slot = b.alloca(I64)
        b.store(f.arguments[0], slot, ordering="sc")
        b.ret(b.load(slot, ordering="sc"))
        run_mem2reg(f)
        assert count_op(f, Alloca) == 1


class TestInstcombine:
    def test_constant_folding(self):
        m, f, b = new_func()
        v = b.add(ConstantInt(I64, 2), ConstantInt(I64, 3))
        b.ret(b.mul(v, ConstantInt(I64, 4)))
        run_instcombine(f)
        verify_function(f)
        assert f.instruction_count() == 1  # just ret 20
        assert Interpreter(m).run("f", [0]) == 20

    def test_algebraic_identities(self):
        m, f, b = new_func()
        x = f.arguments[0]
        v = b.add(x, ConstantInt(I64, 0))
        v = b.mul(v, ConstantInt(I64, 1))
        v = b.binop("or", v, ConstantInt(I64, 0))
        b.ret(v)
        run_instcombine(f)
        assert f.instruction_count() == 1

    def test_add_chain_folds(self):
        m, f, b = new_func()
        x = f.arguments[0]
        v = b.add(x, ConstantInt(I64, 5))
        v = b.add(v, ConstantInt(I64, 7))
        v = b.sub(v, ConstantInt(I64, 2))
        b.ret(v)
        run_instcombine(f)
        binops = [i for i in f.instructions() if isinstance(i, BinOp)]
        assert len(binops) == 1
        assert Interpreter(m).run("f", [100]) == 110

    def test_inttoptr_of_ptrtoint_collapses(self):
        m, f, b = new_func(params=(ptr(I64),))
        p = f.arguments[0]
        i = b.ptrtoint(p, I64)
        q = b.inttoptr(i, ptr(I64))
        b.ret(b.load(q))
        run_instcombine(f)
        loads = [i for i in f.instructions() if isinstance(i, Load)]
        assert loads[0].pointer is p

    def test_icmp_of_zext_bool(self):
        m, f, b = new_func()
        c = b.icmp("slt", f.arguments[0], ConstantInt(I64, 5))
        z = b.zext(c, I64)
        c2 = b.icmp("ne", z, ConstantInt(I64, 0))
        b.ret(b.zext(c2, I64))
        run_instcombine(f)
        icmps = [i for i in f.instructions() if isinstance(i, ICmp)]
        assert len(icmps) == 1

    def test_select_folding(self):
        m, f, b = new_func()
        v = b.select(ConstantInt(I1, 1), f.arguments[0], ConstantInt(I64, 0))
        b.ret(v)
        run_instcombine(f)
        assert count_op(f, Select) == 0

    def test_double_mask_collapses(self):
        m, f, b = new_func()
        x = f.arguments[0]
        v = b.binop("and", x, ConstantInt(I64, 0xFF))
        v = b.binop("and", v, ConstantInt(I64, 0xFF))
        b.ret(v)
        run_instcombine(f)
        binops = [i for i in f.instructions() if isinstance(i, BinOp)]
        assert len(binops) == 1

    def test_preserves_semantics_randomly(self):
        import random

        rng = random.Random(42)
        for trial in range(20):
            m, f, b = new_func()
            v = f.arguments[0]
            for _ in range(8):
                op = rng.choice(["add", "sub", "mul", "and", "or", "xor", "shl"])
                c = ConstantInt(I64, rng.randrange(0, 7))
                v = b.binop(op, v, c)
            b.ret(v)
            arg = rng.randrange(-1000, 1000) & (2**64 - 1)
            before = Interpreter(m).run("f", [arg])
            run_instcombine(f)
            verify_function(f)
            after = Interpreter(m).run("f", [arg])
            assert before == after


class TestDCE:
    def test_removes_unused_pure(self):
        m, f, b = new_func()
        b.add(f.arguments[0], ConstantInt(I64, 1))  # dead
        b.ret(f.arguments[0])
        run_dce(f)
        assert f.instruction_count() == 1

    def test_keeps_side_effects(self):
        m, f, b = new_func(params=(ptr(I64),))
        b.store(ConstantInt(I64, 1), f.arguments[0])
        b.fence("sc")
        b.ret(ConstantInt(I64, 0))
        run_dce(f)
        assert f.instruction_count() == 3

    def test_removes_dead_chains(self):
        m, f, b = new_func()
        v = f.arguments[0]
        for _ in range(5):
            v = b.add(v, ConstantInt(I64, 1))  # whole chain dead
        b.ret(f.arguments[0])
        run_dce(f)
        assert f.instruction_count() == 1

    def test_adce_removes_stores_to_dead_slot(self):
        m, f, b = new_func()
        slot = b.alloca(I64)
        b.store(f.arguments[0], slot)  # never loaded
        b.ret(f.arguments[0])
        run_adce(f)
        assert count_op(f, Alloca) == 0
        assert count_op(f, Store) == 0


class TestGVN:
    def test_common_subexpression(self):
        m, f, b = new_func()
        x = f.arguments[0]
        a = b.add(x, ConstantInt(I64, 1))
        c = b.add(x, ConstantInt(I64, 1))
        b.ret(b.mul(a, c))
        run_gvn(f)
        binops = [i for i in f.instructions() if isinstance(i, BinOp)]
        assert len(binops) == 2  # one add + the mul

    def test_commutative_keys_match(self):
        m, f, b = new_func(params=(I64, I64))
        x, y = f.arguments
        a = b.add(x, y)
        c = b.add(y, x)
        b.ret(b.mul(a, c))
        run_gvn(f)
        adds = [i for i in f.instructions()
                if isinstance(i, BinOp) and i.op == "add"]
        assert len(adds) == 1

    def test_load_forwarding_same_pointer(self):
        m, f, b = new_func(params=(ptr(I64),))
        p = f.arguments[0]
        l1 = b.load(p)
        l2 = b.load(p)
        b.ret(b.add(l1, l2))
        run_gvn(f)
        assert count_op(f, Load) == 1

    def test_store_to_load_forwarding(self):
        m, f, b = new_func(params=(ptr(I64),))
        p = f.arguments[0]
        b.store(ConstantInt(I64, 9), p)
        b.ret(b.load(p))
        run_gvn(f)
        assert count_op(f, Load) == 0

    def test_rar_may_cross_frm_fence(self):
        # Fig. 11b F-RAR: o ∈ {rm, ww}.
        m, f, b = new_func(params=(ptr(I64),))
        p = f.arguments[0]
        l1 = b.load(p)
        b.fence("rm")
        l2 = b.load(p)
        b.ret(b.add(l1, l2))
        run_gvn(f)
        assert count_op(f, Load) == 1

    def test_rar_must_not_cross_fsc(self):
        m, f, b = new_func(params=(ptr(I64),))
        p = f.arguments[0]
        l1 = b.load(p)
        b.fence("sc")
        l2 = b.load(p)
        b.ret(b.add(l1, l2))
        run_gvn(f)
        assert count_op(f, Load) == 2

    def test_raw_may_cross_fww_but_not_frm(self):
        # F-RAW allows τ ∈ {sc, ww}; Frm does not forward W→R.
        for kind, expected_loads in (("ww", 0), ("rm", 1)):
            m, f, b = new_func(params=(ptr(I64),))
            p = f.arguments[0]
            b.store(ConstantInt(I64, 3), p)
            b.fence(kind)
            b.ret(b.load(p))
            run_gvn(f)
            assert count_op(f, Load) == expected_loads, kind

    def test_intervening_store_blocks_forwarding(self):
        m, f, b = new_func(params=(ptr(I64), ptr(I64)))
        p, q = f.arguments
        l1 = b.load(p)
        b.store(ConstantInt(I64, 1), q)  # may alias p
        l2 = b.load(p)
        b.ret(b.add(l1, l2))
        run_gvn(f)
        assert count_op(f, Load) == 2

    def test_atomic_loads_never_merged(self):
        m, f, b = new_func(params=(ptr(I64),))
        p = f.arguments[0]
        l1 = b.load(p, ordering="sc")
        l2 = b.load(p, ordering="sc")
        b.ret(b.add(l1, l2))
        run_gvn(f)
        assert count_op(f, Load) == 2


class TestDSE:
    def test_dead_store_removed(self):
        m, f, b = new_func(params=(ptr(I64),))
        p = f.arguments[0]
        b.store(ConstantInt(I64, 1), p)
        b.store(ConstantInt(I64, 2), p)
        b.ret(ConstantInt(I64, 0))
        run_dse(f)
        assert count_op(f, Store) == 1

    def test_waw_crosses_frm_fww_not_fsc(self):
        # Fig. 11b F-WAW: o ∈ {rm, ww}.
        for kind, expected in (("rm", 1), ("ww", 1), ("sc", 2)):
            m, f, b = new_func(params=(ptr(I64),))
            p = f.arguments[0]
            b.store(ConstantInt(I64, 1), p)
            b.fence(kind)
            b.store(ConstantInt(I64, 2), p)
            b.ret(ConstantInt(I64, 0))
            run_dse(f)
            assert count_op(f, Store) == expected, kind

    def test_intervening_load_blocks(self):
        m, f, b = new_func(params=(ptr(I64),))
        p = f.arguments[0]
        b.store(ConstantInt(I64, 1), p)
        v = b.load(p)
        b.store(ConstantInt(I64, 2), p)
        b.ret(v)
        run_dse(f)
        assert count_op(f, Store) == 2


class TestSCCPAndCFG:
    def test_sccp_folds_through_branches(self):
        m = Module("t")
        f = Function("f", FunctionType(I64, ()))
        m.add_function(f)
        entry = f.new_block("entry")
        then = f.new_block("then")
        els = f.new_block("els")
        b = IRBuilder(entry)
        cond = b.icmp("eq", ConstantInt(I64, 1), ConstantInt(I64, 1))
        b.cond_br(cond, then, els)
        IRBuilder(then).ret(ConstantInt(I64, 10))
        IRBuilder(els).ret(ConstantInt(I64, 20))
        run_sccp(f)
        verify_function(f)
        assert Interpreter(m).run("f") == 10
        assert len(f.blocks) == 1  # dead branch removed

    def test_simplifycfg_merges_straightline(self):
        m = Module("t")
        f = Function("f", FunctionType(I64, ()))
        m.add_function(f)
        a = f.new_block("a")
        bb = f.new_block("b")
        c = f.new_block("c")
        IRBuilder(a).br(bb)
        IRBuilder(bb).br(c)
        IRBuilder(c).ret(ConstantInt(I64, 4))
        run_simplifycfg(f)
        assert len(f.blocks) == 1
        assert Interpreter(m).run("f") == 4

    def test_simplifycfg_removes_unreachable(self):
        m, f, b = new_func()
        b.ret(f.arguments[0])
        dead = f.new_block("dead")
        IRBuilder(dead).ret(ConstantInt(I64, 0))
        run_simplifycfg(f)
        assert len(f.blocks) == 1


class TestLICM:
    def test_hoists_invariant_computation(self):
        m = Module("t")
        f = Function("f", FunctionType(I64, (I64, I64)), ["n", "k"])
        m.add_function(f)
        entry = f.new_block("entry")
        head = f.new_block("head")
        body = f.new_block("body")
        done = f.new_block("done")
        b = IRBuilder(entry)
        i_slot = b.alloca(I64)
        s_slot = b.alloca(I64)
        b.store(ConstantInt(I64, 0), i_slot)
        b.store(ConstantInt(I64, 0), s_slot)
        b.br(head)
        hb = IRBuilder(head)
        hb.cond_br(hb.icmp("slt", hb.load(i_slot), f.arguments[0]), body, done)
        bb2 = IRBuilder(body)
        inv = bb2.mul(f.arguments[1], f.arguments[1])  # invariant
        bb2.store(bb2.add(bb2.load(s_slot), inv), s_slot)
        bb2.store(bb2.add(bb2.load(i_slot), ConstantInt(I64, 1)), i_slot)
        bb2.br(head)
        IRBuilder(done).ret(IRBuilder(done).load(s_slot))
        run_mem2reg(f)
        run_licm(f)
        verify_function(f)
        # the multiply must not live in the loop body anymore
        loop_blocks = {bb.name for bb in f.blocks if bb.name in ("head", "body")}
        for blk in f.blocks:
            if blk.name in loop_blocks:
                assert not any(
                    isinstance(i, BinOp) and i.op == "mul"
                    for i in blk.instructions
                )
        assert Interpreter(m).run("f", [5, 3]) == 45

    def test_does_not_hoist_load_past_loop_stores(self):
        m = Module("t")
        f = Function("f", FunctionType(I64, (ptr(I64), I64)), ["p", "n"])
        m.add_function(f)
        entry = f.new_block("entry")
        head = f.new_block("head")
        body = f.new_block("body")
        done = f.new_block("done")
        b = IRBuilder(entry)
        i_slot = b.alloca(I64)
        b.store(ConstantInt(I64, 0), i_slot)
        b.br(head)
        hb = IRBuilder(head)
        hb.cond_br(hb.icmp("slt", hb.load(i_slot), f.arguments[1]), body, done)
        bb2 = IRBuilder(body)
        v = bb2.load(f.arguments[0])  # loop stores may alias
        bb2.store(bb2.add(v, ConstantInt(I64, 1)), f.arguments[0])
        bb2.store(bb2.add(bb2.load(i_slot), ConstantInt(I64, 1)), i_slot)
        bb2.br(head)
        IRBuilder(done).ret(IRBuilder(done).load(f.arguments[0]))
        run_mem2reg(f)
        before = Interpreter(m)
        # set up memory: write through a pointer into the global heap area
        run_licm(f)
        verify_function(f)
        body_block = next(bb for bb in f.blocks if bb.name == "body")
        assert any(isinstance(i, Load) for i in body_block.instructions)


class TestReassociate:
    def test_flattens_constant_chain(self):
        m, f, b = new_func()
        x = f.arguments[0]
        v = b.add(b.add(b.add(x, ConstantInt(I64, 1)), ConstantInt(I64, 2)),
                  ConstantInt(I64, 3))
        b.ret(v)
        run_reassociate(f)
        run_dce(f)
        verify_function(f)
        binops = [i for i in f.instructions() if isinstance(i, BinOp)]
        assert len(binops) == 1
        assert Interpreter(m).run("f", [10]) == 16

    def test_mixed_add_sub(self):
        m, f, b = new_func()
        x = f.arguments[0]
        v = b.sub(b.add(x, ConstantInt(I64, 10)), ConstantInt(I64, 4))
        b.ret(v)
        run_reassociate(f)
        run_dce(f)
        assert Interpreter(m).run("f", [0]) == 6


class TestSROA:
    def test_splits_constant_offset_array(self):
        m, f, b = new_func()
        arr = b.alloca(ArrayType(__import__("repro.lir", fromlist=["I8"]).I8, 16))
        p8 = b.bitcast(arr, ptr(__import__("repro.lir", fromlist=["I8"]).I8))
        from repro.lir import I8

        g0 = b.gep(I8, p8, [ConstantInt(I64, 0)])
        g8 = b.gep(I8, p8, [ConstantInt(I64, 8)])
        p0 = b.bitcast(g0, ptr(I64))
        p1 = b.bitcast(g8, ptr(I64))
        b.store(ConstantInt(I64, 7), p0)
        b.store(f.arguments[0], p1)
        v = b.add(b.load(p0), b.load(p1))
        b.ret(v)
        run_sroa(f)
        run_mem2reg(f)
        run_dce(f)
        verify_function(f)
        assert count_op(f, Alloca) == 0
        assert Interpreter(m).run("f", [35]) == 42

    def test_rejects_overlapping_types(self):
        from repro.lir import I8

        m, f, b = new_func()
        arr = b.alloca(ArrayType(I8, 16))
        p8 = b.bitcast(arr, ptr(I8))
        p0i = b.bitcast(p8, ptr(I64))
        g4 = b.gep(I8, p8, [ConstantInt(I64, 4)])
        p4i = b.bitcast(g4, ptr(I64))  # overlaps bytes 4..12
        b.store(ConstantInt(I64, 1), p0i)
        b.store(ConstantInt(I64, 2), p4i)
        b.ret(b.load(p0i))
        run_sroa(f)
        assert count_op(f, Alloca) == 1  # must not split

    def test_rejects_escaping_array(self):
        from repro.lir import I8

        m, f, b = new_func()
        arr = b.alloca(ArrayType(I8, 8))
        p8 = b.bitcast(arr, ptr(I8))
        b.ptrtoint(p8, I64)  # escape
        p0 = b.bitcast(p8, ptr(I64))
        b.store(ConstantInt(I64, 1), p0)
        b.ret(b.load(p0))
        run_sroa(f)
        assert count_op(f, Alloca) == 1
