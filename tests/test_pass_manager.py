"""Tests for the pass manager, pipeline plumbing and the core driver."""

import pytest

from repro.core import CONFIGS, Lasagne
from repro.lir import ConstantInt, Function, FunctionType, I64, IRBuilder, Module
from repro.opt import (
    FUNCTION_PASSES,
    MODULE_PASSES,
    STANDARD_PIPELINE,
    PassManager,
    optimize_module,
)


def junk_module():
    m = Module("t")
    f = Function("f", FunctionType(I64, (I64,)), ["x"])
    m.add_function(f)
    b = IRBuilder(f.new_block("entry"))
    slot = b.alloca(I64)
    b.store(f.arguments[0], slot)
    v = b.load(slot)
    dead = b.add(v, ConstantInt(I64, 0))
    dead2 = b.mul(dead, ConstantInt(I64, 1))
    b.ret(b.add(v, ConstantInt(I64, 0)))
    return m


class TestPassManager:
    def test_every_registered_pass_runs(self):
        pm = PassManager(verify=True)
        for name in list(FUNCTION_PASSES) + list(MODULE_PASSES):
            pm.run_pass(junk_module(), name)

    def test_unknown_pass_rejected(self):
        pm = PassManager()
        with pytest.raises(KeyError):
            pm.run_pass(junk_module(), "loop-vectorize")

    def test_stats_record_reductions(self):
        pm = PassManager()
        m = junk_module()
        pm.run_pipeline(m)
        reductions = pm.stats.reduction_by_pass()
        assert sum(reductions.values()) > 0
        assert all(v >= 0 for v in reductions.values())

    def test_pipeline_reaches_fixpoint(self):
        m = junk_module()
        optimize_module(m)
        before = m.instruction_count()
        optimize_module(m)
        assert m.instruction_count() == before

    def test_standard_pipeline_is_registered(self):
        for name in STANDARD_PIPELINE:
            assert name in FUNCTION_PASSES or name in MODULE_PASSES

    def test_declarations_skipped(self):
        m = junk_module()
        m.add_function(Function("decl", FunctionType(I64, ())))
        optimize_module(m, verify=True)  # must not crash on the declaration


class TestCoreDriver:
    def test_configs_list(self):
        assert CONFIGS == ["native", "lifted", "opt", "popt", "ppopt"]

    def test_build_dispatches_native(self):
        built = Lasagne(verify=True).build("int main() { return 3; }", "native")
        assert built.config == "native"
        assert Lasagne.run(built).result == 3

    def test_run_collects_output_and_cycles(self):
        built = Lasagne(verify=True).build(
            "int main() { print_i(5); return 0; }", "opt"
        )
        run = Lasagne.run(built)
        assert run.output == ["5"]
        assert run.cycles > 0
        assert run.instructions_retired > 0

    def test_translation_result_metrics(self):
        built = Lasagne(verify=True).build(
            "int g = 0; int main() { g = 1; return g; }", "ppopt"
        )
        assert built.arm_instructions > 0
        assert built.lir_instructions > 0
        assert built.pointer_casts_before >= built.pointer_casts_after
