"""End-to-end loader tests over real ``gcc -static`` ELF64 binaries.

The fixtures in ``examples/elf/`` were compiled from the ``.c`` files
next to them with::

    gcc -static -O1 -fno-stack-protector -fcf-protection=none -fno-builtin

Each test ingests the genuine glibc-linked binary — ifunc PLTs,
decorated symbol names, real .rodata/.bss layout — and the oracle tests
run the translation through both emulators and demand identical results
and output streams (the paper's co-simulation validation, on a binary
no part of this repo produced).
"""

import json

import pytest

from repro.core import Lasagne, ingest_binary
from repro.x86.emulator import X86Emulator

from pathlib import Path

FIXTURES = Path(__file__).resolve().parent.parent / "examples" / "elf"

#: fixture name -> (exit code, full concatenated output)
EXPECTED = {
    "sum": (36, "9864136\n"),
    "strings": (11, "match\nhello world\n11"),
    "memgrid": (104, "2664\n"),
}


def _load(name: str):
    path = FIXTURES / name
    if not path.exists():
        pytest.skip(f"fixture {name} not checked in")
    return ingest_binary(path.read_bytes())


class TestIngestFixtures:
    def test_sum_discovery(self):
        obj, report = _load("sum")
        assert report.ok and not report.remarks
        assert "main" in obj.functions
        assert set(report.externals_resolved) == {"free", "malloc", "printf"}
        assert report.externals_opaque == {}
        assert all(f.decodable_pct == 100.0 for f in report.functions)

    def test_strings_discovery(self):
        obj, report = _load("strings")
        assert report.ok
        # putchar's PLT resolves through glibc's _IO_putc, so it files
        # under the two-argument putc entry (the stream arg is opaque).
        assert set(report.externals_resolved) == {
            "strcpy", "strlen", "strcmp", "puts", "putc", "printf"}
        # buf is a named .bss global; the literals are anonymous rodata.
        assert "buf" in obj.data_symbols
        assert any(n.startswith("data_") for n in obj.data_symbols)

    def test_memgrid_discovery(self):
        obj, report = _load("memgrid")
        assert report.ok
        assert {"calloc", "memcpy", "memset", "free", "printf"} \
            <= set(report.externals_resolved)
        assert {"main", "rowsum"} <= set(obj.functions)
        assert "cells" in obj.data_symbols

    def test_extern_sigs_reach_the_lifter(self):
        obj, _ = _load("memgrid")
        assert obj.extern_sigs["memcpy"] == (3, 0, "i64")
        assert obj.extern_sigs["calloc"] == (2, 0, "i64")


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_cosimulation_oracle(name):
    """x86 (TSO) and translated Arm agree on result AND output stream."""
    obj, report = _load(name)
    assert report.ok
    built = Lasagne(verify=True).translate(obj, "ppopt")
    want_code, want_out = EXPECTED[name]

    x86 = X86Emulator(obj)
    x86_code = x86.run("main")
    arm = Lasagne.run(built)
    assert x86_code == want_code
    assert arm.result == want_code
    assert "".join(x86.output) == want_out
    assert "".join(arm.output) == want_out


def test_all_translated_configs_agree():
    obj, _ = _load("sum")
    want_code, want_out = EXPECTED["sum"]
    for config in ("lifted", "opt", "popt", "ppopt"):
        built = Lasagne(verify=True).translate(obj, config)
        run = Lasagne.run(built)
        assert run.result == want_code, config
        assert "".join(run.output) == want_out, config


class TestCliOnBinaries:
    def test_triage_emits_json(self, capsys):
        from repro.cli import main

        path = FIXTURES / "sum"
        if not path.exists():
            pytest.skip("fixture not checked in")
        assert main(["triage", str(path), "--strict"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["format"] == "elf64" and report["ok"]
        assert report["counts"]["externals_opaque"] == 0
        assert report["counts"]["functions_discovered"] >= 1

    def test_triage_on_mini_c_source(self, tmp_path, capsys):
        from repro.cli import main

        src = tmp_path / "t.c"
        src.write_text("int main() { print_i(7); return 7; }")
        assert main(["triage", str(src)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["format"] == "elf-lite" and report["ok"]
        assert "print_i64" in report["externals"]["resolved"]

    def test_translate_rejects_native_for_elf(self, capsys):
        from repro.cli import main

        path = FIXTURES / "sum"
        if not path.exists():
            pytest.skip("fixture not checked in")
        assert main(["translate", str(path), "--config", "native"]) == 2
        assert "native" in capsys.readouterr().err

    def test_translate_run_matches(self, capsys):
        from repro.cli import main

        path = FIXTURES / "sum"
        if not path.exists():
            pytest.skip("fixture not checked in")
        assert main(["translate", str(path), "--run"]) == 0
        out = capsys.readouterr().out
        assert "x86 result: 36" in out and "arm result: 36" in out

    def test_explain_full_fence_provenance(self, capsys):
        from repro.cli import main

        path = FIXTURES / "strings"
        if not path.exists():
            pytest.skip("fixture not checked in")
        assert main(["explain", str(path), "--coverage",
                     "--min-fence-coverage", "100"]) == 0
        assert "100.0%" in capsys.readouterr().out


class TestEntryErrorDiagnostics:
    def test_emulator_names_candidates(self):
        from repro.x86.objfile import EntryError

        obj, _ = _load("memgrid")
        with pytest.raises(EntryError) as exc:
            X86Emulator(obj).run("start")
        assert "start" in str(exc.value) and "rowsum" in str(exc.value)

    def test_translate_names_candidates(self):
        from repro.x86.objfile import EntryError

        obj, _ = _load("sum")
        with pytest.raises(EntryError, match="main"):
            Lasagne().translate(obj, "ppopt", entry="not_there")
