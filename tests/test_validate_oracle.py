"""Tests for the co-simulation oracle: rung coverage, stage classification,
and the pipeline stage hooks it relies on."""

from unittest import mock


import repro.core.pipeline as pipeline
from repro.core import Lasagne
from repro.lir import Interpreter
from repro.lir.instructions import BinOp
from repro.minicc.codegen_x86 import compile_to_x86
from repro.validate import OracleOptions, options_for_signature, run_oracle

CLEAN = """
int g = 2;
int ga[8];
int helper(int a, int b) { return a * b + g; }
int main() {
  int acc = 0;
  for (int i = 0; i < 5; i = i + 1) {
    ga[i & 7] = helper(i, 3);
    acc = acc + ga[i & 7];
  }
  print_i(acc);
  return acc & 268435455;
}
"""


def _break_main_add(module):
    """Flip the first integer add in main — a deliberately wrong transform."""
    main = module.functions.get("main")
    if main is None:
        return False
    for block in main.blocks:
        for inst in block.instructions:
            if isinstance(inst, BinOp) and inst.op == "add":
                inst.op = "sub"
                return True
    return False


class TestStageCapture:
    def test_translate_captures_all_stages(self):
        obj = compile_to_x86(CLEAN)
        built = Lasagne(capture_stages=True).translate(obj, "ppopt")
        assert list(built.stages) == ["lift", "refine", "place", "opt", "merge"]
        for module in built.stages.values():
            interp = Interpreter(module)
            assert interp.run("main") is not None

    def test_capture_off_by_default(self):
        obj = compile_to_x86(CLEAN)
        assert Lasagne().translate(obj, "ppopt").stages == {}

    def test_native_captures_frontend_and_opt(self):
        built = Lasagne(capture_stages=True).native(CLEAN)
        assert list(built.stages) == ["frontend", "opt"]

    def test_snapshots_are_independent(self):
        obj = compile_to_x86(CLEAN)
        built = Lasagne(capture_stages=True).translate(obj, "ppopt")
        # Mutating a snapshot must not leak into the final module.
        assert _break_main_add(built.stages["lift"])
        assert Lasagne.run(built).result == Interpreter(
            built.stages["merge"]).run("main")


class TestOracleClean:
    def test_clean_program_passes_every_rung(self):
        verdict = run_oracle(CLEAN)
        assert verdict.ok and verdict.divergence is None
        names = [r.name for r in verdict.rungs]
        assert names == [
            "reference", "x86", "interp:lift", "interp:refine",
            "interp:place", "interp:opt", "interp:merge", "arm:native",
            "arm:lifted", "arm:opt", "arm:popt", "arm:ppopt",
            "fencecheck:place", "fencecheck:opt", "fencecheck:merge",
        ]
        reference = verdict.rungs[0]
        assert reference.output == ("40",)
        for rung in verdict.rungs:
            assert rung.error is None
            if rung.name.startswith("fencecheck:"):
                # Static rung: retired counts violations; zero when clean.
                assert rung.retired == 0
            else:
                assert rung.result == reference.result
                assert rung.retired > 0

    def test_globals_digests_compared(self):
        verdict = run_oracle(CLEAN)
        reference = verdict.rungs[0]
        assert "g" in reference.globals and "ga" in reference.globals
        for rung in verdict.rungs[1:]:
            for name, digest in rung.globals.items():
                assert digest == reference.globals[name], (rung.name, name)

    def test_to_dict_is_json_shaped(self):
        verdict = run_oracle(CLEAN, OracleOptions(include_native=False))
        d = verdict.to_dict()
        assert d["ok"] is True and d["divergence"] is None
        assert all("name" in r and "stage" in r for r in d["rungs"])


class TestStageClassification:
    def test_broken_optimizer_blamed_on_opt(self):
        real = pipeline.optimize_module

        def broken(module, *args, **kwargs):
            stats = real(module, *args, **kwargs)
            _break_main_add(module)
            return stats

        with mock.patch.object(pipeline, "optimize_module", broken):
            verdict = run_oracle(CLEAN)
        assert not verdict.ok
        assert verdict.divergence.stage == "opt"
        assert verdict.divergence.rung == "interp:opt"
        assert verdict.signature.startswith("opt:")

    def test_broken_merge_blamed_on_merge(self):
        real = pipeline.merge_fences

        def broken(module):
            count = real(module)
            _break_main_add(module)
            return count

        with mock.patch.object(pipeline, "merge_fences", broken):
            verdict = run_oracle(CLEAN)
        assert not verdict.ok
        assert verdict.divergence.stage == "merge"

    def test_crashing_pass_reported_not_raised(self):
        def exploding(module, *args, **kwargs):
            raise RuntimeError("pass exploded")

        with mock.patch.object(pipeline, "optimize_module", exploding):
            verdict = run_oracle(CLEAN)
        assert not verdict.ok
        assert verdict.divergence.kind == "crash"
        assert "pass exploded" in verdict.divergence.detail

    def test_broken_codegen_blamed_on_codegen(self):
        real = pipeline.compile_lir_to_arm

        def broken(module, entry="main"):
            program = real(module, entry)
            for func in program.functions.values():
                for item in func.items:
                    if not isinstance(item, str) and item.mnemonic == "add":
                        item.mnemonic = "sub"
                        return program
            return program

        with mock.patch.object(pipeline, "compile_lir_to_arm", broken):
            verdict = run_oracle(CLEAN)
        assert not verdict.ok
        assert verdict.divergence.stage == "codegen"
        assert verdict.divergence.rung.startswith("arm:")


class TestOptionsForSignature:
    def test_ir_signature_drops_arm_rungs(self):
        opts = options_for_signature("opt:result")
        assert opts.arm_configs == () and not opts.include_native

    def test_codegen_signature_keeps_arm_rungs(self):
        opts = options_for_signature("codegen:result")
        assert opts.arm_configs == OracleOptions().arm_configs
