"""Tests for the herd-style litmus text format."""

import pytest

from repro.memmodel import Fence, Ld, Rmw, St, outcomes, has_outcome
from repro.memmodel.litmus_format import LitmusParseError, parse_litmus

MP_TEXT = r"""
MP
{ X=0; Y=0 }
P0           | P1            ;
X = 1        | a = Y         ;
Y = 1        | b = X         ;
exists (P1:a=1 /\ P1:b=0)
"""

MP_FENCED_TEXT = r"""
MP+fences
{ X=0; Y=0 }
P0           | P1            ;
X = 1        | a = Y         ;
fence ww     | fence rm      ;
Y = 1        | b = X         ;
exists (P1:a=1 /\ P1:b=0)
"""


class TestParsing:
    def test_structure(self):
        test = parse_litmus(MP_TEXT)
        assert test.program.name == "MP"
        assert len(test.program.threads) == 2
        t0, t1 = test.program.threads
        assert [type(o).__name__ for o in t0] == ["St", "St"]
        assert [type(o).__name__ for o in t1] == ["Ld", "Ld"]
        assert test.exists == {"P1:a": 1, "P1:b": 0}

    def test_init_values(self):
        test = parse_litmus("T\n{ X=7 }\nP0 ;\na = X ;\n")
        assert test.program.init == {"X": 7}
        assert has_outcome(outcomes(test.program, "x86"), t1_a=7)

    def test_fences(self):
        test = parse_litmus(MP_FENCED_TEXT)
        kinds = [
            op.kind
            for t in test.program.threads
            for op in t
            if isinstance(op, Fence)
        ]
        assert kinds == ["ww", "rm"]

    def test_cas_and_ctrl(self):
        test = parse_litmus(
            "T\nP0 ;\nr = cas X 0 2 ;\nctrl r ;\nY = 1 ;\n"
        )
        ops = test.program.threads[0]
        assert isinstance(ops[0], Rmw) and ops[0].new == 2
        assert type(ops[1]).__name__ == "CtrlDep"

    def test_register_store(self):
        test = parse_litmus("T\nP0 ;\na = X ;\nY = a ;\n")
        st = test.program.threads[0][1]
        assert isinstance(st, St) and not isinstance(st.value, int)

    def test_acquire_release(self):
        test = parse_litmus(
            "T\nP0        | P1 ;\nX =rel 1  | a =acq X ;\n"
        )
        st = test.program.threads[0][0]
        ld = test.program.threads[1][0]
        assert st.ordering == "rel" and ld.ordering == "acq"

    def test_uneven_rows_rejected(self):
        with pytest.raises(LitmusParseError):
            parse_litmus("T\nP0 | P1 ;\nX = 1 ;\n")

    def test_garbage_op_rejected(self):
        with pytest.raises(LitmusParseError):
            parse_litmus("T\nP0 ;\nwibble ;\n")


class TestSemantics:
    def test_mp_exists_per_model(self):
        test = parse_litmus(MP_TEXT)
        assert not test.exists_allowed("x86")
        assert test.exists_allowed("arm")
        assert test.exists_allowed("limm")

    def test_fenced_mp_forbidden_everywhere(self):
        test = parse_litmus(MP_FENCED_TEXT)
        assert not test.exists_allowed("limm")
        # the Arm spelling with DMB flavours
        arm_text = MP_FENCED_TEXT.replace("fence ww", "fence st").replace(
            "fence rm", "fence ld"
        )
        assert not parse_litmus(arm_text).exists_allowed("arm")

    def test_memory_exists_clause(self):
        test = parse_litmus(
            "T\nP0 | P1 ;\nX = 1 | X = 2 ;\nexists (X=2)\n"
        )
        assert test.exists_allowed("x86")

    def test_matches_programmatic_battery(self):
        """The parsed SB equals the hand-built SB's outcome sets."""
        from repro.memmodel import SB

        parsed = parse_litmus(
            "SB\nP0 | P1 ;\nX = 1 | Y = 1 ;\na = Y | b = X ;\n"
        )
        for model in ("x86", "arm", "limm"):
            got = outcomes(parsed.program, model)
            want = outcomes(SB, model)
            assert got == want, model
