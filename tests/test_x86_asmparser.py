"""Tests for the x86 assembly text parser."""

import pytest

from repro.lifter import lift_program
from repro.lir import Interpreter
from repro.x86 import X86Emulator
from repro.x86.asmparser import AsmParseError, assemble_text, parse_asm


class TestBasicParsing:
    def test_simple_function(self):
        obj = assemble_text("""
        main:
            mov rax, 40
            add rax, 2
            ret
        """)
        assert X86Emulator(obj).run() == 42

    def test_comments_and_blank_lines(self):
        obj = assemble_text("""
        ; leading comment
        main:
            mov rax, 7   ; trailing comment

            ret
        """)
        assert X86Emulator(obj).run() == 7

    def test_local_labels_and_loops(self):
        obj = assemble_text("""
        main:
            mov rax, 0
            mov rcx, 5
        .loop:
            add rax, rcx
            sub rcx, 1
            cmp rcx, 0
            jne .loop
            ret
        """)
        assert X86Emulator(obj).run() == 15

    def test_negative_and_hex_immediates(self):
        obj = assemble_text("""
        main:
            mov rax, -5
            add rax, 0x2F
            ret
        """)
        assert X86Emulator(obj).run() == 42

    def test_movabs_symbol(self):
        obj = assemble_text("""
        .global g, 8, 2a00000000000000
        main:
            movabs rcx, g
            mov rax, qword [rcx]
            ret
        """)
        assert X86Emulator(obj).run() == 0x2A

    def test_cross_function_calls(self):
        obj = assemble_text("""
        twice:
            mov rax, rdi
            add rax, rdi
            ret
        main:
            mov rdi, 21
            call twice
            ret
        """)
        assert X86Emulator(obj).run() == 42


class TestMemoryOperands:
    def test_base_index_scale_disp(self):
        obj = assemble_text("""
        .global tbl, 64
        main:
            movabs rcx, tbl
            mov rdx, 3
            mov rax, 99
            mov qword [rcx + rdx*8 + 8], rax
            mov rax, qword [rcx + 32]
            ret
        """)
        assert X86Emulator(obj).run() == 99

    def test_negative_displacement(self):
        obj = assemble_text("""
        .global tbl, 32
        main:
            movabs rcx, tbl
            mov rax, 7
            mov qword [rcx + 8], rax
            mov rax, qword [rcx + 16 - 8]
            ret
        """)
        assert X86Emulator(obj).run() == 7

    def test_byte_width(self):
        obj = assemble_text("""
        .global buf, 4, 61626364
        main:
            movabs rcx, buf
            movzx rax, byte [rcx + 2]
            ret
        """)
        assert X86Emulator(obj).run() == ord("c")


class TestConcurrencySyntax:
    def test_lock_prefix_and_externs(self):
        obj = assemble_text("""
        .global ctr, 8
        .extern spawn
        .extern join
        worker:
            movabs rdx, ctr
            mov rcx, 1
            lock xadd qword [rdx], rcx
            xor rax, rax
            ret
        main:
            movabs rdi, worker
            xor rsi, rsi
            call spawn
            mov rdi, rax
            call join
            movabs rdx, ctr
            mov rax, qword [rdx]
            ret
        """)
        assert X86Emulator(obj).run() == 1

    def test_mfence(self):
        obj = assemble_text("""
        main:
            mfence
            xor rax, rax
            ret
        """)
        assert X86Emulator(obj).run() == 0


class TestPipelineFromText:
    def test_parsed_assembly_lifts(self):
        obj = assemble_text("""
        .global g, 8
        main:
            movabs rcx, g
            mov rax, 21
            mov qword [rcx], rax
            mov rax, qword [rcx]
            add rax, rax
            ret
        """)
        expected = X86Emulator(obj).run()
        module = lift_program(obj)
        assert Interpreter(module).run("main") == expected == 42


class TestErrors:
    def test_instruction_outside_function(self):
        with pytest.raises(AsmParseError):
            parse_asm("mov rax, 1")

    def test_bad_operand(self):
        with pytest.raises(AsmParseError):
            parse_asm("main:\n  mov rax, @@nope@@")

    def test_local_label_outside_function(self):
        with pytest.raises(AsmParseError):
            parse_asm(".here:")

    def test_two_indices_rejected(self):
        with pytest.raises(AsmParseError):
            parse_asm("main:\n  mov rax, [rcx*2 + rdx*4]")
