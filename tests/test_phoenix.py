"""Tests of the Phoenix kernels (Table 1) and the evaluation harness."""

import pytest

from repro.phoenix import (
    PROGRAM_NAMES,
    SIZE_TINY,
    all_programs,
    evaluate_program,
    geomean,
    scale,
)


class TestPrograms:
    def test_all_five_kernels_exist(self):
        from repro.phoenix.programs import PAPER_PROGRAM_NAMES

        assert PAPER_PROGRAM_NAMES == [
            "histogram", "kmeans", "linear_regression", "matrix_multiply",
            "string_match",
        ]
        assert set(PROGRAM_NAMES) == set(PAPER_PROGRAM_NAMES) | {"word_count"}

    def test_scaling_substitutes_parameters(self):
        p = scale("histogram", {"N": 512})
        assert "512" in p.source
        assert "{N}" not in p.source

    def test_function_counts_match_table1_scale(self):
        """Table 1 reports small function counts (2-7) per kernel."""
        for p in all_programs(SIZE_TINY):
            assert 2 <= p.function_count() <= 8, p.name

    def test_loc_counts_are_plausible(self):
        for p in all_programs(SIZE_TINY):
            assert 30 <= p.loc() <= 160, (p.name, p.loc())

    def test_kernels_parse_and_typecheck(self):
        from repro.minicc import analyze, parse

        for p in all_programs(SIZE_TINY):
            analyze(parse(p.source))


@pytest.mark.parametrize("name", PROGRAM_NAMES)
def test_kernel_differential_all_configs(name):
    """Every configuration of every kernel computes the same checksum as
    the x86 emulation of the original binary."""
    program = scale(name, SIZE_TINY[name])
    row = evaluate_program(program, verify=False, check_x86=True)
    assert set(row.metrics) == {"native", "lifted", "opt", "popt", "ppopt"}
    results = {m.result for m in row.metrics.values()}
    assert len(results) == 1


def test_geomean():
    assert geomean([1.0, 4.0]) == pytest.approx(2.0)
    assert geomean([]) == 0.0


class TestWordCountExtension:
    """word_count — the kernel the paper's mctoll could not lift (§9.1);
    our lifter handles it, included as an extension beyond the paper."""

    def test_differential_all_configs(self):
        program = scale("word_count", SIZE_TINY["word_count"])
        row = evaluate_program(program, verify=False, check_x86=True)
        results = {m.result for m in row.metrics.values()}
        assert len(results) == 1

    def test_extension_excluded_from_paper_suite(self):
        names = [p.name for p in all_programs(SIZE_TINY)]
        assert "word_count" not in names
        names_ext = [
            p.name for p in all_programs(SIZE_TINY, include_extensions=True)
        ]
        assert "word_count" in names_ext

    def test_word_counting_is_consistent(self):
        """The parallel word count equals a sequential scan of the text."""
        from repro.minicc import compile_to_x86
        from repro.x86 import X86Emulator

        program = scale("word_count", SIZE_TINY["word_count"])
        obj = compile_to_x86(program.source)
        emu = X86Emulator(obj)
        emu.run()
        total_words = int(emu.output[0])

        # Recompute sequentially from the text the program generated.
        addr = obj.data_symbols["text"].address
        size = obj.data_symbols["text"].size
        text = bytes(emu.memory[addr : addr + size])
        expected = len([w for w in text.split(b" ") if w])
        assert total_words == expected
