"""Cross-validation: the operational x86-TSO emulator against the axiomatic
x86 model.

Litmus programs from the memmodel DSL are assembled into real x86 machine
code (one function per thread, registers published to result globals) and
executed under many schedules (varying the scheduler quantum, which also
varies store-buffer drain points).  Every operationally observed outcome
must be axiomatically consistent — and the store buffers must actually
produce the SB weak outcome for some schedule.
"""


import pytest

from repro.memmodel import Fence, Ld, MP, Program, SB, SB_FENCED_X86, St, outcomes
from repro.x86 import (
    Assembler,
    AsmFunction,
    Imm,
    Instr,
    Label,
    Mem,
    Reg,
    X86Emulator,
)

RESULT_REGS = ["rbx", "r12", "r13", "r14"]  # callee-saved, survive to the end


def _assemble_litmus(program: Program):
    """One AsmFunction per thread; loads publish into `out_<tid>_<reg>`."""
    asm = Assembler()
    asm.declare_external("spawn")
    asm.declare_external("join")
    out_globals = []
    for loc in program.locations():
        asm.add_global(
            loc, 8, program.init.get(loc, 0).to_bytes(8, "little")
        )
    reg_slots = {}  # (tid, regname) -> global symbol
    for tid, thread in enumerate(program.threads, start=1):
        for op in thread:
            if isinstance(op, Ld):
                sym = f"out_t{tid}_{op.reg}"
                reg_slots[(tid, op.reg)] = sym
                asm.add_global(sym, 8, b"")

    for tid, thread in enumerate(program.threads, start=1):
        f = AsmFunction(f"thread{tid}")
        for op in thread:
            if isinstance(op, St):
                assert isinstance(op.value, int)
                f.emit(Instr("movabs", [Reg("rcx"), Label(op.loc)]))
                f.emit(Instr("mov", [Reg("rax"), Imm(op.value)]))
                f.emit(Instr("mov", [Mem(base="rcx", width=64), Reg("rax")]))
            elif isinstance(op, Ld):
                f.emit(Instr("movabs", [Reg("rcx"), Label(op.loc)]))
                f.emit(Instr("mov", [Reg("rax"), Mem(base="rcx", width=64)]))
                f.emit(Instr("movabs", [Reg("rcx"),
                                        Label(reg_slots[(tid, op.reg)])]))
                f.emit(Instr("mov", [Mem(base="rcx", width=64), Reg("rax")]))
            elif isinstance(op, Fence):
                assert op.kind == "mfence"
                f.emit(Instr("mfence"))
            else:
                raise TypeError(op)
        f.emit(Instr("xor", [Reg("rax"), Reg("rax")]))
        f.emit(Instr("ret"))
        asm.add_function(f)

    main = AsmFunction("main")
    for i, tid in enumerate(range(1, len(program.threads) + 1)):
        main.emit(Instr("movabs", [Reg("rdi"), Label(f"thread{tid}")]))
        main.emit(Instr("xor", [Reg("rsi"), Reg("rsi")]))
        main.emit(Instr("call", [Label("spawn")]))
        main.emit(Instr("mov", [Reg(RESULT_REGS[i]), Reg("rax")]))
    for i in range(len(program.threads)):
        main.emit(Instr("mov", [Reg("rdi"), Reg(RESULT_REGS[i])]))
        main.emit(Instr("call", [Label("join")]))
    main.emit(Instr("xor", [Reg("rax"), Reg("rax")]))
    main.emit(Instr("ret"))
    asm.add_function(main)
    return asm.link("main"), reg_slots


def _observe(program: Program, quanta=(1, 2, 3, 4, 5, 7, 16, 64)):
    """Run under several schedules (with lazily-drained store buffers, so
    genuinely weak TSO behaviour can surface); return the set of observed
    outcomes in the axiomatic outcome format."""
    obj, reg_slots = _assemble_litmus(program)
    observed = set()
    for quantum in quanta:
        for lazy in (False, True):
            emu = X86Emulator(obj, quantum=quantum, lazy_flush=lazy)
            emu.run()
            observed.add(_outcome_of(emu, obj, program, reg_slots))
    return observed


def _outcome_of(emu, obj, program, reg_slots):
    items = []
    for loc in program.locations():
        addr = obj.data_symbols[loc].address
        items.append(
            (loc, int.from_bytes(emu.memory[addr : addr + 8], "little"))
        )
    for (tid, reg), sym in reg_slots.items():
        addr = obj.data_symbols[sym].address
        items.append(
            (f"t{tid}:{reg}",
             int.from_bytes(emu.memory[addr : addr + 8], "little"))
        )
    return frozenset(items)




class TestOperationalSoundness:
    @pytest.mark.parametrize(
        "program", [SB, MP, SB_FENCED_X86], ids=lambda p: p.name
    )
    def test_observed_outcomes_are_axiomatically_consistent(self, program):
        allowed = outcomes(program, "x86")
        observed = _observe(program)
        assert observed <= allowed, observed - allowed

    def test_store_buffers_expose_sb_weak_outcome(self):
        """For some schedule the emulator exhibits a=b=0 — genuine TSO."""
        observed = _observe(SB)
        weak = {("t1:a", 0), ("t2:b", 0)}
        assert any(weak <= set(o) for o in observed), observed

    def test_mfence_suppresses_weak_outcome_operationally(self):
        observed = _observe(SB_FENCED_X86)
        weak = {("t1:a", 0), ("t2:b", 0)}
        assert not any(weak <= set(o) for o in observed)

    def test_mp_never_shows_x86_forbidden_outcome(self):
        observed = _observe(MP)
        bad = {("t2:a", 1), ("t2:b", 0)}
        assert not any(bad <= set(o) for o in observed)


class TestArmEmulatorSoundness:
    def test_translated_sb_on_arm_is_axiomatically_sound(self):
        """Run the mapped SB program through the real pipeline onto the Arm
        emulator; its outcome must be allowed by the axiomatic Arm model of
        the mapped program."""
        from repro.core import Lasagne

        source = """
        int X = 0;
        int Y = 0;
        int out_a = 0;
        int out_b = 0;
        int t1(int unused) { X = 1; out_a = Y; return 0; }
        int t2(int unused) { Y = 1; out_b = X; return 0; }
        int main() {
          int a = spawn(t1, 0);
          int b = spawn(t2, 0);
          join(a); join(b);
          return out_a * 2 + out_b;
        }
        """
        lasagne = Lasagne(verify=False)
        built = lasagne.build(source, "ppopt")
        run = Lasagne.run(built)
        a, b = run.result >> 1, run.result & 1
        allowed = outcomes(SB, "x86")
        from repro.memmodel import has_outcome

        assert has_outcome(allowed, t1_a=a, t2_b=b)
