"""Tests for the command-line interface (``python -m repro``)."""

from unittest import mock

import pytest

from repro.cli import _first_output_mismatch, main

DEMO = """
int g = 0;
int worker(int t) { atomic_add(&g, t + 1); return 0; }
int main() {
  int a = spawn(worker, 1);
  int b = spawn(worker, 2);
  join(a); join(b);
  return g;
}
"""


@pytest.fixture()
def demo_file(tmp_path):
    path = tmp_path / "demo.c"
    path.write_text(DEMO)
    return str(path)


class TestTranslateCommand:
    def test_translate_runs_and_matches(self, demo_file, capsys):
        rc = main(["translate", demo_file, "--run"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "x86 result: 5" in out
        assert "arm result: 5" in out

    def test_translate_dump_arm(self, demo_file, capsys):
        rc = main(["translate", demo_file, "--dump-arm", "--no-verify"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "worker:" in out and "main:" in out
        assert "dmb ish" in out  # atomic_add's barriers

    def test_translate_dump_ir(self, demo_file, capsys):
        rc = main(["translate", demo_file, "--dump-ir", "--config", "opt"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "define" in out and "atomicrmw" in out

    def test_all_configs_accepted(self, demo_file):
        for config in ("native", "lifted", "opt", "popt", "ppopt"):
            assert main(["translate", demo_file, "--config", config]) == 0


PRINTING = """
int main() {
  print_i(1); print_i(2); print_i(3);
  return 0;
}
"""


class TestRunOutputComparison:
    def test_first_output_mismatch(self):
        assert _first_output_mismatch(["1", "2"], ["1", "2"]) is None
        assert _first_output_mismatch(["1", "2"], ["1", "9"]) == 1
        assert _first_output_mismatch(["1", "2"], ["1"]) == 1
        assert _first_output_mismatch([], ["1"]) == 0

    def test_matching_outputs_pass(self, tmp_path):
        path = tmp_path / "p.c"
        path.write_text(PRINTING)
        assert main(["translate", str(path), "--run"]) == 0

    def test_output_stream_mismatch_reported(self, tmp_path, capsys):
        """Same return value but different output must fail with the index."""
        path = tmp_path / "p.c"
        path.write_text(PRINTING)
        from repro.core import Lasagne, RunResult

        fake = RunResult(result=0, output=["1", "99", "3"], cycles=1,
                         instructions_retired=1)
        with mock.patch.object(Lasagne, "run", staticmethod(lambda *a: fake)):
            rc = main(["translate", str(path), "--run"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "output streams at index 1" in err


class TestLiftCommand:
    def test_lift_shows_slots(self, demo_file, capsys):
        rc = main(["lift", demo_file])
        assert rc == 0
        out = capsys.readouterr().out
        assert "rax_slot" in out and "stacktop" in out

    def test_lift_refined_and_fenced(self, demo_file, capsys):
        rc = main(["lift", demo_file, "--refine", "--fences"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fence" in out

    def test_lift_optimized(self, demo_file, capsys):
        rc = main(["lift", demo_file, "--optimize"])
        assert rc == 0


class TestLitmusCommand:
    def test_known_test(self, capsys):
        rc = main(["litmus", "MP", "--model", "x86"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "MP under x86" in out
        assert "t2:a=1, t2:b=0" not in out  # forbidden on x86

    def test_mapped_program(self, capsys):
        rc = main(["litmus", "MP", "--map", "x86-to-arm", "--model", "arm"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "t2:a=1, t2:b=0" not in out  # mapping preserves x86 semantics

    def test_unknown_test_lists_available(self, capsys):
        rc = main(["litmus", "NOPE"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "available" in err and "SB" in err


class TestLitmusFileCommand:
    def test_litmus_file(self, tmp_path, capsys):
        path = tmp_path / "mp.litmus"
        path.write_text(
            "MP\n{ X=0; Y=0 }\n"
            "P0    | P1    ;\n"
            "X = 1 | a = Y ;\n"
            "Y = 1 | b = X ;\n"
            "exists (P1:a=1 /\\ P1:b=0)\n"
        )
        rc = main(["litmus", "--file", str(path), "--model", "x86"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "forbidden under x86" in out
        rc = main(["litmus", "--file", str(path), "--model", "arm"])
        out = capsys.readouterr().out
        assert "ALLOWED under arm" in out


FENCED = """
int g = 0;
int h = 0;
int worker(int t) { atomic_add(&g, t + 1); return 0; }
int main() {
  int a = spawn(worker, 1);
  int b = spawn(worker, 2);
  join(a); join(b);
  h = g;
  g = h + 1;
  return g;
}
"""


@pytest.fixture()
def fenced_file(tmp_path):
    """A program with both placeable and mergeable fences (adjacent runs)."""
    path = tmp_path / "fenced.c"
    path.write_text(FENCED)
    return str(path)


class TestTelemetryFlags:
    def test_trace_writes_chrome_trace_json(self, fenced_file, tmp_path,
                                            capsys):
        import json

        trace = tmp_path / "trace.json"
        rc = main(["translate", fenced_file, "--trace", str(trace)])
        assert rc == 0
        assert f"trace written to {trace}" in capsys.readouterr().err
        doc = json.loads(trace.read_text())
        assert set(doc) >= {"traceEvents", "displayTimeUnit"}
        # v6 traces are self-describing: spans plus ph:"M" process/
        # thread names and ph:"C" metric counters.
        assert {e["ph"] for e in doc["traceEvents"]} >= {"X", "M", "C"}
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in events}
        # One span per pipeline stage and one per executed opt pass.
        assert {"pipeline", "lift", "refine", "place",
                "opt", "merge", "codegen"} <= names
        assert {e["name"] for e in events if e["cat"] == "pass"} >= \
            {"mem2reg", "gvn", "dce"}

    def test_remarks_flag_prints_fence_decisions(self, fenced_file, capsys):
        rc = main(["translate", fenced_file, "--remarks"])
        assert rc == 0
        err = capsys.readouterr().err
        assert "[place-fences:fence-inserted]" in err
        assert "[merge-fences:fence-merged]" in err
        # Remarks carry function:block:instruction locations.
        assert "remark: main:" in err

    def test_remarks_filter_by_origin(self, fenced_file, capsys):
        rc = main(["translate", fenced_file, "--remarks=merge"])
        assert rc == 0
        err = capsys.readouterr().err
        assert "[merge-fences:fence-merged]" in err
        assert "place-fences" not in err

    def test_no_flags_no_telemetry_output(self, fenced_file, capsys):
        rc = main(["translate", fenced_file])
        assert rc == 0
        captured = capsys.readouterr()
        assert "trace" not in captured.out
        assert "remark" not in captured.err


class TestStatsCommand:
    def test_stats_sections(self, fenced_file, capsys):
        rc = main(["stats", fenced_file, "--run"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "== stage breakdown (ppopt) ==" in out
        for stage in ("lift", "refine", "place", "opt", "merge", "codegen"):
            assert stage in out
        assert "== optimization passes" in out
        assert "mem2reg" in out
        assert "per-iteration reduction: iter0=" in out
        assert "== metrics ==" in out
        assert "fences.inserted{kind=rm}" in out
        assert "emu.arm.instret" in out  # --run adds emulator metrics
        assert "== remarks (origin:kind -> count) ==" in out
        assert "place-fences:fence-inserted" in out


class TestAnalyzeCommand:
    def test_analyze_clean_ppopt(self, demo_file, capsys):
        rc = main(["analyze", demo_file])
        assert rc == 0
        out = capsys.readouterr().out
        # With no mode flag, all three reports print.
        assert "== escape analysis (ppopt) ==" in out
        assert "== access classification (ppopt) ==" in out
        assert "== fencecheck (ppopt) ==" in out
        assert "fencecheck: 0 violation(s)" in out

    def test_analyze_escape_only(self, demo_file, capsys):
        rc = main(["analyze", demo_file, "--escape"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "stack object(s)" in out
        assert "fencecheck" not in out

    def test_analyze_aliases(self, demo_file, capsys):
        rc = main(["analyze", demo_file, "--aliases", "--config", "lifted"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "== access classification (lifted) ==" in out
        # Lifted code addresses its emulated stack; some accesses must
        # classify as thread-local stack traffic.
        assert "thread-local" in out

    def test_analyze_fencecheck_all_configs(self, demo_file, capsys):
        for config in ("lifted", "opt", "popt", "ppopt"):
            rc = main(["analyze", demo_file, "--fencecheck",
                       "--config", config])
            assert rc == 0, config
            assert "fencecheck: 0 violation(s)" in capsys.readouterr().out

    def test_analyze_missing_file(self, capsys):
        rc = main(["analyze", "/nonexistent/nope.c"])
        assert rc == 2

    def test_analyze_flags_violations(self, demo_file, capsys):
        """A stripped module (fences removed post-placement) must fail."""
        from repro.analysis import check_module
        from repro.core import Lasagne
        from repro.lir import Fence
        from repro.minicc.codegen_x86 import compile_to_x86

        built = Lasagne().translate(compile_to_x86(DEMO), "ppopt")
        for func in built.module.functions.values():
            for bb in func.blocks:
                for inst in list(bb.instructions):
                    if isinstance(inst, Fence):
                        inst.erase_from_parent()
        assert len(check_module(built.module)) > 0


class TestDelaySetCli:
    def test_litmus_delay_gate_whole_corpus(self, capsys):
        rc = main(["litmus", "--delay-sets"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "delay-set gate:" in out
        assert "all elisions sound" in out
        assert "UNSOUND" not in out

    def test_litmus_delay_gate_single_test_verbose(self, capsys):
        rc = main(["litmus", "MP", "--delay-sets", "--verbose"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "required" in out and "elided" in out
        # Verbose mode prints one verdict per Fig. 8a fence.
        assert "Fww" in out and "Frm" in out

    def test_analyze_delay_sets_report(self, demo_file, capsys):
        rc = main(["analyze", demo_file, "--delay-sets"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "== delay-set analysis (ppopt) ==" in out
        assert "delay-sets:" in out

    def test_analyze_delay_sets_rejects_native(self, demo_file, capsys):
        rc = main(["analyze", demo_file, "--delay-sets", "--config",
                   "native"])
        assert rc == 2
        assert "translated config" in capsys.readouterr().err

    def test_translate_delay_sets_verified(self, demo_file, capsys):
        """--fence-analysis=delay-sets still passes end-to-end verification
        and reports its elision tally."""
        rc = main(["translate", demo_file, "--run",
                   "--fence-analysis", "delay-sets"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "x86 result: 5" in captured.out
        assert "arm result: 5" in captured.out
        assert "delay-sets:" in captured.err


class TestBenchCommand:
    def test_bench_writes_baseline(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "BENCH_translate.json"
        rc = main(["bench", "--size", "tiny", "--repeats", "1",
                   "--out", str(out_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert f"baseline written to {out_path}" in out
        report = json.loads(out_path.read_text())
        assert report["version"] == 9
        assert set(report["summary"]) == \
            {"native", "lifted", "opt", "popt", "ppopt", "loader"}
        lifted = report["summary"]["lifted"]
        assert lifted["fences_elided_total"] > 0
        assert "fences_elided_beyond_walk_total" in lifted
        assert lifted["fences_elided_interproc_total"] >= 0
        assert lifted["fences_elided_delayset_total"] >= 0
        # v7: lockset (sync) elision tier + racecheck counts.
        assert lifted["fences_elided_sync_total"] >= 0
        assert lifted["racecheck_racy_total"] >= 0
        assert lifted["racecheck_lock_protected_total"] >= 0
        assert lifted["fencecheck_violations_total"] == 0
        assert lifted["provenance_fence_pct_min"] == 100.0
        # v6: deterministic work counters + memory per config and loader.
        assert lifted["work"]["place.accesses"] > 0
        assert lifted["work_digest"]
        assert lifted["peak_rss_bytes"] > 0
        assert report["summary"]["loader"]["work"]["triage.instructions"] > 0
        assert report["profile_top"]["samples"] >= 0
        # v8: every row carries the stage x counter x function matrix.
        prog_row = next(iter(report["programs"].values()))["lifted"]
        assert prog_row["work_cells"]
        assert all(len(cell) == 4 for cell in prog_row["work_cells"])
        # v9: tv verdict counts per row — vacuous for lifted (no passes
        # run), live for every optimizing config.
        assert prog_row["tv_proved"] == prog_row["tv_refuted"] == 0
        ppopt_row = next(iter(report["programs"].values()))["ppopt"]
        assert ppopt_row["tv_proved"] > 0
        assert ppopt_row["tv_refuted"] == 0
        assert report["summary"]["ppopt"]["tv_refuted_total"] == 0
        assert len(report["trajectory"]) == 1
        entry = report["trajectory"][0]
        assert "dirty" in entry
        assert entry["version"] == 9


def test_evaluate_command_smoke(capsys):
    """The evaluate command prints the Figure-12-style table (tiny size)."""
    rc = main(["evaluate", "--size", "tiny"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "GMean" in out
    for config in ("native", "lifted", "opt", "popt", "ppopt"):
        assert config in out
