"""Tests for the command-line interface (``python -m repro``)."""

from unittest import mock

import pytest

from repro.cli import _first_output_mismatch, main

DEMO = """
int g = 0;
int worker(int t) { atomic_add(&g, t + 1); return 0; }
int main() {
  int a = spawn(worker, 1);
  int b = spawn(worker, 2);
  join(a); join(b);
  return g;
}
"""


@pytest.fixture()
def demo_file(tmp_path):
    path = tmp_path / "demo.c"
    path.write_text(DEMO)
    return str(path)


class TestTranslateCommand:
    def test_translate_runs_and_matches(self, demo_file, capsys):
        rc = main(["translate", demo_file, "--run"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "x86 result: 5" in out
        assert "arm result: 5" in out

    def test_translate_dump_arm(self, demo_file, capsys):
        rc = main(["translate", demo_file, "--dump-arm", "--no-verify"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "worker:" in out and "main:" in out
        assert "dmb ish" in out  # atomic_add's barriers

    def test_translate_dump_ir(self, demo_file, capsys):
        rc = main(["translate", demo_file, "--dump-ir", "--config", "opt"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "define" in out and "atomicrmw" in out

    def test_all_configs_accepted(self, demo_file):
        for config in ("native", "lifted", "opt", "popt", "ppopt"):
            assert main(["translate", demo_file, "--config", config]) == 0


PRINTING = """
int main() {
  print_i(1); print_i(2); print_i(3);
  return 0;
}
"""


class TestRunOutputComparison:
    def test_first_output_mismatch(self):
        assert _first_output_mismatch(["1", "2"], ["1", "2"]) is None
        assert _first_output_mismatch(["1", "2"], ["1", "9"]) == 1
        assert _first_output_mismatch(["1", "2"], ["1"]) == 1
        assert _first_output_mismatch([], ["1"]) == 0

    def test_matching_outputs_pass(self, tmp_path):
        path = tmp_path / "p.c"
        path.write_text(PRINTING)
        assert main(["translate", str(path), "--run"]) == 0

    def test_output_stream_mismatch_reported(self, tmp_path, capsys):
        """Same return value but different output must fail with the index."""
        path = tmp_path / "p.c"
        path.write_text(PRINTING)
        from repro.core import Lasagne, RunResult

        fake = RunResult(result=0, output=["1", "99", "3"], cycles=1,
                         instructions_retired=1)
        with mock.patch.object(Lasagne, "run", staticmethod(lambda *a: fake)):
            rc = main(["translate", str(path), "--run"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "output streams at index 1" in err


class TestLiftCommand:
    def test_lift_shows_slots(self, demo_file, capsys):
        rc = main(["lift", demo_file])
        assert rc == 0
        out = capsys.readouterr().out
        assert "rax_slot" in out and "stacktop" in out

    def test_lift_refined_and_fenced(self, demo_file, capsys):
        rc = main(["lift", demo_file, "--refine", "--fences"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fence" in out

    def test_lift_optimized(self, demo_file, capsys):
        rc = main(["lift", demo_file, "--optimize"])
        assert rc == 0


class TestLitmusCommand:
    def test_known_test(self, capsys):
        rc = main(["litmus", "MP", "--model", "x86"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "MP under x86" in out
        assert "t2:a=1, t2:b=0" not in out  # forbidden on x86

    def test_mapped_program(self, capsys):
        rc = main(["litmus", "MP", "--map", "x86-to-arm", "--model", "arm"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "t2:a=1, t2:b=0" not in out  # mapping preserves x86 semantics

    def test_unknown_test_lists_available(self, capsys):
        rc = main(["litmus", "NOPE"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "available" in err and "SB" in err


class TestLitmusFileCommand:
    def test_litmus_file(self, tmp_path, capsys):
        path = tmp_path / "mp.litmus"
        path.write_text(
            "MP\n{ X=0; Y=0 }\n"
            "P0    | P1    ;\n"
            "X = 1 | a = Y ;\n"
            "Y = 1 | b = X ;\n"
            "exists (P1:a=1 /\\ P1:b=0)\n"
        )
        rc = main(["litmus", "--file", str(path), "--model", "x86"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "forbidden under x86" in out
        rc = main(["litmus", "--file", str(path), "--model", "arm"])
        out = capsys.readouterr().out
        assert "ALLOWED under arm" in out


def test_evaluate_command_smoke(capsys):
    """The evaluate command prints the Figure-12-style table (tiny size)."""
    rc = main(["evaluate", "--size", "tiny"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "GMean" in out
    for config in ("native", "lifted", "opt", "popt", "ppopt"):
        assert config in out
