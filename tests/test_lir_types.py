"""Tests for the LIR type system."""

import pytest

from repro.lir import (
    F32,
    F64,
    I1,
    I8,
    I16,
    I32,
    I64,
    VOID,
    ArrayType,
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    VectorType,
    ptr,
)


class TestIntTypes:
    def test_sizes(self):
        assert I8.size_bytes() == 1
        assert I16.size_bytes() == 2
        assert I32.size_bytes() == 4
        assert I64.size_bytes() == 8

    def test_i1_occupies_one_byte(self):
        assert I1.size_bytes() == 1

    def test_odd_width_rounds_up_to_bytes(self):
        assert IntType(12).size_bytes() == 2
        assert IntType(33).size_bytes() == 5

    def test_mask(self):
        assert I8.mask() == 0xFF
        assert I1.mask() == 1
        assert I64.mask() == 2**64 - 1

    def test_structural_equality(self):
        assert IntType(64) == I64
        assert IntType(32) != I64

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            IntType(0)
        with pytest.raises(ValueError):
            IntType(-3)

    def test_str(self):
        assert str(I64) == "i64"
        assert str(I1) == "i1"


class TestFloatTypes:
    def test_sizes(self):
        assert F32.size_bytes() == 4
        assert F64.size_bytes() == 8

    def test_only_32_and_64(self):
        with pytest.raises(ValueError):
            FloatType(16)

    def test_str(self):
        assert str(F32) == "float"
        assert str(F64) == "double"


class TestAggregateTypes:
    def test_pointer_size(self):
        assert ptr(I8).size_bytes() == 8
        assert ptr(ptr(F64)).size_bytes() == 8

    def test_pointer_structural_equality(self):
        assert ptr(I64) == PointerType(I64)
        assert ptr(I64) != ptr(I32)

    def test_array(self):
        a = ArrayType(I64, 10)
        assert a.size_bytes() == 80
        assert str(a) == "[10 x i64]"

    def test_array_of_arrays(self):
        a = ArrayType(ArrayType(I8, 4), 4)
        assert a.size_bytes() == 16

    def test_negative_array_count_rejected(self):
        with pytest.raises(ValueError):
            ArrayType(I8, -1)

    def test_vector(self):
        v = VectorType(F64, 2)
        assert v.size_bytes() == 16
        assert v.bit_width() == 128
        assert str(v) == "<2 x double>"

    def test_function_type(self):
        ft = FunctionType(I64, (I64, F64))
        assert ft.ret == I64
        assert len(ft.params) == 2
        assert "i64 (i64, double)" == str(ft)

    def test_variadic_function_type_str(self):
        ft = FunctionType(VOID, (I64,), variadic=True)
        assert "..." in str(ft)


class TestPredicates:
    def test_kind_predicates(self):
        assert I64.is_int and not I64.is_float
        assert F64.is_float and not F64.is_int
        assert ptr(I8).is_pointer
        assert VOID.is_void
        assert ArrayType(I8, 2).is_array
        assert VectorType(I32, 4).is_vector

    def test_void_has_no_size(self):
        with pytest.raises(NotImplementedError):
            VOID.size_bytes()
