"""Tests for the assembler/linker and the x86-TSO emulator."""

import pytest

from repro.x86 import (
    Assembler,
    AsmError,
    AsmFunction,
    Imm,
    Instr,
    Label,
    Mem,
    Reg,
    X86Emulator,
)
from repro.x86.emulator import EmuError


def assemble(funcs, globals_=(), externals=(), entry="main"):
    a = Assembler()
    for name in externals:
        a.declare_external(name)
    for name, size, init in globals_:
        a.add_global(name, size, init)
    for f in funcs:
        a.add_function(f)
    return a.link(entry)


def fn(name, *instrs):
    f = AsmFunction(name)
    for item in instrs:
        if isinstance(item, str):
            f.label(item)
        else:
            f.emit(item)
    return f


class TestAssembler:
    def test_local_labels_resolve(self):
        f = fn(
            "main",
            Instr("mov", [Reg("rax"), Imm(0)]),
            Instr("jmp", [Label(".skip")]),
            Instr("mov", [Reg("rax"), Imm(99)]),
            ".skip",
            Instr("ret"),
        )
        obj = assemble([f])
        assert X86Emulator(obj).run() == 0

    def test_undefined_symbol_raises(self):
        f = fn("main", Instr("jmp", [Label(".nowhere")]), Instr("ret"))
        with pytest.raises(AsmError):
            assemble([f])

    def test_cross_function_call(self):
        callee = fn(
            "five", Instr("mov", [Reg("rax"), Imm(5)]), Instr("ret")
        )
        caller = fn("main", Instr("call", [Label("five")]), Instr("ret"))
        obj = assemble([callee, caller])
        assert X86Emulator(obj).run() == 5

    def test_global_symbol_address(self):
        f = fn(
            "main",
            Instr("movabs", [Reg("rcx"), Label("g")]),
            Instr("mov", [Reg("rax"), Imm(7)]),
            Instr("mov", [Mem(base="rcx", width=64), Reg("rax")]),
            Instr("mov", [Reg("rax"), Mem(base="rcx", width=64)]),
            Instr("ret"),
        )
        obj = assemble([f], globals_=[("g", 8, b"")])
        assert "g" in obj.data_symbols
        assert X86Emulator(obj).run() == 7

    def test_global_initializer_loaded(self):
        f = fn(
            "main",
            Instr("movabs", [Reg("rcx"), Label("g")]),
            Instr("mov", [Reg("rax"), Mem(base="rcx", width=64)]),
            Instr("ret"),
        )
        obj = assemble(
            [f], globals_=[("g", 8, (1234).to_bytes(8, "little"))]
        )
        assert X86Emulator(obj).run() == 1234

    def test_function_symbols_have_sizes(self):
        f = fn("main", Instr("ret"))
        obj = assemble([f])
        assert obj.functions["main"].size == 1


class TestEmulatorSemantics:
    def test_flags_and_conditional_jump(self):
        f = fn(
            "main",
            Instr("mov", [Reg("rax"), Imm(3)]),
            Instr("cmp", [Reg("rax"), Imm(5)]),
            Instr("jl", [Label(".less")]),
            Instr("mov", [Reg("rax"), Imm(0)]),
            Instr("ret"),
            ".less",
            Instr("mov", [Reg("rax"), Imm(1)]),
            Instr("ret"),
        )
        assert X86Emulator(assemble([f])).run() == 1

    def test_setcc_and_movzx(self):
        f = fn(
            "main",
            Instr("mov", [Reg("rax"), Imm(7)]),
            Instr("cmp", [Reg("rax"), Imm(7)]),
            Instr("sete", [Reg("al")]),
            Instr("movzx", [Reg("rax"), Reg("al")]),
            Instr("ret"),
        )
        assert X86Emulator(assemble([f])).run() == 1

    def test_32bit_write_zeroes_upper(self):
        f = fn(
            "main",
            Instr("movabs", [Reg("rax"), Imm(0xFFFFFFFFFFFFFFFF, 64)]),
            Instr("mov", [Reg("eax"), Reg("eax")]),
            Instr("shr", [Reg("rax"), Imm(32, 8)]),
            Instr("ret"),
        )
        assert X86Emulator(assemble([f])).run() == 0

    def test_idiv(self):
        f = fn(
            "main",
            Instr("mov", [Reg("rax"), Imm(-7)]),
            Instr("mov", [Reg("rcx"), Imm(2)]),
            Instr("cqo"),
            Instr("idiv", [Reg("rcx")]),
            Instr("ret"),
        )
        assert X86Emulator(assemble([f])).run() == -3

    def test_idiv_remainder_in_rdx(self):
        f = fn(
            "main",
            Instr("mov", [Reg("rax"), Imm(7)]),
            Instr("mov", [Reg("rcx"), Imm(3)]),
            Instr("cqo"),
            Instr("idiv", [Reg("rcx")]),
            Instr("mov", [Reg("rax"), Reg("rdx")]),
            Instr("ret"),
        )
        assert X86Emulator(assemble([f])).run() == 1

    def test_division_by_zero_raises(self):
        f = fn(
            "main",
            Instr("mov", [Reg("rax"), Imm(7)]),
            Instr("xor", [Reg("rcx"), Reg("rcx")]),
            Instr("cqo"),
            Instr("idiv", [Reg("rcx")]),
            Instr("ret"),
        )
        with pytest.raises(EmuError):
            X86Emulator(assemble([f])).run()

    def test_sse_double_arithmetic(self):
        import struct

        bits = int.from_bytes(struct.pack("<d", 1.5), "little")
        f = fn(
            "main",
            Instr("movabs", [Reg("rax"), Imm(bits, 64)]),
            Instr("movq", [Reg("xmm0"), Reg("rax")]),
            Instr("addsd", [Reg("xmm0"), Reg("xmm0")]),
            Instr("cvttsd2si", [Reg("rax"), Reg("xmm0")]),
            Instr("ret"),
        )
        assert X86Emulator(assemble([f])).run() == 3

    def test_xadd_returns_old_value(self):
        f = fn(
            "main",
            Instr("movabs", [Reg("rdx"), Label("g")]),
            Instr("mov", [Reg("rax"), Imm(10)]),
            Instr("mov", [Mem(base="rdx", width=64), Reg("rax")]),
            Instr("mov", [Reg("rcx"), Imm(5)]),
            Instr("xadd", [Mem(base="rdx", width=64), Reg("rcx")], lock=True),
            Instr("mov", [Reg("rax"), Mem(base="rdx", width=64)]),
            Instr("add", [Reg("rax"), Reg("rcx")]),  # 15 + old(10)
            Instr("ret"),
        )
        obj = assemble([f], globals_=[("g", 8, b"")])
        assert X86Emulator(obj).run() == 25

    def test_cmpxchg_success_sets_zf(self):
        f = fn(
            "main",
            Instr("movabs", [Reg("rdx"), Label("g")]),
            Instr("xor", [Reg("rax"), Reg("rax")]),
            Instr("mov", [Reg("rcx"), Imm(9)]),
            Instr("cmpxchg", [Mem(base="rdx", width=64), Reg("rcx")], lock=True),
            Instr("jne", [Label(".fail")]),
            Instr("mov", [Reg("rax"), Mem(base="rdx", width=64)]),
            Instr("ret"),
            ".fail",
            Instr("mov", [Reg("rax"), Imm(-1)]),
            Instr("ret"),
        )
        obj = assemble([f], globals_=[("g", 8, b"")])
        assert X86Emulator(obj).run() == 9

    def test_runtime_print(self):
        f = fn(
            "main",
            Instr("mov", [Reg("rdi"), Imm(123)]),
            Instr("call", [Label("print_i64")]),
            Instr("xor", [Reg("rax"), Reg("rax")]),
            Instr("ret"),
        )
        obj = assemble([f], externals=["print_i64"])
        emu = X86Emulator(obj)
        emu.run()
        assert emu.output == ["123"]


class TestTSOStoreBuffer:
    def _counter_program(self):
        """Two spawned threads each lock-xadd the counter 50 times."""
        worker = fn(
            "worker",
            Instr("mov", [Reg("rcx"), Imm(50)]),
            ".loop",
            Instr("movabs", [Reg("rdx"), Label("ctr")]),
            Instr("mov", [Reg("rsi"), Imm(1)]),
            Instr("xadd", [Mem(base="rdx", width=64), Reg("rsi")], lock=True),
            Instr("sub", [Reg("rcx"), Imm(1)]),
            Instr("cmp", [Reg("rcx"), Imm(0)]),
            Instr("jne", [Label(".loop")]),
            Instr("xor", [Reg("rax"), Reg("rax")]),
            Instr("ret"),
        )
        main = fn(
            "main",
            Instr("movabs", [Reg("rdi"), Label("worker")]),
            Instr("xor", [Reg("rsi"), Reg("rsi")]),
            Instr("call", [Label("spawn")]),
            Instr("mov", [Reg("rbx"), Reg("rax")]),
            Instr("movabs", [Reg("rdi"), Label("worker")]),
            Instr("xor", [Reg("rsi"), Reg("rsi")]),
            Instr("call", [Label("spawn")]),
            Instr("mov", [Reg("rdi"), Reg("rax")]),
            Instr("call", [Label("join")]),
            Instr("mov", [Reg("rdi"), Reg("rbx")]),
            Instr("call", [Label("join")]),
            Instr("movabs", [Reg("rdx"), Label("ctr")]),
            Instr("mov", [Reg("rax"), Mem(base="rdx", width=64)]),
            Instr("ret"),
        )
        return assemble(
            [worker, main],
            globals_=[("ctr", 8, b"")],
            externals=["spawn", "join"],
        )

    def test_atomic_increments_are_exact(self):
        assert X86Emulator(self._counter_program()).run() == 100

    def test_store_buffer_forwarding(self):
        """A thread sees its own buffered store before it drains."""
        f = fn(
            "main",
            Instr("movabs", [Reg("rcx"), Label("g")]),
            Instr("mov", [Reg("rax"), Imm(77)]),
            Instr("mov", [Mem(base="rcx", width=64), Reg("rax")]),
            # load before any flush point: must forward from the buffer
            Instr("mov", [Reg("rax"), Mem(base="rcx", width=64)]),
            Instr("ret"),
        )
        obj = assemble([f], globals_=[("g", 8, b"")])
        emu = X86Emulator(obj, quantum=1000)
        assert emu.run() == 77

    def test_buffer_drains_on_mfence(self):
        f = fn(
            "main",
            Instr("movabs", [Reg("rcx"), Label("g")]),
            Instr("mov", [Reg("rax"), Imm(5)]),
            Instr("mov", [Mem(base="rcx", width=64), Reg("rax")]),
            Instr("mfence"),
            Instr("ret"),
        )
        obj = assemble([f], globals_=[("g", 8, b"")])
        emu = X86Emulator(obj, quantum=1000)

        # Stop right after the store: memory must not yet contain it.
        thread = emu._make_thread(obj.functions["main"].address)
        for _ in range(3):
            emu.step(thread)
        addr = obj.data_symbols["g"].address
        assert int.from_bytes(emu.memory[addr : addr + 8], "little") == 0
        assert thread.store_buffer  # value parked in the buffer
        emu.step(thread)  # mfence
        assert not thread.store_buffer
        assert int.from_bytes(emu.memory[addr : addr + 8], "little") == 5
