"""End-to-end tests of the Lasagne pipeline (all five §9.1 configurations)."""

import pytest

from repro.core import CONFIGS, Lasagne
from repro.minicc import compile_to_x86
from repro.x86 import X86Emulator

SHARED_COUNTER = """
int ctr = 0;
int done = 0;
int worker(int t) {
  for (int i = 0; i < 8; i = i + 1) { atomic_add(&ctr, t); }
  return 0;
}
int main() {
  int t1 = spawn(worker, 1);
  int t2 = spawn(worker, 2);
  join(t1); join(t2);
  fence();
  done = 1;
  return ctr * 10 + done;
}
"""

MIXED_MATH = """
int a[6];
double acc = 0.0;
int main() {
  for (int i = 0; i < 6; i = i + 1) { a[i] = i * i + 1; }
  for (int i = 0; i < 6; i = i + 1) { acc = acc + (double)a[i] / 2.0; }
  print_f(acc);
  return (int)acc;
}
"""


@pytest.fixture(scope="module")
def lasagne():
    return Lasagne(verify=True)


class TestConfigurations:
    @pytest.mark.parametrize("config", CONFIGS)
    def test_counter_program_all_configs_agree(self, lasagne, config):
        obj = compile_to_x86(SHARED_COUNTER)
        expected = X86Emulator(obj).run()
        built = lasagne.build(SHARED_COUNTER, config)
        run = Lasagne.run(built)
        assert run.result == expected

    @pytest.mark.parametrize("config", CONFIGS)
    def test_fp_program_all_configs_agree(self, lasagne, config):
        obj = compile_to_x86(MIXED_MATH)
        x86 = X86Emulator(obj)
        expected = x86.run()
        built = lasagne.build(MIXED_MATH, config)
        run = Lasagne.run(built)
        assert run.result == expected
        assert run.output == x86.output

    def test_cost_ordering(self, lasagne):
        """Native ≤ PPOpt ≤ POpt ≤ Opt ≤ Lifted (Fig. 12's ordering)."""
        cycles = {}
        for config in CONFIGS:
            built = lasagne.build(MIXED_MATH, config)
            cycles[config] = Lasagne.run(built).cycles
        assert cycles["native"] <= cycles["ppopt"]
        assert cycles["ppopt"] <= cycles["popt"]
        assert cycles["popt"] <= cycles["opt"]
        assert cycles["opt"] <= cycles["lifted"]

    def test_fence_counts_ordering(self, lasagne):
        """PPOpt places fewer fences than POpt places fewer than Lifted."""
        fences = {}
        for config in ("lifted", "popt", "ppopt"):
            built = lasagne.build(SHARED_COUNTER, config)
            fences[config] = built.fences
        assert fences["ppopt"] <= fences["popt"] <= fences["lifted"]
        assert fences["ppopt"] < fences["lifted"]

    def test_native_has_no_tso_fences(self, lasagne):
        built = lasagne.build(MIXED_MATH, "native")
        assert built.fences == 0  # no atomics/fence() in this program

    def test_explicit_fence_survives_all_configs(self, lasagne):
        src = "int g = 0; int main() { g = 1; fence(); return g; }"
        for config in CONFIGS:
            built = lasagne.build(src, config)
            from repro.arm import is_fence

            dmbs = [
                i.mnemonic
                for fn in built.program.functions.values()
                for i in fn.instructions()
                if is_fence(i)
            ]
            assert "dmb ish" in dmbs, config

    def test_pointer_cast_metrics_populated(self, lasagne):
        built = lasagne.build(MIXED_MATH, "ppopt")
        assert built.pointer_casts_before > 0
        assert built.pointer_casts_after < built.pointer_casts_before

    def test_invalid_config_rejected(self, lasagne):
        obj = compile_to_x86(MIXED_MATH)
        with pytest.raises(ValueError):
            lasagne.translate(obj, "o3")

    def test_pass_stats_collected(self, lasagne):
        built = lasagne.build(MIXED_MATH, "opt")
        assert built.pass_stats is not None
        reductions = built.pass_stats.reduction_by_pass()
        assert reductions.get("mem2reg", 0) > 0
