"""Tests for the dominator tree / dominance frontier machinery."""

from repro.lir import (
    ConstantInt,
    DominatorTree,
    Function,
    FunctionType,
    I64,
    IRBuilder,
    Module,
)


def diamond():
    """entry → (then|els) → join."""
    m = Module("t")
    f = Function("f", FunctionType(I64, (I64,)), ["x"])
    m.add_function(f)
    entry = f.new_block("entry")
    then = f.new_block("then")
    els = f.new_block("els")
    join = f.new_block("join")
    b = IRBuilder(entry)
    cond = b.icmp("sgt", f.arguments[0], ConstantInt(I64, 0))
    b.cond_br(cond, then, els)
    IRBuilder(then).br(join)
    IRBuilder(els).br(join)
    IRBuilder(join).ret(ConstantInt(I64, 0))
    return f, entry, then, els, join


def loop():
    """entry → head ⇄ body, head → exit."""
    m = Module("t")
    f = Function("f", FunctionType(I64, (I64,)), ["n"])
    m.add_function(f)
    entry = f.new_block("entry")
    head = f.new_block("head")
    body = f.new_block("body")
    exit_ = f.new_block("exit")
    IRBuilder(entry).br(head)
    hb = IRBuilder(head)
    cond = hb.icmp("sgt", f.arguments[0], ConstantInt(I64, 0))
    hb.cond_br(cond, body, exit_)
    IRBuilder(body).br(head)
    IRBuilder(exit_).ret(ConstantInt(I64, 0))
    return f, entry, head, body, exit_


class TestDominance:
    def test_entry_dominates_all(self):
        f, entry, then, els, join = diamond()
        dt = DominatorTree(f)
        for bb in (entry, then, els, join):
            assert dt.dominates(entry, bb)

    def test_branches_do_not_dominate_join(self):
        f, entry, then, els, join = diamond()
        dt = DominatorTree(f)
        assert not dt.dominates(then, join)
        assert not dt.dominates(els, join)
        assert dt.immediate_dominator(join) is entry

    def test_dominance_is_reflexive(self):
        f, entry, *_ = diamond()
        dt = DominatorTree(f)
        assert dt.dominates(entry, entry)

    def test_unreachable_blocks_not_in_tree(self):
        f, entry, then, els, join = diamond()
        dead = f.new_block("dead")
        IRBuilder(dead).ret(ConstantInt(I64, 1))
        dt = DominatorTree(f)
        assert not dt.is_reachable(dead)
        assert not dt.dominates(entry, dead)

    def test_dominance_frontier_of_branches_is_join(self):
        f, entry, then, els, join = diamond()
        dt = DominatorTree(f)
        df = dt.dominance_frontier()
        assert id(join) in df[id(then)]
        assert id(join) in df[id(els)]
        assert df[id(entry)] == set()

    def test_back_edge_detection(self):
        f, entry, head, body, exit_ = loop()
        dt = DominatorTree(f)
        edges = dt.back_edges()
        assert (body, head) in [(t, h) for t, h in edges]

    def test_natural_loop_membership(self):
        f, entry, head, body, exit_ = loop()
        dt = DominatorTree(f)
        (tail, head_) = dt.back_edges()[0]
        members = dt.natural_loop(tail, head_)
        assert id(head) in members and id(body) in members
        assert id(entry) not in members and id(exit_) not in members

    def test_loop_header_frontier_includes_itself(self):
        f, entry, head, body, exit_ = loop()
        dt = DominatorTree(f)
        df = dt.dominance_frontier()
        assert id(head) in df[id(body)]
