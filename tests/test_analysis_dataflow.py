"""Tests for the generic worklist dataflow engine (repro.analysis.dataflow)."""

from repro.analysis import BACKWARD, FORWARD, DataflowProblem, run_dataflow
from repro.lir import (
    ConstantInt,
    Function,
    FunctionType,
    I64,
    IRBuilder,
    Module,
)


def diamond():
    """entry -> (then | else) -> join, with a ret in join."""
    m = Module("t")
    f = Function("f", FunctionType(I64, (I64,)), ["x"])
    m.add_function(f)
    entry = f.new_block("entry")
    then = f.new_block("then")
    els = f.new_block("else")
    join = f.new_block("join")
    b = IRBuilder(entry)
    cond = b.icmp("eq", f.arguments[0], ConstantInt(I64, 0), "c")
    b.cond_br(cond, then, els)
    IRBuilder(then).br(join)
    IRBuilder(els).br(join)
    IRBuilder(join).ret(ConstantInt(I64, 0))
    return f, entry, then, els, join


def loop():
    """entry -> head -> body -> head (back edge), head -> exit."""
    m = Module("t")
    f = Function("f", FunctionType(I64, (I64,)), ["x"])
    m.add_function(f)
    entry = f.new_block("entry")
    head = f.new_block("head")
    body = f.new_block("body")
    exit_ = f.new_block("exit")
    IRBuilder(entry).br(head)
    bh = IRBuilder(head)
    cond = bh.icmp("eq", f.arguments[0], ConstantInt(I64, 0), "c")
    bh.cond_br(cond, body, exit_)
    IRBuilder(body).br(head)
    IRBuilder(exit_).ret(ConstantInt(I64, 0))
    return f, entry, head, body, exit_


class _ReachingBlocks(DataflowProblem):
    """Forward may-analysis: the set of block names on some path to here."""

    direction = FORWARD

    def top(self, func):
        return frozenset()

    def boundary(self, func):
        return frozenset()

    def join(self, a, b):
        return a | b

    def transfer(self, block, state):
        return state | {block.name}


class _ReachableExits(DataflowProblem):
    """Backward must-analysis over names of blocks on every path onward."""

    direction = BACKWARD

    def top(self, func):
        return None  # None = "not yet computed" top element

    def boundary(self, func):
        return frozenset()

    def join(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        return a & b

    def transfer(self, block, state):
        base = state if state is not None else frozenset()
        return base | {block.name}


class TestForward:
    def test_diamond_joins_both_arms(self):
        f, entry, then, els, join = diamond()
        res = run_dataflow(f, _ReachingBlocks())
        assert res.block_in(entry) == frozenset()
        assert res.block_out(entry) == {"entry"}
        assert res.block_in(then) == {"entry"}
        assert res.block_in(join) == {"entry", "then", "else"}
        assert "join" in res.block_out(join)

    def test_loop_reaches_fixpoint(self):
        f, entry, head, body, exit_ = loop()
        res = run_dataflow(f, _ReachingBlocks())
        # The back edge feeds body's facts around to head.
        assert res.block_in(head) == {"entry", "head", "body"}
        assert res.block_in(exit_) == {"entry", "head", "body"}


class TestBackward:
    def test_diamond_intersects_arms(self):
        f, entry, then, els, join = diamond()
        res = run_dataflow(f, _ReachableExits())
        # From entry's exit, both arms are possible: only what is on
        # EVERY path onward survives the intersection join.
        assert res.block_out(entry) == {"join"}
        assert res.block_in(entry) == {"entry", "join"}
        assert res.block_out(join) == frozenset()

    def test_loop_backward(self):
        f, entry, head, body, exit_ = loop()
        res = run_dataflow(f, _ReachableExits())
        assert "exit" not in res.block_out(exit_)
        assert "head" in res.block_in(body)       # body always re-enters head
        assert res.block_out(head) <= {"head", "body", "exit"}


class TestEngineBehaviour:
    def test_single_block(self):
        m = Module("t")
        f = Function("f", FunctionType(I64, ()), [])
        m.add_function(f)
        IRBuilder(f.new_block("entry")).ret(ConstantInt(I64, 0))
        res = run_dataflow(f, _ReachingBlocks())
        assert res.block_out(f.entry) == {"entry"}

    def test_unreachable_block_stays_top(self):
        f, entry, head, body, exit_ = loop()
        dead = f.new_block("dead")
        IRBuilder(dead).ret(ConstantInt(I64, 1))
        res = run_dataflow(f, _ReachingBlocks())
        # Never scheduled: keeps the optimistic initial state.
        assert res.block_in(dead) == frozenset()
        assert res.block_out(dead) == frozenset()
        # Reachable blocks are unaffected by the dead one.
        assert res.block_in(exit_) == {"entry", "head", "body"}


def irreducible():
    """entry -> (b1 | b2), b1 <-> b2 (a two-entry loop: irreducible),
    each loop block can also leave to exit."""
    m = Module("t")
    f = Function("f", FunctionType(I64, (I64,)), ["x"])
    m.add_function(f)
    entry = f.new_block("entry")
    b1 = f.new_block("b1")
    b2 = f.new_block("b2")
    exit_ = f.new_block("exit")
    be = IRBuilder(entry)
    c0 = be.icmp("eq", f.arguments[0], ConstantInt(I64, 0), "c0")
    be.cond_br(c0, b1, b2)
    i1 = IRBuilder(b1)
    c1 = i1.icmp("eq", f.arguments[0], ConstantInt(I64, 1), "c1")
    i1.cond_br(c1, b2, exit_)
    i2 = IRBuilder(b2)
    c2 = i2.icmp("eq", f.arguments[0], ConstantInt(I64, 2), "c2")
    i2.cond_br(c2, b1, exit_)
    IRBuilder(exit_).ret(ConstantInt(I64, 0))
    return f, entry, b1, b2, exit_


class TestIrreducibleCFG:
    def test_forward_reaches_fixpoint(self):
        f, entry, b1, b2, exit_ = irreducible()
        res = run_dataflow(f, _ReachingBlocks())
        # Both loop entries see paths through either loop block.
        assert res.block_in(b1) == {"entry", "b1", "b2"}
        assert res.block_in(b2) == {"entry", "b1", "b2"}
        assert res.block_in(exit_) == {"entry", "b1", "b2"}

    def test_backward_reaches_fixpoint(self):
        f, entry, b1, b2, exit_ = irreducible()
        res = run_dataflow(f, _ReachableExits())
        # exit is the only block on EVERY path onward from the loop: the
        # must-intersection over the cross edges strips b1/b2 facts.
        assert res.block_out(b1) == {"exit"}
        assert res.block_out(b2) == {"exit"}
        assert res.block_in(b1) == {"b1", "exit"}
        assert res.block_in(b2) == {"b2", "exit"}
        assert res.block_out(entry) == {"exit"}

    def test_backward_unreachable_block_stays_top(self):
        f, entry, b1, b2, exit_ = irreducible()
        dead = f.new_block("dead")
        IRBuilder(dead).ret(ConstantInt(I64, 1))
        res = run_dataflow(f, _ReachableExits())
        # A block no exit path is seeded from and nothing reaches: the
        # backward engine must leave it at top, and the reachable facts
        # must be unaffected.
        assert res.block_out(dead) in (None, frozenset())
        assert res.block_out(b1) == {"exit"}
        assert res.block_out(entry) == {"exit"}

    def test_backward_loop_without_exit_terminates(self):
        # b1 <-> b2 with no path to a ret: the engine must still
        # terminate and converge (all-cycle functions happen in lifted
        # code for spin loops).
        m = Module("t")
        f = Function("f", FunctionType(I64, (I64,)), ["x"])
        m.add_function(f)
        entry = f.new_block("entry")
        b1 = f.new_block("b1")
        b2 = f.new_block("b2")
        IRBuilder(entry).br(b1)
        IRBuilder(b1).br(b2)
        IRBuilder(b2).br(b1)
        res = run_dataflow(f, _ReachableExits())
        out = res.block_out(b1)
        assert out is None or isinstance(out, frozenset)
