"""Tests for the binary lifter: disassembly, CFG reconstruction, function
type discovery and instruction translation (paper §4)."""

import pytest

from repro.lifter import (
    LiftError,
    TypeDiscovery,
    build_cfg,
    disassemble_all,
    disassemble_function,
    lift_program,
)
from repro.lir import (
    Alloca,
    AtomicRMW,
    Cast,
    CmpXchg,
    Fence,
    Interpreter,
    verify_module,
)
from repro.minicc import compile_to_x86
from repro.x86 import X86Emulator


def lift(source: str):
    obj = compile_to_x86(source)
    module = lift_program(obj)
    verify_module(module)
    return obj, module


def differential(source: str, entry="main"):
    obj = compile_to_x86(source)
    emu = X86Emulator(obj)
    expected = emu.run()
    module = lift_program(obj)
    verify_module(module)
    interp = Interpreter(module)
    got = interp.run(entry)
    assert got == expected, (got, expected)
    assert interp.output == emu.output
    return module


class TestDisassembly:
    def test_full_function_coverage(self):
        obj = compile_to_x86("int main() { return 1 + 2; }")
        instrs = disassemble_function(obj, "main")
        total = sum(i.size for i in instrs)
        assert total == obj.functions["main"].size

    def test_all_functions(self):
        obj = compile_to_x86(
            "int f() { return 1; } int g() { return 2; } int main() { return f() + g(); }"
        )
        table = disassemble_all(obj)
        assert set(table) == {"f", "g", "main"}


class TestCFG:
    def test_loop_creates_back_edge(self):
        obj = compile_to_x86(
            "int main() { int s = 0; for (int i = 0; i < 3; i = i + 1) "
            "{ s = s + i; } return s; }"
        )
        cfg = build_cfg("main", disassemble_function(obj, "main"))
        starts = set(cfg.blocks)
        back_edges = [
            (b.start, s)
            for b in cfg.blocks.values()
            for s in b.successors
            if s <= b.start
        ]
        assert back_edges, "loop should produce a back edge"
        for block in cfg.blocks.values():
            for s in block.successors:
                assert s in starts

    def test_if_else_diamond(self):
        obj = compile_to_x86(
            "int main() { int x = 3; if (x > 1) { x = 10; } else { x = 20; } "
            "return x; }"
        )
        cfg = build_cfg("main", disassemble_function(obj, "main"))
        n_cond = sum(
            1 for b in cfg.blocks.values() if len(b.successors) == 2
        )
        assert n_cond >= 1


class TestTypeDiscovery:
    def _sigs(self, source):
        obj = compile_to_x86(source)
        instrs = disassemble_all(obj)
        cfgs = {n: build_cfg(n, b) for n, b in instrs.items()}
        return TypeDiscovery(obj, cfgs).discover()

    def test_int_params(self):
        sigs = self._sigs(
            "int add3(int a, int b, int c) { return a + b + c; } "
            "int main() { return add3(1, 2, 3); }"
        )
        assert sigs["add3"].int_params == 3
        assert sigs["add3"].sse_params == 0
        assert sigs["main"].param_count == 0

    def test_double_params(self):
        sigs = self._sigs(
            "double mul(double a, double b) { return a * b; } "
            "int main() { return (int)mul(2.0, 3.0); }"
        )
        assert sigs["mul"].sse_params == 2
        assert sigs["mul"].int_params == 0

    def test_mixed_params_ints_before_sse(self):
        # §4.2.1: original interleaving is unrecoverable; ints come first.
        sigs = self._sigs(
            "double mix(double a, int k) { return a * (double)k; } "
            "int main() { return (int)mix(1.0, 2); }"
        )
        assert sigs["mix"].int_params == 1
        assert sigs["mix"].sse_params == 1

    def test_return_type_votes_int(self):
        sigs = self._sigs(
            "int f() { return 7; } int main() { return f() + 1; }"
        )
        assert sigs["f"].ret == "i64"

    def test_return_type_votes_double(self):
        sigs = self._sigs(
            "double f() { return 7.5; } "
            "int main() { double d = f(); return (int)d; }"
        )
        assert sigs["f"].ret == "f64"

    def test_unused_param_not_discovered(self):
        # The callee never reads rsi, so only one parameter is discovered.
        sigs = self._sigs(
            "int first(int a, int b) { return a; } "
            "int main() { return first(5, 9); }"
        )
        assert sigs["first"].int_params <= 2
        assert sigs["first"].int_params >= 1


class TestTranslation:
    def test_registers_become_slots(self):
        _, module = lift("int main() { return 3; }")
        main = module.get_function("main")
        allocas = [i for i in main.instructions() if isinstance(i, Alloca)]
        names = {a.name for a in allocas}
        assert any("rax" in n for n in names)
        assert any("stacktop" in n for n in names)

    def test_stack_addresses_use_inttoptr(self):
        src = "int deep(int *p) { return p[1]; } int main() { int a = 1; int b = 2; int c = a + b; return deep(&a) * 0 + c; }"
        _, module = lift(src)
        main = module.get_function("main")
        casts = [
            i for i in main.instructions()
            if isinstance(i, Cast) and i.op == "inttoptr"
        ]
        assert casts, "stack traffic should flow through inttoptr (pre-refinement)"

    def test_mfence_lifts_to_fsc(self):
        _, module = lift("int main() { fence(); return 0; }")
        main = module.get_function("main")
        fences = [i for i in main.instructions() if isinstance(i, Fence)]
        assert any(f.kind == "sc" for f in fences)

    def test_lock_xadd_lifts_to_atomicrmw(self):
        _, module = lift(
            "int g = 0; int main() { return atomic_add(&g, 5); }"
        )
        main = module.get_function("main")
        rmws = [i for i in main.instructions() if isinstance(i, AtomicRMW)]
        assert rmws and rmws[0].ordering == "sc"

    def test_lock_cmpxchg_lifts_to_cmpxchg(self):
        _, module = lift(
            "int g = 0; int main() { return atomic_cas(&g, 0, 1); }"
        )
        main = module.get_function("main")
        assert any(isinstance(i, CmpXchg) for i in main.instructions())

    def test_globals_discovered(self):
        _, module = lift("int g = 7; int main() { return g; }")
        assert "g" in module.globals

    def test_external_calls_typed(self):
        _, module = lift("int main() { print_i(1); return 0; }")
        assert "print_i64" in module.externals

    def test_indirect_branch_rejected(self):
        # Hand-build a function with call through register: lifter refuses.
        from repro.x86 import Assembler, AsmFunction, Instr, Reg

        a = Assembler()
        f = AsmFunction("main")
        f.emit(Instr("mov", [Reg("rax"), Reg("rdi")]))
        f.emit(Instr("call", [Reg("rax")]))
        f.emit(Instr("ret"))
        a.add_function(f)
        obj = a.link()
        with pytest.raises(LiftError):
            lift_program(obj)


class TestDifferentialExecution:
    def test_arithmetic(self):
        differential("int main() { return (5 * 7 - 3) / 4 + (13 % 5); }")

    def test_flags_heavy_comparisons(self):
        differential(
            "int main() { int r = 0; for (int i = -3; i < 4; i = i + 1) {"
            " if (i <= 0) { r = r + 1; } if (i != 2) { r = r + 10; }"
            " if (i > -2) { r = r + 100; } } return r; }"
        )

    def test_doubles_and_conversions(self):
        differential(
            "int main() { double s = 0.0; for (int i = 1; i < 6; i = i + 1) {"
            " s = s + 1.0 / (double)i; } return (int)(s * 1000.0); }"
        )

    def test_function_calls(self):
        differential(
            "int sq(int x) { return x * x; } "
            "int main() { int s = 0; for (int i = 0; i < 5; i = i + 1)"
            " { s = s + sq(i); } return s; }"
        )

    def test_double_returning_function(self):
        differential(
            "double half(double x) { return x / 2.0; } "
            "int main() { return (int)(half(9.0) * 10.0); }"
        )

    def test_globals_and_arrays(self):
        differential(
            "int a[10]; int main() { for (int i = 0; i < 10; i = i + 1) "
            "{ a[i] = i; } int s = 0; for (int i = 0; i < 10; i = i + 1) "
            "{ s = s + a[i] * i; } return s; }"
        )

    def test_strings(self):
        differential(
            'int main() { char *s = "lift"; int h = 0; '
            "for (int i = 0; i < 4; i = i + 1) { h = h * 31 + s[i]; } "
            "return h & 65535; }"
        )

    def test_threads_and_atomics(self):
        differential(
            """
            int ctr = 0;
            int worker(int t) {
              for (int i = 0; i < 10; i = i + 1) { atomic_add(&ctr, t); }
              return 0;
            }
            int main() {
              int t1 = spawn(worker, 1);
              int t2 = spawn(worker, 3);
              join(t1); join(t2);
              return ctr;
            }
            """
        )

    def test_shifts_and_bitwise(self):
        differential(
            "int main() { int x = 0; for (int i = 1; i < 20; i = i + 1) "
            "{ x = (x << 1) ^ i; x = x & 1048575; x = x | (i >> 2); } "
            "return x; }"
        )

    def test_negation_and_not(self):
        differential("int main() { int x = 5; return -x + ~x + !x; }")
