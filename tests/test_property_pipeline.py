"""Property-based differential testing of the whole translation pipeline.

Hypothesis generates random (terminating, deterministic) mini-C programs;
every configuration — the x86 emulation of the source binary, the Native
LIR route, and the lifted Lifted/Opt/PPOpt routes — must compute identical
results and output.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Lasagne
from repro.lir import Interpreter, verify_module
from repro.lifter import lift_program
from repro.minicc import compile_to_x86
from repro.opt import optimize_module
from repro.x86 import X86Emulator

VARS = ["v0", "v1", "v2"]

literals = st.integers(min_value=-20, max_value=20)
var_names = st.sampled_from(VARS)
shift_amounts = st.integers(min_value=0, max_value=5)
array_index = st.integers(min_value=0, max_value=7)


@st.composite
def expr(draw, depth=0):
    if depth >= 3:
        choice = draw(st.integers(0, 2))
    else:
        choice = draw(st.integers(0, 6))
    if choice == 0:
        return str(draw(literals))
    if choice == 1:
        return draw(var_names)
    if choice == 2:
        return f"g[{draw(array_index)}]"
    if choice == 3:
        op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^"]))
        return f"({draw(expr(depth + 1))} {op} {draw(expr(depth + 1))})"
    if choice == 4:
        op = draw(st.sampled_from(["<<", ">>"]))
        return f"(({draw(expr(depth + 1))} & 1023) {op} {draw(shift_amounts)})"
    if choice == 5:
        op = draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
        return f"({draw(expr(depth + 1))} {op} {draw(expr(depth + 1))})"
    # safe division/modulo: constant non-zero divisor
    op = draw(st.sampled_from(["/", "%"]))
    divisor = draw(st.integers(min_value=1, max_value=9))
    return f"({draw(expr(depth + 1))} {op} {divisor})"


@st.composite
def statement(draw, depth=0):
    choice = draw(st.integers(0, 4 if depth < 2 else 2))
    if choice == 0:
        return f"{draw(var_names)} = {draw(expr())};"
    if choice == 1:
        return f"g[{draw(array_index)}] = {draw(expr())};"
    if choice == 2:
        return f"print_i({draw(expr())});"
    if choice == 3:
        body = draw(st.lists(statement(depth + 1), min_size=1, max_size=3))
        cond = draw(expr(2))
        alt = draw(st.booleans())
        text = f"if ({cond}) {{ {' '.join(body)} }}"
        if alt:
            body2 = draw(st.lists(statement(depth + 1), min_size=1, max_size=2))
            text += f" else {{ {' '.join(body2)} }}"
        return text
    count = draw(st.integers(1, 4))
    body = draw(st.lists(statement(depth + 1), min_size=1, max_size=3))
    ivar = f"i{depth}"
    return (
        f"for (int {ivar} = 0; {ivar} < {count}; {ivar} = {ivar} + 1)"
        f" {{ {' '.join(body)} }}"
    )


@st.composite
def mini_c_program(draw):
    inits = [f"int {v} = {draw(literals)};" for v in VARS]
    stmts = draw(st.lists(statement(), min_size=2, max_size=6))
    result = draw(expr())
    body = "\n  ".join(inits + stmts)
    return (
        "int g[8];\n"
        "int main() {\n"
        f"  {body}\n"
        f"  return ({result}) & 268435455;\n"
        "}\n"
    )


@given(mini_c_program())
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_all_routes_agree(source):
    obj = compile_to_x86(source)
    x86 = X86Emulator(obj)
    expected = x86.run()
    expected_output = x86.output

    lasagne = Lasagne(verify=True)
    for config in ("native", "lifted", "ppopt"):
        built = lasagne.build(source, config)
        run = Lasagne.run(built)
        assert run.result == expected, (config, source)
        assert run.output == expected_output, (config, source)


@given(mini_c_program())
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_optimizer_preserves_lifted_semantics(source):
    """lift → O2 is semantics-preserving (checked on the LIR interpreter)."""
    obj = compile_to_x86(source)
    x86 = X86Emulator(obj)
    expected = x86.run()

    module = lift_program(obj)
    optimize_module(module)
    verify_module(module)
    interp = Interpreter(module)
    assert interp.run("main") == expected
    assert interp.output == x86.output
