"""Tests for the repro.telemetry subsystem: tracer, metrics, remarks."""

import json
import threading
from pathlib import Path

import pytest

from repro import telemetry
from repro.telemetry import (
    NOOP_SPAN,
    MetricsRegistry,
    Remark,
    RemarkSink,
    Tracer,
    format_tree,
    to_chrome_trace,
    to_json,
)


class TestTracer:
    def test_nested_spans_form_a_tree(self):
        tracer = Tracer()
        with tracer.span("root", category="pipeline"):
            with tracer.span("a", category="stage"):
                with tracer.span("a1"):
                    pass
            with tracer.span("b", category="stage"):
                pass
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert [c.name for c in root.children] == ["a", "b"]
        assert [c.name for c in root.children[0].children] == ["a1"]

    def test_durations_are_positive_and_nest(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                sum(range(1000))
        outer = tracer.roots[0]
        inner = outer.children[0]
        assert outer.end is not None and inner.end is not None
        assert inner.duration >= 0.0
        assert outer.duration >= inner.duration
        assert outer.self_time == pytest.approx(
            outer.duration - inner.duration)

    def test_attrs_and_annotate(self):
        tracer = Tracer()
        with tracer.span("s", category="stage", config="ppopt") as span:
            span.annotate(extra=1)
        assert span.attrs == {"config": "ppopt", "extra": 1}
        assert span.category == "stage"

    def test_sibling_roots(self):
        tracer = Tracer()
        with tracer.span("one"):
            pass
        with tracer.span("two"):
            pass
        assert [r.name for r in tracer.roots] == ["one", "two"]

    def test_find_and_durations_by_category(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("lift", category="stage"):
                pass
            with tracer.span("opt", category="stage"):
                pass
            with tracer.span("gvn", category="pass"):
                pass
        assert {s.name for s in tracer.find(category="stage")} == {"lift", "opt"}
        assert set(tracer.durations(category="stage")) == {"lift", "opt"}

    def test_threads_get_independent_stacks(self):
        tracer = Tracer()
        errors = []

        def work(tag):
            try:
                with tracer.span(f"outer-{tag}"):
                    with tracer.span(f"inner-{tag}"):
                        pass
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(tracer.roots) == 4  # one root per thread
        for root in tracer.roots:
            assert len(root.children) == 1


class TestChromeTraceExport:
    def _traced(self):
        tracer = Tracer()
        with tracer.span("pipeline", category="pipeline", config="ppopt"):
            with tracer.span("lift", category="stage"):
                pass
        return tracer

    def test_schema(self):
        tracer = self._traced()
        doc = to_chrome_trace(tracer)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 2
        for event in spans:
            assert set(event) == {"name", "cat", "ph", "ts", "dur",
                                  "pid", "tid", "args"}
            assert isinstance(event["ts"], float)
            assert isinstance(event["dur"], float)
            assert event["dur"] >= 0.0
        # The whole document must be valid JSON.
        json.loads(json.dumps(doc))

    def test_metadata_events_name_process_and_threads(self):
        doc = to_chrome_trace(self._traced())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        by_name = {e["name"]: e for e in meta}
        assert by_name["process_name"]["args"] == {"name": "repro"}
        # The test ran on the main thread, so its span tid is named.
        assert by_name["thread_name"]["args"]["name"] == "main"

    def test_worker_threads_get_stable_labels(self):
        tracer = Tracer()
        def worker():
            with tracer.span("w", category="stage"):
                pass
        t = threading.Thread(target=worker)
        t.start()
        t.join()
        doc = to_chrome_trace(tracer)
        labels = [e["args"]["name"] for e in doc["traceEvents"]
                  if e["ph"] == "M" and e["name"] == "thread_name"]
        assert labels == ["worker-1"]

    def test_counter_events_from_metrics(self):
        tracer = self._traced()
        metrics = MetricsRegistry()
        metrics.count("fences.inserted", 7, kind="rm")
        metrics.gauge("depth", 3)
        doc = to_chrome_trace(tracer, metrics=metrics)
        counters = {e["name"]: e for e in doc["traceEvents"]
                    if e["ph"] == "C"}
        assert counters["fences.inserted{kind=rm}"]["args"] == {"value": 7}
        assert counters["depth"]["args"] == {"value": 3}
        json.loads(json.dumps(doc))

    def test_child_nested_within_parent(self):
        doc = to_chrome_trace(self._traced())
        by_name = {e["name"]: e for e in doc["traceEvents"]}
        parent, child = by_name["pipeline"], by_name["lift"]
        assert parent["ts"] <= child["ts"]
        assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"] + 1e-3
        assert parent["args"] == {"config": "ppopt"}

    def test_open_spans_are_skipped(self):
        tracer = Tracer()
        tracer.span("never-closed")
        with tracer.span("closed"):
            pass
        # "closed" ends up nested under the open span on this thread's
        # stack, so it is not a root; only complete events are exported.
        names = [e["name"] for e in to_chrome_trace(tracer)["traceEvents"]]
        assert "never-closed" not in names

    def test_tree_and_json_exports(self):
        tracer = self._traced()
        tree = format_tree(tracer.roots)
        assert "pipeline" in tree and "lift" in tree and "ms" in tree
        assert "lift" not in format_tree(tracer.roots, max_depth=0)
        doc = to_json(tracer)
        assert doc[0]["name"] == "pipeline"
        assert doc[0]["children"][0]["name"] == "lift"
        json.loads(json.dumps(doc))


class TestTracerExceptionSafety:
    def test_raise_mid_span_closes_and_annotates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer", category="pipeline"):
                with tracer.span("inner", category="stage"):
                    raise ValueError("boom")
        assert tracer.open_spans() == []
        outer, = tracer.roots
        assert outer.end is not None
        inner, = outer.children
        assert inner.end is not None
        # Both unwound spans carry the exception type.
        assert inner.attrs["error"] == "ValueError"
        assert outer.attrs["error"] == "ValueError"

    def test_tree_survives_mid_span_raise(self):
        tracer = Tracer()
        with tracer.span("root"):
            try:
                with tracer.span("bad"):
                    raise RuntimeError("x")
            except RuntimeError:
                pass
            with tracer.span("good"):
                pass
        root, = tracer.roots
        assert [c.name for c in root.children] == ["bad", "good"]
        assert root.attrs.get("error") is None
        assert tracer.open_spans() == []

    def test_open_spans_reports_live_spans(self):
        tracer = Tracer()
        span = tracer.span("live")
        assert [s.name for s in tracer.open_spans()] == ["live"]
        with span:
            pass
        assert tracer.open_spans() == []

    def test_spans_across_threads_do_not_interleave(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)
        errors: list[BaseException] = []

        def worker(name):
            try:
                with tracer.span(name, category="stage"):
                    barrier.wait(timeout=5)
                    with tracer.span(name + "-child"):
                        pass
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(f"t{i}",))
                   for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert tracer.open_spans() == []
        roots = sorted(r.name for r in tracer.roots)
        assert roots == ["t0", "t1"]
        for root in tracer.roots:
            assert [c.name for c in root.children] == [root.name + "-child"]

    def test_exception_in_threaded_span_does_not_leak(self):
        tracer = Tracer()

        def worker():
            try:
                with tracer.span("doomed"):
                    raise KeyError("k")
            except KeyError:
                pass

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert tracer.open_spans() == []
        doomed, = tracer.find("doomed")
        assert doomed.attrs["error"] == "KeyError"

class TestMetricsRegistry:
    def test_counters_accumulate(self):
        reg = MetricsRegistry()
        reg.count("x")
        reg.count("x", 4)
        assert reg.counter("x") == 5

    def test_labels_identify_series(self):
        reg = MetricsRegistry()
        reg.count("fences", 3, kind="rm")
        reg.count("fences", 2, kind="ww")
        assert reg.counter("fences", kind="rm") == 3
        assert reg.counter("fences", kind="ww") == 2
        assert reg.total("fences") == 5

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        reg.count("m", 1, a="1", b="2")
        reg.count("m", 1, b="2", a="1")
        assert reg.counter("m", a="1", b="2") == 2

    def test_gauges_record_last_value(self):
        reg = MetricsRegistry()
        reg.gauge("depth", 3)
        reg.gauge("depth", 7)
        assert reg.gauge_value("depth") == 7

    def test_snapshot_renders_flattened_names(self):
        reg = MetricsRegistry()
        reg.count("fences.inserted", 3, kind="rm")
        reg.gauge("size", 10)
        snap = reg.snapshot()
        assert snap["counters"] == {"fences.inserted{kind=rm}": 3}
        assert snap["gauges"] == {"size": 10}
        json.loads(json.dumps(snap))

    def test_thread_safety(self):
        reg = MetricsRegistry()

        def bump():
            for _ in range(1000):
                reg.count("n")

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("n") == 4000


class TestRemarkSink:
    def test_emit_and_select(self):
        sink = RemarkSink()
        sink.emit(Remark("place-fences", "fence-inserted", "msg",
                         function="main", block="entry", instruction="load %p"))
        sink.emit(Remark("merge-fences", "fence-merged", "msg2"))
        assert len(sink.remarks) == 2
        assert [r.kind for r in sink.select(origin="place-fences")] == \
            ["fence-inserted"]
        assert sink.histogram() == {"place-fences:fence-inserted": 1,
                                    "merge-fences:fence-merged": 1}

    def test_format_includes_location(self):
        r = Remark("place-fences", "fence-inserted", "Frm after load",
                   function="main", block="entry", instruction="load %g")
        line = r.format()
        assert line.startswith("remark: main:entry:load %g:")
        assert "[place-fences:fence-inserted]" in line
        assert Remark("o", "k", "m").location == "<module>"

    def test_origin_filter(self):
        sink = RemarkSink(origin_filter="place")
        sink.emit(Remark("place-fences", "fence-inserted", "kept"))
        sink.emit(Remark("merge-fences", "fence-merged", "dropped"))
        assert [r.message for r in sink.remarks] == ["kept"]

    def test_to_dict_roundtrips_json(self):
        r = Remark("o", "k", "m", function="f", args={"n": 3})
        json.loads(json.dumps(r.to_dict()))


class TestSessionFacade:
    def test_disabled_hooks_are_noops(self):
        assert telemetry.current() is None
        assert not telemetry.enabled()
        assert telemetry.span("x") is NOOP_SPAN
        with telemetry.span("x", category="stage") as s:
            assert s is NOOP_SPAN
        telemetry.count("c", 3)           # must not raise
        telemetry.gauge("g", 1)
        telemetry.remark("o", "k", "m")
        assert not telemetry.remarks_enabled()
        assert telemetry.metrics_snapshot() is None

    def test_session_installs_and_restores(self):
        with telemetry.session() as tel:
            assert telemetry.current() is tel
            with telemetry.span("s", category="stage"):
                telemetry.count("c")
                telemetry.remark("o", "k", "m")
            assert telemetry.remarks_enabled()
        assert telemetry.current() is None
        assert [r.name for r in tel.tracer.roots] == ["s"]
        assert tel.metrics.counter("c") == 1
        assert len(tel.remarks.remarks) == 1

    def test_sessions_nest(self):
        with telemetry.session() as outer:
            with telemetry.session() as inner:
                assert telemetry.current() is inner
                telemetry.count("c")
            assert telemetry.current() is outer
        assert inner.metrics.counter("c") == 1
        assert outer.metrics.counter("c") == 0

    def test_components_can_be_disabled(self):
        with telemetry.session(trace=False, remarks=False) as tel:
            assert telemetry.span("x") is NOOP_SPAN
            assert not telemetry.remarks_enabled()
            telemetry.remark("o", "k", "m")  # silently dropped
            telemetry.count("c")
        assert tel.tracer is None and tel.remarks is None
        assert tel.metrics.counter("c") == 1

    def test_remark_filter_threaded_through(self):
        with telemetry.session(remark_filter="^place") as tel:
            telemetry.remark("place-fences", "k", "kept")
            telemetry.remark("merge-fences", "k", "dropped")
        assert [r.message for r in tel.remarks.remarks] == ["kept"]


class TestHistogram:
    def test_observe_and_exact_percentiles(self):
        from repro.telemetry import Histogram

        hist = Histogram()
        for v in [1.0, 2.0, 3.0, 4.0, 5.0]:
            hist.observe(v)
        assert hist.count == 5
        assert hist.min == 1.0 and hist.max == 5.0
        assert hist.mean == pytest.approx(3.0)
        assert hist.percentile(0.50) == pytest.approx(3.0)
        assert hist.percentile(0.0) == pytest.approx(1.0)
        assert hist.percentile(1.0) == pytest.approx(5.0)
        # linear interpolation between order statistics
        assert hist.percentile(0.95) == pytest.approx(4.8)

    def test_empty_histogram_is_safe(self):
        from repro.telemetry import Histogram

        hist = Histogram()
        assert hist.count == 0
        assert hist.percentile(0.95) == 0.0
        assert hist.min is None and hist.max is None
        summary = hist.summary()
        assert summary["count"] == 0

    def test_summary_has_cumulative_buckets(self):
        from repro.telemetry import Histogram

        hist = Histogram(buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            hist.observe(v)
        summary = hist.summary()
        assert summary["buckets"]["le=1"] == 1
        assert summary["buckets"]["le=10"] == 2
        assert summary["buckets"]["le=+inf"] == 3
        assert summary["p50"] == pytest.approx(5.0)

    def test_registry_histogram_with_labels(self):
        reg = MetricsRegistry()
        for v in (0.1, 0.2, 0.3):
            reg.histogram("latency", v, stage="lift")
        reg.histogram("latency", 9.0, stage="opt")
        lift = reg.histogram_value("latency", stage="lift")
        assert lift.count == 3
        assert reg.histogram_value("latency", stage="opt").count == 1
        assert reg.histogram_value("latency", stage="nope") is None

    def test_snapshot_includes_histogram_summaries(self):
        reg = MetricsRegistry()
        reg.histogram("latency", 0.5, stage="lift")
        snap = reg.snapshot()
        assert "histograms" in snap
        row = snap["histograms"]["latency{stage=lift}"]
        assert row["count"] == 1 and row["p95"] == pytest.approx(0.5)
        json.loads(json.dumps(snap))

    def test_module_hook_records_into_session(self):
        with telemetry.session() as tel:
            telemetry.histogram("h", 1.0, kind="a")
            telemetry.histogram("h", 3.0, kind="a")
        hist = tel.metrics.histogram_value("h", kind="a")
        assert hist.count == 2
        telemetry.histogram("h", 9.0)  # no session: silently dropped

    def test_chrome_trace_exports_histogram_counters(self):
        tracer = Tracer()
        with tracer.span("root"):
            pass
        reg = MetricsRegistry()
        reg.histogram("stage_seconds", 0.25, stage="lift")
        events = to_chrome_trace(tracer, metrics=reg)
        counters = [e for e in events["traceEvents"]
                    if e.get("ph") == "C"
                    and e["name"].startswith("stage_seconds")]
        assert counters, "histogram series missing from the trace"
        args = counters[0]["args"]
        assert set(args) == {"p50", "p95", "p99"}
        assert args["p50"] == pytest.approx(0.25)


class TestSnapshotDeterminism:
    """Rendered metric keys must not depend on PYTHONHASHSEED."""

    SCRIPT = (
        "from repro.telemetry import MetricsRegistry\n"
        "reg = MetricsRegistry()\n"
        "reg.count('m', 1, tags={'b', 'a', 'c'}, cfg={'y': 2, 'x': 1})\n"
        "reg.histogram('h', 0.5, names=frozenset(['q', 'p']))\n"
        "snap = reg.snapshot()\n"
        "print(sorted(snap['counters']) + sorted(snap['histograms']))\n"
    )

    def test_set_valued_labels_render_canonically(self):
        reg = MetricsRegistry()
        reg.count("m", 1, tags={"b", "a"})
        snap = reg.snapshot()
        assert snap["counters"] == {"m{tags={a,b}}": 1}

    def test_dict_valued_labels_render_canonically(self):
        reg = MetricsRegistry()
        reg.count("m", 1, cfg={"y": 2, "x": 1})
        assert list(reg.snapshot()["counters"]) == ["m{cfg={x:1,y:2}}"]

    def test_keys_identical_across_hash_seeds(self):
        import os
        import subprocess
        import sys

        outputs = set()
        for seed in ("0", "1", "4242"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.pathsep.join(
                [str(Path(__file__).resolve().parent.parent / "src")]
                + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
            proc = subprocess.run(
                [sys.executable, "-c", self.SCRIPT],
                capture_output=True, text=True, env=env, check=True)
            outputs.add(proc.stdout)
        assert len(outputs) == 1, outputs
