"""Tests for the LIR→Arm backend (Fig. 8b mapping + linear scan)."""


from repro.arm import ArmEmulator, is_fence
from repro.codegen import compile_lir_to_arm
from repro.lir import (
    F64,
    I8,
    I64,
    ArrayType,
    ConstantFloat,
    ConstantInt,
    Function,
    FunctionType,
    GlobalVariable,
    IRBuilder,
    Module,
    Phi,
    ptr,
)


def new_func(params=(I64,), ret=I64, name="main"):
    m = Module("t")
    f = Function(name, FunctionType(ret, tuple(params)), ["x", "y", "z"])
    m.add_function(f)
    return m, f, IRBuilder(f.new_block("entry"))


def run(m, entry="main", args=None):
    prog = compile_lir_to_arm(m, entry)
    emu = ArmEmulator(prog)
    return emu.run(entry, args or []), emu


class TestBasics:
    def test_arithmetic(self):
        m, f, b = new_func(params=(I64, I64))
        x, y = f.arguments
        b.ret(b.binop("sdiv", b.mul(b.add(x, y), b.sub(x, y)), ConstantInt(I64, 2)))
        r, _ = run(m, args=[7, 3])
        assert r == 20

    def test_srem_via_msub(self):
        m, f, b = new_func(params=(I64, I64))
        b.ret(b.binop("srem", *f.arguments))
        r, _ = run(m, args=[17, 5])
        assert r == 2

    def test_icmp_signed_unsigned(self):
        m, f, b = new_func(params=(I64, I64))
        x, y = f.arguments
        s = b.zext(b.icmp("slt", x, y), I64)
        u = b.zext(b.icmp("ult", x, y), I64)
        b.ret(b.binop("or", b.binop("shl", s, ConstantInt(I64, 1)), u))
        r, _ = run(m, args=[(-1) & (2**64 - 1), 1])
        assert r == 0b10

    def test_floats(self):
        m, f, b = new_func(params=(F64, F64), ret=F64)
        x, y = f.arguments
        b.ret(b.binop("fdiv", b.binop("fmul", x, y), ConstantFloat(F64, 2.0)))
        prog = compile_lir_to_arm(m)
        emu = ArmEmulator(prog)
        main = emu._make_thread(emu.symbols["main"])
        main.d["d0"] = 6.0
        main.d["d1"] = 4.0
        while not main.done:
            emu._schedule()
        assert main.d["d0"] == 12.0

    def test_select(self):
        m, f, b = new_func(params=(I64,))
        c = b.icmp("sgt", f.arguments[0], ConstantInt(I64, 0))
        b.ret(b.select(c, ConstantInt(I64, 10), ConstantInt(I64, 20)))
        assert run(m, args=[5])[0] == 10
        assert run(m, args=[0])[0] == 20

    def test_casts(self):
        m, f, b = new_func(params=(I64,))
        x = f.arguments[0]
        t = b.trunc(x, I8)
        s = b.sext(t, I64)
        b.ret(s)
        r, _ = run(m, args=[0x1FF])  # low byte 0xFF → sext → -1
        assert r == -1

    def test_float_int_bitcasts(self):
        m, f, b = new_func(params=())
        bits = b.bitcast(ConstantFloat(F64, 1.0), I64)
        back = b.bitcast(bits, F64)
        b.ret(b.cast("fptosi", back, I64))
        assert run(m)[0] == 1

    def test_sitofp_fptosi(self):
        m, f, b = new_func(params=(I64,))
        d = b.cast("sitofp", f.arguments[0], F64)
        d2 = b.binop("fmul", d, ConstantFloat(F64, 2.5))
        b.ret(b.cast("fptosi", d2, I64))
        assert run(m, args=[4])[0] == 10


class TestMemory:
    def test_alloca_and_gep(self):
        m, f, b = new_func(params=())
        arr = b.alloca(ArrayType(I64, 4))
        base = b.bitcast(arr, ptr(I64))
        for i in range(4):
            b.store(ConstantInt(I64, i * 3),
                    b.gep(I64, base, [ConstantInt(I64, i)]))
        p = b.gep(I64, base, [ConstantInt(I64, 3)])
        b.ret(b.load(p))
        assert run(m)[0] == 9

    def test_globals(self):
        m, f, b = new_func(params=())
        g = m.add_global(GlobalVariable("g", I64, ConstantInt(I64, 55)))
        v = b.load(g)
        b.store(b.add(v, ConstantInt(I64, 1)), g)
        b.ret(b.load(g))
        assert run(m)[0] == 56

    def test_byte_loads_stores(self):
        m, f, b = new_func(params=())
        g = m.add_global(GlobalVariable("buf", ArrayType(I8, 4), b"abcd"))
        p = b.gep(ArrayType(I8, 4), g, [ConstantInt(I64, 0), ConstantInt(I64, 2)])
        v = b.zext(b.load(p), I64)
        b.store(ConstantInt(I8, ord("Z")), p)
        v2 = b.zext(b.load(p), I64)
        b.ret(b.add(v, v2))
        assert run(m)[0] == ord("c") + ord("Z")


class TestFenceMapping:
    def test_fig8b_fence_selection(self):
        m, f, b = new_func(params=(ptr(I64),))
        b.fence("rm")
        b.fence("ww")
        b.fence("sc")
        b.ret(ConstantInt(I64, 0))
        prog = compile_lir_to_arm(m)
        fences = [
            i.mnemonic
            for fn in prog.functions.values()
            for i in fn.instructions()
            if is_fence(i)
        ]
        assert fences == ["dmb ishld", "dmb ishst", "dmb ish"]

    def test_rmw_wrapped_in_dmbff(self):
        m, f, b = new_func(params=(ptr(I64),))
        b.atomicrmw("add", f.arguments[0], ConstantInt(I64, 1))
        b.ret(ConstantInt(I64, 0))
        prog = compile_lir_to_arm(m)
        mnems = [i.mnemonic for i in prog.functions["main"].instructions()]
        i_ldxr = mnems.index("ldxr")
        i_stxr = mnems.index("stxr")
        before = mnems[:i_ldxr]
        after = mnems[i_stxr:]
        assert "dmb ish" in before and "dmb ish" in after

    def test_cmpxchg_loop(self):
        m, f, b = new_func(params=())
        g = m.add_global(GlobalVariable("g", I64, ConstantInt(I64, 5)))
        old = b.cmpxchg(g, ConstantInt(I64, 5), ConstantInt(I64, 9))
        b.ret(b.add(old, b.load(g)))
        assert run(m)[0] == 5 + 9

    def test_rmw_returns_old(self):
        m, f, b = new_func(params=())
        g = m.add_global(GlobalVariable("g", I64, ConstantInt(I64, 10)))
        old = b.atomicrmw("add", g, ConstantInt(I64, 7))
        b.ret(b.binop("or", b.binop("shl", b.load(g), ConstantInt(I64, 8)), old))
        assert run(m)[0] == (17 << 8) | 10


class TestControlFlowAndPhis:
    def test_phi_via_staging_slots(self):
        m = Module("t")
        f = Function("main", FunctionType(I64, (I64,)), ["x"])
        m.add_function(f)
        entry = f.new_block("entry")
        then = f.new_block("then")
        els = f.new_block("els")
        join = f.new_block("join")
        b = IRBuilder(entry)
        b.cond_br(b.icmp("sgt", f.arguments[0], ConstantInt(I64, 0)), then, els)
        IRBuilder(then).br(join)
        IRBuilder(els).br(join)
        phi = Phi(I64)
        join.append(phi)
        phi.add_incoming(ConstantInt(I64, 100), then)
        phi.add_incoming(ConstantInt(I64, 200), els)
        IRBuilder(join).ret(phi)
        assert run(m, args=[1])[0] == 100
        assert run(m, args=[0])[0] == 200

    def test_phi_swap_cycle(self):
        """Loop-carried phi pair that swaps each iteration (parallel copy)."""
        m = Module("t")
        f = Function("main", FunctionType(I64, (I64,)), ["n"])
        m.add_function(f)
        entry = f.new_block("entry")
        head = f.new_block("head")
        body = f.new_block("body")
        done = f.new_block("done")
        IRBuilder(entry).br(head)
        pa = Phi(I64, "a")
        pb = Phi(I64, "b")
        pi = Phi(I64, "i")
        head.append(pa)
        head.append(pb)
        head.append(pi)
        hb = IRBuilder(head)
        hb.cond_br(hb.icmp("slt", pi, f.arguments[0]), body, done)
        bb = IRBuilder(body)
        inext = bb.add(pi, ConstantInt(I64, 1))
        bb.br(head)
        pa.add_incoming(ConstantInt(I64, 1), entry)
        pb.add_incoming(ConstantInt(I64, 2), entry)
        pi.add_incoming(ConstantInt(I64, 0), entry)
        pa.add_incoming(pb, body)   # swap!
        pb.add_incoming(pa, body)
        pi.add_incoming(inext, body)
        db = IRBuilder(done)
        db.ret(db.binop("or", db.binop("shl", pa, ConstantInt(I64, 8)), pb))
        assert run(m, args=[0])[0] == (1 << 8) | 2
        assert run(m, args=[1])[0] == (2 << 8) | 1
        assert run(m, args=[2])[0] == (1 << 8) | 2

    def test_calls(self):
        m = Module("t")
        callee = Function("sq", FunctionType(I64, (I64,)), ["v"])
        m.add_function(callee)
        cb = IRBuilder(callee.new_block("entry"))
        cb.ret(cb.mul(callee.arguments[0], callee.arguments[0]))
        f = Function("main", FunctionType(I64, (I64,)), ["x"])
        m.add_function(f)
        b = IRBuilder(f.new_block("entry"))
        b.ret(b.call(callee, [b.add(f.arguments[0], ConstantInt(I64, 1))]))
        assert run(m, args=[5])[0] == 36

    def test_spill_pressure(self):
        """More than ten live values forces spilling; results must hold."""
        m, f, b = new_func(params=(I64,))
        x = f.arguments[0]
        vals = []
        for i in range(16):
            vals.append(b.add(x, ConstantInt(I64, i)))
        acc = vals[0]
        for v in vals[1:]:
            acc = b.add(acc, v)
        b.ret(acc)
        r, _ = run(m, args=[10])
        assert r == sum(10 + i for i in range(16))

    def test_many_call_args(self):
        m = Module("t")
        callee = Function(
            "f8", FunctionType(I64, tuple([I64] * 8)),
            [f"a{i}" for i in range(8)],
        )
        m.add_function(callee)
        cb = IRBuilder(callee.new_block("entry"))
        acc = callee.arguments[0]
        for i, a in enumerate(callee.arguments[1:], start=1):
            scaled = cb.mul(a, ConstantInt(I64, 10**i))
            acc = cb.add(acc, scaled)
        cb.ret(acc)
        f = Function("main", FunctionType(I64, ()))
        m.add_function(f)
        b = IRBuilder(f.new_block("entry"))
        args = [ConstantInt(I64, i + 1) for i in range(8)]
        b.ret(b.call(callee, args))
        assert run(m)[0] == 87654321


class TestRuntime:
    def test_spawn_join_through_backend(self):
        m = Module("t")
        worker = Function("worker", FunctionType(I64, (I64,)), ["t"])
        m.add_function(worker)
        wb = IRBuilder(worker.new_block("entry"))
        wb.ret(wb.mul(worker.arguments[0], ConstantInt(I64, 3)))
        f = Function("main", FunctionType(I64, ()))
        m.add_function(f)
        b = IRBuilder(f.new_block("entry"))
        spawn = m.declare_external("spawn", FunctionType(I64, (I64, I64)))
        join = m.declare_external("join", FunctionType(I64, (I64,)))
        tid = b.call(spawn, [b.ptrtoint(worker, I64), ConstantInt(I64, 14)])
        b.ret(b.call(join, [tid]))
        assert run(m)[0] == 42

    def test_cycle_accounting(self):
        m, f, b = new_func(params=())
        b.fence("sc")
        b.ret(ConstantInt(I64, 0))
        _, emu = run(m)
        from repro.arm.costs import cost_of

        assert sum(t.cycles for t in emu.threads) >= cost_of("dmb ish")
