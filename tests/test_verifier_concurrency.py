"""Verifier checks for the concurrency slice of LIR: fence kinds, memory
operation address/operand types, atomics, select arm agreement.

Constructors already validate most of these shapes, so the tests mutate
operands after construction — exactly what a buggy pass would do."""

import pytest

from repro.lir import (
    ConstantInt,
    Fence,
    Function,
    FunctionType,
    GlobalVariable,
    I64,
    IRBuilder,
    Module,
    ptr,
)
from repro.lir.verifier import VerificationError, verify_function, verify_module


def new_func(params=(), name="f"):
    m = Module("t")
    f = Function(name, FunctionType(I64, tuple(params)),
                 [f"a{i}" for i in range(len(params))])
    m.add_function(f)
    g = GlobalVariable("g", I64)
    m.globals["g"] = g
    return m, f, g, IRBuilder(f.new_block("entry"))


class TestFenceKinds:
    def test_known_kinds_accepted(self):
        m, f, g, b = new_func()
        b.fence("rm")
        b.fence("ww")
        b.fence("sc")
        b.ret(ConstantInt(I64, 0))
        verify_module(m)

    def test_constructor_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            Fence("acquire")

    def test_verifier_rejects_mutated_kind(self):
        m, f, g, b = new_func()
        fence = b.fence("sc")
        b.ret(ConstantInt(I64, 0))
        fence.kind = "release"   # a pass corrupting the kind in place
        with pytest.raises(VerificationError, match="unknown fence kind"):
            verify_function(f)


class TestMemoryAddressTypes:
    def test_load_address_must_be_pointer(self):
        m, f, g, b = new_func(params=(I64,))
        v = b.load(g, name="v")
        b.ret(v)
        v.operands[0] = f.arguments[0]   # i64 is not an address
        with pytest.raises(VerificationError, match="load address"):
            verify_function(f)

    def test_store_address_must_be_pointer(self):
        m, f, g, b = new_func(params=(I64,))
        st = b.store(ConstantInt(I64, 1), g)
        b.ret(ConstantInt(I64, 0))
        st.operands[1] = f.arguments[0]
        with pytest.raises(VerificationError, match="store address"):
            verify_function(f)

    def test_store_value_must_match_pointee(self):
        m, f, g, b = new_func()
        p32 = GlobalVariable("h", ptr(I64))
        m.globals["h"] = p32
        st = b.store(ConstantInt(I64, 1), g)
        b.ret(ConstantInt(I64, 0))
        st.operands[1] = p32             # now storing i64 into i64** slot
        with pytest.raises(VerificationError, match="store type mismatch"):
            verify_function(f)


class TestAtomics:
    def test_wellformed_rmw_accepted(self):
        m, f, g, b = new_func()
        old = b.atomicrmw("add", g, ConstantInt(I64, 1))
        b.ret(old)
        verify_module(m)

    def test_rmw_address_must_be_pointer(self):
        m, f, g, b = new_func(params=(I64,))
        old = b.atomicrmw("add", g, ConstantInt(I64, 1))
        b.ret(old)
        old.operands[0] = f.arguments[0]
        with pytest.raises(VerificationError, match="atomicrmw address"):
            verify_function(f)

    def test_rmw_value_must_match_pointee(self):
        m, f, g, b = new_func()
        holder = GlobalVariable("h", ptr(I64))
        m.globals["h"] = holder
        old = b.atomicrmw("add", g, ConstantInt(I64, 1))
        b.ret(old)
        old.operands[0] = holder         # i64 value vs i64* pointee
        with pytest.raises(VerificationError, match="atomicrmw operand type"):
            verify_function(f)

    def test_cmpxchg_address_must_be_pointer(self):
        m, f, g, b = new_func(params=(I64,))
        old = b.cmpxchg(g, ConstantInt(I64, 0), ConstantInt(I64, 1))
        b.ret(old)
        old.operands[0] = f.arguments[0]
        with pytest.raises(VerificationError, match="cmpxchg address"):
            verify_function(f)


class TestSelect:
    def test_matching_arms_accepted(self):
        m, f, g, b = new_func(params=(I64,))
        cond = b.icmp("eq", f.arguments[0], ConstantInt(I64, 0), "c")
        sel = b.select(cond, ConstantInt(I64, 1), ConstantInt(I64, 2), "s")
        b.ret(sel)
        verify_module(m)

    def test_mismatched_arms_rejected(self):
        m, f, g, b = new_func(params=(I64,))
        cond = b.icmp("eq", f.arguments[0], ConstantInt(I64, 0), "c")
        sel = b.select(cond, ConstantInt(I64, 1), ConstantInt(I64, 2), "s")
        b.ret(sel)
        sel.operands[2] = g              # i64 arm vs i64* arm
        with pytest.raises(VerificationError, match="select arms"):
            verify_function(f)
