"""Tests for the must-lockset dataflow (repro.analysis.sync), the
sync-refined delay-set tier, and the lock-based litmus enumeration gate."""

from repro.analysis.delayset import (
    check_litmus_elision,
    elide_redundant_fences,
)
from repro.analysis.sync import (
    ALL_LOCKS,
    CONSERVATIVE_LOCK_SUMMARY,
    LockSummary,
    compute_locksets,
    lock_key,
)
from repro.lir import (
    ConstantInt,
    ExternalFunction,
    Fence,
    Function,
    FunctionType,
    GlobalVariable,
    I64,
    IRBuilder,
    Module,
)
from repro.memmodel.litmus import (
    LOCK_LITMUS,
    MP_EARLY_UNLOCK,
    MP_LOCKED,
    MP_LOCKED_HALF,
    MP_TWO_LOCKS,
)

MUTEX_SIG = FunctionType(I64, (I64,))
M_KEY = ("lock", "m", 0)


def _mutex_module():
    """Module skeleton with a lock word ``m`` and data globals ``x, y``."""
    m = Module("t")
    for name in ("m", "x", "y"):
        m.add_global(GlobalVariable(name, I64))
    for ext in ("pthread_mutex_lock", "pthread_mutex_unlock"):
        m.externals[ext] = ExternalFunction(ext, MUTEX_SIG)
    return m


def _lock(b: IRBuilder, m: Module, g) -> None:
    b.call(m.externals["pthread_mutex_lock"], [b.ptrtoint(g, I64)])


def _unlock(b: IRBuilder, m: Module, g) -> None:
    b.call(m.externals["pthread_mutex_unlock"], [b.ptrtoint(g, I64)])


def _func(m: Module, name: str) -> Function:
    f = Function(name, FunctionType(I64, ()), [])
    m.add_function(f)
    return f


class TestLockKey:
    def test_global_through_casts(self):
        m = _mutex_module()
        f = _func(m, "f")
        b = IRBuilder(f.new_block("entry"))
        gm = m.globals["m"]
        addr = b.ptrtoint(gm, I64)
        back = b.inttoptr(addr, gm.type)
        b.ret(ConstantInt(I64, 0))
        assert lock_key(gm) == M_KEY
        assert lock_key(addr) == M_KEY
        assert lock_key(back) == M_KEY

    def test_unresolvable_is_none(self):
        m = _mutex_module()
        f = _func(m, "f")
        b = IRBuilder(f.new_block("entry"))
        r = b.load(m.globals["x"])  # a loaded value is not a must-key
        b.ret(r)
        assert lock_key(r) is None
        assert lock_key(ConstantInt(I64, 64)) is None


class TestLocksetDataflow:
    def test_straight_line_critical_section(self):
        m = _mutex_module()
        f = _func(m, "f")
        b = IRBuilder(f.new_block("entry"))
        gm, gx = m.globals["m"], m.globals["x"]
        before = b.load(gx, name="before")
        _lock(b, m, gm)
        inside = b.load(gx, name="inside")
        _unlock(b, m, gm)
        after = b.load(gx, name="after")
        b.ret(after)
        ls = compute_locksets(m)
        assert ls.locks_for(before) == frozenset()
        assert ls.locks_for(inside) == frozenset({M_KEY})
        assert ls.locks_for(after) == frozenset()
        assert ls.locks_seen == {M_KEY}

    def test_lock_held_across_loop(self):
        # lock(m); while (x) { x = x - 1 }; unlock(m): the backedge join
        # must not lose the lock.
        m = _mutex_module()
        f = _func(m, "f")
        entry = f.new_block("entry")
        head = f.new_block("head")
        body = f.new_block("body")
        done = f.new_block("done")
        gm, gx = m.globals["m"], m.globals["x"]
        b = IRBuilder(entry)
        _lock(b, m, gm)
        b.br(head)
        b = IRBuilder(head)
        r = b.load(gx, name="r")
        cond = b.icmp("ne", r, ConstantInt(I64, 0), "c")
        b.cond_br(cond, body, done)
        b = IRBuilder(body)
        inner = b.load(gx, name="inner")
        b.store(b.sub(inner, ConstantInt(I64, 1), "d"), gx)
        b.br(head)
        b = IRBuilder(done)
        _unlock(b, m, gm)
        tail = b.load(gx, name="tail")
        b.ret(tail)
        ls = compute_locksets(m)
        assert ls.locks_for(r) == frozenset({M_KEY})
        assert ls.locks_for(inner) == frozenset({M_KEY})
        assert ls.locks_for(tail) == frozenset()

    def test_lock_per_iteration(self):
        # while (...) { lock(m); x; unlock(m) }: the head joins the
        # pre-loop (nothing held) and post-unlock (nothing held) states,
        # while the body access is protected.
        m = _mutex_module()
        f = _func(m, "f")
        head = f.new_block("head")
        body = f.new_block("body")
        done = f.new_block("done")
        gm, gx = m.globals["m"], m.globals["x"]
        b = IRBuilder(head)
        r = b.load(gx, name="r")
        cond = b.icmp("ne", r, ConstantInt(I64, 0), "c")
        b.cond_br(cond, body, done)
        b = IRBuilder(body)
        _lock(b, m, gm)
        inner = b.load(gx, name="inner")
        _unlock(b, m, gm)
        b.br(head)
        b = IRBuilder(done)
        b.ret(ConstantInt(I64, 0))
        ls = compute_locksets(m)
        assert ls.locks_for(r) == frozenset()
        assert ls.locks_for(inner) == frozenset({M_KEY})

    def test_early_unlock_path_kills_must(self):
        # lock(m); if (c) unlock(m); x: the merge point may not claim m.
        m = _mutex_module()
        f = _func(m, "f")
        entry = f.new_block("entry")
        early = f.new_block("early")
        merge = f.new_block("merge")
        gm, gx = m.globals["m"], m.globals["x"]
        b = IRBuilder(entry)
        _lock(b, m, gm)
        r = b.load(gx, name="r")
        cond = b.icmp("ne", r, ConstantInt(I64, 0), "c")
        b.cond_br(cond, early, merge)
        b = IRBuilder(early)
        _unlock(b, m, gm)
        b.br(merge)
        b = IRBuilder(merge)
        after = b.load(gx, name="after")
        b.ret(after)
        ls = compute_locksets(m)
        assert ls.locks_for(r) == frozenset({M_KEY})
        assert ls.locks_for(after) == frozenset()

    def test_irreducible_cfg_terminates_and_is_sound(self):
        # Classic irreducible shape: entry branches into the *middle* of
        # a two-block cycle (a <-> b).  The lock is taken on entry, so
        # both cycle blocks must still hold it at fixpoint.
        m = _mutex_module()
        f = _func(m, "f")
        entry = f.new_block("entry")
        a = f.new_block("a")
        bb = f.new_block("b")
        done = f.new_block("done")
        gm, gx = m.globals["m"], m.globals["x"]
        b = IRBuilder(entry)
        _lock(b, m, gm)
        r = b.load(gx, name="r")
        cond = b.icmp("ne", r, ConstantInt(I64, 0), "c")
        b.cond_br(cond, a, bb)
        b = IRBuilder(a)
        in_a = b.load(gx, name="in_a")
        ca = b.icmp("ne", in_a, ConstantInt(I64, 0), "ca")
        b.cond_br(ca, bb, done)
        b = IRBuilder(bb)
        in_b = b.load(gx, name="in_b")
        cb = b.icmp("ne", in_b, ConstantInt(I64, 1), "cb")
        b.cond_br(cb, a, done)
        b = IRBuilder(done)
        b.ret(ConstantInt(I64, 0))
        ls = compute_locksets(m)
        assert ls.locks_for(in_a) == frozenset({M_KEY})
        assert ls.locks_for(in_b) == frozenset({M_KEY})

    def test_interprocedural_summary_transfer(self):
        # helper() locks m and returns while holding it; section() calls
        # helper and accesses x: the summary must carry the acquisition.
        m = _mutex_module()
        helper = _func(m, "helper")
        section = _func(m, "section")
        gm, gx = m.globals["m"], m.globals["x"]
        b = IRBuilder(helper.new_block("entry"))
        _lock(b, m, gm)
        b.ret(ConstantInt(I64, 0))
        b = IRBuilder(section.new_block("entry"))
        b.call(helper, [])
        inside = b.load(gx, name="inside")
        b.ret(inside)
        ls = compute_locksets(m)
        assert ls.summaries["helper"].acquires == frozenset({M_KEY})
        assert ls.locks_for(inside) == frozenset({M_KEY})

    def test_recursive_scc_is_conservative(self):
        # rec() locks m and calls itself: the SCC summary must not claim
        # the lock, and a post-call access loses the caller's lockset.
        m = _mutex_module()
        rec = _func(m, "rec")
        caller = _func(m, "caller")
        gm, gx = m.globals["m"], m.globals["x"]
        b = IRBuilder(rec.new_block("entry"))
        _lock(b, m, gm)
        pre = b.load(gx, name="pre")
        b.call(rec, [])
        post = b.load(gx, name="post")
        b.ret(post)
        b = IRBuilder(caller.new_block("entry"))
        _lock(b, m, gm)
        b.call(rec, [])
        after = b.load(gx, name="after")
        b.ret(after)
        ls = compute_locksets(m)
        assert ls.summaries["rec"] is CONSERVATIVE_LOCK_SUMMARY
        # Inside the recursive function the intraprocedural facts hold...
        assert ls.locks_for(pre) == frozenset({M_KEY})
        # ...but after any call into the SCC nothing is provably held.
        assert ls.locks_for(post) == frozenset()
        assert ls.locks_for(after) == frozenset()

    def test_unknown_external_clears_locks(self):
        m = _mutex_module()
        m.externals["mystery"] = ExternalFunction(
            "mystery", FunctionType(I64, ()))
        f = _func(m, "f")
        b = IRBuilder(f.new_block("entry"))
        gm, gx = m.globals["m"], m.globals["x"]
        _lock(b, m, gm)
        b.call(m.externals["mystery"], [])
        after = b.load(gx, name="after")
        b.ret(after)
        ls = compute_locksets(m)
        assert ls.locks_for(after) == frozenset()

    def test_unresolvable_unlock_clears_everything(self):
        m = _mutex_module()
        f = _func(m, "f")
        b = IRBuilder(f.new_block("entry"))
        gm, gx = m.globals["m"], m.globals["x"]
        _lock(b, m, gm)
        # Unlock through a loaded (unresolvable) mutex address: it could
        # release any held lock.
        addr = b.load(gx, name="addr")
        b.call(m.externals["pthread_mutex_unlock"], [addr])
        after = b.load(gx, name="after")
        b.ret(after)
        ls = compute_locksets(m)
        assert ls.locks_for(after) == frozenset()


class TestLockSummaryAlgebra:
    def test_apply_delta(self):
        s = LockSummary(acquires=frozenset({("lock", "a", 0)}),
                        releases=frozenset({("lock", "b", 0)}))
        held = frozenset({("lock", "b", 0), ("lock", "c", 0)})
        assert s.apply(held) == frozenset(
            {("lock", "a", 0), ("lock", "c", 0)})

    def test_all_locks_release(self):
        s = LockSummary(acquires=frozenset({("lock", "a", 0)}),
                        releases=ALL_LOCKS)
        assert s.apply(frozenset({("lock", "b", 0)})) == frozenset(
            {("lock", "a", 0)})


def _locked_mp_module(lock_reader: bool = True):
    """MP across two thread roots with the writer (and optionally the
    reader) holding the same mutex, pre-fenced in the Fig. 8a shape."""
    from repro.fences import place_fences

    m = _mutex_module()
    gm, gx, gy = m.globals["m"], m.globals["x"], m.globals["y"]
    writer = _func(m, "writer")
    reader = _func(m, "reader")
    b = IRBuilder(writer.new_block("entry"))
    _lock(b, m, gm)
    b.store(ConstantInt(I64, 1), gx)
    b.store(ConstantInt(I64, 1), gy)
    _unlock(b, m, gm)
    b.ret(ConstantInt(I64, 0))
    b = IRBuilder(reader.new_block("entry"))
    if lock_reader:
        _lock(b, m, gm)
    r0 = b.load(gy, name="flag")
    r1 = b.load(gx, name="data")
    if lock_reader:
        _unlock(b, m, gm)
    b.ret(b.add(r0, r1, "s"))
    place_fences(m)
    return m


def _fences(m):
    return [i for f in m.functions.values() if not f.is_declaration
            for i in f.instructions() if isinstance(i, Fence)]


class TestModuleSyncElision:
    def test_locked_mp_elides_only_under_sync(self):
        base = _locked_mp_module()
        stats = elide_redundant_fences(base)
        assert stats.required == 2  # MP critical cycle without locksets
        synced = _locked_mp_module()
        stats = elide_redundant_fences(synced, sync=True)
        assert stats.required == 0
        assert stats.elided_sync == 2
        assert stats.sync
        assert stats.sync_dropped_conflicts > 0
        assert not _fences(synced)
        # The sync-tier decisions carry their tier for SARIF/remarks.
        tiers = {d.tier for d in stats.decisions if d.verdict == "redundant"}
        assert "sync" in tiers

    def test_half_locked_mp_keeps_fences(self):
        m = _locked_mp_module(lock_reader=False)
        stats = elide_redundant_fences(m, sync=True)
        assert stats.required == 2
        assert stats.elided_sync == 0
        assert len(_fences(m)) == 2


class TestLockLitmusGate:
    def test_locked_mp_elides_via_sync_and_is_sound(self):
        sound, result = check_litmus_elision(MP_LOCKED, sync=True)
        assert sound
        assert result.elided_sync_count == 2
        # Without the refinement the same fences are required.
        _, base = check_litmus_elision(MP_LOCKED, sync=False)
        assert base.elided_sync_count == 0
        assert base.required_count == 2

    def test_half_locked_mp_gets_no_sync_elision(self):
        sound, result = check_litmus_elision(MP_LOCKED_HALF, sync=True)
        assert sound
        assert result.elided_sync_count == 0
        assert result.required_count == 2

    def test_distinct_locks_get_no_sync_elision(self):
        sound, result = check_litmus_elision(MP_TWO_LOCKS, sync=True)
        assert sound
        assert result.elided_sync_count == 0
        assert result.required_count == 2

    def test_early_unlock_still_pairwise_protected(self):
        sound, result = check_litmus_elision(MP_EARLY_UNLOCK, sync=True)
        assert sound
        assert result.elided_sync_count == 2

    def test_whole_lock_corpus_is_sound(self):
        for program in LOCK_LITMUS:
            sound, _ = check_litmus_elision(program, sync=True)
            assert sound, f"{program.name}: sync elision is UNSOUND"
