"""Unit tests for the AArch64-subset emulator and cost model."""

import pytest

from repro.arm import (
    AImm,
    AInstr,
    ALabel,
    AMem,
    ArmEmuError,
    ArmEmulator,
    ArmFunction,
    ArmProgram,
    DReg,
    XReg,
    cost_of,
    fence_kind,
    is_fence,
)


def program_of(instrs, globals_=(), externals=()):
    p = ArmProgram()
    f = ArmFunction("main")
    for item in instrs:
        if isinstance(item, str):
            f.label(item)
        else:
            f.emit(item)
    p.add_function(f)
    for name, size, init in globals_:
        p.add_global(name, size, init)
    for name in externals:
        p.declare_external(name)
    return p


def run(instrs, **kw):
    emu = ArmEmulator(program_of(instrs, **kw))
    return emu.run(), emu


class TestALU:
    def test_basic_ops(self):
        r, _ = run([
            AInstr("mov", [XReg("x1"), AImm(10)]),
            AInstr("mov", [XReg("x2"), AImm(3)]),
            AInstr("mul", [XReg("x3"), XReg("x1"), XReg("x2")]),
            AInstr("sub", [XReg("x0"), XReg("x3"), AImm(4)]),
            AInstr("ret", []),
        ])
        assert r == 26

    def test_sdiv_by_zero_yields_zero(self):
        r, _ = run([
            AInstr("mov", [XReg("x1"), AImm(5)]),
            AInstr("mov", [XReg("x2"), AImm(0)]),
            AInstr("sdiv", [XReg("x0"), XReg("x1"), XReg("x2")]),
            AInstr("ret", []),
        ])
        assert r == 0

    def test_msub_remainder_idiom(self):
        r, _ = run([
            AInstr("mov", [XReg("x1"), AImm(17)]),
            AInstr("mov", [XReg("x2"), AImm(5)]),
            AInstr("sdiv", [XReg("x3"), XReg("x1"), XReg("x2")]),
            AInstr("msub", [XReg("x0"), XReg("x3"), XReg("x2"), XReg("x1")]),
            AInstr("ret", []),
        ])
        assert r == 2

    def test_xzr_reads_zero_ignores_writes(self):
        r, _ = run([
            AInstr("mov", [XReg("xzr"), AImm(99)]),
            AInstr("add", [XReg("x0"), XReg("xzr"), AImm(1)]),
            AInstr("ret", []),
        ])
        assert r == 1

    def test_csel(self):
        r, _ = run([
            AInstr("mov", [XReg("x1"), AImm(1)]),
            AInstr("cmp", [XReg("x1"), AImm(0)]),
            AInstr("mov", [XReg("x2"), AImm(10)]),
            AInstr("mov", [XReg("x3"), AImm(20)]),
            AInstr("csel", [XReg("x0"), XReg("x2"), XReg("x3"), ALabel("ne")]),
            AInstr("ret", []),
        ])
        assert r == 10


class TestMemoryAndBranches:
    def test_global_load_store(self):
        r, _ = run(
            [
                AInstr("adr", [XReg("x1"), ALabel("g")]),
                AInstr("mov", [XReg("x2"), AImm(42)]),
                AInstr("str", [XReg("x2"), AMem(base="x1")]),
                AInstr("ldr", [XReg("x0"), AMem(base="x1")]),
                AInstr("ret", []),
            ],
            globals_=[("g", 8, b"")],
        )
        assert r == 42

    def test_byte_access(self):
        r, _ = run(
            [
                AInstr("adr", [XReg("x1"), ALabel("g")]),
                AInstr("ldrb", [XReg("x0"), AMem(base="x1", offset_imm=1, width=8)]),
                AInstr("ret", []),
            ],
            globals_=[("g", 4, b"ab")],
        )
        assert r == ord("b")

    def test_loop_with_cbnz(self):
        r, _ = run([
            AInstr("mov", [XReg("x1"), AImm(5)]),
            AInstr("mov", [XReg("x0"), AImm(0)]),
            ".loop",
            AInstr("add", [XReg("x0"), XReg("x0"), XReg("x1")]),
            AInstr("sub", [XReg("x1"), XReg("x1"), AImm(1)]),
            AInstr("cbnz", [XReg("x1"), ALabel(".loop")]),
            AInstr("ret", []),
        ])
        assert r == 15

    def test_conditional_branches(self):
        r, _ = run([
            AInstr("mov", [XReg("x1"), AImm(-5)]),
            AInstr("cmp", [XReg("x1"), AImm(0)]),
            AInstr("b.lt", [ALabel(".neg")]),
            AInstr("mov", [XReg("x0"), AImm(1)]),
            AInstr("ret", []),
            ".neg",
            AInstr("mov", [XReg("x0"), AImm(2)]),
            AInstr("ret", []),
        ])
        assert r == 2

    def test_bl_and_ret_nesting(self):
        p = ArmProgram()
        callee = ArmFunction("double_it")
        callee.emit(AInstr("add", [XReg("x0"), XReg("x0"), XReg("x0")]))
        callee.emit(AInstr("ret", []))
        p.add_function(callee)
        main = ArmFunction("main")
        # save x30 around the call
        main.emit(AInstr("mov", [XReg("x9"), XReg("x30")]))
        main.emit(AInstr("mov", [XReg("x0"), AImm(21)]))
        main.emit(AInstr("bl", [ALabel("double_it")]))
        main.emit(AInstr("mov", [XReg("x30"), XReg("x9")]))
        main.emit(AInstr("ret", []))
        p.add_function(main)
        p.entry = "main"
        assert ArmEmulator(p).run() == 42

    def test_pc_escape_raises(self):
        with pytest.raises(ArmEmuError):
            run([AInstr("b", [ALabel(".nowhere")])])

    def test_udf_raises(self):
        with pytest.raises(ArmEmuError):
            run([AInstr("udf", [])])


class TestFloats:
    def test_fp_roundtrip(self):
        r, _ = run([
            AInstr("mov", [XReg("x1"), AImm(9)]),
            AInstr("scvtf", [DReg("d0"), XReg("x1")]),
            AInstr("fmov", [DReg("d1"), DReg("d0")]),
            AInstr("fmul", [DReg("d2"), DReg("d0"), DReg("d1")]),
            AInstr("fsqrt", [DReg("d3"), DReg("d2")]),
            AInstr("fcvtzs", [XReg("x0"), DReg("d3")]),
            AInstr("ret", []),
        ])
        assert r == 9

    def test_fcmp_and_cset(self):
        r, _ = run([
            AInstr("mov", [XReg("x1"), AImm(3)]),
            AInstr("scvtf", [DReg("d0"), XReg("x1")]),
            AInstr("mov", [XReg("x1"), AImm(4)]),
            AInstr("scvtf", [DReg("d1"), XReg("x1")]),
            AInstr("fcmp", [DReg("d0"), DReg("d1")]),
            AInstr("cset", [XReg("x0"), ALabel("mi")]),
            AInstr("ret", []),
        ])
        assert r == 1


class TestExclusives:
    def test_ldxr_stxr_success(self):
        r, _ = run(
            [
                AInstr("adr", [XReg("x1"), ALabel("g")]),
                AInstr("ldxr", [XReg("x2"), AMem(base="x1")]),
                AInstr("add", [XReg("x2"), XReg("x2"), AImm(5)]),
                AInstr("stxr", [XReg("x3"), XReg("x2"), AMem(base="x1")]),
                AInstr("ldr", [XReg("x0"), AMem(base="x1")]),
                AInstr("add", [XReg("x0"), XReg("x0"), XReg("x3")]),
                AInstr("ret", []),
            ],
            globals_=[("g", 8, (10).to_bytes(8, "little"))],
        )
        assert r == 15  # status 0 + value 15

    def test_stxr_without_monitor_fails(self):
        r, _ = run(
            [
                AInstr("adr", [XReg("x1"), ALabel("g")]),
                AInstr("mov", [XReg("x2"), AImm(7)]),
                AInstr("stxr", [XReg("x0"), XReg("x2"), AMem(base="x1")]),
                AInstr("ret", []),
            ],
            globals_=[("g", 8, b"")],
        )
        assert r == 1  # failure status


class TestCostModel:
    def test_barrier_costs_ordered(self):
        assert cost_of("dmb ish") > cost_of("dmb ishld")
        assert cost_of("dmb ishld") > cost_of("ldr")
        assert cost_of("ldr") > cost_of("add")

    def test_fence_helpers(self):
        dmb = AInstr("dmb ish", [])
        assert is_fence(dmb)
        assert fence_kind(dmb) == "ff"
        assert fence_kind(AInstr("dmb ishld", [])) == "ld"
        assert not is_fence(AInstr("add", [XReg("x0"), XReg("x0"), AImm(1)]))

    def test_fence_cycles_accounted(self):
        _, emu = run([
            AInstr("dmb ish", []),
            AInstr("dmb ishld", []),
            AInstr("mov", [XReg("x0"), AImm(0)]),
            AInstr("ret", []),
        ])
        t = emu.threads[0]
        assert t.fence_cycles == cost_of("dmb ish") + cost_of("dmb ishld")
        assert t.cycles > t.fence_cycles
