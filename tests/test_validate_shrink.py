"""Tests for the delta-debugging shrinker (`repro.validate.shrink`)."""

from unittest import mock

import repro.core.pipeline as pipeline
from repro.lir import Interpreter
from repro.lir.instructions import BinOp
from repro.minicc.frontend_lir import compile_to_lir
from repro.validate import make_divergence_predicate, run_oracle, shrink
from repro.validate.shrink import ShrinkStats

BLOATED = """
int g = 1;
int ga[8];
int unused_helper(int a, int b) {
  return a * b;
}
int main() {
  int a = 3;
  int b = 4;
  int c = 5;
  double d = 1.5;
  d = d * 2.0;
  ga[0] = a + b;
  ga[1] = c * 2;
  print_i(7);
  for (int i = 0; i < 3; i = i + 1) {
    g = g + i;
  }
  print_i(g);
  return g & 268435455;
}
"""


def _prints_seven(source: str) -> bool:
    try:
        interp = Interpreter(compile_to_lir(source))
        interp.max_steps = 1_000_000
        interp.run("main")
    except Exception:  # noqa: BLE001
        return False
    return "7" in interp.output


class TestShrinkBasics:
    def test_result_is_smaller_and_preserves_predicate(self):
        stats = ShrinkStats()
        reduced = shrink(BLOATED, _prints_seven, stats=stats)
        assert _prints_seven(reduced)
        assert len(reduced.splitlines()) <= len(BLOATED.strip().splitlines())
        assert "print_i(7)" in reduced.replace(" ", "").replace("print_i(7)",
                                                                "print_i(7)")
        assert "unused_helper" not in reduced
        assert stats.accepted > 0

    def test_failing_predicate_returns_input(self):
        assert shrink(BLOATED, lambda s: False) == BLOATED

    def test_shrink_is_deterministic(self):
        a = shrink(BLOATED, _prints_seven)
        b = shrink(BLOATED, _prints_seven)
        assert a == b

    def test_attempt_budget_respected(self):
        stats = ShrinkStats()
        shrink(BLOATED, _prints_seven, max_attempts=5, stats=stats)
        assert stats.attempts <= 5


class TestShrinkDivergence:
    """Acceptance: a deliberately broken pass is caught and shrunk to a
    small (≤15 line) mini-C reproducer that still witnesses the bug."""

    def test_broken_optimizer_shrinks_to_small_reproducer(self):
        real = pipeline.optimize_module

        def broken(module, *args, **kwargs):
            stats = real(module, *args, **kwargs)
            main = module.functions.get("main")
            if main is not None:
                for block in main.blocks:
                    for inst in block.instructions:
                        if isinstance(inst, BinOp) and inst.op == "add":
                            inst.op = "sub"
                            return stats
            return stats

        with mock.patch.object(pipeline, "optimize_module", broken):
            verdict = run_oracle(BLOATED)
            assert not verdict.ok and verdict.divergence.stage == "opt"
            predicate = make_divergence_predicate(verdict.signature)
            stats = ShrinkStats()
            reduced = shrink(BLOATED, predicate, max_attempts=250,
                             stats=stats)
            assert predicate(reduced)
            assert len(reduced.splitlines()) <= 15
            assert len(reduced.splitlines()) < len(
                BLOATED.strip().splitlines())
        # Outside the broken pipeline the reproducer is clean again.
        assert run_oracle(reduced).ok
