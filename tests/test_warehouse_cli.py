"""CLI tests for the warehouse surface: `repro warehouse`, `repro
diff`, `repro dash`, `repro ledger` — including the exit-code contract
CI relies on and byte-determinism of the emitted artifacts."""

import json

import pytest

import repro.cli as cli


def _summary(scale=1.0, digest="d0"):
    return {
        "ppopt": {
            "translate_seconds_total": 0.5 * scale,
            "arm_instructions_total": 100,
            "fences_total": 10,
            "fences_elided_total": 40,
            "fences_elided_beyond_walk_total": 8,
            "fences_elided_interproc_total": 6,
            "fences_elided_delayset_total": 4,
            "fences_elided_sync_total": 2,
            "fencecheck_violations_total": 0,
            "work": {"opt.visits": int(1000 * scale)},
            "work_digest": digest,
            "peak_rss_bytes": 1000,
        },
    }


@pytest.fixture
def artifact_root(tmp_path):
    """A directory with a two-run bench trajectory and a small ledger."""
    data = {
        "version": 8,
        "size": "tiny",
        "trajectory": [
            {"sha": "aaa1111", "timestamp": "2026-08-01T00:00:00+00:00",
             "size": "tiny", "dirty": False, "version": 8,
             "summary": _summary(1.0, "d0")},
            {"sha": "bbb2222", "timestamp": "2026-08-02T00:00:00+00:00",
             "size": "tiny", "dirty": False, "version": 8,
             "summary": _summary(2.0, "d1")},
        ],
        "programs": {
            "demo": {"ppopt": {
                "translate_seconds": 0.25,
                "work": {"opt.visits": 2000},
                "work_cells": [["gvn", "opt.visits", "@main", 2000]],
            }},
        },
        "loader": {},
    }
    (tmp_path / "BENCH_translate.json").write_text(json.dumps(data))
    ledger_dir = tmp_path / ".repro"
    ledger_dir.mkdir()
    lines = [
        {"timestamp": "2026-08-01T00:00:00+00:00", "sha": "aaa1111",
         "dirty": False, "command": "translate", "schema": 2,
         "config_digest": "c1", "rc": 0},
        {"timestamp": "2026-08-02T00:00:00+00:00", "sha": "bbb2222",
         "dirty": False, "command": "bench", "schema": 2,
         "config_digest": "c2", "rc": 3},
    ]
    (ledger_dir / "ledger.jsonl").write_text(
        "".join(json.dumps(e, sort_keys=True) + "\n" for e in lines))
    return tmp_path


def _base_args(root, db=":memory:"):
    return ["--db", db, "--root", str(root)]


class TestWarehouseCommand:
    def test_ingest_reports_row_counts(self, artifact_root, capsys):
        rc = cli.main(["warehouse", "ingest"]
                      + _base_args(artifact_root))
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 runs" in out and "2 ledger_entries" in out
        assert "schema v" in out

    def test_runs_lists_newest_first_with_selectors(self, artifact_root,
                                                    capsys):
        rc = cli.main(["warehouse", "runs"] + _base_args(artifact_root))
        assert rc == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines[1].startswith("@0") and "bbb2222" in lines[1]
        assert lines[2].startswith("@1") and "aaa1111" in lines[2]

    def test_on_disk_db_persists_between_invocations(self, artifact_root,
                                                     capsys):
        db = str(artifact_root / "w.sqlite")
        assert cli.main(["warehouse", "ingest"]
                        + _base_args(artifact_root, db)) == 0
        capsys.readouterr()
        # query without re-ingesting: the rows are already there
        assert cli.main(["warehouse", "runs", "--no-ingest"]
                        + _base_args(artifact_root, db)) == 0
        assert "bbb2222" in capsys.readouterr().out


class TestDiffCommand:
    def test_text_report_ranks_and_labels(self, artifact_root, capsys):
        rc = cli.main(["diff", "prev", "latest"]
                      + _base_args(artifact_root))
        assert rc == 0
        out = capsys.readouterr().out
        assert "aaa1111" in out and "bbb2222" in out
        assert "[work-change]" in out
        assert "opt.visits" in out
        assert "fence elisions per tier" in out

    def test_unresolvable_selector_exits_2(self, artifact_root, capsys):
        rc = cli.main(["diff", "nosuchsha", "latest"]
                      + _base_args(artifact_root))
        assert rc == 2
        assert "cannot resolve" in capsys.readouterr().err

    def test_empty_warehouse_exits_2(self, tmp_path, capsys):
        rc = cli.main(["diff", "prev", "latest"] + _base_args(tmp_path))
        assert rc == 2

    def test_json_output_is_valid_and_deterministic(self, artifact_root,
                                                    capsys):
        outputs = []
        for _ in range(2):
            rc = cli.main(["diff", "@1", "@0", "--json"]
                          + _base_args(artifact_root))
            assert rc == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]
        report = json.loads(outputs[0])
        assert report["run_a"]["sha"] == "aaa1111"
        assert report["times"]["ppopt"]["verdict"] == "work-change"

    def test_markdown_output(self, artifact_root, capsys):
        rc = cli.main(["diff", "prev", "latest", "--markdown"]
                      + _base_args(artifact_root))
        assert rc == 0
        out = capsys.readouterr().out
        assert out.startswith("## Diff:")
        assert "| ppopt |" in out


class TestDashCommand:
    def test_writes_self_contained_file(self, artifact_root, tmp_path,
                                        capsys):
        out_file = tmp_path / "dash.html"
        rc = cli.main(["dash", "--html", str(out_file)]
                      + _base_args(artifact_root))
        assert rc == 0
        html = out_file.read_text()
        assert html.startswith("<!doctype html>")
        assert "<svg" in html
        assert "<script" not in html and "https://" not in html

    def test_stdout_mode_and_byte_determinism(self, artifact_root,
                                              capsys):
        pages = []
        for _ in range(2):
            rc = cli.main(["dash"] + _base_args(artifact_root))
            assert rc == 0
            pages.append(capsys.readouterr().out)
        assert pages[0] == pages[1]
        assert "Per-program drill-down" in pages[0]

    def test_unwritable_target_exits_2(self, artifact_root, tmp_path,
                                       capsys):
        rc = cli.main(["dash", "--html",
                       str(tmp_path / "no-such-dir" / "dash.html")]
                      + _base_args(artifact_root))
        assert rc == 2


class TestLedgerCommand:
    def test_summary_counts_commands_and_failures(self, artifact_root,
                                                  capsys):
        rc = cli.main(["ledger", "--root", str(artifact_root)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 entries" in out and "1 non-zero exit(s)" in out
        assert "translate" in out and "bench" in out

    def test_tail_prints_json_lines(self, artifact_root, capsys):
        rc = cli.main(["ledger", "--root", str(artifact_root),
                       "--tail", "1"])
        assert rc == 0
        last = capsys.readouterr().out.splitlines()[-1]
        assert json.loads(last)["command"] == "bench"

    def test_gc_truncates(self, artifact_root, capsys):
        rc = cli.main(["ledger", "--root", str(artifact_root),
                       "--gc", "--keep", "1"])
        assert rc == 0
        assert "2 -> 1 entries" in capsys.readouterr().out
        from repro.profiler.ledger import read_ledger

        entries = read_ledger(artifact_root)
        assert len(entries) == 1 and entries[0]["command"] == "bench"

    def test_empty_ledger(self, tmp_path, capsys):
        rc = cli.main(["ledger", "--root", str(tmp_path)])
        assert rc == 0
        assert "no entries" in capsys.readouterr().out
