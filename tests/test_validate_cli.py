"""CLI and runner tests for `repro validate`."""

import json

import pytest

from repro.cli import main
from repro.validate import GenConfig, OracleOptions, RunnerOptions, run_corpus

REPORT_KEYS = {
    "version", "seed", "jobs", "requested", "programs_run",
    "corpus_replayed", "divergences", "stage_histogram", "kind_histogram",
    "crashes", "elapsed_seconds", "throughput_per_minute", "clean",
    "timing",
}

FAST_GEN = GenConfig(max_statements=3, max_functions=1, max_loop_iters=3)


class TestValidateCommand:
    def test_smoke_run_clean(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        report_path = tmp_path / "report.json"
        rc = main([
            "validate", "--seed", "0", "--count", "3", "--jobs", "1",
            "--corpus", str(corpus), "--report", str(report_path),
            "--no-native",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "3 programs" in out and "0 divergences" in out

        report = json.loads(report_path.read_text())
        assert set(report) == REPORT_KEYS
        assert report["version"] == 1
        assert report["programs_run"] == 3
        assert report["divergences"] == 0
        assert report["clean"] is True
        assert report["stage_histogram"] == {}
        assert report["requested"] == {"count": 3, "minutes": None}
        assert report["throughput_per_minute"] > 0
        # the default report is always written inside the corpus dir too
        assert json.loads((corpus / "report.json").read_text()) == report

    def test_corpus_persists_and_replays(self, tmp_path):
        corpus = tmp_path / "corpus"
        opts = RunnerOptions(seed=0, jobs=1, count=2, corpus_dir=str(corpus),
                             gen=FAST_GEN,
                             oracle=OracleOptions(include_native=False))
        first = run_corpus(opts)
        assert first["corpus_replayed"] == 0
        stored = list((corpus / "corpus").glob("*.c"))
        assert len(stored) == 2
        second = run_corpus(opts)
        assert second["corpus_replayed"] == 2
        assert second["programs_run"] == 4

    def test_minutes_budget_stops_early(self, tmp_path):
        opts = RunnerOptions(seed=0, jobs=1, count=None, minutes=0.02,
                             corpus_dir=str(tmp_path / "c"), gen=FAST_GEN,
                             oracle=OracleOptions(include_native=False))
        report = run_corpus(opts)
        assert report["requested"]["minutes"] == pytest.approx(0.02)
        assert 1 <= report["programs_run"] < 100


class TestSourceFileHandling:
    def test_translate_missing_file_exits_2(self, capsys):
        rc = main(["translate", "/nonexistent/prog.c", "--run"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "cannot read" in err and "Traceback" not in err

    def test_lift_missing_file_exits_2(self, capsys):
        rc = main(["lift", "/nonexistent/prog.c"])
        assert rc == 2
        assert "cannot read" in capsys.readouterr().err
