"""Mutation smoke tests: the validator must catch seeded miscompiles.

Each test plants one deliberate bug inside a named pass (via
``repro.analysis.tv.mutations.inject``), runs the full translation with
the validator attached, and asserts the verdict is ``refuted`` with the
right pass and function blame.  A validator that cannot fire on a known
miscompile proves nothing when it stays silent on real ones.
"""

import pytest

from repro.analysis.tv.mutations import MUTATIONS, inject
from repro.core import Lasagne

# Crafted so every mutation has an eligible site after its host pass:
# ``sel`` keeps a conditional branch (swap-branch-arms) whose join phi
# merges two values that both dominate both predecessors
# (swap-phi-operands), and ``main`` stores to a global (drop-store).
SRC = """
int g = 0;

int sel(int c) {
  int x = c + 7;
  int y = c - 3;
  int r;
  if (c > 0) { r = x; } else { r = y; }
  return r;
}

int main() {
  g = 1;
  g = g + sel(g) + sel(0 - 2);
  return g;
}
"""


def _build_with(mutation):
    # ppopt: pointer refinement must run first so the phi mem2reg builds
    # for ``r`` is the semantically meaningful one (in the unrefined
    # lifted IR the first eligible phi merges two equal slot loads and
    # swapping it is — correctly — proved harmless).
    _, pass_name = MUTATIONS[mutation]
    with inject(pass_name, mutation) as state:
        built = Lasagne(tv=True).build(SRC, "ppopt")
    return built.tv_report, pass_name, state["function"]


class TestMutationsRefuted:
    @pytest.mark.parametrize("mutation", sorted(MUTATIONS))
    def test_refuted_with_correct_blame(self, mutation):
        report, pass_name, mutated_function = _build_with(mutation)
        assert mutated_function is not None, \
            f"{mutation}: no eligible site found in the crafted program"
        refs = report.refutations()
        assert refs, f"{mutation}: miscompile not refuted"
        assert any(v.pass_name == pass_name
                   and v.function == mutated_function for v in refs), (
            f"{mutation}: wrong blame "
            f"{[(v.pass_name, v.function) for v in refs]}, "
            f"expected ({pass_name}, {mutated_function})")

    def test_refutation_carries_x86_provenance(self):
        report, _, _ = _build_with("drop-store")
        v = report.refutations()[0]
        assert v.blame.startswith("0x"), v.blame
        assert v.detail  # divergent sample + both term renderings

    def test_clean_build_has_no_refutations(self):
        """Control: the same program without a seeded bug verifies."""
        report = Lasagne(tv=True).build(SRC, "opt").tv_report
        assert report.refuted == 0

    def test_inject_restores_the_pass_table(self):
        from repro.opt import pass_manager

        original = pass_manager.FUNCTION_PASSES["dse"]
        with inject("dse", "drop-store"):
            assert pass_manager.FUNCTION_PASSES["dse"] is not original
        assert pass_manager.FUNCTION_PASSES["dse"] is original
