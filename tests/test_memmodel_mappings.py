"""Theorem 7.1/7.3/7.4 checks: the Fig. 8 mapping schemes are correct and
precise on the litmus battery (the executable stand-in for the Agda proofs)."""

import pytest

from repro.memmodel import (
    CoRR,
    CoWW,
    FIG10_LEFT_IR,
    FIG10_RIGHT_IR,
    Fence,
    LB,
    Ld,
    MP,
    Program,
    Rmw,
    SB,
    SB_FENCED_X86,
    St,
    check_ir_to_arm,
    check_mapping,
    check_x86_to_arm,
    check_x86_to_ir,
    has_outcome,
    map_ir_to_arm,
    map_x86_to_arm,
    map_x86_to_ir,
    outcomes,
    weaken_fences,
)

X86_BATTERY = [SB, MP, LB, CoRR, CoWW, SB_FENCED_X86]


class TestMappingShapes:
    def test_fig8a_shapes(self):
        mapped = map_x86_to_ir(MP)
        t1, t2 = mapped.threads
        # st → Fww;st ×2 ; ld → ld;Frm ×2
        assert [type(op).__name__ for op in t1] == ["Fence", "St", "Fence", "St"]
        assert all(op.kind == "ww" for op in t1 if isinstance(op, Fence))
        assert [type(op).__name__ for op in t2] == ["Ld", "Fence", "Ld", "Fence"]
        assert all(op.kind == "rm" for op in t2 if isinstance(op, Fence))

    def test_fig8a_mfence_to_fsc(self):
        mapped = map_x86_to_ir(SB_FENCED_X86)
        kinds = [
            op.kind for t in mapped.threads for op in t if isinstance(op, Fence)
        ]
        assert "sc" in kinds and "mfence" not in kinds

    def test_fig8b_rmw_gets_dmbff_pair(self):
        mapped = map_ir_to_arm(FIG10_LEFT_IR)
        t1 = mapped.threads[0]
        i = next(j for j, op in enumerate(t1) if isinstance(op, Rmw))
        assert isinstance(t1[i - 1], Fence) and t1[i - 1].kind == "ff"
        assert isinstance(t1[i + 1], Fence) and t1[i + 1].kind == "ff"

    def test_fig8b_fence_translation(self):
        src = Program([[Fence("rm"), Fence("ww"), Fence("sc")]])
        mapped = map_ir_to_arm(src)
        assert [op.kind for op in mapped.threads[0]] == ["ld", "st", "ff"]


class TestTheorem71:
    @pytest.mark.parametrize("program", X86_BATTERY, ids=lambda p: p.name)
    def test_x86_to_ir(self, program):
        assert check_x86_to_ir(program, compare="outcome")

    @pytest.mark.parametrize("program", X86_BATTERY, ids=lambda p: p.name)
    def test_ir_to_arm(self, program):
        ir = map_x86_to_ir(program)
        assert check_ir_to_arm(ir, compare="outcome")

    @pytest.mark.parametrize("program", X86_BATTERY, ids=lambda p: p.name)
    def test_x86_to_arm_composition(self, program):
        assert check_x86_to_arm(program, compare="outcome")

    def test_mapping_is_exact_on_mp(self):
        """For MP the mapped program admits *exactly* the x86 outcomes."""
        holds, src, tgt = check_mapping(
            MP, "x86", map_x86_to_arm(MP), "arm", compare="outcome"
        )
        assert holds and src == tgt

    def test_rmw_programs_map_correctly(self):
        assert check_ir_to_arm(FIG10_LEFT_IR, compare="outcome")
        assert check_ir_to_arm(FIG10_RIGHT_IR, compare="outcome")


class TestPrecision:
    """Definition 7.2: each fence in the mapping is necessary (weakening or
    dropping it admits an outcome the source forbids)."""

    def test_frm_necessary(self):
        mp_ir = map_x86_to_ir(MP)
        weak = weaken_fences(mp_ir, {"rm": None})
        assert has_outcome(outcomes(weak, "limm"), t2_a=1, t2_b=0)

    def test_fww_necessary(self):
        mp_ir = map_x86_to_ir(MP)
        weak = weaken_fences(mp_ir, {"ww": None})
        assert has_outcome(outcomes(weak, "limm"), t2_a=1, t2_b=0)

    def test_frm_cannot_be_weakened_to_fww(self):
        mp_ir = map_x86_to_ir(MP)
        weak = weaken_fences(mp_ir, {"rm": "ww"})
        assert has_outcome(outcomes(weak, "limm"), t2_a=1, t2_b=0)

    def test_fww_cannot_be_weakened_to_frm(self):
        mp_ir = map_x86_to_ir(MP)
        weak = weaken_fences(mp_ir, {"ww": "rm"})
        assert has_outcome(outcomes(weak, "limm"), t2_a=1, t2_b=0)

    def test_dmbld_necessary_on_arm(self):
        mp_arm = map_x86_to_arm(MP)
        weak = weaken_fences(mp_arm, {"ld": None})
        assert has_outcome(outcomes(weak, "arm"), t2_a=1, t2_b=0)

    def test_dmbst_necessary_on_arm(self):
        mp_arm = map_x86_to_arm(MP)
        weak = weaken_fences(mp_arm, {"st": None})
        assert has_outcome(outcomes(weak, "arm"), t2_a=1, t2_b=0)

    def test_dmbff_around_rmw_necessary_left(self):
        """Fig. 10 left: dropping the DMBFFs admits both CAS successes."""
        arm = map_ir_to_arm(FIG10_LEFT_IR)
        strong = outcomes(arm, "arm")
        weak = outcomes(weaken_fences(arm, {"ff": None}), "arm")
        assert not has_outcome(strong, t1_r=0, t2_r=0)
        assert has_outcome(weak, t1_r=0, t2_r=0)

    def test_dmbff_around_rmw_necessary_right(self):
        """Fig. 10 right: dropping the DMBFFs admits the SB outcome."""
        arm = map_ir_to_arm(FIG10_RIGHT_IR)
        strong = outcomes(arm, "arm")
        weak = outcomes(weaken_fences(arm, {"ff": None}), "arm")
        assert not has_outcome(strong, t1_a=0, t2_b=0)
        assert has_outcome(weak, t1_a=0, t2_b=0)

    def test_dmbff_cannot_weaken_to_dmbst(self):
        """Fig. 10 right with DMBST instead of DMBFF is incorrect."""
        arm = map_ir_to_arm(FIG10_RIGHT_IR)
        weak = weaken_fences(arm, {"ff": "st"})
        assert has_outcome(outcomes(weak, "arm"), t1_a=0, t2_b=0)


class TestMotivatingFigure2:
    def test_unfenced_translation_is_wrong(self):
        """Fig. 2: translating MP without fences (mctoll+LLVM style) allows
        an outcome the x86 source forbids — the paper's motivation."""
        naive_arm = Program(list(MP.threads), dict(MP.init), "MP-naive")
        x86_outcomes = outcomes(MP, "x86")
        arm_outcomes = outcomes(naive_arm, "arm")
        assert not arm_outcomes <= x86_outcomes
        assert has_outcome(arm_outcomes, t2_a=1, t2_b=0)
        assert not has_outcome(x86_outcomes, t2_a=1, t2_b=0)
