"""Tests for the mini-C lexer, parser and semantic analysis."""

import pytest

from repro.minicc import LexError, ParseError, SemaError, analyze, parse, tokenize
from repro.minicc.astnodes import Binary, CastExpr, CType, DOUBLE, INT, Unary


class TestLexer:
    def test_basic_tokens(self):
        toks = tokenize("int x = 42;")
        kinds = [t.kind for t in toks]
        assert kinds == ["keyword", "ident", "op", "int", "op", "eof"]

    def test_float_literals(self):
        toks = tokenize("1.5 2e3 .25")
        assert [t.kind for t in toks[:-1]] == ["float"] * 3

    def test_hex_literal(self):
        toks = tokenize("0xff")
        assert toks[0].kind == "int"
        assert int(toks[0].text, 0) == 255

    def test_comments_skipped(self):
        toks = tokenize("a // line\n/* block\nstill */ b")
        assert [t.text for t in toks[:-1]] == ["a", "b"]

    def test_string_and_char_literals(self):
        toks = tokenize('"a\\nb" \'x\' \'\\0\'')
        assert toks[0].kind == "string" and toks[0].text == "a\nb"
        assert toks[1].kind == "char" and toks[1].text == "x"
        assert toks[2].text == "\0"

    def test_two_char_operators(self):
        toks = tokenize("a <= b >> 2 && c")
        texts = [t.text for t in toks if t.kind == "op"]
        assert texts == ["<=", ">>", "&&"]

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"abc')

    def test_line_numbers(self):
        toks = tokenize("a\nb\n  c")
        assert [t.line for t in toks[:-1]] == [1, 2, 3]


class TestParser:
    def test_global_and_function(self):
        p = parse("int g = 1; int arr[4]; int main() { return g; }")
        assert len(p.globals) == 2
        assert p.globals[1].array_size == 4
        assert p.functions[0].name == "main"

    def test_precedence(self):
        p = parse("int main() { return 1 + 2 * 3; }")
        ret = p.functions[0].body.statements[0]
        expr = ret.value
        assert isinstance(expr, Binary) and expr.op == "+"
        assert isinstance(expr.rhs, Binary) and expr.rhs.op == "*"

    def test_unary_and_cast(self):
        p = parse("int main() { double d = (double)-3; return 0; }")
        decl = p.functions[0].body.statements[0]
        assert isinstance(decl.init, CastExpr)
        assert isinstance(decl.init.operand, Unary)

    def test_pointer_types(self):
        p = parse("int *f(double **p) { return 0; }")
        f = p.functions[0]
        assert f.ret_type == CType("int", 1)
        assert f.params[0].ctype == CType("double", 2)

    def test_for_loop_with_decl(self):
        p = parse("int main() { for (int i = 0; i < 3; i = i + 1) {} return 0; }")
        assert p.functions[0].body.statements[0].init is not None

    def test_if_else_chain(self):
        p = parse(
            "int main() { if (1) { return 1; } else if (2) { return 2; } "
            "else { return 3; } }"
        )
        stmt = p.functions[0].body.statements[0]
        assert stmt.otherwise is not None

    def test_missing_semicolon_raises(self):
        with pytest.raises(ParseError):
            parse("int main() { return 0 }")

    def test_assignment_target_validation(self):
        with pytest.raises(ParseError):
            parse("int main() { 1 = 2; return 0; }")


class TestSema:
    def test_implicit_int_to_double(self):
        p = parse("int main() { double d = 1; return 0; }")
        analyze(p)
        decl = p.functions[0].body.statements[0]
        assert isinstance(decl.init, CastExpr)
        assert decl.init.ctype == DOUBLE

    def test_char_promotes_in_arithmetic(self):
        p = parse("char c; int main() { int x = c + 1; return x; }")
        analyze(p)
        decl = p.functions[0].body.statements[0]
        assert decl.init.ctype == INT

    def test_pointer_arith_typed(self):
        p = parse("int a[4]; int main() { int *p = a + 1; return *p; }")
        analyze(p)
        decl = p.functions[0].body.statements[0]
        assert decl.init.ctype == CType("int", 1)

    def test_array_decays_to_pointer(self):
        p = parse("int a[4]; int *f() { return a; }")
        analyze(p)

    def test_undeclared_identifier_rejected(self):
        with pytest.raises(SemaError):
            analyze(parse("int main() { return nope; }"))

    def test_duplicate_local_rejected(self):
        with pytest.raises(SemaError):
            analyze(parse("int main() { int x; int x; return 0; }"))

    def test_shadowing_in_nested_scope_allowed(self):
        analyze(parse("int main() { int x = 1; { int x = 2; } return x; }"))

    def test_call_arity_checked(self):
        with pytest.raises(SemaError):
            analyze(parse("int f(int a) { return a; } int main() { return f(); }"))

    def test_call_argument_coerced(self):
        p = parse("double f(double d) { return d; } int main() { f(3); return 0; }")
        analyze(p)

    def test_spawn_requires_function_name(self):
        with pytest.raises(SemaError):
            analyze(parse("int main() { spawn(42, 0); return 0; }"))

    def test_spawn_accepts_function(self):
        analyze(parse(
            "int w(int t) { return t; } int main() { return spawn(w, 1); }"
        ))

    def test_break_outside_loop_rejected(self):
        with pytest.raises(SemaError):
            analyze(parse("int main() { break; return 0; }"))

    def test_deref_non_pointer_rejected(self):
        with pytest.raises(SemaError):
            analyze(parse("int main() { int x; return *x; }"))

    def test_string_literal_pooled(self):
        p = parse('int main() { char *s = "hey"; return s[0]; }')
        analyze(p)
        assert len(p.strings) == 1
        data = next(iter(p.strings.values()))
        assert data == b"hey\0"

    def test_condition_may_be_pointer(self):
        analyze(parse("int main() { char *p = malloc(4); if (p) {} return 0; }"))

    def test_void_variable_rejected(self):
        with pytest.raises(SemaError):
            analyze(parse("int main() { void v; return 0; }"))

    def test_modulo_requires_ints(self):
        with pytest.raises(SemaError):
            analyze(parse("int main() { double d = 1.0; return 3 % d; }"))
