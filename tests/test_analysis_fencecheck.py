"""Tests for the LIMM-mapping linter (repro.analysis.fencecheck)."""

from repro.analysis import check_function, check_module
from repro.lir import (
    ConstantInt,
    Function,
    FunctionType,
    GlobalVariable,
    I64,
    IRBuilder,
    Module,
)


def new_func(name="f"):
    m = Module("t")
    f = Function(name, FunctionType(I64, ()), [])
    m.add_function(f)
    g = GlobalVariable("g", I64)
    m.globals["g"] = g
    return m, f, g, IRBuilder(f.new_block("entry"))


class TestLoadObligation:
    def test_load_followed_by_frm_is_clean(self):
        m, f, g, b = new_func()
        v = b.load(g, name="v")
        b.fence("rm")
        b.ret(v)
        assert check_module(m) == []

    def test_load_followed_by_fsc_is_clean(self):
        m, f, g, b = new_func()
        v = b.load(g, name="v")
        b.fence("sc")
        b.ret(v)
        assert check_module(m) == []

    def test_unfenced_load_is_flagged(self):
        m, f, g, b = new_func()
        v = b.load(g, name="v")
        b.ret(v)
        diags = check_module(m)
        assert len(diags) == 1
        assert diags[0].kind == "missing-frm"
        assert diags[0].function == "f"
        assert diags[0].block == "entry"
        assert "load" in diags[0].instruction

    def test_fww_does_not_discharge_load(self):
        m, f, g, b = new_func()
        v = b.load(g, name="v")
        b.fence("ww")
        b.ret(v)
        assert [d.kind for d in check_module(m)] == ["missing-frm"]

    def test_memory_access_before_fence_is_flagged(self):
        """The fence must come before the NEXT access, not just anywhere."""
        m, f, g, b = new_func()
        v = b.load(g, name="v")
        b.store(ConstantInt(I64, 1), g)   # intervening access
        b.fence("sc")
        b.ret(v)
        kinds = [d.kind for d in check_module(m)]
        assert "missing-frm" in kinds

    def test_sc_load_needs_no_fence(self):
        m, f, g, b = new_func()
        v = b.load(g, ordering="sc", name="v")
        b.ret(v)
        assert check_module(m) == []

    def test_thread_local_load_exempt(self):
        m, f, g, b = new_func()
        a = b.alloca(I64, "a")
        v = b.load(a, name="v")
        b.ret(v)
        assert check_module(m) == []


class TestStoreObligation:
    def test_store_preceded_by_fww_is_clean(self):
        m, f, g, b = new_func()
        b.fence("ww")
        b.store(ConstantInt(I64, 1), g)
        b.ret(ConstantInt(I64, 0))
        assert check_module(m) == []

    def test_unfenced_store_is_flagged(self):
        m, f, g, b = new_func()
        b.store(ConstantInt(I64, 1), g)
        b.ret(ConstantInt(I64, 0))
        assert [d.kind for d in check_module(m)] == ["missing-fww"]

    def test_fence_on_wrong_side_is_flagged(self):
        m, f, g, b = new_func()
        b.store(ConstantInt(I64, 1), g)
        b.fence("ww")
        b.ret(ConstantInt(I64, 0))
        assert [d.kind for d in check_module(m)] == ["missing-fww"]

    def test_frm_does_not_discharge_store(self):
        m, f, g, b = new_func()
        b.fence("rm")
        b.store(ConstantInt(I64, 1), g)
        b.ret(ConstantInt(I64, 0))
        assert [d.kind for d in check_module(m)] == ["missing-fww"]


class TestCrossBlock:
    def test_fence_available_across_block_edge(self):
        """ld at the end of one block, Frm at the start of the next."""
        m, f, g, b = new_func()
        nxt = f.new_block("next")
        v = b.load(g, name="v")
        b.br(nxt)
        bn = IRBuilder(nxt)
        bn.fence("rm")
        bn.ret(v)
        assert check_module(m) == []

    def test_fence_on_only_one_successor_is_flagged(self):
        m = Module("t")
        f = Function("f", FunctionType(I64, (I64,)), ["x"])
        m.add_function(f)
        g = GlobalVariable("g", I64)
        m.globals["g"] = g
        entry = f.new_block("entry")
        yes = f.new_block("yes")
        no = f.new_block("no")
        b = IRBuilder(entry)
        v = b.load(g, name="v")
        cond = b.icmp("eq", f.arguments[0], ConstantInt(I64, 0), "c")
        b.cond_br(cond, yes, no)
        by = IRBuilder(yes)
        by.fence("rm")
        by.ret(v)
        IRBuilder(no).ret(v)              # no fence on this path
        assert [d.kind for d in check_module(m)] == ["missing-frm"]

    def test_store_fence_from_predecessor(self):
        m, f, g, b = new_func()
        nxt = f.new_block("next")
        b.fence("ww")
        b.br(nxt)
        bn = IRBuilder(nxt)
        bn.store(ConstantInt(I64, 1), g)
        bn.fence("rm")  # irrelevant kind, exercises the accumulate path
        bn.ret(ConstantInt(I64, 0))
        assert check_module(m) == []


class TestAtomics:
    def test_sc_rmw_is_clean(self):
        m, f, g, b = new_func()
        old = b.atomicrmw("add", g, ConstantInt(I64, 1), ordering="sc")
        b.ret(old)
        assert check_module(m) == []

    def test_non_sc_rmw_is_flagged(self):
        m, f, g, b = new_func()
        old = b.atomicrmw("add", g, ConstantInt(I64, 1), ordering="na")
        b.ret(old)
        diags = check_module(m)
        assert [d.kind for d in diags] == ["rmw-not-sc"]
        assert "atomicrmw" in diags[0].message


class TestMergingInteraction:
    def test_merged_sc_discharges_both_obligations(self):
        """After merging, one Fsc between a load and a store serves as the
        load's trailing and the store's leading fence."""
        m, f, g, b = new_func()
        v = b.load(g, name="v")
        b.fence("sc")
        b.store(v, g)
        b.ret(v)
        assert check_module(m) == []

    def test_declaration_is_skipped(self):
        m = Module("t")
        f = Function("d", FunctionType(I64, ()), [])
        m.add_function(f)
        assert check_function(f) == []
