"""Tests for SARIF 2.1.0 emission (repro.analysis.sarif) and the
``repro analyze ... --sarif`` CLI path."""

import json

from repro.analysis.delayset import FenceDecision
from repro.analysis.fencecheck import FenceDiag
from repro.analysis.sarif import (
    SARIF_VERSION,
    delayset_results,
    fencecheck_results,
    sarif_report,
    write_sarif,
)


def _diag():
    return FenceDiag(function="main", block="entry", index=3,
                     kind="missing-frm",
                     message="ldna of shared location not followed by Frm",
                     instruction="%v = load i64, ptr @g",
                     x86="0x401000: mov rax, [g]")


def _decision(verdict="redundant", kind="rm"):
    return FenceDecision(func="worker", block="loop", index=7, kind=kind,
                         verdict=verdict,
                         reason="covers no critical-cycle delay edge",
                         x86="0x401010: mov rbx, [h]")


class TestResultConversion:
    def test_fencecheck_result_shape(self):
        (res,) = fencecheck_results([_diag()], "demo.c")
        assert res["ruleId"] == "fencecheck/missing-frm"
        assert res["level"] == "error"
        assert "Frm" in res["message"]["text"]
        (loc,) = res["locations"]
        assert loc["physicalLocation"]["artifactLocation"]["uri"] == "demo.c"
        (logical,) = loc["logicalLocations"]
        assert logical["fullyQualifiedName"] == "main:entry:3"
        assert logical["decoratedName"].startswith("0x401000")

    def test_delayset_result_shape(self):
        (res,) = delayset_results([_decision()], "demo.c")
        assert res["ruleId"] == "delayset/redundant"
        assert res["level"] == "note"
        assert res["message"]["text"].startswith("Frm redundant")
        (loc,) = res["locations"]
        (logical,) = loc["logicalLocations"]
        assert logical["fullyQualifiedName"] == "worker:loop:7"

    def test_missing_provenance_omits_decorated_name(self):
        d = FenceDecision(func="f", block="b", index=0, kind="ww",
                          verdict="required", reason="delay edge")
        (res,) = delayset_results([d], "p.c")
        (logical,) = res["locations"][0]["logicalLocations"]
        assert "decoratedName" not in logical


class TestReportEnvelope:
    def test_report_is_valid_single_run_sarif(self):
        results = fencecheck_results([_diag()], "demo.c") + \
            delayset_results([_decision(), _decision("required", "ww")],
                             "demo.c")
        doc = sarif_report(results)
        assert doc["version"] == SARIF_VERSION
        assert "sarif-schema-2.1.0" in doc["$schema"]
        (run,) = doc["runs"]
        assert run["tool"]["driver"]["name"] == "repro"
        assert run["results"] == results
        # One rule per distinct ruleId, each with a short description.
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rule_ids == sorted({r["ruleId"] for r in results})
        assert all(r["shortDescription"]["text"]
                   for r in run["tool"]["driver"]["rules"])

    def test_empty_results_still_valid(self):
        doc = sarif_report([])
        assert doc["runs"][0]["results"] == []
        assert doc["runs"][0]["tool"]["driver"]["rules"] == []

    def test_write_sarif_round_trips(self, tmp_path):
        out = write_sarif(str(tmp_path / "out.sarif"),
                          delayset_results([_decision()], "p.c"))
        doc = json.loads(out.read_text())
        assert doc["version"] == SARIF_VERSION
        assert doc["runs"][0]["results"][0]["ruleId"] == "delayset/redundant"


DEMO = """
int g = 0;
int worker(int t) { atomic_add(&g, t + 1); return 0; }
int main() {
  int a = spawn(worker, 1);
  int b = spawn(worker, 2);
  join(a); join(b);
  return g;
}
"""


class TestCliSarif:
    def test_analyze_delayset_sarif_file(self, tmp_path, capsys):
        from repro.cli import main

        src = tmp_path / "demo.c"
        src.write_text(DEMO)
        sarif = tmp_path / "out.sarif"
        rc = main(["analyze", str(src), "--delay-sets", "--fencecheck",
                   "--sarif", str(sarif)])
        assert rc == 0
        err = capsys.readouterr().err
        assert "SARIF report" in err and str(sarif) in err
        doc = json.loads(sarif.read_text())
        results = doc["runs"][0]["results"]
        # Clean program: no fencecheck errors, only delay-set notes.
        assert results
        assert all(r["ruleId"].startswith("delayset/") for r in results)
        assert all(r["level"] == "note" for r in results)
        # Every result locates a real LIR position in the artifact.
        for r in results:
            (loc,) = r["locations"]
            assert loc["physicalLocation"]["artifactLocation"]["uri"] == \
                str(src)
            name = loc["logicalLocations"][0]["fullyQualifiedName"]
            func, block, index = name.rsplit(":", 2)
            assert func and block and int(index) >= 0

    def test_analyze_json_and_sarif_together(self, tmp_path, capsys):
        from repro.cli import main

        src = tmp_path / "demo.c"
        src.write_text(DEMO)
        sarif = tmp_path / "out.sarif"
        rc = main(["analyze", str(src), "--delay-sets", "--json",
                   "--sarif", str(sarif)])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        doc = json.loads(sarif.read_text())
        assert len(doc["runs"][0]["results"]) == \
            len(report["delayset"]["decisions"])
