"""Tests for the mini-C fuzz-program generator (`repro.validate.generator`)."""

import pytest

from repro.lir import Interpreter
from repro.minicc.codegen_x86 import compile_to_x86
from repro.minicc.frontend_lir import compile_to_lir
from repro.validate import GenConfig, ProgramGenerator, generate_program

SEEDS = list(range(25))


class TestDeterminism:
    @pytest.mark.parametrize("seed", [0, 1, 17, 123456, 2**31])
    def test_same_seed_same_program(self, seed):
        assert generate_program(seed) == generate_program(seed)

    def test_generator_sequence_is_reproducible(self):
        a = ProgramGenerator(42)
        b = ProgramGenerator(42)
        for _ in range(5):
            assert a.generate() == b.generate()

    def test_different_seeds_usually_differ(self):
        programs = {generate_program(seed) for seed in range(20)}
        assert len(programs) >= 18

    def test_config_changes_output(self):
        lean = GenConfig(arrays=False, pointers=False, doubles=False,
                         calls=False)
        assert generate_program(3) != generate_program(3, lean)


class TestWellFormedness:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_compiles_under_both_frontends(self, seed):
        source = generate_program(seed)
        assert compile_to_lir(source) is not None
        assert compile_to_x86(source) is not None

    @pytest.mark.parametrize("seed", SEEDS[:8])
    def test_terminates_under_reference_interpreter(self, seed):
        interp = Interpreter(compile_to_lir(generate_program(seed)))
        interp.max_steps = 2_000_000
        interp.run("main")  # must not raise (step budget = termination)

    def test_feature_gates_respected(self):
        lean = GenConfig(arrays=False, pointers=False, doubles=False,
                         calls=False, loops=False, branches=False,
                         prints=False)
        for seed in range(10):
            source = generate_program(seed, lean)
            assert "ga[" not in source
            assert "double" not in source and "print_f" not in source
            assert "for (" not in source and "while (" not in source
            assert "if (" not in source
            compile_to_lir(source)
            compile_to_x86(source)

    def test_threads_knob_produces_spawn_join(self):
        source = generate_program(0, GenConfig(threads=True))
        assert "spawn(worker" in source and "join(" in source
        assert "atomic_add(&tctr" in source
        compile_to_x86(source)

    def test_scaled_config(self):
        big = GenConfig().scaled(2.0)
        assert big.max_statements == 14
        small = GenConfig().scaled(0.01)
        assert small.max_statements == 1 and small.max_loop_iters == 1
