"""Round-trip tests: format_module → parse_module → semantically equal."""

import pytest

from repro.lir import Interpreter, format_module, verify_module
from repro.lir.parser import IRParseError, parse_module, parse_type
from repro.lir.types import ArrayType, F64, IntType, PointerType, VectorType


class TestTypeParsing:
    def test_scalars(self):
        for text, width in (("i1", 1), ("i8", 8), ("i64", 64)):
            t, rest = parse_type(text)
            assert t == IntType(width) and rest == ""

    def test_floats(self):
        assert parse_type("double")[0] == F64

    def test_pointers(self):
        t, _ = parse_type("i64**")
        assert t == PointerType(PointerType(IntType(64)))

    def test_aggregates(self):
        t, _ = parse_type("[4 x i8]*")
        assert t == PointerType(ArrayType(IntType(8), 4))
        t, _ = parse_type("<2 x double>")
        assert t == VectorType(F64, 2)

    def test_bad_type_raises(self):
        with pytest.raises(IRParseError):
            parse_type("j32")


def roundtrip(module):
    text = format_module(module)
    parsed = parse_module(text)
    verify_module(parsed)
    # A second print of the parsed module must be identical text.
    assert format_module(parsed) == text
    return parsed


class TestModuleRoundTrip:
    def test_simple_function(self):
        text = """
; module demo

@g = global i64 5

define i64 @main() {
entry:
  %v = load i64, i64* @g
  %s = add i64 %v, 37
  ret i64 %s
}
"""
        module = parse_module(text)
        verify_module(module)
        assert Interpreter(module).run("main") == 42
        roundtrip(module)

    def test_control_flow_and_phi(self):
        text = """
define i64 @main(i64 %x) {
entry:
  %c = icmp sgt i64 %x, 0
  br i1 %c, label %then, label %els

then:
  br label %join

els:
  br label %join

join:
  %r = phi i64 [ 10, %then ], [ 20, %els ]
  ret i64 %r
}
"""
        module = parse_module(text)
        verify_module(module)
        it = Interpreter(module)
        assert it.run("main", [5]) == 10
        assert Interpreter(module).run("main", [0]) == 20
        roundtrip(module)

    def test_forward_reference_in_phi(self):
        """A loop-carried phi references a value defined later in the text."""
        text = """
define i64 @main(i64 %n) {
entry:
  br label %head

head:
  %i = phi i64 [ 0, %entry ], [ %inext, %body ]
  %s = phi i64 [ 0, %entry ], [ %snext, %body ]
  %c = icmp slt i64 %i, %n
  br i1 %c, label %body, label %done

body:
  %snext = add i64 %s, %i
  %inext = add i64 %i, 1
  br label %head

done:
  ret i64 %s
}
"""
        module = parse_module(text)
        verify_module(module)
        assert Interpreter(module).run("main", [10]) == 45
        roundtrip(module)

    def test_memory_and_fences(self):
        text = """
@x = global i64 0

define i64 @main() {
entry:
  fence fww
  store i64 7, i64* @x
  %v = load i64, i64* @x
  fence frm
  %old = atomicrmw add i64* @x, i64 3 sc
  fence seq_cst
  %cur = cmpxchg i64* @x, i64 10, i64 99 sc
  %r1 = add i64 %v, %old
  %r2 = add i64 %r1, %cur
  ret i64 %r2
}
"""
        module = parse_module(text)
        verify_module(module)
        # v=7, old=7, cur=10 (cas succeeds reading 10)
        assert Interpreter(module).run("main") == 24
        roundtrip(module)

    def test_calls_and_externals(self):
        text = """
declare i64 @malloc(i64)

define i64 @helper(i64 %a, double %d) {
entry:
  %i = fptosi double %d to i64
  %s = add i64 %a, %i
  ret i64 %s
}

define i64 @main() {
entry:
  %p = call i64 @malloc(i64 16)
  %r = call i64 @helper(i64 2, double 3.5)
  ret i64 %r
}
"""
        module = parse_module(text)
        verify_module(module)
        assert Interpreter(module).run("main") == 5
        roundtrip(module)

    def test_gep_and_casts(self):
        text = """
@buf = global [16 x i8] zeroinitializer

define i64 @main() {
entry:
  %p8 = getelementptr [16 x i8], [16 x i8]* @buf, i64 0, i64 8
  %p = bitcast i8* %p8 to i64*
  store i64 1234, i64* %p
  %raw = ptrtoint i64* %p to i64
  %q = inttoptr i64 %raw to i64*
  %v = load i64, i64* %q
  ret i64 %v
}
"""
        module = parse_module(text)
        verify_module(module)
        assert Interpreter(module).run("main") == 1234
        roundtrip(module)


class TestWholePipelineRoundTrip:
    def test_lifted_module_roundtrips(self):
        """A real lifted + refined + fenced module survives print→parse."""
        from repro.fences import place_fences
        from repro.lifter import lift_program
        from repro.minicc import compile_to_x86
        from repro.refine import run_refinement
        from repro.x86 import X86Emulator

        src = """
        int g = 0;
        int main() {
          int acc = 0;
          for (int i = 0; i < 5; i = i + 1) { acc = acc + i; }
          g = acc;
          return g;
        }
        """
        obj = compile_to_x86(src)
        module = lift_program(obj)
        run_refinement(module)
        place_fences(module)
        expected = X86Emulator(obj).run()

        text = format_module(module)
        parsed = parse_module(text)
        verify_module(parsed)
        assert Interpreter(parsed).run("main") == expected
        assert format_module(parsed) == text

    def test_native_frontend_module_roundtrips(self):
        from repro.minicc.frontend_lir import compile_to_lir

        src = """
        double d = 1.5;
        int main() {
          double x = d * 4.0;
          if (x > 5.0) { return (int)x; }
          return 0;
        }
        """
        module = compile_to_lir(src)
        expected = Interpreter(module).run("main")
        parsed = roundtrip(module)
        assert Interpreter(parsed).run("main") == expected


class TestErrors:
    def test_undefined_value_rejected(self):
        text = """
define i64 @main() {
entry:
  %r = add i64 %nope, 1
  ret i64 %r
}
"""
        with pytest.raises(IRParseError):
            parse_module(text)

    def test_unknown_instruction_rejected(self):
        text = """
define i64 @main() {
entry:
  frobnicate i64 1
  ret i64 0
}
"""
        with pytest.raises(IRParseError):
            parse_module(text)
