"""Property tests for the TV term language (repro.analysis.tv.terms).

The central obligation: every algebraic rewrite the normalizing
TermBuilder performs must be *sound* — both sides agree on every
concrete input — and *convergent* — the normalizing builder interns
both sides to the same hash-consed node.  Soundness is checked by
exhaustive 4-bit concrete evaluation (no sampling gaps at this width),
convergence by pointer identity.
"""

import itertools

import pytest

from repro.analysis.tv.concrete import Oracle, evaluate
from repro.analysis.tv.terms import (
    ALGEBRAIC_RULES,
    TermBuilder,
    TermCapExceeded,
    contains_op,
    render,
)

BITS = 4
RULE_IDS = [r.name for r in ALGEBRAIC_RULES]


def _assignments(nvars):
    return itertools.product(range(1 << BITS), repeat=nvars)


@pytest.mark.parametrize("rule", ALGEBRAIC_RULES, ids=RULE_IDS)
class TestRuleProperties:
    def test_sound_on_all_4bit_inputs(self, rule):
        """lhs == rhs under *raw* construction, for every assignment."""
        raw = TermBuilder(simplify=False)
        xs = [raw.var(f"x{i}", BITS) for i in range(rule.nvars)]
        lhs = rule.lhs(raw, BITS, *xs)
        rhs = rule.rhs(raw, BITS, *xs)
        oracle = Oracle(0)
        for values in _assignments(rule.nvars):
            env = {f"x{i}": v for i, v in enumerate(values)}
            lval = evaluate(lhs, env, oracle)
            rval = evaluate(rhs, env, oracle)
            assert lval == rval, (
                f"{rule.name} diverges on {env}: "
                f"{render(lhs)}={lval} vs {render(rhs)}={rval}")

    def test_normalizing_builder_converges(self, rule):
        """Both sides intern to the same node under normalization."""
        b = TermBuilder()
        xs = [b.var(f"x{i}", BITS) for i in range(rule.nvars)]
        lhs = rule.lhs(b, BITS, *xs)
        rhs = rule.rhs(b, BITS, *xs)
        assert lhs is rhs, (
            f"{rule.name}: {render(lhs)} and {render(rhs)} "
            f"did not converge")


class TestHashConsing:
    def test_identical_constructions_share_nodes(self):
        b = TermBuilder()
        x = b.var("x", 64)
        t1 = b.binop("add", x, b.const(64, 7))
        t2 = b.binop("add", x, b.const(64, 7))
        assert t1 is t2

    def test_commutative_canonicalization(self):
        b = TermBuilder()
        x, y = b.var("x", 64), b.var("y", 64)
        assert b.binop("add", x, y) is b.binop("add", y, x)
        assert b.binop("mul", x, y) is b.binop("mul", y, x)
        # Non-commutative ops must NOT be reordered.
        assert b.binop("sub", x, y) is not b.binop("sub", y, x)

    def test_constant_folding(self):
        b = TermBuilder()
        t = b.binop("add", b.const(64, 40), b.const(64, 2))
        assert t.is_const and t.value == 42

    def test_memory_ops_never_simplified(self):
        """store/barrier nodes must survive even under normalization —
        memory ordering is what the validator exists to check."""
        b = TermBuilder()
        addr = b.var("stack:p", 64)
        m = b.store(b.mem0, addr, b.const(64, 0), "i64")
        m2 = b.store(m, addr, b.const(64, 0), "i64")
        assert m2.op == "store" and m2.args[0] is m
        bar = b.barrier(m2, "sc")
        assert bar.op == "barrier" and bar.attr == ("sc",)

    def test_term_cap(self):
        b = TermBuilder(cap=8)
        x = b.var("x", 64)
        with pytest.raises(TermCapExceeded):
            for i in range(64):
                x = b.binop("add", x, b.const(64, i + 1))

    def test_contains_op(self):
        b = TermBuilder()
        t = b.binop("add", b.var("x", 64), b.undef(64))
        assert contains_op(t, "undef")
        assert not contains_op(b.var("x", 64), "undef")

    def test_undef_interned_per_sort(self):
        """Undef is one interned wildcard per sort — sound here because
        a mismatch containing undef is downgraded to ``unknown`` before
        any concrete confirmation could treat it as a single value."""
        b = TermBuilder()
        assert b.undef(64) is b.undef(64)
        assert b.undef(64) is not b.undef(32)


class TestRefinementCriticalIdentities:
    def test_div_by_zero_stays_symbolic(self):
        """udiv by const 0 must not fold (it would hide a trap)."""
        b = TermBuilder()
        t = b.binop("udiv", b.const(64, 1), b.const(64, 0))
        assert not t.is_const

    def test_fence_chains_ordered(self):
        """effect chains encode order: rm;ww differs from ww;rm."""
        b = TermBuilder()
        a = b.effect(b.effect(b.eff0, "fence:rm"), "fence:ww")
        c = b.effect(b.effect(b.eff0, "fence:ww"), "fence:rm")
        assert a is not c
