"""Property-based fuzzing of the instruction translator.

Hypothesis generates random straight-line x86-64 register programs (heavy
on flag-setting ALU ops, setcc materialization and conditional branches);
the lifted LIR interpreted result must equal the x86 emulation, both before
and after the full optimization pipeline.  This hammers the lifter's flag
semantics (zf/sf/cf/of/pf), sub-register handling and condition lowering.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.lifter import lift_program
from repro.lir import Interpreter, verify_module
from repro.opt import optimize_module
from repro.x86 import (
    Assembler,
    AsmFunction,
    Imm,
    Instr,
    Label,
    Reg,
    X86Emulator,
)

# Scratch registers for generated programs (no rsp/rbp).
REGS = ["rax", "rcx", "rdx", "rbx", "rsi", "rdi", "r8", "r9", "r10", "r11"]

regs = st.sampled_from(REGS)
imm32 = st.integers(min_value=-(2**31), max_value=2**31 - 1)
small_imm = st.integers(min_value=-100, max_value=100)
CONDS = ["e", "ne", "l", "le", "g", "ge", "b", "be", "a", "ae", "s", "ns",
         "p", "np", "o", "no"]


@st.composite
def alu_block(draw):
    """A few ALU instructions followed by a setcc materialization."""
    out = []
    for _ in range(draw(st.integers(1, 4))):
        choice = draw(st.integers(0, 6))
        if choice == 0:
            mn = draw(st.sampled_from(["add", "sub", "and", "or", "xor"]))
            out.append(Instr(mn, [Reg(draw(regs)), Reg(draw(regs))]))
        elif choice == 1:
            mn = draw(st.sampled_from(["add", "sub", "and", "or", "xor",
                                       "cmp"]))
            out.append(Instr(mn, [Reg(draw(regs)), Imm(draw(imm32))]))
        elif choice == 2:
            out.append(Instr("imul", [Reg(draw(regs)), Reg(draw(regs))]))
        elif choice == 3:
            mn = draw(st.sampled_from(["shl", "shr", "sar"]))
            out.append(Instr(mn, [Reg(draw(regs)),
                                  Imm(draw(st.integers(0, 63)), 8)]))
        elif choice == 4:
            out.append(Instr(draw(st.sampled_from(["neg", "not"])),
                             [Reg(draw(regs))]))
        elif choice == 5:
            out.append(Instr("test", [Reg(draw(regs)), Reg(draw(regs))]))
        else:
            out.append(Instr("mov", [Reg(draw(regs)), Imm(draw(imm32))]))
    # Materialize a condition into rax's low byte and fold it in.
    cc = draw(st.sampled_from(CONDS))
    out.append(Instr(f"set{cc}", [Reg("al")]))
    out.append(Instr("movzx", [Reg("rax"), Reg("al")]))
    target = draw(regs)
    if target != "rax":
        out.append(Instr("add", [Reg("rax"), Reg(target)]))
    return out


@st.composite
def straightline_program(draw):
    instrs = []
    # Seed registers with known values.
    for reg in REGS:
        instrs.append(Instr("mov", [Reg(reg), Imm(draw(small_imm))]))
    for _ in range(draw(st.integers(1, 3))):
        instrs.extend(draw(alu_block()))
    instrs.append(Instr("ret"))
    return instrs


@st.composite
def branchy_program(draw):
    """A diamond: flags decide which side updates rax."""
    instrs = []
    for reg in REGS[:4]:
        instrs.append(Instr("mov", [Reg(reg), Imm(draw(small_imm))]))
    instrs.append(Instr("cmp", [Reg(draw(regs)), Imm(draw(small_imm))]))
    cc = draw(st.sampled_from(CONDS))
    instrs.append(Instr(f"j{cc}", [Label(".taken")]))
    instrs.extend(draw(alu_block()))
    instrs.append(Instr("jmp", [Label(".done")]))
    instrs.append(".taken")
    instrs.extend(draw(alu_block()))
    instrs.append(".done")
    instrs.append(Instr("ret"))
    return instrs


def _build(instrs):
    asm = Assembler()
    f = AsmFunction("main")
    for item in instrs:
        if isinstance(item, str):
            f.label(item)
        else:
            f.emit(item)
    asm.add_function(f)
    return asm.link("main")


def _check(instrs):
    obj = _build(instrs)
    expected = X86Emulator(obj).run()
    module = lift_program(obj)
    verify_module(module)
    got = Interpreter(module).run("main")
    assert got == expected, (got, expected)
    optimize_module(module)
    verify_module(module)
    got_opt = Interpreter(module).run("main")
    assert got_opt == expected, (got_opt, expected)


@given(straightline_program())
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
def test_straightline_flag_semantics(instrs):
    _check(instrs)


@given(branchy_program())
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
def test_conditional_branches(instrs):
    _check(instrs)


REGS32 = ["eax", "ecx", "edx", "ebx", "esi", "edi", "r8d", "r9d"]
regs32 = st.sampled_from(REGS32)


@st.composite
def mixed_width_program(draw):
    """64-bit seeds, then interleaved 32-bit and 64-bit ALU ops."""
    instrs = []
    for reg in REGS:
        instrs.append(Instr("mov", [Reg(reg), Imm(draw(imm32))]))
    for _ in range(draw(st.integers(2, 8))):
        if draw(st.booleans()):
            mn = draw(st.sampled_from(["add", "sub", "and", "or", "xor",
                                       "cmp"]))
            instrs.append(Instr(mn, [Reg(draw(regs32)), Reg(draw(regs32))]))
        else:
            mn = draw(st.sampled_from(["add", "sub", "xor"]))
            instrs.append(Instr(mn, [Reg(draw(regs)), Reg(draw(regs))]))
        cc = draw(st.sampled_from(CONDS))
        instrs.append(Instr(f"set{cc}", [Reg("al")]))
        instrs.append(Instr("movzx", [Reg("rax"), Reg("al")]))
        other = draw(regs)
        if other != "rax":
            instrs.append(Instr("add", [Reg("rax"), Reg(other)]))
    instrs.append(Instr("ret"))
    return instrs


@given(mixed_width_program())
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
def test_32bit_alu_flag_semantics(instrs):
    _check(instrs)


@given(straightline_program())
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
def test_lazy_flag_lifting_matches(instrs):
    """The lazy-flag lifter computes exactly the flags consumers need."""
    obj = _build(instrs)
    expected = X86Emulator(obj).run()
    module = lift_program(obj, lazy_flags=True)
    verify_module(module)
    assert Interpreter(module).run("main") == expected


@given(branchy_program())
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
def test_lazy_flags_across_branches(instrs):
    obj = _build(instrs)
    expected = X86Emulator(obj).run()
    module = lift_program(obj, lazy_flags=True)
    verify_module(module)
    assert Interpreter(module).run("main") == expected
