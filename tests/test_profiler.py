"""Tests for repro.profiler: work counters, sampler, memory accounting,
the regression gate, the run ledger, and the CLI surface."""

import json
import threading
import time

import pytest

from repro.profiler import (
    EXIT_REGRESSION,
    SamplingProfiler,
    WorkCounters,
    accounting,
    check_regression,
    eligible_entries,
    stage_of,
    workcounters,
)
from repro.profiler.ledger import append_entry, ledger_path, read_ledger
from repro.profiler.memory import account, measure_peak
from repro.profiler.sampler import Profile, extract_stack


DEMO = """
int a[8];
int main() {
  int s = 0;
  for (int i = 0; i < 8; i = i + 1) { a[i] = i; s = s + a[i]; }
  return s;
}
"""


class TestWorkCounters:
    def test_add_and_aggregate(self):
        wc = WorkCounters()
        wc.add("opt", "opt.visits", "main", 10)
        wc.add("opt", "opt.visits", "helper", 5)
        wc.add("place", "place.fences", None, 2)
        assert wc.total() == 17
        assert wc.by_counter() == {"opt.visits": 15, "place.fences": 2}
        assert wc.by_stage()["opt"] == {"opt.visits": 15}
        assert wc.matrix("opt.visits") == {
            "opt": {"main": 10, "helper": 5}}

    def test_digest_is_order_independent(self):
        a, b = WorkCounters(), WorkCounters()
        a.add("s1", "c1", "f1", 3)
        a.add("s2", "c2", "f2", 4)
        b.add("s2", "c2", "f2", 4)
        b.add("s1", "c1", "f1", 3)
        assert a.digest() == b.digest()
        b.add("s1", "c1", "f1", 1)
        assert a.digest() != b.digest()

    def test_merge(self):
        a, b = WorkCounters(), WorkCounters()
        a.add("s", "c", "f", 1)
        b.add("s", "c", "f", 2)
        b.add("s", "c2", None, 5)
        a.merge(b)
        assert a.by_counter() == {"c": 3, "c2": 5}

    def test_work_is_noop_without_collector(self):
        assert workcounters.current() is None
        workcounters.work("anything", 99)  # must not raise
        assert workcounters.current() is None

    def test_collect_and_scopes(self):
        with workcounters.collect() as wc:
            workcounters.work("bare", 1)
            with workcounters.scope(stage="opt"):
                workcounters.work("opt.visits", 2)
                with workcounters.scope(function="main"):
                    workcounters.work("opt.visits", 3)
                workcounters.work("x", 1, function="override")
        assert workcounters.current() is None
        assert wc.by_counter() == {"bare": 1, "opt.visits": 5, "x": 1}
        assert wc.matrix("opt.visits")["opt"] == {
            "(module)": 2, "main": 3}
        assert wc.matrix("x")["opt"] == {"override": 1}

    def test_collect_restores_previous_collector(self):
        with workcounters.collect() as outer:
            workcounters.work("c", 1)
            with workcounters.collect() as inner:
                workcounters.work("c", 10)
            workcounters.work("c", 1)
        assert outer.by_counter() == {"c": 2}
        assert inner.by_counter() == {"c": 10}

    def test_scopes_are_thread_local(self):
        results = {}

        def worker():
            with workcounters.scope(stage="w", function="wf"):
                results["stack"] = True

        with workcounters.collect():
            with workcounters.scope(stage="main-stage"):
                t = threading.Thread(target=worker)
                t.start()
                t.join()
        assert results["stack"]


class TestPipelineDeterminism:
    def test_identical_builds_have_identical_digests(self):
        from repro.core import Lasagne
        from repro.minicc import compile_to_x86

        obj = compile_to_x86(DEMO, "main")
        lasagne = Lasagne(verify=False)
        digests = []
        for _ in range(2):
            with workcounters.collect() as wc:
                lasagne.translate(obj, "ppopt")
            digests.append(wc.digest())
        assert digests[0] == digests[1]
        with workcounters.collect() as wc:
            pass
        assert wc.digest() != digests[0]  # empty != populated

    def test_build_populates_known_counters(self):
        from repro.core import Lasagne

        with workcounters.collect() as wc:
            Lasagne(verify=False).build(DEMO, "ppopt")
        counters = wc.by_counter()
        for name in ("opt.visits", "opt.iterations", "place.accesses",
                     "pointsto.rounds", "pointsto.transfers",
                     "codegen.instructions", "codegen.intervals"):
            assert counters.get(name, 0) > 0, name

    def test_regalloc_is_deterministic(self):
        # Spill-pressure codegen must not tie-break on id(): same IR in,
        # same Arm out, every run.
        from repro.core import Lasagne

        src = """
int main() {
  int a = 1; int b = 2; int c = 3; int d = 4; int e = 5;
  int f = 6; int g = 7; int h = 8; int i = 9; int j = 10;
  int k = a+b; int l = c+d; int m = e+f; int n = g+h; int o = i+j;
  int p = k+l+m+n+o;
  return p + a + b + c + d + e + f + g + h + i + j;
}
"""
        lasagne = Lasagne(verify=False)
        dumps = {lasagne.build(src, "opt").program.dump() for _ in range(3)}
        assert len(dumps) == 1


class TestSampler:
    def test_samples_busy_thread(self):
        prof = SamplingProfiler(hz=997.0)

        def busy(deadline):
            while time.perf_counter() < deadline:
                sum(range(200))

        with prof:
            busy(time.perf_counter() + 0.15)
        profile = prof.profile
        assert profile.total > 0
        assert profile.duration > 0.1
        collapsed = profile.collapsed()
        assert collapsed.strip()
        # Every line is "frame;frame;... count".
        for line in collapsed.splitlines():
            stack, n = line.rsplit(" ", 1)
            assert int(n) > 0 and stack

    def test_stage_of(self):
        assert stage_of(("m:f", "repro.opt.gvn:run_gvn")) == "opt"
        assert stage_of(("repro.fences.placement:place_fences",
                        "json:dumps")) == "place"
        assert stage_of(("repro.core.pipeline:build",)) == "pipeline"
        assert stage_of(("os:getcwd",)) == "other"
        assert stage_of(()) == "other"

    def test_extract_stack_labels(self):
        frame = None

        def capture():
            nonlocal frame
            import sys
            frame = sys._current_frames()[threading.get_ident()]

        capture()
        stack = extract_stack(frame)
        assert any(label.endswith(":capture") for label in stack)

    def test_profile_exports(self):
        profile = Profile(hz=100.0)
        profile.samples[("a:f", "repro.opt.gvn:g")] = 3
        profile.samples[("a:f",)] = 1
        profile.total = 4
        shares = profile.stage_shares()
        assert shares["opt"] == 0.75
        assert shares["other"] == 0.25
        assert profile.known_stage_pct() == 75.0
        top = profile.top_frames(5)
        assert top[0][0] == "repro.opt.gvn:g"
        doc = profile.to_dict()
        json.dumps(doc)
        assert doc["samples"] == 4

    def test_double_start_raises(self):
        prof = SamplingProfiler(hz=100.0)
        with prof:
            with pytest.raises(RuntimeError):
                prof.start()
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)


class TestMemoryAccounting:
    def test_account_is_noop_when_off(self):
        with account("stage") as row:
            assert row is None

    def test_accounting_records_stage_peaks(self):
        with accounting() as acct:
            with account("alloc") as row:
                blob = bytearray(512 * 1024)
            del blob
            with account("alloc"):
                pass
        stage = acct.stages["alloc"]
        assert stage.peak_bytes >= 512 * 1024
        assert stage.calls == 2
        assert row.peak_bytes == stage.peak_bytes
        assert acct.peak_bytes() == stage.peak_bytes
        doc = acct.to_dict()
        assert doc["alloc"]["calls"] == 2

    def test_measure_peak(self):
        result, peak = measure_peak(lambda n: bytes(n), 256 * 1024)
        assert len(result) == 256 * 1024
        assert peak >= 256 * 1024

    def test_pipeline_stages_annotated(self):
        from repro import telemetry
        from repro.core import Lasagne

        with telemetry.session() as tel:
            with accounting():
                Lasagne(verify=False).build(DEMO, "opt")
        stage_spans = [s for s in tel.tracer.walk()
                       if s.category == "stage"]
        assert stage_spans
        annotated = [s for s in stage_spans
                     if "mem_peak_bytes" in s.attrs]
        assert annotated, "no stage span carries memory annotations"
        for span in annotated:
            assert span.attrs["mem_peak_bytes"] >= 0


def _entry(sha, seconds, work=None, dirty=False, size="tiny",
           arm=1000, fences=50):
    summary = {"opt": {
        "translate_seconds_total": seconds,
        "arm_instructions_total": arm,
        "fences_total": fences,
    }}
    if work is not None:
        summary["opt"]["work"] = dict(work)
    return {"sha": sha, "size": size, "dirty": dirty, "summary": summary}


def _summary(seconds, work=None, arm=1000, fences=50):
    row = {
        "translate_seconds_total": seconds,
        "arm_instructions_total": arm,
        "fences_total": fences,
    }
    if work is not None:
        row["work"] = dict(work)
    return {"opt": row}


class TestRegressionGate:
    def test_no_baseline_is_ok(self):
        report = check_regression(_summary(1.0), [])
        assert report.ok
        assert any("no eligible" in n for n in report.notes)

    def test_dirty_entries_are_ignored(self):
        trajectory = [_entry("aaa", 1.0),
                      _entry("bbb", 0.1, dirty=True)]
        notes: list[str] = []
        entries = eligible_entries(trajectory, "tiny", notes=notes)
        assert [e["sha"] for e in entries] == ["aaa"]
        assert any("dirty" in n for n in notes)

    def test_time_regression_flagged(self):
        trajectory = [_entry(s, 1.0) for s in ("a", "b", "c")]
        report = check_regression(_summary(3.0), trajectory)
        assert not report.ok
        finding, = report.findings
        assert finding.kind == "time"
        assert finding.metric == "translate_seconds_total"
        assert finding.ratio == pytest.approx(3.0)
        assert "REGRESSION" in report.format()

    def test_small_drift_passes(self):
        trajectory = [_entry(s, 1.0) for s in ("a", "b", "c")]
        assert check_regression(_summary(1.1), trajectory).ok

    def test_mad_widens_noisy_gate(self):
        # Noisy history: median 1.0, MAD 0.4 -> gate 1 + 3*0.4 = 2.2x.
        trajectory = [_entry("a", 0.6), _entry("b", 1.0),
                      _entry("c", 1.4)]
        assert check_regression(_summary(2.0), trajectory).ok
        report = check_regression(_summary(2.5), trajectory)
        assert not report.ok

    def test_work_blowup_flagged_when_sizes_stable(self):
        work = {"opt.visits": 1000}
        trajectory = [_entry(s, 1.0, work=work) for s in ("a", "b")]
        report = check_regression(
            _summary(1.0, work={"opt.visits": 2500}), trajectory)
        assert not report.ok
        finding, = report.findings
        assert finding.kind == "work"
        assert finding.metric == "opt.visits"
        assert not report.work_identical
        assert report.work_deltas["opt"]["opt.visits"] == (1000.0, 2500.0)

    def test_work_gate_skipped_when_sizes_moved(self):
        work = {"opt.visits": 1000}
        trajectory = [_entry(s, 1.0, work=work) for s in ("a", "b")]
        report = check_regression(
            _summary(1.0, work={"opt.visits": 2500}, arm=2000), trajectory)
        assert report.ok
        assert any("sizes moved" in n for n in report.notes)

    def test_identical_work_reports_zero_deltas(self):
        work = {"opt.visits": 1000, "place.fences": 7}
        trajectory = [_entry(s, 1.0, work=work) for s in ("a", "b")]
        report = check_regression(_summary(1.0, work=work), trajectory)
        assert report.ok
        assert report.work_identical
        assert "zero deltas" in report.format()

    def test_baseline_predating_v6_noted(self):
        trajectory = [_entry("old", 1.0)]  # no work dict
        report = check_regression(
            _summary(1.0, work={"opt.visits": 10}), trajectory)
        assert report.ok
        assert any("schema < 6" in n for n in report.notes)

    def test_ref_selects_specific_baseline(self):
        trajectory = [_entry("aaa111", 1.0), _entry("bbb222", 5.0)]
        # Against the slow commit the current run is fine...
        assert check_regression(_summary(2.0), trajectory,
                                ref="bbb").ok
        # ...against the fast one it is a 2x regression.
        assert not check_regression(_summary(2.0), trajectory,
                                    ref="aaa").ok

    def test_window_limits_baseline(self):
        trajectory = ([_entry("old", 9.0)]
                      + [_entry(f"n{i}", 1.0) for i in range(5)])
        report = check_regression(_summary(2.0), trajectory, window=5)
        assert "old" not in report.baseline_shas
        assert not report.ok


class TestLedger:
    @pytest.fixture(autouse=True)
    def _ledger_enabled(self, monkeypatch):
        # The suite itself may run under REPRO_LEDGER=0 (so its CLI
        # invocations don't pollute the repo ledger); these tests write
        # to tmp_path and need the switch back on.
        monkeypatch.delenv("REPRO_LEDGER", raising=False)

    def test_append_and_read(self, tmp_path):
        path = append_entry("translate", {"config": "ppopt", "rc": 0},
                            root=tmp_path)
        assert path == ledger_path(tmp_path)
        append_entry("bench", {"size": "tiny"}, root=tmp_path)
        entries = read_ledger(tmp_path)
        assert [e["command"] for e in entries] == ["translate", "bench"]
        assert entries[0]["config"] == "ppopt"
        for entry in entries:
            assert "timestamp" in entry and "sha" in entry
            assert isinstance(entry["dirty"], bool)

    def test_disabled_by_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER", "0")
        assert append_entry("x", {}, root=tmp_path) is None
        assert read_ledger(tmp_path) == []

    def test_bad_lines_skipped(self, tmp_path):
        append_entry("ok", {}, root=tmp_path)
        with ledger_path(tmp_path).open("a") as fh:
            fh.write("not json\n[1,2]\n")
        entries = read_ledger(tmp_path)
        assert [e["command"] for e in entries] == ["ok"]


class TestBenchTrajectory:
    def test_write_bench_dedupes_by_sha_and_size(self, tmp_path,
                                                 monkeypatch):
        from repro.telemetry import bench

        monkeypatch.setattr(bench, "git_sha", lambda: "abc123")
        monkeypatch.setattr(bench, "git_dirty", lambda: False)
        out = tmp_path / "B.json"
        report = {"version": 6, "size": "tiny", "summary": {"opt": {
            "translate_seconds_total": 1.0}}}
        bench.write_bench(report, str(out))
        report2 = dict(report)
        report2["summary"] = {"opt": {"translate_seconds_total": 2.0}}
        bench.write_bench(report2, str(out))
        doc = json.loads(out.read_text())
        assert len(doc["trajectory"]) == 1  # newest kept
        entry = doc["trajectory"][0]
        assert entry["summary"]["opt"]["translate_seconds_total"] == 2.0
        assert entry["dirty"] is False

    def test_dirty_entries_do_not_collapse_clean_ones(self, tmp_path,
                                                      monkeypatch):
        from repro.telemetry import bench

        monkeypatch.setattr(bench, "git_sha", lambda: "abc123")
        out = tmp_path / "B.json"
        report = {"version": 6, "size": "tiny", "summary": {}}
        monkeypatch.setattr(bench, "git_dirty", lambda: False)
        bench.write_bench(report, str(out))
        monkeypatch.setattr(bench, "git_dirty", lambda: True)
        bench.write_bench(report, str(out))
        doc = json.loads(out.read_text())
        assert [e["dirty"] for e in doc["trajectory"]] == [False, True]

    def test_different_sizes_kept(self, tmp_path, monkeypatch):
        from repro.telemetry import bench

        monkeypatch.setattr(bench, "git_sha", lambda: "abc123")
        monkeypatch.setattr(bench, "git_dirty", lambda: False)
        out = tmp_path / "B.json"
        bench.write_bench({"version": 6, "size": "tiny", "summary": {}},
                          str(out))
        bench.write_bench({"version": 6, "size": "small", "summary": {}},
                          str(out))
        doc = json.loads(out.read_text())
        assert [e["size"] for e in doc["trajectory"]] == ["tiny", "small"]


class TestProfileCli:
    def test_profile_command_end_to_end(self, tmp_path, monkeypatch,
                                        capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_LEDGER", "0")
        src = tmp_path / "p.c"
        src.write_text(DEMO)
        flame = tmp_path / "flame.txt"
        out_json = tmp_path / "profile.json"
        rc = main(["profile", str(src), "--min-seconds", "0.3",
                   "--sample-hz", "499",
                   "--flamegraph", str(flame),
                   "--json", str(out_json)])
        assert rc == 0
        captured = capsys.readouterr()
        assert "stage attribution" in captured.out
        assert "deterministic work counters" in captured.out
        # Non-empty collapsed stacks, >= 95% attributed to known stages.
        collapsed = flame.read_text()
        assert collapsed.strip()
        doc = json.loads(out_json.read_text())
        assert doc["profile"]["known_stage_pct"] >= 95.0
        assert doc["work"]

    def test_profile_writes_ledger(self, tmp_path, monkeypatch):
        from repro.cli import main

        monkeypatch.delenv("REPRO_LEDGER", raising=False)
        monkeypatch.chdir(tmp_path)
        src = tmp_path / "p.c"
        src.write_text(DEMO)
        rc = main(["profile", str(src), "--min-seconds", "0.05",
                   "--config", "opt"])
        assert rc == 0
        entries = read_ledger(tmp_path)
        assert [e["command"] for e in entries] == ["profile"]
        assert entries[0]["work_digest"]


class TestBenchCompareCli:
    def _fake_summary(self, scale=1.0):
        return {"opt": {
            "translate_seconds_total": 1.0 * scale,
            "arm_instructions_total": 1000,
            "fences_total": 50,
            "fences_elided_total": 10,
            "fences_elided_beyond_walk_total": 1,
            "fencecheck_violations_total": 0,
            "work": {"opt.visits": int(1000 * scale)},
            "work_digest": "d",
            "peak_rss_bytes": 1,
        }}

    def _fake_report(self, scale=1.0):
        return {"version": 6, "size": "tiny", "repeats": 1,
                "configs": ["opt"], "programs": {}, "loader": {},
                "summary": self._fake_summary(scale),
                "profile_top": {}}

    def _seed_trajectory(self, out, summary):
        out.write_text(json.dumps({"trajectory": [
            {"sha": "base", "size": "tiny", "dirty": False,
             "summary": summary}]}))

    def test_synthetic_slowdown_exits_3(self, tmp_path, monkeypatch):
        import repro.cli as cli
        from repro.telemetry import bench

        monkeypatch.setenv("REPRO_LEDGER", "0")
        out = tmp_path / "B.json"
        self._seed_trajectory(out, self._fake_summary(1.0))
        # A 3x slowdown (and 3x work blowup) over the baseline.
        monkeypatch.setattr(bench, "run_bench",
                            lambda **kw: self._fake_report(3.0))
        rc = cli.main(["bench", "--compare", "--out", str(out)])
        assert rc == EXIT_REGRESSION

    def test_identical_run_passes_with_zero_deltas(self, tmp_path,
                                                   monkeypatch, capsys):
        import repro.cli as cli
        from repro.telemetry import bench

        monkeypatch.setenv("REPRO_LEDGER", "0")
        out = tmp_path / "B.json"
        self._seed_trajectory(out, self._fake_summary(1.0))
        monkeypatch.setattr(bench, "run_bench",
                            lambda **kw: self._fake_report(1.0))
        rc = cli.main(["bench", "--compare", "--out", str(out)])
        assert rc == 0
        assert "zero deltas" in capsys.readouterr().out

    def test_compare_without_baseline_passes(self, tmp_path, monkeypatch):
        import repro.cli as cli
        from repro.telemetry import bench

        monkeypatch.setenv("REPRO_LEDGER", "0")
        out = tmp_path / "B.json"
        monkeypatch.setattr(bench, "run_bench",
                            lambda **kw: self._fake_report(1.0))
        rc = cli.main(["bench", "--compare", "--out", str(out)])
        assert rc == 0
        # The run was still appended to the trajectory.
        doc = json.loads(out.read_text())
        assert len(doc["trajectory"]) == 1


class TestLedgerHardening:
    """Schema v2 hardening: version/digest stamps, rotation, gc."""

    @pytest.fixture(autouse=True)
    def _ledger_enabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_LEDGER", raising=False)

    def test_entries_carry_schema_and_config_digest(self, tmp_path):
        from repro.profiler.ledger import LEDGER_SCHEMA, config_digest

        append_entry("translate", {"rc": 0}, root=tmp_path,
                     config={"source": "a.c", "config": "ppopt"})
        entry, = read_ledger(tmp_path)
        assert entry["schema"] == LEDGER_SCHEMA
        assert entry["config_digest"] == config_digest(
            {"source": "a.c", "config": "ppopt"})

    def test_config_digest_is_canonical(self):
        from repro.profiler.ledger import config_digest

        assert config_digest({"a": 1, "b": 2}) == \
            config_digest({"b": 2, "a": 1})
        assert config_digest({"a": 1}) != config_digest({"a": 2})
        assert len(config_digest(None)) == 16

    def test_rotation_keeps_one_generation(self, tmp_path, monkeypatch):
        from repro.profiler.ledger import rotated_path

        monkeypatch.setenv("REPRO_LEDGER_MAX_BYTES", "300")
        for i in range(8):
            append_entry("translate", {"i": i}, root=tmp_path)
        assert rotated_path(tmp_path).exists()
        # both generations read back, oldest first, nothing duplicated
        entries = read_ledger(tmp_path)
        indices = [e["i"] for e in entries]
        assert indices == sorted(indices)
        assert len(indices) == len(set(indices))
        # live file stays under the cap (plus at most one entry)
        assert ledger_path(tmp_path).stat().st_size <= 600

    def test_gc_drops_rotation_and_truncates(self, tmp_path, monkeypatch):
        from repro.profiler.ledger import gc_ledger, rotated_path

        monkeypatch.setenv("REPRO_LEDGER_MAX_BYTES", "300")
        for i in range(8):
            append_entry("translate", {"i": i}, root=tmp_path)
        assert rotated_path(tmp_path).exists()
        summary = gc_ledger(tmp_path, keep=2)
        assert not rotated_path(tmp_path).exists()
        assert summary["entries_after"] == 2
        assert summary["bytes_reclaimed"] > 0
        entries = read_ledger(tmp_path)
        assert [e["command"] for e in entries] == ["translate"] * 2


class TestWorkCounterCells:
    def test_cells_expose_the_full_matrix_sorted(self):
        with workcounters.collect() as wc:
            with workcounters.scope(stage="gvn", function="@main"):
                workcounters.work("opt.visits", 3)
            with workcounters.scope(stage="dce"):
                workcounters.work("opt.visits", 2)
        assert wc.cells() == [("dce", "opt.visits", "", 2),
                              ("gvn", "opt.visits", "@main", 3)]
        assert wc.to_dict()["cells"] == [["dce", "opt.visits", "", 2],
                                         ["gvn", "opt.visits", "@main", 3]]

    def test_profile_artifact_is_self_describing(self):
        from repro.profiler.attribution import (AttributionReport,
                                                report_to_dict)

        profile = Profile(hz=97.0)
        profile.samples[("f", "g")] += 1
        profile.total += 1
        with workcounters.collect() as wc:
            workcounters.work("opt.visits", 1)
        report = AttributionReport(source="a.c", config="ppopt",
                                   builds=1, profile=profile, counters=wc)
        artifact = report_to_dict(report)
        # the warehouse needs these to key and join the run
        assert isinstance(artifact["sha"], str) and artifact["sha"]
        assert isinstance(artifact["dirty"], bool)
        assert artifact["collapsed"] == profile.collapsed()
        assert artifact["work"]["cells"] == [["", "opt.visits", "", 1]]
