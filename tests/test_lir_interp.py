"""Tests for the LIR reference interpreter."""

import pytest

from repro.lir import (
    F64,
    I8,
    I64,
    ArrayType,
    ConstantFloat,
    ConstantInt,
    Function,
    FunctionType,
    GlobalVariable,
    Interpreter,
    InterpError,
    IRBuilder,
    Module,
    Phi,
    VOID,
    ptr,
)


def build(ret=I64, params=(), name="main"):
    m = Module("t")
    f = Function(name, FunctionType(ret, tuple(params)))
    m.add_function(f)
    bb = f.new_block("entry")
    return m, f, IRBuilder(bb)


def run(m, name="main", args=None):
    return Interpreter(m).run(name, args or [])


class TestArithmetic:
    def test_add_sub_mul(self):
        m, f, b = build(params=(I64, I64))
        x, y = f.arguments
        v = b.mul(b.add(x, y), b.sub(x, y))
        b.ret(v)
        assert run(m, args=[7, 3]) == 40

    def test_signed_division_truncates_toward_zero(self):
        m, f, b = build(params=(I64, I64))
        b.ret(b.binop("sdiv", *f.arguments))
        assert Interpreter(m).run("main", [-7, 2]) == -3

    def test_srem_sign_follows_dividend(self):
        m, f, b = build(params=(I64, I64))
        b.ret(b.binop("srem", *f.arguments))
        assert Interpreter(m).run("main", [(-7) & (2**64 - 1), 2]) == -1

    def test_division_by_zero_raises(self):
        m, f, b = build(params=(I64, I64))
        b.ret(b.binop("sdiv", *f.arguments))
        with pytest.raises(InterpError):
            run(m, args=[1, 0])

    def test_shifts(self):
        m, f, b = build(params=(I64,))
        x = f.arguments[0]
        v = b.binop("ashr", b.binop("shl", x, ConstantInt(I64, 4)),
                    ConstantInt(I64, 2))
        b.ret(v)
        assert run(m, args=[3]) == 12

    def test_float_ops(self):
        m, f, b = build(ret=F64)
        v = b.binop(
            "fdiv",
            b.binop("fmul", ConstantFloat(F64, 3.0), ConstantFloat(F64, 4.0)),
            ConstantFloat(F64, 2.0),
        )
        b.ret(v)
        assert run(m) == 6.0

    def test_icmp_signed_vs_unsigned(self):
        m, f, b = build(params=(I64, I64))
        x, y = f.arguments
        slt = b.icmp("slt", x, y)
        ult = b.icmp("ult", x, y)
        both = b.binop("shl", b.zext(slt, I64), ConstantInt(I64, 1))
        b.ret(b.binop("or", both, b.zext(ult, I64)))
        # -1 < 1 signed, but 0xFFF..F > 1 unsigned
        assert run(m, args=[(-1) & (2**64 - 1), 1]) == 0b10


class TestMemory:
    def test_alloca_load_store(self):
        m, f, b = build(params=(I64,))
        slot = b.alloca(I64)
        b.store(f.arguments[0], slot)
        b.ret(b.load(slot))
        assert run(m, args=[99]) == 99

    def test_gep_indexing(self):
        m, f, b = build()
        arr = b.alloca(ArrayType(I64, 4))
        base = b.bitcast(arr, ptr(I64))
        for i in range(4):
            p = b.gep(I64, base, [ConstantInt(I64, i)])
            b.store(ConstantInt(I64, i * 10), p)
        p2 = b.gep(I64, base, [ConstantInt(I64, 2)])
        b.ret(b.load(p2))
        assert run(m) == 20

    def test_two_index_gep(self):
        m, f, b = build()
        g = GlobalVariable("tbl", ArrayType(I64, 3), None)
        m.add_global(g)
        p = b.gep(ArrayType(I64, 3), g, [ConstantInt(I64, 0), ConstantInt(I64, 1)])
        b.store(ConstantInt(I64, 5), p)
        b.ret(b.load(p))
        assert run(m) == 5

    def test_global_initializer(self):
        m, f, b = build()
        m.add_global(GlobalVariable("g", I64, ConstantInt(I64, 123)))
        b.ret(b.load(m.globals["g"]))
        assert run(m) == 123

    def test_byte_global_initializer(self):
        m, f, b = build()
        m.add_global(GlobalVariable("s", ArrayType(I8, 3), b"ab\x00"))
        g = m.globals["s"]
        p = b.gep(ArrayType(I8, 3), g, [ConstantInt(I64, 0), ConstantInt(I64, 1)])
        b.ret(b.zext(b.load(p), I64))
        assert run(m) == ord("b")

    def test_atomicrmw_returns_old(self):
        m, f, b = build()
        slot = b.alloca(I64)
        b.store(ConstantInt(I64, 10), slot)
        old = b.atomicrmw("add", slot, ConstantInt(I64, 5))
        new = b.load(slot)
        b.ret(b.binop("or", b.binop("shl", new, ConstantInt(I64, 8)), old))
        assert run(m) == (15 << 8) | 10

    def test_cmpxchg_success_and_failure(self):
        m, f, b = build(params=(I64,))
        slot = b.alloca(I64)
        b.store(ConstantInt(I64, 1), slot)
        old = b.cmpxchg(slot, f.arguments[0], ConstantInt(I64, 7))
        final = b.load(slot)
        b.ret(b.binop("or", b.binop("shl", final, ConstantInt(I64, 8)), old))
        assert run(m, args=[1]) == (7 << 8) | 1   # success
        assert run(m, args=[2]) == (1 << 8) | 1   # failure leaves memory

    def test_out_of_range_access_raises(self):
        m, f, b = build()
        p = b.inttoptr(ConstantInt(I64, 2**40), ptr(I64))
        b.ret(b.load(p))
        with pytest.raises(InterpError):
            run(m)


class TestControlFlow:
    def test_branch_and_phi(self):
        m = Module("t")
        f = Function("main", FunctionType(I64, (I64,)))
        m.add_function(f)
        entry = f.new_block("entry")
        then = f.new_block("then")
        els = f.new_block("else")
        join = f.new_block("join")
        b = IRBuilder(entry)
        cond = b.icmp("sgt", f.arguments[0], ConstantInt(I64, 0))
        b.cond_br(cond, then, els)
        IRBuilder(then).br(join)
        IRBuilder(els).br(join)
        phi = Phi(I64)
        join.append(phi)
        phi.add_incoming(ConstantInt(I64, 111), then)
        phi.add_incoming(ConstantInt(I64, 222), els)
        IRBuilder(join).ret(phi)
        assert run(m, args=[5]) == 111
        assert run(m, args=[0]) == 222

    def test_loop_sums(self):
        m = Module("t")
        f = Function("main", FunctionType(I64, (I64,)))
        m.add_function(f)
        entry = f.new_block("entry")
        b = IRBuilder(entry)
        i_slot = b.alloca(I64)
        s_slot = b.alloca(I64)
        b.store(ConstantInt(I64, 0), i_slot)
        b.store(ConstantInt(I64, 0), s_slot)
        head = f.new_block("head")
        body = f.new_block("body")
        done = f.new_block("done")
        b.br(head)
        b.position_at_end(head)
        i = b.load(i_slot)
        b.cond_br(b.icmp("slt", i, f.arguments[0]), body, done)
        b.position_at_end(body)
        i2 = b.load(i_slot)
        s = b.load(s_slot)
        b.store(b.add(s, i2), s_slot)
        b.store(b.add(i2, ConstantInt(I64, 1)), i_slot)
        b.br(head)
        b.position_at_end(done)
        b.ret(b.load(s_slot))
        assert run(m, args=[10]) == 45

    def test_calls_and_recursion(self):
        m = Module("t")
        fact = Function("fact", FunctionType(I64, (I64,)))
        m.add_function(fact)
        entry = fact.new_block("entry")
        base = fact.new_block("base")
        rec = fact.new_block("rec")
        b = IRBuilder(entry)
        n = fact.arguments[0]
        b.cond_br(b.icmp("sle", n, ConstantInt(I64, 1)), base, rec)
        IRBuilder(base).ret(ConstantInt(I64, 1))
        b = IRBuilder(rec)
        smaller = b.call(fact, [b.sub(n, ConstantInt(I64, 1))])
        b.ret(b.mul(n, smaller))
        assert run(m, "fact", [6]) == 720

    def test_unreachable_raises(self):
        m, f, b = build()
        b.unreachable()
        with pytest.raises(InterpError):
            run(m)


class TestRuntime:
    def test_malloc_and_print(self):
        m, f, b = build()
        malloc = m.declare_external("malloc", FunctionType(I64, (I64,)))
        print_i = m.declare_external("print_i64", FunctionType(VOID, (I64,)))
        addr = b.call(malloc, [ConstantInt(I64, 16)])
        p = b.inttoptr(addr, ptr(I64))
        b.store(ConstantInt(I64, 42), p)
        b.call(print_i, [b.load(p)])
        b.ret(ConstantInt(I64, 0))
        it = Interpreter(m)
        it.run("main")
        assert it.output == ["42"]

    def test_spawn_join(self):
        m = Module("t")
        worker = Function("worker", FunctionType(I64, (I64,)))
        m.add_function(worker)
        wb = IRBuilder(worker.new_block("entry"))
        wb.ret(wb.mul(worker.arguments[0], ConstantInt(I64, 2)))

        main = Function("main", FunctionType(I64, ()))
        m.add_function(main)
        b = IRBuilder(main.new_block("entry"))
        spawn = m.declare_external("spawn", FunctionType(I64, (I64, I64)))
        join = m.declare_external("join", FunctionType(I64, (I64,)))
        faddr = b.ptrtoint(worker, I64)
        tid = b.call(spawn, [faddr, ConstantInt(I64, 21)])
        b.ret(b.call(join, [tid]))
        assert run(m) == 42

    def test_concurrent_atomic_counter(self):
        m = Module("t")
        m.add_global(GlobalVariable("ctr", I64, ConstantInt(I64, 0)))
        worker = Function("worker", FunctionType(I64, (I64,)))
        m.add_function(worker)
        wb = IRBuilder(worker.new_block("entry"))
        g = m.globals["ctr"]
        head = worker.new_block("head")
        body = worker.new_block("body")
        done = worker.new_block("done")
        i_slot = wb.alloca(I64)
        wb.store(ConstantInt(I64, 0), i_slot)
        wb.br(head)
        hb = IRBuilder(head)
        i = hb.load(i_slot)
        hb.cond_br(hb.icmp("slt", i, ConstantInt(I64, 100)), body, done)
        bb = IRBuilder(body)
        bb.atomicrmw("add", g, ConstantInt(I64, 1))
        bb.store(bb.add(bb.load(i_slot), ConstantInt(I64, 1)), i_slot)
        bb.br(head)
        IRBuilder(done).ret(ConstantInt(I64, 0))

        main = Function("main", FunctionType(I64, ()))
        m.add_function(main)
        b = IRBuilder(main.new_block("entry"))
        spawn = m.declare_external("spawn", FunctionType(I64, (I64, I64)))
        join = m.declare_external("join", FunctionType(I64, (I64,)))
        faddr = b.ptrtoint(worker, I64)
        t1 = b.call(spawn, [faddr, ConstantInt(I64, 0)])
        t2 = b.call(spawn, [faddr, ConstantInt(I64, 0)])
        b.call(join, [t1])
        b.call(join, [t2])
        b.ret(b.load(g))
        assert run(m) == 200
