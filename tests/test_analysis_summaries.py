"""Tests for the call graph and bottom-up interprocedural summaries
(repro.analysis.callgraph / repro.analysis.summaries)."""

from repro.analysis import (
    MOD,
    REF,
    analyze_function,
    analyze_module,
    build_callgraph,
    compute_summaries,
    tarjan_sccs,
)
from repro.analysis.summaries import UNKNOWN_TOKEN
from repro.fences import place_fences
from repro.lir import (
    ConstantInt,
    ExternalFunction,
    Function,
    FunctionType,
    GlobalVariable,
    I64,
    IRBuilder,
    Module,
    VOID,
    ptr,
)


def _module_with(*names):
    m = Module("t")
    funcs = {}
    for name, params in names:
        f = Function(name, FunctionType(I64, tuple(params)),
                     [f"a{i}" for i in range(len(params))])
        m.add_function(f)
        funcs[name] = f
    return m, funcs


def _ret0(builder):
    builder.ret(ConstantInt(I64, 0))


class TestCallGraph:
    def test_direct_edges_and_roots(self):
        m, fs = _module_with(("main", ()), ("helper", (I64,)))
        b = IRBuilder(fs["main"].new_block("entry"))
        b.call(fs["helper"], [ConstantInt(I64, 1)])
        _ret0(b)
        bh = IRBuilder(fs["helper"].new_block("entry"))
        _ret0(bh)
        cg = build_callgraph(m)
        assert cg.callees["main"] == {"helper"}
        assert cg.callers["helper"] == {"main"}
        # helper has an intra-module caller and its address is never
        # taken, so only main can start a thread.
        assert [f.name for f in cg.thread_roots()] == ["main"]

    def test_address_taken_function_is_root(self):
        m, fs = _module_with(("main", ()), ("worker", (I64,)))
        spawn = ExternalFunction("spawn", FunctionType(I64, (I64, I64)))
        m.externals["spawn"] = spawn
        b = IRBuilder(fs["main"].new_block("entry"))
        addr = b.ptrtoint(fs["worker"], I64, "waddr")
        b.call(spawn, [addr, ConstantInt(I64, 0)])
        _ret0(b)
        bw = IRBuilder(fs["worker"].new_block("entry"))
        _ret0(bw)
        cg = build_callgraph(m)
        assert "worker" in cg.address_taken
        assert {f.name for f in cg.thread_roots()} == {"main", "worker"}

    def test_pthread_start_routine_is_thread_root(self):
        # The start-routine argument of pthread_create marks a thread
        # entry point even under glibc symbol decoration and even when
        # use-list bookkeeping misses the reference — the spawn-site
        # scan peels the cast chain to the function itself.
        m, fs = _module_with(("main", ()), ("worker", (I64,)))
        create = ExternalFunction(
            "__pthread_create_2_1@0x401000",
            FunctionType(I64, (I64, I64, I64, I64)))
        m.externals[create.name] = create
        b = IRBuilder(fs["main"].new_block("entry"))
        addr = b.ptrtoint(fs["worker"], I64, "waddr")
        b.call(create, [ConstantInt(I64, 0), ConstantInt(I64, 0),
                        addr, ConstantInt(I64, 0)])
        _ret0(b)
        bw = IRBuilder(fs["worker"].new_block("entry"))
        _ret0(bw)
        # Simulate a producer that skipped use-list bookkeeping: the
        # generic address-taken rule cannot see the reference, so only
        # the pthread_create-aware scan can find the worker.
        fs["worker"].users.clear()
        cg = build_callgraph(m)
        assert "worker" in cg.address_taken
        assert "worker" in {f.name for f in cg.thread_roots()}

    def test_pthread_create_start_routine_escapes(self):
        # Arg 2 (start routine) and arg 3 (its argument) both outlive
        # the call: the spawned thread runs one with the other.
        from repro.loader.externs import catalog_summary
        summary = catalog_summary("pthread_create")
        assert summary.param_escapes[2]
        assert summary.param_escapes[3]

    def test_opaque_call_flagged(self):
        m, fs = _module_with(("main", ()),)
        ext = ExternalFunction("ext", FunctionType(VOID, ()))
        m.externals["ext"] = ext
        b = IRBuilder(fs["main"].new_block("entry"))
        b.call(ext, [])
        _ret0(b)
        cg = build_callgraph(m)
        assert "main" in cg.has_opaque_call
        assert cg.callees["main"] == set()

    def test_tarjan_bottom_up_order(self):
        # main -> a -> b, and c <-> d (a 2-cycle): SCCs come callees-first.
        m, fs = _module_with(("main", ()), ("a", ()), ("b", ()),
                             ("c", ()), ("d", ()))
        bm = IRBuilder(fs["main"].new_block("entry"))
        bm.call(fs["a"], [])
        _ret0(bm)
        ba = IRBuilder(fs["a"].new_block("entry"))
        ba.call(fs["b"], [])
        _ret0(ba)
        bb_ = IRBuilder(fs["b"].new_block("entry"))
        _ret0(bb_)
        bc = IRBuilder(fs["c"].new_block("entry"))
        bc.call(fs["d"], [])
        _ret0(bc)
        bd = IRBuilder(fs["d"].new_block("entry"))
        bd.call(fs["c"], [])
        _ret0(bd)
        cg = build_callgraph(m)
        sccs = tarjan_sccs(cg)
        order = {name: i for i, scc in enumerate(sccs) for name in scc}
        assert order["b"] < order["a"] < order["main"]
        assert {len(s) for s in sccs} == {1, 2}
        cycle = next(s for s in sccs if len(s) == 2)
        assert set(cycle) == {"c", "d"}


class TestFunctionSummaries:
    def test_pure_reader_summary_is_clean(self):
        # int get(int *p) { return *p; }
        m, fs = _module_with(("get", (ptr(I64),)),)
        b = IRBuilder(fs["get"].new_block("entry"))
        v = b.load(fs["get"].arguments[0], name="v")
        b.ret(v)
        summ = compute_summaries(m)["get"]
        assert summ.param_escapes == (False,)
        assert summ.contents_escape == (False,)
        assert summ.param_modref == (REF,)
        assert summ.stores_into == (frozenset(),)
        assert ("contents", 0) in summ.returns

    def test_store_through_param_recorded(self):
        # void set(int *p, int v) { *p = v; }
        m, fs = _module_with(("set", (ptr(I64), I64)),)
        b = IRBuilder(fs["set"].new_block("entry"))
        b.store(fs["set"].arguments[1], fs["set"].arguments[0])
        _ret0(b)
        summ = compute_summaries(m)["set"]
        assert summ.param_escapes == (False, False)
        assert summ.param_modref[0] & MOD
        assert ("param", 1) in summ.stores_into[0]

    def test_publishing_param_escapes(self):
        # void pub(int *p) { g = p; }  -- stores the arg into a global.
        m, fs = _module_with(("pub", (ptr(I64),)),)
        g = GlobalVariable("g", ptr(I64))
        m.add_global(g)
        b = IRBuilder(fs["pub"].new_block("entry"))
        b.store(fs["pub"].arguments[0], g)
        _ret0(b)
        summ = compute_summaries(m)["pub"]
        assert summ.param_escapes == (True,)

    def test_recursive_scc_conservative(self):
        m, fs = _module_with(("even", (I64,)), ("odd", (I64,)))
        be = IRBuilder(fs["even"].new_block("entry"))
        be.call(fs["odd"], [fs["even"].arguments[0]])
        _ret0(be)
        bo = IRBuilder(fs["odd"].new_block("entry"))
        bo.call(fs["even"], [fs["odd"].arguments[0]])
        _ret0(bo)
        summs = compute_summaries(m)
        assert summs["even"].recursive and summs["odd"].recursive
        assert summs["even"].param_escapes == (True,)
        assert UNKNOWN_TOKEN in summs["even"].returns


class TestInterproceduralElision:
    def _caller_callee(self):
        """main hands &local to a well-behaved callee; only the summary
        proves the alloca stays thread-local."""
        m, fs = _module_with(("main", ()), ("bump", (ptr(I64), I64)))
        bb_ = IRBuilder(fs["bump"].new_block("entry"))
        p = fs["bump"].arguments[0]
        old = bb_.load(p, name="old")
        new = bb_.add(old, fs["bump"].arguments[1], "new")
        bb_.store(new, p)
        _ret0(bb_)
        b = IRBuilder(fs["main"].new_block("entry"))
        local = b.alloca(I64, "local")
        b.store(ConstantInt(I64, 0), local)
        b.call(fs["bump"], [local, ConstantInt(I64, 3)])
        out = b.load(local, name="out")
        b.ret(out)
        return m, fs, local

    def test_summary_mode_keeps_alloca_local(self):
        m, fs, local = self._caller_callee()
        ma = analyze_module(m)
        assert ma.alias(fs["main"]).is_thread_local(local)
        # The intraprocedural analysis must give it up (call = escape).
        assert not analyze_function(fs["main"], m).is_thread_local(local)

    def test_placement_counts_interproc_tier(self):
        m, _fs, _local = self._caller_callee()
        stats = place_fences(m)
        # main's store+load of the local are elided by the summary tier;
        # bump's own *p accesses touch caller memory and stay fenced.
        assert stats.skipped_interproc == 2
        assert stats.total_inserted == 2

    def test_escaping_callee_still_fences(self):
        # Same shape but the callee publishes its argument: no elision.
        m, fs = _module_with(("main", ()), ("leak", (ptr(I64),)))
        g = GlobalVariable("g", ptr(I64))
        m.add_global(g)
        bl = IRBuilder(fs["leak"].new_block("entry"))
        bl.store(fs["leak"].arguments[0], g)
        _ret0(bl)
        b = IRBuilder(fs["main"].new_block("entry"))
        local = b.alloca(I64, "local")
        b.store(ConstantInt(I64, 0), local)
        b.call(fs["leak"], [local])
        out = b.load(local, name="out")
        b.ret(out)
        ma = analyze_module(m)
        assert not ma.alias(fs["main"]).is_thread_local(local)
        stats = place_fences(m)
        assert stats.skipped_interproc == 0
        assert stats.total_inserted > 0
