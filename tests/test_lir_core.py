"""Tests for LIR values, instructions, use-def tracking and the builder."""

import pytest

from repro.lir import (
    F64,
    I1,
    I8,
    I32,
    I64,
    ArrayType,
    BinOp,
    ConstantFloat,
    ConstantInt,
    Fence,
    Function,
    FunctionType,
    GlobalVariable,
    IRBuilder,
    Load,
    Module,
    Phi,
    format_instruction,
    format_module,
    ptr,
    verify_function,
    verify_module,
)
from repro.lir.verifier import VerificationError


def _make_function(name="f", params=(I64,)):
    m = Module("t")
    f = Function(name, FunctionType(I64, tuple(params)), ["x", "y", "z"][: len(params)])
    m.add_function(f)
    return m, f


class TestConstants:
    def test_int_wraps_to_width(self):
        c = ConstantInt(I8, 300)
        assert c.value == 44

    def test_signed_view(self):
        assert ConstantInt(I8, 0xFF).signed_value == -1
        assert ConstantInt(I64, 2**63).signed_value == -(2**63)

    def test_equality_and_hash(self):
        assert ConstantInt(I64, 5) == ConstantInt(I64, 5)
        assert ConstantInt(I64, 5) != ConstantInt(I8, 5)
        assert hash(ConstantInt(I64, 5)) == hash(ConstantInt(I64, 5))

    def test_float_roundtrips_binary32(self):
        import struct

        c = ConstantFloat(F64, 0.1)
        assert c.value == 0.1
        c32 = ConstantFloat(__import__("repro.lir", fromlist=["F32"]).F32, 0.1)
        assert c32.value == struct.unpack("<f", struct.pack("<f", 0.1))[0]

    def test_type_check(self):
        with pytest.raises(TypeError):
            ConstantInt(F64, 1)
        with pytest.raises(TypeError):
            ConstantFloat(I64, 1.0)


class TestUseDef:
    def test_users_tracked(self):
        m, f = _make_function()
        bb = f.new_block("entry")
        b = IRBuilder(bb)
        x = f.arguments[0]
        s = b.add(x, ConstantInt(I64, 1))
        assert s in x.users

    def test_replace_all_uses_with(self):
        m, f = _make_function()
        bb = f.new_block("entry")
        b = IRBuilder(bb)
        x = f.arguments[0]
        a = b.add(x, ConstantInt(I64, 1))
        c = b.mul(a, a)
        a.replace_all_uses_with(x)
        assert c.operands[0] is x and c.operands[1] is x
        assert c not in a.users
        assert c in x.users

    def test_erase_from_parent_drops_references(self):
        m, f = _make_function()
        bb = f.new_block("entry")
        b = IRBuilder(bb)
        x = f.arguments[0]
        a = b.add(x, ConstantInt(I64, 1))
        a.erase_from_parent()
        assert a not in bb.instructions
        assert a not in x.users

    def test_set_operand_updates_users(self):
        m, f = _make_function(params=(I64, I64))
        bb = f.new_block("entry")
        b = IRBuilder(bb)
        x, y = f.arguments
        a = b.add(x, x)
        a.set_operand(1, y)
        assert a in x.users  # still used as operand 0
        assert a in y.users
        a.set_operand(0, y)
        assert a not in x.users


class TestInstructions:
    def test_load_type_comes_from_pointer(self):
        m, f = _make_function(params=(ptr(F64),))
        bb = f.new_block("entry")
        b = IRBuilder(bb)
        ld = b.load(f.arguments[0])
        assert ld.type == F64

    def test_load_rejects_non_pointer(self):
        with pytest.raises(TypeError):
            Load(ConstantInt(I64, 0))

    def test_bad_ordering_rejected(self):
        m, f = _make_function(params=(ptr(I64),))
        bb = f.new_block("entry")
        b = IRBuilder(bb)
        with pytest.raises(ValueError):
            b.load(f.arguments[0], ordering="acquire")

    def test_fence_kinds(self):
        for kind in ("sc", "rm", "ww"):
            Fence(kind)
        with pytest.raises(ValueError):
            Fence("full")

    def test_binop_commutativity_flag(self):
        x = ConstantInt(I64, 1)
        assert BinOp("add", x, x).is_commutative()
        assert not BinOp("sub", x, x).is_commutative()

    def test_side_effects_classification(self):
        m, f = _make_function(params=(ptr(I64),))
        bb = f.new_block("entry")
        b = IRBuilder(bb)
        p = f.arguments[0]
        assert b.store(ConstantInt(I64, 0), p).has_side_effects()
        assert b.fence("sc").has_side_effects()
        assert not b.load(p).has_side_effects()
        assert b.load(p).may_read_memory()
        assert not b.add(ConstantInt(I64, 1), ConstantInt(I64, 2)).accesses_memory()

    def test_atomicrmw_returns_pointee_type(self):
        m, f = _make_function(params=(ptr(I64),))
        bb = f.new_block("entry")
        b = IRBuilder(bb)
        old = b.atomicrmw("add", f.arguments[0], ConstantInt(I64, 1))
        assert old.type == I64

    def test_phi_incoming_management(self):
        m, f = _make_function()
        bb1 = f.new_block("a")
        bb2 = f.new_block("b")
        join = f.new_block("j")
        phi = Phi(I64)
        join.append(phi)
        phi.add_incoming(ConstantInt(I64, 1), bb1)
        phi.add_incoming(ConstantInt(I64, 2), bb2)
        assert phi.incoming_for(bb1).value == 1
        phi.remove_incoming(bb1)
        assert phi.incoming_for(bb1) is None
        assert len(phi.incoming()) == 1


class TestModuleStructure:
    def test_duplicate_function_rejected(self):
        m = Module("t")
        m.add_function(Function("f", FunctionType(I64, ())))
        with pytest.raises(ValueError):
            m.add_function(Function("f", FunctionType(I64, ())))

    def test_duplicate_global_rejected(self):
        m = Module("t")
        m.add_global(GlobalVariable("g", I64))
        with pytest.raises(ValueError):
            m.add_global(GlobalVariable("g", I64))

    def test_global_value_has_pointer_type(self):
        g = GlobalVariable("g", ArrayType(I8, 4))
        assert g.type == ptr(ArrayType(I8, 4))
        assert g.size_bytes() == 4

    def test_external_declared_once(self):
        m = Module("t")
        e1 = m.declare_external("malloc", FunctionType(I64, (I64,)))
        e2 = m.declare_external("malloc", FunctionType(I64, (I64,)))
        assert e1 is e2

    def test_instruction_count(self):
        m, f = _make_function()
        bb = f.new_block("entry")
        b = IRBuilder(bb)
        b.ret(b.add(f.arguments[0], ConstantInt(I64, 1)))
        assert m.instruction_count() == 2


class TestVerifier:
    def test_accepts_wellformed(self):
        m, f = _make_function()
        bb = f.new_block("entry")
        b = IRBuilder(bb)
        b.ret(b.add(f.arguments[0], ConstantInt(I64, 1)))
        verify_module(m)

    def test_rejects_missing_terminator(self):
        m, f = _make_function()
        bb = f.new_block("entry")
        IRBuilder(bb).add(f.arguments[0], ConstantInt(I64, 1))
        with pytest.raises(VerificationError):
            verify_function(f)

    def test_rejects_use_before_def(self):
        m, f = _make_function()
        bb = f.new_block("entry")
        b = IRBuilder(bb)
        a = BinOp("add", f.arguments[0], ConstantInt(I64, 1))
        use = b.add(a, ConstantInt(I64, 2))  # uses a before it is placed
        b.ret(use)
        bb.append(a)  # placed after its use — and after the terminator
        with pytest.raises(VerificationError):
            verify_function(f)

    def test_rejects_type_mismatched_return(self):
        m = Module("t")
        f = Function("g", FunctionType(F64, ()))
        m.add_function(f)
        bb = f.new_block("entry")
        IRBuilder(bb).ret(ConstantInt(I64, 0))
        with pytest.raises(VerificationError):
            verify_function(f)

    def test_rejects_bad_branch_condition_type(self):
        m, f = _make_function()
        bb = f.new_block("entry")
        t1 = f.new_block("t1")
        t2 = f.new_block("t2")
        b = IRBuilder(bb)
        b.cond_br(ConstantInt(I64, 1), t1, t2)  # must be i1
        IRBuilder(t1).ret(ConstantInt(I64, 0))
        IRBuilder(t2).ret(ConstantInt(I64, 0))
        with pytest.raises(VerificationError):
            verify_function(f)

    def test_unreachable_blocks_tolerated(self):
        m, f = _make_function()
        entry = f.new_block("entry")
        IRBuilder(entry).ret(ConstantInt(I64, 0))
        dead = f.new_block("dead")
        db = IRBuilder(dead)
        v = db.add(f.arguments[0], ConstantInt(I64, 1))
        db.ret(v)
        verify_function(f)  # dominance rules don't apply to dead code

    def test_rejects_phi_pred_mismatch(self):
        m, f = _make_function()
        entry = f.new_block("entry")
        other = f.new_block("other")
        join = f.new_block("join")
        IRBuilder(entry).br(join)
        IRBuilder(other).br(join)
        phi = Phi(I64)
        join.append(phi)
        phi.add_incoming(ConstantInt(I64, 1), entry)  # missing 'other'
        IRBuilder(join).ret(phi)
        with pytest.raises(VerificationError):
            verify_function(f)


class TestVerifierStrengthened:
    """The def–use / uniqueness / operand-type checks added for the
    translation validator (which re-verifies after every pass)."""

    def test_rejects_duplicated_instruction(self):
        m, f = _make_function()
        bb = f.new_block("entry")
        b = IRBuilder(bb)
        v = b.add(f.arguments[0], ConstantInt(I64, 1))
        b.ret(v)
        bb.instructions.insert(0, v)  # now appears twice
        with pytest.raises(VerificationError, match="more than one place"):
            verify_function(f)

    def test_rejects_missing_use_list_entry(self):
        m, f = _make_function()
        bb = f.new_block("entry")
        b = IRBuilder(bb)
        v = b.add(f.arguments[0], ConstantInt(I64, 1))
        b.ret(v)
        v.users.discard(bb.instructions[-1])  # corrupt the use list
        with pytest.raises(VerificationError, match="missing from the use"):
            verify_function(f)

    def test_rejects_stale_use_list_entry(self):
        m, f = _make_function()
        bb = f.new_block("entry")
        b = IRBuilder(bb)
        v = b.add(f.arguments[0], ConstantInt(I64, 1))
        w = b.add(v, ConstantInt(I64, 2))
        b.ret(w)
        w.operands[0] = ConstantInt(I64, 3)  # bypasses set_operand
        with pytest.raises(VerificationError, match="stale use-list"):
            verify_function(f)

    def test_rejects_binop_operand_type_mismatch(self):
        m, f = _make_function()
        bb = f.new_block("entry")
        b = IRBuilder(bb)
        v = b.add(f.arguments[0], ConstantInt(I64, 1))
        b.ret(v)
        v.operands[1] = ConstantInt(I32, 1)
        v.operands[1].users.add(v)  # keep use lists consistent
        with pytest.raises(VerificationError, match="types disagree"):
            verify_function(f)

    def test_rejects_phi_incoming_type_mismatch(self):
        m, f = _make_function()
        entry = f.new_block("entry")
        other = f.new_block("other")
        join = f.new_block("join")
        b = IRBuilder(entry)
        cond = b.icmp("eq", f.arguments[0], ConstantInt(I64, 0))
        b.cond_br(cond, other, join)
        IRBuilder(other).br(join)
        phi = Phi(I64)
        join.append(phi)
        phi.add_incoming(ConstantInt(I64, 1), entry)
        phi.add_incoming(ConstantInt(I32, 2), other)
        IRBuilder(join).ret(phi)
        with pytest.raises(VerificationError, match="incoming value"):
            verify_function(f)


class TestPrinter:
    def test_format_module_smoke(self):
        m, f = _make_function()
        bb = f.new_block("entry")
        b = IRBuilder(bb)
        p = b.alloca(I64, "slot")
        b.store(f.arguments[0], p)
        v = b.load(p, name="v")
        b.fence("ww")
        b.ret(v)
        text = format_module(m)
        assert "define i64 @f(i64 %x)" in text
        assert "alloca i64" in text
        assert "fence fww" in text

    def test_every_instruction_formats(self):
        m, f = _make_function(params=(ptr(I64), I64))
        bb = f.new_block("entry")
        b = IRBuilder(bb)
        p, x = f.arguments
        b.load(p)
        b.store(x, p)
        b.atomicrmw("add", p, x)
        b.cmpxchg(p, x, x)
        b.fence("sc")
        b.gep(I64, p, [x])
        b.icmp("slt", x, x)
        b.binop("fadd", ConstantFloat(F64, 1.0), ConstantFloat(F64, 2.0))
        b.select(ConstantInt(I1, 1), x, x)
        b.ptrtoint(p, I64)
        b.ret(x)
        for inst in bb.instructions:
            assert format_instruction(inst)
