"""Tests for the static happens-before classifier
(repro.analysis.racecheck) and its SARIF emission."""

from repro.analysis.racecheck import classify_module
from repro.analysis.sarif import racecheck_results, sarif_report
from repro.lir import (
    ConstantInt,
    ExternalFunction,
    Function,
    FunctionType,
    GlobalVariable,
    I64,
    IRBuilder,
    Module,
)

MUTEX_SIG = FunctionType(I64, (I64,))


def _mutex_module():
    m = Module("t")
    for name in ("m", "x", "y"):
        m.add_global(GlobalVariable(name, I64))
    for ext in ("pthread_mutex_lock", "pthread_mutex_unlock"):
        m.externals[ext] = ExternalFunction(ext, MUTEX_SIG)
    return m


def _func(m, name):
    f = Function(name, FunctionType(I64, ()), [])
    m.add_function(f)
    return f


def _locked_pair(m, name, locked: bool, write: bool):
    """One thread root touching global x, optionally under lock m."""
    f = _func(m, name)
    b = IRBuilder(f.new_block("entry"))
    gm, gx = m.globals["m"], m.globals["x"]
    if locked:
        b.call(m.externals["pthread_mutex_lock"], [b.ptrtoint(gm, I64)])
    if write:
        b.store(ConstantInt(I64, 1), gx)
        out = ConstantInt(I64, 0)
    else:
        out = b.load(gx, name="r")
    if locked:
        b.call(m.externals["pthread_mutex_unlock"], [b.ptrtoint(gm, I64)])
    b.ret(out)
    return f


class TestClassification:
    def test_lock_protected_pair(self):
        m = _mutex_module()
        _locked_pair(m, "writer", locked=True, write=True)
        _locked_pair(m, "reader", locked=True, write=False)
        report = classify_module(m)
        assert report.count("racy") == 0
        assert report.count("lock-protected") == 2
        assert not report.racy
        assert {d.classification for d in report.diags} == {"lock-protected"}
        assert all(d.locks == ("m",) for d in report.protected)
        assert report.locks_seen == ("m",)

    def test_unlocked_conflict_is_racy(self):
        m = _mutex_module()
        _locked_pair(m, "writer", locked=True, write=True)
        _locked_pair(m, "reader", locked=False, write=False)
        report = classify_module(m)
        # Both sides of the unprotected pair are racy: the writer's lock
        # alone orders nothing for an observer that takes no lock.
        assert report.count("racy") == 2
        assert report.count("lock-protected") == 0
        assert len(report.racy) == 2
        d = report.racy[0]
        assert "no common lock" in d.message
        # No provenance on hand-built IR: location falls back to LIR.
        assert d.x86 == ""
        assert d.location == d.lir_location

    def test_sc_accesses_are_atomic(self):
        m = _mutex_module()
        gx = m.globals["x"]
        for name in ("t0", "t1"):
            f = _func(m, name)
            b = IRBuilder(f.new_block("entry"))
            b.store(ConstantInt(I64, 1), gx, ordering="sc")
            b.ret(ConstantInt(I64, 0))
        report = classify_module(m)
        assert report.count("atomic") == 2
        assert report.count("racy") == 0

    def test_read_read_is_thread_local(self):
        # Two readers never conflict: loads of the same location are not
        # a race.
        m = _mutex_module()
        _locked_pair(m, "r0", locked=False, write=False)
        _locked_pair(m, "r1", locked=False, write=False)
        report = classify_module(m)
        assert report.count("racy") == 0
        assert report.count("thread-local") == 2

    def test_capped_graph_reports_nothing_racy(self):
        # More thread roots than MAX_THREADS: the conflict graph is
        # incomplete in both directions, so racecheck refuses to call
        # anything racy and says so.
        m = _mutex_module()
        for i in range(10):
            _locked_pair(m, f"t{i}", locked=False, write=True)
        report = classify_module(m)
        assert report.capped
        assert report.count("racy") == 0
        assert not report.diags


class TestSarif:
    def test_racecheck_rules_levels_and_locations(self):
        m = _mutex_module()
        _locked_pair(m, "writer", locked=True, write=True)
        _locked_pair(m, "reader", locked=False, write=False)
        _locked_pair(m, "peer", locked=True, write=False)
        report = classify_module(m)
        results = racecheck_results(report.diags, "prog.c")
        assert results
        by_rule = {}
        for r in results:
            by_rule.setdefault(r["ruleId"], []).append(r)
        assert set(by_rule) <= {"racecheck/racy", "racecheck/lock-protected"}
        assert all(r["level"] == "warning"
                   for r in by_rule.get("racecheck/racy", []))
        assert all(r["level"] == "note"
                   for r in by_rule.get("racecheck/lock-protected", []))
        loc = results[0]["locations"][0]
        assert loc["physicalLocation"]["artifactLocation"]["uri"] == "prog.c"
        assert loc["logicalLocations"][0]["fullyQualifiedName"]
        # Hand-built IR has no x86 provenance: no relatedLocations.
        assert all("relatedLocations" not in r for r in results)
        # The wrapped report declares every emitted rule.
        doc = sarif_report(results)
        rules = {r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]}
        assert rules == set(by_rule)

    def test_provenance_reaches_relatedlocations(self):
        # Through the real pipeline the diags carry x86 provenance, and
        # the SARIF results link it as relatedLocations.
        from repro.core import Lasagne

        source = """
        int m = 0;
        int x = 0;
        int writer(int t) {
          mutex_lock(&m);
          x = t;
          mutex_unlock(&m);
          return 0;
        }
        int reader(int t) {
          int r = x;
          return r;
        }
        int main() {
          int a = spawn(writer, 1);
          int b = spawn(reader, 0);
          join(a);
          join(b);
          return 0;
        }
        """
        built = Lasagne(fence_analysis="sync").build(source, "ppopt")
        report = classify_module(built.module)
        assert report.count("racy") > 0
        results = racecheck_results(report.diags, "prog.c")
        with_prov = [r for r in results if r.get("relatedLocations")]
        assert with_prov
        related = with_prov[0]["relatedLocations"][0]
        assert "x86" in related["message"]["text"]
        assert related["logicalLocations"][0]["decoratedName"]
