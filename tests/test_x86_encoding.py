"""Encoder/decoder round-trip tests for the x86-64 subset.

Includes a hypothesis property: any instruction the encoder accepts decodes
back to an equal instruction (same mnemonic/operands/lock prefix).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.x86 import Imm, Instr, Mem, Reg, decode_one, encode
from repro.x86.encoder import EncodeError
from repro.x86.decoder import DecodeError
from repro.x86.registers import GPR64, XMM


def roundtrip(instr: Instr) -> Instr:
    data = encode(instr)
    decoded = decode_one(data, 0, 0)
    assert decoded.size == len(data)
    return decoded


class TestBasicEncodings:
    def test_known_byte_patterns(self):
        # Cross-checked against a reference assembler.
        assert encode(Instr("ret")) == b"\xc3"
        assert encode(Instr("nop")) == b"\x90"
        assert encode(Instr("mfence")) == b"\x0f\xae\xf0"
        assert encode(Instr("cqo")) == b"\x48\x99"
        assert encode(Instr("mov", [Reg("rax"), Reg("rdi")])) == b"\x48\x89\xf8"
        assert encode(Instr("push", [Reg("rbp")])) == b"\x55"
        assert encode(Instr("pop", [Reg("rbp")])) == b"\x5d"
        assert encode(Instr("push", [Reg("r12")])) == b"\x41\x54"
        assert (
            encode(Instr("add", [Reg("rax"), Imm(1)])) == b"\x48\x83\xc0\x01"
        )
        assert encode(Instr("xor", [Reg("rax"), Reg("rax")])) == b"\x48\x31\xc0"

    def test_rex_b_for_high_registers(self):
        data = encode(Instr("mov", [Reg("r8"), Reg("r15")]))
        assert data[0] == 0x4D  # REX.WRB

    def test_movabs(self):
        instr = Instr("movabs", [Reg("rbx"), Imm(0x1122334455667788, 64)])
        data = encode(instr)
        assert data[:2] == b"\x48\xbb"
        assert roundtrip(instr).key() == instr.key()

    def test_lock_prefix(self):
        instr = Instr(
            "cmpxchg", [Mem(base="rdx", width=64), Reg("rcx")], lock=True
        )
        data = encode(instr)
        assert data[0] == 0xF0
        assert roundtrip(instr).key() == instr.key()

    def test_rel32_branches(self):
        data = encode(Instr("jmp"), rel32=0x10)
        assert data == b"\xe9\x10\x00\x00\x00"
        data = encode(Instr("je"), rel32=-2)
        assert data[:2] == b"\x0f\x84"

    def test_imm_width_selection(self):
        small = encode(Instr("add", [Reg("rax"), Imm(5)]))
        large = encode(Instr("add", [Reg("rax"), Imm(500)]))
        assert len(small) < len(large)

    def test_unencodable_rejected(self):
        with pytest.raises(EncodeError):
            encode(Instr("mov", [Reg("rax"), Imm(2**40)]))  # needs movabs
        with pytest.raises(EncodeError):
            encode(Instr("frobnicate"))


class TestMemoryOperands:
    def test_plain_base(self):
        instr = Instr("mov", [Reg("rax"), Mem(base="rcx", width=64)])
        assert roundtrip(instr).key() == instr.key()

    def test_rsp_base_needs_sib(self):
        instr = Instr("mov", [Reg("rax"), Mem(base="rsp", width=64)])
        data = encode(instr)
        assert roundtrip(instr).key() == instr.key()
        # SIB byte present: opcode is third byte (REX + 8B + modrm + sib)
        assert len(data) == 4

    def test_rbp_base_needs_disp8(self):
        instr = Instr("mov", [Reg("rax"), Mem(base="rbp", width=64)])
        assert roundtrip(instr).key() == instr.key()

    def test_r13_base_needs_disp8(self):
        instr = Instr("mov", [Reg("rax"), Mem(base="r13", width=64)])
        assert roundtrip(instr).key() == instr.key()

    def test_disp8_and_disp32(self):
        for disp in (0, 8, -8, 127, -128, 128, -129, 2**20, -(2**20)):
            instr = Instr(
                "mov", [Reg("rdx"), Mem(base="rsi", disp=disp, width=64)]
            )
            assert roundtrip(instr).key() == instr.key(), disp

    def test_scaled_index(self):
        for scale in (1, 2, 4, 8):
            instr = Instr(
                "lea",
                [Reg("rax"), Mem(base="rcx", index="rdx", scale=scale, width=64)],
            )
            assert roundtrip(instr).key() == instr.key(), scale

    def test_index_r12_and_r13(self):
        instr = Instr(
            "mov",
            [Reg("rax"), Mem(base="r12", index="r13", scale=8, disp=16, width=64)],
        )
        assert roundtrip(instr).key() == instr.key()

    def test_rsp_cannot_be_index(self):
        with pytest.raises(ValueError):
            Mem(base="rax", index="rsp")

    def test_absolute_disp32(self):
        instr = Instr("mov", [Reg("rax"), Mem(disp=0x601000, width=64)])
        assert roundtrip(instr).key() == instr.key()

    def test_byte_memory_access(self):
        instr = Instr("mov", [Mem(base="rcx", width=8), Reg("al")])
        assert roundtrip(instr).key() == instr.key()


class TestSSEEncodings:
    def test_movsd_load_store(self):
        load = Instr("movsd", [Reg("xmm0"), Mem(base="rax", width=64)])
        store = Instr("movsd", [Mem(base="rax", width=64), Reg("xmm0")])
        assert roundtrip(load).key() == load.key()
        assert roundtrip(store).key() == store.key()

    def test_scalar_arith(self):
        for mn in ("addsd", "subsd", "mulsd", "divsd"):
            instr = Instr(mn, [Reg("xmm1"), Reg("xmm2")])
            assert roundtrip(instr).key() == instr.key()

    def test_packed(self):
        for mn in ("addpd", "paddq", "paddd"):
            instr = Instr(mn, [Reg("xmm3"), Reg("xmm4")])
            assert roundtrip(instr).key() == instr.key()

    def test_conversions_and_moves(self):
        pairs = [
            Instr("cvtsi2sd", [Reg("xmm0"), Reg("rax")]),
            Instr("cvttsd2si", [Reg("rax"), Reg("xmm0")]),
            Instr("movq", [Reg("xmm5"), Reg("rdi")]),
            Instr("movq", [Reg("rdi"), Reg("xmm5")]),
            Instr("ucomisd", [Reg("xmm0"), Reg("xmm1")]),
            Instr("pxor", [Reg("xmm7"), Reg("xmm7")]),
            Instr("sqrtsd", [Reg("xmm2"), Reg("xmm3")]),
        ]
        for instr in pairs:
            assert roundtrip(instr).key() == instr.key(), instr

    def test_high_xmm_registers(self):
        instr = Instr("addsd", [Reg("xmm12"), Reg("xmm9")])
        assert roundtrip(instr).key() == instr.key()


# ---- property-based round trip -------------------------------------------

gpr64 = st.sampled_from(GPR64)
xmm = st.sampled_from(XMM)
imm32 = st.integers(min_value=-(2**31), max_value=2**31 - 1)
scale = st.sampled_from([1, 2, 4, 8])
index_reg = st.sampled_from([r for r in GPR64 if r != "rsp"])


@st.composite
def mem_operand(draw, width=64):
    base = draw(gpr64)
    use_index = draw(st.booleans())
    index = draw(index_reg) if use_index else None
    return Mem(
        base=base,
        index=index,
        scale=draw(scale) if use_index else 1,
        disp=draw(st.integers(min_value=-(2**27), max_value=2**27)),
        width=width,
    )


@st.composite
def any_instr(draw):
    choice = draw(st.integers(0, 9))
    if choice == 0:
        return Instr("mov", [Reg(draw(gpr64)), Reg(draw(gpr64))])
    if choice == 1:
        return Instr("mov", [Reg(draw(gpr64)), draw(mem_operand())])
    if choice == 2:
        return Instr("mov", [draw(mem_operand()), Reg(draw(gpr64))])
    if choice == 3:
        mn = draw(st.sampled_from(["add", "sub", "and", "or", "xor", "cmp"]))
        return Instr(mn, [Reg(draw(gpr64)), Reg(draw(gpr64))])
    if choice == 4:
        mn = draw(st.sampled_from(["add", "sub", "and", "or", "xor", "cmp"]))
        return Instr(mn, [Reg(draw(gpr64)), Imm(draw(imm32))])
    if choice == 5:
        return Instr("lea", [Reg(draw(gpr64)), draw(mem_operand())])
    if choice == 6:
        return Instr(
            "movabs",
            [Reg(draw(gpr64)),
             Imm(draw(st.integers(0, 2**64 - 1)), 64)],
        )
    if choice == 7:
        mn = draw(st.sampled_from(["shl", "shr", "sar"]))
        return Instr(mn, [Reg(draw(gpr64)), Imm(draw(st.integers(0, 63)), 8)])
    if choice == 8:
        mn = draw(st.sampled_from(["addsd", "subsd", "mulsd", "divsd"]))
        return Instr(mn, [Reg(draw(xmm)), Reg(draw(xmm))])
    return Instr("imul", [Reg(draw(gpr64)), Reg(draw(gpr64))])


@given(any_instr())
@settings(max_examples=300, deadline=None)
def test_roundtrip_property(instr):
    decoded = roundtrip(instr)
    assert decoded.key() == instr.key()


@given(st.binary(min_size=1, max_size=15))
@settings(max_examples=200, deadline=None)
def test_decoder_never_crashes_unexpectedly(data):
    """The decoder either returns an instruction or raises DecodeError."""
    try:
        decode_one(data, 0, 0)
    except DecodeError:
        pass
