"""Round-trip tests for ``repro.loader`` over synthetic ELF64 images.

Every binary here is produced by the pure-python writer in
``tests/elfwriter.py`` — no compiler toolchain involved — and then
ingested by the real loader: ELF parsing, PLT decoding, call-graph
discovery, external-catalog resolution, confidence reporting.
"""

import struct

import pytest

from tests.elfwriter import (
    R_IRELATIVE,
    R_JUMP_SLOT,
    SHF_ALLOC,
    SHF_EXECINSTR,
    SHF_WRITE,
    STT_GNU_IFUNC,
    STT_OBJECT,
    ElfWriter,
    call_rel32,
    plt_entry,
)
from repro.loader import (
    ElfError,
    TriageError,
    decode_plt,
    ingest_elf,
    is_elf,
    parse_elf,
    sniff_format,
)

TEXT = 0x401000
RESOLVER = TEXT + 0x40      # ifunc resolver, inside .text
PLT = 0x401100              # own section, disjoint from .text
RODATA = 0x402000
GOT = 0x403FF0
DATA = 0x404000

RET = b"\xc3"
MOV_RAX_7 = b"\x48\xc7\xc0\x07\x00\x00\x00"


def _main_code(base: int, call_to: int | None = None,
               extra: bytes = b"") -> bytes:
    """mov edi, 0x20; [call X]; [extra]; mov rax, 7; ret"""
    code = b"\xbf\x20\x00\x00\x00"
    if call_to is not None:
        code += call_rel32(base + len(code), call_to)
    code += extra + MOV_RAX_7 + RET
    return code


def _writer_with_malloc_plt() -> tuple[ElfWriter, bytes]:
    """An image whose ``main`` calls malloc through a static-binary PLT:
    the IRELATIVE relocation's addend points at the glibc-style ifunc
    resolver symbol, which carries the (decorated) function name."""
    w = ElfWriter(entry=TEXT)
    main = _main_code(TEXT, call_to=PLT)
    text = bytearray(main)
    text += b"\x00" * (RESOLVER - TEXT - len(text))
    text += MOV_RAX_7 + RET
    w.add_progbits(".text", TEXT, bytes(text),
                   flags=SHF_ALLOC | SHF_EXECINSTR)
    w.add_progbits(".plt", PLT, plt_entry(PLT, GOT),
                   flags=SHF_ALLOC | SHF_EXECINSTR)
    w.add_rela(GOT, R_IRELATIVE, addend=RESOLVER)
    w.add_symbol("main", TEXT, size=len(main))
    w.add_symbol("__libc_malloc", RESOLVER, size=8, stype=STT_GNU_IFUNC)
    return w, main


class TestParseRoundTrip:
    def test_header_sections_symbols(self):
        w = ElfWriter(entry=TEXT)
        code = _main_code(TEXT)
        w.add_progbits(".text", TEXT, code, flags=SHF_ALLOC | SHF_EXECINSTR)
        w.add_progbits(".rodata", RODATA, b"hey\x00")
        w.add_nobits(".bss", DATA, 16)
        w.add_symbol("main", TEXT, size=len(code))
        w.add_symbol("acc", DATA, size=8, stype=STT_OBJECT)
        raw = w.build()

        assert is_elf(raw) and sniff_format(raw) == "elf64"
        elf = parse_elf(raw)
        assert elf.header.e_entry == TEXT
        assert elf.section(".text").is_exec
        assert not elf.section(".rodata").is_exec
        assert elf.section(".bss").is_nobits
        assert elf.section_at(TEXT).name == ".text"
        assert elf.names_at(TEXT) == ["main"]
        funcs = elf.function_symbols()
        assert [s.name for s in funcs] == ["main"]
        assert funcs[0].size == len(code)

    def test_read_and_cstr(self):
        w = ElfWriter(entry=TEXT)
        w.add_progbits(".text", TEXT, b"\xc3" * 8,
                       flags=SHF_ALLOC | SHF_EXECINSTR)
        w.add_progbits(".rodata", RODATA, b"hi\x00there")
        w.add_nobits(".bss", DATA, 32)
        elf = parse_elf(w.build())
        assert elf.read(TEXT, 8) == b"\xc3" * 8
        assert elf.read_cstr(RODATA) == b"hi"
        assert elf.read(DATA, 4) == b"\x00" * 4  # .bss reads as zeros
        with pytest.raises(ElfError):
            elf.read(0x900000, 1)

    def test_object_symbol_covering_prefers_tightest(self):
        w = ElfWriter(entry=TEXT)
        w.add_progbits(".data", DATA, b"\x00" * 64, flags=SHF_ALLOC)
        w.add_symbol("big", DATA, size=64, stype=STT_OBJECT)
        w.add_symbol("small", DATA + 8, size=8, stype=STT_OBJECT)
        elf = parse_elf(w.build())
        assert elf.object_symbol_covering(DATA + 9).name == "small"
        assert elf.object_symbol_covering(DATA + 40).name == "big"

    def test_phdr_fallback_read_without_sections(self):
        w = ElfWriter(entry=TEXT, strip_sections=True, load_pad=64)
        w.add_progbits(".text", TEXT, b"\x90" * 16,
                       flags=SHF_ALLOC | SHF_EXECINSTR)
        elf = parse_elf(w.build())
        assert elf.sections == [] and elf.symbols == []
        assert elf.read(TEXT, 4) == b"\x90" * 4
        # p_memsz > p_filesz: the tail reads as zeros, like .bss.
        assert elf.read(TEXT + 16, 8) == b"\x00" * 8

    def test_reject_bad_inputs(self):
        with pytest.raises(ElfError):
            parse_elf(b"\x00not elf at all")
        with pytest.raises(ElfError):  # 32-bit class
            parse_elf(ElfWriter(ei_class=1).build())
        with pytest.raises(ElfError):  # wrong machine (AArch64)
            parse_elf(ElfWriter(machine=183).build())
        assert sniff_format(b"int main() { return 0; }") == "source"


class TestPltDecoding:
    def test_irelative_static_path(self):
        w, _ = _writer_with_malloc_plt()
        elf = parse_elf(w.build())
        assert decode_plt(elf) == {PLT: "__libc_malloc"}

    def test_jump_slot_dynamic_path(self):
        w = ElfWriter(entry=TEXT)
        w.add_progbits(".text", TEXT, _main_code(TEXT),
                       flags=SHF_ALLOC | SHF_EXECINSTR)
        # endbr64-prefixed entry, like -fcf-protection output.
        entry = b"\xf3\x0f\x1e\xfa" + plt_entry(PLT + 4, GOT)
        w.add_progbits(".plt.sec", PLT, entry,
                       flags=SHF_ALLOC | SHF_EXECINSTR)
        idx = w.add_symbol("printf", 0, table="dynsym", shndx=0)
        w.add_rela(GOT, R_JUMP_SLOT, sym=idx)
        elf = parse_elf(w.build())
        assert decode_plt(elf) == {PLT: "printf"}


class TestIngestSynthetic:
    def test_catalogued_external_via_plt(self):
        w, main = _writer_with_malloc_plt()
        obj, report = ingest_elf(w.build())
        assert obj.source_format == "elf64"
        assert list(obj.functions) == ["main"]
        assert obj.functions["main"].size == len(main)
        # Decorated resolver name normalized to the catalog entry.
        assert obj.externals == {"malloc": PLT}
        assert obj.extern_sigs["malloc"] == (1, 0, "i64")
        assert report.ok
        assert report.externals_resolved == {"malloc": PLT}
        assert report.externals_opaque == {}
        [frep] = report.functions
        assert frep.decodable_pct == 100.0 and frep.size_agreement
        assert frep.calls_external == ["malloc"]

    def test_uncatalogued_plt_becomes_opaque(self):
        w = ElfWriter(entry=TEXT)
        main = _main_code(TEXT, call_to=PLT)
        w.add_progbits(".text", TEXT, main,
                       flags=SHF_ALLOC | SHF_EXECINSTR)
        w.add_progbits(".plt", PLT, plt_entry(PLT, GOT),
                       flags=SHF_ALLOC | SHF_EXECINSTR)
        idx = w.add_symbol("qsort", 0, table="dynsym", shndx=0)
        w.add_rela(GOT, R_JUMP_SLOT, sym=idx)
        w.add_symbol("main", TEXT, size=len(main))
        obj, report = ingest_elf(w.build())
        name = f"ext_{PLT:x}"
        assert obj.externals == {name: PLT}
        assert obj.extern_sigs[name] == (0, 0, "i64")
        assert report.externals_opaque == {name: PLT}
        assert any("qsort" in r and "opaque" in r for r in report.remarks)
        assert report.functions[0].calls_opaque == [name]

    def test_unnamed_local_callee_is_scanned(self):
        w = ElfWriter(entry=TEXT)
        helper_addr = TEXT + 0x40
        main = _main_code(TEXT, call_to=helper_addr)
        text = bytearray(main)
        text += b"\x00" * (helper_addr - TEXT - len(text))
        text[helper_addr - TEXT:] = MOV_RAX_7 + RET
        w.add_progbits(".text", TEXT, bytes(text),
                       flags=SHF_ALLOC | SHF_EXECINSTR)
        w.add_symbol("main", TEXT, size=len(main))
        obj, report = ingest_elf(w.build())
        sub = f"sub_{helper_addr:x}"
        assert sub in obj.functions
        # The heuristic scan stopped exactly at the ret.
        assert obj.functions[sub].size == len(MOV_RAX_7 + RET)
        assert report.functions[0].calls_internal == [sub]
        assert any(sub in r for r in report.remarks)

    def test_missing_entry_reports_and_raises(self):
        w = ElfWriter(entry=TEXT)
        code = MOV_RAX_7 + RET
        w.add_progbits(".text", TEXT, code,
                       flags=SHF_ALLOC | SHF_EXECINSTR)
        w.add_symbol("helper", TEXT, size=len(code))
        obj, report = ingest_elf(w.build())
        assert obj.functions == {}
        assert any("'main' not found" in r for r in report.remarks)
        from repro.core import Lasagne
        from repro.x86.objfile import EntryError
        with pytest.raises(EntryError, match="no functions at all"):
            Lasagne().translate(obj, "ppopt")

    def test_undecodable_function_strict_and_lax(self):
        w = ElfWriter(entry=TEXT)
        # 0x06 is invalid in 64-bit mode; a 4-byte garbage island.
        code = b"\xbf\x20\x00\x00\x00" + b"\x06\x06\x06\x06" \
            + MOV_RAX_7 + RET
        w.add_progbits(".text", TEXT, code,
                       flags=SHF_ALLOC | SHF_EXECINSTR)
        w.add_symbol("main", TEXT, size=len(code))
        raw = w.build()
        with pytest.raises(TriageError, match="undecodable"):
            ingest_elf(raw)
        _obj, report = ingest_elf(raw, strict=False)
        assert not report.ok
        [frep] = report.functions
        assert frep.unknown_spans and frep.unknown_spans[0].size == 4
        assert frep.decodable_pct < 100.0

    def test_stripped_image_degrades_to_entry_scan(self):
        w = ElfWriter(entry=TEXT, load_pad=0x11000)
        code = _main_code(TEXT)
        w.add_progbits(".text", TEXT, code,
                       flags=SHF_ALLOC | SHF_EXECINSTR)
        # Sections present but no .symtab at all.
        obj, report = ingest_elf(w.build())
        assert any("stripped" in r for r in report.remarks)
        assert [f.name for f in report.functions] == ["_start"]
        assert report.functions[0].size == len(code)
        # Report-only: positional names, so translation of 'main' still
        # stops with the canonical EntryError.
        assert "_start" in obj.functions and "main" not in obj.functions

    def test_data_symbol_synthesis(self):
        w = ElfWriter(entry=TEXT)
        # mov esi, RODATA ; mov edx, DATA+4 ; mov rax, 7 ; ret
        refs = b"\xbe" + struct.pack("<I", RODATA) \
            + b"\xba" + struct.pack("<I", DATA + 4)
        main = refs + MOV_RAX_7 + RET
        w.add_progbits(".text", TEXT, main,
                       flags=SHF_ALLOC | SHF_EXECINSTR)
        w.add_progbits(".rodata", RODATA, b"hey\x00")
        w.add_progbits(".data", DATA, b"\x2a" + b"\x00" * 7,
                       flags=SHF_ALLOC | SHF_WRITE)
        w.add_symbol("main", TEXT, size=len(main))
        w.add_symbol("acc", DATA, size=8, stype=STT_OBJECT)
        obj, report = ingest_elf(w.build())
        # A named OBJECT symbol covers DATA+4; RODATA gets an anonymous
        # NUL-scanned literal capped at the section end.
        assert set(obj.data_symbols) == {"acc", f"data_{RODATA:x}"}
        assert obj.data_symbols["acc"].address == DATA
        assert obj.data_symbols["acc"].init[0] == 0x2A
        assert obj.data_symbols[f"data_{RODATA:x}"].size == 4
        assert report.data_symbols == 2


class TestSyntheticEndToEnd:
    def test_translate_and_cosimulate(self):
        """The synthetic malloc image survives the whole pipeline: lift,
        fence placement, O2, Arm codegen, and both emulators agree."""
        from repro.core import Lasagne
        from repro.x86.emulator import X86Emulator

        w, _ = _writer_with_malloc_plt()
        obj, report = ingest_elf(w.build())
        assert report.ok
        lasagne = Lasagne(verify=True)
        built = lasagne.translate(obj, "ppopt")
        assert "malloc" in built.module.externals
        x86 = X86Emulator(obj)
        assert x86.run("main") == 7
        assert Lasagne.run(built).result == 7
