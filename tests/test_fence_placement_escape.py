"""Fence placement over phi/select pointer chains: cases the syntactic
walk fenced (the seed behaviour) that the escape analysis now elides, and
the converse — a leaked alloca the walk calls "stack" that must stay
fenced."""

from repro.fences import count_fences, is_stack_address, place_fences
from repro.lir import (
    ArrayType,
    ConstantInt,
    ExternalFunction,
    Fence,
    Function,
    FunctionType,
    I8,
    I64,
    IRBuilder,
    Module,
    VOID,
    ptr,
)


def new_func(params=(), name="f"):
    m = Module("t")
    f = Function(name, FunctionType(I64, tuple(params)),
                 [f"a{i}" for i in range(len(params))])
    m.add_function(f)
    return m, f, IRBuilder(f.new_block("entry"))


def fences_in(module):
    return count_fences(module)


class TestBeyondTheWalk:
    def test_select_of_allocas_elided(self):
        """select(a1, a2): both arms are private allocas, so even the
        syntactic walk now sees through it (it ANDs over both operands) —
        and the escape analysis agrees, so no fences either way."""
        def build():
            m, f, b = new_func(params=(I64,))
            a1 = b.alloca(I64, "a1")
            a2 = b.alloca(I64, "a2")
            cond = b.icmp("eq", f.arguments[0], ConstantInt(I64, 0), "c")
            sel = b.select(cond, a1, a2, "sel")
            b.store(ConstantInt(I64, 7), sel)
            v = b.load(sel, name="v")
            b.ret(v)
            return m, sel

        m_old, sel = build()
        assert is_stack_address(sel)              # walk ANDs both arms
        old = place_fences(m_old, use_analysis=False)
        assert old.total_inserted == 0            # walk alone elides now
        assert old.skipped_stack == 2

        m_new, _ = build()
        new = place_fences(m_new)
        assert new.total_inserted == 0
        assert new.skipped_stack == 2
        assert fences_in(m_new) == fences_in(m_old) == 0

    def test_select_with_escaped_arm_stays_fenced(self):
        """If one select arm escapes, the walk still says stack (it only
        tracks alloca provenance) but the escape analysis keeps the fence."""
        def build():
            m, f, b = new_func(params=(I64,))
            sink = ExternalFunction("sink", FunctionType(VOID, (ptr(I64),)))
            m.externals["sink"] = sink
            a1 = b.alloca(I64, "a1")
            a2 = b.alloca(I64, "a2")
            b.call(sink, [a1])                    # a1 escapes
            cond = b.icmp("eq", f.arguments[0], ConstantInt(I64, 0), "c")
            sel = b.select(cond, a1, a2, "sel")
            b.store(ConstantInt(I64, 7), sel)
            v = b.load(sel, name="v")
            b.ret(v)
            return m

        m = build()
        new = place_fences(m)
        assert new.total_inserted == 2            # leaked arm keeps fences
        assert fences_in(m) == 2

    def test_phi_of_allocas_elided(self):
        def build():
            m = Module("t")
            f = Function("f", FunctionType(I64, (I64,)), ["x"])
            m.add_function(f)
            entry = f.new_block("entry")
            then = f.new_block("then")
            els = f.new_block("else")
            join = f.new_block("join")
            b = IRBuilder(entry)
            a1 = b.alloca(I64, "a1")
            a2 = b.alloca(I64, "a2")
            cond = b.icmp("eq", f.arguments[0], ConstantInt(I64, 0), "c")
            b.cond_br(cond, then, els)
            IRBuilder(then).br(join)
            IRBuilder(els).br(join)
            bj = IRBuilder(join)
            p = bj.phi(ptr(I64), "p")
            p.add_incoming(a1, then)
            p.add_incoming(a2, els)
            v = bj.load(p, name="v")
            bj.ret(v)
            return m, p

        m_old, p = build()
        assert not is_stack_address(p)
        old = place_fences(m_old, use_analysis=False)
        assert old.loads_fenced == 1

        m_new, _ = build()
        new = place_fences(m_new)
        assert new.loads_fenced == 0
        assert new.skipped_escape == 1

    def test_integer_stack_arithmetic_elided(self):
        """The lifted-code idiom: alloca → ptrtoint → add → inttoptr.
        This is exactly the pre-refinement shape Figure 14's popt config
        measures; the walk cannot see through the integers."""
        def build():
            m, f, b = new_func()
            st = b.alloca(ArrayType(I8, 64), "stacktop")
            s8 = b.bitcast(st, ptr(I8))
            tos = b.ptrtoint(s8, I64, "tos")
            sp = b.add(tos, ConstantInt(I64, 32), "sp")
            addr = b.inttoptr(sp, ptr(I64), "addr")
            b.store(ConstantInt(I64, 1), addr)
            v = b.load(addr, name="v")
            b.ret(v)
            return m, addr

        m_old, addr = build()
        assert not is_stack_address(addr)
        old = place_fences(m_old, use_analysis=False)
        assert old.total_inserted == 2

        m_new, _ = build()
        new = place_fences(m_new)
        assert new.total_inserted == 0
        assert new.skipped_escape == 2


class TestLeakedAlloca:
    def test_leaked_alloca_stays_fenced(self):
        """The walk reaches the alloca, but it was passed to a callee —
        another thread may now hold the address, so the access is fenced."""
        m, f, b = new_func()
        sink = ExternalFunction("sink", FunctionType(VOID, [ptr(I64)]))
        m.externals["sink"] = sink
        a = b.alloca(I64, "a")
        b.call(sink, [a])
        b.store(ConstantInt(I64, 1), a)
        v = b.load(a, name="v")
        b.ret(v)

        assert is_stack_address(a)                # the walk is fooled
        stats = place_fences(m)
        assert stats.total_inserted == 2
        assert stats.leaked_fenced == 2
        assert stats.total_elided == 0

    def test_walk_only_mode_misses_the_leak(self):
        """Documents why use_analysis=False is only the seed baseline: the
        pure walk would (unsoundly, for racy code) elide the leaked access."""
        m, f, b = new_func()
        sink = ExternalFunction("sink", FunctionType(VOID, [ptr(I64)]))
        m.externals["sink"] = sink
        a = b.alloca(I64, "a")
        b.call(sink, [a])
        v = b.load(a, name="v")
        b.ret(v)
        stats = place_fences(m, use_analysis=False)
        assert stats.skipped_stack == 1 and stats.total_inserted == 0


class TestDeepChains:
    def test_deep_gep_bitcast_chain_resolves(self):
        """Past-depth-64 chains made the old recursive walk give up; the
        iterative walk (and the fence placer) must still see the alloca."""
        m, f, b = new_func()
        arr = b.alloca(ArrayType(I8, 256), "arr")
        p = b.bitcast(arr, ptr(I8))
        for i in range(100):                      # > the old depth cap
            p = b.gep(I8, p, [ConstantInt(I64, 1)], f"p{i}")
            p = b.bitcast(p, ptr(I8))
        v = b.load(p, name="v")
        b.ret(ConstantInt(I64, 0))

        assert is_stack_address(p)
        stats = place_fences(m, use_analysis=False)
        assert stats.skipped_stack == 1
        assert stats.total_inserted == 0
        assert fences_in(m) == 0

    def test_fence_objects_untouched_elsewhere(self):
        """Placement over an escaping access still emits plain Fence nodes
        (merge relies on this)."""
        m, f, b = new_func(params=(ptr(I64),))
        v = b.load(f.arguments[0], name="v")
        b.ret(v)
        place_fences(m)
        kinds = [inst.kind for bb in f.blocks for inst in bb.instructions
                 if isinstance(inst, Fence)]
        assert kinds == ["rm"]


class TestIdempotence:
    def _shared_module(self):
        m, f, b = new_func(params=(ptr(I64), ptr(I64)))
        p, q = f.arguments
        v = b.load(p, name="v")
        b.store(v, q)
        b.ret(ConstantInt(I64, 0))
        return m, f

    def test_second_pass_inserts_nothing(self):
        m, f = self._shared_module()
        first = place_fences(m)
        assert first.total_inserted == 2
        assert first.already_fenced == 0
        before = [type(i).__name__ for i in f.instructions()]
        second = place_fences(m)
        assert second.total_inserted == 0
        assert second.already_fenced == 2
        after = [type(i).__name__ for i in f.instructions()]
        assert before == after               # module unchanged

    def test_fence_count_stable_across_reruns(self):
        m, _f = self._shared_module()
        place_fences(m)
        count = fences_in(m)
        for _ in range(3):
            place_fences(m)
            assert fences_in(m) == count

    def test_hand_placed_fence_respected(self):
        # An access already protected by a stronger (sc) adjacent fence
        # is treated as fenced, not double-fenced.
        m, f, b = new_func(params=(ptr(I64),))
        v = b.load(f.arguments[0], name="v")
        b.fence("sc")
        b.ret(v)
        stats = place_fences(m)
        assert stats.total_inserted == 0
        assert stats.already_fenced == 1
