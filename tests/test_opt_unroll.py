"""Tests for the full loop-unrolling pass (extension)."""


from repro.lir import DominatorTree, Interpreter, verify_module
from repro.minicc.frontend_lir import compile_to_lir
from repro.opt import (
    optimize_module,
    run_instcombine,
    run_mem2reg,
    run_unroll,
)


def prepare(src: str):
    m = compile_to_lir(src)
    expected = Interpreter(m).run("main")
    f = m.get_function("main")
    run_mem2reg(f)
    run_instcombine(f)
    return m, f, expected


def check(src: str, expect_unroll: bool = True):
    m, f, expected = prepare(src)
    changed = run_unroll(f)
    verify_module(m)
    assert Interpreter(m).run("main") == expected
    assert changed == expect_unroll
    return m, f, expected


class TestUnrolling:
    def test_simple_counting_loop(self):
        m, f, expected = check(
            "int main() { int s = 0; for (int i = 0; i < 5; i++) "
            "{ s += i; } return s; }"
        )
        assert not DominatorTree(f).back_edges()
        assert expected == 10

    def test_loop_with_memory(self):
        check(
            "int g[8]; int main() { int s = 0; "
            "for (int i = 0; i < 6; i++) { g[i] = i * 3; s += g[i]; } "
            "return s; }"
        )

    def test_accumulator_threading(self):
        """Multiple loop-carried phis thread correctly across iterations."""
        m, f, expected = check(
            "int main() { int a = 1; int b = 1; "
            "for (int i = 0; i < 7; i++) { int t = a + b; a = b; b = t; } "
            "return b; }"
        )
        assert expected == 34  # fib

    def test_loop_with_branch_in_body(self):
        check(
            "int main() { int s = 0; for (int i = 0; i < 8; i++) { "
            "if (i % 2 == 0) { s += i; } else { s -= 1; } } return s; }"
        )

    def test_step_greater_than_one(self):
        m, f, expected = check(
            "int main() { int s = 0; for (int i = 0; i < 10; i += 3) "
            "{ s += i; } return s; }"
        )
        assert expected == 0 + 3 + 6 + 9

    def test_count_down_loop(self):
        check(
            "int main() { int s = 0; for (int i = 5; i > 0; i -= 1) "
            "{ s += i; } return s; }"
        )

    def test_large_trip_count_not_unrolled(self):
        check(
            "int main() { int s = 0; for (int i = 0; i < 1000; i++) "
            "{ s += i; } return s; }",
            expect_unroll=False,
        )

    def test_dynamic_bound_not_unrolled(self):
        m = compile_to_lir(
            "int n = 9; int main() { int s = 0; "
            "for (int i = 0; i < n; i++) { s += i; } return s; }"
        )
        expected = Interpreter(m).run("main")
        f = m.get_function("main")
        run_mem2reg(f)
        run_instcombine(f)
        assert not run_unroll(f)
        assert Interpreter(m).run("main") == expected

    def test_zero_trip_loop_untouched(self):
        check(
            "int main() { int s = 3; for (int i = 5; i < 5; i++) "
            "{ s = 99; } return s; }",
            expect_unroll=False,
        )

    def test_nested_loops_unroll_completely(self):
        m, f, expected = check(
            "int main() { int s = 0; for (int i = 0; i < 3; i++) { "
            "for (int j = 0; j < 4; j++) { s += i * j; } } return s; }"
        )
        optimize_module(m, verify=True)
        assert Interpreter(m).run("main") == expected
        # after unrolling both levels and folding, main is loop-free
        assert not DominatorTree(m.get_function("main")).back_edges()

    def test_unroll_enables_constant_folding(self):
        m, f, expected = check(
            "int main() { int s = 0; for (int i = 0; i < 4; i++) "
            "{ s += i * i; } return s; }"
        )
        optimize_module(m, verify=True)
        assert m.get_function("main").instruction_count() <= 2  # ret const
        assert expected == 14

    def test_pass_registered(self):
        from repro.opt import FUNCTION_PASSES

        assert "unroll" in FUNCTION_PASSES
