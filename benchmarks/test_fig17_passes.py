"""Figure 17: per-pass code reduction on kmeans, each pass in isolation.

The paper applies each LLVM optimization alone to the lifted (refined +
fence-placed) kmeans bitcode and reports the code-size reduction;
instcombine, dce, adce and licm are the most impactful, mem2reg/gvn etc.
follow.  We measure the same quantity over our pass set.

One lifter-specific adjustment, recorded in DESIGN.md: mctoll tracks
register values as SSA while lifting, whereas our lifter materializes them
in memory slots.  To measure each pass against the same kind of baseline
the paper used (SSA-shaped lifted code full of flag/sub-register junk), the
isolation base is lift + fence placement + ``mem2reg`` — the passes then
compete on the remaining cleanup exactly as in the paper's Figure 17.
"""

from conftest import print_table

from repro.fences import place_fences
from repro.lifter import lift_program
from repro.minicc import compile_to_x86
from repro.opt import optimize_module, run_mem2reg
from repro.phoenix import SIZE_TINY, scale

PASSES = [
    "instcombine", "dce", "adce", "licm", "reassociate", "gvn",
    "sroa", "sccp", "ipsccp", "dse", "simplifycfg",
]


def _fresh_kmeans_module():
    program = scale("kmeans", SIZE_TINY["kmeans"])
    obj = compile_to_x86(program.source)
    module = lift_program(obj)
    place_fences(module)
    for func in module.functions.values():
        if not func.is_declaration:
            run_mem2reg(func)
    return module


def test_fig17_pass_isolation(evaluation):
    reductions = {}
    for name in PASSES:
        module = _fresh_kmeans_module()
        before = module.instruction_count()
        optimize_module(module, [name], max_iterations=1)
        after = module.instruction_count()
        reductions[name] = 100.0 * (before - after) / before
    rows = [
        [name, f"{reductions[name]:.1f}%"]
        for name in sorted(reductions, key=lambda n: -reductions[n])
    ]
    print_table(
        "Figure 17 — per-pass code reduction on kmeans (isolated)",
        ["pass", "reduction"],
        rows,
    )
    # Shape: the cleanup passes the paper singles out all help...
    for name in ("instcombine", "dce", "adce"):
        assert reductions[name] > 5.0, name
    # ...no pass increases code size...
    for name, red in reductions.items():
        assert red >= 0.0, name
    # ...and some passes are far more impactful than others.
    assert max(reductions.values()) > 4 * min(
        r for r in reductions.values() if r > 0
    )


def test_standard_pipeline_beats_any_single_pass():
    module = _fresh_kmeans_module()
    before = module.instruction_count()
    single_best = 0.0
    for name in PASSES:
        m = _fresh_kmeans_module()
        b = m.instruction_count()
        optimize_module(m, [name], max_iterations=1)
        single_best = max(single_best, 100.0 * (b - m.instruction_count()) / b)
    optimize_module(module)
    pipeline_red = 100.0 * (before - module.instruction_count()) / before
    print(f"\npipeline reduction: {pipeline_red:.1f}% "
          f"(best single pass: {single_best:.1f}%)")
    assert pipeline_red > single_best


def test_fixpoint_iteration_attribution(evaluation):
    """PassStats records carry the fixpoint iteration, so the reduction can
    be attributed per iteration: the first pass over the module must do the
    bulk of the cleanup, with diminishing returns afterwards."""
    module = _fresh_kmeans_module()
    stats = optimize_module(module)
    by_iter = stats.reduction_by_iteration()
    rows = [
        [f"iter {i}", str(by_iter[i]),
         ", ".join(stats.changed_passes(iteration=i)) or "(fixpoint)"]
        for i in sorted(by_iter)
    ]
    print_table(
        "O2 fixpoint — instructions removed per iteration (kmeans)",
        ["iteration", "removed", "passes that changed the module"],
        rows,
    )
    assert stats.iterations >= 2
    assert by_iter[0] > sum(by_iter[i] for i in by_iter if i > 0)
    # The final iteration is the fixpoint check: no pass reports a change.
    assert stats.changed_passes(iteration=stats.iterations - 1) == []


def test_pass_pipeline_throughput(benchmark):
    """pytest-benchmark: full O2 pipeline over refined kmeans."""

    def pipeline():
        module = _fresh_kmeans_module()
        optimize_module(module)
        return module

    module = benchmark.pedantic(pipeline, rounds=2, iterations=1)
    assert module.instruction_count() > 0
