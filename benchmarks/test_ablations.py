"""Ablation benches for the design choices DESIGN.md calls out.

* fence-cost sensitivity: how Figure 12's gaps react when DMB barriers get
  cheaper/more expensive (the knob behind the paper's runtime numbers);
* sroa-extended pipeline: what full stack scalarization (beyond the
  paper-era LLVM behaviour) would buy PPOpt;
* refinement vs merging in isolation: each §5/§7 mechanism's contribution
  to the fence count.
"""

import pytest
from conftest import print_table

from repro.arm import ArmEmulator
from repro.arm.costs import COSTS
from repro.core import Lasagne
from repro.fences import count_fences, merge_fences, place_fences
from repro.lifter import lift_program
from repro.minicc import compile_to_x86
from repro.opt import optimize_module
from repro.phoenix import SIZE_TINY, scale
from repro.refine import run_refinement

PROGRAM = scale("histogram", SIZE_TINY["histogram"])


def _cycles(built) -> int:
    emu = ArmEmulator(built.program)
    emu.run()
    return sum(t.cycles for t in emu.threads)


def test_fence_cost_sensitivity():
    """The Opt↔PPOpt runtime gap must grow with barrier cost."""
    lasagne = Lasagne(verify=False)
    opt = lasagne.build(PROGRAM.source, "opt")
    ppopt = lasagne.build(PROGRAM.source, "ppopt")
    saved = dict(COSTS)
    gaps = {}
    try:
        for scale_factor in (0, 1, 4):
            for key in ("dmb ish", "dmb ishld", "dmb ishst"):
                COSTS[key] = max(1, saved[key] * scale_factor)
            gaps[scale_factor] = _cycles(opt) / _cycles(ppopt)
    finally:
        COSTS.update(saved)
    rows = [[f"×{k}", f"{v:.2f}"] for k, v in sorted(gaps.items())]
    print_table("Ablation — Opt/PPOpt gap vs fence cost",
                ["fence cost scale", "Opt ÷ PPOpt"], rows)
    assert gaps[4] > gaps[1] > gaps[0]


def test_sroa_extension():
    """Adding sroa to the PPOpt pipeline (beyond the default) shrinks the
    translated binary further — the 'future work' headroom."""
    obj = compile_to_x86(PROGRAM.source)
    module = lift_program(obj)
    run_refinement(module)
    place_fences(module)
    optimize_module(module)
    merge_fences(module)
    base = module.instruction_count()

    module2 = lift_program(obj)
    run_refinement(module2)
    place_fences(module2)
    optimize_module(module2, ["sroa", "mem2reg"] +
                    __import__("repro.opt", fromlist=["STANDARD_PIPELINE"])
                    .STANDARD_PIPELINE)
    merge_fences(module2)
    extended = module2.instruction_count()
    print(f"\nPPOpt instructions: default={base}, +sroa={extended}")
    assert extended <= base


def test_refinement_vs_merging_isolation():
    obj = compile_to_x86(PROGRAM.source)

    naive = lift_program(obj)
    place_fences(naive)
    n_naive = count_fences(naive)

    merged = lift_program(obj)
    place_fences(merged)
    optimize_module(merged)
    merge_fences(merged)
    n_merge = count_fences(merged)

    refined = lift_program(obj)
    run_refinement(refined)
    place_fences(refined)
    optimize_module(refined)
    n_refine = count_fences(refined)

    both = lift_program(obj)
    run_refinement(both)
    place_fences(both)
    optimize_module(both)
    merge_fences(both)
    n_both = count_fences(both)

    rows = [
        ["naive placement", n_naive],
        ["+ merging only (POpt)", n_merge],
        ["+ refinement only", n_refine],
        ["+ both (PPOpt)", n_both],
    ]
    print_table("Ablation — fence count by mechanism", ["build", "fences"], rows)
    assert n_both <= n_refine <= n_naive
    assert n_merge <= n_naive
    # Refinement removes more fences than merging does (Fig. 14's story).
    assert (n_naive - n_refine) > (n_naive - n_merge)


def test_stack_size_parameter():
    """The reconstructed stack size (§4.2.3) does not change results."""
    obj = compile_to_x86(PROGRAM.source)
    from repro.lir import Interpreter

    results = set()
    for stack_size in (2048, 4096, 8192):
        module = lift_program(obj, stack_size=stack_size)
        results.add(Interpreter(module).run("main"))
    assert len(results) == 1


def test_inlining_extension():
    """Inlining (not part of the paper's measured pipeline) as an ablation:
    applied on top of PPOpt it must preserve results and not grow the
    translated binary's runtime."""
    from repro.lir import Interpreter
    from repro.opt import run_inline

    obj = compile_to_x86(PROGRAM.source)
    expected = None

    module = lift_program(obj)
    run_refinement(module)
    place_fences(module)
    optimize_module(module)
    merge_fences(module)
    base_insts = module.instruction_count()
    expected = Interpreter(module).run("main")

    module2 = lift_program(obj)
    run_refinement(module2)
    place_fences(module2)
    run_inline(module2)
    optimize_module(module2)
    merge_fences(module2)
    inlined_insts = module2.instruction_count()
    got = Interpreter(module2).run("main")
    assert got == expected

    from repro.codegen import compile_lir_to_arm

    base_cycles = _run_cycles(compile_lir_to_arm(module))
    inl_cycles = _run_cycles(compile_lir_to_arm(module2))
    print(f"\nPPOpt: {base_insts} IR insts / {base_cycles} cycles; "
          f"+inline: {inlined_insts} IR insts / {inl_cycles} cycles")
    assert inl_cycles <= base_cycles * 1.1  # never meaningfully worse


def _run_cycles(program) -> int:
    emu = ArmEmulator(program)
    emu.run()
    return sum(t.cycles for t in emu.threads)


def test_lazy_flag_lifting():
    """How much of the Lifted configuration's bulk is dead flag code: lift
    with per-instruction flag liveness instead of eager materialization."""
    from repro.lir import Interpreter

    obj = compile_to_x86(PROGRAM.source)
    eager = lift_program(obj)
    lazy = lift_program(obj, lazy_flags=True)
    assert Interpreter(eager).run("main") == Interpreter(lazy).run("main")

    e_count, l_count = eager.instruction_count(), lazy.instruction_count()
    reduction = 100.0 * (e_count - l_count) / e_count
    print(f"\nlifted size: eager={e_count}, lazy={l_count} "
          f"({reduction:.1f}% of Lifted is dead flag code)")
    assert l_count < e_count

    # After O2 both converge: the flag junk was dead anyway.
    optimize_module(eager)
    optimize_module(lazy)
    assert abs(eager.instruction_count() - lazy.instruction_count()) <= max(
        4, eager.instruction_count() // 20
    )
