"""Table 1: the Phoenix benchmark suite (abbreviation, #functions, LoC).

Paper values: HT 4/171, KM 7/235, LR 2/120, MM 3/179, SM 5/205.  Our
mini-C re-implementations are smaller but keep the same per-kernel shape
(kmeans has the most functions, linear_regression the fewest).
"""

from conftest import print_table

from repro.minicc import compile_to_x86
from repro.phoenix import SIZE_TINY, all_programs, scale

PAPER_TABLE1 = {
    "histogram": (4, 171),
    "kmeans": (7, 235),
    "linear_regression": (2, 120),
    "matrix_multiply": (3, 179),
    "string_match": (5, 205),
}


def test_table1(evaluation):
    rows = []
    for program in all_programs(SIZE_TINY):
        nfunc = program.function_count()
        loc = program.loc()
        paper_f, paper_loc = PAPER_TABLE1[program.name]
        rows.append(
            [program.abbrev, program.name, nfunc, paper_f, loc, paper_loc]
        )
        assert nfunc >= 2
        assert loc >= 30
    print_table(
        "Table 1 — Phoenix suite",
        ["Abbrv", "Benchmark", "#Func", "(paper)", "LoC", "(paper)"],
        rows,
    )
    # Relative shape: kmeans is the largest kernel, LR among the smallest.
    by_name = {r[1]: r for r in rows}
    assert by_name["kmeans"][2] == max(r[2] for r in rows)
    assert by_name["linear_regression"][2] == min(r[2] for r in rows)


def test_compile_throughput(benchmark):
    """pytest-benchmark: mini-C → linked x86 image compile time."""
    program = scale("kmeans", SIZE_TINY["kmeans"])
    obj = benchmark(compile_to_x86, program.source)
    assert obj.functions
