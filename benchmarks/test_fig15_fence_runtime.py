"""Figure 15: runtime improvement attributable to fence reduction alone.

Paper: 2.65% (POpt) and 5.63% (PPOpt) GMean, isolating fence removal from
the other effects of optimization.  We isolate the same quantity through
the cost model: the Arm emulator tracks cycles spent in DMB barriers, and
the fence-only reduction for configuration C is

    (fence_cycles(Lifted) − fence_cycles(C)) / total_cycles(Lifted)

i.e. the fraction of the unoptimized run's time that the better placement
saves, with all non-fence work held at the Lifted baseline.
"""

from conftest import PAPER, print_table

from repro.arm import ArmEmulator
from repro.core import Lasagne
from repro.phoenix import SIZE_TINY, all_programs, geomean


def _fence_profile(program_source: str, config: str, lasagne: Lasagne):
    built = lasagne.build(program_source, config)
    emu = ArmEmulator(built.program)
    emu.run()
    total = sum(t.cycles for t in emu.threads)
    fences = sum(t.fence_cycles for t in emu.threads)
    return total, fences


def test_fig15_fence_only_runtime_reduction(evaluation):
    lasagne = Lasagne(verify=False)
    rows = []
    popt_vals, ppopt_vals = [], []
    for program in all_programs(SIZE_TINY):
        total_l, fences_l = _fence_profile(program.source, "lifted", lasagne)
        _, fences_p = _fence_profile(program.source, "popt", lasagne)
        _, fences_pp = _fence_profile(program.source, "ppopt", lasagne)
        red_p = 100.0 * max(0, fences_l - fences_p) / total_l
        red_pp = 100.0 * max(0, fences_l - fences_pp) / total_l
        popt_vals.append(red_p)
        ppopt_vals.append(red_pp)
        rows.append(
            [program.name, f"{100.0 * fences_l / total_l:.1f}%",
             f"{red_p:.2f}%", f"{red_pp:.2f}%"]
        )
    g_p, g_pp = geomean(popt_vals), geomean(ppopt_vals)
    rows.append(["GMean", "", f"{g_p:.2f}%", f"{g_pp:.2f}%"])
    rows.append(
        ["(paper)", "", f"{PAPER['fig15']['popt']:.2f}%",
         f"{PAPER['fig15']['ppopt']:.2f}%"]
    )
    print_table(
        "Figure 15 — runtime reduction from fence removal alone",
        ["benchmark", "fence share (lifted)", "POpt", "PPOpt"],
        rows,
    )
    # Shape: PPOpt's fence savings exceed POpt's on every benchmark, and
    # both are a modest single/double-digit share of total runtime.
    assert g_pp > g_p > 0
    assert g_pp < 60.0
