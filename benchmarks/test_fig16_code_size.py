"""Figure 16: code-size increase (IR instructions) relative to Native.

Paper: Lifted +337.8%, Opt +85.7%, POpt +84.4%, PPOpt +68.2% GMean.  The
ordering (Lifted ≫ Opt ≳ POpt > PPOpt, all above Native) is the
reproduction target.
"""

from conftest import PAPER, print_table

from repro.phoenix import geomean

CONFIGS = ["lifted", "opt", "popt", "ppopt"]


def test_fig16_code_size(evaluation):
    rows = []
    increases = {c: [] for c in CONFIGS}
    for row in evaluation:
        vals = [row.code_increase(c) for c in CONFIGS]
        for c, v in zip(CONFIGS, vals):
            increases[c].append(v)
        rows.append(
            [row.program, row.metrics["native"].lir_instructions]
            + [f"+{v:.1f}%" for v in vals]
        )
    gmeans = {c: geomean(increases[c]) for c in CONFIGS}
    rows.append(["GMean", ""] + [f"+{gmeans[c]:.1f}%" for c in CONFIGS])
    rows.append(
        ["(paper)", ""] + [f"+{PAPER['fig16'][c]:.1f}%" for c in CONFIGS]
    )
    print_table(
        "Figure 16 — code size increase over native (LIR instructions)",
        ["benchmark", "native"] + CONFIGS,
        rows,
    )
    # Shape assertions.
    assert gmeans["lifted"] > 2 * gmeans["opt"]   # lifting bloat dominates
    assert gmeans["ppopt"] < gmeans["opt"]        # refinement shrinks code
    assert gmeans["ppopt"] <= gmeans["popt"]
    for c in CONFIGS:
        assert gmeans[c] > 0                      # all above native


def test_arm_instruction_counts_follow(evaluation):
    """The final Arm binaries follow the same size ordering."""
    for row in evaluation:
        assert (
            row.metrics["ppopt"].arm_instructions
            <= row.metrics["opt"].arm_instructions
            <= row.metrics["lifted"].arm_instructions
        )
