"""Litmus-level benchmark: the Fig. 8 mappings hold across the battery,
plus enumeration throughput (the stand-in for the Agda checking effort)."""

from conftest import print_table

from repro.memmodel import (
    CoRR,
    CoWW,
    LB,
    MP,
    SB,
    SB_FENCED_X86,
    check_x86_to_arm,
    check_x86_to_ir,
    consistent_executions,
    map_x86_to_arm,
    map_x86_to_ir,
    outcomes,
)

BATTERY = [SB, MP, LB, CoRR, CoWW, SB_FENCED_X86]


def test_mapping_battery():
    rows = []
    for program in BATTERY:
        ok_ir = check_x86_to_ir(program, compare="outcome")
        ok_arm = check_x86_to_arm(program, compare="outcome")
        n_src = len(outcomes(program, "x86"))
        n_tgt = len(outcomes(map_x86_to_arm(program), "arm"))
        rows.append([program.name, n_src, n_tgt, ok_ir, ok_arm])
        assert ok_ir and ok_arm, program.name
    print_table(
        "Theorem 7.1 — mapping correctness on the litmus battery",
        ["litmus", "x86 outcomes", "mapped-Arm outcomes", "x86→IR", "x86→Arm"],
        rows,
    )


def test_enumeration_throughput(benchmark):
    """pytest-benchmark: consistent-execution enumeration for mapped MP."""
    program = map_x86_to_arm(MP)

    def enumerate_arm():
        return consistent_executions(program, "arm")

    executions = benchmark(enumerate_arm)
    assert executions
