"""Figure 14: static fence reduction relative to the naive-placement
Lifted build.

Paper: merging alone (POpt) removes 6.3% GMean; refinement + merging
(PPOpt) removes 45.5% GMean, up to ~65%.  The mechanism reproduced here is
exactly the paper's: refinement exposes stack addresses as typed pointers,
so the §8 placement's use-def walk can prove them thread-local and skip
them.  Our reductions are larger because unoptimized mini-C binaries have
proportionally more stack traffic (see EXPERIMENTS.md).
"""

from conftest import PAPER, print_table

from repro.phoenix import geomean


def test_fig14_fence_reduction(evaluation):
    rows = []
    popt_vals, ppopt_vals = [], []
    for row in evaluation:
        naive = row.metrics["lifted"].fences
        popt = row.fence_reduction("popt")
        ppopt = row.fence_reduction("ppopt")
        popt_vals.append(popt)
        ppopt_vals.append(ppopt)
        rows.append(
            [row.program, naive, row.metrics["popt"].fences,
             row.metrics["ppopt"].fences, f"{popt:.1f}%", f"{ppopt:.1f}%"]
        )
    g_popt, g_ppopt = geomean(popt_vals), geomean(ppopt_vals)
    rows.append(["GMean", "", "", "", f"{g_popt:.1f}%", f"{g_ppopt:.1f}%"])
    rows.append(
        ["(paper)", "", "", "",
         f"{PAPER['fig14']['popt']:.1f}%", f"{PAPER['fig14']['ppopt']:.1f}%"]
    )
    print_table(
        "Figure 14 — fence reduction vs naive placement",
        ["benchmark", "lifted", "popt", "ppopt", "POpt red.", "PPOpt red."],
        rows,
    )
    # Shape: merging alone removes a little; refinement removes a lot more.
    assert 0 < g_popt < g_ppopt
    for row in evaluation:
        assert row.fence_reduction("ppopt") > row.fence_reduction("popt")
        # every benchmark keeps at least one fence (shared accesses exist)
        assert row.metrics["ppopt"].fences > 0


def test_remaining_fences_guard_shared_accesses(evaluation):
    """PPOpt keeps a fence for every kernel's genuinely shared traffic —
    never optimizing a program down to zero fences (correctness floor)."""
    for row in evaluation:
        ppopt = row.metrics["ppopt"]
        assert ppopt.fences >= 4, row.program
        # and the naive build always has strictly more
        assert row.metrics["lifted"].fences > ppopt.fences, row.program
