"""Figure 12: runtime of the five configurations, normalized to Native.

Paper (GMean over the suite): Native 1.0, Lifted 2.89, Opt 1.67,
POpt 1.62, PPOpt 1.51.  The reproduction target is the *ordering* and the
relative placement of the optimized configurations between Lifted and
Native; our absolute factors are larger because the source binaries are
produced by mini-C (stack-machine style, -O0-like) rather than gcc -O3 —
see EXPERIMENTS.md.
"""

from conftest import PAPER, print_table

from repro.core import Lasagne
from repro.phoenix import SIZE_TINY, geomean, scale

CONFIG_ORDER = ["native", "lifted", "opt", "popt", "ppopt"]


def test_fig12_normalized_runtime(evaluation):
    rows = []
    norm = {c: [] for c in CONFIG_ORDER}
    for row in evaluation:
        values = [row.normalized_runtime(c) for c in CONFIG_ORDER]
        for c, v in zip(CONFIG_ORDER, values):
            norm[c].append(v)
        rows.append([row.program] + [f"{v:.2f}" for v in values])
    gmeans = {c: geomean(norm[c]) for c in CONFIG_ORDER}
    rows.append(
        ["GMean"] + [f"{gmeans[c]:.2f}" for c in CONFIG_ORDER]
    )
    rows.append(
        ["(paper)"] + ["1.00"] + [
            f"{PAPER['fig12'][c]:.2f}" for c in CONFIG_ORDER[1:]
        ]
    )
    print_table("Figure 12 — normalized runtime (lower is better)",
                ["benchmark"] + CONFIG_ORDER, rows)

    # Shape assertions: strict ordering on the geomean, per the paper.
    assert gmeans["native"] == 1.0
    assert gmeans["ppopt"] < gmeans["popt"] < gmeans["opt"] < gmeans["lifted"]
    # Lifted is by far the slowest (paper: ~1.7-2x over Opt).
    assert gmeans["lifted"] / gmeans["opt"] > 1.5
    # The fully optimized translation pays a real overhead over native.
    assert gmeans["ppopt"] > 1.0


def test_fig12_per_benchmark_ordering(evaluation):
    for row in evaluation:
        assert row.normalized_runtime("ppopt") <= row.normalized_runtime("popt")
        assert row.normalized_runtime("popt") <= row.normalized_runtime("opt")
        assert row.normalized_runtime("opt") <= row.normalized_runtime("lifted")


def test_translation_throughput(benchmark):
    """pytest-benchmark: end-to-end PPOpt translation time for kmeans."""
    program = scale("kmeans", SIZE_TINY["kmeans"])
    lasagne = Lasagne(verify=False)

    def translate():
        return lasagne.build(program.source, "ppopt")

    built = benchmark.pedantic(translate, rounds=3, iterations=1)
    assert built.fences >= 0
