"""Shared fixtures for the evaluation benchmarks (§9).

The whole Phoenix suite is evaluated once per pytest session and shared by
every figure benchmark.  Each ``test_figNN`` module prints the reproduced
rows next to the paper's numbers; EXPERIMENTS.md records the comparison.
"""

from __future__ import annotations

import pytest

from repro.phoenix import SIZE_TINY, evaluate_suite, geomean

# Paper numbers (for side-by-side printing).
PAPER = {
    "fig12": {"lifted": 2.89, "opt": 1.67, "popt": 1.62, "ppopt": 1.51},
    "fig13_casts": 51.1,
    "fig14": {"popt": 6.3, "ppopt": 45.5},
    "fig15": {"popt": 2.65, "ppopt": 5.63},
    "fig16": {"lifted": 337.8, "opt": 85.7, "popt": 84.4, "ppopt": 68.2},
}


@pytest.fixture(scope="session")
def evaluation():
    """All five kernels × five configurations, differentially checked."""
    return evaluate_suite(size=SIZE_TINY, verify=False)


def print_table(title: str, headers: list[str], rows: list[list[str]]) -> None:
    widths = [
        max(len(str(r[i])) for r in [headers] + rows) for i in range(len(headers))
    ]
    print(f"\n== {title}")
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


__all__ = ["PAPER", "evaluation", "print_table", "geomean"]
