"""Figure 13: % of integer↔pointer cast instructions removed by IR
refinement (§5), relative to the unoptimized lifted code.

Paper: ~51.1% GMean.  Our mini-C binaries route *all* stack traffic
through integer addresses, so the refinement removes a larger share; the
residual casts match the paper's two described leftover cases (addresses
loaded from memory / function-call results, and unpromotable parameters).
"""

from conftest import PAPER, print_table

from repro.phoenix import geomean


def test_fig13_cast_reduction(evaluation):
    rows = []
    values = []
    for row in evaluation:
        red = row.cast_reduction()
        before = row.metrics["ppopt"].pointer_casts_before
        after = row.metrics["ppopt"].pointer_casts_after
        values.append(red)
        rows.append([row.program, before, after, f"{red:.1f}%"])
    gmean = geomean(values)
    rows.append(["GMean", "", "", f"{gmean:.1f}%"])
    rows.append(["(paper)", "", "", f"{PAPER['fig13_casts']:.1f}%"])
    print_table(
        "Figure 13 — pointer-cast reduction",
        ["benchmark", "before", "after", "removed"],
        rows,
    )
    # Shape: refinement removes at least half of the casts everywhere.
    for row in evaluation:
        assert row.cast_reduction() >= 50.0, row.program
    # ...but never all of them: opaque roots (heap addresses returned by
    # calls / loaded from memory) legitimately remain (§9.3 cases i-ii).
    for row in evaluation:
        assert row.metrics["ppopt"].pointer_casts_after > 0, row.program
