"""AArch64-subset emulator with a cycle cost model.

Executes an :class:`~repro.arm.program.ArmProgram`.  Code addresses are
synthetic (function index × 2^20 + instruction index) since the Arm side is
structured rather than byte-encoded; data lives in a flat byte memory that
shares its layout with the x86 emulator, so lifted programs see the same
global addresses on both sides.

Cycle accounting uses :mod:`repro.arm.costs`; per-thread cycles are summed
into ``total_cycles``, the runtime metric of the Figure 12/15 benchmarks.
"""

from __future__ import annotations

import struct
from typing import Callable, Optional

from .. import telemetry
from ..loader.externs import RETRY
from .costs import cost_of
from .isa import AImm, AInstr, AMem, DReg, XReg
from .program import DATA_BASE, ArmProgram

HEAP_BASE = 0x900000
STACK_BASE = 0x2000000
STACK_SIZE = 0x40000
MEMORY_SIZE = STACK_BASE + 64 * STACK_SIZE

CODE_STRIDE = 1 << 20
EXTERNAL_BASE = 1 << 40


class ArmEmuError(Exception):
    pass


def _signed(v: int, bits: int = 64) -> int:
    v &= (1 << bits) - 1
    if v >= 1 << (bits - 1):
        v -= 1 << bits
    return v


class ArmThread:
    def __init__(self, tid: int, pc: int, sp: int) -> None:
        self.tid = tid
        self.x: dict[str, int] = {f"x{i}": 0 for i in range(31)}
        self.x["sp"] = sp
        self.d: dict[str, float] = {f"d{i}": 0.0 for i in range(32)}
        self.flags = {"n": 0, "z": 0, "c": 0, "v": 0}
        self.pc = pc
        self.done = False
        self.cycles = 0
        self.fence_cycles = 0  # cycles spent in dmb barriers
        self.instret = 0
        self.monitor: Optional[int] = None  # exclusive monitor address


class ArmEmulator:
    def __init__(self, program: ArmProgram, quantum: int = 64) -> None:
        self.program = program
        self.quantum = quantum
        self.memory = bytearray(MEMORY_SIZE)
        self.heap_ptr = HEAP_BASE
        self.output: list[str] = []
        self.threads: list[ArmThread] = []
        self.next_tid = 0
        self.steps = 0
        self.max_steps = 500_000_000
        self.total_cycles = 0
        self.code: list[list[AInstr]] = []
        self.func_index: dict[str, int] = {}
        self.labels: dict[tuple[int, str], int] = {}
        self.symbols: dict[str, int] = {}
        self.external_addr: dict[str, int] = {}
        self._resolve()
        self.externals: dict[str, Callable[[ArmThread], None]] = {
            "malloc": self._ext_malloc,
            "spawn": self._ext_spawn,
            "join": self._ext_join,
            "print_i64": self._ext_print_i64,
            "print_f64": self._ext_print_f64,
            "abort": self._ext_abort,
            "thread_id": self._ext_thread_id,
            "sqrt": self._ext_sqrt,
        }
        # Loader-catalog externals (libc names from real ELF binaries)
        # run through the shared execution kernel, so both emulators
        # produce identical output streams for the oracle.
        from ..loader.externs import install_arm_catalog
        install_arm_catalog(self)

    # ---- program loading -------------------------------------------------
    def _resolve(self) -> None:
        for fi, (name, func) in enumerate(self.program.functions.items()):
            self.func_index[name] = fi
            insts: list[AInstr] = []
            for item in func.items:
                if isinstance(item, str):
                    self.labels[(fi, item)] = len(insts)
                else:
                    insts.append(item)
            self.code.append(insts)
            self.symbols[name] = fi * CODE_STRIDE
        for i, name in enumerate(self.program.externals):
            addr = EXTERNAL_BASE + i
            self.external_addr[name] = addr
            self.symbols.setdefault(name, addr)
        addr = DATA_BASE
        for g in self.program.globals.values():
            addr = (addr + 15) & ~15
            self.symbols[g.name] = addr
            if g.init:
                self.memory[addr : addr + len(g.init)] = g.init
            addr += max(1, g.size)

    def _label_target(self, pc: int, label: str) -> int:
        fi = pc // CODE_STRIDE
        key = (fi, label)
        if key in self.labels:
            return fi * CODE_STRIDE + self.labels[key]
        if label in self.symbols:
            return self.symbols[label]
        raise ArmEmuError(f"unresolved label {label!r}")

    # ---- memory -----------------------------------------------------------
    def _check(self, addr: int, size: int) -> None:
        if addr < 0 or addr + size > len(self.memory):
            raise ArmEmuError(f"memory access out of range: {addr:#x}+{size}")

    def load(self, addr: int, size: int) -> int:
        self._check(addr, size)
        return int.from_bytes(self.memory[addr : addr + size], "little")

    def store(self, addr: int, size: int, value: int) -> None:
        self._check(addr, size)
        self.memory[addr : addr + size] = (value & ((1 << (8 * size)) - 1)).to_bytes(
            size, "little"
        )
        # A store to a monitored address clears other threads' monitors.
        for t in self.threads:
            if t.monitor is not None and t.monitor == addr:
                if t is not self._current:
                    t.monitor = None

    # ---- registers ------------------------------------------------------------
    @staticmethod
    def _rx(thread: ArmThread, name: str) -> int:
        if name == "xzr":
            return 0
        return thread.x[name]

    @staticmethod
    def _wx(thread: ArmThread, name: str, value: int) -> None:
        if name == "xzr":
            return
        thread.x[name] = value & (2**64 - 1)

    def _operand(self, thread: ArmThread, op) -> int:
        if isinstance(op, XReg):
            return self._rx(thread, op.name)
        if isinstance(op, AImm):
            return op.value & (2**64 - 1)
        raise ArmEmuError(f"bad integer operand {op!r}")

    def _mem_addr(self, thread: ArmThread, mem: AMem) -> int:
        addr = self._rx(thread, mem.base) + mem.offset_imm
        if mem.offset_reg is not None:
            addr += self._rx(thread, mem.offset_reg)
        return addr & (2**64 - 1)

    # ---- run ---------------------------------------------------------------------
    def run(self, entry: Optional[str] = None, args: Optional[list[int]] = None) -> int:
        name = entry or self.program.entry
        main = self._make_thread(self.symbols[name])
        for i, v in enumerate(args or []):
            main.x[f"x{i}"] = v & (2**64 - 1)
        while not main.done:
            self._schedule()
        self.total_cycles = sum(t.cycles for t in self.threads)
        if telemetry.enabled():
            telemetry.count("emu.arm.cycles", self.total_cycles)
            telemetry.count("emu.arm.fence_cycles",
                            sum(t.fence_cycles for t in self.threads))
            telemetry.count("emu.arm.instret",
                            sum(t.instret for t in self.threads))
            telemetry.count("emu.arm.threads", len(self.threads))
        return _signed(main.x["x0"])

    RETURN_SENTINEL = (1 << 44) + 7

    def _make_thread(self, pc: int) -> ArmThread:
        tid = self.next_tid
        self.next_tid += 1
        sp = STACK_BASE + (tid + 1) * STACK_SIZE - 64
        thread = ArmThread(tid, pc, sp)
        thread.x["x30"] = self.RETURN_SENTINEL
        self.threads.append(thread)
        return thread

    def _schedule(self) -> None:
        ran = False
        for thread in list(self.threads):
            if thread.done:
                continue
            ran = True
            for _ in range(self.quantum):
                if thread.done:
                    break
                self.step(thread)
        if not ran:
            raise ArmEmuError("no runnable threads")

    _current: Optional[ArmThread] = None

    def _fetch(self, pc: int) -> AInstr:
        fi, idx = pc // CODE_STRIDE, pc % CODE_STRIDE
        if fi >= len(self.code) or idx >= len(self.code[fi]):
            raise ArmEmuError(f"pc outside code: {pc:#x}")
        return self.code[fi][idx]

    # ---- single step ----------------------------------------------------------
    def step(self, thread: ArmThread) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise ArmEmuError("instruction budget exceeded")
        self._current = thread
        instr = self._fetch(thread.pc)
        thread.instret += 1
        cost = cost_of(instr.mnemonic)
        thread.cycles += cost
        if instr.mnemonic.startswith("dmb"):
            thread.fence_cycles += cost
        next_pc = thread.pc + 1
        mn = instr.mnemonic
        ops = instr.operands

        if mn == "mov":
            dst, src = ops
            if isinstance(dst, XReg):
                self._wx(thread, dst.name, self._operand(thread, src))
            else:
                thread.d[dst.name] = thread.d[src.name]
        elif mn == "adr":
            dst, label = ops
            self._wx(thread, dst.name, self._label_target(thread.pc, label.name))
        elif mn in ("ldr", "ldr32", "ldrb", "ldar", "ldxr"):
            dst, mem = ops
            size = {"ldr": 8, "ldr32": 4, "ldrb": 1, "ldar": 8, "ldxr": 8}[mn]
            addr = self._mem_addr(thread, mem)
            if mn == "ldxr":
                thread.monitor = addr
            self._wx(thread, dst.name, self.load(addr, size))
        elif mn in ("str", "str32", "strb", "stlr"):
            src, mem = ops
            size = {"str": 8, "str32": 4, "strb": 1, "stlr": 8}[mn]
            self.store(
                self._mem_addr(thread, mem), size, self._rx(thread, src.name)
            )
        elif mn == "stxr":
            status, src, mem = ops
            addr = self._mem_addr(thread, mem)
            if thread.monitor == addr:
                self.store(addr, 8, self._rx(thread, src.name))
                self._wx(thread, status.name, 0)
            else:
                self._wx(thread, status.name, 1)
            thread.monitor = None
        elif mn in ("add", "sub", "mul", "sdiv", "udiv", "and", "orr", "eor",
                    "lsl", "lsr", "asr"):
            dst, a, b = ops
            av = self._operand(thread, a)
            bv = self._operand(thread, b)
            self._wx(thread, dst.name, _int_alu(mn, av, bv))
        elif mn == "msub":
            dst, a, b, c = ops
            r = self._operand(thread, c) - self._operand(thread, a) * self._operand(
                thread, b
            )
            self._wx(thread, dst.name, r)
        elif mn == "mvn":
            dst, src = ops
            self._wx(thread, dst.name, ~self._operand(thread, src))
        elif mn == "neg":
            dst, src = ops
            self._wx(thread, dst.name, -self._operand(thread, src))
        elif mn == "cmp":
            a, b = ops
            av = _signed(self._operand(thread, a))
            bv = _signed(self._operand(thread, b))
            r = av - bv
            thread.flags.update(
                n=1 if r < 0 else 0,
                z=1 if r == 0 else 0,
                c=1 if (av & (2**64 - 1)) >= (bv & (2**64 - 1)) else 0,
                v=1 if not -(2**63) <= r < 2**63 else 0,
            )
        elif mn == "cset":
            dst, cond = ops
            self._wx(
                thread, dst.name, 1 if self._cond(thread, cond.name) else 0
            )
        elif mn == "csel":
            dst, a, b, cond = ops
            pick = a if self._cond(thread, cond.name) else b
            self._wx(thread, dst.name, self._rx(thread, pick.name))
        elif mn == "fcsel":
            dst, a, b, cond = ops
            pick = a if self._cond(thread, cond.name) else b
            thread.d[dst.name] = thread.d[pick.name]
        elif mn == "udf":
            raise ArmEmuError(f"udf executed at pc={thread.pc:#x}")
        elif mn == "b":
            next_pc = self._label_target(thread.pc, ops[0].name)
        elif mn.startswith("b."):
            if self._cond(thread, mn[2:]):
                next_pc = self._label_target(thread.pc, ops[0].name)
        elif mn == "cbz":
            reg, label = ops
            if self._rx(thread, reg.name) == 0:
                next_pc = self._label_target(thread.pc, label.name)
        elif mn == "cbnz":
            reg, label = ops
            if self._rx(thread, reg.name) != 0:
                next_pc = self._label_target(thread.pc, label.name)
        elif mn in ("bl", "blr"):
            if mn == "bl":
                target = self._label_target(thread.pc, ops[0].name)
            else:
                target = self._rx(thread, ops[0].name)
            if target >= EXTERNAL_BASE:
                name = self.program.externals[target - EXTERNAL_BASE]
                handler = self.externals.get(name)
                if handler is None:
                    raise ArmEmuError(
                        f"call to external {name!r} has no runtime handler "
                        f"(opaque/uncatalogued function)")
                if handler(thread) == RETRY:
                    # Blocking call (mutex lock, join): leave pc on the bl
                    # so the scheduler re-executes it after other threads
                    # get to run.
                    return
            else:
                thread.x["x30"] = next_pc
                next_pc = target
        elif mn == "ret":
            target = thread.x["x30"]
            if target == self.RETURN_SENTINEL:
                thread.done = True
                return
            next_pc = target
        elif mn in ("dmb ish", "dmb ishld", "dmb ishst"):
            pass  # single-copy-atomic emulator: barrier is cost only
        elif mn == "nop":
            pass
        elif mn in ("fadd", "fsub", "fmul", "fdiv"):
            dst, a, b = ops
            av, bv = thread.d[a.name], thread.d[b.name]
            r = {
                "fadd": av + bv, "fsub": av - bv, "fmul": av * bv,
                "fdiv": av / bv if bv != 0.0 else float("inf") if av > 0
                else float("-inf") if av < 0 else float("nan"),
            }[mn]
            thread.d[dst.name] = r
        elif mn == "fsqrt":
            dst, a = ops
            thread.d[dst.name] = thread.d[a.name] ** 0.5
        elif mn == "fmov":
            dst, src = ops
            if isinstance(dst, DReg) and isinstance(src, XReg):
                thread.d[dst.name] = struct.unpack(
                    "<d", self._rx(thread, src.name).to_bytes(8, "little")
                )[0]
            elif isinstance(dst, XReg) and isinstance(src, DReg):
                self._wx(
                    thread,
                    dst.name,
                    int.from_bytes(struct.pack("<d", thread.d[src.name]), "little"),
                )
            elif isinstance(dst, DReg) and isinstance(src, DReg):
                thread.d[dst.name] = thread.d[src.name]
            elif isinstance(dst, DReg) and isinstance(src, AImm):
                thread.d[dst.name] = float(src.value)
            else:
                raise ArmEmuError(f"bad fmov {instr}")
        elif mn == "fldr":
            dst, mem = ops
            width = mem.width
            raw = self.load(self._mem_addr(thread, mem), width // 8)
            fmt = "<f" if width == 32 else "<d"
            thread.d[dst.name] = struct.unpack(
                fmt, raw.to_bytes(width // 8, "little")
            )[0]
        elif mn == "fstr":
            src, mem = ops
            width = mem.width
            fmt = "<f" if width == 32 else "<d"
            raw = int.from_bytes(struct.pack(fmt, thread.d[src.name]), "little")
            self.store(self._mem_addr(thread, mem), width // 8, raw)
        elif mn == "fcmp":
            a, b = ops
            av = thread.d[a.name]
            bv = thread.d[b.name] if isinstance(b, DReg) else float(b.value)
            f = thread.flags
            if av != av or bv != bv:
                f.update(n=0, z=0, c=1, v=1)
            elif av == bv:
                f.update(n=0, z=1, c=1, v=0)
            elif av < bv:
                f.update(n=1, z=0, c=0, v=0)
            else:
                f.update(n=0, z=0, c=1, v=0)
        elif mn == "scvtf":
            dst, src = ops
            thread.d[dst.name] = float(_signed(self._rx(thread, src.name)))
        elif mn == "fcvtzs":
            dst, src = ops
            self._wx(thread, dst.name, int(thread.d[src.name]))
        else:
            raise ArmEmuError(f"cannot emulate {instr}")
        thread.pc = next_pc

    def _cond(self, thread: ArmThread, cond: str) -> bool:
        f = thread.flags
        table = {
            "eq": f["z"] == 1, "ne": f["z"] == 0,
            "lt": f["n"] != f["v"], "ge": f["n"] == f["v"],
            "le": f["z"] == 1 or f["n"] != f["v"],
            "gt": f["z"] == 0 and f["n"] == f["v"],
            "lo": f["c"] == 0, "hs": f["c"] == 1,
            "ls": f["c"] == 0 or f["z"] == 1,
            "hi": f["c"] == 1 and f["z"] == 0,
            "mi": f["n"] == 1, "pl": f["n"] == 0,
            "vs": f["v"] == 1, "vc": f["v"] == 0,
        }
        return table[cond]

    # ---- runtime externals -------------------------------------------------
    def _ext_malloc(self, thread: ArmThread) -> None:
        size = thread.x["x0"]
        addr = (self.heap_ptr + 15) & ~15
        self.heap_ptr = addr + max(1, size)
        if self.heap_ptr >= STACK_BASE:
            raise ArmEmuError("heap exhausted")
        thread.x["x0"] = addr

    def _ext_spawn(self, thread: ArmThread) -> None:
        target = thread.x["x0"]
        child = self._make_thread(target)
        child.x["x0"] = thread.x["x1"]
        thread.x["x0"] = child.tid

    def _ext_join(self, thread: ArmThread) -> None:
        tid = thread.x["x0"]
        for t in self.threads:
            if t.tid == tid:
                while not t.done:
                    for _ in range(self.quantum):
                        if t.done:
                            break
                        self.step(t)
                thread.x["x0"] = t.x["x0"]
                return
        raise ArmEmuError(f"join of unknown thread {tid}")

    def _ext_print_i64(self, thread: ArmThread) -> None:
        self.output.append(str(_signed(thread.x["x0"])))

    def _ext_print_f64(self, thread: ArmThread) -> None:
        self.output.append(f"{thread.d['d0']:.6f}")

    def _ext_abort(self, thread: ArmThread) -> None:
        raise ArmEmuError("program aborted")

    def _ext_thread_id(self, thread: ArmThread) -> None:
        thread.x["x0"] = thread.tid

    def _ext_sqrt(self, thread: ArmThread) -> None:
        thread.d["d0"] = thread.d["d0"] ** 0.5


def _int_alu(mn: str, a: int, b: int) -> int:
    sa, sb = _signed(a), _signed(b)
    if mn == "add":
        return a + b
    if mn == "sub":
        return a - b
    if mn == "mul":
        return a * b
    if mn == "sdiv":
        if sb == 0:
            return 0  # AArch64 SDIV by zero yields 0
        q = abs(sa) // abs(sb)
        return -q if (sa < 0) != (sb < 0) else q
    if mn == "udiv":
        return a // b if b else 0
    if mn == "and":
        return a & b
    if mn == "orr":
        return a | b
    if mn == "eor":
        return a ^ b
    if mn == "lsl":
        return a << (b & 63)
    if mn == "lsr":
        return a >> (b & 63)
    if mn == "asr":
        return sa >> (b & 63)
    raise ArmEmuError(f"bad ALU op {mn}")
