"""AArch64 substrate: structured ISA subset, program container, and an
emulator with a cycle cost model."""

from .costs import COSTS, cost_of
from .emulator import ArmEmuError, ArmEmulator, ArmThread
from .isa import (
    AImm,
    AInstr,
    ALabel,
    AMem,
    AOperand,
    ARM_CALLEE_SAVED,
    ARM_CONDS,
    ARM_FP_PARAM_REGS,
    ARM_FP_RETURN_REG,
    ARM_INT_PARAM_REGS,
    ARM_INT_RETURN_REG,
    DReg,
    XReg,
    fence_kind,
    is_fence,
)
from .program import DATA_BASE, ArmFunction, ArmGlobal, ArmProgram

__all__ = [
    "COSTS", "cost_of",
    "ArmEmuError", "ArmEmulator", "ArmThread",
    "AImm", "AInstr", "ALabel", "AMem", "AOperand",
    "ARM_CALLEE_SAVED", "ARM_CONDS", "ARM_FP_PARAM_REGS",
    "ARM_FP_RETURN_REG", "ARM_INT_PARAM_REGS", "ARM_INT_RETURN_REG",
    "DReg", "XReg", "fence_kind", "is_fence",
    "DATA_BASE", "ArmFunction", "ArmGlobal", "ArmProgram",
]
