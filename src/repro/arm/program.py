"""Container for Arm programs: functions of labelled instruction streams."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from .isa import AInstr, is_fence

DATA_BASE = 0x600000

Item = Union[str, AInstr]  # label definition or instruction


@dataclass
class ArmFunction:
    name: str
    items: list[Item] = field(default_factory=list)

    def label(self, name: str) -> None:
        self.items.append(name)

    def emit(self, instr: AInstr) -> AInstr:
        self.items.append(instr)
        return instr

    def instructions(self) -> list[AInstr]:
        return [i for i in self.items if isinstance(i, AInstr)]


@dataclass
class ArmGlobal:
    name: str
    size: int
    init: bytes = b""


@dataclass
class ArmProgram:
    functions: dict[str, ArmFunction] = field(default_factory=dict)
    globals: dict[str, ArmGlobal] = field(default_factory=dict)
    externals: list[str] = field(default_factory=list)
    entry: str = "main"

    def add_function(self, func: ArmFunction) -> ArmFunction:
        self.functions[func.name] = func
        return func

    def add_global(self, name: str, size: int, init: bytes = b"") -> None:
        self.globals[name] = ArmGlobal(name, size, init)

    def declare_external(self, name: str) -> None:
        if name not in self.externals:
            self.externals.append(name)

    def instruction_count(self) -> int:
        return sum(
            len(f.instructions()) for f in self.functions.values()
        )

    def fence_count(self) -> int:
        return sum(
            1
            for f in self.functions.values()
            for i in f.instructions()
            if is_fence(i)
        )

    def dump(self) -> str:
        lines = []
        for func in self.functions.values():
            lines.append(f"{func.name}:")
            for item in func.items:
                if isinstance(item, str):
                    lines.append(f"  {item}:")
                else:
                    lines.append(f"    {item}")
        return "\n".join(lines) + "\n"
