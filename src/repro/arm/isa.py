"""AArch64-subset instruction model.

Unlike the x86 side (which is encoded to real machine bytes because the
*lifter* must face real machine code), the Arm side is the translation
*target*: we keep it as structured instructions plus a label resolver.  This
matches what Lasagne's evaluation needs — counting instructions and fences
and running the result under a cost model — while sparing a full A64 binary
encoder.  DESIGN.md records this simplification.

Supported subset:

* ``mov``/``movz`` (imm or reg), ``ldr``/``str`` (64/32/8-bit, register or
  immediate offset), ``adr`` (absolute symbol address pseudo)
* ALU: ``add``/``sub``/``mul``/``sdiv``/``msub``/``and``/``orr``/``eor``/
  ``lsl``/``lsr``/``asr``/``mvn``/``neg``, ``cmp``, ``cset``
* FP: ``fmov``, ``fldr``/``fstr`` (pseudo for ldr/str of D regs), ``fadd``/
  ``fsub``/``fmul``/``fdiv``/``fsqrt``, ``fcmp``, ``scvtf``/``fcvtzs``
* control: ``b``, ``b.<cond>``, ``bl``, ``blr``, ``ret``, ``cbz``/``cbnz``
* concurrency: ``dmb`` (``ish``/``ishld``/``ishst``), ``ldxr``/``stxr``
  (load-linked / store-conditional), ``ldar``/``stlr``
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

XREGS = [f"x{i}" for i in range(31)] + ["sp", "xzr"]
DREGS = [f"d{i}" for i in range(32)]

ARM_CONDS = ["eq", "ne", "lt", "le", "gt", "ge", "lo", "ls", "hi", "hs",
             "mi", "pl", "vs", "vc"]

# AAPCS64 calling convention subset.
ARM_INT_PARAM_REGS = [f"x{i}" for i in range(8)]
ARM_FP_PARAM_REGS = [f"d{i}" for i in range(8)]
ARM_INT_RETURN_REG = "x0"
ARM_FP_RETURN_REG = "d0"
ARM_CALLEE_SAVED = [f"x{i}" for i in range(19, 29)]


@dataclass(frozen=True)
class XReg:
    name: str

    def __post_init__(self) -> None:
        if self.name not in XREGS:
            raise ValueError(f"unknown X register {self.name!r}")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class DReg:
    name: str

    def __post_init__(self) -> None:
        if self.name not in DREGS:
            raise ValueError(f"unknown D register {self.name!r}")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class AImm:
    value: int

    def __str__(self) -> str:
        return f"#{self.value}"


@dataclass(frozen=True)
class AMem:
    """``[base, #imm]`` or ``[base, offset_reg]`` with access width in bits."""

    base: str
    offset_imm: int = 0
    offset_reg: Optional[str] = None
    width: int = 64

    def __post_init__(self) -> None:
        if self.base not in XREGS:
            raise ValueError(f"unknown base register {self.base!r}")
        if self.offset_reg is not None and self.offset_reg not in XREGS:
            raise ValueError(f"unknown offset register {self.offset_reg!r}")

    def __str__(self) -> str:
        if self.offset_reg is not None:
            return f"[{self.base}, {self.offset_reg}]"
        if self.offset_imm:
            return f"[{self.base}, #{self.offset_imm}]"
        return f"[{self.base}]"


@dataclass(frozen=True)
class ALabel:
    name: str

    def __str__(self) -> str:
        return self.name


AOperand = Union[XReg, DReg, AImm, AMem, ALabel]


@dataclass
class AInstr:
    mnemonic: str
    operands: list[AOperand] = field(default_factory=list)

    def __str__(self) -> str:
        ops = ", ".join(str(o) for o in self.operands)
        return f"{self.mnemonic} {ops}".strip()


FENCE_MNEMONICS = {"dmb ish", "dmb ishld", "dmb ishst"}


def is_fence(instr: AInstr) -> bool:
    return instr.mnemonic in FENCE_MNEMONICS


def fence_kind(instr: AInstr) -> Optional[str]:
    """'ff', 'ld' or 'st' for the three DMB flavours, else None."""
    return {
        "dmb ish": "ff", "dmb ishld": "ld", "dmb ishst": "st"
    }.get(instr.mnemonic)
