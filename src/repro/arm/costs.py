"""Cycle cost model for the Arm emulator.

The paper measures wall-clock time on a Cortex-A72; we measure *modelled
cycles*.  The absolute values are synthetic, but the ordering is taken from
published Cortex-A72 characteristics: memory barriers are expensive relative
to ALU operations, full barriers (DMB ISH) cost more than one-direction
barriers (DMB ISHLD / ISHST), loads/stores cost more than register ALU ops,
and integer division is slow.  Figure 12/15-style experiments only rely on
these orderings.
"""

from __future__ import annotations

DEFAULT_COST = 1

COSTS = {
    # memory
    "ldr": 3, "str": 2, "ldrb": 3, "strb": 2, "ldr32": 3, "str32": 2,
    "fldr": 3, "fstr": 2,
    "ldar": 6, "stlr": 6, "ldxr": 8, "stxr": 8,
    # barriers — the interesting knob
    "dmb ish": 16, "dmb ishld": 10, "dmb ishst": 10,
    # ALU
    "mul": 3, "sdiv": 20, "udiv": 20, "msub": 4,
    # FP
    "fadd": 4, "fsub": 4, "fmul": 4, "fdiv": 18, "fsqrt": 20,
    "scvtf": 4, "fcvtzs": 4, "fmov": 2, "fcmp": 3,
    # control
    "bl": 2, "blr": 3, "ret": 2,
    # pseudo
    "adr": 2,
}


def cost_of(mnemonic: str) -> int:
    return COSTS.get(mnemonic, DEFAULT_COST)
