"""Binary lifter: x86 machine code → LIR (paper §4)."""

from .cfg import CFGError, MachineBlock, MachineCFG, build_cfg
from .disassembler import DisassemblyError, disassemble_all, disassemble_function
from .translate import LiftError, ProgramLifter, lift_program
from .typedisc import EXTERNAL_SIGS, Signature, TypeDiscovery, instr_reg_uses

__all__ = [
    "CFGError", "MachineBlock", "MachineCFG", "build_cfg",
    "DisassemblyError", "disassemble_all", "disassemble_function",
    "LiftError", "ProgramLifter", "lift_program",
    "EXTERNAL_SIGS", "Signature", "TypeDiscovery", "instr_reg_uses",
]
