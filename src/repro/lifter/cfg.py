"""CFG reconstruction: MCInst array → machine basic blocks.

Second stage of the paper's Figure 4 (the ``MachineInstr`` level): find
leaders (function entry, branch targets, fall-through successors of
branches), split the instruction array into blocks and wire successor
edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..x86.isa import Imm, Instr, is_branch


class CFGError(Exception):
    pass


@dataclass
class MachineBlock:
    start: int
    instructions: list[Instr] = field(default_factory=list)
    successors: list[int] = field(default_factory=list)  # start addresses

    @property
    def end(self) -> int:
        last = self.instructions[-1]
        return last.address + last.size

    @property
    def terminator(self) -> Instr:
        return self.instructions[-1]


@dataclass
class MachineCFG:
    name: str
    entry: int
    blocks: dict[int, MachineBlock] = field(default_factory=dict)

    def block_order(self) -> list[MachineBlock]:
        return [self.blocks[a] for a in sorted(self.blocks)]

    def instructions(self):
        for block in self.block_order():
            yield from block.instructions


def _branch_target(instr: Instr) -> int:
    op = instr.operands[0]
    if not isinstance(op, Imm):
        raise CFGError(f"indirect branch not supported: {instr}")
    return op.value


def _is_noreturn_call(instr: Instr, targets) -> bool:
    return (instr.mnemonic == "call" and bool(targets)
            and bool(instr.operands)
            and isinstance(instr.operands[0], Imm)
            and instr.operands[0].value in targets)


def build_cfg(name: str, instrs: list[Instr],
              noreturn_targets=None) -> MachineCFG:
    """``noreturn_targets`` is an optional set of call-target addresses
    (``exit``, ``abort`` externals) whose calls terminate their block
    with no successors — without it, code ending in ``call exit`` looks
    like it falls off the end of the function."""
    if not instrs:
        raise CFGError(f"{name}: empty function")
    entry = instrs[0].address
    by_addr = {i.address: i for i in instrs}
    addresses = [i.address for i in instrs]
    end_addr = instrs[-1].address + instrs[-1].size

    # Leaders: entry, branch targets, instruction after any terminator.
    leaders = {entry}
    for instr in instrs:
        if is_branch(instr.mnemonic):
            target = _branch_target(instr)
            if not entry <= target < end_addr:
                raise CFGError(
                    f"{name}: branch target {target:#x} outside function"
                )
            leaders.add(target)
            fall = instr.address + instr.size
            if fall < end_addr:
                leaders.add(fall)
        elif instr.mnemonic == "ret" or _is_noreturn_call(
                instr, noreturn_targets):
            fall = instr.address + instr.size
            if fall < end_addr:
                leaders.add(fall)

    cfg = MachineCFG(name, entry)
    current: MachineBlock | None = None
    for addr in addresses:
        if addr in leaders:
            current = MachineBlock(addr)
            cfg.blocks[addr] = current
        assert current is not None
        current.instructions.append(by_addr[addr])

    # Successor edges.
    ordered = cfg.block_order()
    for i, block in enumerate(ordered):
        term = block.terminator
        mn = term.mnemonic
        if mn == "jmp":
            block.successors = [_branch_target(term)]
        elif is_branch(mn):  # conditional
            fall = term.address + term.size
            block.successors = [_branch_target(term), fall]
        elif mn == "ret":
            block.successors = []
        elif _is_noreturn_call(term, noreturn_targets):
            block.successors = []
        else:
            # Fall-through into the next block.
            if i + 1 < len(ordered):
                block.successors = [ordered[i + 1].start]
            else:
                raise CFGError(f"{name}: function falls off the end")
    for block in cfg.blocks.values():
        for succ in block.successors:
            if succ not in cfg.blocks:
                raise CFGError(f"{name}: dangling successor {succ:#x}")
    return cfg
