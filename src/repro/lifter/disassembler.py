"""Disassembly phase: raw machine code → MCInst arrays (per function).

Mirrors the first stage of Figure 4 in the paper: the source binary is
disassembled to an array of ``MCInst`` (our :class:`repro.x86.isa.Instr`)
using the symbol table to find function boundaries.
"""

from __future__ import annotations

from ..x86.decoder import decode_one
from ..x86.isa import Instr
from ..x86.objfile import X86Object


class DisassemblyError(Exception):
    pass


def disassemble_function(obj: X86Object, name: str) -> list[Instr]:
    """Linearly decode the body of a named function symbol."""
    sym = obj.functions.get(name)
    if sym is None:
        raise DisassemblyError(f"no function symbol {name!r}")
    body = obj.function_body(name)
    instrs: list[Instr] = []
    offset = 0
    while offset < len(body):
        instr = decode_one(body, offset, sym.address + offset)
        instrs.append(instr)
        offset += instr.size
    return instrs


def disassemble_all(obj: X86Object) -> dict[str, list[Instr]]:
    return {name: disassemble_function(obj, name) for name in obj.functions}
