"""Function type discovery (§4.1 of the paper).

Parameters are discovered by live-register analysis: a System-V parameter
register that is live-in at the function entry (read before any definition
on some path) is a parameter.  General-purpose registers raise to ``i64``
(pointers included — they are re-discovered by IR refinement, §5); SSE
registers raise to ``double`` since the paper's focus is scalar FP.

Return types are discovered from the conventional return registers RAX and
XMM0.  As a single function body usually defines both, we disambiguate the
way a whole-program lifter can: call sites vote — a caller that consumes
``xmm0`` right after the call implies a double return, one that consumes
``rax`` implies an integer return.  Functions with no informative call site
default to ``i64`` (the paper defaults to the largest discovered type).

As §4.2.1 notes, the original argument *order* between the integer and SSE
groups is not recoverable; like the paper we assume all integer parameters
come before all SSE parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..x86.isa import CC_NUM, Imm, Instr, Mem, Reg
from ..x86.objfile import X86Object
from ..x86.registers import CALLER_SAVED, INT_PARAM_REGS, SSE_PARAM_REGS, reg_info
from .cfg import MachineCFG

# Runtime externals and their lifted signatures: (int_args, sse_args, ret).
# ret is 'i64', 'f64' or 'void'.
EXTERNAL_SIGS: dict[str, tuple[int, int, str]] = {
    "malloc": (1, 0, "i64"),
    "spawn": (2, 0, "i64"),
    "join": (1, 0, "i64"),
    "print_i64": (1, 0, "void"),
    "print_f64": (0, 1, "void"),
    "thread_id": (0, 0, "i64"),
    "abort": (0, 0, "void"),
}


@dataclass
class Signature:
    int_params: int = 0
    sse_params: int = 0
    ret: str = "i64"  # 'i64' | 'f64' | 'void'

    @property
    def param_count(self) -> int:
        return self.int_params + self.sse_params


def _full(name: str) -> str:
    return reg_info(name).full_name


def instr_reg_uses(instr: Instr) -> tuple[set[str], set[str]]:
    """(reads, writes) of *full* register names for one instruction."""
    mn = instr.mnemonic
    ops = instr.operands
    reads: set[str] = set()
    writes: set[str] = set()

    def read_op(op) -> None:
        if isinstance(op, Reg):
            reads.add(_full(op.name))
        elif isinstance(op, Mem):
            if op.base is not None:
                reads.add(_full(op.base))
            if op.index is not None:
                reads.add(_full(op.index))

    def write_op(op) -> None:
        if isinstance(op, Reg):
            writes.add(_full(op.name))
            if op.info.width < 32:
                # Partial writes also read the old value.
                reads.add(_full(op.name))
        elif isinstance(op, Mem):
            read_op(op)  # address registers are read

    if mn in ("mov", "movabs", "movzx", "movsx", "movsxd", "lea",
              "movsd", "movss", "movq", "movaps", "cvtsi2sd", "cvttsd2si"):
        write_op(ops[0])
        read_op(ops[1])
    elif mn == "imul" and len(ops) == 3:
        # Three-operand form: dst = src * imm; dst is write-only.
        write_op(ops[0])
        read_op(ops[1])
        read_op(ops[2])
    elif mn.startswith("cmov") and mn[4:] in CC_NUM:
        # Conditionally overwrites dst, so the old value stays live.
        read_op(ops[0])
        write_op(ops[0])
        read_op(ops[1])
    elif mn in ("add", "sub", "and", "or", "xor", "imul", "shl", "shr",
                "sar", "addsd", "subsd", "mulsd", "divsd", "addss", "subss",
                "mulss", "divss", "addpd", "subpd", "mulpd", "paddq",
                "paddd", "pxor", "sqrtsd"):
        read_op(ops[0])
        write_op(ops[0])
        read_op(ops[1])
    elif mn in ("cmp", "test", "ucomisd"):
        read_op(ops[0])
        read_op(ops[1])
    elif mn in ("neg", "not"):
        read_op(ops[0])
        write_op(ops[0])
    elif mn == "push":
        read_op(ops[0])
        reads.add("rsp")
        writes.add("rsp")
    elif mn == "pop":
        write_op(ops[0])
        reads.add("rsp")
        writes.add("rsp")
    elif mn == "cqo":
        reads.add("rax")
        writes.add("rdx")
    elif mn == "cdqe":
        reads.add("rax")
        writes.add("rax")
    elif mn == "leave":
        reads.add("rbp")
        writes.update({"rsp", "rbp"})
    elif mn == "idiv":
        read_op(ops[0])
        reads.update({"rax", "rdx"})
        writes.update({"rax", "rdx"})
    elif mn.startswith("set") and mn[3:] in CC_NUM:
        write_op(ops[0])
    elif mn == "cmpxchg":
        read_op(ops[0])
        write_op(ops[0])
        read_op(ops[1])
        reads.add("rax")
        writes.add("rax")
    elif mn in ("xadd", "xchg"):
        read_op(ops[0])
        write_op(ops[0])
        read_op(ops[1])
        write_op(ops[1])
    elif mn in ("ret",):
        reads.add("rsp")
        writes.add("rsp")
    elif mn in ("jmp", "nop", "mfence", "ud2", "cdq", "endbr64", "hlt",
                "syscall") or (mn.startswith("j") and mn[1:] in CC_NUM):
        pass
    elif mn == "call":
        # handled specially by the liveness analysis
        if ops and isinstance(ops[0], Reg):
            read_op(ops[0])
    else:
        raise ValueError(f"no use/def model for {instr}")
    return reads, writes


class TypeDiscovery:
    """Whole-program parameter and return-type discovery."""

    def __init__(self, obj: X86Object, cfgs: dict[str, MachineCFG]) -> None:
        self.obj = obj
        self.cfgs = cfgs
        self.signatures: dict[str, Signature] = {}

    # ---- public API --------------------------------------------------------
    def discover(self) -> dict[str, Signature]:
        for name in self._topo_order():
            self.signatures[name] = Signature()
            live_in = self._entry_live_in(self.cfgs[name])
            self.signatures[name] = self._params_from_live_in(live_in)
        self._discover_returns()
        return self.signatures

    # ---- call graph ------------------------------------------------------------
    def _callee_of(self, instr: Instr) -> str | None:
        if instr.mnemonic != "call" or not instr.operands:
            return None
        op = instr.operands[0]
        if not isinstance(op, Imm):
            return None
        ext = self.obj.external_at(op.value)
        if ext is not None:
            return ext
        sym = self.obj.function_at(op.value)
        return sym.name if sym is not None else None

    def _topo_order(self) -> list[str]:
        """Callees before callers (falls back to arbitrary order on cycles)."""
        deps: dict[str, set[str]] = {}
        for name, cfg in self.cfgs.items():
            deps[name] = set()
            for instr in cfg.instructions():
                callee = self._callee_of(instr)
                if callee in self.cfgs and callee != name:
                    deps[name].add(callee)
        order: list[str] = []
        seen: set[str] = set()

        def visit(n: str, stack: set[str]) -> None:
            if n in seen or n in stack:
                return
            stack.add(n)
            for d in deps[n]:
                visit(d, stack)
            stack.discard(n)
            seen.add(n)
            order.append(n)

        for n in self.cfgs:
            visit(n, set())
        return order

    # ---- liveness ------------------------------------------------------------------
    def _call_effects(self, instr: Instr) -> tuple[set[str], set[str]]:
        """(reads, writes) of a call instruction, given known signatures."""
        callee = self._callee_of(instr)
        reads: set[str] = set()
        ext_sig = None
        if callee is not None:
            # Loader-discovered signatures (the ELF external catalog)
            # take precedence over the built-in runtime table.
            ext_sig = self.obj.extern_sigs.get(callee) or \
                EXTERNAL_SIGS.get(callee)
        if ext_sig is not None:
            ints, sses, _ = ext_sig
        elif callee in self.signatures:
            sig = self.signatures[callee]
            ints, sses = sig.int_params, sig.sse_params
        else:
            ints = sses = 0
        reads.update(INT_PARAM_REGS[:ints])
        reads.update(SSE_PARAM_REGS[:sses])
        writes = set(CALLER_SAVED) | {f"xmm{i}" for i in range(16)}
        return reads, writes

    def _block_use_def(self, block) -> tuple[set[str], set[str]]:
        use: set[str] = set()
        define: set[str] = set()
        for instr in block.instructions:
            if instr.mnemonic == "call" and instr.operands and isinstance(
                instr.operands[0], Imm
            ):
                reads, writes = self._call_effects(instr)
            else:
                reads, writes = instr_reg_uses(instr)
            use.update(r for r in reads if r not in define)
            define.update(writes)
        return use, define

    def _entry_live_in(self, cfg: MachineCFG) -> set[str]:
        blocks = cfg.block_order()
        use_def = {b.start: self._block_use_def(b) for b in blocks}
        live_in: dict[int, set[str]] = {b.start: set() for b in blocks}
        changed = True
        while changed:
            changed = False
            for b in reversed(blocks):
                live_out: set[str] = set()
                for s in b.successors:
                    live_out |= live_in[s]
                use, define = use_def[b.start]
                new = use | (live_out - define)
                if new != live_in[b.start]:
                    live_in[b.start] = new
                    changed = True
        return live_in[cfg.entry]

    @staticmethod
    def _params_from_live_in(live_in: set[str]) -> Signature:
        nint = 0
        for i, reg in enumerate(INT_PARAM_REGS):
            if reg in live_in:
                nint = i + 1
        nsse = 0
        for i, reg in enumerate(SSE_PARAM_REGS):
            if reg in live_in:
                nsse = i + 1
        return Signature(nint, nsse, "i64")

    # ---- return types -----------------------------------------------------------------
    def _discover_returns(self) -> None:
        votes: dict[str, list[str]] = {name: [] for name in self.cfgs}
        for cfg in self.cfgs.values():
            for block in cfg.block_order():
                insts = block.instructions
                for i, instr in enumerate(insts):
                    callee = self._callee_of(instr)
                    if callee not in votes:
                        continue
                    vote = self._result_use(insts[i + 1 :])
                    if vote is not None:
                        votes[callee].append(vote)
        for name, vs in votes.items():
            if vs and all(v == "f64" for v in vs):
                self.signatures[name].ret = "f64"
            elif "f64" in vs:
                # mixed evidence: take the largest type like the paper
                self.signatures[name].ret = "f64"
            else:
                self.signatures[name].ret = "i64"

    @staticmethod
    def _result_use(following: list[Instr]) -> str | None:
        """Which return register does the caller consume first?"""
        for instr in following:
            if instr.mnemonic == "call":
                return None
            reads, writes = instr_reg_uses(instr)
            if "rax" in reads:
                return "i64"
            if "xmm0" in reads:
                return "f64"
            if "rax" in writes and "xmm0" in writes:
                return None
            if "rax" in writes:
                # rax dead; keep looking for an xmm0 read
                for later in following[following.index(instr) + 1 :]:
                    lr, lw = instr_reg_uses(later)
                    if "xmm0" in lr:
                        return "f64"
                    if "xmm0" in lw or later.mnemonic == "call":
                        break
                return None
            if "xmm0" in writes:
                return None
        return None
