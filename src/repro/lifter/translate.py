"""Instruction translation: machine CFG → LIR (§4.2 of the paper).

Like mctoll/McSema-style lifters, the translator materializes the machine
state in memory:

* every referenced general-purpose register becomes an ``i64`` stack slot
  (``alloca``), every XMM register an ``f64`` slot, every status flag an
  ``i1`` slot;
* the stack is reconstructed as a byte array (§4.2.3): ``rsp`` is
  initialized to ``ptrtoint`` of the array top, and pushes/pops/frame
  accesses become integer arithmetic plus ``inttoptr`` — exactly the
  integer-based address chains that IR refinement (§5) later raises to
  typed pointers;
* flag-setting instructions compute their flags eagerly (zf/sf/cf/of/pf);
  unused computations become dead code for the optimizer, which is why the
  unoptimized Lifted configuration is so much slower than Opt (Fig. 12);
* ``movabs`` immediates that match data/function symbol addresses are
  rebound to ``ptrtoint`` of the corresponding LIR global — this is how
  global values are discovered;
* ``MFENCE`` lifts to ``fence sc``, ``lock cmpxchg``/``lock xadd``/``xchg``
  lift to seq_cst ``cmpxchg``/``atomicrmw`` (Fig. 8a, RMW and fence rows).

The load/store rows of the Fig. 8a mapping (``ld → ldna;Frm``,
``st → Fww;stna``) are applied by :mod:`repro.fences.placement`, not here,
so that the Lifted/Opt/POpt/PPOpt configurations can share one lifted
module.
"""

from __future__ import annotations

from typing import Optional

from ..lir import (
    F64,
    I1,
    I8,
    I64,
    ArrayType,
    BasicBlock,
    ConstantFloat,
    ConstantInt,
    ConstantVector,
    Function,
    FunctionType,
    GlobalVariable,
    IRBuilder,
    IntType,
    Module,
    Value,
    VectorType,
    VOID,
    ptr,
)
from ..provenance.origin import Origin, synthetic_origin
from ..x86.isa import CC_NUM, Imm, Instr, Mem, Reg
from ..x86.objfile import X86Object
from ..x86.registers import INT_PARAM_REGS, SSE_PARAM_REGS, reg_info
from .cfg import MachineCFG, build_cfg
from .disassembler import disassemble_all
from .typedisc import EXTERNAL_SIGS, Signature, TypeDiscovery, instr_reg_uses

FLAG_NAMES = ["cf", "pf", "zf", "sf", "of"]
ALL_FLAGS = frozenset(FLAG_NAMES)
STACK_SIZE = 4096  # reconstructed stack array size per function

# Flags each condition code consumes (for jcc/setcc).
CC_FLAG_READS = {
    "e": {"zf"}, "ne": {"zf"},
    "b": {"cf"}, "ae": {"cf"}, "be": {"cf", "zf"}, "a": {"cf", "zf"},
    "s": {"sf"}, "ns": {"sf"}, "p": {"pf"}, "np": {"pf"},
    "l": {"sf", "of"}, "ge": {"sf", "of"},
    "le": {"zf", "sf", "of"}, "g": {"zf", "sf", "of"},
    "o": {"of"}, "no": {"of"},
}

# Flag effects per mnemonic: (reads, writes, conditional_write).
_FULL_WRITERS = {
    "add", "sub", "and", "or", "xor", "cmp", "test", "neg", "xadd",
    "cmpxchg", "ucomisd",
}


def machine_flag_effects(instr) -> tuple[set[str], set[str], bool]:
    """(reads, writes, conditional) of RFLAGS for one machine instruction."""
    mn = instr.mnemonic
    if mn in _FULL_WRITERS:
        return set(), set(FLAG_NAMES), False
    if mn == "imul":
        return set(), {"cf", "of"}, False
    if mn in ("shl", "shr", "sar"):
        # Count 0 preserves flags: a conditional write (reads + writes).
        return set(FLAG_NAMES), set(FLAG_NAMES), True
    if mn.startswith("set") and mn[3:] in CC_FLAG_READS:
        return set(CC_FLAG_READS[mn[3:]]), set(), False
    if mn.startswith("j") and mn[1:] in CC_FLAG_READS:
        return set(CC_FLAG_READS[mn[1:]]), set(), False
    return set(), set(), False


class LiftError(Exception):
    pass


def _c64(v: int) -> ConstantInt:
    return ConstantInt(I64, v)


def _c1(v: int) -> ConstantInt:
    return ConstantInt(I1, v)


def _ret_type(kind: str):
    return {"i64": I64, "f64": F64, "void": VOID}[kind]


class ProgramLifter:
    """Lifts a whole x86 image to an LIR module.

    ``lazy_flags=True`` computes per-instruction flag liveness and only
    materializes the flags some later instruction actually consumes
    (mctoll lifts eagerly and lets DCE clean up — our default — but the
    lazy mode quantifies how much of the Lifted configuration's bulk is
    dead flag code; see benchmarks/test_ablations.py).
    """

    def __init__(
        self, obj: X86Object, stack_size: int = STACK_SIZE,
        lazy_flags: bool = False,
    ) -> None:
        self.obj = obj
        self.stack_size = stack_size
        self.lazy_flags = lazy_flags
        self.module = Module(f"lifted_{obj.entry}")
        self.cfgs: dict[str, MachineCFG] = {}
        self.signatures: dict[str, Signature] = {}
        # Loader-discovered external signatures extend the built-ins.
        self.extern_sigs: dict[str, tuple[int, int, str]] = dict(EXTERNAL_SIGS)
        self.extern_sigs.update(obj.extern_sigs)
        self.noreturn_externals: set[str] = set()
        if obj.source_format == "elf64":
            from ..loader.externs import CATALOG
            for name in obj.externals:
                entry = CATALOG.get(name.split("@", 1)[0])
                if entry is not None and entry.noreturn:
                    self.noreturn_externals.add(name)

    def lift(self) -> Module:
        instrs = disassemble_all(self.obj)
        noreturn_addrs = {self.obj.externals[n]
                          for n in self.noreturn_externals}
        self.cfgs = {
            name: build_cfg(name, body, noreturn_targets=noreturn_addrs)
            for name, body in instrs.items()
        }
        self.signatures = TypeDiscovery(self.obj, self.cfgs).discover()

        # Globals: raw byte arrays at this stage; typing is refinement's job.
        for sym in self.obj.data_symbols.values():
            init = sym.init if sym.init else None
            self.module.add_global(
                GlobalVariable(sym.name, ArrayType(I8, max(1, sym.size)), init)
            )
        # Function declarations first, so calls can reference them.
        for name, sig in self.signatures.items():
            params = tuple([I64] * sig.int_params + [F64] * sig.sse_params)
            ftype = FunctionType(_ret_type(sig.ret), params)
            self.module.add_function(Function(name, ftype))
        # Externals used anywhere: built-in runtime names first (stable
        # declaration order for ELF-lite images), then loader-discovered
        # catalog/opaque externals.
        ext_names = [n for n in EXTERNAL_SIGS if n in self.obj.externals]
        ext_names += [n for n in self.obj.externals
                      if n not in EXTERNAL_SIGS]
        for name in ext_names:
            sig = self.extern_sigs.get(name)
            if sig is None:
                continue
            ints, sses, ret = sig
            params = tuple([I64] * ints + [F64] * sses)
            self.module.declare_external(
                name, FunctionType(_ret_type(ret), params)
            )
        for name in self.cfgs:
            FunctionLifter(self, name).lift()
        return self.module


class FunctionLifter:
    def __init__(self, program: ProgramLifter, name: str) -> None:
        self.p = program
        self.obj = program.obj
        self.module = program.module
        self.name = name
        self.cfg = program.cfgs[name]
        self.sig = program.signatures[name]
        self.func = program.module.get_function(name)
        self.builder = IRBuilder()
        self.slots: dict[str, Value] = {}
        self._needed: frozenset = ALL_FLAGS
        self.flag_needs: Optional[dict[int, frozenset]] = None
        self.entry_block: Optional[BasicBlock] = None
        self.block_map: dict[int, BasicBlock] = {}

    # ---- slot management -------------------------------------------------
    _PACKED_MNEMONICS = {"movaps", "addpd", "subpd", "mulpd", "paddq",
                         "paddd"}

    def _prescan_registers(self) -> tuple[set[str], bool]:
        regs: set[str] = {"rsp", "rbp", "rax"}
        # The function's own parameter registers always need slots, even
        # when an inner register of the ABI sequence is never referenced.
        regs.update(INT_PARAM_REGS[: self.sig.int_params])
        regs.update(SSE_PARAM_REGS[: self.sig.sse_params])
        flags_needed = False
        self.packed_xmm: set[str] = set()
        scalar_xmm: set[str] = set()
        for instr in self.cfg.instructions():
            mn = instr.mnemonic
            if mn == "call":
                callee = self._callee_of(instr)
                ints, sses = self._callee_params(callee)
                regs.update(INT_PARAM_REGS[:ints])
                regs.update(SSE_PARAM_REGS[:sses])
                regs.add("xmm0")
                continue
            reads, writes = instr_reg_uses(instr)
            regs |= reads | writes
            xmm_here = {r for r in reads | writes if r.startswith("xmm")}
            if mn in self._PACKED_MNEMONICS:
                self.packed_xmm |= xmm_here
            elif xmm_here:
                scalar_xmm |= xmm_here
            if mn in ("add", "sub", "and", "or", "xor", "cmp", "test", "neg",
                      "imul", "shl", "shr", "sar", "ucomisd", "cmpxchg",
                      "xadd") or mn.startswith(("set", "j")):
                flags_needed = True
        mixed = self.packed_xmm & scalar_xmm
        if mixed:
            raise LiftError(
                f"{self.name}: registers {sorted(mixed)} used by both "
                f"packed and scalar SSE instructions"
            )
        return regs, flags_needed

    def slot(self, reg: str) -> Value:
        if reg not in self.slots:
            raise LiftError(f"{self.name}: no slot for register {reg}")
        return self.slots[reg]

    # ---- main driver ----------------------------------------------------------
    def _flag_liveness(self) -> dict[int, frozenset]:
        """Which flags each flag-writing instruction must materialize:
        backward liveness over RFLAGS bits across the machine CFG."""
        blocks = self.cfg.block_order()
        live_in: dict[int, set[str]] = {b.start: set() for b in blocks}
        needs: dict[int, frozenset] = {}
        changed = True
        while changed:
            changed = False
            for mb in blocks:
                live: set[str] = set()
                for succ in mb.successors:
                    live |= live_in[succ]
                for instr in reversed(mb.instructions):
                    reads, writes, conditional = machine_flag_effects(instr)
                    if writes:
                        needs[id(instr)] = frozenset(live & writes)
                        if not conditional:
                            live -= writes
                    live |= reads
                if live != live_in[mb.start]:
                    live_in[mb.start] = set(live)
                    changed = True
        return needs

    def lift(self) -> Function:
        regs, flags_needed = self._prescan_registers()
        if self.p.lazy_flags:
            self.flag_needs = self._flag_liveness()
        b = self.builder
        entry = self.func.new_block("setup")
        self.entry_block = entry
        b.position_at_end(entry)
        # Provenance: the function knows its x86 entry point, and the
        # synthetic setup code (register slots, stack reconstruction,
        # parameter spills) is anchored there so it still resolves to a
        # real address in the input binary.
        self.func.x86_addr = self.cfg.entry
        b.set_origin(synthetic_origin("entry", self.cfg.entry, self.name))

        # Register / flag slots.  XMM registers used by packed instructions
        # hold <2 x double>; scalar-FP registers hold double (§4.2.2).
        for reg in sorted(regs):
            kind = reg_info(reg).kind
            if kind == "xmm":
                slot_ty = (
                    VectorType(F64, 2) if reg in self.packed_xmm else F64
                )
            else:
                slot_ty = I64
            self.slots[reg] = b.alloca(slot_ty, f"{reg}_slot")
        if flags_needed:
            for flag in FLAG_NAMES:
                self.slots[flag] = b.alloca(I1, f"{flag}_flag")

        # Reconstructed stack (§4.2.3): rsp starts near the array top.
        stack = b.alloca(ArrayType(I8, self.p.stack_size), "stacktop")
        stack8 = b.bitcast(stack, ptr(I8), "stack8")
        tos = b.ptrtoint(stack8, I64, "tos")
        sp0 = b.add(tos, _c64(self.p.stack_size - 64), "sp0")
        b.store(sp0, self.slot("rsp"))

        # Incoming parameters land in their ABI registers.
        for i in range(self.sig.int_params):
            b.store(self.func.arguments[i], self.slot(INT_PARAM_REGS[i]))
        for j in range(self.sig.sse_params):
            arg = self.func.arguments[self.sig.int_params + j]
            b.store(arg, self.slot(SSE_PARAM_REGS[j]))

        # One LIR block per machine block.
        for mb in self.cfg.block_order():
            self.block_map[mb.start] = self.func.new_block(f"bb_{mb.start:x}")
        b.br(self.block_map[self.cfg.entry])

        ordered = self.cfg.block_order()
        for i, mb in enumerate(ordered):
            b.position_at_end(self.block_map[mb.start])
            for instr in mb.instructions:
                # Stamp everything this machine instruction expands to.
                b.set_origin(Origin(
                    addr=instr.address, mnemonic=instr.mnemonic,
                    size=instr.size, function=self.name,
                ))
                self._lift_instr(instr)
            lir_bb = self.block_map[mb.start]
            if lir_bb.terminator is None:
                # Fall-through block boundary.
                if not mb.successors:
                    raise LiftError(f"{self.name}: block without successor")
                b.br(self.block_map[mb.successors[0]])
        return self.func

    # ---- register access ---------------------------------------------------------
    def read_gpr(self, name: str) -> Value:
        info = reg_info(name)
        v = self.builder.load(self.slot(info.full_name), name=f"{name}_")
        if info.width < 64:
            v = self.builder.binop(
                "and", v, _c64((1 << info.width) - 1), f"{name}_sub"
            )
        return v

    def write_gpr(self, name: str, value: Value) -> None:
        info = reg_info(name)
        b = self.builder
        if info.width == 64:
            b.store(value, self.slot(info.full_name))
        elif info.width == 32:
            masked = b.binop("and", value, _c64(0xFFFFFFFF))
            b.store(masked, self.slot(info.full_name))
        else:
            mask = (1 << info.width) - 1
            old = b.load(self.slot(info.full_name))
            kept = b.binop("and", old, _c64(~mask & (2**64 - 1)))
            new = b.binop("and", value, _c64(mask))
            b.store(b.binop("or", kept, new), self.slot(info.full_name))

    def read_xmm(self, name: str) -> Value:
        return self.builder.load(self.slot(name), name=f"{name}_")

    def write_xmm(self, name: str, value: Value) -> None:
        self.builder.store(value, self.slot(name))

    def read_flag(self, flag: str) -> Value:
        return self.builder.load(self.slot(flag), name=f"{flag}_")

    def write_flag(self, flag: str, value: Value) -> None:
        self.builder.store(value, self.slot(flag))

    # ---- operands ------------------------------------------------------------------
    def read_int_operand(self, op) -> Value:
        if isinstance(op, Reg):
            return self.read_gpr(op.name)
        if isinstance(op, Imm):
            return self._imm_value(op)
        if isinstance(op, Mem):
            return self.load_mem(op)
        raise LiftError(f"{self.name}: bad integer operand {op!r}")

    def _global_addr(self, sym, address: int) -> Value:
        g = self.module.globals[sym.name]
        gi8 = self.builder.bitcast(g, ptr(I8))
        base = self.builder.ptrtoint(gi8, I64, f"{sym.name}_addr")
        if address != sym.address:
            base = self.builder.add(base, _c64(address - sym.address))
        return base

    def _imm_value(self, imm: Imm) -> Value:
        """Immediate, rebound to a global/function if it names one.

        ELF-lite images only materialize symbol addresses via movabs
        (64-bit immediates); gcc output for the non-PIE memory model
        also uses plain 32-bit immediates, so real ELF inputs widen the
        rebinding to those.
        """
        wide = imm.width == 64 or (
            imm.width >= 32 and self.obj.source_format == "elf64")
        sym = self.obj.symbol_for_data_address(imm.value) if wide else None
        if sym is not None:
            return self._global_addr(sym, imm.value)
        fsym = self.obj.function_at(imm.value) if wide else None
        if fsym is not None and fsym.address == imm.value:
            f = self.module.get_function(fsym.name)
            return self.builder.ptrtoint(f, I64, f"{fsym.name}_addr")
        return _c64(imm.value)

    def mem_address(self, mem: Mem) -> Value:
        b = self.builder
        addr: Optional[Value] = None
        if mem.base is not None:
            addr = self.read_gpr(reg_info(mem.base).full_name)
        if mem.index is not None:
            idx = self.read_gpr(reg_info(mem.index).full_name)
            if mem.scale != 1:
                shift = {2: 1, 4: 2, 8: 3}[mem.scale]
                idx = b.binop("shl", idx, _c64(shift))
            addr = idx if addr is None else b.add(addr, idx)
        if mem.base is None and self.obj.source_format == "elf64":
            # Absolute / RIP-rebased displacement naming a data symbol:
            # the Arm image places globals at its own addresses, so the
            # reference must go through the global, not the raw number.
            sym = self.obj.symbol_for_data_address(mem.disp)
            if sym is not None:
                gaddr = self._global_addr(sym, mem.disp)
                return gaddr if addr is None else b.add(addr, gaddr)
        if mem.disp or addr is None:
            disp = _c64(mem.disp & (2**64 - 1))
            addr = disp if addr is None else b.add(addr, disp)
        return addr

    def load_mem(self, mem: Mem, as_float: bool = False) -> Value:
        b = self.builder
        addr = self.mem_address(mem)
        if as_float:
            p = b.inttoptr(addr, ptr(F64))
            return b.load(p)
        ity = IntType(mem.width)
        p = b.inttoptr(addr, ptr(ity))
        v = b.load(p)
        if mem.width < 64:
            v = b.zext(v, I64)
        return v

    def store_mem(self, mem: Mem, value: Value, as_float: bool = False) -> None:
        b = self.builder
        addr = self.mem_address(mem)
        if as_float:
            p = b.inttoptr(addr, ptr(F64))
            b.store(value, p)
            return
        ity = IntType(mem.width)
        if mem.width < 64:
            value = b.trunc(value, ity)
        p = b.inttoptr(addr, ptr(ity))
        b.store(value, p)

    # ---- flags ---------------------------------------------------------------------
    def _sign(self, v: Value, width: int = 64) -> Value:
        if width == 64:
            return self.builder.icmp("slt", v, _c64(0))
        bit = self.builder.binop("and", v, _c64(1 << (width - 1)))
        return self.builder.icmp("ne", bit, _c64(0))

    def _parity(self, v: Value) -> Value:
        b = self.builder
        byte = b.trunc(v, I8)
        x = b.binop("xor", byte, b.binop("lshr", byte, ConstantInt(I8, 4)))
        x = b.binop("xor", x, b.binop("lshr", x, ConstantInt(I8, 2)))
        x = b.binop("xor", x, b.binop("lshr", x, ConstantInt(I8, 1)))
        low = b.binop("and", x, ConstantInt(I8, 1))
        return b.icmp("eq", low, ConstantInt(I8, 0))

    def set_flags_logic(self, result: Value, width: int = 64) -> None:
        b = self.builder
        n = self._needed
        if "zf" in n:
            self.write_flag("zf", b.icmp("eq", result, _c64(0)))
        if "sf" in n:
            self.write_flag("sf", self._sign(result, width))
        if "cf" in n:
            self.write_flag("cf", _c1(0))
        if "of" in n:
            self.write_flag("of", _c1(0))
        if "pf" in n:
            self.write_flag("pf", self._parity(result))

    def set_flags_sub(
        self, a: Value, bv: Value, result: Value, width: int = 64
    ) -> None:
        """a/bv/result must already be masked to ``width`` bits."""
        b = self.builder
        n = self._needed
        if "zf" in n:
            self.write_flag("zf", b.icmp("eq", result, _c64(0)))
        if "sf" in n:
            self.write_flag("sf", self._sign(result, width))
        if "cf" in n:
            self.write_flag("cf", b.icmp("ult", a, bv))
        if "of" in n:
            sa = self._sign(a, width)
            sb_ = self._sign(bv, width)
            sr = self._sign(result, width)
            diff_ab = b.binop("xor", sa, sb_)
            diff_ar = b.binop("xor", sa, sr)
            self.write_flag("of", b.binop("and", diff_ab, diff_ar))
        if "pf" in n:
            self.write_flag("pf", self._parity(result))

    def set_flags_add(
        self, a: Value, bv: Value, result: Value, width: int = 64
    ) -> None:
        """a/bv/result must already be masked to ``width`` bits."""
        b = self.builder
        n = self._needed
        if "zf" in n:
            self.write_flag("zf", b.icmp("eq", result, _c64(0)))
        if "sf" in n:
            self.write_flag("sf", self._sign(result, width))
        if "cf" in n:
            self.write_flag("cf", b.icmp("ult", result, a))
        if "of" in n:
            sa = self._sign(a, width)
            sb_ = self._sign(bv, width)
            sr = self._sign(result, width)
            same_ab = b.binop("xor", b.binop("xor", sa, sb_), _c1(1))
            diff_ar = b.binop("xor", sa, sr)
            self.write_flag("of", b.binop("and", same_ab, diff_ar))
        if "pf" in n:
            self.write_flag("pf", self._parity(result))

    def condition(self, cc: str) -> Value:
        b = self.builder

        def flag(name: str) -> Value:
            return self.read_flag(name)

        def inv(v: Value) -> Value:
            return b.binop("xor", v, _c1(1))

        if cc == "e":
            return flag("zf")
        if cc == "ne":
            return inv(flag("zf"))
        if cc == "s":
            return flag("sf")
        if cc == "ns":
            return inv(flag("sf"))
        if cc == "p":
            return flag("pf")
        if cc == "np":
            return inv(flag("pf"))
        if cc == "b":
            return flag("cf")
        if cc == "ae":
            return inv(flag("cf"))
        if cc == "be":
            return b.binop("or", flag("cf"), flag("zf"))
        if cc == "a":
            return b.binop("and", inv(flag("cf")), inv(flag("zf")))
        if cc == "l":
            return b.binop("xor", flag("sf"), flag("of"))
        if cc == "ge":
            return inv(b.binop("xor", flag("sf"), flag("of")))
        if cc == "le":
            return b.binop(
                "or", flag("zf"), b.binop("xor", flag("sf"), flag("of"))
            )
        if cc == "g":
            return b.binop(
                "and",
                inv(flag("zf")),
                inv(b.binop("xor", flag("sf"), flag("of"))),
            )
        if cc == "o":
            return flag("of")
        if cc == "no":
            return inv(flag("of"))
        raise LiftError(f"unknown condition code {cc}")

    # ---- calls ---------------------------------------------------------------------
    def _callee_of(self, instr: Instr) -> Optional[str]:
        if instr.operands and isinstance(instr.operands[0], Imm):
            target = instr.operands[0].value
            ext = self.obj.external_at(target)
            if ext is not None:
                return ext
            sym = self.obj.function_at(target)
            if sym is not None:
                return sym.name
        return None

    def _callee_params(self, callee: Optional[str]) -> tuple[int, int]:
        if callee in self.p.extern_sigs and callee not in self.p.signatures:
            ints, sses, _ = self.p.extern_sigs[callee]
            return ints, sses
        if callee in self.p.signatures:
            sig = self.p.signatures[callee]
            return sig.int_params, sig.sse_params
        return 0, 0

    def _lift_call(self, instr: Instr) -> None:
        callee = self._callee_of(instr)
        if callee is None:
            raise LiftError(f"{self.name}: indirect call not supported: {instr}")
        b = self.builder
        ints, sses = self._callee_params(callee)
        args: list[Value] = []
        for i in range(ints):
            args.append(b.load(self.slot(INT_PARAM_REGS[i])))
        for j in range(sses):
            args.append(b.load(self.slot(SSE_PARAM_REGS[j])))
        if callee in self.module.externals:
            _, _, ret = self.p.extern_sigs[callee]
            target: Value = self.module.externals[callee]
        else:
            ret = self.p.signatures[callee].ret
            target = self.module.get_function(callee)
        result = b.call(target, args)
        if ret == "i64":
            b.store(result, self.slot("rax"))
        elif ret == "f64":
            b.store(result, self.slot("xmm0"))
        if callee in self.p.noreturn_externals:
            # The CFG gave this block no successors; seal it.
            b.unreachable()

    # ---- per-instruction translation -----------------------------------------------
    def _lift_instr(self, instr: Instr) -> None:
        b = self.builder
        mn = instr.mnemonic
        ops = instr.operands
        if self.flag_needs is not None:
            self._needed = self.flag_needs.get(id(instr), frozenset())
        else:
            self._needed = ALL_FLAGS

        if mn in ("mov", "movabs"):
            dst, src = ops
            if isinstance(dst, Reg) and dst.info.kind == "xmm":
                raise LiftError(f"{self.name}: unexpected GPR mov to xmm")
            if isinstance(src, Mem):
                v = self.load_mem(src)
                self.write_gpr(dst.name, v)
            elif isinstance(dst, Mem):
                v = self.read_int_operand(src)
                self.store_mem(dst, v)
            else:
                self.write_gpr(dst.name, self.read_int_operand(src))
        elif mn == "movzx":
            dst, src = ops
            self.write_gpr(dst.name, self.read_int_operand(src))
        elif mn in ("movsx", "movsxd"):
            dst, src = ops
            width = src.width if isinstance(src, Mem) else src.info.width
            v = self.read_int_operand(src)
            t = b.trunc(v, IntType(width))
            self.write_gpr(dst.name, b.sext(t, I64))
        elif mn == "lea":
            dst, src = ops
            self.write_gpr(dst.name, self.mem_address(src))
        elif mn == "push":
            v = self.read_gpr(ops[0].name)
            sp = b.load(self.slot("rsp"))
            sp2 = b.sub(sp, _c64(8), "spdec")
            b.store(sp2, self.slot("rsp"))
            p = b.inttoptr(sp2, ptr(I64))
            b.store(v, p)
        elif mn == "pop":
            sp = b.load(self.slot("rsp"))
            p = b.inttoptr(sp, ptr(I64))
            v = b.load(p)
            b.store(b.add(sp, _c64(8), "spinc"), self.slot("rsp"))
            self.write_gpr(ops[0].name, v)
        elif mn in ("add", "sub", "and", "or", "xor"):
            dst, src = ops
            width = self._op_width(dst)
            if width not in (32, 64):
                raise LiftError(f"{self.name}: unsupported ALU width {instr}")
            a, bv = self._masked_pair(dst, src, width)
            r = b.binop(mn, a, bv)
            if width < 64:
                r = b.binop("and", r, _c64((1 << width) - 1))
            if mn in ("add", "sub"):
                getattr(self, f"set_flags_{mn}")(a, bv, r, width)
            else:
                self.set_flags_logic(r, width)
            self._write_int_operand(dst, r)
        elif mn == "cmp":
            width = self._op_width(ops[0])
            a, bv = self._masked_pair(ops[0], ops[1], width)
            r = b.sub(a, bv)
            if width < 64:
                r = b.binop("and", r, _c64((1 << width) - 1))
            self.set_flags_sub(a, bv, r, width)
        elif mn == "test":
            width = self._op_width(ops[0])
            a, bv = self._masked_pair(ops[0], ops[1], width)
            self.set_flags_logic(b.binop("and", a, bv), width)
        elif mn == "imul":
            dst, src = ops
            a = self.read_gpr(dst.name)
            bv = self.read_int_operand(src)
            r = b.mul(a, bv)
            self.write_gpr(dst.name, r)
            if self._needed & {"cf", "of"}:
                # CF=OF=1 iff the signed product does not fit in 64 bits.
                # The classic division check works on wrapping two's
                # complement: overflow ⟺ b ≠ 0 ∧ (a·b) / b ≠ a.
                nonzero = b.icmp("ne", bv, _c64(0))
                safe_divisor = b.select(nonzero, bv, _c64(1))
                quotient = b.binop("sdiv", r, safe_divisor)
                mismatch = b.icmp("ne", quotient, a)
                overflow = b.binop("and", nonzero, mismatch)
                if "cf" in self._needed:
                    self.write_flag("cf", overflow)
                if "of" in self._needed:
                    self.write_flag("of", overflow)
        elif mn == "cqo":
            rax = b.load(self.slot("rax"))
            self.write_gpr("rdx", b.binop("ashr", rax, _c64(63)))
        elif mn == "idiv":
            # Assumes the usual cqo;idiv idiom (rdx:rax = sext rax), so the
            # division is 64-bit; the same simplification mctoll makes.
            rax = b.load(self.slot("rax"))
            d = self.read_int_operand(ops[0])
            q = b.binop("sdiv", rax, d)
            r = b.binop("srem", rax, d)
            b.store(q, self.slot("rax"))
            b.store(r, self.slot("rdx"))
        elif mn == "neg":
            a = self.read_int_operand(ops[0])
            r = b.sub(_c64(0), a)
            self.set_flags_sub(_c64(0), a, r)
            self._write_int_operand(ops[0], r)
        elif mn == "not":
            a = self.read_int_operand(ops[0])
            self._write_int_operand(ops[0], b.binop("xor", a, _c64(2**64 - 1)))
        elif mn in ("shl", "shr", "sar"):
            dst, src = ops
            a = self.read_int_operand(dst)
            if isinstance(src, Imm):
                count: Value = _c64(src.value & 63)
            else:
                count = b.binop("and", self.read_gpr("rcx"), _c64(63))
            lir_op = {"shl": "shl", "shr": "lshr", "sar": "ashr"}[mn]
            r = b.binop(lir_op, a, count)
            self._write_int_operand(dst, r)
            # Flags are unchanged for zero counts; emulated via select.
            # CF is the last bit shifted out; OF is pinned to 0 (undefined
            # architecturally for count > 1 — matches the emulator).
            needed = self._needed
            nonzero = b.icmp("ne", count, _c64(0)) if needed else None
            if "zf" in needed:
                zf_new = b.icmp("eq", r, _c64(0))
                self.write_flag(
                    "zf", b.select(nonzero, zf_new, self.read_flag("zf"))
                )
            if "sf" in needed:
                self.write_flag(
                    "sf",
                    b.select(nonzero, self._sign(r), self.read_flag("sf")),
                )
            if "pf" in needed:
                self.write_flag(
                    "pf",
                    b.select(nonzero, self._parity(r), self.read_flag("pf")),
                )
            if "cf" in needed:
                if mn == "shl":
                    out_shift = b.sub(_c64(64), count)
                    shifted = b.binop("lshr", a, out_shift)
                else:
                    out_shift = b.sub(count, _c64(1))
                    op64 = "lshr" if mn == "shr" else "ashr"
                    shifted = b.binop(op64, a, out_shift)
                cf_new = b.icmp(
                    "ne", b.binop("and", shifted, _c64(1)), _c64(0)
                )
                self.write_flag(
                    "cf", b.select(nonzero, cf_new, self.read_flag("cf"))
                )
            if "of" in needed:
                self.write_flag(
                    "of", b.select(nonzero, _c1(0), self.read_flag("of"))
                )
        elif mn.startswith("set") and mn[3:] in CC_NUM:
            cond = self.condition(mn[3:])
            self.write_gpr(ops[0].name, b.zext(cond, I64))
        elif mn == "jmp":
            b.br(self._target_block(ops[0]))
        elif mn.startswith("j") and mn[1:] in CC_NUM:
            cond = self.condition(mn[1:])
            taken = self._target_block(ops[0])
            fall = self.block_map[instr.address + instr.size]
            b.cond_br(cond, taken, fall)
        elif mn == "call":
            self._lift_call(instr)
        elif mn == "ret":
            if self.sig.ret == "i64":
                b.ret(b.load(self.slot("rax")))
            elif self.sig.ret == "f64":
                b.ret(b.load(self.slot("xmm0")))
            else:
                b.ret()
        elif mn == "nop":
            pass
        elif mn == "mfence":
            b.fence("sc")  # Fig. 8a: MFENCE → Fsc
        elif mn == "cmpxchg":
            dst, src = ops
            addr = self.mem_address(dst)
            p = b.inttoptr(addr, ptr(I64))
            expected = b.load(self.slot("rax"))
            new = self.read_gpr(src.name)
            old = b.cmpxchg(p, expected, new, "sc")
            b.store(old, self.slot("rax"))
            # x86 sets the full flag set of (rax - [mem]); ZF is the
            # success bit.
            diff = b.sub(expected, old)
            self.set_flags_sub(expected, old, diff)
        elif mn == "xadd":
            dst, src = ops
            addr = self.mem_address(dst)
            p = b.inttoptr(addr, ptr(I64))
            operand = self.read_gpr(src.name)
            old = b.atomicrmw("add", p, operand, "sc")
            self.write_gpr(src.name, old)
            self.set_flags_add(old, operand, b.add(old, operand))
        elif mn == "xchg":
            dst, src = ops
            addr = self.mem_address(dst)
            p = b.inttoptr(addr, ptr(I64))
            old = b.atomicrmw("xchg", p, self.read_gpr(src.name), "sc")
            self.write_gpr(src.name, old)
        elif mn == "movsd":
            dst, src = ops
            if isinstance(dst, Reg) and dst.info.kind == "xmm":
                if isinstance(src, Mem):
                    self.write_xmm(dst.name, self.load_mem(src, as_float=True))
                else:
                    self.write_xmm(dst.name, self.read_xmm(src.name))
            else:
                self.store_mem(dst, self.read_xmm(src.name), as_float=True)
        elif mn in ("addsd", "subsd", "mulsd", "divsd"):
            dst, src = ops
            a = self.read_xmm(dst.name)
            bv = (
                self.load_mem(src, as_float=True)
                if isinstance(src, Mem)
                else self.read_xmm(src.name)
            )
            op = {"addsd": "fadd", "subsd": "fsub", "mulsd": "fmul",
                  "divsd": "fdiv"}[mn]
            self.write_xmm(dst.name, b.binop(op, a, bv))
        elif mn == "sqrtsd":
            dst, src = ops
            bv = (
                self.load_mem(src, as_float=True)
                if isinstance(src, Mem)
                else self.read_xmm(src.name)
            )
            sqrt = self.module.declare_external("sqrt", FunctionType(F64, (F64,)))
            self.write_xmm(dst.name, b.call(sqrt, [bv]))
        elif mn == "pxor":
            dst, src = ops
            if dst.name != src.name:
                raise LiftError(f"{self.name}: general pxor not supported")
            if dst.name in self.packed_xmm:
                zero = ConstantFloat(F64, 0.0)
                self.write_xmm(
                    dst.name,
                    ConstantVector(VectorType(F64, 2), [zero, zero]),
                )
            else:
                self.write_xmm(dst.name, ConstantFloat(F64, 0.0))
        elif mn == "ucomisd":
            a = self.read_xmm(ops[0].name)
            bv = (
                self.load_mem(ops[1], as_float=True)
                if isinstance(ops[1], Mem)
                else self.read_xmm(ops[1].name)
            )
            needed = self._needed
            uno = b.fcmp("uno", a, bv) if needed else None
            if "zf" in needed:
                self.write_flag(
                    "zf", b.binop("or", uno, b.fcmp("oeq", a, bv))
                )
            if "cf" in needed:
                self.write_flag(
                    "cf", b.binop("or", uno, b.fcmp("olt", a, bv))
                )
            if "pf" in needed:
                self.write_flag("pf", uno)
            if "sf" in needed:
                self.write_flag("sf", _c1(0))
            if "of" in needed:
                self.write_flag("of", _c1(0))
        elif mn == "cvtsi2sd":
            dst, src = ops
            v = self.read_int_operand(src)
            self.write_xmm(dst.name, b.cast("sitofp", v, F64))
        elif mn == "cvttsd2si":
            dst, src = ops
            v = (
                self.load_mem(src, as_float=True)
                if isinstance(src, Mem)
                else self.read_xmm(src.name)
            )
            self.write_gpr(dst.name, b.cast("fptosi", v, I64))
        elif mn == "movq":
            dst, src = ops
            if isinstance(dst, Reg) and dst.info.kind == "xmm":
                v = self.read_int_operand(src)
                self.write_xmm(dst.name, b.bitcast(v, F64))
            else:
                v = self.read_xmm(src.name)
                self.write_gpr(dst.name, b.bitcast(v, I64))
        elif mn == "movaps":
            dst, src = ops
            vec2 = VectorType(F64, 2)
            if isinstance(dst, Reg) and dst.info.kind == "xmm":
                if isinstance(src, Mem):
                    addr = self.mem_address(src)
                    p = b.inttoptr(addr, ptr(vec2))
                    self.write_xmm(dst.name, b.load(p))
                else:
                    self.write_xmm(dst.name, self.read_xmm(src.name))
            else:
                addr = self.mem_address(dst)
                p = b.inttoptr(addr, ptr(vec2))
                b.store(self.read_xmm(src.name), p)
        elif mn in ("addpd", "subpd", "mulpd"):
            dst, src = ops
            a = self.read_xmm(dst.name)
            bv = self._read_packed_operand(src)
            op = {"addpd": "fadd", "subpd": "fsub", "mulpd": "fmul"}[mn]
            self.write_xmm(dst.name, b.binop(op, a, bv))
        elif mn in ("paddq", "paddd"):
            dst, src = ops
            lanes = 2 if mn == "paddq" else 4
            ivec = VectorType(IntType(128 // lanes), lanes)
            a = b.bitcast(self.read_xmm(dst.name), ivec)
            bv = b.bitcast(self._read_packed_operand(src), ivec)
            summed = b.binop("add", a, bv)
            self.write_xmm(dst.name, b.bitcast(summed, VectorType(F64, 2)))
        else:
            raise LiftError(f"{self.name}: cannot lift {instr}")

    def _read_packed_operand(self, op) -> Value:
        if isinstance(op, Mem):
            addr = self.mem_address(op)
            p = self.builder.inttoptr(addr, ptr(VectorType(F64, 2)))
            return self.builder.load(p)
        return self.read_xmm(op.name)

    # ---- small helpers ----------------------------------------------------------
    def _masked_pair(self, dst, src, width: int) -> tuple[Value, Value]:
        """Read two ALU operands, masked to the operation width."""
        b = self.builder
        a = self.read_int_operand(dst)
        bv = self.read_int_operand(src)
        if width < 64:
            mask = _c64((1 << width) - 1)
            a = b.binop("and", a, mask)
            bv = b.binop("and", bv, mask)
        return a, bv

    def _op_width(self, op) -> int:
        if isinstance(op, Reg):
            return op.info.width
        if isinstance(op, Mem):
            return op.width
        return 64

    def _write_int_operand(self, op, value: Value) -> None:
        if isinstance(op, Reg):
            self.write_gpr(op.name, value)
        elif isinstance(op, Mem):
            self.store_mem(op, value)
        else:
            raise LiftError(f"{self.name}: bad write operand {op!r}")

    def _target_block(self, op) -> BasicBlock:
        if not isinstance(op, Imm):
            raise LiftError(f"{self.name}: indirect branch")
        return self.block_map[op.value]


def lift_program(
    obj: X86Object, stack_size: int = STACK_SIZE, lazy_flags: bool = False
) -> Module:
    """Lift a linked x86 image to an LIR module (no fences inserted yet)."""
    return ProgramLifter(obj, stack_size, lazy_flags).lift()
