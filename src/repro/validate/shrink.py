"""Delta-debugging minimizer for diverging mini-C programs.

Given a program on which the oracle reports a divergence, ``shrink``
searches for a smaller program with the *same divergence signature*
(pipeline stage + observable kind).  It works on the parsed AST at
statement granularity — removing statement chunks ddmin-style, hoisting
loop and branch bodies, dropping unused functions and globals — plus a few
expression-level simplifications (collapsing a binary operation to one of
its operands, zeroing call arguments).

Every candidate is re-rendered, re-parsed and re-judged through the caller
supplied predicate, so a transformation that breaks compilation or loses
the divergence is simply rejected.  The greedy loop only ever accepts
strictly smaller trees, which guarantees termination and that the result
is never larger than the input.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from ..minicc.astnodes import (
    Assign,
    Binary,
    Block,
    Call,
    CastExpr,
    Decl,
    Expr,
    ExprStmt,
    For,
    If,
    Index,
    IntLit,
    Program,
    Return,
    Stmt,
    Unary,
    VarRef,
    While,
)
from ..minicc.parser import parse
from .render import render_program

Predicate = Callable[[str], bool]


@dataclass
class ShrinkStats:
    attempts: int = 0
    accepted: int = 0
    rounds: int = 0


# ---- AST utilities ----------------------------------------------------------


def _canonicalize(stmt: Stmt) -> None:
    """Wrap every control-flow body in a Block so all statements live in
    blocks and chunk removal has a uniform shape to work on."""
    if isinstance(stmt, Block):
        for s in stmt.statements:
            _canonicalize(s)
    elif isinstance(stmt, If):
        if not isinstance(stmt.then, Block):
            stmt.then = Block(statements=[stmt.then])
        _canonicalize(stmt.then)
        if stmt.otherwise is not None:
            if not isinstance(stmt.otherwise, Block):
                stmt.otherwise = Block(statements=[stmt.otherwise])
            _canonicalize(stmt.otherwise)
    elif isinstance(stmt, While):
        if not isinstance(stmt.body, Block):
            stmt.body = Block(statements=[stmt.body])
        _canonicalize(stmt.body)
    elif isinstance(stmt, For):
        if not isinstance(stmt.body, Block):
            stmt.body = Block(statements=[stmt.body])
        _canonicalize(stmt.body)


def _blocks(program: Program) -> list[Block]:
    found: list[Block] = []

    def visit(stmt: Stmt) -> None:
        if isinstance(stmt, Block):
            found.append(stmt)
            for s in stmt.statements:
                visit(s)
        elif isinstance(stmt, If):
            visit(stmt.then)
            if stmt.otherwise is not None:
                visit(stmt.otherwise)
        elif isinstance(stmt, (While, For)):
            visit(stmt.body)

    for func in program.functions:
        visit(func.body)
    return found


def _called_names(program: Program) -> set[str]:
    names: set[str] = set()

    def visit_expr(expr: Optional[Expr]) -> None:
        if expr is None:
            return
        if isinstance(expr, Call):
            names.add(expr.name)
            for a in expr.args:
                visit_expr(a)
        elif isinstance(expr, Binary):
            visit_expr(expr.lhs)
            visit_expr(expr.rhs)
        elif isinstance(expr, Unary):
            visit_expr(expr.operand)
        elif isinstance(expr, Assign):
            visit_expr(expr.target)
            visit_expr(expr.value)
        elif isinstance(expr, Index):
            visit_expr(expr.base)
            visit_expr(expr.index)
        elif isinstance(expr, CastExpr):
            visit_expr(expr.operand)

    def visit_stmt(stmt: Stmt) -> None:
        if isinstance(stmt, Block):
            for s in stmt.statements:
                visit_stmt(s)
        elif isinstance(stmt, Decl):
            visit_expr(stmt.init)
        elif isinstance(stmt, ExprStmt):
            visit_expr(stmt.expr)
        elif isinstance(stmt, If):
            visit_expr(stmt.cond)
            visit_stmt(stmt.then)
            if stmt.otherwise is not None:
                visit_stmt(stmt.otherwise)
        elif isinstance(stmt, While):
            visit_expr(stmt.cond)
            visit_stmt(stmt.body)
        elif isinstance(stmt, For):
            if stmt.init is not None:
                visit_stmt(stmt.init)
            visit_expr(stmt.cond)
            visit_expr(stmt.step)
            visit_stmt(stmt.body)
        elif isinstance(stmt, Return):
            visit_expr(stmt.value)

    for func in program.functions:
        visit_stmt(func.body)
    return names


def _used_names(program: Program) -> set[str]:
    names: set[str] = set()

    def visit_expr(expr: Optional[Expr]) -> None:
        if expr is None:
            return
        if isinstance(expr, VarRef):
            names.add(expr.name)
        elif isinstance(expr, Call):
            for a in expr.args:
                visit_expr(a)
        elif isinstance(expr, Binary):
            visit_expr(expr.lhs)
            visit_expr(expr.rhs)
        elif isinstance(expr, Unary):
            visit_expr(expr.operand)
        elif isinstance(expr, Assign):
            visit_expr(expr.target)
            visit_expr(expr.value)
        elif isinstance(expr, Index):
            visit_expr(expr.base)
            visit_expr(expr.index)
        elif isinstance(expr, CastExpr):
            visit_expr(expr.operand)

    def visit_stmt(stmt: Stmt) -> None:
        if isinstance(stmt, Block):
            for s in stmt.statements:
                visit_stmt(s)
        elif isinstance(stmt, Decl):
            visit_expr(stmt.init)
        elif isinstance(stmt, ExprStmt):
            visit_expr(stmt.expr)
        elif isinstance(stmt, If):
            visit_expr(stmt.cond)
            visit_stmt(stmt.then)
            if stmt.otherwise is not None:
                visit_stmt(stmt.otherwise)
        elif isinstance(stmt, While):
            visit_expr(stmt.cond)
            visit_stmt(stmt.body)
        elif isinstance(stmt, For):
            if stmt.init is not None:
                visit_stmt(stmt.init)
            visit_expr(stmt.cond)
            visit_expr(stmt.step)
            visit_stmt(stmt.body)
        elif isinstance(stmt, Return):
            visit_expr(stmt.value)

    for func in program.functions:
        visit_stmt(func.body)
    return names


# ---- candidate enumeration --------------------------------------------------


def _candidates(program: Program) -> Iterator[Program]:
    """Yield smaller variants of ``program``, most aggressive first.

    Each yielded value is an independent deep copy; the input is never
    mutated.
    """
    # 1. Drop uncalled non-main functions and unused globals.
    called = _called_names(program)
    for i, func in enumerate(program.functions):
        if func.name != "main" and func.name not in called:
            cand = copy.deepcopy(program)
            del cand.functions[i]
            yield cand
    used = _used_names(program)
    for i, g in enumerate(program.globals):
        if g.name not in used:
            cand = copy.deepcopy(program)
            del cand.globals[i]
            yield cand

    # 2. ddmin-style statement-chunk removal, large chunks first.
    blocks = _blocks(program)
    for bi, block in enumerate(blocks):
        n = len(block.statements)
        size = n
        while size >= 1:
            for start in range(0, n - size + 1):
                cand = copy.deepcopy(program)
                cblock = _blocks(cand)[bi]
                del cblock.statements[start:start + size]
                yield cand
            size //= 2

    # 3. Structure simplification: branch → taken arm, loop → body / nothing
    #    is covered by chunk removal; here: replace compound statements by
    #    their bodies (hoisting).
    for bi, block in enumerate(blocks):
        for si, stmt in enumerate(block.statements):
            if isinstance(stmt, If):
                for attr in ("then", "otherwise"):
                    arm = getattr(stmt, attr)
                    if isinstance(arm, Block):
                        cand = copy.deepcopy(program)
                        cblock = _blocks(cand)[bi]
                        carm = getattr(cblock.statements[si], attr)
                        cblock.statements[si:si + 1] = carm.statements
                        yield cand
            elif isinstance(stmt, (While, For)) and isinstance(stmt.body, Block):
                cand = copy.deepcopy(program)
                cblock = _blocks(cand)[bi]
                body = cblock.statements[si].body
                cblock.statements[si:si + 1] = body.statements
                yield cand

    # 4. Expression simplification on statement heads.
    for bi, block in enumerate(blocks):
        for si, stmt in enumerate(block.statements):
            for cand_expr in _expr_edits(stmt):
                cand = copy.deepcopy(program)
                cblock = _blocks(cand)[bi]
                cand_expr(cblock.statements[si])
                yield cand


def _expr_edits(stmt: Stmt) -> list[Callable[[Stmt], None]]:
    """Editor callbacks applying one expression simplification to the copy
    of ``stmt`` at the same position."""
    edits: list[Callable[[Stmt], None]] = []

    def simplify_slots(get, set_) -> None:
        expr = get(stmt)
        if isinstance(expr, Binary):
            edits.append(lambda s, g=get, st=set_: st(s, g(s).lhs))
            edits.append(lambda s, g=get, st=set_: st(s, g(s).rhs))
        elif isinstance(expr, (Unary, CastExpr)):
            edits.append(lambda s, g=get, st=set_: st(s, g(s).operand))
        elif isinstance(expr, Call) and expr.args:
            def zero_args(s, g=get):
                call = g(s)
                call.args = [IntLit(value=0) for _ in call.args]
            edits.append(zero_args)
        if expr is not None and not isinstance(expr, IntLit):
            edits.append(lambda s, st=set_: st(s, IntLit(value=1)))

    if isinstance(stmt, Return) and stmt.value is not None:
        simplify_slots(lambda s: s.value,
                       lambda s, e: setattr(s, "value", e))
    elif isinstance(stmt, ExprStmt):
        expr = stmt.expr
        if isinstance(expr, Assign):
            simplify_slots(lambda s: s.expr.value,
                           lambda s, e: setattr(s.expr, "value", e))
        elif isinstance(expr, Call):
            simplify_slots(lambda s: s.expr,
                           lambda s, e: setattr(s, "expr", e))
    elif isinstance(stmt, If):
        simplify_slots(lambda s: s.cond,
                       lambda s, e: setattr(s, "cond", e))
    elif isinstance(stmt, Decl) and stmt.init is not None:
        simplify_slots(lambda s: s.init,
                       lambda s, e: setattr(s, "init", e))
    return edits


def _weight(program: Program) -> int:
    """Tree size; the greedy loop only accepts strictly smaller trees."""
    count = 0

    def visit(node) -> None:
        nonlocal count
        count += 1
        for value in vars(node).values():
            if isinstance(value, (Expr, Stmt)):
                visit(value)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, (Expr, Stmt)):
                        visit(item)

    for g in program.globals:
        count += 1
        if g.init is not None:
            visit(g.init)
    for func in program.functions:
        count += 1
        visit(func.body)
    return count


# ---- driver -----------------------------------------------------------------


def shrink(source: str, predicate: Predicate, *,
           max_attempts: int = 4000,
           stats: Optional[ShrinkStats] = None) -> str:
    """Minimize ``source`` while ``predicate(candidate)`` stays true.

    ``predicate`` must return True for ``source`` itself (it is re-checked);
    if it does not, the input is returned unchanged.  The result always
    satisfies the predicate and is never larger (in AST nodes or lines)
    than the input.
    """
    stats = stats if stats is not None else ShrinkStats()
    if not predicate(source):
        return source
    best = parse(source)
    for func in best.functions:
        _canonicalize(func.body)
    best_text = render_program(best)
    if not predicate(best_text):  # canonical form lost the bug: keep input
        return source

    improved = True
    while improved and stats.attempts < max_attempts:
        improved = False
        stats.rounds += 1
        weight = _weight(best)
        for cand in _candidates(best):
            if stats.attempts >= max_attempts:
                break
            if _weight(cand) >= weight:
                continue
            stats.attempts += 1
            try:
                text = render_program(cand)
            except TypeError:
                continue
            if predicate(text):
                best, best_text = cand, text
                stats.accepted += 1
                improved = True
                break  # greedy restart from the smaller program
    return best_text


def make_divergence_predicate(signature: str, oracle_opts=None) -> Predicate:
    """A predicate preserving ``Verdict.signature == signature``.

    Candidates that fail to compile, crash the reference interpreter, or
    diverge with a *different* signature are all rejected, so shrinking
    never wanders onto an unrelated bug.  The oracle's rung set is trimmed
    to the cheapest one that can still witness the signature.
    """
    from .oracle import options_for_signature, run_oracle

    opts = options_for_signature(signature, oracle_opts)

    def predicate(source: str) -> bool:
        try:
            verdict = run_oracle(source, opts)
        except Exception:  # noqa: BLE001 - candidate doesn't even compile
            return False
        return (not verdict.ok) and verdict.signature == signature

    return predicate
