"""Lockstep co-simulation oracle over every rung of the lasagne.

For one mini-C program the oracle runs, in pipeline order:

====================  ==========  ===========================================
rung                  stage       what it certifies
====================  ==========  ===========================================
``reference``         frontend    mini-C → LIR, reference interpreter
``x86``               x86         mini-C → x86 object, TSO emulator
``interp:lift``       lift        lifted module, LIR interpreter
``interp:refine``     refine      after §5 IR refinement
``interp:place``      place       after LIMM fence placement
``interp:opt``        opt         after the O2 pass pipeline
``interp:merge``      merge       after §7 fence merging (+DCE)
``arm:native``        codegen     native config on the Arm emulator
``arm:lifted`` …      codegen     each translated config on the Arm emulator
====================  ==========  ===========================================

Every rung retires three observables: the return value, the output stream
(``print_i``/``print_f``), and the final bytes of every named global (the
retired memory side effects).  The first rung that disagrees with the
reference classifies the divergence by pipeline stage — e.g. if
``interp:lift`` agrees but ``interp:opt`` does not, the bug was introduced
by the optimizer, not the lifter or the backend.

On top of the execution rungs, a *static* rung runs the fencecheck linter
(:mod:`repro.analysis.fencecheck`) over the fence-placed, optimized and
merged modules: any stage whose output no longer discharges the Fig. 8a
LIMM obligations is reported as a ``fencecheck``-kind divergence, even if
no execution happened to observe the weakened ordering.

With ``fence_analysis="delay-sets"`` (or ``"sync"``) a second static rung
(``delayset:place``) re-derives the whole-module conflict graph on the
place-stage snapshot and audits every cycle-freeness certificate the
elision tier stamped (:func:`repro.analysis.delayset.audit_module`): a
certificate whose fence covered a critical-cycle delay edge — or one
issued under a capped analysis — is a ``delayset``-kind divergence.
Under ``"sync"`` the audit also re-runs the lockset-refined analysis, so
sync-tier certificates are re-derived against fresh must-locksets.

With ``tv=True`` a third static rung (``tv:opt``) runs the per-pass
translation validator (:mod:`repro.analysis.tv`) inside the capturing
ppopt build: every optimization pass invocation is symbolically checked
for refinement, and any ``refuted`` verdict — a concrete-counterexample
miscompile — is reported as a ``tv``-kind divergence at the opt stage,
even when no execution rung happened to hit the broken path.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

from ..analysis import check_module
from ..arm.emulator import ArmEmulator
from ..core import Lasagne
from ..lir import Interpreter, Module
from ..minicc.codegen_x86 import compile_to_x86
from ..minicc.frontend_lir import compile_to_lir
from ..x86 import X86Emulator

ARM_CONFIGS = ("lifted", "opt", "popt", "ppopt")


@dataclass(frozen=True)
class OracleOptions:
    verify: bool = True
    include_native: bool = True
    arm_configs: tuple[str, ...] = ARM_CONFIGS
    max_steps: int = 5_000_000   # per-rung retirement budget
    compare_globals: bool = True
    fencecheck: bool = True      # static LIMM-obligation rung
    fence_analysis: str = "escape"  # pipeline fence-elision tier
    tv: bool = False             # per-pass translation-validation rung


@dataclass
class RungResult:
    name: str
    stage: str
    result: Optional[int] = None
    output: tuple[str, ...] = ()
    globals: dict[str, str] = field(default_factory=dict)  # name -> byte digest
    retired: int = 0             # instructions/steps retired (metadata only)
    error: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "name": self.name, "stage": self.stage, "result": self.result,
            "output": list(self.output), "retired": self.retired,
            "error": self.error,
        }


@dataclass
class Divergence:
    stage: str
    rung: str
    kind: str            # 'result' | 'output' | 'globals' | 'crash'
    detail: str

    @property
    def signature(self) -> str:
        """Stable label used for dedup and shrink preservation."""
        return f"{self.stage}:{self.kind}"

    def to_dict(self) -> dict:
        return {"stage": self.stage, "rung": self.rung, "kind": self.kind,
                "detail": self.detail, "signature": self.signature}


@dataclass
class Verdict:
    ok: bool
    divergence: Optional[Divergence]
    rungs: list[RungResult]

    @property
    def signature(self) -> Optional[str]:
        return self.divergence.signature if self.divergence else None

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "divergence": self.divergence.to_dict() if self.divergence else None,
            "rungs": [r.to_dict() for r in self.rungs],
        }


def _digest(raw: bytes) -> str:
    return hashlib.sha1(raw).hexdigest()[:16]


def _interp_rung(name: str, stage: str, module: Module,
                 names: list[str], opts: OracleOptions) -> RungResult:
    rung = RungResult(name, stage)
    interp = Interpreter(module)
    interp.max_steps = opts.max_steps
    try:
        rung.result = interp.run("main")
    except Exception as exc:  # noqa: BLE001 - any rung failure is a finding
        rung.error = f"{type(exc).__name__}: {exc}"
        return rung
    rung.output = tuple(interp.output)
    rung.retired = interp.steps
    if opts.compare_globals:
        for gname in names:
            addr = interp.global_addr.get(gname)
            if addr is None:
                continue
            size = _module_global_size(module, gname)
            rung.globals[gname] = _digest(bytes(interp.memory[addr:addr + size]))
    return rung


def _module_global_size(module: Module, name: str) -> int:
    g = module.globals.get(name)
    return max(1, g.size_bytes()) if g is not None else 8


def _arm_rung(name: str, program, names, sizes, opts: OracleOptions) -> RungResult:
    rung = RungResult(name, "codegen")
    emu = ArmEmulator(program)
    emu.max_steps = opts.max_steps
    try:
        rung.result = emu.run()
    except Exception as exc:  # noqa: BLE001
        rung.error = f"{type(exc).__name__}: {exc}"
        return rung
    rung.output = tuple(emu.output)
    rung.retired = sum(t.instret for t in emu.threads)
    if opts.compare_globals:
        for gname in names:
            addr = emu.symbols.get(gname)
            g = program.globals.get(gname)
            if addr is None or g is None:
                continue
            size = sizes.get(gname, g.size)
            rung.globals[gname] = _digest(bytes(emu.memory[addr:addr + size]))
    return rung


def _compare(reference: RungResult, rung: RungResult) -> Optional[Divergence]:
    if rung.error is not None:
        return Divergence(rung.stage, rung.name, "crash", rung.error)
    if rung.result != reference.result:
        return Divergence(
            rung.stage, rung.name, "result",
            f"result {rung.result!r} != reference {reference.result!r}")
    if rung.output != reference.output:
        index = next(
            (i for i, (a, b) in enumerate(zip(reference.output, rung.output))
             if a != b),
            min(len(reference.output), len(rung.output)))
        return Divergence(
            rung.stage, rung.name, "output",
            f"output differs first at index {index}: "
            f"reference[{index}:]={list(reference.output[index:index + 3])!r} "
            f"vs {rung.name}[{index}:]={list(rung.output[index:index + 3])!r}")
    for gname, dig in reference.globals.items():
        other = rung.globals.get(gname)
        if other is not None and other != dig:
            return Divergence(
                rung.stage, rung.name, "globals",
                f"final bytes of global {gname!r} differ")
    return None


def options_for_signature(signature: str,
                          base: OracleOptions | None = None) -> OracleOptions:
    """Trim the rung set to the cheapest one that can still witness
    ``signature`` — used by the shrinker, whose predicate re-runs the oracle
    hundreds of times.

    IR-stage signatures don't need any Arm builds at all; codegen
    signatures keep the Arm rungs but skip nothing else (the staged interps
    are what prove the divergence arrived *after* the IR was still right).
    """
    base = base or OracleOptions()
    stage = signature.split(":", 1)[0]
    if stage == "codegen":
        return base
    return OracleOptions(
        verify=base.verify, include_native=False, arm_configs=(),
        max_steps=base.max_steps, compare_globals=base.compare_globals,
        fencecheck=base.fencecheck, fence_analysis=base.fence_analysis,
        tv=base.tv)


def run_oracle(source: str, opts: OracleOptions | None = None) -> Verdict:
    """Run every pipeline rung on ``source`` and classify the first mismatch.

    Never raises for pipeline misbehaviour: a rung that crashes (including
    the translator itself while building that rung) is reported as a
    ``crash``-kind divergence at that rung's stage.  Only an uncompilable
    *source program* (a generator or shrinker bug, not a pipeline bug)
    propagates as an exception.
    """
    opts = opts or OracleOptions()
    rungs: list[RungResult] = []

    ref_module = compile_to_lir(source)
    names = list(ref_module.globals)
    reference = _interp_rung("reference", "frontend", ref_module, names, opts)
    rungs.append(reference)
    if reference.error is not None:
        return Verdict(False, Divergence(
            "frontend", "reference", "crash", reference.error), rungs)

    obj = compile_to_x86(source)
    sizes = {n: s.size for n, s in obj.data_symbols.items()}

    rung = RungResult("x86", "x86")
    emu = X86Emulator(obj)
    try:
        rung.result = emu.run()
        rung.output = tuple(emu.output)
        rung.retired = sum(t.instret for t in emu.threads)
        if opts.compare_globals:
            for gname in names:
                sym = obj.data_symbols.get(gname)
                if sym is None:
                    continue
                rung.globals[gname] = _digest(
                    bytes(emu.memory[sym.address:sym.address + sym.size]))
    except Exception as exc:  # noqa: BLE001
        rung.error = f"{type(exc).__name__}: {exc}"
    rungs.append(rung)

    # One capturing ppopt build supplies every intermediate-stage module.
    staged: dict[str, Module] = {}
    arm_programs: dict[str, object] = {}
    build_errors: dict[str, str] = {}
    tv_report = None
    lasagne = Lasagne(verify=opts.verify, capture_stages=True,
                      fence_analysis=opts.fence_analysis, tv=opts.tv)
    try:
        built = lasagne.translate(obj, "ppopt")
        staged = built.stages
        arm_programs["ppopt"] = built.program
        tv_report = built.tv_report
    except Exception as exc:  # noqa: BLE001
        build_errors["ppopt"] = f"{type(exc).__name__}: {exc}"
    plain = Lasagne(verify=opts.verify, fence_analysis=opts.fence_analysis)
    if opts.include_native:
        try:
            arm_programs["native"] = plain.native(source).program
        except Exception as exc:  # noqa: BLE001
            build_errors["native"] = f"{type(exc).__name__}: {exc}"
    for config in opts.arm_configs:
        if config in arm_programs or config in build_errors:
            continue
        try:
            arm_programs[config] = plain.translate(obj, config).program
        except Exception as exc:  # noqa: BLE001
            build_errors[config] = f"{type(exc).__name__}: {exc}"

    for stage in ("lift", "refine", "place", "opt", "merge"):
        module = staged.get(stage)
        if module is not None:
            rungs.append(
                _interp_rung(f"interp:{stage}", stage, module, names, opts))
        elif "ppopt" in build_errors:
            # The capturing build died; blame the earliest uncaptured stage.
            rungs.append(RungResult(f"interp:{stage}", stage,
                                    error=build_errors["ppopt"]))
            break

    arm_order = (("native",) if opts.include_native else ()) + opts.arm_configs
    for config in arm_order:
        name = f"arm:{config}"
        if config in build_errors and config != "ppopt":
            rungs.append(RungResult(name, "codegen", error=build_errors[config]))
        elif config in arm_programs:
            rungs.append(
                _arm_rung(name, arm_programs[config], names, sizes, opts))

    for rung in rungs[1:]:
        divergence = _compare(reference, rung)
        if divergence is not None:
            return Verdict(False, divergence, rungs)

    # Static rung: every pass invocation of the capturing ppopt build
    # must have produced a refinement of its input (proved/unknown are
    # both clean — only a concrete-counterexample refutation diverges).
    if opts.tv and tv_report is not None:
        name = "tv:opt"
        rung = RungResult(name, "opt")
        rung.retired = len(tv_report.verdicts)
        rungs.append(rung)
        refuted = tv_report.refutations()
        if refuted:
            detail = "; ".join(
                f"{v.pass_name}/{v.function}: {v.reason}"
                + (f" [{v.blame}]" if v.blame else "")
                for v in refuted[:3])
            if len(refuted) > 3:
                detail += f" (+{len(refuted) - 3} more)"
            return Verdict(False, Divergence(
                "opt", name, "tv",
                f"{len(refuted)} refuted pass invocation(s): {detail}",
            ), rungs)

    # Static rung: the LIMM obligations must survive opt and merging.
    if opts.fencecheck:
        for stage in ("place", "opt", "merge"):
            module = staged.get(stage)
            if module is None:
                continue
            name = f"fencecheck:{stage}"
            rung = RungResult(name, stage)
            try:
                diags = check_module(module)
            except Exception as exc:  # noqa: BLE001
                rung.error = f"{type(exc).__name__}: {exc}"
                rungs.append(rung)
                return Verdict(False, Divergence(
                    stage, name, "crash", rung.error), rungs)
            rung.retired = len(diags)
            rungs.append(rung)
            if diags:
                detail = "; ".join(str(d) for d in diags[:3])
                if len(diags) > 3:
                    detail += f" (+{len(diags) - 3} more)"
                return Verdict(False, Divergence(
                    stage, name, "fencecheck",
                    f"{len(diags)} undischarged LIMM obligation(s): {detail}",
                ), rungs)

    # Static rung: every delay-set cycle-freeness certificate must be
    # re-derivable from the place-stage module (the stage that issued it).
    if opts.fence_analysis in ("delay-sets", "sync"):
        module = staged.get("place")
        if module is not None:
            from ..analysis.delayset import audit_module

            name = "delayset:place"
            rung = RungResult(name, "place")
            try:
                violations = audit_module(
                    module, sync=opts.fence_analysis == "sync")
            except Exception as exc:  # noqa: BLE001
                rung.error = f"{type(exc).__name__}: {exc}"
                rungs.append(rung)
                return Verdict(False, Divergence(
                    "place", name, "crash", rung.error), rungs)
            rung.retired = len(violations)
            rungs.append(rung)
            if violations:
                detail = "; ".join(violations[:3])
                if len(violations) > 3:
                    detail += f" (+{len(violations) - 3} more)"
                return Verdict(False, Divergence(
                    "place", name, "delayset",
                    f"{len(violations)} uncertified elision(s): {detail}",
                ), rungs)
    return Verdict(True, None, rungs)
