"""Seeded random mini-C program generator.

The generated programs are the fuzz inputs of the differential oracle, so
they must be *deterministic* (no data races, no scheduling-visible output),
*terminating* (loops have static bounds, calls are non-recursive) and free
of undefined behaviour the pipeline rungs could legitimately disagree on
(all array indexing is masked in-bounds, divisors are non-zero constants,
shift amounts are small constants).  Within those rules the generator aims
for coverage: pointers, globals, arrays, doubles, nested control flow and
helper-function calls are all on by default and individually gated by
:class:`GenConfig` knobs.

Determinism contract: the same ``(seed, GenConfig)`` pair always yields the
same source text, independent of interpreter hash randomization or
generation order elsewhere.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


@dataclass(frozen=True)
class GenConfig:
    """Size and feature knobs for :class:`ProgramGenerator`."""

    max_statements: int = 7      # statements per top-level body
    max_depth: int = 3           # expression nesting depth
    max_block_depth: int = 2     # control-flow nesting depth
    max_functions: int = 2       # helper functions besides main
    max_loop_iters: int = 6      # static trip-count bound
    arrays: bool = True
    pointers: bool = True
    doubles: bool = True
    calls: bool = True
    prints: bool = True
    loops: bool = True
    branches: bool = True
    threads: bool = False        # commutative atomic-counter workers only
    result_mask: int = 0x0FFFFFFF

    def scaled(self, factor: float) -> "GenConfig":
        """A config with the size knobs scaled by ``factor`` (features kept)."""
        return GenConfig(
            max_statements=max(1, int(self.max_statements * factor)),
            max_depth=max(1, int(self.max_depth * factor)),
            max_block_depth=max(1, int(self.max_block_depth * factor)),
            max_functions=max(0, int(self.max_functions * factor)),
            max_loop_iters=max(1, int(self.max_loop_iters * factor)),
            arrays=self.arrays, pointers=self.pointers,
            doubles=self.doubles, calls=self.calls, prints=self.prints,
            loops=self.loops, branches=self.branches, threads=self.threads,
            result_mask=self.result_mask,
        )


ARRAY_NAME = "ga"
ARRAY_SIZE = 8  # power of two so `& 7` masks indices in bounds


@dataclass
class _Scope:
    """Names visible while generating one function body."""

    int_vars: list[str] = field(default_factory=list)
    double_vars: list[str] = field(default_factory=list)
    pointer_vars: list[str] = field(default_factory=list)
    protected: set[str] = field(default_factory=set)  # loop counters
    helpers: list[str] = field(default_factory=list)  # callable helper names

    def assignable_ints(self) -> list[str]:
        return [v for v in self.int_vars if v not in self.protected]


class ProgramGenerator:
    """Generates one mini-C program per ``generate()`` call.

    Successive calls continue the same random stream, so
    ``ProgramGenerator(seed)`` used as a corpus source yields a reproducible
    *sequence* of programs; ``generate_program(seed)`` is the one-shot form.
    """

    def __init__(self, seed: int, config: GenConfig | None = None) -> None:
        self.rng = random.Random(seed)
        self.cfg = config or GenConfig()
        self._fresh = 0

    # ---- helpers -----------------------------------------------------------
    def _name(self, prefix: str) -> str:
        self._fresh += 1
        return f"{prefix}{self._fresh}"

    def _pick(self, items):
        return items[self.rng.randrange(len(items))]

    # ---- expressions -------------------------------------------------------
    def _int_atom(self, scope: _Scope) -> str:
        choices = ["lit"]
        if scope.int_vars:
            choices += ["var", "var"]
        if self.cfg.arrays:
            choices.append("arr")
        if scope.pointer_vars:
            choices.append("deref")
        kind = self._pick(choices)
        if kind == "var":
            return self._pick(scope.int_vars)
        if kind == "arr":
            return f"{ARRAY_NAME}[{self.rng.randrange(ARRAY_SIZE)}]"
        if kind == "deref":
            return f"(*{self._pick(scope.pointer_vars)})"
        return str(self.rng.randint(-20, 20))

    def _int_expr(self, scope: _Scope, depth: int = 0) -> str:
        if depth >= self.cfg.max_depth:
            return self._int_atom(scope)
        roll = self.rng.random()
        sub = lambda: self._int_expr(scope, depth + 1)  # noqa: E731
        if roll < 0.28:
            return self._int_atom(scope)
        if roll < 0.55:
            op = self._pick(["+", "-", "*", "&", "|", "^"])
            return f"({sub()} {op} {sub()})"
        if roll < 0.65:
            op = self._pick(["<", "<=", ">", ">=", "==", "!="])
            return f"({sub()} {op} {sub()})"
        if roll < 0.72:
            op = self._pick(["<<", ">>"])
            return f"(({sub()} & 1023) {op} {self.rng.randrange(6)})"
        if roll < 0.79:
            op = self._pick(["/", "%"])
            return f"({sub()} {op} {self.rng.randint(1, 9)})"
        if roll < 0.85:
            # The space stops `-` from fusing with a negative literal into
            # a `--` predecrement token.
            op = self._pick(["-", "~", "!"])
            return f"({op} {sub()})"
        if roll < 0.90 and self.cfg.arrays:
            return f"{ARRAY_NAME}[({sub()} & {ARRAY_SIZE - 1})]"
        if roll < 0.95 and self.cfg.calls and scope.helpers:
            callee = self._pick(scope.helpers)
            return f"{callee}({sub()}, {sub()})"
        if self.cfg.doubles and (scope.double_vars or depth < 2):
            return f"((int)({self._double_expr(scope, depth + 1)}))"
        return self._int_atom(scope)

    def _double_expr(self, scope: _Scope, depth: int = 0) -> str:
        atom_choices = ["lit"]
        if scope.double_vars:
            atom_choices += ["var", "var"]
        if depth >= 2:
            kind = self._pick(atom_choices)
            if kind == "var":
                return self._pick(scope.double_vars)
            return f"{self.rng.randint(-16, 16) / 2.0}"
        roll = self.rng.random()
        if roll < 0.35:
            kind = self._pick(atom_choices)
            if kind == "var":
                return self._pick(scope.double_vars)
            return f"{self.rng.randint(-16, 16) / 2.0}"
        if roll < 0.70:
            op = self._pick(["+", "-", "*"])
            return (f"({self._double_expr(scope, depth + 1)} {op} "
                    f"{self._double_expr(scope, depth + 1)})")
        if roll < 0.85:
            return (f"({self._double_expr(scope, depth + 1)} / "
                    f"{self._pick(['2.0', '4.0', '8.0'])})")
        return f"((double)({self._int_expr(scope, self.cfg.max_depth - 1)} & 255))"

    def _int_lvalue(self, scope: _Scope) -> str | None:
        choices = []
        if scope.assignable_ints():
            choices += ["var", "var"]
        if self.cfg.arrays:
            choices.append("arr")
        if scope.pointer_vars:
            choices.append("deref")
        if not choices:
            return None
        kind = self._pick(choices)
        if kind == "var":
            return self._pick(scope.assignable_ints())
        if kind == "arr":
            return f"{ARRAY_NAME}[{self.rng.randrange(ARRAY_SIZE)}]"
        return f"*{self._pick(scope.pointer_vars)}"

    def _pointer_target(self, scope: _Scope) -> str | None:
        targets = []
        targets += [f"&{v}" for v in scope.int_vars if not v.startswith("p")]
        if self.cfg.arrays:
            targets.append(f"&{ARRAY_NAME}[{self.rng.randrange(ARRAY_SIZE)}]")
        if not targets:
            return None
        return self._pick(targets)

    # ---- statements --------------------------------------------------------
    def _statement(self, scope: _Scope, lines: list[str], indent: str,
                   depth: int, loop_kind: str | None) -> None:
        choices = ["assign", "assign", "assign"]
        if self.cfg.prints:
            choices.append("print")
        if self.cfg.doubles and scope.double_vars:
            choices.append("dassign")
        if self.cfg.branches and depth < self.cfg.max_block_depth:
            choices.append("if")
        if self.cfg.loops and depth < self.cfg.max_block_depth:
            choices += ["for", "while"]
        if scope.pointer_vars:
            choices.append("retarget")
        if loop_kind is not None and self.cfg.branches:
            choices.append("escape")
        kind = self._pick(choices)

        if kind == "assign":
            lhs = self._int_lvalue(scope)
            if lhs is None:
                lines.append(f"{indent}print_i({self._int_expr(scope)});")
                return
            lines.append(f"{indent}{lhs} = {self._int_expr(scope)};")
        elif kind == "dassign":
            lhs = self._pick(scope.double_vars)
            lines.append(f"{indent}{lhs} = {self._double_expr(scope)};")
        elif kind == "print":
            if self.cfg.doubles and scope.double_vars and self.rng.random() < 0.3:
                lines.append(f"{indent}print_f({self._double_expr(scope)});")
            else:
                lines.append(f"{indent}print_i({self._int_expr(scope)});")
        elif kind == "retarget":
            target = self._pointer_target(scope)
            if target is not None:
                lines.append(
                    f"{indent}{self._pick(scope.pointer_vars)} = {target};")
        elif kind == "if":
            cond = self._int_expr(scope, 1)
            lines.append(f"{indent}if ({cond}) {{")
            self._block(scope, lines, indent + "  ", depth + 1, loop_kind,
                        self.rng.randint(1, 3))
            if self.rng.random() < 0.4:
                lines.append(f"{indent}}} else {{")
                self._block(scope, lines, indent + "  ", depth + 1, loop_kind,
                            self.rng.randint(1, 2))
            lines.append(f"{indent}}}")
        elif kind == "for":
            counter = self._name("i")
            bound = self.rng.randint(1, self.cfg.max_loop_iters)
            lines.append(
                f"{indent}for (int {counter} = 0; {counter} < {bound}; "
                f"{counter} = {counter} + 1) {{")
            scope.int_vars.append(counter)
            scope.protected.add(counter)
            self._block(scope, lines, indent + "  ", depth + 1, "for",
                        self.rng.randint(1, 3))
            scope.int_vars.remove(counter)
            scope.protected.discard(counter)
            lines.append(f"{indent}}}")
        elif kind == "while":
            counter = self._name("w")
            bound = self.rng.randint(1, self.cfg.max_loop_iters)
            lines.append(f"{indent}int {counter} = {bound};")
            lines.append(f"{indent}while ({counter} > 0) {{")
            scope.int_vars.append(counter)
            scope.protected.add(counter)
            # `while` bodies may not `continue` (it would skip the decrement).
            self._block(scope, lines, indent + "  ", depth + 1, "while",
                        self.rng.randint(1, 2))
            lines.append(f"{indent}  {counter} = {counter} - 1;")
            scope.int_vars.remove(counter)
            scope.protected.discard(counter)
            lines.append(f"{indent}}}")
        elif kind == "escape":
            cond = self._int_expr(scope, self.cfg.max_depth - 1)
            word = "break"
            if loop_kind == "for" and self.rng.random() < 0.5:
                word = "continue"
            lines.append(f"{indent}if ({cond}) {word};")

    def _block(self, scope: _Scope, lines: list[str], indent: str,
               depth: int, loop_kind: str | None, count: int) -> None:
        for _ in range(count):
            self._statement(scope, lines, indent, depth, loop_kind)

    # ---- functions ---------------------------------------------------------
    def _declarations(self, scope: _Scope, lines: list[str], indent: str,
                      globals_ints: list[str]) -> None:
        for _ in range(self.rng.randint(1, 3)):
            name = self._name("v")
            lines.append(f"{indent}int {name} = {self.rng.randint(-20, 20)};")
            scope.int_vars.append(name)
        if self.cfg.doubles and self.rng.random() < 0.6:
            name = self._name("d")
            lines.append(
                f"{indent}double {name} = {self.rng.randint(-8, 8) / 2.0};")
            scope.double_vars.append(name)
        if self.cfg.pointers and self.rng.random() < 0.7:
            target = self._pointer_target(
                _Scope(int_vars=scope.int_vars + globals_ints))
            if target is not None:
                name = self._name("p")
                lines.append(f"{indent}int *{name} = {target};")
                scope.pointer_vars.append(name)

    def _helper(self, name: str, helpers: list[str],
                globals_ints: list[str]) -> list[str]:
        scope = _Scope(int_vars=["a", "b"] + list(globals_ints),
                       protected=set(), helpers=list(helpers))
        lines = [f"int {name}(int a, int b) {{"]
        self._declarations(scope, lines, "  ", globals_ints)
        self._block(scope, lines, "  ", 1, None,
                    self.rng.randint(1, max(1, self.cfg.max_statements // 2)))
        lines.append(f"  return {self._int_expr(scope)};")
        lines.append("}")
        return lines

    def _thread_section(self, globals_ints: list[str]) -> tuple[list[str], list[str]]:
        """A commutative atomic-counter worker plus the main-side harness.

        Workers only ``atomic_add`` constants, so any interleaving retires
        the same final counter value — the one thread shape that is safe to
        compare across schedulers with different quanta.
        """
        decls = ["int tctr = 0;"]
        per_thread = self.rng.randint(1, 4)
        step1, step2 = self.rng.randint(1, 5), self.rng.randint(1, 5)
        worker = [
            "int worker(int t) {",
            f"  for (int ti = 0; ti < {per_thread}; ti = ti + 1) "
            "{ atomic_add(&tctr, t); }",
            "  return 0;",
            "}",
        ]
        harness = [
            f"  int t1 = spawn(worker, {step1});",
            f"  int t2 = spawn(worker, {step2});",
            "  join(t1); join(t2);",
            "  fence();",
        ]
        return decls + worker, harness

    # ---- program -----------------------------------------------------------
    def generate(self) -> str:
        self._fresh = 0
        cfg = self.cfg
        lines: list[str] = []
        globals_ints: list[str] = []
        # Global initializers must be plain literals (sema rejects unary
        # minus there), so they are drawn non-negative.
        for _ in range(self.rng.randint(1, 2)):
            name = self._name("g")
            lines.append(f"int {name} = {self.rng.randint(0, 10)};")
            globals_ints.append(name)
        if cfg.arrays:
            lines.append(f"int {ARRAY_NAME}[{ARRAY_SIZE}];")
        global_doubles: list[str] = []
        if cfg.doubles and self.rng.random() < 0.5:
            name = self._name("gd")
            lines.append(f"double {name} = {self.rng.randint(0, 8) / 2.0};")
            global_doubles.append(name)

        thread_harness: list[str] = []
        if cfg.threads:
            section, thread_harness = self._thread_section(globals_ints)
            lines.extend(section)
            globals_ints.append("tctr")

        helpers: list[str] = []
        if cfg.calls:
            for _ in range(self.rng.randint(0, cfg.max_functions)):
                name = self._name("h")
                lines.extend(self._helper(name, helpers, globals_ints))
                helpers.append(name)

        scope = _Scope(int_vars=list(globals_ints),
                       double_vars=list(global_doubles), helpers=helpers)
        lines.append("int main() {")
        self._declarations(scope, lines, "  ", globals_ints)
        self._block(scope, lines, "  ", 0, None,
                    self.rng.randint(2, cfg.max_statements))
        lines.extend(thread_harness)
        lines.append(f"  return ({self._int_expr(scope)}) & {cfg.result_mask};")
        lines.append("}")
        return "\n".join(lines) + "\n"


def generate_program(seed: int, config: GenConfig | None = None) -> str:
    """One-shot: the first program of ``ProgramGenerator(seed, config)``."""
    return ProgramGenerator(seed, config).generate()
