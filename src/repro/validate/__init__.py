"""Differential translation validation (the `repro validate` subsystem).

Lasagne's correctness story (§7, §9) is that every configuration of the
pipeline computes the same results as the source x86 binary.  This package
turns that claim into a standing, fuzz-driven oracle:

* :mod:`~repro.validate.generator` — seeded random mini-C programs,
* :mod:`~repro.validate.oracle` — lockstep co-simulation of every pipeline
  rung with stage-level divergence classification,
* :mod:`~repro.validate.shrink` — statement-level delta debugging of
  diverging programs,
* :mod:`~repro.validate.runner` — multiprocess corpus runs with a
  persistent corpus, crash directory and JSON report.
"""

from .generator import GenConfig, ProgramGenerator, generate_program
from .oracle import (
    Divergence,
    OracleOptions,
    RungResult,
    Verdict,
    options_for_signature,
    run_oracle,
)
from .render import render_program
from .runner import RunnerOptions, run_corpus
from .shrink import make_divergence_predicate, shrink

__all__ = [
    "GenConfig", "ProgramGenerator", "generate_program",
    "Divergence", "OracleOptions", "RungResult", "Verdict",
    "options_for_signature", "run_oracle",
    "render_program",
    "RunnerOptions", "run_corpus",
    "make_divergence_predicate", "shrink",
]
