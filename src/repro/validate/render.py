"""Render a (pre-sema) mini-C AST back to source text.

The shrinker edits parsed ASTs; this module turns the edited tree back into
source the whole toolchain can consume.  Rendering is deliberately
over-parenthesized — every compound sub-expression gets parentheses — so no
precedence reasoning is needed and ``parse(render(ast))`` is structurally
the same tree.

Only ASTs straight out of :func:`repro.minicc.parser.parse` are supported;
sema-inserted implicit casts render like explicit ones, which is still
re-parseable, just uglier.
"""

from __future__ import annotations

from ..minicc.astnodes import (
    Assign,
    Binary,
    Block,
    Break,
    Call,
    CastExpr,
    Continue,
    Decl,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    FuncDef,
    GlobalDecl,
    If,
    Index,
    IntLit,
    Program,
    Return,
    Stmt,
    StringLit,
    Unary,
    VarRef,
    While,
)


def render_expr(expr: Expr) -> str:
    if isinstance(expr, IntLit):
        return str(expr.value)
    if isinstance(expr, FloatLit):
        return repr(float(expr.value))
    if isinstance(expr, StringLit):
        escaped = (expr.value.replace("\\", "\\\\").replace('"', '\\"')
                   .replace("\n", "\\n").replace("\t", "\\t"))
        return f'"{escaped}"'
    if isinstance(expr, VarRef):
        return expr.name
    if isinstance(expr, Unary):
        # The space keeps `- -x` from lexing as a `--` token.
        return f"({expr.op} {render_expr(expr.operand)})"
    if isinstance(expr, Binary):
        return (f"({render_expr(expr.lhs)} {expr.op} "
                f"{render_expr(expr.rhs)})")
    if isinstance(expr, Assign):
        return f"{render_expr(expr.target)} = {render_expr(expr.value)}"
    if isinstance(expr, Index):
        return f"{render_expr(expr.base)}[{render_expr(expr.index)}]"
    if isinstance(expr, Call):
        args = ", ".join(render_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, CastExpr):
        return f"(({expr.target_type})({render_expr(expr.operand)}))"
    raise TypeError(f"cannot render expression {type(expr).__name__}")


def render_stmt(stmt: Stmt, indent: str = "") -> list[str]:
    inner = indent + "  "
    if isinstance(stmt, Block):
        lines = [f"{indent}{{"]
        for s in stmt.statements:
            lines.extend(render_stmt(s, inner))
        lines.append(f"{indent}}}")
        return lines
    if isinstance(stmt, Decl):
        init = f" = {render_expr(stmt.init)}" if stmt.init is not None else ""
        ctype = str(stmt.ctype)
        if ctype.endswith("*"):
            base, stars = stmt.ctype.base, "*" * stmt.ctype.ptr
            return [f"{indent}{base} {stars}{stmt.name}{init};"]
        return [f"{indent}{ctype} {stmt.name}{init};"]
    if isinstance(stmt, ExprStmt):
        return [f"{indent}{render_expr(stmt.expr)};"]
    if isinstance(stmt, If):
        lines = [f"{indent}if ({render_expr(stmt.cond)})"]
        lines.extend(_render_body(stmt.then, indent))
        if stmt.otherwise is not None:
            lines.append(f"{indent}else")
            lines.extend(_render_body(stmt.otherwise, indent))
        return lines
    if isinstance(stmt, While):
        lines = [f"{indent}while ({render_expr(stmt.cond)})"]
        lines.extend(_render_body(stmt.body, indent))
        return lines
    if isinstance(stmt, For):
        if stmt.init is None:
            init = ";"
        elif isinstance(stmt.init, Decl):
            init = render_stmt(stmt.init)[0].strip()
        else:
            init = f"{render_expr(stmt.init.expr)};"
        cond = render_expr(stmt.cond) if stmt.cond is not None else ""
        step = render_expr(stmt.step) if stmt.step is not None else ""
        lines = [f"{indent}for ({init} {cond}; {step})"]
        lines.extend(_render_body(stmt.body, indent))
        return lines
    if isinstance(stmt, Return):
        if stmt.value is None:
            return [f"{indent}return;"]
        return [f"{indent}return {render_expr(stmt.value)};"]
    if isinstance(stmt, Break):
        return [f"{indent}break;"]
    if isinstance(stmt, Continue):
        return [f"{indent}continue;"]
    raise TypeError(f"cannot render statement {type(stmt).__name__}")


def _render_body(stmt: Stmt, indent: str) -> list[str]:
    if isinstance(stmt, Block):
        return render_stmt(stmt, indent)
    # Single-statement bodies get braces anyway; shorter and always valid.
    return render_stmt(Block(statements=[stmt]), indent)


def render_global(g: GlobalDecl) -> str:
    suffix = f"[{g.array_size}]" if g.array_size is not None else ""
    init = f" = {render_expr(g.init)}" if g.init is not None else ""
    return f"{g.ctype} {g.name}{suffix}{init};"


def render_function(func: FuncDef) -> list[str]:
    params = ", ".join(f"{p.ctype} {p.name}" for p in func.params)
    lines = [f"{func.ret_type} {func.name}({params})"]
    lines.extend(render_stmt(func.body, ""))
    return lines


def render_program(program: Program) -> str:
    lines: list[str] = []
    for g in program.globals:
        lines.append(render_global(g))
    for func in program.functions:
        lines.extend(render_function(func))
    return "\n".join(lines) + "\n"
