"""Parallel corpus runner for the differential oracle.

Drives :func:`repro.validate.oracle.run_oracle` over a stream of generated
programs with a ``multiprocessing`` worker pool, a persistent on-disk
corpus, a crash directory and a machine-readable JSON report.

Corpus layout (``.validate-corpus/`` by default)::

    corpus/   seed-<seed>.c          sampled generated programs; replayed
                                     first on the next run as a regression
                                     corpus
    crashes/  <stage>-<kind>-<id>.c  the diverging program
              <stage>-<kind>-<id>.json   divergence metadata
              <stage>-<kind>-<id>.min.c  shrunk reproducer (with --shrink)
    report.json                      the last run's report

Task seeds are derived deterministically from the base seed and the task
index, so a run is reproducible regardless of ``--jobs`` and any diverging
program can be regenerated from its reported seed alone.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Optional

from .. import telemetry
from .generator import GenConfig, generate_program
from .oracle import OracleOptions, run_oracle
from .shrink import ShrinkStats, make_divergence_predicate, shrink

REPORT_VERSION = 1
CORPUS_CAP = 256          # max stored seed programs
SEED_STRIDE = 1_000_003   # task seed = base * STRIDE + index (prime stride)


@dataclass(frozen=True)
class RunnerOptions:
    seed: int = 0
    jobs: int = 1
    count: Optional[int] = 100
    minutes: Optional[float] = None
    shrink: bool = False
    shrink_attempts: int = 600
    corpus_dir: str = ".validate-corpus"
    # Telemetry: write a merged Chrome trace of every oracle run to this
    # path, and/or aggregate an optimization-remark histogram (filtered by
    # ``remark_filter``, a regex over remark origins) into the report.
    trace_file: Optional[str] = None
    collect_remarks: bool = False
    remark_filter: Optional[str] = None
    gen: GenConfig = field(default_factory=GenConfig)
    oracle: OracleOptions = field(default_factory=OracleOptions)


def _task_seed(base: int, index: int) -> int:
    return base * SEED_STRIDE + index


def _program_id(source: str) -> str:
    return hashlib.sha1(source.encode()).hexdigest()[:12]


def _stage_seconds(tracer: telemetry.Tracer) -> dict[str, float]:
    """Per-stage wall time summed across every pipeline run in the trace."""
    return {
        name: round(seconds, 6)
        for name, seconds in tracer.durations(category="stage").items()
    }


def _run_one(task) -> dict:
    """Worker entry: generate (or load) one program and judge it."""
    kind, payload, seed, opts = task
    source = payload if kind == "corpus" else generate_program(seed, opts.gen)
    started = time.monotonic()
    # Each program runs under its own telemetry session so the corpus
    # report can aggregate per-stage wall time (and, on request, a merged
    # Chrome trace and a remark histogram) even across worker processes.
    with telemetry.session(trace=True, metrics=False,
                           remarks=opts.collect_remarks,
                           remark_filter=opts.remark_filter) as tel:
        try:
            verdict = run_oracle(source, opts.oracle)
        except Exception as exc:  # noqa: BLE001 - an uncompilable generated program
            return {
                "origin": kind, "seed": seed, "ok": False, "stage": "generator",
                "kind": "crash", "rung": None, "signature": "generator:crash",
                "detail": f"{type(exc).__name__}: {exc}", "source": source,
                "elapsed": time.monotonic() - started,
                "stage_seconds": _stage_seconds(tel.tracer),
            }
    row = {
        "origin": kind, "seed": seed, "ok": verdict.ok,
        "elapsed": time.monotonic() - started,
        "stage_seconds": _stage_seconds(tel.tracer),
    }
    if opts.trace_file:
        row["trace_events"] = telemetry.to_chrome_trace(tel.tracer)["traceEvents"]
    if opts.collect_remarks:
        row["remark_histogram"] = tel.remarks.histogram()
    if not verdict.ok:
        div = verdict.divergence
        row.update(stage=div.stage, kind=div.kind, rung=div.rung,
                   signature=div.signature, detail=div.detail, source=source)
    return row


def _tasks(opts: RunnerOptions, corpus_files: list[Path]) -> Iterator[tuple]:
    for path in corpus_files:
        yield ("corpus", path.read_text(), None, opts)
    index = 0
    while opts.count is None or index < opts.count:
        yield ("generated", None, _task_seed(opts.seed, index), opts)
        index += 1
        if opts.count is None and opts.minutes is None and index >= 10_000:
            return  # safety backstop: never unbounded without a budget


def _take(iterator: Iterator[tuple], n: int) -> list[tuple]:
    batch = []
    for task in iterator:
        batch.append(task)
        if len(batch) >= n:
            break
    return batch


def _timing_summary(rows: list[dict], slowest: int = 5) -> dict:
    """Wall-time distribution across programs + per-stage percentiles.

    Quantiles come from :class:`repro.telemetry.Histogram` — the exact
    (linear-interpolated) leg of the histogram metric type, the same
    math every other report in the codebase quotes.
    """
    from ..telemetry import Histogram

    overall = Histogram()
    per_stage: dict[str, Histogram] = {}
    for row in rows:
        overall.observe(row["elapsed"])
        for stage, seconds in row.get("stage_seconds", {}).items():
            per_stage.setdefault(stage, Histogram()).observe(seconds)
    stages = {}
    for stage, hist in sorted(per_stage.items()):
        stages[stage] = {
            "total_seconds": round(hist.total, 6),
            "p50_seconds": round(hist.percentile(0.50), 6),
            "p95_seconds": round(hist.percentile(0.95), 6),
        }
    ranked = sorted(rows, key=lambda r: r["elapsed"], reverse=True)
    return {
        "min_seconds": round(overall.min or 0.0, 6),
        "median_seconds": round(overall.percentile(0.50), 6),
        "p95_seconds": round(overall.percentile(0.95), 6),
        "max_seconds": round(overall.max or 0.0, 6),
        "mean_seconds": round(overall.mean, 6),
        "slowest": [
            {"seed": r.get("seed"), "origin": r["origin"],
             "elapsed_seconds": round(r["elapsed"], 6)}
            for r in ranked[:slowest]
        ],
        "stages": stages,
    }


def run_corpus(opts: RunnerOptions,
               progress: Optional[Callable[[dict], None]] = None) -> dict:
    """Run the corpus and return the JSON-serializable report."""
    root = Path(opts.corpus_dir)
    corpus_dir = root / "corpus"
    crash_dir = root / "crashes"
    corpus_dir.mkdir(parents=True, exist_ok=True)
    crash_dir.mkdir(parents=True, exist_ok=True)

    corpus_files = sorted(corpus_dir.glob("*.c"))
    deadline = (time.monotonic() + opts.minutes * 60.0
                if opts.minutes is not None else None)
    started = time.monotonic()

    rows: list[dict] = []

    def consume(results: Iterator[dict]) -> None:
        for row in results:
            rows.append(row)
            if progress is not None:
                progress(row)
            if deadline is not None and time.monotonic() >= deadline:
                break

    task_iter = _tasks(opts, corpus_files)
    if opts.jobs <= 1:
        # Inline execution: deterministic order, and monkeypatched pipeline
        # stages (used by tests to inject bugs) stay in effect.
        def inline() -> Iterator[dict]:
            for task in task_iter:
                yield _run_one(task)
        consume(inline())
    else:
        # Submit in bounded waves: Pool.imap would slurp an unbounded task
        # iterator eagerly, which a --minutes run cannot afford.
        with multiprocessing.Pool(opts.jobs) as pool:
            while True:
                if deadline is not None and time.monotonic() >= deadline:
                    break
                batch = _take(task_iter, opts.jobs * 8)
                if not batch:
                    break
                consume(pool.imap_unordered(_run_one, batch, chunksize=1))

    elapsed = time.monotonic() - started
    diverging = [r for r in rows if not r["ok"]]

    # Persist newly generated programs to the corpus (up to the cap).
    existing = len(corpus_files)
    for row in rows:
        if existing >= CORPUS_CAP:
            break
        if row["origin"] == "generated" and row["ok"]:
            source = generate_program(row["seed"], opts.gen)
            (corpus_dir / f"seed-{row['seed']}.c").write_text(source)
            existing += 1

    # Crash artifacts: one per divergence signature (first witness wins),
    # optionally shrunk.
    crashes: list[dict] = []
    seen_signatures: set[str] = set()
    for row in diverging:
        signature = row["signature"]
        if signature in seen_signatures:
            continue
        seen_signatures.add(signature)
        stem = (f"{row['stage']}-{row['kind']}-"
                f"{_program_id(row['source'])}")
        crash_c = crash_dir / f"{stem}.c"
        crash_c.write_text(row["source"])
        entry = {
            "file": str(crash_c), "stage": row["stage"], "kind": row["kind"],
            "rung": row.get("rung"), "seed": row.get("seed"),
            "signature": signature, "detail": row["detail"],
        }
        if opts.shrink and row["stage"] != "generator":
            stats = ShrinkStats()
            reduced = shrink(
                row["source"],
                make_divergence_predicate(signature, opts.oracle),
                max_attempts=opts.shrink_attempts, stats=stats)
            min_c = crash_dir / f"{stem}.min.c"
            min_c.write_text(reduced)
            entry["shrunk_file"] = str(min_c)
            entry["shrunk_lines"] = len(reduced.strip().splitlines())
            entry["shrink_attempts"] = stats.attempts
        (crash_dir / f"{stem}.json").write_text(json.dumps(entry, indent=2))
        crashes.append(entry)

    stage_histogram: dict[str, int] = {}
    kind_histogram: dict[str, int] = {}
    for row in diverging:
        stage_histogram[row["stage"]] = stage_histogram.get(row["stage"], 0) + 1
        kind_histogram[row["kind"]] = kind_histogram.get(row["kind"], 0) + 1

    # Merge per-program telemetry: an optional Chrome trace spanning every
    # oracle run and an optional remark histogram.
    if opts.trace_file is not None:
        events: list[dict] = []
        for row in rows:
            events.extend(row.pop("trace_events", []))
        Path(opts.trace_file).write_text(
            json.dumps({"traceEvents": events, "displayTimeUnit": "ms"}))
    remark_histogram: dict[str, int] = {}
    for row in rows:
        for key, n in row.pop("remark_histogram", {}).items():
            remark_histogram[key] = remark_histogram.get(key, 0) + n

    report = {
        "version": REPORT_VERSION,
        "seed": opts.seed,
        "jobs": opts.jobs,
        "requested": {"count": opts.count, "minutes": opts.minutes},
        "programs_run": len(rows),
        "corpus_replayed": sum(1 for r in rows if r["origin"] == "corpus"),
        "divergences": len(diverging),
        "stage_histogram": stage_histogram,
        "kind_histogram": kind_histogram,
        "crashes": crashes,
        "elapsed_seconds": round(elapsed, 3),
        "throughput_per_minute": round(len(rows) / elapsed * 60.0, 1)
        if elapsed > 0 else 0.0,
        "timing": _timing_summary(rows),
        "clean": not diverging,
    }
    if opts.collect_remarks:
        report["remark_histogram"] = dict(sorted(remark_histogram.items()))
    (root / "report.json").write_text(json.dumps(report, indent=2))
    return report
