"""Span-based tracer for the translation pipeline.

A :class:`Tracer` collects a forest of nested :class:`Span` objects, one
stack per thread, timed with ``time.perf_counter``.  Spans are context
managers::

    tracer = Tracer()
    with tracer.span("translate", category="pipeline", config="ppopt"):
        with tracer.span("lift", category="stage"):
            ...

When tracing is disabled the instrumentation hooks in
:mod:`repro.telemetry` hand out the shared :data:`NOOP_SPAN` instead, so
the disabled path costs one global load and an attribute call.

Three exporters ship with the tracer:

* :func:`format_tree` — a human-readable indented tree with durations,
* :func:`to_json` — a nested JSON-serializable dict,
* :func:`to_chrome_trace` — Chrome trace-event format: ``ph: "X"``
  complete events plus ``ph: "M"`` process/thread-name metadata (the
  trace is self-describing in Perfetto — threads render as ``main`` /
  ``worker-N`` instead of raw idents) and, when a metrics registry is
  passed, ``ph: "C"`` counter events so the counters chart alongside
  the spans.  Loadable in ``chrome://tracing`` and
  https://ui.perfetto.dev.

Exception safety: a span exited by an unwinding exception still closes
(``with`` guarantees ``__exit__``), is annotated with
``error=<exception type>``, and never corrupts the tree or leaks into
:meth:`Tracer.open_spans` — the tests in ``tests/test_telemetry.py``
pin this down.
"""

from __future__ import annotations

import os
import threading
from time import perf_counter
from typing import Any, Iterator, Optional


class NoopSpan:
    """Shared do-nothing span returned when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def annotate(self, **attrs: Any) -> "NoopSpan":
        return self


NOOP_SPAN = NoopSpan()


class Span:
    """One timed region of the pipeline; created via :meth:`Tracer.span`."""

    __slots__ = ("name", "category", "attrs", "start", "end", "children",
                 "tid", "_tracer")

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.category = category
        self.attrs = attrs
        self.children: list[Span] = []
        self.tid = threading.get_ident()
        self.end: Optional[float] = None
        self.start = perf_counter()

    def annotate(self, **attrs: Any) -> "Span":
        """Attach attributes after the span was opened."""
        self.attrs.update(attrs)
        return self

    @property
    def duration(self) -> float:
        """Seconds from start to end (to *now* for a live span)."""
        return (self.end if self.end is not None else perf_counter()) - self.start

    @property
    def self_time(self) -> float:
        """Duration minus the time spent in child spans."""
        return self.duration - sum(c.duration for c in self.children)

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            # Mark the span as unwound-through; the exception propagates.
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._finish(self)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Span {self.name!r} {self.duration * 1e3:.3f}ms>"


class Tracer:
    """Collects a forest of nested spans; thread-safe, one stack per thread."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stacks = threading.local()
        self._live: dict[int, Span] = {}
        self.roots: list[Span] = []
        self.epoch = perf_counter()

    # ---- recording -------------------------------------------------------
    def _stack(self) -> list[Span]:
        try:
            return self._stacks.stack
        except AttributeError:
            stack: list[Span] = []
            self._stacks.stack = stack
            return stack

    def span(self, name: str, category: str = "span", **attrs: Any) -> Span:
        """Open a span nested under the current thread's innermost span."""
        span = Span(self, name, category, attrs)
        self._stack().append(span)
        with self._lock:
            self._live[id(span)] = span
        return span

    def _finish(self, span: Span) -> None:
        span.end = perf_counter()
        stack = self._stack()
        if span in stack:
            # Tolerate out-of-order exits: unwind through the finished span.
            while stack:
                if stack.pop() is span:
                    break
        with self._lock:
            self._live.pop(id(span), None)
        parent = stack[-1] if stack else None
        if parent is not None:
            parent.children.append(span)
        else:
            with self._lock:
                self.roots.append(span)

    # ---- queries ---------------------------------------------------------
    def open_spans(self) -> list[Span]:
        """Spans entered but not yet exited, across all threads.  Empty
        after every ``with`` block unwound — even via an exception."""
        with self._lock:
            return list(self._live.values())

    def walk(self) -> Iterator[Span]:
        with self._lock:
            roots = list(self.roots)
        for root in roots:
            yield from root.walk()

    def find(self, name: Optional[str] = None,
             category: Optional[str] = None) -> list[Span]:
        return [
            s for s in self.walk()
            if (name is None or s.name == name)
            and (category is None or s.category == category)
        ]

    def durations(self, category: Optional[str] = None) -> dict[str, float]:
        """Total seconds per span name, optionally restricted by category."""
        out: dict[str, float] = {}
        for span in self.walk():
            if span.end is None:
                continue
            if category is not None and span.category != category:
                continue
            out[span.name] = out.get(span.name, 0.0) + span.duration
        return out


# ---- exporters ------------------------------------------------------------

def _jsonable(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def format_tree(roots: list[Span], indent: int = 2,
                max_depth: Optional[int] = None) -> str:
    """Human-readable span tree with durations and share of the root."""
    lines: list[str] = []

    def visit(span: Span, depth: int, total: float) -> None:
        if max_depth is not None and depth > max_depth:
            return
        pad = " " * (indent * depth)
        label = f"{pad}{span.name}"
        share = ""
        if depth > 0 and total > 0:
            share = f"  {100.0 * span.duration / total:5.1f}%"
        lines.append(f"{label:<36} {span.duration * 1e3:10.3f} ms{share}")
        for child in span.children:
            visit(child, depth + 1, total)

    for root in roots:
        visit(root, 0, root.duration)
    return "\n".join(lines)


def to_json(tracer: Tracer) -> list[dict[str, Any]]:
    """Nested JSON-serializable form of the span forest."""

    def convert(span: Span) -> dict[str, Any]:
        return {
            "name": span.name,
            "category": span.category,
            "attrs": {k: _jsonable(v) for k, v in span.attrs.items()},
            "start_ms": round((span.start - tracer.epoch) * 1e3, 6),
            "duration_ms": round(span.duration * 1e3, 6),
            "children": [convert(c) for c in span.children],
        }

    return [convert(root) for root in tracer.roots]


def to_chrome_trace(tracer: Tracer, metrics: Any = None) -> dict[str, Any]:
    """Chrome trace-event JSON (load in chrome://tracing or Perfetto).

    Besides the ``ph:"X"`` complete events, the trace carries ``ph:"M"``
    metadata naming the process (``repro``) and each thread (``main`` or
    ``worker-N`` in order of first appearance), and — when ``metrics``
    (a :class:`~repro.telemetry.metrics.MetricsRegistry`) is given —
    one ``ph:"C"`` counter event per series, so the registry's final
    totals chart in Perfetto next to the spans they describe.
    """
    pid = os.getpid()
    events: list[dict[str, Any]] = []
    last_ts = 0.0
    tids: list[int] = []
    for span in tracer.walk():
        if span.end is None:
            continue  # still open; cannot emit a complete event
        ts = (span.start - tracer.epoch) * 1e6
        dur = span.duration * 1e6
        last_ts = max(last_ts, ts + dur)
        if span.tid not in tids:
            tids.append(span.tid)
        events.append({
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": ts,
            "dur": dur,
            "pid": pid,
            "tid": span.tid,
            "args": {k: _jsonable(v) for k, v in span.attrs.items()},
        })

    meta: list[dict[str, Any]] = [{
        "name": "process_name", "cat": "__metadata", "ph": "M",
        "pid": pid, "tid": 0, "args": {"name": "repro"},
    }]
    main_ident = threading.main_thread().ident
    worker = 0
    for tid in tids:
        if tid == main_ident:
            label = "main"
        else:
            worker += 1
            label = f"worker-{worker}"
        meta.append({
            "name": "thread_name", "cat": "__metadata", "ph": "M",
            "pid": pid, "tid": tid, "args": {"name": label},
        })

    counters: list[dict[str, Any]] = []
    if metrics is not None:
        snapshot = metrics.snapshot()
        for series, value in snapshot.get("counters", {}).items():
            counters.append({
                "name": series, "cat": "metrics", "ph": "C",
                "ts": last_ts, "pid": pid, "tid": 0,
                "args": {"value": value},
            })
        for series, value in snapshot.get("gauges", {}).items():
            counters.append({
                "name": series, "cat": "metrics", "ph": "C",
                "ts": last_ts, "pid": pid, "tid": 0,
                "args": {"value": value},
            })
        # Histogram series chart their exact quantiles side by side (one
        # counter event, three stacked args) next to the spans they time.
        for series, summary in snapshot.get("histograms", {}).items():
            counters.append({
                "name": series, "cat": "metrics", "ph": "C",
                "ts": last_ts, "pid": pid, "tid": 0,
                "args": {"p50": summary["p50"], "p95": summary["p95"],
                         "p99": summary["p99"]},
            })

    return {"traceEvents": meta + events + counters,
            "displayTimeUnit": "ms"}
