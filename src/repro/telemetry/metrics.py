"""Metrics registry: named counters and gauges with label support.

Counters accumulate (``count("fences.inserted", 3, kind="rm")``), gauges
record the last value.  A (name, labels) pair identifies one time series;
labels are sorted so keyword order does not matter.  All operations are
thread-safe.  ``snapshot()`` renders a JSON-serializable dict with
Prometheus-style flattened names (``fences.inserted{kind=rm}``).
"""

from __future__ import annotations

import threading
from typing import Any, Union

Number = Union[int, float]
_Key = tuple[str, tuple[tuple[str, str], ...]]


def _key(name: str, labels: dict[str, Any]) -> _Key:
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


def render_key(key: _Key) -> str:
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Thread-safe registry of labelled counters and gauges."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[_Key, Number] = {}
        self._gauges: dict[_Key, Number] = {}

    # ---- recording -------------------------------------------------------
    def count(self, name: str, n: Number = 1, **labels: Any) -> None:
        key = _key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + n

    def gauge(self, name: str, value: Number, **labels: Any) -> None:
        with self._lock:
            self._gauges[_key(name, labels)] = value

    # ---- queries ---------------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Number:
        """The value of one counter series (0 if never incremented)."""
        return self._counters.get(_key(name, labels), 0)

    def gauge_value(self, name: str, **labels: Any) -> Number:
        return self._gauges.get(_key(name, labels), 0)

    def total(self, name: str) -> Number:
        """Sum of a counter across all label sets."""
        with self._lock:
            return sum(v for (n, _), v in self._counters.items() if n == name)

    def snapshot(self) -> dict[str, dict[str, Number]]:
        """JSON-serializable flattened view of every series."""
        with self._lock:
            return {
                "counters": {render_key(k): v
                             for k, v in sorted(self._counters.items())},
                "gauges": {render_key(k): v
                           for k, v in sorted(self._gauges.items())},
            }
