"""Metrics registry: named counters, gauges and histograms with labels.

Counters accumulate (``count("fences.inserted", 3, kind="rm")``), gauges
record the last value, histograms record a distribution
(``histogram("validate.elapsed", 0.12, stage="lift")``).  A (name,
labels) pair identifies one time series; labels are sorted so keyword
order does not matter.  All operations are thread-safe.  ``snapshot()``
renders a JSON-serializable dict with Prometheus-style flattened names
(``fences.inserted{kind=rm}``).

Label values are rendered through :func:`_label_value`, which
canonicalizes unordered containers (sets, frozensets, dicts) by sorting
their elements.  ``str(a_set)`` follows hash iteration order, which
varies with ``PYTHONHASHSEED`` — rendered series keys must instead be
byte-identical across interpreter launches, because the warehouse
(:mod:`repro.warehouse`) uses them as ingest keys.

Histograms keep two views of the same stream: fixed log-spaced buckets
(cheap to merge, Prometheus-style cumulative ``le`` counts) and the
exact observations, from which ``percentile`` answers p50/p95/p99 by
linear interpolation — the bench/validate reports quote the exact
quantiles, the buckets feed coarse dashboards.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Optional, Union

Number = Union[int, float]
_Key = tuple[str, tuple[tuple[str, str], ...]]

#: Default histogram buckets: log-spaced upper bounds that cover
#: microseconds-to-minutes wall times and small integer counts alike.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 60.0,
)


def _label_value(value: Any) -> str:
    """Deterministic string form of one label value.

    Unordered containers are sorted element-wise; everything else uses
    ``str``.  This is what keeps rendered series keys stable across
    ``PYTHONHASHSEED`` values.
    """
    if isinstance(value, (set, frozenset)):
        return "{" + ",".join(sorted(_label_value(v) for v in value)) + "}"
    if isinstance(value, dict):
        items = sorted((_label_value(k), _label_value(v))
                       for k, v in value.items())
        return "{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_label_value(v) for v in value) + "]"
    return str(value)


def _key(name: str, labels: dict[str, Any]) -> _Key:
    return (name,
            tuple(sorted((k, _label_value(v)) for k, v in labels.items())))


def render_key(key: _Key) -> str:
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Histogram:
    """One distribution: fixed buckets + exact-quantile observations.

    Not thread-safe on its own — :class:`MetricsRegistry` serializes
    access under its lock; a standalone user (e.g. the validate report
    builder) is single-threaded at aggregation time.
    """

    __slots__ = ("buckets", "bucket_counts", "values", "total", "count",
                 "min", "max", "_sorted")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(sorted(buckets))
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # +inf overflow
        self.values: list[float] = []
        self.total = 0.0
        self.count = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._sorted = True

    def observe(self, value: Number) -> None:
        v = float(value)
        self.bucket_counts[bisect_left(self.buckets, v)] += 1
        if self.values and v < self.values[-1]:
            self._sorted = False
        self.values.append(v)
        self.total += v
        self.count += 1
        self.min = v if self.min is None else min(self.min, v)
        self.max = v if self.max is None else max(self.max, v)

    def _ensure_sorted(self) -> list[float]:
        if not self._sorted:
            self.values.sort()
            self._sorted = True
        return self.values

    def percentile(self, q: float) -> float:
        """Exact linear-interpolated quantile of everything observed."""
        values = self._ensure_sorted()
        if not values:
            return 0.0
        pos = q * (len(values) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(values) - 1)
        frac = pos - lo
        return values[lo] * (1.0 - frac) + values[hi] * frac

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, Any]:
        """JSON-serializable snapshot: exact quantiles + bucket counts."""
        out: dict[str, Any] = {
            "count": self.count,
            "sum": round(self.total, 9),
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": round(self.mean, 9),
            "p50": round(self.percentile(0.50), 9),
            "p95": round(self.percentile(0.95), 9),
            "p99": round(self.percentile(0.99), 9),
        }
        buckets: dict[str, int] = {}
        cumulative = 0
        for bound, n in zip(self.buckets, self.bucket_counts):
            cumulative += n
            buckets[f"le={bound:g}"] = cumulative
        buckets["le=+inf"] = cumulative + self.bucket_counts[-1]
        out["buckets"] = buckets
        return out


class MetricsRegistry:
    """Thread-safe registry of labelled counters, gauges and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[_Key, Number] = {}
        self._gauges: dict[_Key, Number] = {}
        self._histograms: dict[_Key, Histogram] = {}

    # ---- recording -------------------------------------------------------
    def count(self, name: str, n: Number = 1, **labels: Any) -> None:
        key = _key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + n

    def gauge(self, name: str, value: Number, **labels: Any) -> None:
        with self._lock:
            self._gauges[_key(name, labels)] = value

    def histogram(self, name: str, value: Number, **labels: Any) -> None:
        key = _key(name, labels)
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = Histogram()
            hist.observe(value)

    # ---- queries ---------------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Number:
        """The value of one counter series (0 if never incremented)."""
        return self._counters.get(_key(name, labels), 0)

    def gauge_value(self, name: str, **labels: Any) -> Number:
        return self._gauges.get(_key(name, labels), 0)

    def histogram_value(self, name: str, **labels: Any) -> Optional[Histogram]:
        """The live histogram of one series, or None if never observed."""
        return self._histograms.get(_key(name, labels))

    def total(self, name: str) -> Number:
        """Sum of a counter across all label sets."""
        with self._lock:
            return sum(v for (n, _), v in self._counters.items() if n == name)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """JSON-serializable flattened view of every series.

        Keys are rendered deterministically (labels sorted, container
        values canonicalized), so two runs recording the same series
        produce byte-identical JSON regardless of ``PYTHONHASHSEED``.
        """
        with self._lock:
            return {
                "counters": {render_key(k): v
                             for k, v in sorted(self._counters.items())},
                "gauges": {render_key(k): v
                           for k, v in sorted(self._gauges.items())},
                "histograms": {render_key(k): h.summary()
                               for k, h in sorted(self._histograms.items())},
            }
