"""Optimization remarks, LLVM ``-Rpass`` style.

Transformations report structured, source-located decisions — why a fence
was inserted, skipped or merged, which peephole rule fired, which pass
changed the module.  A :class:`Remark` names its *origin* (the pass or
stage), a *kind* (the decision taxonomy, see docs/observability.md), a
human-readable message and an IR location (function / block /
instruction).

A :class:`RemarkSink` collects remarks, optionally filtered by a regex
over the origin — the analogue of ``-Rpass=<regex>``.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass
class Remark:
    origin: str                       # pass/stage name, e.g. "place-fences"
    kind: str                         # decision, e.g. "fence-inserted"
    message: str
    function: Optional[str] = None
    block: Optional[str] = None
    instruction: Optional[str] = None
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def location(self) -> str:
        parts = [p for p in (self.function, self.block, self.instruction) if p]
        return ":".join(parts) if parts else "<module>"

    def format(self) -> str:
        """One ``-Rpass``-flavoured line: ``remark: loc: [origin] message``."""
        return f"remark: {self.location}: [{self.origin}:{self.kind}] {self.message}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "origin": self.origin,
            "kind": self.kind,
            "message": self.message,
            "function": self.function,
            "block": self.block,
            "instruction": self.instruction,
            "args": dict(self.args),
        }


class RemarkSink:
    """Collects remarks; thread-safe; optional origin regex filter."""

    def __init__(self, origin_filter: Optional[str] = None) -> None:
        self._lock = threading.Lock()
        self._filter = re.compile(origin_filter) if origin_filter else None
        self.remarks: list[Remark] = []

    def wants(self, origin: str) -> bool:
        return self._filter is None or bool(self._filter.search(origin))

    def emit(self, remark: Remark) -> None:
        if not self.wants(remark.origin):
            return
        with self._lock:
            self.remarks.append(remark)

    # ---- queries ---------------------------------------------------------
    def select(self, origin: Optional[str] = None,
               kind: Optional[str] = None) -> list[Remark]:
        with self._lock:
            return [
                r for r in self.remarks
                if (origin is None or r.origin == origin)
                and (kind is None or r.kind == kind)
            ]

    def histogram(self) -> dict[str, int]:
        """Remark counts keyed by ``origin:kind``."""
        out: dict[str, int] = {}
        with self._lock:
            for r in self.remarks:
                key = f"{r.origin}:{r.kind}"
                out[key] = out.get(key, 0) + 1
        return out
