"""Benchmark-trajectory emitter: the perf baseline future PRs report against.

Reuses the Phoenix suite (the §9 harness) to time *translation itself* —
not the translated program — for every pipeline configuration, and
records the static outputs that matter for a perf regression: Arm
instruction counts, fence counts, LIR size, and (since v3) provenance
coverage from the LIR→Arm source map.

Schema v3 also keeps a *trajectory*: ``write_bench`` appends one entry
per run — keyed by git SHA and UTC timestamp — to the ``trajectory``
list of the existing report file instead of overwriting history, so
``BENCH_translate.json`` records how the numbers moved across commits.

Schema v4 adds the elision-tier split: every translated row records
``fences_elided_interproc`` (accesses only the bottom-up callee
summaries prove thread-local) and ``fences_elided_delayset`` (fences a
companion ``--fence-analysis=delay-sets`` build classifies as covering
no critical cycle), and the benched program set gains ``demo``
(examples/demo.c) alongside the Phoenix kernels.  The fully-fenced
escape-analysis build remains the timed baseline; the delay-set build
contributes only its elision counter.

Schema v5 adds the binary-loader trajectory: a top-level ``loader``
section times :func:`repro.core.ingest_binary` over every checked-in
ELF64 fixture (``examples/elf/``) and records its coverage counters —
``functions_discovered``, ``externals_resolved``, ``externals_opaque``,
``data_symbols`` — with totals under ``summary["loader"]``, so a
catalog or triage regression (an external going opaque, a function no
longer discovered) shows up in ``BENCH_translate.json`` like a fence
regression would.

Schema v6 adds the deterministic cost dimension (``repro.profiler``):
every translated row carries ``work`` (deterministic work counters from
one instrumented extra build: instructions visited per pass, dataflow
fixpoint steps, points-to rounds, cycle-search expansions, fences
placed, Arm instructions emitted), ``work_digest`` (a sha256 over the
full stage x counter x function matrix — bit-identical across machines
for identical code and input) and ``peak_rss_bytes`` (tracemalloc peak
of the instrumented build).  The per-config ``summary`` rows carry the
merged counters, and the report gains a top-level ``profile_top``
section (top-10 self-sample frames plus per-stage shares from the
sampling profiler).  Trajectory entries now record ``dirty`` (was the
working tree uncommitted?) and are deduplicated by ``(sha, size)``
keeping the newest; the regression gate of
:mod:`repro.profiler.regression` ignores dirty entries.

Schema v7 adds the synchronization dimension: the companion elision
build now runs with ``--fence-analysis=sync`` (delay sets refined by the
pthread must-lockset analysis), so every translated row records
``fences_elided_delayset`` (total fences the delay-set machinery
removed), ``fences_elided_sync`` (the subset only the lockset refinement
could remove) and a ``racecheck`` pair (``racy`` /``lock_protected``
access counts from the static happens-before classifier over the
companion build's module).  Per-config summaries gain the matching
``fences_elided_sync_total`` / ``racecheck_racy_total`` /
``racecheck_lock_protected_total``, and the benched program set gains
``locked`` (examples/locked.c) so the sync tier always has a non-zero
data point.

Schema v8 adds the attribution matrix: every translated row (and every
loader row) carries ``work_cells`` — the sorted ``[stage, counter,
function, count]`` cells behind the ``work`` totals — so the warehouse
(:mod:`repro.warehouse`) can ingest per-pass × per-function cost and
``repro diff`` can rank stage×function deltas between two recorded
runs instead of only per-config counter totals.

Schema v9 adds the translation-validation dimension
(:mod:`repro.analysis.tv`): a companion tv-enabled build per
(program, config) — every config but ``lifted``, which runs no passes —
records per-row ``tv_proved`` / ``tv_unknown`` / ``tv_refuted`` verdict
counts plus the checker's own deterministic cost (``tv.checks``,
``tv.terms``, ``tv.confirms``, ``tv.proved``/``tv.unknown``/
``tv.refuted``) folded into ``work`` / ``work_cells``, with per-config
``tv_proved_total`` / ``tv_unknown_total`` / ``tv_refuted_total`` in the
summary.  A refutation appearing in the trajectory is a miscompile
regression, visible the same way a fencecheck violation would be.

CLI: ``python -m repro bench [--size tiny|small] [--repeats N] [--out FILE]
[--compare [REF]]``.
"""

from __future__ import annotations

import json
import subprocess
from datetime import datetime, timezone
from pathlib import Path
from time import perf_counter
from typing import Optional

BENCH_VERSION = 9
DEFAULT_OUT = "BENCH_translate.json"


def git_sha() -> str:
    """Short git SHA of the working tree, or 'unknown' outside a repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10, check=False,
        )
        sha = out.stdout.strip()
        return sha if out.returncode == 0 and sha else "unknown"
    except OSError:
        return "unknown"


def git_dirty() -> bool:
    """True when the working tree has uncommitted changes (or git is
    unavailable — an unknown tree is not a clean baseline)."""
    try:
        out = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True, text=True, timeout=10, check=False,
        )
        if out.returncode != 0:
            return True
        return bool(out.stdout.strip())
    except OSError:
        return True


def _example_source(name: str) -> Optional[str]:
    """An examples/ source relative to the repo checkout, if present."""
    path = Path(__file__).resolve().parents[3] / "examples" / name
    try:
        return path.read_text()
    except OSError:
        return None


def _elf_fixtures() -> list[Path]:
    """Checked-in ELF64 binaries (not their .c sources) under examples/elf."""
    root = Path(__file__).resolve().parents[3] / "examples" / "elf"
    if not root.is_dir():
        return []
    return sorted(p for p in root.iterdir()
                  if p.is_file() and not p.suffix)


def bench_loader(repeats: int = 3) -> dict[str, dict]:
    """Time ELF ingestion per fixture and snapshot its coverage counters."""
    from ..core.pipeline import ingest_binary

    from ..profiler import workcounters
    from ..profiler.memory import measure_peak

    rows: dict[str, dict] = {}
    for path in _elf_fixtures():
        data = path.read_bytes()
        times = []
        report = None
        for _ in range(max(1, repeats)):
            start = perf_counter()
            _obj, report = ingest_binary(data)
            times.append(perf_counter() - start)
        times.sort()
        # One extra instrumented ingest: deterministic triage counters
        # plus the tracemalloc peak (the v6 cost dimension).
        with workcounters.collect() as wc:
            _, peak = measure_peak(ingest_binary, data)
        rows[path.name] = {
            "ingest_seconds": round(times[len(times) // 2], 6),
            "functions_discovered": len(report.functions),
            "externals_resolved": len(report.externals_resolved),
            "externals_opaque": len(report.externals_opaque),
            "data_symbols": report.data_symbols,
            "ok": report.ok,
            "work": wc.by_counter(),
            "work_cells": [list(cell) for cell in wc.cells()],
            "work_digest": wc.digest(),
            "peak_rss_bytes": peak,
        }
    return rows


def run_bench(size: str = "tiny", configs: Optional[list[str]] = None,
              repeats: int = 3, verify: bool = False) -> dict:
    """Time every (program, config) translation; median of ``repeats``."""
    from ..core.pipeline import CONFIGS, Lasagne
    from ..phoenix import SIZE_SMALL, SIZE_TINY, all_programs
    from ..phoenix.programs import PhoenixProgram
    from ..profiler import workcounters
    from ..profiler.memory import measure_peak
    from ..profiler.sampler import SamplingProfiler
    from ..provenance import SourceMap

    sizes = SIZE_TINY if size == "tiny" else SIZE_SMALL
    configs = list(configs or CONFIGS)
    lasagne = Lasagne(verify=verify)
    # The companion elision build runs the full tier stack (delay sets +
    # lockset/sync refinement) so one extra build yields both counters.
    delayset_lasagne = Lasagne(verify=False, fence_analysis="sync")
    # Companion translation-validation build (v9): per-pass refinement
    # verdicts plus the checker's own tv.* work counters.
    tv_lasagne = Lasagne(tv=True)
    bench_programs = all_programs(sizes)
    demo_src = _example_source("demo.c")
    if demo_src is not None:
        bench_programs.append(PhoenixProgram("demo", "DM", demo_src))
    locked_src = _example_source("locked.c")
    if locked_src is not None:
        bench_programs.append(PhoenixProgram("locked", "LK", locked_src))
    programs: dict[str, dict[str, dict]] = {}
    config_work: dict[str, "workcounters.WorkCounters"] = {
        c: workcounters.WorkCounters() for c in configs}
    config_peak: dict[str, int] = {c: 0 for c in configs}
    sampler = SamplingProfiler(hz=97.0)
    sampler.start()
    for program in bench_programs:
        per_config: dict[str, dict] = {}
        for config in configs:
            times = []
            built = None
            for _ in range(max(1, repeats)):
                start = perf_counter()
                built = lasagne.build(program.source, config)
                times.append(perf_counter() - start)
            times.sort()
            # One instrumented extra build per (program, config): the
            # deterministic work counters and tracemalloc peak (v6).
            with workcounters.collect() as wc:
                _, peak = measure_peak(lasagne.build, program.source, config)
            # Companion tv-enabled build (v9): per-pass refinement
            # verdicts for this row; only the checker's own tv.* cells
            # fold into the work matrix (the rest of that build would
            # double-count the baseline's pipeline work).
            tv_counts = {"proved": 0, "unknown": 0, "refuted": 0}
            if config != "lifted":
                with workcounters.collect() as tv_wc:
                    tv_built = tv_lasagne.build(program.source, config)
                tv_counts = tv_built.tv_report.counts()
                for stage, counter, function, n in tv_wc.cells():
                    if counter.startswith("tv."):
                        wc.add(stage, counter, function, n)
            config_work[config].merge(wc)
            config_peak[config] = max(config_peak[config], peak)
            fencecheck_violations = 0
            if config != "native":
                from ..analysis import check_module

                fencecheck_violations = len(check_module(built.module))
            row = {
                "translate_seconds": round(times[len(times) // 2], 6),
                "arm_instructions": built.arm_instructions,
                "lir_instructions": built.lir_instructions,
                "fences": built.fences,
                "fences_naive": built.fences_naive,
                "fences_elided": built.fences_elided,
                "fences_elided_beyond_walk": built.fences_elided_beyond_walk,
                "fences_elided_interproc": built.fences_elided_interproc,
                "fencecheck_violations": fencecheck_violations,
                "tv_proved": tv_counts["proved"],
                "tv_unknown": tv_counts["unknown"],
                "tv_refuted": tv_counts["refuted"],
                "work": wc.by_counter(),
                "work_cells": [list(cell) for cell in wc.cells()],
                "peak_rss_bytes": peak,
            }
            if config != "native":
                # Companion sync-refined build: same program/config with
                # the critical-cycle + lockset tiers on, recorded for its
                # elisions and race classification only (the timed
                # escape-analysis build stays the baseline).
                from ..analysis.racecheck import classify_module

                ds = delayset_lasagne.build(program.source, config)
                row["fences_elided_delayset"] = ds.fences_elided_delayset
                row["fences_elided_sync"] = ds.fences_elided_sync
                race = classify_module(ds.module)
                row["racecheck"] = {
                    "racy": race.count("racy"),
                    "lock_protected": race.count("lock-protected"),
                }
                # Native code has no x86 lineage; coverage is meaningful
                # only for translated configurations.
                cov = SourceMap.from_program(built.program).coverage()
                row["provenance"] = {
                    "instruction_pct": round(cov.instruction_pct, 2),
                    "memory_pct": round(cov.memory_pct, 2),
                    "fence_pct": round(cov.fence_pct, 2),
                }
            per_config[config] = row
        programs[program.name] = per_config

    summary: dict[str, dict] = {}
    for config in configs:
        rows = [programs[name][config] for name in programs]
        summary[config] = {
            "translate_seconds_total": round(
                sum(r["translate_seconds"] for r in rows), 6),
            "arm_instructions_total": sum(r["arm_instructions"] for r in rows),
            "fences_total": sum(r["fences"] for r in rows),
            "fences_elided_total": sum(r["fences_elided"] for r in rows),
            "fences_elided_beyond_walk_total": sum(
                r["fences_elided_beyond_walk"] for r in rows),
            "fences_elided_interproc_total": sum(
                r["fences_elided_interproc"] for r in rows),
            "fencecheck_violations_total": sum(
                r["fencecheck_violations"] for r in rows),
            "tv_proved_total": sum(r["tv_proved"] for r in rows),
            "tv_unknown_total": sum(r["tv_unknown"] for r in rows),
            "tv_refuted_total": sum(r["tv_refuted"] for r in rows),
        }
        summary[config]["work"] = config_work[config].by_counter()
        summary[config]["work_digest"] = config_work[config].digest()
        summary[config]["peak_rss_bytes"] = config_peak[config]
        if config != "native":
            summary[config]["fences_elided_delayset_total"] = sum(
                r["fences_elided_delayset"] for r in rows)
            summary[config]["fences_elided_sync_total"] = sum(
                r["fences_elided_sync"] for r in rows)
            summary[config]["racecheck_racy_total"] = sum(
                r["racecheck"]["racy"] for r in rows)
            summary[config]["racecheck_lock_protected_total"] = sum(
                r["racecheck"]["lock_protected"] for r in rows)
            summary[config]["provenance_memory_pct_min"] = min(
                r["provenance"]["memory_pct"] for r in rows)
            summary[config]["provenance_fence_pct_min"] = min(
                r["provenance"]["fence_pct"] for r in rows)
    loader_rows = bench_loader(repeats)
    if loader_rows:
        loader_work: dict[str, int] = {}
        for r in loader_rows.values():
            for counter, n in r.get("work", {}).items():
                loader_work[counter] = loader_work.get(counter, 0) + n
        summary["loader"] = {
            "ingest_seconds_total": round(
                sum(r["ingest_seconds"] for r in loader_rows.values()), 6),
            "functions_discovered": sum(
                r["functions_discovered"] for r in loader_rows.values()),
            "externals_resolved": sum(
                r["externals_resolved"] for r in loader_rows.values()),
            "externals_opaque": sum(
                r["externals_opaque"] for r in loader_rows.values()),
            "work": loader_work,
            "peak_rss_bytes": max(
                (r.get("peak_rss_bytes", 0) for r in loader_rows.values()),
                default=0),
        }
    profile = sampler.stop()
    return {
        "version": BENCH_VERSION,
        "size": size,
        "repeats": repeats,
        "configs": configs,
        "programs": programs,
        "loader": loader_rows,
        "summary": summary,
        "profile_top": profile.to_dict(top=10),
    }


def _load_trajectory(path: Path) -> list[dict]:
    """Prior trajectory entries from an existing report (any version)."""
    if not path.exists():
        return []
    try:
        old = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return []
    if not isinstance(old, dict):
        return []
    trajectory = old.get("trajectory", [])
    return trajectory if isinstance(trajectory, list) else []


def read_trajectory(path: str = DEFAULT_OUT) -> list[dict]:
    """Public trajectory reader (``repro bench --compare`` gates on it
    *before* the new entry is appended)."""
    return _load_trajectory(Path(path))


def _dedupe_trajectory(trajectory: list[dict]) -> list[dict]:
    """Keep the *newest* entry per ``(sha, size)``: re-running the bench
    on the same commit replaces its data point instead of stacking
    duplicates that would skew the baseline median.  Entries from dirty
    working trees never collapse a clean one (and vice versa) — a dirty
    tree's numbers describe different code than the commit's."""
    keep: list[dict] = []
    seen: set[tuple] = set()
    for entry in reversed(trajectory):
        if not isinstance(entry, dict):
            continue
        key = (entry.get("sha"), entry.get("size"),
               bool(entry.get("dirty")))
        if key in seen:
            continue
        seen.add(key)
        keep.append(entry)
    return list(reversed(keep))


def write_bench(report: dict, path: str = DEFAULT_OUT) -> Path:
    """Write the report, *appending* a trajectory entry for this run.

    The snapshot fields (``programs``/``summary``) always reflect the
    latest run; ``trajectory`` accumulates one ``{sha, timestamp, size,
    dirty, summary}`` entry per invocation so history survives rewrites,
    deduplicated by ``(sha, size)`` keeping the newest.
    """
    out = Path(path)
    trajectory = _load_trajectory(out)
    trajectory.append({
        "sha": git_sha(),
        "timestamp": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "size": report.get("size"),
        "dirty": git_dirty(),
        "version": report.get("version"),
        "summary": report.get("summary", {}),
    })
    full = dict(report)
    full["trajectory"] = _dedupe_trajectory(trajectory)
    out.write_text(json.dumps(full, indent=2) + "\n")
    return out
