"""Benchmark-trajectory emitter: the perf baseline future PRs report against.

Reuses the Phoenix suite (the §9 harness) to time *translation itself* —
not the translated program — for every pipeline configuration, and
records the static outputs that matter for a perf regression: Arm
instruction counts, fence counts, LIR size.  The result is written as
``BENCH_translate.json``; re-run the harness after a perf change and
diff the two files.

CLI: ``python -m repro bench [--size tiny|small] [--repeats N] [--out FILE]``.
"""

from __future__ import annotations

import json
from pathlib import Path
from time import perf_counter
from typing import Optional

BENCH_VERSION = 2
DEFAULT_OUT = "BENCH_translate.json"


def run_bench(size: str = "tiny", configs: Optional[list[str]] = None,
              repeats: int = 3, verify: bool = False) -> dict:
    """Time every (program, config) translation; median of ``repeats``."""
    from ..core.pipeline import CONFIGS, Lasagne
    from ..phoenix import SIZE_SMALL, SIZE_TINY, all_programs

    sizes = SIZE_TINY if size == "tiny" else SIZE_SMALL
    configs = list(configs or CONFIGS)
    lasagne = Lasagne(verify=verify)
    programs: dict[str, dict[str, dict]] = {}
    for program in all_programs(sizes):
        per_config: dict[str, dict] = {}
        for config in configs:
            times = []
            built = None
            for _ in range(max(1, repeats)):
                start = perf_counter()
                built = lasagne.build(program.source, config)
                times.append(perf_counter() - start)
            times.sort()
            fencecheck_violations = 0
            if config != "native":
                from ..analysis import check_module

                fencecheck_violations = len(check_module(built.module))
            per_config[config] = {
                "translate_seconds": round(times[len(times) // 2], 6),
                "arm_instructions": built.arm_instructions,
                "lir_instructions": built.lir_instructions,
                "fences": built.fences,
                "fences_naive": built.fences_naive,
                "fences_elided": built.fences_elided,
                "fences_elided_beyond_walk": built.fences_elided_beyond_walk,
                "fencecheck_violations": fencecheck_violations,
            }
        programs[program.name] = per_config

    summary: dict[str, dict] = {}
    for config in configs:
        rows = [programs[name][config] for name in programs]
        summary[config] = {
            "translate_seconds_total": round(
                sum(r["translate_seconds"] for r in rows), 6),
            "arm_instructions_total": sum(r["arm_instructions"] for r in rows),
            "fences_total": sum(r["fences"] for r in rows),
            "fences_elided_total": sum(r["fences_elided"] for r in rows),
            "fences_elided_beyond_walk_total": sum(
                r["fences_elided_beyond_walk"] for r in rows),
            "fencecheck_violations_total": sum(
                r["fencecheck_violations"] for r in rows),
        }
    return {
        "version": BENCH_VERSION,
        "size": size,
        "repeats": repeats,
        "configs": configs,
        "programs": programs,
        "summary": summary,
    }


def write_bench(report: dict, path: str = DEFAULT_OUT) -> Path:
    out = Path(path)
    out.write_text(json.dumps(report, indent=2) + "\n")
    return out
