"""``repro.telemetry`` — pipeline tracing, metrics, and optimization remarks.

The instrumentation throughout the translator (pipeline stages, opt
passes, fence placement, refinement, the register allocator, both
emulators) reports through this module's hooks:

* :func:`span` — open a timed region (nested; Chrome-trace exportable),
* :func:`count` / :func:`gauge` — bump a labelled metric,
* :func:`remark` — report a structured, source-located decision.

Telemetry is **off by default and costs nothing when off**: each hook
reads one module global; with no session installed :func:`span` returns
the shared no-op span and the others return immediately.  Call sites
that would build expensive remark messages hoist
:func:`remarks_enabled` first.

Use :func:`session` to turn telemetry on for a dynamic extent::

    from repro import telemetry

    with telemetry.session() as tel:
        built = Lasagne().build(source, "ppopt")
    print(telemetry.format_tree(tel.tracer.roots))
    print(tel.metrics.snapshot())
    for r in tel.remarks.remarks:
        print(r.format())

Sessions are process-global (every thread reports into the installed
session) and nest: the previous session is restored on exit.  See
docs/observability.md for the full API, the remark taxonomy and how to
open traces in Perfetto.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Iterator, Optional, Union

from .metrics import Histogram, MetricsRegistry
from .remarks import Remark, RemarkSink
from .tracer import (
    NOOP_SPAN,
    NoopSpan,
    Span,
    Tracer,
    format_tree,
    to_chrome_trace,
    to_json,
)


class Telemetry:
    """One observability session: tracer + metrics + remarks sinks.

    Any component can be disabled (``None``) to skip its collection.
    """

    def __init__(self, trace: bool = True, metrics: bool = True,
                 remarks: bool = True,
                 remark_filter: Optional[str] = None) -> None:
        self.tracer: Optional[Tracer] = Tracer() if trace else None
        self.metrics: Optional[MetricsRegistry] = (
            MetricsRegistry() if metrics else None)
        self.remarks: Optional[RemarkSink] = (
            RemarkSink(remark_filter) if remarks else None)


_lock = threading.Lock()
_current: Optional[Telemetry] = None


def current() -> Optional[Telemetry]:
    """The installed session, or None when telemetry is off."""
    return _current


def enabled() -> bool:
    return _current is not None


@contextmanager
def session(trace: bool = True, metrics: bool = True, remarks: bool = True,
            remark_filter: Optional[str] = None) -> Iterator[Telemetry]:
    """Install a fresh :class:`Telemetry` for the extent of the block."""
    tel = Telemetry(trace=trace, metrics=metrics, remarks=remarks,
                    remark_filter=remark_filter)
    global _current
    with _lock:
        previous, _current = _current, tel
    try:
        yield tel
    finally:
        with _lock:
            _current = previous


# ---- instrumentation hooks (no-ops without a session) ----------------------

def span(name: str, category: str = "span",
         **attrs: Any) -> Union[Span, NoopSpan]:
    tel = _current
    if tel is None or tel.tracer is None:
        return NOOP_SPAN
    return tel.tracer.span(name, category, **attrs)


def count(name: str, n: Union[int, float] = 1, **labels: Any) -> None:
    tel = _current
    if tel is not None and tel.metrics is not None:
        tel.metrics.count(name, n, **labels)


def gauge(name: str, value: Union[int, float], **labels: Any) -> None:
    tel = _current
    if tel is not None and tel.metrics is not None:
        tel.metrics.gauge(name, value, **labels)


def histogram(name: str, value: Union[int, float], **labels: Any) -> None:
    """Observe one value of a labelled distribution (p50/p95/p99 in the
    snapshot, fixed-bucket counts for dashboards)."""
    tel = _current
    if tel is not None and tel.metrics is not None:
        tel.metrics.histogram(name, value, **labels)


def remarks_enabled() -> bool:
    """Hoist this check before building per-instruction remark messages."""
    tel = _current
    return tel is not None and tel.remarks is not None


def remark(origin: str, kind: str, message: str,
           function: Optional[str] = None, block: Optional[str] = None,
           instruction: Optional[str] = None, **args: Any) -> None:
    tel = _current
    if tel is not None and tel.remarks is not None:
        tel.remarks.emit(
            Remark(origin, kind, message, function, block, instruction, args))


def metrics_snapshot() -> Optional[dict[str, dict[str, Union[int, float]]]]:
    """Snapshot of the active session's metrics, or None."""
    tel = _current
    if tel is not None and tel.metrics is not None:
        return tel.metrics.snapshot()
    return None


__all__ = [
    "NOOP_SPAN", "NoopSpan", "Span", "Tracer",
    "Histogram", "MetricsRegistry", "Remark", "RemarkSink", "Telemetry",
    "count", "current", "enabled", "format_tree", "gauge", "histogram",
    "metrics_snapshot", "remark", "remarks_enabled", "session", "span",
    "to_chrome_trace", "to_json",
]
