"""``repro explain``: answer "which x86 access does this Arm dmb protect?".

Builds a program under a remark-collecting telemetry session, assembles
the LIR→Arm source map, and produces three views:

* **fences** — per emitted ``dmb``: the protected x86 access(es), the
  Fig. 8a placing rule, and every placement/merge decision that touched
  it (from the fence's decision log plus correlated remarks), followed
  by the accesses whose fences were *elided* and why;
* **map** — side-by-side annotated x86 / LIR / Arm disassembly, keyed by
  x86 address;
* **coverage** — the fraction of Arm instructions, memory accesses and
  fences with resolvable provenance (also recorded as telemetry gauges).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import telemetry
from ..arm.isa import fence_kind
from .origin import Origin, format_origins
from .sourcemap import CoverageReport, SourceMap, SourceMapEntry

#: Arm fence mnemonic → the LIMM fence it encodes (Fig. 8b).
_ARM_FENCE_NAMES = {"ff": "Fsc", "ld": "Frm", "st": "Fww"}


@dataclass
class FenceBlame:
    """Everything known about one emitted Arm fence."""

    function: str
    index: int
    arm: str                       # e.g. "dmb ishst"
    limm: str                      # Fsc / Frm / Fww
    origins: tuple[Origin, ...]
    events: tuple[str, ...]        # placement/merge decision log
    remarks: list = field(default_factory=list)

    @property
    def resolved(self) -> bool:
        return bool(self.origins)

    def rule(self) -> str:
        """The Fig. 8a mapping rule that produced this fence."""
        for event in self.events:
            if event.startswith("placed:"):
                return event[len("placed:"):].strip()
        # No placement log: the fence came straight out of the lifter
        # (mfence → Fsc) or is the implicit ordering of an sc RMW.
        mnems = {o.mnemonic for o in self.origins}
        if "mfence" in mnems:
            return "lifted mfence -> Fsc (Fig. 8a)"
        if any(m.startswith("lock") or m in ("xadd", "xchg", "cmpxchg")
               for m in mnems):
            return "rmw -> RMWsc (Fig. 8a)"
        if self.arm == "dmb ish" and any(not o.is_synthetic
                                         for o in self.origins):
            return "sc ordering of an atomic access"
        return "unknown (no placement record)"

    def to_dict(self) -> dict:
        return {
            "function": self.function,
            "index": self.index,
            "arm": self.arm,
            "limm": self.limm,
            "rule": self.rule(),
            "origins": [o.to_dict() for o in self.origins],
            "events": list(self.events),
            "remarks": [r.format() for r in self.remarks],
        }


@dataclass
class Explanation:
    config: str
    source_map: SourceMap
    coverage: CoverageReport
    fences: list[FenceBlame]
    elisions: list = field(default_factory=list)   # fence-skipped remarks
    x86_listing: dict[str, list] = field(default_factory=dict)
    module = None


def _addrs(origins) -> set[str]:
    return {f"0x{o.addr:x}" for o in origins}


def _correlate(blame: FenceBlame, remarks) -> list:
    """Remarks whose recorded origin addresses intersect the fence's."""
    mine = _addrs(blame.origins)
    hits = []
    for r in remarks:
        if r.kind not in ("fence-inserted", "fence-merged"):
            continue
        theirs = set(r.args.get("origins", ()))
        if theirs and (theirs & mine) and r.function == blame.function:
            hits.append(r)
    return hits


def build_explanation(source: str, config: str = "ppopt",
                      entry: str = "main",
                      verify: bool = True, obj=None) -> Explanation:
    """Translate ``source`` and assemble the full provenance explanation.

    Pass ``obj`` (an already-ingested :class:`X86Object`, e.g. from the
    ELF loader) to skip the mini-C front end; ``source`` is ignored then.
    """
    from ..core import Lasagne
    from ..lifter.disassembler import disassemble_all
    from ..minicc import compile_to_x86

    with telemetry.session(metrics=True, remarks=True) as tel:
        lasagne = Lasagne(verify=verify)
        x86_listing: dict[str, list] = {}
        if config == "native":
            if obj is not None:
                raise ValueError("the native configuration recompiles "
                                 "source and cannot explain a binary")
            built = lasagne.native(source, entry)
        else:
            if obj is None:
                obj = compile_to_x86(source, entry)
            x86_listing = disassemble_all(obj)
            built = lasagne.translate(obj, config, entry)
        source_map = SourceMap.from_program(built.program)
        coverage = source_map.coverage()
        telemetry.gauge("provenance.instruction_pct",
                        round(coverage.instruction_pct, 2), config=config)
        telemetry.gauge("provenance.memory_pct",
                        round(coverage.memory_pct, 2), config=config)
        telemetry.gauge("provenance.fence_pct",
                        round(coverage.fence_pct, 2), config=config)
        remarks = list(tel.remarks.remarks) if tel.remarks else []

    fences: list[FenceBlame] = []
    for entry_ in source_map.fences():
        kind = fence_kind(entry_.instr) or "ff"
        blame = FenceBlame(
            function=entry_.function,
            index=entry_.index,
            arm=str(entry_.instr).strip(),
            limm=_ARM_FENCE_NAMES.get(kind, kind),
            origins=entry_.origins,
            events=tuple(getattr(entry_.instr, "placement", ())),
        )
        blame.remarks = _correlate(blame, remarks)
        fences.append(blame)

    elisions = [r for r in remarks
                if r.origin == "place-fences" and r.kind == "fence-skipped"]
    expl = Explanation(
        config=config,
        source_map=source_map,
        coverage=coverage,
        fences=fences,
        elisions=elisions,
        x86_listing=x86_listing,
    )
    expl.module = built.module
    return expl


# ---- rendering ---------------------------------------------------------


def render_fences(expl: Explanation) -> str:
    lines = [f"== fence blame ({expl.config}) =="]
    if not expl.fences:
        lines.append("  (no fences emitted)")
    for blame in expl.fences:
        lines.append(f"{blame.function}[{blame.index}]: {blame.arm}  "
                     f"({blame.limm})")
        lines.append(f"  protects: {format_origins(blame.origins)}")
        lines.append(f"  rule: {blame.rule()}")
        decisions = list(blame.events)
        if decisions:
            lines.append("  decisions:")
            for event in decisions:
                lines.append(f"    - {event}")
        for r in blame.remarks:
            lines.append(f"  remark: [{r.origin}:{r.kind}] {r.message}")
    if expl.elisions:
        lines.append("")
        lines.append(f"== elided fences ({len(expl.elisions)} accesses "
                     "proven thread-local) ==")
        for r in expl.elisions:
            where = r.args.get("x86", "") or "<no x86 origin>"
            what = r.instruction or ""
            lines.append(f"  {r.function}: {what} @ {where}: {r.message}")
    return "\n".join(lines)


def render_map(expl: Explanation) -> str:
    """Side-by-side x86 / LIR / Arm listing, keyed by x86 address."""
    from ..lir import format_instruction

    lines = [f"== provenance map ({expl.config}) =="]
    if not expl.x86_listing:
        lines.append("  (no x86 input: native config has no lineage)")
        return "\n".join(lines)

    # Index the *final* LIR and the Arm stream by x86 address.
    lir_by_addr: dict[int, list[str]] = {}
    if expl.module is not None:
        for func in expl.module.functions.values():
            for bb in func.blocks:
                for inst in bb.instructions:
                    for o in inst.origins:
                        if not o.is_synthetic:
                            lir_by_addr.setdefault(o.addr, []).append(
                                format_instruction(inst).strip())
    arm_by_addr: dict[int, list[SourceMapEntry]] = {}
    for e in expl.source_map.entries:
        for o in e.origins:
            if not o.is_synthetic:
                arm_by_addr.setdefault(o.addr, []).append(e)

    for fname, instrs in expl.x86_listing.items():
        lines.append(f"\n-- {fname} --")
        for instr in instrs:
            lines.append(f"0x{instr.address:x}: {instr}")
            for text in dict.fromkeys(lir_by_addr.get(instr.address, ())):
                lines.append(f"    lir | {text}")
            seen: set[int] = set()
            for e in arm_by_addr.get(instr.address, ()):
                if id(e) in seen:
                    continue
                seen.add(id(e))
                lines.append(f"    arm | {e.instr}")
    synthetic = [e for e in expl.source_map.entries
                 if e.origins and all(o.is_synthetic for o in e.origins)]
    if synthetic:
        lines.append("\n-- synthetic (anchored at function entries) --")
        for e in synthetic:
            anchor = format_origins(e.origins)
            lines.append(f"    arm | {e.instr}  [{anchor}]")
    return "\n".join(lines)


def render_coverage(expl: Explanation) -> str:
    cov = expl.coverage
    lines = [f"== provenance coverage ({expl.config}) =="]
    lines.append(f"  arm instructions: {cov.resolved}/{cov.total} "
                 f"({cov.instruction_pct:.1f}%) resolve to an x86 origin")
    lines.append(f"  memory accesses:  {cov.mem_resolved}/{cov.mem_total} "
                 f"({cov.memory_pct:.1f}%)")
    lines.append(f"  fences:           {cov.fence_resolved}/{cov.fence_total} "
                 f"({cov.fence_pct:.1f}%)")
    unresolved = expl.source_map.unresolved()
    if unresolved:
        lines.append(f"  unresolved ({len(unresolved)}):")
        for e in unresolved[:10]:
            lines.append(f"    {e.function}[{e.index}]: {e.instr}")
        if len(unresolved) > 10:
            lines.append(f"    ... {len(unresolved) - 10} more")
    return "\n".join(lines)


def explanation_to_dict(expl: Explanation) -> dict:
    return {
        "config": expl.config,
        "coverage": expl.coverage.to_dict(),
        "fences": [b.to_dict() for b in expl.fences],
        "elisions": [r.to_dict() for r in expl.elisions],
    }
