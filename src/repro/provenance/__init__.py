"""Instruction provenance: x86 → LIR → Arm lineage tracking.

* :mod:`repro.provenance.origin` — the ``Origin`` atom and merge helpers;
* :mod:`repro.provenance.sourcemap` — the Arm-level source map + coverage;
* :mod:`repro.provenance.explain` — the ``repro explain`` views.
"""

from .origin import (
    Origin,
    add_origins,
    format_origins,
    merge_origins,
    origins_of,
    primary_origin,
    resolvable,
    synthetic_origin,
    x86_location,
)
from .sourcemap import CoverageReport, SourceMap, SourceMapEntry

__all__ = [
    "Origin", "add_origins", "format_origins", "merge_origins",
    "origins_of", "primary_origin", "resolvable", "synthetic_origin",
    "x86_location",
    "CoverageReport", "SourceMap", "SourceMapEntry",
]
