"""Origin: the provenance atom threaded through the whole pipeline.

Every LIR instruction the lifter produces is stamped with one ``Origin``
naming the x86 instruction (address, mnemonic, byte range) it came from.
Rewrites accumulate rather than replace: when a pass folds two
instructions into one, the survivor keeps the union of both origin sets,
so a GVN'd load still blames both of the loads it replaced.  Arm codegen
copies the current LIR instruction's origins onto every machine
instruction it emits, which is what lets ``repro explain`` resolve an
Arm ``dmb`` all the way back to the x86 access it protects.

Code the pipeline invents out of thin air (the lifter's register-slot
setup, codegen prologue/epilogue) is stamped with a *synthetic* origin
anchored at the function's x86 entry address so it still resolves to a
real location in the input binary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

#: Origin kinds.  ``instr`` is a real lifted machine instruction; the rest
#: are synthetic anchors for code with no 1:1 x86 counterpart.
ORIGIN_KINDS = ("instr", "entry", "prologue", "epilogue")


@dataclass(frozen=True)
class Origin:
    """One x86 source location: ``addr`` .. ``addr + size`` in ``function``."""

    addr: int
    mnemonic: str
    size: int = 0
    function: str = ""
    kind: str = "instr"

    @property
    def is_synthetic(self) -> bool:
        return self.kind != "instr"

    def format(self) -> str:
        tag = "" if self.kind == "instr" else f" <{self.kind}>"
        return f"0x{self.addr:x}({self.mnemonic}){tag}"

    def to_dict(self) -> dict:
        return {
            "addr": self.addr,
            "mnemonic": self.mnemonic,
            "size": self.size,
            "function": self.function,
            "kind": self.kind,
        }


def synthetic_origin(kind: str, addr: int, function: str) -> Origin:
    """An anchor origin for pipeline-invented code (setup, prologue...)."""
    return Origin(addr=addr, mnemonic=f"<{kind}>", size=0,
                  function=function, kind=kind)


def merge_origins(
    base: Sequence[Origin], extra: Iterable[Origin]
) -> tuple[Origin, ...]:
    """Union preserving first-seen order (base first)."""
    seen = set(base)
    merged = tuple(base)
    for o in extra:
        if o not in seen:
            seen.add(o)
            merged = merged + (o,)
    return merged


def origins_of(obj) -> tuple[Origin, ...]:
    """The origin tuple of any object (instructions, AInstrs), or ()."""
    return tuple(getattr(obj, "origins", ()) or ())


def add_origins(obj, extra: Iterable[Origin]) -> None:
    """Merge ``extra`` into ``obj.origins`` (attribute-carrying objects)."""
    obj.origins = merge_origins(origins_of(obj), extra)


def resolvable(obj) -> bool:
    """True when ``obj`` carries at least one x86-addressed origin."""
    return any(o.addr >= 0 for o in origins_of(obj))


def format_origins(origins: Iterable[Origin]) -> str:
    parts = [o.format() for o in origins]
    return ", ".join(parts) if parts else "<no provenance>"


def primary_origin(obj) -> Optional[Origin]:
    """The best single origin to show: first real one, else first synthetic."""
    origins = origins_of(obj)
    for o in origins:
        if not o.is_synthetic:
            return o
    return origins[0] if origins else None


def x86_location(obj) -> str:
    """A short printable x86 location for diagnostics, or '' if unknown."""
    o = primary_origin(obj)
    return o.format() if o is not None else ""
