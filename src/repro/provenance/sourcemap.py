"""LIR→Arm source map: resolve every emitted Arm instruction to x86.

Codegen attaches the current LIR instruction's ``origins`` (and a short
``lir`` description) to each :class:`~repro.arm.isa.AInstr` it emits.
``SourceMap.from_program`` collects those attachments into a queryable
table and computes the coverage figures the acceptance bar asks for:
what fraction of Arm instructions — and specifically of memory accesses
and fences — resolve to at least one x86 origin.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..arm.isa import AInstr, AMem, is_fence
from ..arm.program import ArmProgram
from .origin import Origin, origins_of

#: Mnemonics that touch memory even when modelled without an AMem operand.
_MEM_MNEMONICS = {"ldxr", "stxr", "ldar", "stlr"}


def is_memory_access(instr: AInstr) -> bool:
    """True when the Arm instruction reads or writes memory."""
    if instr.mnemonic in _MEM_MNEMONICS:
        return True
    return any(isinstance(op, AMem) for op in instr.operands)


@dataclass
class SourceMapEntry:
    function: str
    index: int                      # position in the function's item stream
    instr: AInstr
    origins: tuple[Origin, ...]
    lir: str = ""                   # short originating-LIR description

    @property
    def resolved(self) -> bool:
        return bool(self.origins)

    @property
    def is_fence(self) -> bool:
        return is_fence(self.instr)

    @property
    def is_memory(self) -> bool:
        return is_memory_access(self.instr)

    def to_dict(self) -> dict:
        return {
            "function": self.function,
            "index": self.index,
            "arm": str(self.instr),
            "lir": self.lir,
            "origins": [o.to_dict() for o in self.origins],
        }


@dataclass
class CoverageReport:
    total: int = 0
    resolved: int = 0
    mem_total: int = 0
    mem_resolved: int = 0
    fence_total: int = 0
    fence_resolved: int = 0

    @staticmethod
    def _pct(num: int, den: int) -> float:
        return 100.0 if den == 0 else 100.0 * num / den

    @property
    def instruction_pct(self) -> float:
        return self._pct(self.resolved, self.total)

    @property
    def memory_pct(self) -> float:
        return self._pct(self.mem_resolved, self.mem_total)

    @property
    def fence_pct(self) -> float:
        return self._pct(self.fence_resolved, self.fence_total)

    def to_dict(self) -> dict:
        return {
            "instructions": {"total": self.total, "resolved": self.resolved,
                             "pct": round(self.instruction_pct, 2)},
            "memory": {"total": self.mem_total, "resolved": self.mem_resolved,
                       "pct": round(self.memory_pct, 2)},
            "fences": {"total": self.fence_total,
                       "resolved": self.fence_resolved,
                       "pct": round(self.fence_pct, 2)},
        }


@dataclass
class SourceMap:
    entries: list[SourceMapEntry] = field(default_factory=list)

    @classmethod
    def from_program(cls, program: ArmProgram) -> "SourceMap":
        sm = cls()
        for func in program.functions.values():
            for index, item in enumerate(func.items):
                if not isinstance(item, AInstr):
                    continue
                sm.entries.append(SourceMapEntry(
                    function=func.name,
                    index=index,
                    instr=item,
                    origins=origins_of(item),
                    lir=getattr(item, "lir", ""),
                ))
        return sm

    # ---- queries -------------------------------------------------------
    def for_function(self, name: str) -> list[SourceMapEntry]:
        return [e for e in self.entries if e.function == name]

    def fences(self) -> list[SourceMapEntry]:
        return [e for e in self.entries if e.is_fence]

    def memory_accesses(self) -> list[SourceMapEntry]:
        return [e for e in self.entries if e.is_memory]

    def by_address(self) -> dict[int, list[SourceMapEntry]]:
        """Index entries by every x86 address they blame."""
        table: dict[int, list[SourceMapEntry]] = {}
        for e in self.entries:
            for o in e.origins:
                table.setdefault(o.addr, []).append(e)
        return table

    def unresolved(self) -> list[SourceMapEntry]:
        return [e for e in self.entries if not e.resolved]

    # ---- coverage ------------------------------------------------------
    def coverage(self) -> CoverageReport:
        cov = CoverageReport()
        for e in self.entries:
            cov.total += 1
            cov.resolved += e.resolved
            if e.is_memory:
                cov.mem_total += 1
                cov.mem_resolved += e.resolved
            if e.is_fence:
                cov.fence_total += 1
                cov.fence_resolved += e.resolved
        return cov
