"""``repro.profiler`` — hot-path attribution, memory accounting, and
the perf-regression gate.

Built on top of :mod:`repro.telemetry` (which answers *how long did
each span take*), this package answers three sharper questions:

* **Where did the time go?**  :mod:`~repro.profiler.sampler` — a
  stdlib-only thread-sampling profiler with collapsed-stack/flamegraph
  output and per-pipeline-stage attribution; driven by
  ``repro profile``.
* **How much work was that, exactly?**
  :mod:`~repro.profiler.workcounters` — deterministic counters
  (instructions visited, fixpoint steps, constraint rounds, cycle-search
  expansions) woven through the pass manager, the analyses, fence
  placement, codegen and the loader.  Bit-identical across runs and
  machines; the hard currency of the regression gate.
* **Did this commit make it worse?**
  :mod:`~repro.profiler.regression` — ``repro bench --compare`` against
  the median of the last N clean ``BENCH_translate.json`` trajectory
  entries with MAD-widened wall-time thresholds, exit code 3 on
  regression.

Plus :mod:`~repro.profiler.memory` (tracemalloc per-stage peaks into
the span tree and bench rows) and :mod:`~repro.profiler.ledger` (the
append-only ``.repro/ledger.jsonl`` record of every run).

See docs/observability.md for the work-counter taxonomy and a worked
regression-gate walkthrough.
"""

from .attribution import (
    AttributionReport,
    hot_cells,
    render_report,
    report_to_dict,
)
from .ledger import (
    LEDGER_SCHEMA,
    append_entry,
    config_digest,
    gc_ledger,
    ledger_path,
    read_ledger,
    rotated_path,
)
from .memory import MemoryAccountant, StageMemory, account, accounting
from .regression import (
    EXIT_REGRESSION,
    Finding,
    RegressionReport,
    check_regression,
    eligible_entries,
)
from .sampler import (
    KNOWN_STAGES,
    Profile,
    SamplingProfiler,
    stage_of,
    write_flamegraph,
)
from .workcounters import WorkCounters, collect, counting, scope, work

__all__ = [
    "AttributionReport", "EXIT_REGRESSION", "Finding", "KNOWN_STAGES",
    "LEDGER_SCHEMA", "MemoryAccountant", "Profile", "RegressionReport",
    "SamplingProfiler", "StageMemory", "WorkCounters", "account",
    "accounting", "append_entry", "check_regression", "collect",
    "config_digest", "counting", "eligible_entries", "gc_ledger",
    "hot_cells", "ledger_path", "read_ledger", "render_report",
    "report_to_dict", "rotated_path", "scope", "stage_of", "work",
    "write_flamegraph",
]
