"""Noise-aware perf-regression gate over the bench trajectory.

``BENCH_translate.json`` accumulates one trajectory entry per run (git
SHA, timestamp, per-config summary).  :func:`check_regression` compares
a freshly-run summary against the *median of the last N clean entries*
(dirty working trees are excluded — their numbers describe code that is
not any commit) and flags:

* **wall-time regressions** — ``translate_seconds_total`` above the
  baseline median by more than ``max(threshold, 3·MAD/median)``.  The
  MAD term widens the gate on configs whose history is noisy, so a
  jittery runner cannot fail the build; the threshold is the floor.
* **work-counter blowups** — any deterministic counter more than
  ``work_threshold``× its baseline median *while input sizes are
  stable* (Arm/LIR instruction totals within ``size_tolerance``).
  Work counters are exactly reproducible, so this gate has no noise
  term: a blowup is an algorithmic change, full stop.  If the input
  sizes moved, the counters legitimately moved with them, and the gate
  records a note instead of a finding.

``repro bench --compare`` exits with code 3 (:data:`EXIT_REGRESSION`)
when any finding survives; CI turns that into a failed perf-gate job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: Exit code of ``repro bench --compare`` on a confirmed regression.
EXIT_REGRESSION = 3

DEFAULT_WINDOW = 5
DEFAULT_TIME_THRESHOLD = 0.15   # 15% over baseline median
DEFAULT_WORK_THRESHOLD = 2.0    # 2x blowup of any deterministic counter
DEFAULT_SIZE_TOLERANCE = 0.05   # inputs "stable" within 5%

#: Summary fields that gauge input size for the work gate.
_SIZE_FIELDS = ("arm_instructions_total", "fences_total")


def _median(xs: list[float]) -> float:
    ys = sorted(xs)
    n = len(ys)
    mid = n // 2
    return ys[mid] if n % 2 else (ys[mid - 1] + ys[mid]) / 2.0


def _mad(xs: list[float], med: Optional[float] = None) -> float:
    """Median absolute deviation — the robust noise estimate."""
    if not xs:
        return 0.0
    med = _median(xs) if med is None else med
    return _median([abs(x - med) for x in xs])


@dataclass
class Finding:
    """One confirmed regression."""

    config: str
    metric: str
    kind: str                 # "time" | "work"
    baseline: float
    current: float
    threshold: float          # the effective gate that was exceeded

    @property
    def ratio(self) -> float:
        return self.current / self.baseline if self.baseline else float("inf")

    def format(self) -> str:
        return (f"{self.config}/{self.metric}: {self.current:g} vs "
                f"baseline median {self.baseline:g} "
                f"({self.ratio:.2f}x, gate {self.threshold:.2f}x) [{self.kind}]")


@dataclass
class RegressionReport:
    ok: bool = True
    findings: list[Finding] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    baseline_shas: list[str] = field(default_factory=list)
    #: config -> {counter: (baseline_median, current)} for counters that
    #: differ; empty everywhere means deterministic attribution held.
    work_deltas: dict[str, dict[str, tuple[float, float]]] = \
        field(default_factory=dict)

    @property
    def work_identical(self) -> bool:
        return not any(self.work_deltas.values())

    def format(self) -> str:
        lines = []
        base = ", ".join(self.baseline_shas) or "(none)"
        lines.append(f"perf gate: baseline = median of [{base}]")
        for note in self.notes:
            lines.append(f"  note: {note}")
        if self.work_identical and self.baseline_shas:
            lines.append("  work counters: identical to baseline "
                         "(zero deltas — deterministic attribution)")
        else:
            for config, deltas in sorted(self.work_deltas.items()):
                for counter, (b, c) in sorted(deltas.items()):
                    lines.append(f"  work delta {config}/{counter}: "
                                 f"{b:g} -> {c:g}")
        if self.findings:
            lines.append(f"  {len(self.findings)} regression(s):")
            for f in self.findings:
                lines.append(f"    REGRESSION {f.format()}")
        else:
            lines.append("  no regressions")
        return "\n".join(lines)


def eligible_entries(trajectory: list[dict], size: str,
                     ref: Optional[str] = None,
                     window: int = DEFAULT_WINDOW,
                     notes: Optional[list[str]] = None) -> list[dict]:
    """The baseline entries: same bench size, clean working tree, newest
    ``window`` of them — or, with ``ref``, the entries whose SHA starts
    with it (compare against one specific commit)."""
    clean = [e for e in trajectory
             if isinstance(e, dict) and e.get("size") == size
             and not e.get("dirty")]
    skipped_dirty = sum(1 for e in trajectory
                        if isinstance(e, dict) and e.get("size") == size
                        and e.get("dirty"))
    if notes is not None and skipped_dirty:
        notes.append(f"{skipped_dirty} dirty-tree entr"
                     f"{'y' if skipped_dirty == 1 else 'ies'} ignored")
    if ref:
        matched = [e for e in clean
                   if str(e.get("sha", "")).startswith(ref)]
        if notes is not None and not matched:
            notes.append(f"no clean trajectory entry matches ref {ref!r}")
        return matched[-window:]
    return clean[-window:]


def _config_rows(entries: list[dict], config: str) -> list[dict]:
    rows = []
    for e in entries:
        row = e.get("summary", {}).get(config)
        if isinstance(row, dict):
            rows.append(row)
    return rows


def _sizes_stable(rows: list[dict], current: dict,
                  tolerance: float) -> bool:
    for field_name in _SIZE_FIELDS:
        baseline = [r[field_name] for r in rows if field_name in r]
        if not baseline or field_name not in current:
            continue
        med = _median([float(b) for b in baseline])
        cur = float(current[field_name])
        if med == 0:
            if cur != 0:
                return False
            continue
        if abs(cur - med) / med > tolerance:
            return False
    return True


def check_regression(summary: dict, trajectory: list[dict], *,
                     size: str = "tiny",
                     ref: Optional[str] = None,
                     window: int = DEFAULT_WINDOW,
                     time_threshold: float = DEFAULT_TIME_THRESHOLD,
                     work_threshold: float = DEFAULT_WORK_THRESHOLD,
                     size_tolerance: float = DEFAULT_SIZE_TOLERANCE
                     ) -> RegressionReport:
    """Compare ``summary`` (the current run) against the trajectory.

    Returns a report whose ``ok`` is False exactly when the caller
    should exit with :data:`EXIT_REGRESSION`.
    """
    report = RegressionReport()
    entries = eligible_entries(trajectory, size, ref, window, report.notes)
    if not entries:
        report.notes.append(
            "no eligible baseline entries in the trajectory; "
            "nothing to gate against")
        return report
    report.baseline_shas = [str(e.get("sha", "?")) for e in entries]

    for config, current in sorted(summary.items()):
        if not isinstance(current, dict):
            continue
        rows = _config_rows(entries, config)
        if not rows:
            report.notes.append(f"{config}: absent from baseline; skipped")
            continue

        # ---- wall-time gate (noise-aware) --------------------------------
        time_field = ("translate_seconds_total"
                      if "translate_seconds_total" in current
                      else "ingest_seconds_total"
                      if "ingest_seconds_total" in current else None)
        if time_field is not None:
            baseline = [float(r[time_field]) for r in rows
                        if time_field in r]
            if baseline:
                med = _median(baseline)
                mad = _mad(baseline, med)
                rel_noise = (3.0 * mad / med) if med > 0 else 0.0
                gate = 1.0 + max(time_threshold, rel_noise)
                cur = float(current[time_field])
                if med > 0 and cur > med * gate:
                    report.findings.append(Finding(
                        config, time_field, "time", med, cur, gate))

        # ---- deterministic work gate -------------------------------------
        cur_work = current.get("work")
        base_work_rows = [r["work"] for r in rows
                          if isinstance(r.get("work"), dict)]
        if not isinstance(cur_work, dict) or not base_work_rows:
            if isinstance(cur_work, dict) and not base_work_rows:
                report.notes.append(
                    f"{config}: baseline entries predate work counters "
                    "(schema < 6); work gate skipped")
            continue
        stable = _sizes_stable(rows, current, size_tolerance)
        if not stable:
            report.notes.append(
                f"{config}: input sizes moved beyond "
                f"{size_tolerance:.0%}; work gate skipped "
                "(counters scale with input)")
        deltas: dict[str, tuple[float, float]] = {}
        for counter, cur_n in sorted(cur_work.items()):
            baseline = [float(w[counter]) for w in base_work_rows
                        if counter in w]
            if not baseline:
                continue
            med = _median(baseline)
            if float(cur_n) != med:
                deltas[counter] = (med, float(cur_n))
            if stable and med > 0 and float(cur_n) > med * work_threshold:
                report.findings.append(Finding(
                    config, counter, "work", med, float(cur_n),
                    work_threshold))
        if deltas:
            report.work_deltas[config] = deltas

    report.ok = not report.findings
    return report
