"""Attribution report: samples × work counters × memory, in one place.

``repro profile`` drives one translation repeatedly under the sampling
profiler, the deterministic work-counter collector and the memory
accountant, then renders the three views side by side:

* **stage shares** — the fraction of wall-clock samples per pipeline
  stage (noisy, but honest about time),
* **work matrices** — the per-pass × per-function deterministic cost
  matrix ("gvn spent 38% of its opt.visits in ``@main``"),
* **memory** — tracemalloc peak/delta per stage.

:func:`render_report` is the human view; :func:`report_to_dict` feeds
``--json`` and the run ledger.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .memory import MemoryAccountant
from .sampler import Profile
from .workcounters import WorkCounters


@dataclass
class AttributionReport:
    """Everything one ``repro profile`` run learned."""

    source: str
    config: str
    builds: int
    profile: Profile
    counters: WorkCounters
    memory: Optional[MemoryAccountant] = None


def _pct(n: float, total: float) -> str:
    return f"{100.0 * n / total:5.1f}%" if total else "    -"


def hot_cells(counters: WorkCounters, counter: str,
              k: int = 5) -> list[tuple[str, str, int, float]]:
    """Top-k (stage, function, count, share) cells of one work matrix."""
    matrix = counters.matrix(counter)
    total = sum(sum(row.values()) for row in matrix.values())
    cells = [(stage, fn, n) for stage, row in matrix.items()
             for fn, n in row.items()]
    cells.sort(key=lambda c: (-c[2], c[0], c[1]))
    return [(stage, fn, n, (n / total if total else 0.0))
            for stage, fn, n in cells[:k]]


def render_report(report: AttributionReport, top: int = 10) -> str:
    lines: list[str] = []
    prof = report.profile
    lines.append(
        f"== repro profile: {report.source} ({report.config}) ==")
    lines.append(
        f"{report.builds} build(s), {prof.total} samples at "
        f"{prof.hz:g} Hz over {prof.duration:.2f}s "
        f"({prof.known_stage_pct():.1f}% attributed to known stages)")

    shares = prof.stage_shares()
    if shares:
        lines.append("")
        lines.append("-- stage attribution (wall-clock samples) --")
        for stage, share in sorted(shares.items(),
                                   key=lambda kv: -kv[1]):
            lines.append(f"  {stage:<12} {_pct(share, 1.0)}")

    frames = prof.top_frames(top)
    if frames:
        lines.append("")
        lines.append(f"-- top {len(frames)} frames (self samples) --")
        for frame, n, pct in frames:
            lines.append(f"  {frame:<52} {n:>6}  {pct:5.1f}%")

    by_counter = report.counters.by_counter()
    if by_counter:
        lines.append("")
        lines.append("-- deterministic work counters (per build) --")
        builds = max(1, report.builds)
        for counter, total in by_counter.items():
            lines.append(f"  {counter:<28} {total // builds:>12}")
        lines.append(f"  digest: {report.counters.digest()[:16]}… "
                     "(reproducible across machines)")
        for counter in ("opt.visits", "dataflow.steps",
                        "pointsto.transfers", "codegen.instructions"):
            cells = hot_cells(report.counters, counter, k=3)
            if not cells:
                continue
            lines.append(f"  hottest {counter}:")
            for stage, fn, n, share in cells:
                lines.append(
                    f"    {stage:<14} {fn:<24} {n:>10}  {_pct(share, 1.0)}")

    if report.memory is not None and report.memory.stages:
        lines.append("")
        lines.append("-- memory (tracemalloc peak / net delta per stage) --")
        for name, row in sorted(report.memory.to_dict().items()):
            lines.append(
                f"  {name:<12} peak {row['peak_bytes'] / 1e6:8.2f} MB   "
                f"delta {row['delta_bytes'] / 1e6:+8.2f} MB   "
                f"({row['calls']} call(s))")
    return "\n".join(lines)


def report_to_dict(report: AttributionReport, top: int = 10) -> dict:
    """JSON artifact of one profile run.

    Since the warehouse ingests these, each artifact is self-describing:
    it carries the git SHA + dirty flag of the code that produced it and
    the full collapsed-stack profile (for flamegraph diffs), not just
    the top-frame summary.
    """
    from ..telemetry.bench import git_dirty, git_sha

    out = {
        "source": report.source,
        "config": report.config,
        "builds": report.builds,
        "sha": git_sha(),
        "dirty": git_dirty(),
        "profile": report.profile.to_dict(top),
        "collapsed": report.profile.collapsed(),
        "work": report.counters.to_dict(),
    }
    if report.memory is not None:
        out["memory"] = report.memory.to_dict()
    return out
