"""Deterministic work counters: exactly-reproducible cost attribution.

Wall time is noisy — two runs of the same translation on the same
machine differ, and two machines differ wildly.  But our pipeline is
deterministic, so the *work* it performs is not: the number of
instructions a pass visits, the number of worklist pops a dataflow
fixpoint takes, the number of constraint-propagation rounds the
points-to solver needs, the number of cycle-search expansions the
delay-set analysis spends.  Counting those gives a cost attribution
that is bit-identical across repeats and across machines, which is what
lets the bench regression gate treat *any* work-counter blowup as a
real algorithmic change rather than scheduler noise (see
:mod:`repro.profiler.regression`).

The design mirrors :mod:`repro.telemetry`: a process-global collector
installed for a dynamic extent, hooks that cost one module-global read
when collection is off, and thread-local attribution scopes::

    from repro.profiler import workcounters as wc

    with wc.collect() as counters:
        built = Lasagne().build(source, "ppopt")
    counters.by_counter()       # {"opt.visits": 104923, ...}
    counters.matrix("opt.visits")  # stage -> function -> count
    counters.digest()           # sha256 over the sorted tallies

Instrumented sites call :func:`work` (optionally with an explicit
``function=``); the pipeline and the pass manager bracket stages with
:func:`scope` so a counter bumped deep inside the points-to solver is
attributed to the stage (``place``) and pass that triggered it.  Every
tally is an order-independent sum, so the digest is reproducible even
though some analyses iterate Python sets internally.
"""

from __future__ import annotations

import hashlib
import threading
from contextlib import contextmanager
from typing import Iterator, Optional

#: Attribution key: (stage, counter, function).  Stage and function are
#: "" when no scope was active (e.g. a bare library call from a test).
Key = tuple[str, str, str]


class WorkCounters:
    """Per (stage, counter, function) deterministic work tallies."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counts: dict[Key, int] = {}

    # ---- recording -------------------------------------------------------
    def add(self, stage: str, counter: str, function: str, n: int) -> None:
        key = (stage, counter, function)
        with self._lock:
            self.counts[key] = self.counts.get(key, 0) + n

    # ---- queries ---------------------------------------------------------
    def total(self, counter: Optional[str] = None) -> int:
        """Sum over every key, optionally restricted to one counter."""
        with self._lock:
            return sum(v for (_, c, _), v in self.counts.items()
                       if counter is None or c == counter)

    def by_counter(self) -> dict[str, int]:
        """Counter name -> total, summed over stages and functions."""
        out: dict[str, int] = {}
        with self._lock:
            for (_, counter, _), v in self.counts.items():
                out[counter] = out.get(counter, 0) + v
        return dict(sorted(out.items()))

    def by_stage(self) -> dict[str, dict[str, int]]:
        """Stage -> counter -> total (the per-pass cost breakdown)."""
        out: dict[str, dict[str, int]] = {}
        with self._lock:
            items = list(self.counts.items())
        for (stage, counter, _), v in items:
            row = out.setdefault(stage or "(unscoped)", {})
            row[counter] = row.get(counter, 0) + v
        return {s: dict(sorted(row.items())) for s, row in sorted(out.items())}

    def matrix(self, counter: str) -> dict[str, dict[str, int]]:
        """Stage -> function -> count for one counter: the per-pass ×
        per-function cost matrix ("GVN spent 38% of its visits in
        ``@main``")."""
        out: dict[str, dict[str, int]] = {}
        with self._lock:
            items = list(self.counts.items())
        for (stage, c, function), v in items:
            if c != counter:
                continue
            row = out.setdefault(stage or "(unscoped)", {})
            fn = function or "(module)"
            row[fn] = row.get(fn, 0) + v
        return {s: dict(sorted(row.items())) for s, row in sorted(out.items())}

    def cells(self) -> list[tuple[str, str, str, int]]:
        """Sorted (stage, counter, function, count) cells — the full
        attribution matrix, the unit the warehouse stores and diffs."""
        with self._lock:
            return sorted((s, c, f, v)
                          for (s, c, f), v in self.counts.items())

    def digest(self) -> str:
        """sha256 over the sorted (stage, counter, function, count) items.

        Two runs of the same translation produce the same digest; any
        divergence is an algorithmic change, not noise.
        """
        h = hashlib.sha256()
        with self._lock:
            items = sorted(self.counts.items())
        for (stage, counter, function), v in items:
            h.update(f"{stage}\x00{counter}\x00{function}\x00{v}\n".encode())
        return h.hexdigest()

    def to_dict(self) -> dict:
        """JSON-serializable snapshot: totals, per-stage split, the full
        cell matrix, digest."""
        return {
            "counters": self.by_counter(),
            "by_stage": self.by_stage(),
            "cells": [list(cell) for cell in self.cells()],
            "digest": self.digest(),
        }

    def merge(self, other: "WorkCounters") -> None:
        with other._lock:
            items = list(other.counts.items())
        for key, v in items:
            self.add(*key, v)


# ---- process-global collector + thread-local scopes ------------------------

_current: Optional[WorkCounters] = None
_install_lock = threading.Lock()
_scopes = threading.local()


def current() -> Optional[WorkCounters]:
    return _current


def counting() -> bool:
    """Hoist this check before computing an expensive tally."""
    return _current is not None


@contextmanager
def collect() -> Iterator[WorkCounters]:
    """Install a fresh collector for the extent of the block (nestable:
    the previous collector is restored on exit)."""
    wc = WorkCounters()
    global _current
    with _install_lock:
        previous, _current = _current, wc
    try:
        yield wc
    finally:
        with _install_lock:
            _current = previous


def _stack(name: str) -> list[str]:
    stack = getattr(_scopes, name, None)
    if stack is None:
        stack = []
        setattr(_scopes, name, stack)
    return stack


@contextmanager
def scope(stage: Optional[str] = None,
          function: Optional[str] = None) -> Iterator[None]:
    """Attribute :func:`work` calls in the block to ``stage`` and/or
    ``function``.  Scopes nest; the innermost value wins."""
    stages = _stack("stage") if stage is not None else None
    functions = _stack("function") if function is not None else None
    if stages is not None:
        stages.append(stage)
    if functions is not None:
        functions.append(function)
    try:
        yield
    finally:
        if stages is not None:
            stages.pop()
        if functions is not None:
            functions.pop()


def work(counter: str, n: int = 1, function: Optional[str] = None) -> None:
    """Record ``n`` units of deterministic work.

    Free when no collector is installed (one global read).  Attribution
    comes from the enclosing :func:`scope`; an explicit ``function=``
    overrides the scoped one.
    """
    wc = _current
    if wc is None or n == 0:
        return
    stages = getattr(_scopes, "stage", None)
    stage = stages[-1] if stages else ""
    if function is None:
        functions = getattr(_scopes, "function", None)
        function = functions[-1] if functions else ""
    wc.add(stage, counter, function, n)
