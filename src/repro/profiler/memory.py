"""Per-stage memory accounting on top of :mod:`tracemalloc`.

When an accountant is installed (:func:`accounting`), every pipeline
stage bracketed by :func:`account` records the tracemalloc *peak* during
the stage and the net allocation *delta* across it.  The pipeline
annotates its stage spans with the numbers (``mem_peak_bytes`` /
``mem_delta_bytes``), so a Chrome trace or ``repro stats`` tree shows
memory next to time, and ``repro bench`` records the whole-translation
peak as ``peak_rss_bytes`` in every schema-v6 row.

Off by default: without an installed accountant (or with tracemalloc
not tracing) :func:`account` is a no-op context manager, so the normal
translation path never pays the ~2x tracemalloc tax.

Nesting caveat (documented, deliberate): :func:`account` resets the
tracemalloc peak on entry, so a *nested* accounted region truncates its
parent's peak window.  The pipeline only accounts non-overlapping
stage-level regions, where this cannot happen.
"""

from __future__ import annotations

import threading
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional


@dataclass
class StageMemory:
    """Accounting record for one named region (accumulated over calls)."""

    name: str
    peak_bytes: int = 0       # max tracemalloc peak seen in any call
    delta_bytes: int = 0      # summed net allocation across calls
    calls: int = 0


@dataclass
class MemoryAccountant:
    """Collects :class:`StageMemory` rows for the extent of a session."""

    stages: dict[str, StageMemory] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False)

    def record(self, name: str, peak: int, delta: int) -> StageMemory:
        with self._lock:
            row = self.stages.get(name)
            if row is None:
                row = self.stages[name] = StageMemory(name)
            row.peak_bytes = max(row.peak_bytes, peak)
            row.delta_bytes += delta
            row.calls += 1
            return row

    def peak_bytes(self) -> int:
        """Largest stage peak seen (a lower bound on process peak)."""
        with self._lock:
            return max((r.peak_bytes for r in self.stages.values()),
                       default=0)

    def to_dict(self) -> dict:
        with self._lock:
            return {
                name: {"peak_bytes": row.peak_bytes,
                       "delta_bytes": row.delta_bytes,
                       "calls": row.calls}
                for name, row in sorted(self.stages.items())
            }


_current: Optional[MemoryAccountant] = None
_install_lock = threading.Lock()


def current() -> Optional[MemoryAccountant]:
    return _current


@contextmanager
def accounting() -> Iterator[MemoryAccountant]:
    """Install an accountant and make sure tracemalloc is tracing.

    If this call started tracemalloc, it also stops it on exit; an
    already-tracing process (e.g. under ``python -X tracemalloc``) is
    left tracing.
    """
    started_here = not tracemalloc.is_tracing()
    if started_here:
        tracemalloc.start()
    acct = MemoryAccountant()
    global _current
    with _install_lock:
        previous, _current = _current, acct
    try:
        yield acct
    finally:
        with _install_lock:
            _current = previous
        if started_here:
            tracemalloc.stop()


@contextmanager
def account(name: str) -> Iterator[Optional[StageMemory]]:
    """Record peak/delta for the block under ``name``.

    Yields the (live) :class:`StageMemory` row so callers can annotate
    spans, or ``None`` when accounting is off.
    """
    acct = _current
    if acct is None or not tracemalloc.is_tracing():
        yield None
        return
    before, _ = tracemalloc.get_traced_memory()
    tracemalloc.reset_peak()
    row: Optional[StageMemory] = None
    try:
        # The row is recorded in ``finally`` (after the block ran), but a
        # mutable placeholder is yielded first so callers can hold it.
        placeholder = StageMemory(name)
        yield placeholder
    finally:
        after, peak = tracemalloc.get_traced_memory()
        row = acct.record(name, peak, after - before)
        placeholder.peak_bytes = row.peak_bytes
        placeholder.delta_bytes = after - before
        placeholder.calls = row.calls


def measure_peak(fn, *args, **kwargs) -> tuple[object, int]:
    """Run ``fn`` under tracemalloc and return ``(result, peak_bytes)``.

    Used by the bench's instrumented extra run; starts/stops tracemalloc
    only if it was not already tracing.
    """
    started_here = not tracemalloc.is_tracing()
    if started_here:
        tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        result = fn(*args, **kwargs)
        _, peak = tracemalloc.get_traced_memory()
        return result, peak
    finally:
        if started_here:
            tracemalloc.stop()
