"""Stdlib-only sampling profiler: where did the wall time actually go.

A background daemon thread wakes every ``1/hz`` seconds, grabs the
target thread's frame via :func:`sys._current_frames`, and folds the
stack into a counter of ``(module:function, ...)`` tuples.  No signals
(so it works on every platform and inside worker threads), no C
extension, no third-party deps.

Frames inside the ``repro`` package render as dotted module paths
(``opt.gvn:run_gvn``); foreign frames keep their file stem.  The
aggregate :class:`Profile` exports:

* ``collapsed()`` — Brendan-Gregg collapsed-stack lines
  (``a;b;c 42``), directly consumable by ``flamegraph.pl`` or
  https://www.speedscope.app,
* ``stage_shares()`` — fraction of samples attributed to each known
  pipeline stage (the acceptance bar: >= 95% of samples land in one),
* ``top_frames(k)`` — self-time leaders, the "top-10 frames" summarized
  into bench rows,
* ``to_dict()`` — JSON for ``repro profile --json``.

Sampling is the *noisy* leg of the profiler; the deterministic leg is
:mod:`repro.profiler.workcounters`.  Use samples to find hot code, use
work counters to gate regressions.
"""

from __future__ import annotations

import sys
import threading
from collections import Counter
from time import perf_counter
from typing import Optional

#: Maximum stack depth folded per sample (deeper frames are dropped
#: outermost-first; the hot leaves are what matter).
MAX_DEPTH = 64

#: repro subpackage -> pipeline-stage label, the sample-side twin of the
#: span categories in docs/observability.md.
PACKAGE_STAGES = {
    "lifter": "lift",
    "refine": "refine",
    "fences": "place",
    "analysis": "analysis",
    "opt": "opt",
    "codegen": "codegen",
    "loader": "loader",
    "minicc": "frontend",
    "lir": "ir",
    "x86": "x86",
    "arm": "arm",
    "provenance": "provenance",
    "memmodel": "memmodel",
    "core": "pipeline",
    "validate": "validate",
    "phoenix": "evaluate",
    "telemetry": "telemetry",
    "profiler": "profiler",
}

#: Stage labels the acceptance gate counts as "known".
KNOWN_STAGES = frozenset(PACKAGE_STAGES.values())


def _module_label(filename: str) -> str:
    """``.../src/repro/opt/gvn.py`` -> ``repro.opt.gvn``; foreign files
    keep their stem (``json`` for ``.../json/__init__.py``)."""
    norm = filename.replace("\\", "/")
    marker = "/repro/"
    idx = norm.rfind(marker)
    if idx >= 0:
        rel = norm[idx + len(marker):]
        if rel.endswith(".py"):
            rel = rel[:-3]
        if rel.endswith("/__init__"):
            rel = rel[: -len("/__init__")]
        return "repro." + rel.replace("/", ".") if rel else "repro"
    stem = norm.rsplit("/", 1)[-1]
    if stem.endswith(".py"):
        stem = stem[:-3]
    if stem == "__init__":
        parts = norm.rsplit("/", 3)
        stem = parts[-2] if len(parts) >= 2 else stem
    return stem


def extract_stack(frame) -> tuple[str, ...]:
    """Fold a live frame into ``module:function`` labels, outermost
    first (the collapsed-stack orientation)."""
    labels: list[str] = []
    while frame is not None and len(labels) < MAX_DEPTH:
        code = frame.f_code
        labels.append(f"{_module_label(code.co_filename)}:{code.co_name}")
        frame = frame.f_back
    return tuple(reversed(labels))


def stage_of(stack: tuple[str, ...]) -> str:
    """Pipeline stage of one sample: the innermost ``repro.*`` frame's
    subpackage, mapped through :data:`PACKAGE_STAGES`; ``other`` when no
    repro frame is on the stack."""
    for label in reversed(stack):
        module = label.split(":", 1)[0]
        if module == "repro":
            return "pipeline"
        if module.startswith("repro."):
            sub = module.split(".")[1]
            return PACKAGE_STAGES.get(sub, sub)
    return "other"


class Profile:
    """Aggregated samples from one profiling run."""

    def __init__(self, hz: float) -> None:
        self.hz = hz
        self.samples: Counter[tuple[str, ...]] = Counter()
        self.total = 0
        self.missed = 0          # wakeups where the target had no frame
        self.duration = 0.0

    # ---- exporters -------------------------------------------------------
    def collapsed(self) -> str:
        """Collapsed-stack lines, one per distinct stack, sorted for
        reproducible diffs."""
        lines = [f"{';'.join(stack)} {n}"
                 for stack, n in sorted(self.samples.items())]
        return "\n".join(lines) + ("\n" if lines else "")

    def stage_shares(self) -> dict[str, float]:
        """Stage -> fraction of samples (sums to 1.0 when total > 0)."""
        if not self.total:
            return {}
        counts: dict[str, int] = {}
        for stack, n in self.samples.items():
            stage = stage_of(stack)
            counts[stage] = counts.get(stage, 0) + n
        return {s: counts[s] / self.total for s in sorted(counts)}

    def known_stage_pct(self) -> float:
        """Percent of samples attributed to a known pipeline stage."""
        shares = self.stage_shares()
        return 100.0 * sum(v for s, v in shares.items()
                           if s in KNOWN_STAGES)

    def top_frames(self, k: int = 10) -> list[tuple[str, int, float]]:
        """Self-sample leaders: (innermost frame, samples, pct)."""
        self_counts: Counter[str] = Counter()
        for stack, n in self.samples.items():
            if stack:
                self_counts[stack[-1]] += n
        out = []
        for frame, n in self_counts.most_common(k):
            out.append((frame, n, 100.0 * n / self.total if self.total else 0.0))
        return out

    def to_dict(self, top: int = 10) -> dict:
        return {
            "hz": self.hz,
            "samples": self.total,
            "missed": self.missed,
            "duration_seconds": round(self.duration, 6),
            "stage_shares": {s: round(v, 4)
                             for s, v in self.stage_shares().items()},
            "known_stage_pct": round(self.known_stage_pct(), 2),
            "top_frames": [
                {"frame": f, "samples": n, "pct": round(pct, 2)}
                for f, n, pct in self.top_frames(top)
            ],
        }


class SamplingProfiler:
    """Samples one target thread from a background daemon thread.

    Usage::

        prof = SamplingProfiler(hz=211)
        with prof:                       # samples the *calling* thread
            expensive_translation()
        prof.profile.collapsed()
    """

    def __init__(self, hz: float = 211.0,
                 target_ident: Optional[int] = None) -> None:
        if hz <= 0:
            raise ValueError("sample rate must be positive")
        self.interval = 1.0 / hz
        self.profile = Profile(hz)
        self.target_ident = target_ident
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._start_time = 0.0

    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        if self.target_ident is None:
            self.target_ident = threading.get_ident()
        self._stop.clear()
        self._start_time = perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-sampler", daemon=True)
        self._thread.start()

    def stop(self) -> Profile:
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None
            self.profile.duration = perf_counter() - self._start_time
        return self.profile

    def _run(self) -> None:
        samples = self.profile.samples
        while not self._stop.wait(self.interval):
            frame = sys._current_frames().get(self.target_ident)
            if frame is None:
                self.profile.missed += 1
                continue
            stack = extract_stack(frame)
            del frame
            if not stack:
                self.profile.missed += 1
                continue
            samples[stack] += 1
            self.profile.total += 1

    def __enter__(self) -> "SamplingProfiler":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()


def sample_block(hz: float = 211.0) -> SamplingProfiler:
    """Convenience: ``with sample_block(499) as prof: ...``."""
    return SamplingProfiler(hz=hz)


def write_flamegraph(profile: Profile, path) -> None:
    """Write collapsed stacks to ``path`` (feed to flamegraph.pl or
    paste into speedscope)."""
    from pathlib import Path

    Path(path).write_text(profile.collapsed())


__all__ = [
    "KNOWN_STAGES", "MAX_DEPTH", "PACKAGE_STAGES", "Profile",
    "SamplingProfiler", "extract_stack", "sample_block", "stage_of",
    "write_flamegraph",
]
