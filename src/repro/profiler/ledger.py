"""Run ledger: one JSONL line per translator invocation.

Every ``repro translate`` / ``validate`` / ``bench`` / ``profile`` run
appends a single-line JSON record — UTC timestamp, git SHA + dirty
flag, the command, its configuration, the deterministic work-counter
digest and headline timings — to ``.repro/ledger.jsonl`` under the
current directory.

This is the observability substrate the translation-service work
(ROADMAP item 2) will account cache hits against: a content-addressed
cache needs to know exactly which (input, config, code-version) tuples
were translated when, and at what cost.  Until then it is simply an
append-only lab notebook of every run.

Ledger writes are best-effort: a read-only checkout or full disk must
never break a translation, so all OSErrors are swallowed and
:func:`append_entry` returns ``None`` instead of a path.
"""

from __future__ import annotations

import json
import os
from datetime import datetime, timezone
from pathlib import Path
from typing import Optional

LEDGER_DIR = ".repro"
LEDGER_NAME = "ledger.jsonl"

#: Set ``REPRO_LEDGER=0`` to disable ledger writes (e.g. in tests that
#: must not touch the working tree).
_DISABLE_ENV = "REPRO_LEDGER"


def ledger_path(root: Optional[os.PathLike] = None) -> Path:
    return Path(root or ".") / LEDGER_DIR / LEDGER_NAME


def append_entry(command: str, record: dict,
                 root: Optional[os.PathLike] = None) -> Optional[Path]:
    """Append one run record; returns the path, or None if disabled or
    the write failed."""
    if os.environ.get(_DISABLE_ENV, "") == "0":
        return None
    from ..telemetry.bench import git_dirty, git_sha

    entry = {
        "timestamp": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "sha": git_sha(),
        "dirty": git_dirty(),
        "command": command,
    }
    entry.update(record)
    path = ledger_path(root)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a") as fh:
            fh.write(json.dumps(entry, sort_keys=True,
                                separators=(",", ":")) + "\n")
    except OSError:
        return None
    return path


def read_ledger(root: Optional[os.PathLike] = None) -> list[dict]:
    """Parse every well-formed line of the ledger (bad lines skipped)."""
    path = ledger_path(root)
    try:
        text = path.read_text()
    except OSError:
        return []
    out = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(entry, dict):
            out.append(entry)
    return out
