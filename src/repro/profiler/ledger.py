"""Run ledger: one JSONL line per translator invocation.

Every ``repro translate`` / ``validate`` / ``bench`` / ``profile`` run
appends a single-line JSON record — UTC timestamp, git SHA + dirty
flag, the command, its configuration, the deterministic work-counter
digest and headline timings — to ``.repro/ledger.jsonl`` under the
current directory.

This is the observability substrate the translation-service work
(ROADMAP item 2) will account cache hits against: a content-addressed
cache needs to know exactly which (input, config, code-version) tuples
were translated when, and at what cost.  The warehouse
(:mod:`repro.warehouse`) ingests the ledger for cross-run queries.

Schema v2 hardening: every entry is stamped with ``schema`` (this
module's :data:`LEDGER_SCHEMA`), and a ``config_digest`` — sha256 over
the canonical JSON of the caller-supplied configuration dict — so two
entries with the same digest describe runs of the *same* (command,
configuration) cell and are directly comparable.  The file is also
size-capped: when an append would grow ``ledger.jsonl`` past
:data:`MAX_LEDGER_BYTES` (override with ``REPRO_LEDGER_MAX_BYTES``),
the current file rotates to ``ledger.jsonl.1`` (one generation kept)
and a fresh file starts.  ``repro ledger --gc`` drops the rotated
generation and truncates the live file to the newest entries.

Ledger writes are best-effort: a read-only checkout or full disk must
never break a translation, so all OSErrors are swallowed and
:func:`append_entry` returns ``None`` instead of a path.
"""

from __future__ import annotations

import hashlib
import json
import os
from datetime import datetime, timezone
from pathlib import Path
from typing import Optional

LEDGER_DIR = ".repro"
LEDGER_NAME = "ledger.jsonl"

#: Entry schema version stamped on every line (bump on layout changes).
LEDGER_SCHEMA = 2

#: Rotation threshold for ``ledger.jsonl`` (1 MiB by default).
MAX_LEDGER_BYTES = 1 << 20

#: Set ``REPRO_LEDGER=0`` to disable ledger writes (e.g. in tests that
#: must not touch the working tree).
_DISABLE_ENV = "REPRO_LEDGER"
_MAX_BYTES_ENV = "REPRO_LEDGER_MAX_BYTES"


def ledger_path(root: Optional[os.PathLike] = None) -> Path:
    return Path(root or ".") / LEDGER_DIR / LEDGER_NAME


def rotated_path(root: Optional[os.PathLike] = None) -> Path:
    """The single kept rotation generation (``ledger.jsonl.1``)."""
    path = ledger_path(root)
    return path.with_name(path.name + ".1")


def config_digest(config: Optional[dict]) -> str:
    """sha256 (truncated) over the canonical JSON of a config dict.

    Entries sharing a digest ran the same (command, configuration)
    cell; the warehouse groups comparable runs by it.
    """
    canonical = json.dumps(config or {}, sort_keys=True,
                           separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def _max_bytes() -> int:
    try:
        return int(os.environ.get(_MAX_BYTES_ENV, MAX_LEDGER_BYTES))
    except ValueError:
        return MAX_LEDGER_BYTES


def _rotate_if_needed(path: Path, incoming: int) -> None:
    """Rotate ``ledger.jsonl`` -> ``ledger.jsonl.1`` when the append
    would cross the size cap (one generation kept, older data dropped)."""
    cap = _max_bytes()
    if cap <= 0:
        return
    try:
        size = path.stat().st_size
    except OSError:
        return
    if size + incoming <= cap:
        return
    path.replace(path.with_name(path.name + ".1"))


def append_entry(command: str, record: dict,
                 root: Optional[os.PathLike] = None,
                 config: Optional[dict] = None) -> Optional[Path]:
    """Append one run record; returns the path, or None if disabled or
    the write failed.

    ``config`` is the command's configuration subset (source, config
    name, fence analysis, ...); its canonical digest is stamped on the
    entry so comparable runs are groupable.  When omitted, the digest
    covers the whole record (still deterministic, just coarser).
    """
    if os.environ.get(_DISABLE_ENV, "") == "0":
        return None
    from ..telemetry.bench import git_dirty, git_sha

    entry = {
        "timestamp": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "sha": git_sha(),
        "dirty": git_dirty(),
        "command": command,
        "schema": LEDGER_SCHEMA,
        "config_digest": config_digest(
            config if config is not None else record),
    }
    entry.update(record)
    line = json.dumps(entry, sort_keys=True, separators=(",", ":")) + "\n"
    path = ledger_path(root)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        _rotate_if_needed(path, len(line))
        with path.open("a") as fh:
            fh.write(line)
    except OSError:
        return None
    return path


def _read_lines(path: Path) -> list[dict]:
    try:
        text = path.read_text()
    except OSError:
        return []
    out = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(entry, dict):
            out.append(entry)
    return out


def read_ledger(root: Optional[os.PathLike] = None) -> list[dict]:
    """Parse every well-formed ledger line, oldest first, across the
    rotated generation and the live file (bad lines skipped)."""
    return _read_lines(rotated_path(root)) + _read_lines(ledger_path(root))


def gc_ledger(root: Optional[os.PathLike] = None,
              keep: int = 500) -> dict:
    """``repro ledger --gc``: drop the rotated generation and truncate
    the live file to the newest ``keep`` entries.

    Returns a summary dict (entries before/after, bytes reclaimed).
    """
    path = ledger_path(root)
    rotated = rotated_path(root)
    before_entries = len(read_ledger(root))
    before_bytes = 0
    for p in (path, rotated):
        try:
            before_bytes += p.stat().st_size
        except OSError:
            pass
    live = _read_lines(path)
    kept = live[-keep:] if keep >= 0 else live
    try:
        rotated.unlink(missing_ok=True)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("".join(
            json.dumps(e, sort_keys=True, separators=(",", ":")) + "\n"
            for e in kept))
    except OSError:
        pass
    after_bytes = 0
    try:
        after_bytes = path.stat().st_size
    except OSError:
        pass
    return {
        "entries_before": before_entries,
        "entries_after": len(kept),
        "bytes_before": before_bytes,
        "bytes_after": after_bytes,
        "bytes_reclaimed": max(0, before_bytes - after_bytes),
    }
