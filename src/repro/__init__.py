"""Reproduction of "Lasagne: A Static Binary Translator for Weak Memory
Model Architectures" (PLDI 2022).

Top-level convenience re-exports; see README.md for the architecture map.
"""

__version__ = "0.1.0"

from .core import CONFIGS, Lasagne, RunResult, TranslationResult

__all__ = ["CONFIGS", "Lasagne", "RunResult", "TranslationResult",
           "__version__"]
