"""LIR verifier: structural and SSA well-formedness checks.

Mirrors the checks LLVM's verifier performs for the IR slice we use:

* every block ends with exactly one terminator, terminators only at the end;
* every instruction appears in exactly one block (no shared nodes);
* instruction operands are defined before use (dominance for non-phi uses,
  edge-dominance for phi incoming values);
* phi nodes have exactly one incoming value per predecessor, and every
  incoming value agrees with the phi's own type;
* the def–use acceleration structure is consistent in both directions:
  every operand's use list contains the user, and every use-list entry
  really holds the value as an operand (a pass that edits ``operands``
  directly instead of going through ``set_operand`` corrupts this);
* binop/icmp/fcmp operands agree in type (and a binop produces its
  operand type);
* simple type checks on memory operations, branches, calls and returns.

The translation validator (``repro tv``) runs this verifier after every
optimization pass invocation — a structurally broken module would make
refinement verdicts meaningless — so the checks double as the
"is the pass manager's output even IR" gate.
"""

from __future__ import annotations

from .dominators import DominatorTree
from .function import BasicBlock, Function, Module
from .instructions import (
    FENCE_KINDS,
    AtomicRMW,
    BinOp,
    Br,
    Call,
    Cast,
    CmpXchg,
    FCmp,
    Fence,
    ICmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from .types import IntType, PointerType
from .values import Argument, Constant, Value


class VerificationError(Exception):
    """Raised when a module violates LIR well-formedness."""


def verify_module(module: Module) -> None:
    for func in module.functions.values():
        if not func.is_declaration:
            verify_function(func)


def verify_function(func: Function) -> None:
    if not func.blocks:
        raise VerificationError(f"{func.name}: function has no blocks")
    _check_block_structure(func)
    _check_phis(func)
    _check_types(func)
    _check_uses(func)
    _check_ssa_dominance(func)


def _check_block_structure(func: Function) -> None:
    seen: set[int] = set()
    for bb in func.blocks:
        for inst in bb.instructions:
            if id(inst) in seen:
                raise VerificationError(
                    f"{func.name}/{bb.name}: instruction %{inst.name} "
                    f"appears in more than one place"
                )
            seen.add(id(inst))
    for bb in func.blocks:
        if not bb.instructions:
            raise VerificationError(f"{func.name}/{bb.name}: empty block")
        term = bb.instructions[-1]
        if not term.is_terminator:
            raise VerificationError(
                f"{func.name}/{bb.name}: block does not end with a terminator"
            )
        for inst in bb.instructions[:-1]:
            if inst.is_terminator:
                raise VerificationError(
                    f"{func.name}/{bb.name}: terminator in the middle of a block"
                )
        for inst in bb.instructions:
            if inst.parent is not bb:
                raise VerificationError(
                    f"{func.name}/{bb.name}: instruction with stale parent link"
                )
        if isinstance(term, Br):
            for target in term.targets:
                if target.parent is not func:
                    raise VerificationError(
                        f"{func.name}/{bb.name}: branch to block outside function"
                    )


def _check_phis(func: Function) -> None:
    for bb in func.blocks:
        preds = bb.predecessors()
        saw_non_phi = False
        for inst in bb.instructions:
            if isinstance(inst, Phi):
                if saw_non_phi:
                    raise VerificationError(
                        f"{func.name}/{bb.name}: phi after non-phi instruction"
                    )
                incoming_blocks = list(inst.incoming_blocks)
                if len(set(map(id, incoming_blocks))) != len(incoming_blocks):
                    raise VerificationError(
                        f"{func.name}/{bb.name}: phi with duplicate incoming block"
                    )
                if set(map(id, incoming_blocks)) != set(map(id, preds)):
                    raise VerificationError(
                        f"{func.name}/{bb.name}: phi incoming blocks "
                        f"{sorted(b.name for b in incoming_blocks)} do not match "
                        f"predecessors {sorted(p.name for p in preds)}"
                    )
            else:
                saw_non_phi = True


def _check_uses(func: Function) -> None:
    """Def–use consistency, both directions.

    ``Value.users`` is an acceleration structure over the operand slots;
    passes that edit ``operands`` in place without ``set_operand`` (or
    forget ``drop_all_references`` on deletion) leave it stale, and the
    staleness surfaces later as a wrong ``replace_all_uses_with`` — far
    from the pass that caused it.  Catch it at the source."""
    in_func: set[int] = set()
    for bb in func.blocks:
        for inst in bb.instructions:
            in_func.add(id(inst))
    for bb in func.blocks:
        for inst in bb.instructions:
            for op in inst.operands:
                if inst not in op.users:
                    raise VerificationError(
                        f"{func.name}/{bb.name}: {inst.opcode} %{inst.name} "
                        f"missing from the use list of operand "
                        f"%{op.short_name() if hasattr(op, 'short_name') else op.name}"
                    )
            for user in inst.users:
                if id(user) in in_func and inst not in user.operands:
                    raise VerificationError(
                        f"{func.name}/{bb.name}: stale use-list entry: "
                        f"%{user.name} ({user.opcode}) no longer uses "
                        f"%{inst.name}"
                    )


def _check_types(func: Function) -> None:
    for bb in func.blocks:
        for inst in bb.instructions:
            if isinstance(inst, Load):
                pt = inst.pointer.type
                if not isinstance(pt, PointerType):
                    raise VerificationError(
                        f"{func.name}/{bb.name}: load address must be a "
                        f"pointer, got {pt}"
                    )
                if pt.pointee != inst.type:
                    raise VerificationError(
                        f"{func.name}/{bb.name}: load type mismatch "
                        f"({inst.type} from {pt})"
                    )
            elif isinstance(inst, Store):
                pt = inst.pointer.type
                if not isinstance(pt, PointerType):
                    raise VerificationError(
                        f"{func.name}/{bb.name}: store address must be a "
                        f"pointer, got {pt}"
                    )
                if pt.pointee != inst.value.type:
                    raise VerificationError(
                        f"{func.name}/{bb.name}: store type mismatch "
                        f"({inst.value.type} into {pt})"
                    )
            elif isinstance(inst, (AtomicRMW, CmpXchg)):
                pt = inst.pointer.type
                if not isinstance(pt, PointerType):
                    raise VerificationError(
                        f"{func.name}/{bb.name}: {inst.opcode} address must "
                        f"be a pointer, got {pt}"
                    )
                stored = (inst.value.type if isinstance(inst, AtomicRMW)
                          else inst.new.type)
                if pt.pointee != stored:
                    raise VerificationError(
                        f"{func.name}/{bb.name}: {inst.opcode} operand type "
                        f"{stored} does not match pointee of {pt}"
                    )
            elif isinstance(inst, BinOp):
                if inst.lhs.type != inst.rhs.type:
                    raise VerificationError(
                        f"{func.name}/{bb.name}: binop {inst.op} operand "
                        f"types disagree ({inst.lhs.type} vs {inst.rhs.type})"
                    )
                if inst.type != inst.lhs.type:
                    raise VerificationError(
                        f"{func.name}/{bb.name}: binop {inst.op} result type "
                        f"{inst.type} does not match operand type "
                        f"{inst.lhs.type}"
                    )
            elif isinstance(inst, (ICmp, FCmp)):
                if inst.lhs.type != inst.rhs.type:
                    raise VerificationError(
                        f"{func.name}/{bb.name}: {inst.opcode} {inst.pred} "
                        f"operand types disagree "
                        f"({inst.lhs.type} vs {inst.rhs.type})"
                    )
            elif isinstance(inst, Phi):
                for value, pred in inst.incoming():
                    if value.type != inst.type:
                        raise VerificationError(
                            f"{func.name}/{bb.name}: phi of type {inst.type} "
                            f"has incoming value of type {value.type} "
                            f"from {pred.name}"
                        )
            elif isinstance(inst, Fence):
                if inst.kind not in FENCE_KINDS:
                    raise VerificationError(
                        f"{func.name}/{bb.name}: unknown fence kind "
                        f"{inst.kind!r} (want one of {sorted(FENCE_KINDS)})"
                    )
            elif isinstance(inst, Select):
                if inst.true_value.type != inst.false_value.type:
                    raise VerificationError(
                        f"{func.name}/{bb.name}: select arms have mismatched "
                        f"types ({inst.true_value.type} vs "
                        f"{inst.false_value.type})"
                    )
            elif isinstance(inst, Cast):
                _check_cast(func, bb, inst)
            elif isinstance(inst, Br) and inst.is_conditional:
                ct = inst.cond.type
                if not (isinstance(ct, IntType) and ct.bits == 1):
                    raise VerificationError(
                        f"{func.name}/{bb.name}: branch condition must be i1, "
                        f"got {ct}"
                    )
            elif isinstance(inst, Ret):
                want = func.ftype.ret
                got = inst.value.type if inst.value is not None else None
                if want.is_void:
                    if inst.value is not None:
                        raise VerificationError(
                            f"{func.name}/{bb.name}: returning value from void fn"
                        )
                elif got != want:
                    raise VerificationError(
                        f"{func.name}/{bb.name}: return type {got}, want {want}"
                    )
            elif isinstance(inst, Call):
                ftype = inst.ftype
                nargs = len(inst.args)
                nparams = len(ftype.params)
                if ftype.variadic:
                    if nargs < nparams:
                        raise VerificationError(
                            f"{func.name}/{bb.name}: too few args to variadic call"
                        )
                elif nargs != nparams:
                    raise VerificationError(
                        f"{func.name}/{bb.name}: call arg count {nargs}, "
                        f"want {nparams}"
                    )
                for a, pt in zip(inst.args, ftype.params):
                    if a.type != pt:
                        raise VerificationError(
                            f"{func.name}/{bb.name}: call arg type {a.type}, "
                            f"want {pt}"
                        )


def _check_cast(func: Function, bb: BasicBlock, inst: Cast) -> None:
    src, dst = inst.value.type, inst.type
    op = inst.op
    if op == "inttoptr" and not (src.is_int and dst.is_pointer):
        raise VerificationError(f"{func.name}/{bb.name}: bad inttoptr {src}->{dst}")
    if op == "ptrtoint" and not (src.is_pointer and dst.is_int):
        raise VerificationError(f"{func.name}/{bb.name}: bad ptrtoint {src}->{dst}")
    if op == "trunc" and not (
        src.is_int and dst.is_int and src.bits > dst.bits  # type: ignore[union-attr]
    ):
        raise VerificationError(f"{func.name}/{bb.name}: bad trunc {src}->{dst}")
    if op in ("zext", "sext") and not (
        src.is_int and dst.is_int and src.bits < dst.bits  # type: ignore[union-attr]
    ):
        raise VerificationError(f"{func.name}/{bb.name}: bad {op} {src}->{dst}")
    if op == "bitcast":
        ok = (src.is_pointer and dst.is_pointer) or (
            not src.is_pointer
            and not dst.is_pointer
            and src.size_bytes() == dst.size_bytes()
        )
        if not ok:
            raise VerificationError(
                f"{func.name}/{bb.name}: bad bitcast {src}->{dst}"
            )


def _check_ssa_dominance(func: Function) -> None:
    dt = DominatorTree(func)
    positions: dict[int, tuple[BasicBlock, int]] = {}
    for bb in func.blocks:
        for i, inst in enumerate(bb.instructions):
            positions[id(inst)] = (bb, i)
    # Unreachable blocks are exempt from dominance rules (as in LLVM);
    # simplifycfg removes them.
    reachable = [bb for bb in func.blocks if dt.is_reachable(bb)]

    def defined_before(def_inst: Instruction, use_inst: Instruction) -> bool:
        dbb, di = positions[id(def_inst)]
        ubb, ui = positions[id(use_inst)]
        if dbb is ubb:
            return di < ui
        return dt.dominates(dbb, ubb)

    for bb in reachable:
        for inst in bb.instructions:
            if isinstance(inst, Phi):
                for value, pred in inst.incoming():
                    if isinstance(value, Instruction):
                        if id(value) not in positions:
                            raise VerificationError(
                                f"{func.name}/{bb.name}: phi uses erased value"
                            )
                        dbb, _ = positions[id(value)]
                        if not dt.dominates(dbb, pred):
                            raise VerificationError(
                                f"{func.name}/{bb.name}: phi incoming "
                                f"%{value.name} does not dominate edge from "
                                f"{pred.name}"
                            )
                continue
            for op in inst.operands:
                if isinstance(op, Instruction):
                    if id(op) not in positions:
                        raise VerificationError(
                            f"{func.name}/{bb.name}: use of erased instruction "
                            f"%{op.name} in {inst.opcode}"
                        )
                    if not defined_before(op, inst):
                        raise VerificationError(
                            f"{func.name}/{bb.name}: %{op.name} used before "
                            f"definition in {inst.opcode}"
                        )
                elif isinstance(op, Argument):
                    if op not in inst.function.arguments:  # type: ignore[union-attr]
                        raise VerificationError(
                            f"{func.name}/{bb.name}: use of foreign argument "
                            f"%{op.name}"
                        )
                elif not isinstance(op, (Constant, BasicBlock, Value)):
                    raise VerificationError(
                        f"{func.name}/{bb.name}: non-Value operand {op!r}"
                    )
