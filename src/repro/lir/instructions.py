"""LIR instructions.

The instruction set mirrors the LLVM slice used by Lasagne:

* memory: ``alloca``, ``load``/``store`` (non-atomic or seq_cst),
  ``atomicrmw``, ``cmpxchg``, ``fence`` (``sc``/``rm``/``ww`` per LIMM),
  ``getelementptr``;
* casts: ``trunc``/``zext``/``sext``/``bitcast``/``inttoptr``/``ptrtoint``/
  FP conversions;
* arithmetic/bitwise binops, ``icmp``/``fcmp``, ``select``, ``phi``;
* vectors: ``extractelement``/``insertelement`` (used by SSE lifting);
* control flow: ``br``, ``ret``, ``call``, ``unreachable``.

Memory orderings follow LIMM: ``"na"`` is a non-atomic access and ``"sc"`` is
seq_cst.  Fence kinds: ``"sc"`` (full fence, maps to x86 MFENCE / Arm DMBFF),
``"rm"`` (LIMM's Frm, read-to-memory ordering, maps to DMBLD), ``"ww"``
(LIMM's Fww, write-write ordering, maps to DMBST).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from .types import I1, ArrayType, FunctionType, PointerType, Type, VectorType, VOID
from .values import ExternalFunction, Value

if TYPE_CHECKING:  # pragma: no cover
    from .function import BasicBlock, Function


INT_BINOPS = {
    "add", "sub", "mul", "sdiv", "udiv", "srem", "urem",
    "and", "or", "xor", "shl", "lshr", "ashr",
}
FLOAT_BINOPS = {"fadd", "fsub", "fmul", "fdiv"}
BINOPS = INT_BINOPS | FLOAT_BINOPS

ICMP_PREDS = {"eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge"}
FCMP_PREDS = {"oeq", "one", "olt", "ole", "ogt", "oge", "ord", "uno"}

CAST_OPS = {
    "trunc", "zext", "sext", "bitcast", "inttoptr", "ptrtoint",
    "sitofp", "uitofp", "fptosi", "fptoui", "fpext", "fptrunc",
}

RMW_OPS = {"xchg", "add", "sub", "and", "or", "xor", "max", "min"}

ORDERINGS = {"na", "sc"}
FENCE_KINDS = {"sc", "rm", "ww"}


class Instruction(Value):
    """Base class: an SSA value with operands, living in a basic block."""

    opcode: str = "<abstract>"

    def __init__(self, type_: Type, operands: Sequence[Value], name: str = "") -> None:
        super().__init__(type_, name)
        self.operands: list[Value] = []
        self.parent: Optional["BasicBlock"] = None
        # Provenance: x86 Origins this instruction descends from (see
        # repro.provenance).  Stamped by the lifter, unioned by rewrites.
        self.origins: tuple = ()
        for op in operands:
            self._append_operand(op)

    # ---- operand/use management -------------------------------------
    def _append_operand(self, v: Value) -> None:
        if not isinstance(v, Value):
            raise TypeError(f"operand of {self.opcode} must be a Value, got {v!r}")
        self.operands.append(v)
        v.users.add(self)

    def set_operand(self, index: int, v: Value) -> None:
        old = self.operands[index]
        self.operands[index] = v
        v.users.add(self)
        if old not in self.operands:
            old.users.discard(self)

    def drop_all_references(self) -> None:
        """Detach this instruction from its operands' use lists."""
        for op in set(self.operands):
            op.users.discard(self)
        self.operands.clear()

    # ---- block placement --------------------------------------------
    def erase_from_parent(self) -> None:
        """Remove from the containing block and drop operand references."""
        if self.parent is not None:
            self.parent.instructions.remove(self)
            self.parent = None
        self.drop_all_references()

    @property
    def function(self) -> Optional["Function"]:
        return self.parent.parent if self.parent is not None else None

    # ---- classification ----------------------------------------------
    @property
    def is_terminator(self) -> bool:
        return isinstance(self, (Br, Ret, Unreachable))

    def may_read_memory(self) -> bool:
        return isinstance(self, (Load, AtomicRMW, CmpXchg)) or (
            isinstance(self, Call) and not self.is_readnone_callee()
        )

    def may_write_memory(self) -> bool:
        return isinstance(self, (Store, AtomicRMW, CmpXchg)) or (
            isinstance(self, Call) and not self.is_readnone_callee()
        )

    def accesses_memory(self) -> bool:
        return self.may_read_memory() or self.may_write_memory()

    def is_readnone_callee(self) -> bool:
        return False

    def has_side_effects(self) -> bool:
        """True when the instruction cannot be deleted even if unused."""
        return (
            self.is_terminator
            or isinstance(self, (Store, Fence, AtomicRMW, CmpXchg, Call))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from .printer import format_instruction

        try:
            return format_instruction(self)
        except Exception:
            return f"<{self.opcode}>"


class Alloca(Instruction):
    opcode = "alloca"

    def __init__(self, allocated_type: Type, name: str = "") -> None:
        super().__init__(PointerType(allocated_type), [], name)
        self.allocated_type = allocated_type

    def size_bytes(self) -> int:
        return self.allocated_type.size_bytes()


class Load(Instruction):
    opcode = "load"

    def __init__(self, pointer: Value, ordering: str = "na", name: str = "") -> None:
        if not isinstance(pointer.type, PointerType):
            raise TypeError(f"load pointer operand has type {pointer.type}")
        if ordering not in ORDERINGS:
            raise ValueError(f"bad ordering {ordering!r}")
        super().__init__(pointer.type.pointee, [pointer], name)
        self.ordering = ordering

    @property
    def pointer(self) -> Value:
        return self.operands[0]


class Store(Instruction):
    opcode = "store"

    def __init__(self, value: Value, pointer: Value, ordering: str = "na") -> None:
        if not isinstance(pointer.type, PointerType):
            raise TypeError(f"store pointer operand has type {pointer.type}")
        if ordering not in ORDERINGS:
            raise ValueError(f"bad ordering {ordering!r}")
        super().__init__(VOID, [value, pointer])
        self.ordering = ordering

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def pointer(self) -> Value:
        return self.operands[1]


class AtomicRMW(Instruction):
    """``atomicrmw op ptr, value`` — returns the *old* stored value."""

    opcode = "atomicrmw"

    def __init__(
        self, op: str, pointer: Value, value: Value, ordering: str = "sc",
        name: str = "",
    ) -> None:
        if op not in RMW_OPS:
            raise ValueError(f"bad atomicrmw op {op!r}")
        if not isinstance(pointer.type, PointerType):
            raise TypeError(f"atomicrmw pointer operand has type {pointer.type}")
        super().__init__(pointer.type.pointee, [pointer, value], name)
        self.op = op
        self.ordering = ordering

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    @property
    def value(self) -> Value:
        return self.operands[1]


class CmpXchg(Instruction):
    """``cmpxchg ptr, expected, new`` — returns the *old* stored value.

    Success can be recovered with ``icmp eq old, expected`` (LLVM returns a
    struct; we keep the IR first-order).
    """

    opcode = "cmpxchg"

    def __init__(
        self, pointer: Value, expected: Value, new: Value, ordering: str = "sc",
        name: str = "",
    ) -> None:
        if not isinstance(pointer.type, PointerType):
            raise TypeError(f"cmpxchg pointer operand has type {pointer.type}")
        super().__init__(pointer.type.pointee, [pointer, expected, new], name)
        self.ordering = ordering

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    @property
    def expected(self) -> Value:
        return self.operands[1]

    @property
    def new(self) -> Value:
        return self.operands[2]


class Fence(Instruction):
    opcode = "fence"

    def __init__(self, kind: str) -> None:
        if kind not in FENCE_KINDS:
            raise ValueError(f"bad fence kind {kind!r}")
        super().__init__(VOID, [])
        self.kind = kind


class BinOp(Instruction):
    opcode = "binop"

    def __init__(self, op: str, lhs: Value, rhs: Value, name: str = "") -> None:
        if op not in BINOPS:
            raise ValueError(f"bad binary opcode {op!r}")
        super().__init__(lhs.type, [lhs, rhs], name)
        self.op = op

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]

    def is_commutative(self) -> bool:
        return self.op in {"add", "mul", "and", "or", "xor", "fadd", "fmul"}


class ICmp(Instruction):
    opcode = "icmp"

    def __init__(self, pred: str, lhs: Value, rhs: Value, name: str = "") -> None:
        if pred not in ICMP_PREDS:
            raise ValueError(f"bad icmp predicate {pred!r}")
        super().__init__(I1, [lhs, rhs], name)
        self.pred = pred

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


class FCmp(Instruction):
    opcode = "fcmp"

    def __init__(self, pred: str, lhs: Value, rhs: Value, name: str = "") -> None:
        if pred not in FCMP_PREDS:
            raise ValueError(f"bad fcmp predicate {pred!r}")
        super().__init__(I1, [lhs, rhs], name)
        self.pred = pred

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


class Cast(Instruction):
    opcode = "cast"

    def __init__(self, op: str, value: Value, dest: Type, name: str = "") -> None:
        if op not in CAST_OPS:
            raise ValueError(f"bad cast opcode {op!r}")
        super().__init__(dest, [value], name)
        self.op = op

    @property
    def value(self) -> Value:
        return self.operands[0]


class GEP(Instruction):
    """``getelementptr`` — address arithmetic, never touches memory.

    We support the two shapes the pipeline produces:

    * one index: ``gep T, T* p, i64 n`` → address ``p + n * sizeof(T)``;
    * two indices with ``T`` an array: ``gep [k x E], ptr, i64 a, i64 b`` →
      ``p + a * sizeof(T) + b * sizeof(E)``.
    """

    opcode = "getelementptr"

    def __init__(
        self,
        source_type: Type,
        pointer: Value,
        indices: Sequence[Value],
        name: str = "",
    ) -> None:
        if not isinstance(pointer.type, PointerType):
            raise TypeError(f"gep pointer operand has type {pointer.type}")
        if not 1 <= len(indices) <= 2:
            raise ValueError("gep supports one or two indices")
        if len(indices) == 2 and not isinstance(source_type, ArrayType):
            raise TypeError("two-index gep requires an array source type")
        if len(indices) == 2:
            result = PointerType(source_type.element)
        else:
            result = PointerType(source_type)
        super().__init__(result, [pointer, *indices], name)
        self.source_type = source_type

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    @property
    def indices(self) -> list[Value]:
        return self.operands[1:]


class Phi(Instruction):
    opcode = "phi"

    def __init__(self, type_: Type, name: str = "") -> None:
        super().__init__(type_, [], name)
        self.incoming_blocks: list["BasicBlock"] = []

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        self._append_operand(value)
        self.incoming_blocks.append(block)

    def incoming(self) -> list[tuple[Value, "BasicBlock"]]:
        return list(zip(self.operands, self.incoming_blocks))

    def incoming_for(self, block: "BasicBlock") -> Optional[Value]:
        for v, b in self.incoming():
            if b is block:
                return v
        return None

    def remove_incoming(self, block: "BasicBlock") -> None:
        for i, b in enumerate(self.incoming_blocks):
            if b is block:
                old = self.operands.pop(i)
                self.incoming_blocks.pop(i)
                if old not in self.operands:
                    old.users.discard(self)
                return


class Select(Instruction):
    opcode = "select"

    def __init__(self, cond: Value, tval: Value, fval: Value, name: str = "") -> None:
        super().__init__(tval.type, [cond, tval, fval], name)

    @property
    def cond(self) -> Value:
        return self.operands[0]

    @property
    def true_value(self) -> Value:
        return self.operands[1]

    @property
    def false_value(self) -> Value:
        return self.operands[2]


class ExtractElement(Instruction):
    opcode = "extractelement"

    def __init__(self, vector: Value, index: Value, name: str = "") -> None:
        if not isinstance(vector.type, VectorType):
            raise TypeError(f"extractelement on non-vector {vector.type}")
        super().__init__(vector.type.element, [vector, index], name)

    @property
    def vector(self) -> Value:
        return self.operands[0]

    @property
    def index(self) -> Value:
        return self.operands[1]


class InsertElement(Instruction):
    opcode = "insertelement"

    def __init__(
        self, vector: Value, element: Value, index: Value, name: str = ""
    ) -> None:
        if not isinstance(vector.type, VectorType):
            raise TypeError(f"insertelement on non-vector {vector.type}")
        super().__init__(vector.type, [vector, element, index], name)

    @property
    def vector(self) -> Value:
        return self.operands[0]

    @property
    def element(self) -> Value:
        return self.operands[1]

    @property
    def index(self) -> Value:
        return self.operands[2]


class Call(Instruction):
    opcode = "call"

    # Calls to these runtime functions do not access program-visible memory.
    _READNONE = {"clock", "thread_id"}

    def __init__(self, callee: Value, args: Sequence[Value], name: str = "") -> None:
        ftype = self._callee_ftype(callee)
        super().__init__(ftype.ret, [callee, *args], name)
        self.ftype = ftype

    @staticmethod
    def _callee_ftype(callee: Value) -> FunctionType:
        t = callee.type
        if isinstance(t, PointerType) and isinstance(t.pointee, FunctionType):
            return t.pointee
        raise TypeError(f"call callee has non-function type {t}")

    @property
    def callee(self) -> Value:
        return self.operands[0]

    @property
    def args(self) -> list[Value]:
        return self.operands[1:]

    def is_readnone_callee(self) -> bool:
        c = self.callee
        return isinstance(c, ExternalFunction) and c.name in self._READNONE


class Br(Instruction):
    """Conditional or unconditional branch."""

    opcode = "br"

    def __init__(
        self,
        cond: Optional[Value],
        target: "BasicBlock",
        else_target: Optional["BasicBlock"] = None,
    ) -> None:
        if cond is not None and else_target is None:
            raise ValueError("conditional branch needs two targets")
        ops = [] if cond is None else [cond]
        super().__init__(VOID, ops)
        self.targets: list["BasicBlock"] = (
            [target] if cond is None else [target, else_target]
        )

    @property
    def is_conditional(self) -> bool:
        return len(self.operands) == 1

    @property
    def cond(self) -> Optional[Value]:
        return self.operands[0] if self.is_conditional else None

    def successors(self) -> list["BasicBlock"]:
        return list(self.targets)

    def replace_target(self, old: "BasicBlock", new: "BasicBlock") -> None:
        self.targets = [new if t is old else t for t in self.targets]


class Ret(Instruction):
    opcode = "ret"

    def __init__(self, value: Optional[Value] = None) -> None:
        super().__init__(VOID, [] if value is None else [value])

    @property
    def value(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None

    def successors(self) -> list["BasicBlock"]:
        return []


class Unreachable(Instruction):
    opcode = "unreachable"

    def __init__(self) -> None:
        super().__init__(VOID, [])

    def successors(self) -> list["BasicBlock"]:
        return []
