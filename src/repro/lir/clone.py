"""Cloning utilities: remap-and-copy LIR instructions and function bodies.

Used by the inliner (and usable for loop unrolling or function
specialization): ``clone_instruction`` copies one instruction with operands
substituted through a value map; phi incoming blocks go through a block map
and their operands are expected to be patched by the caller once all cloned
values exist (two-pass cloning).

``clone_module`` copies a whole module structurally.  It exists for
provenance: the pipeline's stage snapshots used to round-trip through the
printer/parser, which discards the x86 ``origins`` stamped on every
instruction; a structural clone keeps them (and is cheaper).
"""

from __future__ import annotations

from typing import Callable, Optional

from .function import BasicBlock, Function, Module
from .instructions import (
    GEP,
    Alloca,
    AtomicRMW,
    BinOp,
    Br,
    Call,
    Cast,
    CmpXchg,
    ExtractElement,
    FCmp,
    Fence,
    ICmp,
    InsertElement,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Unreachable,
)
from .values import GlobalVariable, Value


class CloneError(Exception):
    pass


def clone_instruction(
    inst: Instruction,
    lookup: Callable[[Value], Value],
    block_map: Optional[dict[int, BasicBlock]] = None,
) -> Instruction:
    """Copy ``inst`` with every operand passed through ``lookup``.

    ``Phi`` nodes are cloned *empty* (incomings must be added by the caller
    after all values exist).  ``Br`` targets and ``Ret`` are remapped through
    ``block_map`` — ``Ret`` is not handled here because its replacement is
    context-dependent (the inliner rewrites returns into branches).

    The clone carries the original's provenance: ``origins`` always, a
    fence's ``placement`` decision log when present, and an access's
    ``delayset_cert`` (the delay-set cycle-freeness certificate audited by
    the validation oracle) when present.
    """
    new = _clone_body(inst, lookup, block_map)
    new.origins = inst.origins
    placement = getattr(inst, "placement", None)
    if placement is not None:
        new.placement = placement
    cert = getattr(inst, "delayset_cert", None)
    if cert is not None:
        new.delayset_cert = cert
    return new


def _clone_body(
    inst: Instruction,
    lookup: Callable[[Value], Value],
    block_map: Optional[dict[int, BasicBlock]] = None,
) -> Instruction:
    if isinstance(inst, Alloca):
        return Alloca(inst.allocated_type, inst.name)
    if isinstance(inst, Load):
        return Load(lookup(inst.pointer), inst.ordering, inst.name)
    if isinstance(inst, Store):
        return Store(lookup(inst.value), lookup(inst.pointer), inst.ordering)
    if isinstance(inst, AtomicRMW):
        return AtomicRMW(
            inst.op, lookup(inst.pointer), lookup(inst.value), inst.ordering,
            inst.name,
        )
    if isinstance(inst, CmpXchg):
        return CmpXchg(
            lookup(inst.pointer), lookup(inst.expected), lookup(inst.new),
            inst.ordering, inst.name,
        )
    if isinstance(inst, Fence):
        return Fence(inst.kind)
    if isinstance(inst, GEP):
        return GEP(
            inst.source_type, lookup(inst.pointer),
            [lookup(i) for i in inst.indices], inst.name,
        )
    if isinstance(inst, BinOp):
        return BinOp(inst.op, lookup(inst.lhs), lookup(inst.rhs), inst.name)
    if isinstance(inst, ICmp):
        return ICmp(inst.pred, lookup(inst.lhs), lookup(inst.rhs), inst.name)
    if isinstance(inst, FCmp):
        return FCmp(inst.pred, lookup(inst.lhs), lookup(inst.rhs), inst.name)
    if isinstance(inst, Cast):
        return Cast(inst.op, lookup(inst.value), inst.type, inst.name)
    if isinstance(inst, Select):
        return Select(
            lookup(inst.cond), lookup(inst.true_value),
            lookup(inst.false_value), inst.name,
        )
    if isinstance(inst, ExtractElement):
        return ExtractElement(lookup(inst.vector), lookup(inst.index), inst.name)
    if isinstance(inst, InsertElement):
        return InsertElement(
            lookup(inst.vector), lookup(inst.element), lookup(inst.index),
            inst.name,
        )
    if isinstance(inst, Phi):
        return Phi(inst.type, inst.name)
    if isinstance(inst, Call):
        return Call(inst.callee, [lookup(a) for a in inst.args], inst.name)
    if isinstance(inst, Br):
        if block_map is None:
            raise CloneError("cloning a branch requires a block map")
        targets = [block_map[id(t)] for t in inst.targets]
        if inst.is_conditional:
            return Br(lookup(inst.cond), targets[0], targets[1])
        return Br(None, targets[0])
    if isinstance(inst, Unreachable):
        return Unreachable()
    raise CloneError(f"cannot clone {inst.opcode} (Ret is context-dependent)")


def clone_module(module: Module) -> Module:
    """Structural deep copy of a module, preserving instruction provenance.

    Cloning is three-pass per function: (1) clone every instruction with
    operands left pointing at the *old* values where the definition has not
    been seen yet, (2) patch every operand slot through the value map —
    blocks need not be laid out in dominance order, so forward references
    are expected — and (3) wire phi incomings.  Constants are shared (they
    are immutable); globals, functions, externals, and arguments are
    remapped to the new module's copies.
    """
    out = Module(module.name)
    vmap: dict[int, Value] = {}
    for g in module.globals.values():
        ng = GlobalVariable(g.name, g.value_type, g.initializer)
        out.add_global(ng)
        vmap[id(g)] = ng
    for name, ext in module.externals.items():
        vmap[id(ext)] = out.declare_external(name, ext.ftype)
    for f in module.functions.values():
        nf = Function(f.name, f.ftype, [a.name for a in f.arguments])
        if hasattr(f, "x86_addr"):
            nf.x86_addr = f.x86_addr
        out.add_function(nf)
        vmap[id(f)] = nf

    def lookup(v: Value) -> Value:
        return vmap.get(id(v), v)

    for f in module.functions.values():
        if f.is_declaration:
            continue
        nf = out.get_function(f.name)
        for a, na in zip(f.arguments, nf.arguments):
            vmap[id(a)] = na
        block_map: dict[int, BasicBlock] = {}
        for bb in f.blocks:
            block_map[id(bb)] = nf.new_block(bb.name)
        phis: list[tuple[Phi, Phi]] = []
        for bb in f.blocks:
            nb = block_map[id(bb)]
            for inst in bb.instructions:
                if isinstance(inst, Ret):
                    ni: Instruction = Ret(
                        None if inst.value is None else lookup(inst.value)
                    )
                    ni.origins = inst.origins
                else:
                    ni = clone_instruction(inst, lookup, block_map)
                vmap[id(inst)] = ni
                nb.append(ni)
                if isinstance(inst, Phi):
                    phis.append((inst, ni))  # type: ignore[arg-type]
        # Patch forward references: any operand slot still holding an old
        # value with a mapping is rewritten (set_operand fixes use lists).
        for bb in f.blocks:
            for inst in bb.instructions:
                ni = vmap[id(inst)]
                for i, op in enumerate(ni.operands):  # type: ignore[union-attr]
                    mapped = vmap.get(id(op))
                    if mapped is not None and mapped is not op:
                        ni.set_operand(i, mapped)  # type: ignore[union-attr]
        for old_phi, new_phi in phis:
            for v, blk in old_phi.incoming():
                new_phi.add_incoming(lookup(v), block_map[id(blk)])
    return out
