"""Cloning utilities: remap-and-copy LIR instructions and function bodies.

Used by the inliner (and usable for loop unrolling or function
specialization): ``clone_instruction`` copies one instruction with operands
substituted through a value map; phi incoming blocks go through a block map
and their operands are expected to be patched by the caller once all cloned
values exist (two-pass cloning).
"""

from __future__ import annotations

from typing import Callable, Optional

from .function import BasicBlock
from .instructions import (
    GEP,
    Alloca,
    AtomicRMW,
    BinOp,
    Br,
    Call,
    Cast,
    CmpXchg,
    ExtractElement,
    FCmp,
    Fence,
    ICmp,
    InsertElement,
    Instruction,
    Load,
    Phi,
    Select,
    Store,
    Unreachable,
)
from .values import Value


class CloneError(Exception):
    pass


def clone_instruction(
    inst: Instruction,
    lookup: Callable[[Value], Value],
    block_map: Optional[dict[int, BasicBlock]] = None,
) -> Instruction:
    """Copy ``inst`` with every operand passed through ``lookup``.

    ``Phi`` nodes are cloned *empty* (incomings must be added by the caller
    after all values exist).  ``Br`` targets and ``Ret`` are remapped through
    ``block_map`` — ``Ret`` is not handled here because its replacement is
    context-dependent (the inliner rewrites returns into branches).
    """
    if isinstance(inst, Alloca):
        return Alloca(inst.allocated_type, inst.name)
    if isinstance(inst, Load):
        return Load(lookup(inst.pointer), inst.ordering, inst.name)
    if isinstance(inst, Store):
        return Store(lookup(inst.value), lookup(inst.pointer), inst.ordering)
    if isinstance(inst, AtomicRMW):
        return AtomicRMW(
            inst.op, lookup(inst.pointer), lookup(inst.value), inst.ordering,
            inst.name,
        )
    if isinstance(inst, CmpXchg):
        return CmpXchg(
            lookup(inst.pointer), lookup(inst.expected), lookup(inst.new),
            inst.ordering, inst.name,
        )
    if isinstance(inst, Fence):
        return Fence(inst.kind)
    if isinstance(inst, GEP):
        return GEP(
            inst.source_type, lookup(inst.pointer),
            [lookup(i) for i in inst.indices], inst.name,
        )
    if isinstance(inst, BinOp):
        return BinOp(inst.op, lookup(inst.lhs), lookup(inst.rhs), inst.name)
    if isinstance(inst, ICmp):
        return ICmp(inst.pred, lookup(inst.lhs), lookup(inst.rhs), inst.name)
    if isinstance(inst, FCmp):
        return FCmp(inst.pred, lookup(inst.lhs), lookup(inst.rhs), inst.name)
    if isinstance(inst, Cast):
        return Cast(inst.op, lookup(inst.value), inst.type, inst.name)
    if isinstance(inst, Select):
        return Select(
            lookup(inst.cond), lookup(inst.true_value),
            lookup(inst.false_value), inst.name,
        )
    if isinstance(inst, ExtractElement):
        return ExtractElement(lookup(inst.vector), lookup(inst.index), inst.name)
    if isinstance(inst, InsertElement):
        return InsertElement(
            lookup(inst.vector), lookup(inst.element), lookup(inst.index),
            inst.name,
        )
    if isinstance(inst, Phi):
        return Phi(inst.type, inst.name)
    if isinstance(inst, Call):
        return Call(inst.callee, [lookup(a) for a in inst.args], inst.name)
    if isinstance(inst, Br):
        if block_map is None:
            raise CloneError("cloning a branch requires a block map")
        targets = [block_map[id(t)] for t in inst.targets]
        if inst.is_conditional:
            return Br(lookup(inst.cond), targets[0], targets[1])
        return Br(None, targets[0])
    if isinstance(inst, Unreachable):
        return Unreachable()
    raise CloneError(f"cannot clone {inst.opcode} (Ret is context-dependent)")
