"""Dominator tree and dominance frontier (Cooper-Harvey-Kennedy algorithm).

Used by the verifier (SSA checks), ``mem2reg`` (phi placement) and ``licm``
(loop detection via back edges).
"""

from __future__ import annotations

from typing import Optional

from .function import BasicBlock, Function


class DominatorTree:
    def __init__(self, func: Function) -> None:
        self.func = func
        self.rpo = self._reverse_postorder(func)
        self._index = {id(bb): i for i, bb in enumerate(self.rpo)}
        self.idom: dict[int, Optional[BasicBlock]] = {}
        self._compute_idoms()
        self._dominance_cache: dict[tuple[int, int], bool] = {}

    # ---- construction --------------------------------------------------
    @staticmethod
    def _reverse_postorder(func: Function) -> list[BasicBlock]:
        visited: set[int] = set()
        postorder: list[BasicBlock] = []

        def visit(bb: BasicBlock) -> None:
            stack = [(bb, iter(bb.successors()))]
            visited.add(id(bb))
            while stack:
                node, it = stack[-1]
                advanced = False
                for succ in it:
                    if id(succ) not in visited:
                        visited.add(id(succ))
                        stack.append((succ, iter(succ.successors())))
                        advanced = True
                        break
                if not advanced:
                    postorder.append(node)
                    stack.pop()

        visit(func.entry)
        return list(reversed(postorder))

    def _compute_idoms(self) -> None:
        entry = self.func.entry
        idom: dict[int, Optional[BasicBlock]] = {id(entry): entry}

        def intersect(b1: BasicBlock, b2: BasicBlock) -> BasicBlock:
            f1, f2 = b1, b2
            while f1 is not f2:
                while self._index[id(f1)] > self._index[id(f2)]:
                    f1 = idom[id(f1)]  # type: ignore[assignment]
                while self._index[id(f2)] > self._index[id(f1)]:
                    f2 = idom[id(f2)]  # type: ignore[assignment]
            return f1

        changed = True
        preds = {
            id(bb): [p for p in bb.predecessors() if id(p) in self._index]
            for bb in self.rpo
        }
        while changed:
            changed = False
            for bb in self.rpo:
                if bb is entry:
                    continue
                candidates = [p for p in preds[id(bb)] if id(p) in idom]
                if not candidates:
                    continue
                new_idom = candidates[0]
                for p in candidates[1:]:
                    new_idom = intersect(p, new_idom)
                if idom.get(id(bb)) is not new_idom:
                    idom[id(bb)] = new_idom
                    changed = True
        self.idom = idom
        self.idom[id(entry)] = None  # entry has no immediate dominator

    # ---- queries -----------------------------------------------------------
    def is_reachable(self, bb: BasicBlock) -> bool:
        return id(bb) in self._index

    def immediate_dominator(self, bb: BasicBlock) -> Optional[BasicBlock]:
        return self.idom.get(id(bb))

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True when ``a`` dominates ``b`` (reflexive)."""
        key = (id(a), id(b))
        cached = self._dominance_cache.get(key)
        if cached is not None:
            return cached
        if not self.is_reachable(a) or not self.is_reachable(b):
            result = False
        else:
            node: Optional[BasicBlock] = b
            result = False
            while node is not None:
                if node is a:
                    result = True
                    break
                node = self.idom.get(id(node))
        self._dominance_cache[key] = result
        return result

    def dominance_frontier(self) -> dict[int, set[int]]:
        """Map from block id to the ids of its dominance-frontier blocks."""
        df: dict[int, set[int]] = {id(bb): set() for bb in self.rpo}
        for bb in self.rpo:
            preds = [p for p in bb.predecessors() if self.is_reachable(p)]
            if len(preds) < 2:
                continue
            for p in preds:
                runner: Optional[BasicBlock] = p
                while runner is not None and runner is not self.idom[id(bb)]:
                    df[id(runner)].add(id(bb))
                    runner = self.idom.get(id(runner))
        return df

    def back_edges(self) -> list[tuple[BasicBlock, BasicBlock]]:
        """Edges (tail, head) where head dominates tail — natural loops."""
        edges = []
        for bb in self.rpo:
            for succ in bb.successors():
                if self.is_reachable(succ) and self.dominates(succ, bb):
                    edges.append((bb, succ))
        return edges

    def natural_loop(self, tail: BasicBlock, head: BasicBlock) -> set[int]:
        """Blocks (by id) of the natural loop for back edge tail→head."""
        loop = {id(head), id(tail)}
        stack = [tail]
        while stack:
            node = stack.pop()
            for p in node.predecessors():
                if id(p) not in loop and self.is_reachable(p):
                    loop.add(id(p))
                    stack.append(p)
        return loop
