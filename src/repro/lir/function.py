"""Module / Function / BasicBlock containers for LIR."""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from .instructions import Br, Instruction, Phi
from .types import FunctionType, PointerType
from .values import Argument, ExternalFunction, GlobalValue, GlobalVariable, Value


class BasicBlock(Value):
    """A straight-line sequence of instructions ending in a terminator."""

    def __init__(self, name: str = "") -> None:
        # Blocks are labels; they have no first-class type in our IR but we
        # keep a placeholder so they can live in the Value hierarchy.
        from .types import VOID

        super().__init__(VOID, name)
        self.instructions: list[Instruction] = []
        self.parent: Optional["Function"] = None

    # ---- structural helpers ------------------------------------------
    def append(self, inst: Instruction) -> Instruction:
        self.instructions.append(inst)
        inst.parent = self
        return inst

    def insert_before(self, pos: Instruction, inst: Instruction) -> Instruction:
        idx = self.instructions.index(pos)
        self.instructions.insert(idx, inst)
        inst.parent = self
        return inst

    def insert_after(self, pos: Instruction, inst: Instruction) -> Instruction:
        idx = self.instructions.index(pos)
        self.instructions.insert(idx + 1, inst)
        inst.parent = self
        return inst

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    def successors(self) -> list["BasicBlock"]:
        term = self.terminator
        if term is None:
            return []
        return term.successors() if not isinstance(term, Br) else term.successors()

    def predecessors(self) -> list["BasicBlock"]:
        if self.parent is None:
            return []
        preds = []
        for bb in self.parent.blocks:
            if self in bb.successors():
                preds.append(bb)
        return preds

    def phis(self) -> list[Phi]:
        return [i for i in self.instructions if isinstance(i, Phi)]

    def non_phis(self) -> list[Instruction]:
        return [i for i in self.instructions if not isinstance(i, Phi)]

    def first_non_phi_index(self) -> int:
        for i, inst in enumerate(self.instructions):
            if not isinstance(inst, Phi):
                return i
        return len(self.instructions)

    def short_name(self) -> str:
        return f"%{self.name}"

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<BasicBlock {self.name} ({len(self.instructions)} insts)>"


class Function(GlobalValue):
    """A function definition: arguments plus a CFG of basic blocks."""

    def __init__(self, name: str, ftype: FunctionType, arg_names: Iterable[str] = ()) -> None:
        super().__init__(PointerType(ftype), name)
        self.ftype = ftype
        names = list(arg_names)
        while len(names) < len(ftype.params):
            names.append(f"arg{len(names)}")
        self.arguments = [
            Argument(t, names[i], i) for i, t in enumerate(ftype.params)
        ]
        self.blocks: list[BasicBlock] = []
        self.parent: Optional["Module"] = None
        self._name_counter = 0

    # ---- block management ---------------------------------------------
    def append_block(self, block: BasicBlock) -> BasicBlock:
        if not block.name:
            block.name = self.next_name("bb")
        self.blocks.append(block)
        block.parent = self
        return block

    def new_block(self, name: str = "") -> BasicBlock:
        return self.append_block(BasicBlock(name or self.next_name("bb")))

    def remove_block(self, block: BasicBlock) -> None:
        self.blocks.remove(block)
        block.parent = None

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        return self.blocks[0]

    @property
    def is_declaration(self) -> bool:
        return not self.blocks

    # ---- naming ---------------------------------------------------------
    def next_name(self, prefix: str = "v") -> str:
        self._name_counter += 1
        return f"{prefix}{self._name_counter}"

    def assign_names(self) -> None:
        """Give every unnamed instruction/block a unique printable name."""
        seen: set[str] = set()
        for arg in self.arguments:
            seen.add(arg.name)
        counter = 0
        for bb in self.blocks:
            if not bb.name or bb.name in seen:
                counter += 1
                bb.name = f"bb{counter}"
                while bb.name in seen:
                    counter += 1
                    bb.name = f"bb{counter}"
            seen.add(bb.name)
        counter = 0
        for bb in self.blocks:
            for inst in bb.instructions:
                if inst.type.is_void:
                    continue
                if not inst.name or inst.name in seen:
                    counter += 1
                    inst.name = f"t{counter}"
                    while inst.name in seen:
                        counter += 1
                        inst.name = f"t{counter}"
                seen.add(inst.name)

    # ---- traversal --------------------------------------------------------
    def instructions(self) -> Iterator[Instruction]:
        for bb in self.blocks:
            yield from bb.instructions

    def instruction_count(self) -> int:
        return sum(len(bb.instructions) for bb in self.blocks)

    def __repr__(self) -> str:  # pragma: no cover
        kind = "declare" if self.is_declaration else "define"
        return f"<{kind} {self.name}: {self.ftype}>"


class Module:
    """A translation unit: globals plus functions."""

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.globals: dict[str, GlobalVariable] = {}
        self.functions: dict[str, Function] = {}
        self.externals: dict[str, ExternalFunction] = {}

    def add_global(self, g: GlobalVariable) -> GlobalVariable:
        if g.name in self.globals:
            raise ValueError(f"duplicate global {g.name}")
        self.globals[g.name] = g
        return g

    def add_function(self, f: Function) -> Function:
        if f.name in self.functions:
            raise ValueError(f"duplicate function {f.name}")
        self.functions[f.name] = f
        f.parent = self
        return f

    def declare_external(self, name: str, ftype: FunctionType) -> ExternalFunction:
        if name in self.externals:
            existing = self.externals[name]
            return existing
        ext = ExternalFunction(name, ftype)
        self.externals[name] = ext
        return ext

    def get_function(self, name: str) -> Function:
        return self.functions[name]

    def instruction_count(self) -> int:
        return sum(f.instruction_count() for f in self.functions.values())

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Module {self.name}: {len(self.functions)} functions, "
            f"{len(self.globals)} globals>"
        )
