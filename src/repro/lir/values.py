"""Values for LIR: the SSA value hierarchy and use-def tracking.

Everything an instruction can reference is a :class:`Value`.  Instructions
(defined in :mod:`repro.lir.instructions`) are themselves values.  Use-def
edges are maintained eagerly: each value knows the set of instructions that
use it, which is what makes ``replace_all_uses_with`` and the optimizer's
dead-code reasoning cheap.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING, Iterable, Optional

from .types import FloatType, FunctionType, IntType, PointerType, Type, VectorType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .instructions import Instruction


class Value:
    """Base class of every SSA value."""

    def __init__(self, type_: Type, name: str = "") -> None:
        self.type = type_
        self.name = name
        # Instructions that have this value as an operand.  A user may appear
        # once even if it uses the value in several operand slots; operand
        # slots are the source of truth, this is an acceleration structure.
        self.users: set["Instruction"] = set()

    def replace_all_uses_with(self, new: "Value") -> None:
        """Rewrite every operand slot holding ``self`` to hold ``new``.

        Provenance: when an *instruction* replaces an instruction, the
        replaced value's origins are merged into the replacement, so folds
        (GVN, instcombine, mem2reg...) accumulate x86 blame instead of
        dropping it.  Constants and other origin-free values are left
        untouched — they are shared and must stay immutable.
        """
        if new is self:
            return
        mine = getattr(self, "origins", ())
        if mine:
            theirs = getattr(new, "origins", None)
            if theirs is not None:
                seen = set(theirs)
                extra = tuple(o for o in mine if o not in seen)
                if extra:
                    new.origins = tuple(theirs) + extra
        for user in list(self.users):
            for i, op in enumerate(user.operands):
                if op is self:
                    user.set_operand(i, new)

    @property
    def is_constant(self) -> bool:
        return isinstance(self, Constant)

    def short_name(self) -> str:
        return f"%{self.name}" if self.name else "%<unnamed>"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.short_name()}: {self.type}>"


class Constant(Value):
    """Base class for constants (no defining instruction)."""


class ConstantInt(Constant):
    def __init__(self, type_: IntType, value: int) -> None:
        if not isinstance(type_, IntType):
            raise TypeError(f"ConstantInt requires an integer type, got {type_}")
        super().__init__(type_)
        self.value = value & type_.mask()

    @property
    def signed_value(self) -> int:
        """The value interpreted as a two's-complement signed integer."""
        bits = self.type.bits
        v = self.value
        if v >= (1 << (bits - 1)):
            v -= 1 << bits
        return v

    def short_name(self) -> str:
        return str(self.signed_value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ConstantInt)
            and other.type == self.type
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash(("cint", self.type, self.value))


class ConstantFloat(Constant):
    def __init__(self, type_: FloatType, value: float) -> None:
        if not isinstance(type_, FloatType):
            raise TypeError(f"ConstantFloat requires a float type, got {type_}")
        super().__init__(type_)
        if type_.bits == 32:
            # Round-trip through binary32 so the constant is exact.
            value = struct.unpack("<f", struct.pack("<f", value))[0]
        self.value = float(value)

    def short_name(self) -> str:
        return repr(self.value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ConstantFloat)
            and other.type == self.type
            and struct.pack("<d", other.value) == struct.pack("<d", self.value)
        )

    def __hash__(self) -> int:
        return hash(("cfloat", self.type, struct.pack("<d", self.value)))


class ConstantPointerNull(Constant):
    def __init__(self, type_: PointerType) -> None:
        super().__init__(type_)

    def short_name(self) -> str:
        return "null"


class ConstantVector(Constant):
    def __init__(self, type_: VectorType, elements: Iterable[Constant]) -> None:
        super().__init__(type_)
        self.elements = list(elements)
        if len(self.elements) != type_.count:
            raise ValueError(
                f"vector constant has {len(self.elements)} elements, "
                f"type wants {type_.count}"
            )

    def short_name(self) -> str:
        inner = ", ".join(e.short_name() for e in self.elements)
        return f"<{inner}>"


class UndefValue(Constant):
    """LLVM's ``undef``: produced e.g. by reading an uninitialized slot."""

    def short_name(self) -> str:
        return "undef"


class Argument(Value):
    """A formal parameter of a function."""

    def __init__(self, type_: Type, name: str, index: int) -> None:
        super().__init__(type_, name)
        self.index = index


class GlobalValue(Constant):
    """Base of values with a module-level name (globals and functions)."""

    def short_name(self) -> str:
        return f"@{self.name}"


class GlobalVariable(GlobalValue):
    """A module-level variable.

    ``value_type`` is the type of the stored value; the global itself, as an
    SSA value, has pointer-to-``value_type`` type (as in LLVM).
    ``initializer`` is either ``None`` (zero-initialized), a ``Constant``, or
    raw ``bytes``.
    """

    def __init__(
        self,
        name: str,
        value_type: Type,
        initializer: Optional[object] = None,
    ) -> None:
        super().__init__(PointerType(value_type), name)
        self.value_type = value_type
        self.initializer = initializer

    def size_bytes(self) -> int:
        return self.value_type.size_bytes()


class ExternalFunction(GlobalValue):
    """A declared-but-not-defined function (runtime calls like ``malloc``)."""

    def __init__(self, name: str, ftype: FunctionType) -> None:
        super().__init__(PointerType(ftype), name)
        self.ftype = ftype
