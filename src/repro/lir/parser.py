"""Parser for the LIR textual format — the inverse of :mod:`printer`.

``parse_module(format_module(m))`` reconstructs an equivalent module, which
the property tests verify by re-printing and by differential interpretation.
Forward references (e.g. phi operands defined in later blocks) are handled
with placeholder values patched after the function body is read.
"""

from __future__ import annotations

import re
from typing import Optional

from .function import BasicBlock, Function, Module
from .instructions import (
    GEP,
    Alloca,
    AtomicRMW,
    BinOp,
    Br,
    Call,
    Cast,
    CmpXchg,
    ExtractElement,
    FCmp,
    Fence,
    ICmp,
    InsertElement,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Unreachable,
    BINOPS,
    CAST_OPS,
    FCMP_PREDS,
    ICMP_PREDS,
)
from .types import (
    ArrayType,
    F32,
    F64,
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    Type,
    VectorType,
    VOID,
)
from .values import (
    ConstantFloat,
    ConstantInt,
    ConstantPointerNull,
    GlobalVariable,
    UndefValue,
    Value,
)


class IRParseError(Exception):
    pass


class _Placeholder(Value):
    """Stand-in for a %name referenced before its definition."""

    def __init__(self, name: str, type_: Type) -> None:
        super().__init__(type_, name)


_FENCE_KINDS = {"seq_cst": "sc", "frm": "rm", "fww": "ww"}


def parse_type(text: str) -> tuple[Type, str]:
    """Parse a type at the start of ``text``; return (type, rest)."""
    text = text.lstrip()
    if text.startswith("void"):
        base: Type = VOID
        rest = text[4:]
    elif text.startswith("double"):
        base = F64
        rest = text[6:]
    elif text.startswith("float"):
        base = F32
        rest = text[5:]
    elif text.startswith("i"):
        m = re.match(r"i(\d+)", text)
        if not m:
            raise IRParseError(f"bad type at {text[:20]!r}")
        base = IntType(int(m.group(1)))
        rest = text[m.end():]
    elif text.startswith("["):
        m = re.match(r"\[\s*(\d+)\s*x\s*", text)
        if not m:
            raise IRParseError(f"bad array type at {text[:20]!r}")
        elem, rest = parse_type(text[m.end():])
        rest = rest.lstrip()
        if not rest.startswith("]"):
            raise IRParseError(f"unterminated array type at {text[:20]!r}")
        base = ArrayType(elem, int(m.group(1)))
        rest = rest[1:]
    elif text.startswith("<"):
        m = re.match(r"<\s*(\d+)\s*x\s*", text)
        if not m:
            raise IRParseError(f"bad vector type at {text[:20]!r}")
        elem, rest = parse_type(text[m.end():])
        rest = rest.lstrip()
        if not rest.startswith(">"):
            raise IRParseError(f"unterminated vector type at {text[:20]!r}")
        base = VectorType(elem, int(m.group(1)))
        rest = rest[1:]
    else:
        raise IRParseError(f"bad type at {text[:20]!r}")
    while rest.startswith("*"):
        base = PointerType(base)
        rest = rest[1:]
    return base, rest


class _FunctionParser:
    def __init__(self, module: Module, func: Function) -> None:
        self.module = module
        self.func = func
        self.values: dict[str, Value] = {a.name: a for a in func.arguments}
        self.blocks: dict[str, BasicBlock] = {}
        self.placeholders: dict[str, _Placeholder] = {}

    # ---- value / operand handling -------------------------------------
    def block(self, name: str) -> BasicBlock:
        if name not in self.blocks:
            bb = BasicBlock(name)
            self.blocks[name] = bb
        return self.blocks[name]

    def value_ref(self, token: str, type_: Type) -> Value:
        token = token.strip()
        if token.startswith("%"):
            name = token[1:]
            if name in self.values:
                return self.values[name]
            ph = self.placeholders.get(name)
            if ph is None:
                ph = _Placeholder(name, type_)
                self.placeholders[name] = ph
            return ph
        if token.startswith("@"):
            name = token[1:]
            if name in self.module.globals:
                return self.module.globals[name]
            if name in self.module.functions:
                return self.module.functions[name]
            if name in self.module.externals:
                return self.module.externals[name]
            raise IRParseError(f"unknown global {token}")
        if token == "null":
            return ConstantPointerNull(type_)  # type: ignore[arg-type]
        if token == "undef":
            return UndefValue(type_)
        if isinstance(type_, FloatType):
            return ConstantFloat(type_, float(token))
        if isinstance(type_, IntType):
            return ConstantInt(type_, int(token))
        raise IRParseError(f"cannot parse operand {token!r} of type {type_}")

    def typed_operand(self, text: str) -> tuple[Value, str]:
        """Parse ``<type> <ref>`` and return (value, rest-after-ref)."""
        type_, rest = parse_type(text)
        rest = rest.lstrip()
        m = re.match(r"(%[\w.$-]+|@[\w.$-]+|[-+]?[\d.eE+]+|null|undef)", rest)
        if not m:
            raise IRParseError(f"bad operand at {rest[:30]!r}")
        return self.value_ref(m.group(1), type_), rest[m.end():]

    def define(self, name: str, value: Value) -> None:
        self.values[name] = value
        ph = self.placeholders.pop(name, None)
        if ph is not None:
            ph.replace_all_uses_with(value)

    # ---- driver --------------------------------------------------------
    def finish(self) -> None:
        if self.placeholders:
            missing = sorted(self.placeholders)
            raise IRParseError(
                f"{self.func.name}: undefined values {missing}"
            )


def parse_module(text: str) -> Module:
    lines = [ln.rstrip() for ln in text.splitlines()]
    module = Module("parsed")
    i = 0
    while i < len(lines):
        line = lines[i].strip()
        i += 1
        if not line or line.startswith(";"):
            if line.startswith("; module"):
                module.name = line.split("; module", 1)[1].strip() or "parsed"
            continue
        if line.startswith("@"):
            _parse_global(module, line)
        elif line.startswith("declare"):
            _parse_declare(module, line)
        elif line.startswith("define"):
            i = _parse_function(module, lines, i - 1)
        else:
            raise IRParseError(f"unexpected top-level line: {line!r}")
    return module


def _parse_global(module: Module, line: str) -> None:
    m = re.match(r"@([\w.$-]+)\s*=\s*global\s+(.*)$", line)
    if not m:
        raise IRParseError(f"bad global: {line!r}")
    name = m.group(1)
    type_, rest = parse_type(m.group(2))
    rest = rest.strip()
    init = None
    if rest == "zeroinitializer" or not rest:
        init = None
    elif rest.startswith("bytes 0x"):
        init = bytes.fromhex(rest[len("bytes 0x"):])
    elif isinstance(type_, FloatType):
        init = ConstantFloat(type_, float(rest))
    elif isinstance(type_, IntType):
        init = ConstantInt(type_, int(rest))
    module.add_global(GlobalVariable(name, type_, init))


def _parse_declare(module: Module, line: str) -> None:
    m = re.match(r"declare\s+(.+?)\s*@([\w.$-]+)\((.*)\)\s*$", line)
    if not m:
        raise IRParseError(f"bad declare: {line!r}")
    ret, _ = parse_type(m.group(1))
    params = []
    variadic = False
    body = m.group(3).strip()
    if body == "...":
        variadic = True  # printed form of externals elides parameter types
    elif body:
        for piece in body.split(","):
            piece = piece.strip()
            if piece == "...":
                variadic = True
                continue
            t, _ = parse_type(piece)
            params.append(t)
    module.declare_external(
        m.group(2), FunctionType(ret, tuple(params), variadic)
    )


def _parse_function(module: Module, lines: list[str], start: int) -> int:
    header = lines[start].strip()
    m = re.match(r"define\s+(.+?)\s*@([\w.$-]+)\((.*)\)\s*\{$", header)
    if not m:
        raise IRParseError(f"bad define: {header!r}")
    ret, _ = parse_type(m.group(1))
    params: list[Type] = []
    names: list[str] = []
    args_text = m.group(3).strip()
    if args_text:
        for piece in args_text.split(","):
            t, rest = parse_type(piece.strip())
            rest = rest.strip()
            if not rest.startswith("%"):
                raise IRParseError(f"bad parameter: {piece!r}")
            params.append(t)
            names.append(rest[1:])
    existing = module.functions.get(m.group(2))
    if existing is not None and existing.is_declaration:
        func = existing
    else:
        func = Function(m.group(2), FunctionType(ret, tuple(params)), names)
        module.add_function(func)
    fp = _FunctionParser(module, func)

    current: Optional[BasicBlock] = None
    i = start + 1
    while i < len(lines):
        raw = lines[i]
        line = raw.strip()
        i += 1
        if not line:
            continue
        if line == "}":
            break
        label = re.match(r"^([\w.$-]+):$", line)
        if label:
            current = fp.block(label.group(1))
            func.append_block(current)
            continue
        if current is None:
            raise IRParseError(f"instruction outside block: {line!r}")
        inst = _parse_instruction(fp, line)
        current.append(inst)
    fp.finish()
    return i


def _split_args(text: str) -> list[str]:
    """Split on top-level commas (respecting [ ] and < > brackets)."""
    parts = []
    depth = 0
    cur = ""
    for ch in text:
        if ch in "[<(":
            depth += 1
        elif ch in "]>)":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append(cur)
            cur = ""
        else:
            cur += ch
    if cur.strip():
        parts.append(cur)
    return parts


def _parse_instruction(fp: _FunctionParser, line: str):
    name = ""
    m = re.match(r"%([\w.$-]+)\s*=\s*(.*)$", line)
    if m:
        name = m.group(1)
        line = m.group(2)

    mnemonic = line.split(None, 1)[0]
    rest = line[len(mnemonic):].strip()

    inst = _dispatch(fp, mnemonic, rest, line)
    if name:
        inst.name = name
        fp.define(name, inst)
    return inst


def _dispatch(fp: _FunctionParser, mnemonic: str, rest: str, line: str):
    if mnemonic == "alloca":
        t, _ = parse_type(rest)
        return Alloca(t)
    if mnemonic == "load":
        atomic = rest.startswith("atomic")
        if atomic:
            rest = rest[len("atomic"):].strip()
        parts = _split_args(rest)
        ptr_part = parts[1].strip()
        ordering = "na"
        if ptr_part.endswith(" sc"):
            ptr_part = ptr_part[:-3]
            ordering = "sc"
        value, _ = fp.typed_operand(ptr_part)
        return Load(value, ordering)
    if mnemonic == "store":
        atomic = rest.startswith("atomic")
        if atomic:
            rest = rest[len("atomic"):].strip()
        parts = _split_args(rest)
        val, _ = fp.typed_operand(parts[0])
        ptr_part = parts[1].strip()
        ordering = "na"
        if ptr_part.endswith(" sc"):
            ptr_part = ptr_part[:-3]
            ordering = "sc"
        ptr_v, _ = fp.typed_operand(ptr_part)
        return Store(val, ptr_v, ordering)
    if mnemonic == "atomicrmw":
        op, rest = rest.split(None, 1)
        parts = _split_args(rest)
        ptr_v, _ = fp.typed_operand(parts[0])
        val_part = parts[1].strip()
        ordering = "sc"
        if val_part.endswith(" sc"):
            val_part = val_part[:-3]
        val, _ = fp.typed_operand(val_part)
        return AtomicRMW(op, ptr_v, val, ordering)
    if mnemonic == "cmpxchg":
        parts = _split_args(rest)
        ptr_v, _ = fp.typed_operand(parts[0])
        expected, _ = fp.typed_operand(parts[1])
        new_part = parts[2].strip()
        if new_part.endswith(" sc"):
            new_part = new_part[:-3]
        new, _ = fp.typed_operand(new_part)
        return CmpXchg(ptr_v, expected, new, "sc")
    if mnemonic == "fence":
        kind = _FENCE_KINDS.get(rest.strip())
        if kind is None:
            raise IRParseError(f"bad fence: {line!r}")
        return Fence(kind)
    if mnemonic == "getelementptr":
        parts = _split_args(rest)
        src_t, _ = parse_type(parts[0])
        ptr_v, _ = fp.typed_operand(parts[1])
        indices = [fp.typed_operand(p)[0] for p in parts[2:]]
        return GEP(src_t, ptr_v, indices)
    if mnemonic in BINOPS:
        parts = _split_args(rest)
        lhs, _ = fp.typed_operand(parts[0])
        rhs = fp.value_ref(parts[1].strip(), lhs.type)
        return BinOp(mnemonic, lhs, rhs)
    if mnemonic == "icmp":
        pred, rest2 = rest.split(None, 1)
        if pred not in ICMP_PREDS:
            raise IRParseError(f"bad icmp: {line!r}")
        parts = _split_args(rest2)
        lhs, _ = fp.typed_operand(parts[0])
        rhs = fp.value_ref(parts[1].strip(), lhs.type)
        return ICmp(pred, lhs, rhs)
    if mnemonic == "fcmp":
        pred, rest2 = rest.split(None, 1)
        if pred not in FCMP_PREDS:
            raise IRParseError(f"bad fcmp: {line!r}")
        parts = _split_args(rest2)
        lhs, _ = fp.typed_operand(parts[0])
        rhs = fp.value_ref(parts[1].strip(), lhs.type)
        return FCmp(pred, lhs, rhs)
    if mnemonic in CAST_OPS:
        m = re.match(r"(.+?)\s+to\s+(.+)$", rest)
        if not m:
            raise IRParseError(f"bad cast: {line!r}")
        value, _ = fp.typed_operand(m.group(1))
        dest, _ = parse_type(m.group(2))
        return Cast(mnemonic, value, dest)
    if mnemonic == "select":
        parts = _split_args(rest)
        cond, _ = fp.typed_operand(parts[0])
        tval, _ = fp.typed_operand(parts[1])
        fval, _ = fp.typed_operand(parts[2])
        return Select(cond, tval, fval)
    if mnemonic == "extractelement":
        parts = _split_args(rest)
        vec, _ = fp.typed_operand(parts[0])
        idx, _ = fp.typed_operand(parts[1])
        return ExtractElement(vec, idx)
    if mnemonic == "insertelement":
        parts = _split_args(rest)
        vec, _ = fp.typed_operand(parts[0])
        elem, _ = fp.typed_operand(parts[1])
        idx, _ = fp.typed_operand(parts[2])
        return InsertElement(vec, elem, idx)
    if mnemonic == "phi":
        type_, rest2 = parse_type(rest)
        phi = Phi(type_)
        for m2 in re.finditer(r"\[\s*([^,\]]+)\s*,\s*%([\w.$-]+)\s*\]", rest2):
            value = fp.value_ref(m2.group(1).strip(), type_)
            phi.add_incoming(value, fp.block(m2.group(2)))
        return phi
    if mnemonic == "call":
        m = re.match(r"(.+?)\s*(@[\w.$-]+)\((.*)\)$", rest)
        if not m:
            raise IRParseError(f"bad call: {line!r}")
        callee = fp.value_ref(m.group(2), VOID)
        args = []
        body = m.group(3).strip()
        if body:
            for piece in _split_args(body):
                args.append(fp.typed_operand(piece)[0])
        return Call(callee, args)
    if mnemonic == "br":
        if rest.startswith("label"):
            target = rest.split("%", 1)[1].strip()
            return Br(None, fp.block(target))
        parts = _split_args(rest)
        cond, _ = fp.typed_operand(parts[0])
        then_name = parts[1].split("%", 1)[1].strip()
        else_name = parts[2].split("%", 1)[1].strip()
        return Br(cond, fp.block(then_name), fp.block(else_name))
    if mnemonic == "ret":
        if rest.strip() == "void":
            return Ret(None)
        value, _ = fp.typed_operand(rest)
        return Ret(value)
    if mnemonic == "unreachable":
        return Unreachable()
    raise IRParseError(f"unknown instruction: {line!r}")
