"""IRBuilder: convenience API for constructing LIR, LLVM-style."""

from __future__ import annotations

from typing import Optional, Sequence

from .function import BasicBlock
from .instructions import (
    GEP,
    Alloca,
    AtomicRMW,
    BinOp,
    Br,
    Call,
    Cast,
    CmpXchg,
    ExtractElement,
    FCmp,
    Fence,
    ICmp,
    InsertElement,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Unreachable,
)
from .types import FloatType, IntType, PointerType, Type
from .values import ConstantFloat, ConstantInt, Value


class IRBuilder:
    """Appends instructions at an insertion point inside a basic block."""

    def __init__(self, block: Optional[BasicBlock] = None) -> None:
        self.block = block
        # None means "append at end"; otherwise insert before this one.
        self._before: Optional[Instruction] = None
        # Provenance stamp applied to every inserted instruction that does
        # not already carry origins (see repro.provenance.origin).
        self.origins: tuple = ()

    # ---- positioning --------------------------------------------------
    def position_at_end(self, block: BasicBlock) -> None:
        self.block = block
        self._before = None

    def position_before(self, inst: Instruction) -> None:
        self.block = inst.parent
        self._before = inst

    # ---- provenance ----------------------------------------------------
    def set_origin(self, *origins) -> None:
        """Stamp subsequently inserted instructions with these origins."""
        self.origins = tuple(o for o in origins if o is not None)

    def insert(self, inst: Instruction) -> Instruction:
        if self.block is None:
            raise RuntimeError("IRBuilder has no insertion block")
        if self.origins and not inst.origins:
            inst.origins = self.origins
        if self._before is None:
            self.block.append(inst)
        else:
            self.block.insert_before(self._before, inst)
        return inst

    # ---- constants -----------------------------------------------------
    @staticmethod
    def const_int(type_: IntType, value: int) -> ConstantInt:
        return ConstantInt(type_, value)

    @staticmethod
    def const_float(type_: FloatType, value: float) -> ConstantFloat:
        return ConstantFloat(type_, value)

    # ---- memory ---------------------------------------------------------
    def alloca(self, type_: Type, name: str = "") -> Alloca:
        return self.insert(Alloca(type_, name))  # type: ignore[return-value]

    def load(self, pointer: Value, ordering: str = "na", name: str = "") -> Load:
        return self.insert(Load(pointer, ordering, name))  # type: ignore[return-value]

    def store(self, value: Value, pointer: Value, ordering: str = "na") -> Store:
        return self.insert(Store(value, pointer, ordering))  # type: ignore[return-value]

    def atomicrmw(
        self, op: str, pointer: Value, value: Value, ordering: str = "sc",
        name: str = "",
    ) -> AtomicRMW:
        return self.insert(AtomicRMW(op, pointer, value, ordering, name))  # type: ignore[return-value]

    def cmpxchg(
        self, pointer: Value, expected: Value, new: Value, ordering: str = "sc",
        name: str = "",
    ) -> CmpXchg:
        return self.insert(CmpXchg(pointer, expected, new, ordering, name))  # type: ignore[return-value]

    def fence(self, kind: str) -> Fence:
        return self.insert(Fence(kind))  # type: ignore[return-value]

    def gep(
        self, source_type: Type, pointer: Value, indices: Sequence[Value],
        name: str = "",
    ) -> GEP:
        return self.insert(GEP(source_type, pointer, indices, name))  # type: ignore[return-value]

    # ---- arithmetic -------------------------------------------------------
    def binop(self, op: str, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        return self.insert(BinOp(op, lhs, rhs, name))  # type: ignore[return-value]

    def add(self, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        return self.binop("add", lhs, rhs, name)

    def sub(self, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        return self.binop("sub", lhs, rhs, name)

    def mul(self, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        return self.binop("mul", lhs, rhs, name)

    def icmp(self, pred: str, lhs: Value, rhs: Value, name: str = "") -> ICmp:
        return self.insert(ICmp(pred, lhs, rhs, name))  # type: ignore[return-value]

    def fcmp(self, pred: str, lhs: Value, rhs: Value, name: str = "") -> FCmp:
        return self.insert(FCmp(pred, lhs, rhs, name))  # type: ignore[return-value]

    def select(self, cond: Value, tval: Value, fval: Value, name: str = "") -> Select:
        return self.insert(Select(cond, tval, fval, name))  # type: ignore[return-value]

    # ---- casts -------------------------------------------------------------
    def cast(self, op: str, value: Value, dest: Type, name: str = "") -> Cast:
        return self.insert(Cast(op, value, dest, name))  # type: ignore[return-value]

    def bitcast(self, value: Value, dest: Type, name: str = "") -> Cast:
        return self.cast("bitcast", value, dest, name)

    def inttoptr(self, value: Value, dest: PointerType, name: str = "") -> Cast:
        return self.cast("inttoptr", value, dest, name)

    def ptrtoint(self, value: Value, dest: IntType, name: str = "") -> Cast:
        return self.cast("ptrtoint", value, dest, name)

    def trunc(self, value: Value, dest: IntType, name: str = "") -> Cast:
        return self.cast("trunc", value, dest, name)

    def zext(self, value: Value, dest: IntType, name: str = "") -> Cast:
        return self.cast("zext", value, dest, name)

    def sext(self, value: Value, dest: IntType, name: str = "") -> Cast:
        return self.cast("sext", value, dest, name)

    # ---- vectors -------------------------------------------------------------
    def extractelement(self, vector: Value, index: Value, name: str = "") -> ExtractElement:
        return self.insert(ExtractElement(vector, index, name))  # type: ignore[return-value]

    def insertelement(
        self, vector: Value, element: Value, index: Value, name: str = ""
    ) -> InsertElement:
        return self.insert(InsertElement(vector, element, index, name))  # type: ignore[return-value]

    # ---- control flow ----------------------------------------------------------
    def phi(self, type_: Type, name: str = "") -> Phi:
        return self.insert(Phi(type_, name))  # type: ignore[return-value]

    def call(self, callee: Value, args: Sequence[Value], name: str = "") -> Call:
        return self.insert(Call(callee, args, name))  # type: ignore[return-value]

    def br(self, target: BasicBlock) -> Br:
        return self.insert(Br(None, target))  # type: ignore[return-value]

    def cond_br(self, cond: Value, then_bb: BasicBlock, else_bb: BasicBlock) -> Br:
        return self.insert(Br(cond, then_bb, else_bb))  # type: ignore[return-value]

    def ret(self, value: Optional[Value] = None) -> Ret:
        return self.insert(Ret(value))  # type: ignore[return-value]

    def unreachable(self) -> Unreachable:
        return self.insert(Unreachable())  # type: ignore[return-value]
