"""Textual printer for LIR modules (LLVM-assembly-flavoured)."""

from __future__ import annotations

from .function import BasicBlock, Function, Module
from .instructions import (
    GEP,
    Alloca,
    AtomicRMW,
    BinOp,
    Br,
    Call,
    Cast,
    CmpXchg,
    ExtractElement,
    FCmp,
    Fence,
    ICmp,
    InsertElement,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Unreachable,
)
from .values import Value


def _ref(v: Value) -> str:
    """Operand reference: ``<type> <name>``."""
    from .function import BasicBlock as BB

    if isinstance(v, BB):
        return f"label %{v.name}"
    return f"{v.type} {v.short_name()}"


def format_instruction(inst: Instruction) -> str:
    name = f"%{inst.name} = " if not inst.type.is_void and inst.name else (
        "" if inst.type.is_void else "%<unnamed> = "
    )
    if isinstance(inst, Alloca):
        return f"{name}alloca {inst.allocated_type}"
    if isinstance(inst, Load):
        atomic = " atomic" if inst.ordering != "na" else ""
        suffix = f" {inst.ordering}" if inst.ordering != "na" else ""
        return f"{name}load{atomic} {inst.type}, {_ref(inst.pointer)}{suffix}"
    if isinstance(inst, Store):
        atomic = " atomic" if inst.ordering != "na" else ""
        suffix = f" {inst.ordering}" if inst.ordering != "na" else ""
        return f"store{atomic} {_ref(inst.value)}, {_ref(inst.pointer)}{suffix}"
    if isinstance(inst, AtomicRMW):
        return (
            f"{name}atomicrmw {inst.op} {_ref(inst.pointer)}, "
            f"{_ref(inst.value)} {inst.ordering}"
        )
    if isinstance(inst, CmpXchg):
        return (
            f"{name}cmpxchg {_ref(inst.pointer)}, {_ref(inst.expected)}, "
            f"{_ref(inst.new)} {inst.ordering}"
        )
    if isinstance(inst, Fence):
        pretty = {"sc": "seq_cst", "rm": "frm", "ww": "fww"}[inst.kind]
        return f"fence {pretty}"
    if isinstance(inst, GEP):
        idx = ", ".join(_ref(i) for i in inst.indices)
        return (
            f"{name}getelementptr {inst.source_type}, {_ref(inst.pointer)}, {idx}"
        )
    if isinstance(inst, BinOp):
        return f"{name}{inst.op} {_ref(inst.lhs)}, {inst.rhs.short_name()}"
    if isinstance(inst, ICmp):
        return f"{name}icmp {inst.pred} {_ref(inst.lhs)}, {inst.rhs.short_name()}"
    if isinstance(inst, FCmp):
        return f"{name}fcmp {inst.pred} {_ref(inst.lhs)}, {inst.rhs.short_name()}"
    if isinstance(inst, Cast):
        return f"{name}{inst.op} {_ref(inst.value)} to {inst.type}"
    if isinstance(inst, Select):
        return (
            f"{name}select {_ref(inst.cond)}, {_ref(inst.true_value)}, "
            f"{_ref(inst.false_value)}"
        )
    if isinstance(inst, ExtractElement):
        return f"{name}extractelement {_ref(inst.vector)}, {_ref(inst.index)}"
    if isinstance(inst, InsertElement):
        return (
            f"{name}insertelement {_ref(inst.vector)}, {_ref(inst.element)}, "
            f"{_ref(inst.index)}"
        )
    if isinstance(inst, Phi):
        pairs = ", ".join(
            f"[ {v.short_name()}, %{b.name} ]" for v, b in inst.incoming()
        )
        return f"{name}phi {inst.type} {pairs}"
    if isinstance(inst, Call):
        args = ", ".join(_ref(a) for a in inst.args)
        callee = inst.callee.short_name()
        if inst.type.is_void:
            return f"call void {callee}({args})"
        return f"{name}call {inst.type} {callee}({args})"
    if isinstance(inst, Br):
        if inst.is_conditional:
            t, e = inst.targets
            return f"br {_ref(inst.cond)}, label %{t.name}, label %{e.name}"
        return f"br label %{inst.targets[0].name}"
    if isinstance(inst, Ret):
        if inst.value is None:
            return "ret void"
        return f"ret {_ref(inst.value)}"
    if isinstance(inst, Unreachable):
        return "unreachable"
    raise NotImplementedError(f"cannot print {inst.opcode}")


def format_block(block: BasicBlock) -> str:
    lines = [f"{block.name}:"]
    for inst in block.instructions:
        lines.append(f"  {format_instruction(inst)}")
    return "\n".join(lines)


def format_function(func: Function) -> str:
    func.assign_names()
    params = ", ".join(
        f"{a.type} %{a.name}" for a in func.arguments
    )
    if func.is_declaration:
        return f"declare {func.ftype.ret} @{func.name}({params})"
    header = f"define {func.ftype.ret} @{func.name}({params}) {{"
    body = "\n\n".join(format_block(bb) for bb in func.blocks)
    return f"{header}\n{body}\n}}"


def format_module(module: Module) -> str:
    parts = [f"; module {module.name}"]
    for g in module.globals.values():
        init = g.initializer
        if isinstance(init, bytes):
            desc = f"bytes 0x{init.hex()}" if init else "zeroinitializer"
        elif init is None:
            desc = "zeroinitializer"
        else:
            desc = init.short_name()
        parts.append(f"@{g.name} = global {g.value_type} {desc}")
    for ext in module.externals.values():
        parts.append(f"declare {ext.ftype.ret} @{ext.name}(...)")
    for f in module.functions.values():
        parts.append(format_function(f))
    return "\n\n".join(parts) + "\n"
