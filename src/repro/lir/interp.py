"""A reference interpreter for LIR.

The interpreter gives LIR an executable semantics so every pipeline stage can
be differentially tested: the x86 emulator, the lifted IR, the refined IR, the
optimized IR and the generated Arm code must all compute the same results on
data-race-free programs.

Memory is a flat byte array.  Globals are laid out at load time, ``malloc``
is a bump allocator, and each thread gets a private stack region for
``alloca``.  Threads are interpreted with deterministic round-robin
scheduling at a configurable quantum; for the data-race-free programs the
test-suite runs, any interleaving yields the same answer, so determinism is a
feature rather than a restriction.  (Weak-memory *behaviours* are explored by
:mod:`repro.memmodel`, not by this interpreter.)
"""

from __future__ import annotations

import struct
from typing import Callable, Optional

from .function import BasicBlock, Function, Module
from .instructions import (
    GEP,
    Alloca,
    AtomicRMW,
    BinOp,
    Br,
    Call,
    Cast,
    CmpXchg,
    ExtractElement,
    FCmp,
    Fence,
    ICmp,
    InsertElement,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Unreachable,
)
from .types import ArrayType, FloatType, IntType, PointerType, Type, VectorType
from .values import (
    Argument,
    ConstantFloat,
    ConstantInt,
    ConstantPointerNull,
    ConstantVector,
    ExternalFunction,
    GlobalVariable,
    UndefValue,
    Value,
)

GLOBAL_BASE = 0x1000
HEAP_BASE = 0x100000
STACK_BASE = 0x800000
STACK_SIZE = 0x40000
MEMORY_SIZE = 0x800000 + 64 * STACK_SIZE
FUNC_TABLE_BASE = 0x10  # "addresses" for function pointers


class InterpError(Exception):
    """Raised on dynamically ill-formed programs (bad memory, bad call...)."""


class Frame:
    def __init__(self, func: Function, args: list[object]) -> None:
        self.func = func
        self.values: dict[int, object] = {}
        for a, v in zip(func.arguments, args):
            self.values[id(a)] = v
        self.block: BasicBlock = func.entry
        self.prev_block: Optional[BasicBlock] = None
        self.index = 0
        self.sp_mark = 0  # stack pointer to restore on return
        self.ret_target: Optional[Instruction] = None  # call inst awaiting result


class Thread:
    def __init__(self, tid: int, frame: Frame, stack_top: int) -> None:
        self.tid = tid
        self.frames = [frame]
        self.stack_ptr = stack_top
        self.done = False
        self.result: object = None
        self.blocked = False  # waiting on a mutex (not runnable)

    @property
    def frame(self) -> Frame:
        return self.frames[-1]


class Interpreter:
    """Executes a LIR module starting from a named entry function."""

    def __init__(self, module: Module, quantum: int = 64) -> None:
        self.module = module
        self.memory = bytearray(MEMORY_SIZE)
        self.quantum = quantum
        self.heap_ptr = HEAP_BASE
        self.output: list[str] = []
        self.steps = 0
        self.max_steps = 200_000_000
        self.global_addr: dict[str, int] = {}
        self.func_by_addr: dict[int, Function] = {}
        self.func_addr: dict[str, int] = {}
        self.threads: list[Thread] = []
        self.next_tid = 0
        self.externals: dict[str, Callable] = {
            "malloc": self._ext_malloc,
            "spawn": self._ext_spawn,
            "join": self._ext_join,
            "print_i64": self._ext_print_i64,
            "print_f64": self._ext_print_f64,
            "abort": self._ext_abort,
            "thread_id": self._ext_thread_id,
            "sqrt": self._ext_sqrt,
            "pthread_mutex_lock": self._ext_mutex_lock,
            "pthread_mutex_unlock": self._ext_mutex_unlock,
        }
        self._layout_globals()
        self._layout_functions()

    # ---- memory layout --------------------------------------------------
    def _layout_globals(self) -> None:
        addr = GLOBAL_BASE
        for g in self.module.globals.values():
            size = max(1, g.size_bytes())
            addr = (addr + 7) & ~7  # 8-byte alignment
            self.global_addr[g.name] = addr
            init = g.initializer
            if isinstance(init, bytes):
                self.memory[addr : addr + len(init)] = init
            elif isinstance(init, ConstantInt):
                self._store_typed(addr, g.value_type, init.value)
            elif isinstance(init, ConstantFloat):
                self._store_typed(addr, g.value_type, init.value)
            addr += size

    def _layout_functions(self) -> None:
        next_addr = FUNC_TABLE_BASE
        for f in self.module.functions.values():
            self.func_addr[f.name] = next_addr
            self.func_by_addr[next_addr] = f
            next_addr += 1

    # ---- typed memory access -----------------------------------------------
    def _check_range(self, addr: int, size: int) -> None:
        if addr < 0 or addr + size > len(self.memory):
            raise InterpError(f"memory access out of range: {addr:#x}+{size}")

    def load_typed(self, addr: int, type_: Type) -> object:
        self._check_range(addr, type_.size_bytes())
        if isinstance(type_, IntType):
            size = type_.size_bytes()
            raw = int.from_bytes(self.memory[addr : addr + size], "little")
            return raw & type_.mask()
        if isinstance(type_, FloatType):
            fmt = "<f" if type_.bits == 32 else "<d"
            size = type_.size_bytes()
            return struct.unpack(fmt, self.memory[addr : addr + size])[0]
        if isinstance(type_, PointerType):
            return int.from_bytes(self.memory[addr : addr + 8], "little")
        if isinstance(type_, VectorType):
            elems = []
            esize = type_.element.size_bytes()
            for i in range(type_.count):
                elems.append(self.load_typed(addr + i * esize, type_.element))
            return tuple(elems)
        raise InterpError(f"cannot load type {type_}")

    def _store_typed(self, addr: int, type_: Type, value: object) -> None:
        self._check_range(addr, type_.size_bytes())
        if isinstance(type_, IntType):
            size = type_.size_bytes()
            v = int(value) & ((1 << (size * 8)) - 1)
            self.memory[addr : addr + size] = v.to_bytes(size, "little")
        elif isinstance(type_, FloatType):
            fmt = "<f" if type_.bits == 32 else "<d"
            self.memory[addr : addr + type_.size_bytes()] = struct.pack(
                fmt, float(value)
            )
        elif isinstance(type_, PointerType):
            self.memory[addr : addr + 8] = (int(value) & (2**64 - 1)).to_bytes(
                8, "little"
            )
        elif isinstance(type_, VectorType):
            esize = type_.element.size_bytes()
            for i, elem in enumerate(value):  # type: ignore[arg-type]
                self._store_typed(addr + i * esize, type_.element, elem)
        else:
            raise InterpError(f"cannot store type {type_}")

    store_typed = _store_typed

    # ---- value evaluation ---------------------------------------------------
    def _value(self, thread: Thread, v: Value) -> object:
        if isinstance(v, ConstantInt):
            return v.value
        if isinstance(v, ConstantFloat):
            return v.value
        if isinstance(v, ConstantPointerNull):
            return 0
        if isinstance(v, UndefValue):
            if isinstance(v.type, FloatType):
                return 0.0
            if isinstance(v.type, VectorType):
                return tuple([0] * v.type.count)
            return 0
        if isinstance(v, ConstantVector):
            return tuple(
                e.value for e in v.elements  # type: ignore[attr-defined]
            )
        if isinstance(v, GlobalVariable):
            return self.global_addr[v.name]
        if isinstance(v, Function):
            return self.func_addr[v.name]
        if isinstance(v, ExternalFunction):
            return ("external", v.name)
        if isinstance(v, (Instruction, Argument)):
            frame = thread.frame
            if id(v) not in frame.values:
                raise InterpError(
                    f"use of undefined value %{v.name} in {frame.func.name}"
                )
            return frame.values[id(v)]
        raise InterpError(f"cannot evaluate value {v!r}")

    # ---- entry points ------------------------------------------------------
    def run(self, entry: str = "main", args: Optional[list[object]] = None) -> object:
        func = self.module.get_function(entry)
        actual = list(args or [])
        # Missing trailing arguments default to zero, mirroring the machine
        # emulators where registers start zeroed (matters for lifted mains
        # whose type discovery conservatively found parameters).
        while len(actual) < len(func.arguments):
            ftype = func.arguments[len(actual)].type
            actual.append(0.0 if ftype.is_float else 0)
        main = self._make_thread(func, actual)
        while not main.done:
            self._schedule()
        ret = func.ftype.ret
        if isinstance(ret, IntType) and isinstance(main.result, int):
            return _signed(main.result, ret.bits)
        return main.result

    def _make_thread(self, func: Function, args: list[object]) -> Thread:
        tid = self.next_tid
        self.next_tid += 1
        stack_top = STACK_BASE + (tid + 1) * STACK_SIZE - 16
        frame = Frame(func, args)
        thread = Thread(tid, frame, stack_top)
        frame.sp_mark = stack_top
        self.threads.append(thread)
        return thread

    def _schedule(self) -> None:
        ran_any = False
        for thread in list(self.threads):
            if thread.done:
                continue
            ran_any = True
            for _ in range(self.quantum):
                if thread.done:
                    break
                self._step(thread)
        if not ran_any:
            raise InterpError("deadlock: all threads blocked or done")

    # ---- single step -------------------------------------------------------
    def _step(self, thread: Thread) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise InterpError("step budget exceeded (runaway program?)")
        frame = thread.frame
        if frame.index >= len(frame.block.instructions):
            raise InterpError(
                f"fell off the end of block {frame.block.name} in "
                f"{frame.func.name}"
            )
        inst = frame.block.instructions[frame.index]
        self._execute(thread, inst)

    def _advance(self, frame: Frame) -> None:
        frame.index += 1

    def _execute(self, thread: Thread, inst: Instruction) -> None:
        frame = thread.frame
        if isinstance(inst, Alloca):
            size = max(1, inst.size_bytes())
            thread.stack_ptr = (thread.stack_ptr - size) & ~15
            frame.values[id(inst)] = thread.stack_ptr
            self._advance(frame)
        elif isinstance(inst, Load):
            addr = self._value(thread, inst.pointer)
            frame.values[id(inst)] = self.load_typed(int(addr), inst.type)
            self._advance(frame)
        elif isinstance(inst, Store):
            addr = self._value(thread, inst.pointer)
            val = self._value(thread, inst.value)
            self._store_typed(int(addr), inst.value.type, val)
            self._advance(frame)
        elif isinstance(inst, AtomicRMW):
            addr = int(self._value(thread, inst.pointer))
            operand = self._value(thread, inst.value)
            old = self.load_typed(addr, inst.type)
            new = _rmw_apply(inst.op, old, operand, inst.type)
            self._store_typed(addr, inst.type, new)
            frame.values[id(inst)] = old
            self._advance(frame)
        elif isinstance(inst, CmpXchg):
            addr = int(self._value(thread, inst.pointer))
            expected = self._value(thread, inst.expected)
            new = self._value(thread, inst.new)
            old = self.load_typed(addr, inst.type)
            if old == expected:
                self._store_typed(addr, inst.type, new)
            frame.values[id(inst)] = old
            self._advance(frame)
        elif isinstance(inst, Fence):
            self._advance(frame)  # single-copy-atomic memory: fences are no-ops
        elif isinstance(inst, GEP):
            frame.values[id(inst)] = self._eval_gep(thread, inst)
            self._advance(frame)
        elif isinstance(inst, BinOp):
            lhs = self._value(thread, inst.lhs)
            rhs = self._value(thread, inst.rhs)
            frame.values[id(inst)] = _binop_apply(inst.op, lhs, rhs, inst.type)
            self._advance(frame)
        elif isinstance(inst, ICmp):
            lhs = self._value(thread, inst.lhs)
            rhs = self._value(thread, inst.rhs)
            frame.values[id(inst)] = _icmp_apply(
                inst.pred, int(lhs), int(rhs), inst.lhs.type
            )
            self._advance(frame)
        elif isinstance(inst, FCmp):
            lhs = float(self._value(thread, inst.lhs))
            rhs = float(self._value(thread, inst.rhs))
            frame.values[id(inst)] = _fcmp_apply(inst.pred, lhs, rhs)
            self._advance(frame)
        elif isinstance(inst, Cast):
            frame.values[id(inst)] = self._eval_cast(thread, inst)
            self._advance(frame)
        elif isinstance(inst, Select):
            cond = self._value(thread, inst.cond)
            pick = inst.true_value if int(cond) & 1 else inst.false_value
            frame.values[id(inst)] = self._value(thread, pick)
            self._advance(frame)
        elif isinstance(inst, ExtractElement):
            vec = self._value(thread, inst.vector)
            idx = int(self._value(thread, inst.index))
            frame.values[id(inst)] = vec[idx]  # type: ignore[index]
            self._advance(frame)
        elif isinstance(inst, InsertElement):
            vec = list(self._value(thread, inst.vector))  # type: ignore[arg-type]
            idx = int(self._value(thread, inst.index))
            vec[idx] = self._value(thread, inst.element)
            frame.values[id(inst)] = tuple(vec)
            self._advance(frame)
        elif isinstance(inst, Phi):
            # Phi nodes at a block head are evaluated atomically on entry
            # (handled by _enter_block); reaching one here means _enter_block
            # already filled it in, just skip.
            self._advance(frame)
        elif isinstance(inst, Call):
            self._eval_call(thread, inst)
        elif isinstance(inst, Br):
            if inst.is_conditional:
                cond = int(self._value(thread, inst.cond)) & 1
                target = inst.targets[0] if cond else inst.targets[1]
            else:
                target = inst.targets[0]
            self._enter_block(thread, target)
        elif isinstance(inst, Ret):
            result = (
                self._value(thread, inst.value) if inst.value is not None else None
            )
            self._return(thread, result)
        elif isinstance(inst, Unreachable):
            raise InterpError(f"executed unreachable in {frame.func.name}")
        else:
            raise InterpError(f"cannot interpret {inst.opcode}")

    # ---- helpers ----------------------------------------------------------
    def _enter_block(self, thread: Thread, target: BasicBlock) -> None:
        frame = thread.frame
        source = frame.block
        # Evaluate all phis in parallel against the old frame values.
        phi_values = []
        for phi in target.phis():
            incoming = phi.incoming_for(source)
            if incoming is None:
                raise InterpError(
                    f"phi in {target.name} has no incoming for {source.name}"
                )
            phi_values.append((phi, self._value(thread, incoming)))
        for phi, v in phi_values:
            frame.values[id(phi)] = v
        frame.prev_block = source
        frame.block = target
        frame.index = target.first_non_phi_index()

    def _return(self, thread: Thread, result: object) -> None:
        frame = thread.frames.pop()
        thread.stack_ptr = frame.sp_mark
        if not thread.frames:
            thread.done = True
            thread.result = result
            return
        caller = thread.frame
        call_inst = frame.ret_target
        if call_inst is not None and not call_inst.type.is_void:
            caller.values[id(call_inst)] = result
        caller.index += 1

    def _eval_call(self, thread: Thread, inst: Call) -> None:
        frame = thread.frame
        callee = self._value(thread, inst.callee)
        args = [self._value(thread, a) for a in inst.args]
        if isinstance(callee, tuple) and callee[0] == "external":
            handler = self.externals.get(callee[1])
            if handler is None:
                raise InterpError(f"call to unknown external {callee[1]}")
            result = handler(thread, args)
            if not inst.type.is_void:
                frame.values[id(inst)] = result
            frame.index += 1
            return
        func = self.func_by_addr.get(int(callee))  # type: ignore[arg-type]
        if func is None:
            raise InterpError(f"indirect call to bad address {callee}")
        new_frame = Frame(func, args)
        new_frame.sp_mark = thread.stack_ptr
        new_frame.ret_target = inst
        thread.frames.append(new_frame)

    def _eval_gep(self, thread: Thread, inst: GEP) -> int:
        base = int(self._value(thread, inst.pointer))
        indices = [int(self._value(thread, i)) for i in inst.indices]
        addr = base + _signed64(indices[0]) * inst.source_type.size_bytes()
        if len(indices) == 2:
            assert isinstance(inst.source_type, ArrayType)
            addr += _signed64(indices[1]) * inst.source_type.element.size_bytes()
        return addr & (2**64 - 1)

    def _eval_cast(self, thread: Thread, inst: Cast) -> object:
        v = self._value(thread, inst.value)
        src, dst = inst.value.type, inst.type
        op = inst.op
        if op in ("inttoptr", "ptrtoint"):
            return int(v) & (2**64 - 1)
        if op == "trunc":
            return int(v) & dst.mask()  # type: ignore[union-attr]
        if op == "zext":
            return int(v) & src.mask()  # type: ignore[union-attr]
        if op == "sext":
            return _sext(int(v), src.bits, dst.bits)  # type: ignore[union-attr]
        if op == "bitcast":
            return _bitcast(v, src, dst)
        if op in ("sitofp",):
            return float(_signed(int(v), src.bits))  # type: ignore[union-attr]
        if op in ("uitofp",):
            return float(int(v))
        if op in ("fptosi", "fptoui"):
            iv = int(v)  # truncation toward zero
            return iv & dst.mask()  # type: ignore[union-attr]
        if op == "fpext":
            return float(v)
        if op == "fptrunc":
            return struct.unpack("<f", struct.pack("<f", float(v)))[0]
        raise InterpError(f"cannot evaluate cast {op}")

    # ---- externals ---------------------------------------------------------
    def _ext_malloc(self, thread: Thread, args: list[object]) -> int:
        size = int(args[0])
        addr = (self.heap_ptr + 15) & ~15
        self.heap_ptr = addr + max(1, size)
        if self.heap_ptr >= STACK_BASE:
            raise InterpError("heap exhausted")
        return addr

    def _ext_spawn(self, thread: Thread, args: list[object]) -> int:
        fn_addr = int(args[0])
        func = self.func_by_addr.get(fn_addr)
        if func is None:
            raise InterpError(f"spawn of bad function address {fn_addr}")
        child = self._make_thread(func, list(args[1:1 + len(func.arguments)]))
        return child.tid

    def _ext_join(self, thread: Thread, args: list[object]) -> int:
        tid = int(args[0])
        for t in self.threads:
            if t.tid == tid:
                # Run the target thread to completion (cooperative join).
                while not t.done:
                    for _ in range(self.quantum):
                        if t.done:
                            break
                        self._step(t)
                result = t.result
                return int(result) if isinstance(result, int) else 0
        raise InterpError(f"join of unknown thread {tid}")

    def _ext_print_i64(self, thread: Thread, args: list[object]) -> None:
        self.output.append(str(_signed(int(args[0]), 64)))

    def _ext_print_f64(self, thread: Thread, args: list[object]) -> None:
        self.output.append(f"{float(args[0]):.6f}")

    def _ext_abort(self, thread: Thread, args: list[object]) -> None:
        raise InterpError("program aborted")

    def _ext_thread_id(self, thread: Thread, args: list[object]) -> int:
        return thread.tid

    def _ext_sqrt(self, thread: Thread, args: list[object]) -> float:
        return float(args[0]) ** 0.5

    # Mutexes use the pthread lock-word convention shared with the machine
    # emulators: first 8 bytes of the mutex, 0 = unlocked, 1 = held.
    def _ext_mutex_lock(self, thread: Thread, args: list[object]) -> int:
        addr = int(args[0])
        self._check_range(addr, 8)
        thread.blocked = True
        try:
            while int.from_bytes(self.memory[addr:addr + 8], "little") != 0:
                # Cooperative block (mirrors _ext_join): run the other
                # runnable threads until the holder releases the lock.
                progressed = False
                for t in list(self.threads):
                    if t is thread or t.done or t.blocked:
                        continue
                    progressed = True
                    for _ in range(self.quantum):
                        if t.done:
                            break
                        self._step(t)
                if not progressed:
                    raise InterpError(
                        "deadlock: mutex held and no runnable thread")
        finally:
            thread.blocked = False
        self.memory[addr:addr + 8] = (1).to_bytes(8, "little")
        return 0

    def _ext_mutex_unlock(self, thread: Thread, args: list[object]) -> int:
        addr = int(args[0])
        self._check_range(addr, 8)
        self.memory[addr:addr + 8] = (0).to_bytes(8, "little")
        return 0


# ---- pure helpers ------------------------------------------------------


def _signed(v: int, bits: int) -> int:
    v &= (1 << bits) - 1
    if v >= 1 << (bits - 1):
        v -= 1 << bits
    return v


def _signed64(v: int) -> int:
    return _signed(v, 64)


def _sext(v: int, from_bits: int, to_bits: int) -> int:
    return _signed(v, from_bits) & ((1 << to_bits) - 1)


def _bitcast(v: object, src: Type, dst: Type) -> object:
    raw = _to_bytes(v, src)
    return _from_bytes(raw, dst)


def _to_bytes(v: object, t: Type) -> bytes:
    if isinstance(t, IntType):
        return (int(v) & t.mask()).to_bytes(t.size_bytes(), "little")
    if isinstance(t, FloatType):
        return struct.pack("<f" if t.bits == 32 else "<d", float(v))
    if isinstance(t, PointerType):
        return (int(v) & (2**64 - 1)).to_bytes(8, "little")
    if isinstance(t, VectorType):
        return b"".join(_to_bytes(e, t.element) for e in v)  # type: ignore[union-attr]
    raise InterpError(f"cannot bitcast from {t}")


def _from_bytes(raw: bytes, t: Type) -> object:
    if isinstance(t, IntType):
        return int.from_bytes(raw[: t.size_bytes()], "little") & t.mask()
    if isinstance(t, FloatType):
        fmt = "<f" if t.bits == 32 else "<d"
        return struct.unpack(fmt, raw[: t.size_bytes()])[0]
    if isinstance(t, PointerType):
        return int.from_bytes(raw[:8], "little")
    if isinstance(t, VectorType):
        esize = t.element.size_bytes()
        return tuple(
            _from_bytes(raw[i * esize : (i + 1) * esize], t.element)
            for i in range(t.count)
        )
    raise InterpError(f"cannot bitcast to {t}")


def _binop_apply(op: str, lhs: object, rhs: object, type_: Type) -> object:
    if isinstance(type_, VectorType):
        return tuple(
            _binop_apply(op, a, b, type_.element)
            for a, b in zip(lhs, rhs)  # type: ignore[arg-type]
        )
    if op.startswith("f"):
        a, b = float(lhs), float(rhs)
        if op == "fadd":
            return a + b
        if op == "fsub":
            return a - b
        if op == "fmul":
            return a * b
        if op == "fdiv":
            return a / b if b != 0.0 else float("inf") if a > 0 else (
                float("-inf") if a < 0 else float("nan")
            )
        raise InterpError(f"bad float op {op}")
    assert isinstance(type_, IntType)
    bits = type_.bits
    mask = type_.mask()
    a, b = int(lhs) & mask, int(rhs) & mask
    sa, sb = _signed(a, bits), _signed(b, bits)
    if op == "add":
        return (a + b) & mask
    if op == "sub":
        return (a - b) & mask
    if op == "mul":
        return (a * b) & mask
    if op == "sdiv":
        if sb == 0:
            raise InterpError("sdiv by zero")
        q = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            q = -q
        return q & mask
    if op == "udiv":
        if b == 0:
            raise InterpError("udiv by zero")
        return (a // b) & mask
    if op == "srem":
        if sb == 0:
            raise InterpError("srem by zero")
        q = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            q = -q
        return (sa - q * sb) & mask
    if op == "urem":
        if b == 0:
            raise InterpError("urem by zero")
        return (a % b) & mask
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "shl":
        return (a << (b % bits)) & mask
    if op == "lshr":
        return (a >> (b % bits)) & mask
    if op == "ashr":
        return (sa >> (b % bits)) & mask
    raise InterpError(f"bad int op {op}")


def _icmp_apply(pred: str, lhs: int, rhs: int, type_: Type) -> int:
    bits = type_.bits if isinstance(type_, IntType) else 64
    mask = (1 << bits) - 1
    ua, ub = lhs & mask, rhs & mask
    sa, sb = _signed(ua, bits), _signed(ub, bits)
    table = {
        "eq": ua == ub,
        "ne": ua != ub,
        "slt": sa < sb,
        "sle": sa <= sb,
        "sgt": sa > sb,
        "sge": sa >= sb,
        "ult": ua < ub,
        "ule": ua <= ub,
        "ugt": ua > ub,
        "uge": ua >= ub,
    }
    return 1 if table[pred] else 0


def _fcmp_apply(pred: str, a: float, b: float) -> int:
    unordered = a != a or b != b  # NaN check
    if pred == "ord":
        return 0 if unordered else 1
    if pred == "uno":
        return 1 if unordered else 0
    if unordered:
        return 0
    table = {
        "oeq": a == b,
        "one": a != b,
        "olt": a < b,
        "ole": a <= b,
        "ogt": a > b,
        "oge": a >= b,
    }
    return 1 if table[pred] else 0


def _rmw_apply(op: str, old: object, operand: object, type_: Type) -> object:
    assert isinstance(type_, IntType)
    mask = type_.mask()
    a, b = int(old) & mask, int(operand) & mask
    if op == "xchg":
        return b
    if op == "add":
        return (a + b) & mask
    if op == "sub":
        return (a - b) & mask
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "max":
        return a if _signed(a, type_.bits) >= _signed(b, type_.bits) else b
    if op == "min":
        return a if _signed(a, type_.bits) <= _signed(b, type_.bits) else b
    raise InterpError(f"bad rmw op {op}")
