"""LIR — the LLVM-like SSA intermediate representation used by Lasagne.

Public API re-exports the commonly used pieces so downstream code can write
``from repro.lir import Module, IRBuilder, I64`` etc.
"""

from .builder import IRBuilder
from .clone import CloneError, clone_instruction, clone_module
from .dominators import DominatorTree
from .function import BasicBlock, Function, Module
from .instructions import (
    GEP,
    Alloca,
    AtomicRMW,
    BinOp,
    Br,
    Call,
    Cast,
    CmpXchg,
    ExtractElement,
    FCmp,
    Fence,
    ICmp,
    InsertElement,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Unreachable,
    BINOPS,
    CAST_OPS,
    FENCE_KINDS,
    ICMP_PREDS,
    FCMP_PREDS,
    INT_BINOPS,
    FLOAT_BINOPS,
    RMW_OPS,
)
from .interp import Interpreter, InterpError
from .parser import IRParseError, parse_module, parse_type
from .printer import format_function, format_instruction, format_module
from .types import (
    F32,
    F64,
    I1,
    I8,
    I16,
    I32,
    I64,
    VOID,
    ArrayType,
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    Type,
    VectorType,
    VoidType,
    ptr,
)
from .values import (
    Argument,
    Constant,
    ConstantFloat,
    ConstantInt,
    ConstantPointerNull,
    ConstantVector,
    ExternalFunction,
    GlobalValue,
    GlobalVariable,
    UndefValue,
    Value,
)
from .verifier import VerificationError, verify_function, verify_module

__all__ = [
    "IRBuilder", "DominatorTree", "BasicBlock", "Function", "Module",
    "CloneError", "clone_instruction", "clone_module",
    "GEP", "Alloca", "AtomicRMW", "BinOp", "Br", "Call", "Cast", "CmpXchg",
    "ExtractElement", "FCmp", "Fence", "ICmp", "InsertElement", "Instruction",
    "Load", "Phi", "Ret", "Select", "Store", "Unreachable",
    "BINOPS", "CAST_OPS", "FENCE_KINDS", "ICMP_PREDS", "FCMP_PREDS",
    "INT_BINOPS", "FLOAT_BINOPS", "RMW_OPS",
    "Interpreter", "InterpError",
    "IRParseError", "parse_module", "parse_type",
    "format_function", "format_instruction", "format_module",
    "F32", "F64", "I1", "I8", "I16", "I32", "I64", "VOID",
    "ArrayType", "FloatType", "FunctionType", "IntType", "PointerType",
    "Type", "VectorType", "VoidType", "ptr",
    "Argument", "Constant", "ConstantFloat", "ConstantInt",
    "ConstantPointerNull", "ConstantVector", "ExternalFunction",
    "GlobalValue", "GlobalVariable", "UndefValue", "Value",
    "VerificationError", "verify_function", "verify_module",
]
