"""Type system for LIR, the LLVM-like intermediate representation.

LIR mirrors the slice of LLVM's type system that Lasagne's pipeline needs:
integers of arbitrary width, 32/64-bit floats, typed pointers, fixed arrays,
fixed vectors (for SSE lifting), and function types.  Types are immutable and
compared structurally.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class Type:
    """Base class for all LIR types."""

    def size_bytes(self) -> int:
        """Size of a value of this type in memory, in bytes."""
        raise NotImplementedError(f"{type(self).__name__} has no memory size")

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_int(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_vector(self) -> bool:
        return isinstance(self, VectorType)

    @property
    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    @property
    def is_function(self) -> bool:
        return isinstance(self, FunctionType)


@dataclass(frozen=True)
class VoidType(Type):
    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class IntType(Type):
    bits: int

    def __post_init__(self) -> None:
        if self.bits <= 0:
            raise ValueError(f"integer width must be positive, got {self.bits}")

    def size_bytes(self) -> int:
        return max(1, (self.bits + 7) // 8)

    def mask(self) -> int:
        return (1 << self.bits) - 1

    def __str__(self) -> str:
        return f"i{self.bits}"


@dataclass(frozen=True)
class FloatType(Type):
    bits: int

    def __post_init__(self) -> None:
        if self.bits not in (32, 64):
            raise ValueError(f"float width must be 32 or 64, got {self.bits}")

    def size_bytes(self) -> int:
        return self.bits // 8

    def __str__(self) -> str:
        return "float" if self.bits == 32 else "double"


@dataclass(frozen=True)
class PointerType(Type):
    pointee: Type

    def size_bytes(self) -> int:
        return 8

    def __str__(self) -> str:
        return f"{self.pointee}*"


@dataclass(frozen=True)
class ArrayType(Type):
    element: Type
    count: int

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError(f"array count must be non-negative, got {self.count}")

    def size_bytes(self) -> int:
        return self.element.size_bytes() * self.count

    def __str__(self) -> str:
        return f"[{self.count} x {self.element}]"


@dataclass(frozen=True)
class VectorType(Type):
    element: Type
    count: int

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError(f"vector count must be positive, got {self.count}")

    def size_bytes(self) -> int:
        return self.element.size_bytes() * self.count

    def bit_width(self) -> int:
        return self.size_bytes() * 8

    def __str__(self) -> str:
        return f"<{self.count} x {self.element}>"


@dataclass(frozen=True)
class FunctionType(Type):
    ret: Type
    params: tuple[Type, ...] = field(default_factory=tuple)
    variadic: bool = False

    def __str__(self) -> str:
        parts = [str(p) for p in self.params]
        if self.variadic:
            parts.append("...")
        return f"{self.ret} ({', '.join(parts)})"


# Commonly used singletons.
VOID = VoidType()
I1 = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)
F32 = FloatType(32)
F64 = FloatType(64)


def ptr(pointee: Type) -> PointerType:
    """Shorthand constructor for pointer types."""
    return PointerType(pointee)


I8PTR = ptr(I8)
I32PTR = ptr(I32)
I64PTR = ptr(I64)
F64PTR = ptr(F64)
