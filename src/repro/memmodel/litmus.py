"""Standard litmus tests used throughout the paper (Figures 1, 2, 9, 10)."""

from __future__ import annotations

from .events import Fence, Ld, Lock, Program, Reg, Rmw, St, Unlock

# Figure 1 (SB): non-SC outcome a=b=0 allowed in both x86 and Arm.
SB = Program(
    name="SB",
    threads=[
        [St("X", 1), Ld("Y", "a")],
        [St("Y", 1), Ld("X", "b")],
    ],
)

# Figure 1 (MP): outcome a=1,b=0 disallowed in x86, allowed in Arm.
MP = Program(
    name="MP",
    threads=[
        [St("X", 1), St("Y", 1)],
        [Ld("Y", "a"), Ld("X", "b")],
    ],
)

# Load buffering.
LB = Program(
    name="LB",
    threads=[
        [Ld("X", "a"), St("Y", 1)],
        [Ld("Y", "b"), St("X", 1)],
    ],
)

# LB with data dependencies on both sides (no thin-air values).
LB_DATA = Program(
    name="LB+datas",
    threads=[
        [Ld("X", "a"), St("Y", Reg("a"))],
        [Ld("Y", "b"), St("X", Reg("b"))],
    ],
)

# Coherence tests (CoRR / CoWW shapes exercised through sc-per-loc).
CoRR = Program(
    name="CoRR",
    threads=[
        [St("X", 1)],
        [Ld("X", "a"), Ld("X", "b")],
    ],
)

CoWW = Program(
    name="CoWW",
    threads=[
        [St("X", 1), St("X", 2)],
    ],
)

# Store buffering with full fences: a=b=0 forbidden everywhere.
SB_FENCED_X86 = Program(
    name="SB+mfences",
    threads=[
        [St("X", 1), Fence("mfence"), Ld("Y", "a")],
        [St("Y", 1), Fence("mfence"), Ld("X", "b")],
    ],
)

SB_FENCED_ARM = Program(
    name="SB+dmbs",
    threads=[
        [St("X", 1), Fence("ff"), Ld("Y", "a")],
        [St("Y", 1), Fence("ff"), Ld("X", "b")],
    ],
)

SB_FENCED_LIMM = Program(
    name="SB+fscs",
    threads=[
        [St("X", 1), Fence("sc"), Ld("Y", "a")],
        [St("Y", 1), Fence("sc"), Ld("X", "b")],
    ],
)

# Figure 9: the MP program after the x86→IR mapping (Fww before the second
# store, Frm after the first load) and after the IR→Arm mapping.
MP_MAPPED_IR = Program(
    name="MP-mapped-IR",
    threads=[
        [St("X", 1), Fence("ww"), St("Y", 1)],
        [Ld("Y", "a"), Fence("rm"), Ld("X", "b")],
    ],
)

MP_MAPPED_ARM = Program(
    name="MP-mapped-Arm",
    threads=[
        [St("X", 1), Fence("st"), St("Y", 1)],
        [Ld("Y", "a"), Fence("ld"), Ld("X", "b")],
    ],
)

# Figure 10 left: two threads doing  Wna ; RMWsc  each.  The distinguishing
# observation is both RMWs succeeding (reading 0): forbidden with the DMBFF
# fences of the IR→Arm mapping, allowed on bare Arm.  (The paper states the
# outcome as X=Y=2; with registers on the RMW reads the same witness is
# directly observable.)
FIG10_LEFT_IR = Program(
    name="Fig10-left-IR",
    threads=[
        [St("X", 1), Rmw("Y", 0, 2, reg="r")],
        [St("Y", 1), Rmw("X", 0, 2, reg="r")],
    ],
)

# Figure 10 right: RMWsc ; Rna each; a=b=0 forbidden.
FIG10_RIGHT_IR = Program(
    name="Fig10-right-IR",
    threads=[
        [Rmw("X", 0, 2), Ld("Y", "a")],
        [Rmw("Y", 0, 2), Ld("X", "b")],
    ],
)

ALL_LITMUS = [
    SB, MP, LB, LB_DATA, CoRR, CoWW,
    SB_FENCED_X86, SB_FENCED_ARM, SB_FENCED_LIMM,
    MP_MAPPED_IR, MP_MAPPED_ARM,
    FIG10_LEFT_IR, FIG10_RIGHT_IR,
]


def register_outcome(execution_outcome: frozenset, **regs: int) -> bool:
    """True when the outcome contains the given register observations,
    written as ``register_outcome(o, t1_a=1, t2_b=0)``."""
    wanted = {
        (f"t{key.split('_')[0][1:]}:{key.split('_', 1)[1]}", val)
        for key, val in regs.items()
    }
    return wanted <= set(execution_outcome)


def has_outcome(outcomes: set[frozenset], **regs: int) -> bool:
    return any(register_outcome(o, **regs) for o in outcomes)


# ---- extended battery ------------------------------------------------------

# Appendix A: MP with release store / acquire load — forbidden on Arm.
MP_RELACQ = Program(
    name="MP+rel+acq",
    threads=[
        [St("X", 1), St("Y", 1, ordering="rel")],
        [Ld("Y", "a", ordering="acq"), Ld("X", "b")],
    ],
)

# Write-to-read causality (WRC): with full fences, a=1 ∧ b=1 ∧ c=0 forbidden.
WRC = Program(
    name="WRC",
    threads=[
        [St("X", 1)],
        [Ld("X", "a"), Fence("ff"), St("Y", 1)],
        [Ld("Y", "b"), Fence("ff"), Ld("X", "c")],
    ],
)

WRC_UNFENCED = Program(
    name="WRC-unfenced",
    threads=[
        [St("X", 1)],
        [Ld("X", "a"), St("Y", 1)],
        [Ld("Y", "b"), Ld("X", "c")],
    ],
)

# Independent reads of independent writes; plain Arm allows the split.
IRIW = Program(
    name="IRIW",
    threads=[
        [St("X", 1)],
        [St("Y", 1)],
        [Ld("X", "a"), Ld("Y", "b")],
        [Ld("Y", "c"), Ld("X", "d")],
    ],
)

IRIW_FENCED_ARM = Program(
    name="IRIW+dmbs",
    threads=[
        [St("X", 1)],
        [St("Y", 1)],
        [Ld("X", "a"), Fence("ff"), Ld("Y", "b")],
        [Ld("Y", "c"), Fence("ff"), Ld("X", "d")],
    ],
)

# S: write-then-write against read-then-write on the same pair.
S_TEST = Program(
    name="S",
    threads=[
        [St("X", 2), St("Y", 1)],
        [Ld("Y", "a"), St("X", 1)],
    ],
)

# R: two writers, one also reads.
R_TEST = Program(
    name="R",
    threads=[
        [St("X", 1), St("Y", 1)],
        [St("Y", 2), Ld("X", "a")],
    ],
)

# 2+2W: write-write against write-write.
TWO_PLUS_TWO_W = Program(
    name="2+2W",
    threads=[
        [St("X", 1), St("Y", 2)],
        [St("Y", 1), St("X", 2)],
    ],
)

EXTENDED_LITMUS = [
    MP_RELACQ, WRC, WRC_UNFENCED, IRIW, IRIW_FENCED_ARM, S_TEST, R_TEST,
    TWO_PLUS_TWO_W,
]
ALL_LITMUS = ALL_LITMUS + EXTENDED_LITMUS


# ---- lock-based battery ----------------------------------------------------
#
# Lock/Unlock are blocking sc RMWs (see events.Lock): mutual exclusion plus
# full LIMM ordering across the critical-section boundary.  These programs
# exercise the sync refinement of the delay-set analysis: conflict edges
# between accesses whose must-locksets intersect cannot be part of a
# critical cycle, so the interior Frm/Fww fences of a protected section are
# provably redundant — which the enumeration gate then re-verifies.

# MP with both threads inside the same critical section: every interior
# fence is redundant once sync is taken into account.
MP_LOCKED = Program(
    name="MP+locks",
    threads=[
        [Lock("L"), St("X", 1), St("Y", 1), Unlock("L")],
        [Lock("L"), Ld("Y", "a"), Ld("X", "b"), Unlock("L")],
    ],
)

# SB under a common lock: the a=b=0 weak outcome is already excluded by
# mutual exclusion, and the interior fences are sync-redundant.
SB_LOCKED = Program(
    name="SB+locks",
    threads=[
        [Lock("L"), St("X", 1), Ld("Y", "a"), Unlock("L")],
        [Lock("L"), St("Y", 1), Ld("X", "b"), Unlock("L")],
    ],
)

# MP where only the writer locks: the reader races, the locksets do not
# intersect on the conflicting pairs, and no sync elision may fire.
MP_LOCKED_HALF = Program(
    name="MP+lock+race",
    threads=[
        [Lock("L"), St("X", 1), St("Y", 1), Unlock("L")],
        [Ld("Y", "a"), Ld("X", "b")],
    ],
)

# MP under *different* locks: both threads synchronize, but never with each
# other — must-locksets are disjoint, so the refinement must keep every
# conflict edge (and the analysis must not elide the interior fences).
MP_TWO_LOCKS = Program(
    name="MP+2locks",
    threads=[
        [Lock("L1"), St("X", 1), St("Y", 1), Unlock("L1")],
        [Lock("L2"), Ld("Y", "a"), Ld("X", "b"), Unlock("L2")],
    ],
)

# Early unlock: X is protected, Y is accessed outside the critical section.
# Only the X-side fences are sync-redundant.
MP_EARLY_UNLOCK = Program(
    name="MP+early-unlock",
    threads=[
        [Lock("L"), St("X", 1), Unlock("L"), St("Y", 1)],
        [Ld("Y", "a"), Lock("L"), Ld("X", "b"), Unlock("L")],
    ],
)

LOCK_LITMUS = [
    MP_LOCKED, SB_LOCKED, MP_LOCKED_HALF, MP_TWO_LOCKS, MP_EARLY_UNLOCK,
]
ALL_LITMUS = ALL_LITMUS + LOCK_LITMUS


def is_x86_source(program: Program) -> bool:
    """Is ``program`` expressible as x86/TSO source code?  True when every
    operation is a plain load/store, an RMW, or an MFENCE — exactly the
    shapes :func:`repro.memmodel.mappings.map_x86_to_ir` translates
    faithfully (acquire/release orderings and Arm fences are not x86)."""
    for thread in program.threads:
        for op in thread:
            if isinstance(op, (Ld, St)):
                if op.ordering != "plain":
                    return False
            elif isinstance(op, Rmw):
                continue
            elif isinstance(op, Fence):
                if op.kind != "mfence":
                    return False
            else:
                return False
    return True


# The pure-x86 subset of the battery: the input corpus for the delay-set
# enumeration gate (`repro litmus --delay-sets`), which maps each program
# through Fig. 8a, elides redundant fences, and proves by exhaustive
# enumeration that no new weak behaviour appears vs the TSO source.
X86_SOURCE_CORPUS = [p for p in ALL_LITMUS if is_x86_source(p)]
