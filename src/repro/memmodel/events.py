"""Litmus programs and execution events (§6.1 of the paper).

A litmus program is a list of threads; each thread is a straight-line list
of operations.  Operations are architecture-neutral; which *model* judges an
execution decides how fences and access orderings are interpreted:

* ``Ld(loc, reg)`` — load into a thread-local register;
* ``St(loc, value)`` — store a constant, or ``St(loc, Reg(r))`` to store a
  previously-loaded register (creating a *data dependency*);
* ``Rmw(loc, expect, new)`` — compare-and-swap; succeeds iff the value read
  equals ``expect`` (generates an rmw-related R/W pair), fails otherwise
  (generates a lone R);
* ``Fence(kind)`` — ``"mfence"`` (x86), ``"ff"``/``"ld"``/``"st"`` (Arm
  DMBFF/DMBLD/DMBST), ``"sc"``/``"rm"``/``"ww"`` (LIMM Fsc/Frm/Fww).

Loads and stores carry an ``ordering`` tag: ``"plain"`` for architecture
accesses and LIMM non-atomics, ``"sc"`` for LIMM seq_cst accesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union


@dataclass(frozen=True)
class Reg:
    """Reference to a thread-local register (for data dependencies)."""

    name: str


@dataclass(frozen=True)
class Ld:
    loc: str
    reg: str
    ordering: str = "plain"


@dataclass(frozen=True)
class St:
    loc: str
    value: Union[int, Reg]
    ordering: str = "plain"


@dataclass(frozen=True)
class Rmw:
    loc: str
    expect: int
    new: int
    reg: str = ""  # optional register receiving the read value
    # A *blocking* RMW models a synchronization primitive that retries until
    # it succeeds (a spinlock acquire/release): enumeration only considers
    # executions where it succeeds — the failed attempts are spin iterations
    # of the same operation, not distinct behaviours.
    blocking: bool = False
    sync: str = ""  # "acquire" / "release" for lock operations, else ""


def Lock(loc: str) -> Rmw:
    """A spinlock acquire: a blocking CAS(0 -> 1) on ``loc``.

    Both halves are sc events, so LIMM's ord3/ord4 order every po-earlier
    and po-later access across the lock — which is what makes sync-based
    fence elision between Lock/Unlock sound (see docs/analysis.md §6).
    """
    return Rmw(loc, 0, 1, blocking=True, sync="acquire")


def Unlock(loc: str) -> Rmw:
    """A spinlock release: a blocking RMW(1 -> 0) on ``loc``.

    Modeled as an RMW rather than a plain store: a plain-store unlock would
    let LIMM delay a protected plain read past the releasing store, which is
    observable (and unsound) once another thread acquires the lock.
    """
    return Rmw(loc, 1, 0, blocking=True, sync="release")


@dataclass(frozen=True)
class Fence:
    kind: str


@dataclass(frozen=True)
class CtrlDep:
    """Marks all *subsequent* ops of the thread as control-dependent on the
    load that defined ``reg`` (models a conditional branch on the value).
    Generates no event; contributes to Arm's ``dob`` via ``ctrl``."""

    reg: str


Op = Union[Ld, St, Rmw, Fence, CtrlDep]


@dataclass
class Program:
    """A litmus test: initial values (default 0) and threads of ops."""

    threads: list[list[Op]]
    init: dict[str, int] = field(default_factory=dict)
    name: str = ""

    def locations(self) -> list[str]:
        locs = set(self.init)
        for thread in self.threads:
            for op in thread:
                if isinstance(op, (Ld, St, Rmw)):
                    locs.add(op.loc)
        return sorted(locs)


# ---- events ----------------------------------------------------------------


@dataclass(frozen=True)
class Event:
    eid: int
    tid: int            # 0 = initialization
    kind: str           # 'R', 'W' or 'F'
    loc: Optional[str]  # None for fences
    val: Optional[int]  # read or written value; None for fences
    ordering: str = "plain"   # 'plain', 'sc', or fence kind for F events
    po_index: int = 0   # position within the thread
    op_index: int = 0   # source operation index (R and W of an RMW share it)

    @property
    def is_read(self) -> bool:
        return self.kind == "R"

    @property
    def is_write(self) -> bool:
        return self.kind == "W"

    @property
    def is_fence(self) -> bool:
        return self.kind == "F"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_fence:
            return f"F{self.eid}(t{self.tid},{self.ordering})"
        tag = self.ordering if self.ordering != "plain" else ""
        return f"{self.kind}{tag}{self.eid}(t{self.tid},{self.loc}={self.val})"


@dataclass
class Execution:
    """A candidate execution: events plus po/rf/co/rmw and dependencies."""

    events: list[Event]
    po: set[tuple[int, int]]
    rf: dict[int, int]                  # read eid -> write eid
    co: dict[str, list[int]]            # loc -> write eids in coherence order
    rmw: set[tuple[int, int]]           # (read eid, write eid)
    data: set[tuple[int, int]] = field(default_factory=set)
    ctrl: set[tuple[int, int]] = field(default_factory=set)
    registers: dict[tuple[int, str], int] = field(default_factory=dict)

    def event(self, eid: int) -> Event:
        return self.events[eid]

    def reads(self) -> list[Event]:
        return [e for e in self.events if e.is_read]

    def writes(self) -> list[Event]:
        return [e for e in self.events if e.is_write]

    def co_pairs(self) -> set[tuple[int, int]]:
        pairs = set()
        for order in self.co.values():
            for i in range(len(order)):
                for j in range(i + 1, len(order)):
                    pairs.add((order[i], order[j]))
        return pairs

    def fr_pairs(self) -> set[tuple[int, int]]:
        """from-read: fr = rf^-1 ; co."""
        co_pairs = self.co_pairs()
        fr = set()
        for read_eid, write_eid in self.rf.items():
            for w1, w2 in co_pairs:
                if w1 == write_eid:
                    fr.add((read_eid, w2))
        return fr

    def rf_pairs(self) -> set[tuple[int, int]]:
        return {(w, r) for r, w in self.rf.items()}

    def same_thread(self, a: int, b: int) -> bool:
        return (
            self.events[a].tid == self.events[b].tid
            and self.events[a].tid != 0
        )

    def external(self, pairs: set[tuple[int, int]]) -> set[tuple[int, int]]:
        """Pairs not related by po (init-thread events count as external)."""
        return {
            (a, b)
            for a, b in pairs
            if (a, b) not in self.po and (b, a) not in self.po
        }

    def behaviour(self) -> frozenset[tuple[str, int]]:
        """Final memory values: the co-maximal write per location."""
        out = []
        for loc, order in self.co.items():
            final = self.events[order[-1]]
            out.append((loc, final.val))
        return frozenset(out)

    def outcome(self) -> frozenset[tuple[str, int]]:
        """Final memory values plus observed register values."""
        regs = frozenset(
            (f"t{tid}:{name}", value)
            for (tid, name), value in self.registers.items()
        )
        return self.behaviour() | regs


def transitive_closure(pairs: set[tuple[int, int]]) -> set[tuple[int, int]]:
    closure = set(pairs)
    changed = True
    while changed:
        changed = False
        new = set()
        for a, b in closure:
            for c, d in closure:
                if b == c and (a, d) not in closure:
                    new.add((a, d))
        if new:
            closure |= new
            changed = True
    return closure


def is_irreflexive(pairs: set[tuple[int, int]]) -> bool:
    return all(a != b for a, b in pairs)


def is_acyclic(pairs: set[tuple[int, int]]) -> bool:
    return is_irreflexive(transitive_closure(pairs))


def compose(
    r1: set[tuple[int, int]], r2: set[tuple[int, int]]
) -> set[tuple[int, int]]:
    by_first: dict[int, list[int]] = {}
    for a, b in r2:
        by_first.setdefault(a, []).append(b)
    return {(a, d) for a, b in r1 for d in by_first.get(b, ())}
