"""The verified mapping schemes of Figure 8, as program transformers.

``map_x86_to_ir`` implements Fig. 8a (x86 → LIMM), ``map_ir_to_arm``
implements Fig. 8b (LIMM → Arm), and their composition is Fig. 8c.
``check_mapping`` states Theorem 7.1 over enumerated executions: every
consistent *target* behaviour must be a consistent *source* behaviour.
(The paper proves this in Agda; we check it exhaustively per program.)
"""

from __future__ import annotations

from .axioms import behaviours, outcomes
from .events import Fence, Ld, Program, Rmw, St


def map_x86_to_ir(program: Program) -> Program:
    """Fig. 8a: ld → ldna;Frm   st → Fww;stna   RMW → RMWsc
    MFENCE → Fsc."""
    threads = []
    for thread in program.threads:
        ops = []
        for op in thread:
            if isinstance(op, Ld):
                ops.append(Ld(op.loc, op.reg, "plain"))
                ops.append(Fence("rm"))
            elif isinstance(op, St):
                ops.append(Fence("ww"))
                ops.append(St(op.loc, op.value, "plain"))
            elif isinstance(op, Rmw):
                ops.append(op)  # RMWsc
            elif isinstance(op, Fence):
                if op.kind != "mfence":
                    raise ValueError(f"non-x86 fence {op.kind} in source")
                ops.append(Fence("sc"))
            else:
                raise TypeError(op)
        threads.append(ops)
    return Program(threads, dict(program.init), f"{program.name}→IR")


def map_ir_to_arm(program: Program) -> Program:
    """Fig. 8b: ldna → ld   stna → st   RMWsc → DMBFF;RMW;DMBFF
    Frm → DMBLD   Fww → DMBST   Fsc → DMBFF."""
    threads = []
    for thread in program.threads:
        ops = []
        for op in thread:
            if isinstance(op, Ld):
                ops.append(Ld(op.loc, op.reg, "plain"))
            elif isinstance(op, St):
                ops.append(St(op.loc, op.value, "plain"))
            elif isinstance(op, Rmw):
                ops.append(Fence("ff"))
                ops.append(op)
                ops.append(Fence("ff"))
            elif isinstance(op, Fence):
                kind = {"rm": "ld", "ww": "st", "sc": "ff"}.get(op.kind)
                if kind is None:
                    raise ValueError(f"non-IR fence {op.kind} in source")
                ops.append(Fence(kind))
            else:
                raise TypeError(op)
        threads.append(ops)
    return Program(threads, dict(program.init), f"{program.name}→Arm")


def map_x86_to_arm(program: Program) -> Program:
    """Fig. 8c: the composition of the two schemes."""
    return map_ir_to_arm(map_x86_to_ir(program))


def check_mapping(
    source: Program,
    source_model: str,
    target: Program,
    target_model: str,
    compare: str = "behaviour",
) -> tuple[bool, set, set]:
    """Theorem 7.1 check: Behav(target) ⊆ Behav(source).

    ``compare="outcome"`` additionally includes register observations,
    which is a stronger property that holds on our litmus battery.
    Returns (holds, source set, target set).
    """
    fn = behaviours if compare == "behaviour" else outcomes
    src = fn(source, source_model)
    tgt = fn(target, target_model)
    return tgt <= src, src, tgt


def check_x86_to_arm(program: Program, compare: str = "outcome") -> bool:
    """End-to-end Fig. 8c correctness on one litmus program."""
    target = map_x86_to_arm(program)
    holds, _, _ = check_mapping(program, "x86", target, "arm", compare)
    return holds


def check_x86_to_ir(program: Program, compare: str = "outcome") -> bool:
    target = map_x86_to_ir(program)
    holds, _, _ = check_mapping(program, "x86", target, "limm", compare)
    return holds


def check_ir_to_arm(program: Program, compare: str = "outcome") -> bool:
    target = map_ir_to_arm(program)
    holds, _, _ = check_mapping(program, "limm", target, "arm", compare)
    return holds


# ---- precision witnesses (Definition 7.2) -----------------------------------


def weaken_fences(program: Program, replace: dict[str, str | None]) -> Program:
    """Replace (or drop, when mapped to None) fence kinds — used to show a
    mapping's fences are *necessary* (precision, Def. 7.2)."""
    threads = []
    for thread in program.threads:
        ops = []
        for op in thread:
            if isinstance(op, Fence) and op.kind in replace:
                new_kind = replace[op.kind]
                if new_kind is not None:
                    ops.append(Fence(new_kind))
            else:
                ops.append(op)
        threads.append(ops)
    return Program(threads, dict(program.init), f"{program.name}-weakened")


# ---- reverse direction: Arm → IR → x86 (Appendix B) --------------------------
#
# The appendix defines a precise weak-to-strong mapping.  Our source text
# omits the appendix body, so the scheme below is derived from the models
# and *checked* by enumeration like everything else:
#
# * Arm→IR: LIMM deliberately has no dependency-based ordering (§6.3), but
#   Arm's dob orders dependent accesses — so an Arm load maps to
#   ``ldna;Frm``, which over-approximates every dependency edge out of the
#   load.  Stores map plainly; DMB fences map to their LIMM counterparts.
# * IR→x86: x86's ppo already orders R-R, R-W and W-W pairs, so ``Frm`` and
#   ``Fww`` need no instruction at all; only ``Fsc`` (which must order W-R)
#   becomes an MFENCE.  RMWsc maps to a locked RMW.


def map_arm_to_ir(program: Program) -> Program:
    threads = []
    for thread in program.threads:
        ops = []
        for op in thread:
            if isinstance(op, Ld):
                if op.ordering not in ("plain",):
                    raise ValueError("acquire loads not supported in reverse "
                                     "mapping (strengthen to DMB first)")
                ops.append(Ld(op.loc, op.reg, "plain"))
                ops.append(Fence("rm"))
            elif isinstance(op, St):
                if op.ordering not in ("plain",):
                    raise ValueError("release stores not supported in reverse "
                                     "mapping (strengthen to DMB first)")
                ops.append(St(op.loc, op.value, "plain"))
            elif isinstance(op, Rmw):
                ops.append(op)
            elif isinstance(op, Fence):
                kind = {"ld": "rm", "st": "ww", "ff": "sc"}.get(op.kind)
                if kind is None:
                    raise ValueError(f"non-Arm fence {op.kind} in source")
                ops.append(Fence(kind))
            else:
                raise TypeError(op)
        threads.append(ops)
    return Program(threads, dict(program.init), f"{program.name}→IR")


def map_ir_to_x86(program: Program) -> Program:
    threads = []
    for thread in program.threads:
        ops = []
        for op in thread:
            if isinstance(op, Ld):
                ops.append(Ld(op.loc, op.reg, "plain"))
            elif isinstance(op, St):
                ops.append(St(op.loc, op.value, "plain"))
            elif isinstance(op, Rmw):
                ops.append(op)  # lock-prefixed RMW
            elif isinstance(op, Fence):
                if op.kind == "sc":
                    ops.append(Fence("mfence"))
                elif op.kind in ("rm", "ww"):
                    pass  # implicit in x86's ppo
                else:
                    raise ValueError(f"non-IR fence {op.kind} in source")
            else:
                raise TypeError(op)
        threads.append(ops)
    return Program(threads, dict(program.init), f"{program.name}→x86")


def map_arm_to_x86(program: Program) -> Program:
    return map_ir_to_x86(map_arm_to_ir(program))


def check_arm_to_ir(program: Program, compare: str = "outcome") -> bool:
    target = map_arm_to_ir(program)
    holds, _, _ = check_mapping(program, "arm", target, "limm", compare)
    return holds


def check_ir_to_x86(program: Program, compare: str = "outcome") -> bool:
    target = map_ir_to_x86(program)
    holds, _, _ = check_mapping(program, "limm", target, "x86", compare)
    return holds


def check_arm_to_x86(program: Program, compare: str = "outcome") -> bool:
    target = map_arm_to_x86(program)
    holds, _, _ = check_mapping(program, "arm", target, "x86", compare)
    return holds
