"""A herd-flavoured text format for litmus tests.

Example::

    MP+fences
    { X=0; Y=0 }
    P0           | P1            ;
    X = 1        | a = Y         ;
    fence ww     | fence rm      ;
    Y = 1        | b = X         ;
    exists (P1:a=1 /\\ P1:b=0)

Operations per cell:

* ``X = 1`` — store a constant
* ``X = r`` — store a register (data dependency)
* ``a = X`` — load into register ``a``
* ``fence <kind>`` — mfence / ff / ld / st / sc / rm / ww
* ``r = cas X 0 2`` — compare-and-swap (``Rmw``), read value into ``r``
* ``ctrl r`` — control dependency on ``r`` for the rest of the thread
* orderings: ``a =acq X`` (acquire load), ``X =rel 1`` (release store)

The trailing ``exists (...)`` clause (optional) names an outcome; the
checker API evaluates it under a model.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from .axioms import outcomes
from .events import CtrlDep, Fence, Ld, Program, Reg, Rmw, St


class LitmusParseError(Exception):
    pass


@dataclass
class LitmusTest:
    program: Program
    exists: Optional[dict[str, int]] = None  # "P0:a" / "X" -> value

    def exists_allowed(self, model: str) -> bool:
        """Evaluate the ``exists`` clause: is the outcome reachable?"""
        if self.exists is None:
            raise LitmusParseError("litmus test has no exists clause")
        wanted = set()
        for key, value in self.exists.items():
            m = re.fullmatch(r"P(\d+):(\w+)", key)
            if m:
                wanted.add((f"t{int(m.group(1)) + 1}:{m.group(2)}", value))
            else:
                wanted.add((key, value))
        return any(wanted <= set(o) for o in outcomes(self.program, model))


def _parse_op(text: str, line_no: int):
    text = text.strip()
    if not text:
        return None
    m = re.fullmatch(r"fence\s+(\w+)", text)
    if m:
        return Fence(m.group(1))
    m = re.fullmatch(r"ctrl\s+(\w+)", text)
    if m:
        return CtrlDep(m.group(1))
    m = re.fullmatch(r"(\w+)\s*=(?:\s*)cas\s+(\w+)\s+(-?\d+)\s+(-?\d+)", text)
    if m:
        return Rmw(m.group(2), int(m.group(3)), int(m.group(4)),
                   reg=m.group(1))
    m = re.fullmatch(r"(\w+)\s*=(acq)?\s*([A-Z]\w*)", text)
    if m:
        ordering = "acq" if m.group(2) else "plain"
        return Ld(m.group(3), m.group(1), ordering)
    m = re.fullmatch(r"([A-Z]\w*)\s*=(rel)?\s*(-?\d+)", text)
    if m:
        ordering = "rel" if m.group(2) else "plain"
        return St(m.group(1), int(m.group(3)), ordering)
    m = re.fullmatch(r"([A-Z]\w*)\s*=(rel)?\s*([a-z]\w*)", text)
    if m:
        ordering = "rel" if m.group(2) else "plain"
        return St(m.group(1), Reg(m.group(3)), ordering)
    raise LitmusParseError(f"line {line_no}: cannot parse op {text!r}")


def parse_litmus(source: str) -> LitmusTest:
    lines = [ln.rstrip() for ln in source.strip().splitlines()]
    if not lines:
        raise LitmusParseError("empty litmus test")
    name = lines[0].strip()
    idx = 1

    # Optional init block: { X=0; Y=1 }
    init: dict[str, int] = {}
    if idx < len(lines) and lines[idx].strip().startswith("{"):
        body = lines[idx].strip().strip("{}")
        for piece in body.split(";"):
            piece = piece.strip()
            if not piece:
                continue
            loc, _, value = piece.partition("=")
            init[loc.strip()] = int(value.strip())
        idx += 1

    # Header row: P0 | P1 | ... ;
    if idx >= len(lines):
        raise LitmusParseError("missing thread header row")
    header = [c.strip() for c in lines[idx].rstrip(";").split("|")]
    if not all(re.fullmatch(r"P\d+", h) for h in header):
        raise LitmusParseError(f"bad thread header {lines[idx]!r}")
    nthreads = len(header)
    idx += 1

    threads: list[list] = [[] for _ in range(nthreads)]
    exists: Optional[dict[str, int]] = None
    for line_no, line in enumerate(lines[idx:], start=idx + 1):
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("exists"):
            m = re.search(r"\((.*)\)", stripped)
            if not m:
                raise LitmusParseError("malformed exists clause")
            exists = {}
            for clause in re.split(r"/\\", m.group(1)):
                key, _, value = clause.strip().partition("=")
                exists[key.strip()] = int(value.strip())
            continue
        cells = [c.strip() for c in stripped.rstrip(";").split("|")]
        if len(cells) != nthreads:
            raise LitmusParseError(
                f"line {line_no}: expected {nthreads} cells, got {len(cells)}"
            )
        for tid, cell in enumerate(cells):
            op = _parse_op(cell, line_no)
            if op is not None:
                threads[tid].append(op)
    return LitmusTest(Program(threads, init, name), exists)
