"""The LIMM transformation tables of Figure 11 and their checkers.

``REORDER_TABLE`` is Figure 11a verbatim: which adjacent event pairs
``a·b ↝ b·a`` are safe on LIMM.  ``can_reorder`` is the queryable form the
optimizer's LIMM-awareness is tested against.  ``ELIMINATIONS`` lists the
Figure 11b redundant-access eliminations.

``check_reordering_in_context``/``check_elimination_in_context`` state
Theorem 7.5 over enumerated executions: applying the transformation must
not introduce new behaviours.
"""

from __future__ import annotations

from .axioms import outcomes
from .events import Fence, Ld, Program, Rmw, St

# Event-kind names used by the table (columns/rows of Fig. 11a):
#   Rna, Wna            non-atomic load / store
#   Rsc                 failed RMWsc (lone sc read)
#   RscWsc              successful RMWsc (sc read-write pair)
#   Frm, Fww, Fsc       the three LIMM fences
KINDS = ["Rna", "Wna", "Rsc", "RscWsc", "Frm", "Fww", "Fsc"]

# REORDER_TABLE[a][b] == True  ⟺  a·b ↝ b·a is safe (accesses on different
# locations and independent).  "=" diagonal entries for fences are True
# (reordering a fence with itself is the identity).
REORDER_TABLE: dict[str, dict[str, bool]] = {
    "Rna":    {"Rna": True,  "Wna": True,  "Rsc": True,  "RscWsc": False,
               "Frm": False, "Fww": True,  "Fsc": False},
    "Wna":    {"Rna": True,  "Wna": True,  "Rsc": True,  "RscWsc": False,
               "Frm": True,  "Fww": False, "Fsc": False},
    "Rsc":    {"Rna": False, "Wna": False, "Rsc": False, "RscWsc": False,
               "Frm": True,  "Fww": True,  "Fsc": True},
    "RscWsc": {"Rna": False, "Wna": False, "Rsc": False, "RscWsc": False,
               "Frm": True,  "Fww": True,  "Fsc": True},
    "Frm":    {"Rna": False, "Wna": False, "Rsc": False, "RscWsc": True,
               "Frm": True,  "Fww": True,  "Fsc": True},
    "Fww":    {"Rna": True,  "Wna": False, "Rsc": True,  "RscWsc": True,
               "Frm": True,  "Fww": True,  "Fsc": True},
    "Fsc":    {"Rna": False, "Wna": False, "Rsc": False, "RscWsc": True,
               "Frm": True,  "Fww": True,  "Fsc": True},
}


def can_reorder(a: str, b: str) -> bool:
    """Is the adjacent reordering a·b ↝ b·a safe on LIMM (Fig. 11a)?"""
    return REORDER_TABLE[a][b]


def op_kind(op) -> str:
    """Classify a litmus op into a Fig. 11a row/column name."""
    if isinstance(op, Ld):
        return "Rsc" if op.ordering == "sc" else "Rna"
    if isinstance(op, St):
        return "Wsc" if op.ordering == "sc" else "Wna"
    if isinstance(op, Rmw):
        return "RscWsc"
    if isinstance(op, Fence):
        return {"rm": "Frm", "ww": "Fww", "sc": "Fsc"}[op.kind]
    raise TypeError(op)


def reorder_ops(program: Program, tid: int, index: int) -> Program:
    """Swap the ops at positions index and index+1 of thread ``tid``."""
    threads = [list(t) for t in program.threads]
    ops = threads[tid]
    ops[index], ops[index + 1] = ops[index + 1], ops[index]
    return Program(threads, dict(program.init), f"{program.name}-reordered")


def check_reordering_in_context(
    program: Program, tid: int, index: int, model: str = "limm"
) -> bool:
    """Theorem 7.5: the reordered program admits no new outcomes."""
    src = outcomes(program, model)
    tgt = outcomes(reorder_ops(program, tid, index), model)
    return tgt <= src


# ---- eliminations (Fig. 11b) -------------------------------------------------

# Each entry: (name, pattern description, fence kinds allowed in between).
ELIMINATIONS = [
    ("RAR", "R(X,v) · R(X,v') ↝ R(X,v)", set()),
    ("RAW", "W(X,v) · R(X,v) ↝ W(X,v)", set()),
    ("WAW", "W(X,v) · W(X,v') ↝ W(X,v')", set()),
    ("F-RAR", "R(X,v) · F_o · R(X,v') ↝ R(X,v) · F_o", {"rm", "ww"}),
    ("F-RAW", "W(X,v) · F_t · R(X,v) ↝ W(X,v) · F_t", {"sc", "ww"}),
    ("F-WAW", "W(X,v) · F_o · W(X,v') ↝ F_o · W(X,v')", {"rm", "ww"}),
]


def eliminate_rar(program: Program, tid: int, first: int, second: int) -> Program:
    """Remove the second read; its register takes the first read's value.
    Models RAR / F-RAR (the ops in between must be fences)."""
    threads = [list(t) for t in program.threads]
    ops = threads[tid]
    first_op = ops[first]
    second_op = ops[second]
    assert isinstance(first_op, Ld) and isinstance(second_op, Ld)
    # The eliminated read's register now aliases the first read's register;
    # rename it throughout (registers are write-once in litmus programs).
    del ops[second]
    renamed = Program(threads, dict(program.init), f"{program.name}-rar")
    return _rename_register(renamed, tid, second_op.reg, first_op.reg)


def eliminate_raw(program: Program, tid: int, store: int, load: int) -> Program:
    """Remove a read that follows a store to the same location; the read's
    register takes the stored value.  Models RAW / F-RAW."""
    threads = [list(t) for t in program.threads]
    ops = threads[tid]
    store_op = ops[store]
    load_op = ops[load]
    assert isinstance(store_op, St) and isinstance(load_op, Ld)
    del ops[load]
    prog = Program(threads, dict(program.init), f"{program.name}-raw")
    return _bind_register(prog, tid, load_op.reg, store_op.value)


def eliminate_waw(program: Program, tid: int, first: int) -> Program:
    """Remove the first of two same-location stores.  Models WAW / F-WAW."""
    threads = [list(t) for t in program.threads]
    del threads[tid][first]
    return Program(threads, dict(program.init), f"{program.name}-waw")


def _rename_register(program: Program, tid: int, old: str, new: str) -> Program:
    from .events import Reg

    threads = []
    for t, thread in enumerate(program.threads):
        ops = []
        for op in thread:
            if t == tid and isinstance(op, St) and isinstance(op.value, Reg) \
                    and op.value.name == old:
                ops.append(St(op.loc, Reg(new), op.ordering))
            else:
                ops.append(op)
        threads.append(ops)
    return Program(threads, dict(program.init), program.name)


def _bind_register(program: Program, tid: int, reg: str, value) -> Program:
    from .events import Reg

    threads = []
    for t, thread in enumerate(program.threads):
        ops = []
        for op in thread:
            if t == tid and isinstance(op, St) and isinstance(op.value, Reg) \
                    and op.value.name == reg:
                ops.append(St(op.loc, value, op.ordering))
            else:
                ops.append(op)
        threads.append(ops)
    return Program(threads, dict(program.init), program.name)


def check_elimination(
    source: Program, target: Program, model: str = "limm",
    compare_registers: bool = False,
) -> bool:
    """Theorem 7.5 for an elimination: target behaviours ⊆ source's.

    Eliminations drop observations (the removed access's register), so the
    default compares final memory only, as the paper's Behav does.
    """
    from .axioms import behaviours

    fn = outcomes if compare_registers else behaviours
    src = fn(source, model)
    tgt = fn(target, model)
    return tgt <= src


# ---- fence merging (§7 "Fence Merging") ---------------------------------------


def merge_adjacent_fences(program: Program, tid: int, index: int) -> Program:
    """Frm·Fww (either order, adjacent) ↝ Fsc; like-kinded pairs collapse."""
    threads = [list(t) for t in program.threads]
    ops = threads[tid]
    a, b = ops[index], ops[index + 1]
    assert isinstance(a, Fence) and isinstance(b, Fence)
    kinds = {a.kind, b.kind}
    if "sc" in kinds or kinds == {"rm", "ww"}:
        merged = "sc"
    else:
        merged = a.kind
    ops[index : index + 2] = [Fence(merged)]
    return Program(threads, dict(program.init), f"{program.name}-merged")


# ---- speculative load introduction (§7.2) -----------------------------------


def introduce_speculative_load(
    program: Program, tid: int, index: int, loc: str, reg: str = "__spec"
) -> Program:
    """Insert a non-atomic load whose value is never used — the effect of
    hoisting a load out of a conditional (LLVM's SimplifyCFG speculation)."""
    threads = [list(t) for t in program.threads]
    threads[tid].insert(index, Ld(loc, reg))
    return Program(threads, dict(program.init), f"{program.name}+spec")


def check_speculative_load(
    program: Program, tid: int, index: int, loc: str, model: str = "limm"
) -> bool:
    """§7.2: introducing an unused speculative load adds no observable
    behaviour.  Outcomes of the target are compared after erasing the
    speculative register (its value is unused by construction)."""
    reg = "__spec"
    target = introduce_speculative_load(program, tid, index, loc, reg)
    src = outcomes(program, model)
    spec_key = f"t{tid + 1}:{reg}"
    source_locs = set(program.locations())
    projected = {
        frozenset(
            item
            for item in o
            # drop the unused register and any location the load itself
            # introduced (its init write is an artefact of the DSL)
            if item[0] != spec_key
            and (":" in item[0] or item[0] in source_locs)
        )
        for o in outcomes(target, model)
    }
    return projected <= src
