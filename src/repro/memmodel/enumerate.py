"""Exhaustive enumeration of candidate executions of a litmus program.

For each combination of RMW success/failure, each reads-from assignment and
each per-location coherence order, builds an :class:`Execution`.  Model
axioms (:mod:`repro.memmodel.axioms`) then filter the candidates down to the
consistent ones.  This enumeration plays the role the Agda proofs play in
the paper: theorems 7.1-7.5 are checked by comparing behaviour sets of
enumerated executions.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from .events import CtrlDep, Event, Execution, Fence, Ld, Program, Reg, Rmw, St


def _build_events(
    program: Program, rmw_success: tuple[bool, ...]
) -> tuple[list[Event], set[tuple[int, int]], dict, list]:
    """Events + po given an RMW success/fail assignment.

    Returns (events, po, reads_by_eid, write_eids).  Values of reads and of
    dependent stores are placeholders (None) at this stage.
    """
    events: list[Event] = []
    po: set[tuple[int, int]] = set()

    def add(event: Event) -> int:
        events.append(event)
        return event.eid

    # Initialization writes (thread 0).
    for loc in program.locations():
        init_val = program.init.get(loc, 0)
        add(
            Event(
                eid=len(events), tid=0, kind="W", loc=loc, val=init_val,
                po_index=0,
            )
        )

    rmw_iter = iter(rmw_success)
    for tid, thread in enumerate(program.threads, start=1):
        thread_eids: list[int] = []
        for op_index, op in enumerate(thread):
            if isinstance(op, Ld):
                eid = add(
                    Event(
                        eid=len(events), tid=tid, kind="R", loc=op.loc,
                        val=None, ordering=op.ordering,
                        po_index=len(thread_eids), op_index=op_index,
                    )
                )
                thread_eids.append(eid)
            elif isinstance(op, St):
                val = op.value if not isinstance(op.value, Reg) else None
                eid = add(
                    Event(
                        eid=len(events), tid=tid, kind="W", loc=op.loc,
                        val=val, ordering=op.ordering,
                        po_index=len(thread_eids), op_index=op_index,
                    )
                )
                thread_eids.append(eid)
            elif isinstance(op, Rmw):
                # Blocking RMWs (Lock/Unlock) always succeed: the failing
                # reads are spin iterations of the same op, not behaviours.
                success = True if op.blocking else next(rmw_iter)
                r_eid = add(
                    Event(
                        eid=len(events), tid=tid, kind="R", loc=op.loc,
                        val=None, ordering="sc",
                        po_index=len(thread_eids), op_index=op_index,
                    )
                )
                thread_eids.append(r_eid)
                if success:
                    w_eid = add(
                        Event(
                            eid=len(events), tid=tid, kind="W", loc=op.loc,
                            val=op.new, ordering="sc",
                            po_index=len(thread_eids), op_index=op_index,
                        )
                    )
                    thread_eids.append(w_eid)
            elif isinstance(op, Fence):
                eid = add(
                    Event(
                        eid=len(events), tid=tid, kind="F", loc=None,
                        val=None, ordering=op.kind,
                        po_index=len(thread_eids), op_index=op_index,
                    )
                )
                thread_eids.append(eid)
            elif isinstance(op, CtrlDep):
                pass  # no event; handled during value resolution
            else:
                raise TypeError(f"unknown op {op!r}")
        for i in range(len(thread_eids)):
            for j in range(i + 1, len(thread_eids)):
                po.add((thread_eids[i], thread_eids[j]))
    return events, po, {}, []


def _count_rmws(program: Program) -> int:
    """Number of RMWs with a free success/fail choice (blocking ones are
    forced to succeed and consume no enumeration bit)."""
    return sum(
        1
        for thread in program.threads
        for op in thread
        if isinstance(op, Rmw) and not op.blocking
    )


def enumerate_executions(program: Program) -> Iterator[Execution]:
    """Yield all *pre-axiom* candidate executions (plain-coherence holes are
    filtered by the model axioms, not here, except basic value sanity)."""
    nrmw = _count_rmws(program)
    for rmw_success in itertools.product([False, True], repeat=nrmw):
        events, po, _, _ = _build_events(program, rmw_success)
        yield from _enumerate_rf_co(program, events, po, rmw_success)


def _enumerate_rf_co(program, events, po, rmw_success):
    reads = [e for e in events if e.is_read]
    writes_by_loc: dict[str, list[Event]] = {}
    for e in events:
        if e.is_write:
            writes_by_loc.setdefault(e.loc, []).append(e)

    # rmw pairs: R and W that share tid/op_index.
    rmw_pairs: set[tuple[int, int]] = set()
    rmw_read_info: dict[int, tuple[int, bool]] = {}  # read eid -> (expect, ok)
    rmw_iter = iter(rmw_success)
    for tid, thread in enumerate(program.threads, start=1):
        for op_index, op in enumerate(thread):
            if isinstance(op, Rmw):
                success = True if op.blocking else next(rmw_iter)
                r = next(
                    e for e in events
                    if e.tid == tid and e.op_index == op_index and e.is_read
                )
                rmw_read_info[r.eid] = (op.expect, success)
                if success:
                    w = next(
                        e for e in events
                        if e.tid == tid and e.op_index == op_index and e.is_write
                    )
                    rmw_pairs.add((r.eid, w.eid))

    rf_choices = [
        [w.eid for w in writes_by_loc.get(r.loc, [])] for r in reads
    ]
    for rf_combo in itertools.product(*rf_choices):
        rf = {r.eid: w for r, w in zip(reads, rf_combo)}
        resolved = _resolve_values(program, events, rf, rmw_read_info)
        if resolved is None:
            continue
        events_resolved, registers, data, ctrl = resolved
        for co in _enumerate_co(events_resolved, writes_by_loc):
            yield Execution(
                events=events_resolved,
                po=set(po),
                rf=dict(rf),
                co=co,
                rmw=set(rmw_pairs),
                data=data,
                ctrl=ctrl,
                registers=registers,
            )


def _resolve_values(program, events, rf, rmw_read_info):
    """Fill read values from rf, dependent store values from registers.

    Values may flow across threads (a load reading a data-dependent store in
    another thread), so resolution iterates to a fixpoint.  Returns None
    when the rf
    assignment is internally inconsistent (e.g. a failed RMW reading its
    expected value, or an unresolvable value cycle).  Returns
    (events, registers, data pairs, ctrl pairs) on success."""
    events = list(events)
    registers: dict[tuple[int, str], int] = {}
    data: set[tuple[int, int]] = set()
    reg_def_event: dict[tuple[int, str], int] = {}

    total_ops = sum(len(t) for t in program.threads)
    for _ in range(total_ops + 1):
        progress = False
        for tid, thread in enumerate(program.threads, start=1):
            for op_index, op in enumerate(thread):
                if isinstance(op, (Ld, Rmw)):
                    r = next(
                        e for e in events
                        if e.tid == tid and e.op_index == op_index and e.is_read
                    )
                    if events[r.eid].val is not None:
                        continue
                    src = events[rf[r.eid]]
                    if src.val is None:
                        continue  # not resolved yet
                    if isinstance(op, Rmw):
                        expect, success = rmw_read_info[r.eid]
                        if success != (src.val == expect):
                            return None
                    events[r.eid] = Event(
                        r.eid, r.tid, "R", r.loc, src.val, r.ordering,
                        r.po_index, r.op_index,
                    )
                    reg = op.reg
                    if reg:
                        registers[(tid, reg)] = src.val
                        reg_def_event[(tid, reg)] = r.eid
                    progress = True
                elif isinstance(op, St) and isinstance(op.value, Reg):
                    w = next(
                        e for e in events
                        if e.tid == tid and e.op_index == op_index
                        and e.is_write
                    )
                    if events[w.eid].val is not None:
                        continue
                    key = (tid, op.value.name)
                    if key not in registers:
                        continue
                    events[w.eid] = Event(
                        w.eid, w.tid, "W", w.loc, registers[key], w.ordering,
                        w.po_index, w.op_index,
                    )
                    data.add((reg_def_event[key], w.eid))
                    progress = True
        if not progress:
            break
    if any(
        e.val is None for e in events if e.is_read or e.is_write
    ):
        return None

    # Control dependencies: every event po-after a CtrlDep marker depends
    # on the load that defined the marked register.
    ctrl: set[tuple[int, int]] = set()
    for tid, thread in enumerate(program.threads, start=1):
        active: list[int] = []  # defining-read eids currently in force
        for op_index, op in enumerate(thread):
            if isinstance(op, CtrlDep):
                key = (tid, op.reg)
                if key not in reg_def_event:
                    return None  # branch on an undefined register
                active.append(reg_def_event[key])
                continue
            if not active:
                continue
            for e in events:
                if e.tid == tid and e.op_index == op_index and not e.is_fence:
                    for src in active:
                        ctrl.add((src, e.eid))
    return events, registers, data, ctrl


def _enumerate_co(events, writes_by_loc):
    """All coherence orders: init writes first, then any permutation."""
    locs = sorted(writes_by_loc)
    per_loc_orders = []
    for loc in locs:
        eids = [w.eid for w in writes_by_loc[loc]]
        init = [e for e in eids if events[e].tid == 0]
        rest = [e for e in eids if events[e].tid != 0]
        per_loc_orders.append(
            [init + list(p) for p in itertools.permutations(rest)]
        )
    for combo in itertools.product(*per_loc_orders):
        yield {loc: order for loc, order in zip(locs, combo)}
