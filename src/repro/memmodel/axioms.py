"""Consistency axioms: x86-TSO, Arm (simplified ob), and LIMM (Fig. 6/7).

Each model is a predicate over :class:`Execution`.  All three share
*(sc-per-loc)* and *(atomicity)*; they differ in their global-order axiom:

* x86: ``hb = ppo ∪ implied ∪ rfe ∪ fr ∪ co`` must be acyclic, where ``ppo``
  orders all po pairs except W→R, and ``implied`` orders po pairs around
  RMWs and MFENCEs (axiom **GHB**);
* Arm: ``ob = (obs ∪ aob ∪ dob ∪ bob)+`` must be irreflexive (axiom
  **external**); ``dob`` includes the data dependencies our litmus DSL
  tracks;
* LIMM: ``ghb = (ord ∪ rfe ∪ coe ∪ fre)+`` must be irreflexive (axiom
  **GOrd**), with ``ord`` given by rules ord1–ord4 over Frm/Fww/Fsc and
  seq_cst accesses.  Crucially LIMM has *no* dependency-based ordering, so
  LLVM's dependency-breaking optimizations stay sound (§6.3).
"""

from __future__ import annotations

from typing import Callable

from .enumerate import enumerate_executions
from .events import Execution, Program, compose, is_acyclic, is_irreflexive, transitive_closure

Pairs = set[tuple[int, int]]


def _po_loc(x: Execution) -> Pairs:
    return {
        (a, b)
        for a, b in x.po
        if x.event(a).loc is not None and x.event(a).loc == x.event(b).loc
    }


def sc_per_loc(x: Execution) -> bool:
    rel = _po_loc(x) | x.rf_pairs() | x.co_pairs() | x.fr_pairs()
    return is_acyclic(rel)


def atomicity(x: Execution) -> bool:
    fre = x.external(x.fr_pairs())
    coe = x.external(x.co_pairs())
    violating = compose(fre, coe)
    return not (x.rmw & violating)


# ---- x86 ------------------------------------------------------------------


def x86_consistent(x: Execution) -> bool:
    if not sc_per_loc(x) or not atomicity(x):
        return False
    ppo = {
        (a, b)
        for a, b in x.po
        if not (x.event(a).is_write and x.event(b).is_read)
        and not x.event(a).is_fence
        and not x.event(b).is_fence
    }
    atomic_events = {r for r, _ in x.rmw} | {w for _, w in x.rmw}
    barrier = atomic_events | {
        e.eid for e in x.events if e.is_fence and e.ordering == "mfence"
    }
    implied = {
        (a, b)
        for a, b in x.po
        if a in barrier or b in barrier
    }
    rfe = x.external(x.rf_pairs())
    hb = ppo | implied | rfe | x.fr_pairs() | x.co_pairs()
    return is_acyclic(hb)


# ---- Arm ------------------------------------------------------------------


def arm_consistent(x: Execution) -> bool:
    if not sc_per_loc(x) or not atomicity(x):
        return False
    obs = (
        x.external(x.rf_pairs())
        | x.external(x.co_pairs())
        | x.external(x.fr_pairs())
    )
    aob = set(x.rmw)
    # dob: data dependencies order reads before dependent accesses;
    # control dependencies order reads before dependent *writes* only
    # (ctrl;[W] in the paper's Fig. 6).
    dob = set(x.data) | {
        (a, b) for (a, b) in x.ctrl if x.event(b).is_write
    }
    bob: Pairs = set()
    for a, b in x.po:
        ea, eb = x.event(a), x.event(b)
        # po;[F_ff];po — ordered across a full fence.
        if ea.is_fence and ea.ordering == "ff":
            bob.add((a, b))
        if eb.is_fence and eb.ordering == "ff":
            bob.add((a, b))
        # Appendix A half-fences: [A];po (acquire) and po;[L] (release).
        if ea.is_read and ea.ordering == "acq":
            bob.add((a, b))
        if eb.is_write and eb.ordering == "rel":
            bob.add((a, b))
    for f in x.events:
        if not f.is_fence:
            continue
        before = [a for a, b in x.po if b == f.eid]
        after = [b for a, b in x.po if a == f.eid]
        if f.ordering == "ld":
            for a in before:
                if x.event(a).is_read:
                    for b in after:
                        bob.add((a, b))
        elif f.ordering == "st":
            for a in before:
                if x.event(a).is_write:
                    for b in after:
                        if x.event(b).is_write:
                            bob.add((a, b))
    ob = obs | aob | dob | bob
    return is_irreflexive(transitive_closure(ob))


# ---- LIMM -----------------------------------------------------------------


def limm_ord(x: Execution) -> Pairs:
    """The ord relation of Figure 7 (rules ord1-ord4)."""
    ord_rel: Pairs = set()
    rmw_reads = {r for r, _ in x.rmw}
    rmw_writes = {w for _, w in x.rmw}
    # ord3: [Fsc ∪ Rsc ∪ codom(rmw)] ; po
    # ord4: po ; [Fsc ∪ Wsc ∪ dom(rmw)]
    for a, b in x.po:
        ea, eb = x.event(a), x.event(b)
        if ea.is_fence and ea.ordering == "sc":
            ord_rel.add((a, b))
        if ea.is_read and ea.ordering == "sc":
            ord_rel.add((a, b))
        if a in rmw_writes:
            ord_rel.add((a, b))
        if eb.is_fence and eb.ordering == "sc":
            ord_rel.add((a, b))
        if eb.is_write and eb.ordering == "sc":
            ord_rel.add((a, b))
        if b in rmw_reads:
            ord_rel.add((a, b))
    # ord1: [R] ; po ; [Frm] ; po ; [R∪W]
    # ord2: [W] ; po ; [Fww] ; po ; [W]
    for f in x.events:
        if not f.is_fence or f.ordering not in ("rm", "ww"):
            continue
        before = [a for a, b in x.po if b == f.eid]
        after = [b for a, b in x.po if a == f.eid]
        if f.ordering == "rm":
            for a in before:
                if x.event(a).is_read:
                    for b in after:
                        if x.event(b).is_read or x.event(b).is_write:
                            ord_rel.add((a, b))
        else:
            for a in before:
                if x.event(a).is_write:
                    for b in after:
                        if x.event(b).is_write:
                            ord_rel.add((a, b))
    return ord_rel


def limm_consistent(x: Execution) -> bool:
    if not sc_per_loc(x) or not atomicity(x):
        return False
    ghb = (
        limm_ord(x)
        | x.external(x.rf_pairs())
        | x.external(x.co_pairs())
        | x.external(x.fr_pairs())
    )
    return is_irreflexive(transitive_closure(ghb))


MODELS: dict[str, Callable[[Execution], bool]] = {
    "x86": x86_consistent,
    "arm": arm_consistent,
    "limm": limm_consistent,
}


def consistent_executions(program: Program, model: str) -> list[Execution]:
    judge = MODELS[model]
    return [x for x in enumerate_executions(program) if judge(x)]


def behaviours(program: Program, model: str) -> set[frozenset]:
    """The paper's Behav: final memory values of consistent executions."""
    return {x.behaviour() for x in consistent_executions(program, model)}


def outcomes(program: Program, model: str) -> set[frozenset]:
    """Final memory values plus register observations (litmus outcomes)."""
    return {x.outcome() for x in consistent_executions(program, model)}
