"""Command-line interface: ``python -m repro <command>``.

Commands
--------
translate   compile mini-C to x86, translate to Arm, optionally run both
lift        show the lifted (optionally refined) LIR of a mini-C program
evaluate    run the Phoenix evaluation and print the §9 tables
litmus      enumerate outcomes of a named litmus test under a model
validate    fuzz-driven differential validation of the whole pipeline
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def _read_source(path: str) -> str | None:
    """Read a source file; on failure print a clean error (no traceback)."""
    try:
        return Path(path).read_text()
    except OSError as exc:
        print(f"repro: cannot read {path!r}: {exc.strerror or exc}",
              file=sys.stderr)
        return None


def _first_output_mismatch(expected: list[str], got: list[str]) -> int | None:
    """Index of the first differing output entry, or None if identical."""
    for i, (a, b) in enumerate(zip(expected, got)):
        if a != b:
            return i
    if len(expected) != len(got):
        return min(len(expected), len(got))
    return None


def _cmd_translate(args: argparse.Namespace) -> int:
    from .core import Lasagne
    from .minicc import compile_to_x86
    from .x86 import X86Emulator

    source = _read_source(args.source)
    if source is None:
        return 2
    obj = compile_to_x86(source)
    lasagne = Lasagne(verify=not args.no_verify)
    built = lasagne.build(source, args.config)
    print(f"config={args.config}: {built.arm_instructions} Arm instructions, "
          f"{built.fences} fences, {built.lir_instructions} IR instructions",
          file=sys.stderr)
    if args.dump_arm:
        print(built.program.dump())
    if args.dump_ir:
        from .lir import format_module

        print(format_module(built.module))
    if args.run:
        expected = None
        expected_output: list[str] = []
        if args.config != "native":
            emu = X86Emulator(obj)
            expected = emu.run()
            expected_output = emu.output
            print(f"x86 result: {expected}  output: {emu.output}")
        run = Lasagne.run(built)
        print(f"arm result: {run.result}  output: {run.output}  "
              f"cycles: {run.cycles}")
        if expected is not None:
            mismatched = False
            if run.result != expected:
                print("MISMATCH between x86 and translated Arm results!",
                      file=sys.stderr)
                mismatched = True
            index = _first_output_mismatch(expected_output, run.output)
            if index is not None:
                print(f"MISMATCH in output streams at index {index}: "
                      f"x86={expected_output[index:index + 1]!r} "
                      f"arm={run.output[index:index + 1]!r}",
                      file=sys.stderr)
                mismatched = True
            if mismatched:
                return 1
    return 0


def _cmd_lift(args: argparse.Namespace) -> int:
    from .fences import place_fences
    from .lifter import lift_program
    from .lir import format_module
    from .minicc import compile_to_x86
    from .refine import run_refinement

    source = _read_source(args.source)
    if source is None:
        return 2
    obj = compile_to_x86(source)
    module = lift_program(obj)
    if args.refine:
        run_refinement(module)
    if args.fences:
        place_fences(module)
    if args.optimize:
        from .opt import optimize_module

        optimize_module(module)
    print(format_module(module))
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from .phoenix import SIZE_SMALL, SIZE_TINY, evaluate_suite, geomean

    size = SIZE_TINY if args.size == "tiny" else SIZE_SMALL
    rows = evaluate_suite(size=size, verify=False)
    configs = ["native", "lifted", "opt", "popt", "ppopt"]
    print(f"{'benchmark':<18}" + "".join(f"{c:>9}" for c in configs))
    norm = {c: [] for c in configs}
    for row in rows:
        cells = ""
        for c in configs:
            v = row.normalized_runtime(c)
            norm[c].append(v)
            cells += f"{v:>9.2f}"
        print(f"{row.program:<18}{cells}")
    print(f"{'GMean':<18}"
          + "".join(f"{geomean(norm[c]):>9.2f}" for c in configs))
    return 0


def _cmd_litmus(args: argparse.Namespace) -> int:
    from . import memmodel as mm

    if args.file:
        text = _read_source(args.file)
        if text is None:
            return 2
        test = mm.parse_litmus(text)
        program = test.program
        if test.exists is not None:
            allowed = test.exists_allowed(args.model)
            print(f"{program.name}: exists clause is "
                  f"{'ALLOWED' if allowed else 'forbidden'} under {args.model}")
        for outcome in sorted(mm.outcomes(program, args.model), key=sorted):
            print("  " + ", ".join(f"{k}={v}" for k, v in sorted(outcome)))
        return 0

    program = getattr(mm, args.test, None)
    if program is None or not isinstance(program, mm.Program):
        names = sorted(
            n for n in dir(mm)
            if isinstance(getattr(mm, n), mm.Program)
        )
        print(f"unknown litmus test {args.test!r}; available: {names}",
              file=sys.stderr)
        return 1
    if args.map:
        mapper = {
            "x86-to-ir": mm.map_x86_to_ir,
            "ir-to-arm": mm.map_ir_to_arm,
            "x86-to-arm": mm.map_x86_to_arm,
            "arm-to-ir": mm.map_arm_to_ir,
            "ir-to-x86": mm.map_ir_to_x86,
            "arm-to-x86": mm.map_arm_to_x86,
        }[args.map]
        program = mapper(program)
    print(f"{program.name} under {args.model}:")
    for outcome in sorted(mm.outcomes(program, args.model), key=sorted):
        print("  " + ", ".join(f"{k}={v}" for k, v in sorted(outcome)))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    import json

    from .validate import GenConfig, OracleOptions, RunnerOptions, run_corpus

    if args.count is None and args.minutes is None:
        args.count = 100
    opts = RunnerOptions(
        seed=args.seed,
        jobs=args.jobs,
        count=args.count,
        minutes=args.minutes,
        shrink=args.shrink,
        corpus_dir=args.corpus,
        gen=GenConfig(threads=args.threads),
        oracle=OracleOptions(verify=not args.no_verify,
                             include_native=not args.no_native),
    )

    def progress(row: dict) -> None:
        if not row["ok"]:
            print(f"divergence [{row['signature']}] seed={row['seed']}: "
                  f"{row['detail']}", file=sys.stderr)

    report = run_corpus(opts, progress=None if args.quiet else progress)
    if args.report:
        Path(args.report).write_text(json.dumps(report, indent=2))
    print(f"validate: {report['programs_run']} programs "
          f"({report['corpus_replayed']} from corpus), "
          f"{report['divergences']} divergences, "
          f"{report['throughput_per_minute']:.0f} programs/min, "
          f"report at {Path(opts.corpus_dir) / 'report.json'}")
    if report["stage_histogram"]:
        print("stage histogram: " + ", ".join(
            f"{stage}={count}"
            for stage, count in sorted(report["stage_histogram"].items())))
    return 0 if report["clean"] else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("translate", help="translate mini-C to Arm")
    p.add_argument("source")
    p.add_argument("--config", default="ppopt",
                   choices=["native", "lifted", "opt", "popt", "ppopt"])
    p.add_argument("--run", action="store_true")
    p.add_argument("--dump-arm", action="store_true")
    p.add_argument("--dump-ir", action="store_true")
    p.add_argument("--no-verify", action="store_true")
    p.set_defaults(func=_cmd_translate)

    p = sub.add_parser("lift", help="show lifted LIR")
    p.add_argument("source")
    p.add_argument("--refine", action="store_true")
    p.add_argument("--fences", action="store_true")
    p.add_argument("--optimize", action="store_true")
    p.set_defaults(func=_cmd_lift)

    p = sub.add_parser("evaluate", help="run the Phoenix evaluation")
    p.add_argument("--size", default="tiny", choices=["tiny", "small"])
    p.set_defaults(func=_cmd_evaluate)

    p = sub.add_parser("litmus", help="enumerate litmus outcomes")
    p.add_argument("test", nargs="?", default="",
                   help="e.g. SB, MP, LB, IRIW, WRC")
    p.add_argument("--file", default=None,
                   help="herd-style litmus file instead of a named test")
    p.add_argument("--model", default="x86", choices=["x86", "arm", "limm"])
    p.add_argument("--map", default=None,
                   choices=["x86-to-ir", "ir-to-arm", "x86-to-arm",
                            "arm-to-ir", "ir-to-x86", "arm-to-x86"])
    p.set_defaults(func=_cmd_litmus)

    p = sub.add_parser(
        "validate",
        help="differential validation: fuzz every pipeline rung in lockstep")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jobs", type=int, default=1)
    p.add_argument("--count", type=int, default=None,
                   help="number of generated programs (default 100)")
    p.add_argument("--minutes", type=float, default=None,
                   help="wall-clock budget instead of --count")
    p.add_argument("--shrink", action="store_true",
                   help="delta-debug each diverging program")
    p.add_argument("--corpus", default=".validate-corpus",
                   help="persistent corpus/crash directory")
    p.add_argument("--report", default=None,
                   help="also write the JSON report to this path")
    p.add_argument("--threads", action="store_true",
                   help="include commutative atomic-counter thread programs")
    p.add_argument("--no-native", action="store_true",
                   help="skip the native-config Arm rung")
    p.add_argument("--no-verify", action="store_true")
    p.add_argument("--quiet", action="store_true")
    p.set_defaults(func=_cmd_validate)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
